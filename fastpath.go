package rwrnlp

import (
	"math/bits"
	"runtime"
	"sync/atomic"
	"unsafe"

	"github.com/rtsync/rwrnlp/internal/core"
)

// BRAVO-style reader fast path (Dice & Kogan, USENIX ATC'19, adapted to the
// R/W RNLP's component structure): an all-read acquisition confined to one
// component publishes its read set into a padded per-shard slot array with
// atomic operations only — no shard mutex, no flat-combining stack, no RSM
// invocation — provided the shard's writer gate is open.
//
// Writers make the two planes meet by MIGRATION rather than by waiting:
// writerEnter closes the gate (no new fast readers) and then materializes
// every in-flight fast reader as a surrogate read request in the RSM,
// before the writer itself issues. From that point the RSM's grant
// decisions are exactly those of the all-slow baseline — the writer queues
// behind the surrogate reads under the unchanged Rules R1–R2/W1–W2, later
// readers queue behind the entitled writer (phase-fairness), and partial
// grants (incremental, upgradeable) see precisely the read locks they would
// have seen had every fast reader gone through the RSM. A migrated reader's
// Release completes its surrogate through the RSM, waking whatever became
// eligible; an unmigrated reader's Release stays a single CAS.
//
// Admission safety (proof sketch in IMPLEMENTATION.md): the gate is >0 for
// every write-capable request from before its RSM issuance until after its
// completion, so a reader admitted with the gate at zero runs while the
// component's RSM has no incomplete write-capable request — precisely
// core.WriterFree, under which Rule R1 would satisfy the read immediately
// with zero acquisition delay. The same argument makes migration sound: an
// ADMITTED reader's surrogate is always issued into a writer-free RSM (the
// reader's gate re-check read zero, so every writer's gate-close — and
// hence its pre-issue migration scan — is ordered after the fully published
// claim, and the earliest such scan runs before any of those writers
// issues), so it is satisfied immediately and the RSM never reports a fast
// reader as waiting while it is inside its critical section. The Theorem
// 1/2 envelopes of RSM-served requests are therefore unchanged — a writer
// waits for a migrated fast read exactly as it would for the equivalent
// slow read. A writer may also scan a DOOMED claim — one whose reader is
// between its slot CAS and a failing gate re-check — and record a surrogate
// for it (possibly with a partially published mask, possibly waiting behind
// an already-issued writer); such surrogates are transient: the reader's
// retraction retires them through the same exactly-once handshake a release
// uses, completing satisfied surrogates and canceling waiting ones.
//
// Under sustained write pressure (a long streak of gate-closed misses) the
// path revokes itself and re-enables only after a writer-free grace period
// (hysteresis), so write-heavy phases stop paying the publish/retract and
// migration overhead.
//
// The WRITER plane (WithFastPath(FastPathConfig{Writers: true}), on by
// default) applies the same construction to uncontended write-capable
// requests: when the shard's RSM is empty (rsmLive), no issuer is between
// its intent announcement and its issuance (rsmIntent), no write-capable
// request holds the reader gate, and no fast reader claims a slot, a
// single-part write-capable Acquire claims the WHOLE component with one CAS
// on the per-shard writer word — no mutex, no RSM. The claim closes the
// reader gate for its duration (fast readers cannot admit past a fast
// writer) and publishes its read/write masks beside the word. The first
// conflicting request — any issuer, reader or writer, slow or fast-missed —
// revokes it BRAVO-style: slowEnter announces intent and, seeing the word
// held, materializes the fast writer as a surrogate write request in the
// RSM (migrateFastWriter) before issuing its own request. The surrogate is
// the FIRST request to enter the empty RSM, is satisfied immediately, and
// holds exactly the fast writer's footprint — so from that point grant
// decisions match the all-slow baseline exactly, mirroring the reader-
// migration argument above; see IMPLEMENTATION.md, "Writer fast path".
//
// Striping: reader claims are assigned to slots per-P by default — the
// probe starts from a goroutine-local hint (derived from the goroutine's
// stack address, no runtime_procPin or TLS) and claim sequences are minted
// from a per-slot counter, so an uncontended read's entire fast path
// touches a single padded cache line. StripeShared restores the PR 4
// layout: one global sequence counter, probe start hashed from it.
//
// Visibility: a fast read that never meets a writer is invisible to Stats,
// Snapshot, and any attached event observer (the per-shard fastpath_*
// counters are its only telemetry); once migrated it appears as an ordinary
// satisfied read request tagged fastSurrogateTag. Use WithoutFastPath when
// full event-stream fidelity matters more than reader throughput.
const (
	// fastSlotWords bounds the inline read-set mask: resources 0 …
	// 64·fastSlotWords−1. Reads naming a higher ID fall back to the RSM.
	fastSlotWords   = 4
	fastMaxResource = 64 * fastSlotWords

	// fastRevokeMisses is the default streak of conflict misses after which
	// a fast-path plane revokes itself; fastGraceReads the default number of
	// fast-eligible acquisitions that must subsequently find the conflict
	// gone (on the RSM path) before the plane re-enables. Override both with
	// FastPathConfig.Revocation.
	fastRevokeMisses = 128
	fastGraceReads   = 64

	// fastSeqSlotBits is how many low bits of a per-P claim sequence encode
	// the slot index (as idx+1, so a sequence is never zero). Slot counts are
	// clamped to 64, so 7 bits suffice; per-slot claim counters then mint
	// globally unique, never-reused sequences without a shared counter word.
	fastSeqSlotBits = 7
)

// fastSurrogateTag marks RSM read requests materialized from in-flight
// fast readers by writer migration, so snapshots and traces can tell the
// two planes apart.
const fastSurrogateTag = "fastpath-reader"

// fastWriterSurrogateTag marks the RSM write request materialized from a
// fast-path writer by the first contending request.
const fastWriterSurrogateTag = "fastpath-writer"

// fastSlot is one visible-reader slot. seq is 0 when free, else the unique
// claim sequence of the holding reader; set is the holder's read-set mask,
// published after the claim and before the gate re-check (so, by sequential
// consistency, any writer whose gate-close the holder missed reads the
// complete mask). migSeq is the claim sequence most recently migrated into
// the RSM — written only under the shard mutex by migrating writers, and
// compared against the releasing holder's own sequence to decide whether a
// surrogate must be completed. The padding keeps neighboring slots off each
// other's cache lines — readers on different CPUs claim different slots and
// must not false share.
type fastSlot struct {
	seq    atomic.Uint64
	set    [fastSlotWords]atomic.Uint64
	migSeq atomic.Uint64
	// claims mints this slot's claim sequences under per-P striping
	// (seq = claims<<fastSeqSlotBits | idx+1), keeping the whole claim
	// protocol on this one cache line; unused under StripeShared.
	claims atomic.Uint64
	_      [72]byte
}

// fastSlotCount sizes the slot array to the parallelism of the machine
// (rounded up to a power of two so claim probing can mask instead of mod).
func fastSlotCount() int {
	n := 2 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 64 {
		n = 64
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// initFastPath allocates the shard's reader slots; left uninitialized (nil
// fastSlots disables every fast-path hook) under WithoutFastPath.
func (s *shard) initFastPath() {
	s.fastSlots = make([]fastSlot, fastSlotCount())
	s.fastMask = len(s.fastSlots) - 1
}

// fastAcquire attempts the reader fast path for an all-read footprint that
// split has already validated and confined to this shard. It returns the
// minted token and true on a hit; on a miss (gate closed, path revoked,
// slots full, or a resource beyond the inline mask) it records the
// revocation hysteresis progress and the caller falls back to the RSM.
func (s *shard) fastAcquire(read []ResourceID) (Token, bool) {
	gateClosed := s.fastWriters.Load() != 0
	if gateClosed || s.fastRevoked.Load() {
		s.fastReadMissed(gateClosed)
		return Token{}, false
	}
	var mask [fastSlotWords]uint64
	for _, a := range read {
		if int(a) >= fastMaxResource {
			s.fastReadMissed(false)
			return Token{}, false
		}
		mask[int(a)>>6] |= 1 << (uint(a) & 63)
	}
	var seq uint64
	slot := -1
	if s.fastPerP {
		// Per-P striding: probe from a goroutine-local hint so concurrent
		// readers land on different padded slots, and mint the claim sequence
		// from the slot's own counter — the uncontended hot path touches no
		// shared word at all. A failed probe wastes one counter increment on
		// that slot, which is harmless: sequences only ever need to be unique
		// and non-zero, and the slot index in the low bits keeps counters of
		// different slots in disjoint sequence spaces.
		h := fastHint() & s.fastMask
		for i := 0; i <= s.fastMask; i++ {
			idx := (h + i) & s.fastMask
			sl := &s.fastSlots[idx]
			cand := sl.claims.Add(1)<<fastSeqSlotBits | uint64(idx+1)
			if sl.seq.CompareAndSwap(0, cand) {
				slot, seq = idx, cand
				break
			}
		}
	} else {
		seq = s.fastSeq.Add(1)
		h := int(seq) & s.fastMask
		for i := 0; i <= s.fastMask; i++ {
			idx := (h + i) & s.fastMask
			if s.fastSlots[idx].seq.CompareAndSwap(0, seq) {
				slot = idx
				break
			}
		}
	}
	if slot < 0 {
		s.fastReadMissed(false)
		return Token{}, false
	}
	sl := &s.fastSlots[slot]
	for w, v := range mask {
		sl.set[w].Store(v)
	}
	// Publication/re-check protocol: the read set is stored before this gate
	// load, and writers store the gate before scanning the slots, so at
	// least one side sees the other — either we observe the writer here and
	// retract (the writer may then read a stale or partial mask, harmlessly:
	// we never enter the critical section), or the writer's scan observes
	// our claim with the complete mask and migrates it.
	if s.fastWriters.Load() != 0 {
		sl.seq.Store(0)
		// A migrating writer may have scanned the claim between our CAS and
		// this retraction and recorded a surrogate for it; retire it, or the
		// RSM holds a phantom read lock forever. Any error is a structural
		// bug the selfCheck would catch — the caller falls back to the RSM
		// either way.
		_ = s.retireSurrogate(sl, seq)
		s.fastReadMissed(true)
		return Token{}, false
	}
	if s.fastHitC != nil {
		s.fastHitC.Inc()
	}
	if s.fastMissStreak.Load() != 0 {
		s.fastMissStreak.Store(0)
	}
	return Token{s: s, fastSeq: seq, fastSlot: int32(slot)}, true
}

// fastRelease ends a fast-path critical section: the slot is freed by
// CASing the token's claim sequence back to zero, which doubles as the
// double-release check (sequences are never reused, so a second release —
// even after the slot was re-claimed — always fails the CAS). If a writer
// migrated this claim into the RSM, the surrogate read is completed under
// the shard mutex, satisfying whatever requests were queued behind it.
func (s *shard) fastRelease(t Token) error {
	sl := &s.fastSlots[t.fastSlot]
	if !sl.seq.CompareAndSwap(t.fastSeq, 0) {
		return ErrAlreadyReleased
	}
	return s.retireSurrogate(sl, t.fastSeq)
}

// retireSurrogate retires the surrogate RSM request a migrating writer may
// have recorded for the withdrawn claim seq (released after its critical
// section, or retracted by the admission re-check). By sequential
// consistency the migSeq load is ordered after the claim withdrawal above,
// and a migrating writer stores migSeq before re-checking seq — so either
// the writer sees the withdrawal and retires the surrogate itself, or we
// see migSeq here. The map entry is deleted under s.mu by whichever side
// gets there first, so the retirement happens exactly once. A surrogate for
// an admitted reader is always satisfied (it was issued into a writer-free
// RSM) and is completed; one recorded for a doomed, mid-publication claim
// may still be waiting behind an earlier writer and is canceled instead.
func (s *shard) retireSurrogate(sl *fastSlot, seq uint64) error {
	if sl.migSeq.Load() != seq {
		return nil
	}
	s.mu.Lock()
	id, ok := s.fastSurr[seq]
	var err error
	if ok {
		delete(s.fastSurr, seq)
		if st, serr := s.rsm.State(id); serr == nil && st == core.StateSatisfied {
			err = s.rsm.Complete(s.tick(), id)
		} else {
			err = s.rsm.CancelRequest(s.tick(), id)
		}
		s.selfCheck()
	}
	s.unlock()
	return err
}

// fastReadMissed records a fast-eligible read served by the RSM, driving the
// revocation hysteresis: a streak of fastRevokeMisses gate-closed misses
// revokes the path (sustained write pressure — stop paying the
// publish/retract overhead), and fastGraceReads subsequent misses that find
// the component writer-free re-enable it. (A writer racing the re-enable is
// harmless: admission re-checks the gate after claiming a slot.)
func (s *shard) fastReadMissed(gateClosed bool) {
	if s.fastMissC != nil {
		s.fastMissC.Inc()
	}
	if gateClosed {
		if !s.fastRevoked.Load() && s.fastMissStreak.Add(1) >= s.revokeMisses {
			if !s.fastRevoked.Swap(true) {
				s.fastGrace.Store(s.graceReads)
				if s.fastRevokedC != nil {
					s.fastRevokedC.Inc()
				}
			}
		}
		return
	}
	s.fastMissStreak.Store(0)
	if s.fastRevoked.Load() && s.fastWriters.Load() == 0 {
		if s.fastGrace.Add(-1) <= 0 {
			s.fastRevoked.Store(false)
		}
	}
}

// fastHint derives a goroutine-local slot hint from the current stack
// address (same idiom as obs.Metrics' counter striping): goroutines on
// different Ps run on different stacks, so after the >>9 shift the hint
// spreads claims across slots without runtime_procPin or TLS. The hint only
// seeds the probe start — correctness never depends on its distribution.
func fastHint() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b)) >> 9)
}

// writerEnter closes the shard's writer gate on behalf of a write-capable
// request about to be issued, then migrates every in-flight fast reader
// into the RSM. It must be called before the request reaches the RSM and be
// balanced by writerExit after the request completes; the gate counter
// being >0 across that whole span is what makes fast-path admission sound,
// and migrating before issuing is what makes the RSM's grant decisions
// identical to the all-slow baseline. No-op when the fast path is disabled.
func (s *shard) writerEnter() {
	if s.fastSlots == nil {
		return
	}
	s.fastWriters.Add(1)
	s.migrateFast()
}

// writerExit reopens the gate after the write-capable request completed (its
// RSM locks are released).
func (s *shard) writerExit() {
	if s.fastSlots == nil {
		return
	}
	s.fastWriters.Add(-1)
}

// migrateFast issues a surrogate RSM read request for every claimed slot
// not already migrated. Called with the gate closed, so the slot population
// can only shrink underneath the scan. Each surrogate is issued into a
// writer-free RSM (see the package comment's induction) and is therefore
// satisfied immediately; if the holding reader releases while the surrogate
// is being recorded, the re-check completes it on the spot.
func (s *shard) migrateFast() {
	live := false
	for i := range s.fastSlots {
		if s.fastSlots[i].seq.Load() != 0 {
			live = true
			break
		}
	}
	if !live {
		return
	}
	s.mu.Lock()
	for i := range s.fastSlots {
		sl := &s.fastSlots[i]
		seq := sl.seq.Load()
		if seq == 0 || sl.migSeq.Load() == seq {
			continue
		}
		id, err := s.rsm.Issue(s.tick(), sl.resources(), nil, fastSurrogateTag)
		if err != nil {
			continue
		}
		if s.fastSurr == nil {
			s.fastSurr = make(map[uint64]core.ReqID)
		}
		s.fastSurr[seq] = id
		sl.migSeq.Store(seq)
		if sl.seq.Load() != seq {
			// The holder released (or retracted) between our first look and
			// the migSeq store and cannot have seen it; retire the surrogate
			// here. It may be waiting rather than satisfied if the claim was
			// a doomed mid-publication one scanned while an earlier writer
			// was already in the RSM.
			delete(s.fastSurr, seq)
			if st, serr := s.rsm.State(id); serr == nil && st == core.StateSatisfied {
				_ = s.rsm.Complete(s.tick(), id)
			} else {
				_ = s.rsm.CancelRequest(s.tick(), id)
			}
		} else if s.fastMigratedC != nil {
			s.fastMigratedC.Inc()
		}
	}
	s.selfCheck()
	s.unlock()
}

// resources decodes the slot's published read-set mask.
func (sl *fastSlot) resources() []ResourceID {
	return decodeMask(&sl.set)
}

// decodeMask decodes a published resource mask into resource IDs.
func decodeMask(set *[fastSlotWords]atomic.Uint64) []ResourceID {
	var out []ResourceID
	for w := 0; w < fastSlotWords; w++ {
		m := set[w].Load()
		for m != 0 {
			b := bits.TrailingZeros64(m)
			out = append(out, ResourceID(w*64+b))
			m &= m - 1
		}
	}
	return out
}

// ---- Writer plane ----------------------------------------------------------

// fastWriteBusy is the cheap component-busy predicate of the writer plane:
// an RSM with incomplete requests (rsmLive), an issuer between intent and
// issuance (rsmIntent), any writer-gate holder — slow write-capable request
// or another fast writer — or a claimed reader slot all disqualify a
// single-CAS claim.
func (s *shard) fastWriteBusy() bool {
	return s.rsmLive.Load() != 0 || s.rsmIntent.Load() != 0 ||
		s.fastWriters.Load() != 0 || s.fastWWord.Load() != 0 || s.anyFastReader()
}

// anyFastReader reports whether any reader slot is currently claimed.
func (s *shard) anyFastReader() bool {
	for i := range s.fastSlots {
		if s.fastSlots[i].seq.Load() != 0 {
			return true
		}
	}
	return false
}

// fastWriteAcquire attempts the single-CAS writer fast path for a
// write-capable footprint that split has already confined to this shard. On
// a hit the claim owns the whole component: the writer word carries the
// claim sequence, the masks beside it carry the footprint for migration, and
// the reader gate is held closed for the critical section. On a miss the
// caller falls back to the RSM.
//
// Admission protocol (the Dekker pairing with slowEnter): claim the word,
// publish the masks, close the reader gate, THEN re-check that the
// component is still idle. Every RSM issuer announces intent (rsmIntent)
// before scanning the word, so by sequential consistency either our
// re-check observes the issuer (and we retract) or the issuer's scan
// observes our fully published claim (and migrates it). The same argument
// pairs the gate-close with the reader plane's slot-publish/gate-re-check.
func (s *shard) fastWriteAcquire(read, write []ResourceID) (Token, bool) {
	if s.fastWRevoked.Load() {
		s.fastWriteMissed(s.fastWriteBusy())
		return Token{}, false
	}
	if s.fastWriteBusy() {
		s.fastWriteMissed(true)
		return Token{}, false
	}
	var rmask, wmask [fastSlotWords]uint64
	for _, a := range read {
		if int(a) >= fastMaxResource {
			s.fastWriteMissed(false)
			return Token{}, false
		}
		rmask[int(a)>>6] |= 1 << (uint(a) & 63)
	}
	for _, a := range write {
		if int(a) >= fastMaxResource {
			s.fastWriteMissed(false)
			return Token{}, false
		}
		wmask[int(a)>>6] |= 1 << (uint(a) & 63)
	}
	seq := s.fastWSeq.Add(1)
	if !s.fastWWord.CompareAndSwap(0, seq) {
		s.fastWriteMissed(true)
		return Token{}, false
	}
	for w := range rmask {
		s.fastWRead[w].Store(rmask[w])
		s.fastWWrite[w].Store(wmask[w])
	}
	s.fastWriters.Add(1)
	// Re-check: the gate must count exactly us (a slow write-capable request
	// between writerEnter and writerExit holds it too, and stays invisible to
	// rsmLive until issued), the RSM must still be empty with no issuer in
	// flight, and no fast reader may hold a slot (a reader admitted before
	// our gate-close is ordered before this scan and is seen here; one that
	// claims after our gate-close sees the gate and retracts).
	if s.fastWriters.Load() != 1 || s.rsmLive.Load() != 0 ||
		s.rsmIntent.Load() != 0 || s.anyFastReader() {
		s.fastWWord.Store(0)
		// A contender may have scanned the claim before the retraction and
		// recorded a surrogate for it; retire it, or the RSM holds a phantom
		// write lock forever.
		_ = s.retireWriteSurrogate(seq)
		s.fastWriters.Add(-1)
		s.fastWriteMissed(true)
		return Token{}, false
	}
	if s.fastWHitC != nil {
		s.fastWHitC.Inc()
	}
	s.fastWOps.Add(1)
	if s.fastWMissStreak.Load() != 0 {
		s.fastWMissStreak.Store(0)
	}
	return Token{s: s, fastW: seq}, true
}

// fastWriteRelease ends a fast writer's critical section. The word CAS
// doubles as the double-release check (claim sequences are never reused, and
// contenders never modify the word). Ordering is soundness-critical: the
// surrogate a contender may have recorded is retired BEFORE the reader gate
// reopens — otherwise a fast reader could be admitted while the surrogate
// still write-locks the component in the RSM.
func (s *shard) fastWriteRelease(t Token) error {
	if !s.fastWWord.CompareAndSwap(t.fastW, 0) {
		return ErrAlreadyReleased
	}
	err := s.retireWriteSurrogate(t.fastW)
	s.fastWriters.Add(-1)
	return err
}

// retireWriteSurrogate retires the surrogate RSM write request a contender
// may have recorded for the withdrawn claim seq (released, or retracted by
// the admission re-check). The handshake is the reader plane's: the fastWMig
// load is ordered after the word withdrawal, a migrating contender stores
// fastWMig before re-checking the word, so at least one side sees the other;
// the map delete under s.mu arbitrates exactly-once retirement. A surrogate
// for an admitted fast writer is always satisfied (it was the first request
// into an empty RSM) and is completed — waking whatever queued behind it;
// one recorded for a doomed, mid-retraction claim may be waiting and is
// canceled instead.
func (s *shard) retireWriteSurrogate(seq uint64) error {
	if s.fastWMig.Load() != seq {
		return nil
	}
	s.mu.Lock()
	id, ok := s.fastWSurr[seq]
	var err error
	if ok {
		delete(s.fastWSurr, seq)
		if st, serr := s.rsm.State(id); serr == nil && st == core.StateSatisfied {
			err = s.rsm.Complete(s.tick(), id)
		} else {
			err = s.rsm.CancelRequest(s.tick(), id)
		}
		s.selfCheck()
	}
	s.unlock()
	return err
}

// slowEnter announces an imminent RSM issuance on this shard (any kind:
// read, write, incremental, upgradeable) and, if a fast writer holds the
// word, materializes it into the RSM first. It must be called before the
// issuing path takes s.mu and be balanced by slowExit only after the
// issuance is reflected in rsmLive (runOp and unlock store rsmLive before
// publishing completion), so there is no instant where a fast writer can
// observe "no intent, empty RSM" while a conflicting request is in flight.
// No-op when the writer plane is off.
func (s *shard) slowEnter() {
	if !s.fastW {
		return
	}
	s.rsmIntent.Add(1)
	if s.fastWWord.Load() != 0 {
		s.migrateFastWriter()
	}
}

// slowExit retracts the slowEnter announcement.
func (s *shard) slowExit() {
	if !s.fastW {
		return
	}
	s.rsmIntent.Add(-1)
}

// migrateFastWriter issues a surrogate RSM write request for the current
// writer-word claim, if any and not already migrated. The surrogate is the
// first request to enter the (empty — see the package comment's induction)
// RSM, so it is satisfied immediately and holds exactly the fast writer's
// published footprint; the caller's own request then queues behind it
// exactly as it would behind the equivalent slow writer. If the claim is
// withdrawn while the surrogate is being recorded, the re-check retires it
// on the spot. A doomed mid-retraction claim may be scanned with a partial
// (even empty) mask; an empty surrogate fails Issue and is skipped — the
// retracting writer is not in a critical section, so nothing is lost.
func (s *shard) migrateFastWriter() {
	s.mu.Lock()
	seq := s.fastWWord.Load()
	if seq == 0 || s.fastWMig.Load() == seq {
		s.unlock()
		return
	}
	id, err := s.rsm.Issue(s.tick(), decodeMask(&s.fastWRead), decodeMask(&s.fastWWrite), fastWriterSurrogateTag)
	if err != nil {
		s.unlock()
		return
	}
	if s.fastWSurr == nil {
		s.fastWSurr = make(map[uint64]core.ReqID)
	}
	s.fastWSurr[seq] = id
	s.fastWMig.Store(seq)
	if s.fastWWord.Load() != seq {
		// The claim was withdrawn between our first look and the fastWMig
		// store and cannot have seen it; retire the surrogate here.
		delete(s.fastWSurr, seq)
		if st, serr := s.rsm.State(id); serr == nil && st == core.StateSatisfied {
			_ = s.rsm.Complete(s.tick(), id)
		} else {
			_ = s.rsm.CancelRequest(s.tick(), id)
		}
	} else if s.fastWMigratedC != nil {
		s.fastWMigratedC.Inc()
	}
	s.selfCheck()
	s.unlock()
}

// fastWriteMissed records a fast-eligible write-capable acquisition served
// by the RSM, driving the writer plane's revocation hysteresis exactly like
// the reader plane's: a streak of revokeMisses busy misses revokes the
// plane, and graceReads subsequent misses that find the component fully
// idle re-enable it. A revocation that lands within twice the revocation
// budget of the previous re-enable counts as a revocation storm — the
// plane is thrashing between the two states and amortizing nothing.
func (s *shard) fastWriteMissed(busy bool) {
	if s.fastWMissC != nil {
		s.fastWMissC.Inc()
	}
	s.fastWOps.Add(1)
	if busy {
		if !s.fastWRevoked.Load() && s.fastWMissStreak.Add(1) >= s.revokeMisses {
			if !s.fastWRevoked.Swap(true) {
				if s.fastWRevokedC != nil {
					s.fastWRevokedC.Inc()
				}
				if s.fastWReenabled.Load() && s.fastWOps.Load() < 2*s.revokeMisses {
					if s.fastWStormC != nil {
						s.fastWStormC.Inc()
					}
				}
				s.fastWGrace.Store(s.graceReads)
			}
		}
		return
	}
	s.fastWMissStreak.Store(0)
	if s.fastWRevoked.Load() && !s.fastWriteBusy() {
		if s.fastWGrace.Add(-1) <= 0 {
			s.fastWReenabled.Store(true)
			s.fastWOps.Store(0)
			s.fastWRevoked.Store(false)
		}
	}
}
