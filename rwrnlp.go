// Package rwrnlp provides a goroutine-facing implementation of the R/W RNLP
// — the multi-resource real-time reader/writer locking protocol of Ward and
// Anderson (IPDPS 2014): fine-grained nested locking over a set of declared
// resources, with concurrent readers, phase-fair reader/writer alternation,
// deadlock freedom by construction, R/W mixing (Sec. 3.5), read-to-write
// upgrading (Sec. 3.6), and incremental locking (Sec. 3.7).
//
// Usage:
//
//	b := rwrnlp.NewSpecBuilder(3)            // resources 0, 1, 2
//	b.DeclareRequest([]rwrnlp.ResourceID{0, 1}, nil) // a potential 2-resource read
//	p := rwrnlp.New(b.Build(), rwrnlp.WithPlaceholders())
//
//	tok, _ := p.Acquire(ctx, []rwrnlp.ResourceID{0, 1}, nil) // read lock 0 and 1
//	defer p.Release(tok)
//
// The protocol requires the shapes of potential multi-resource requests to
// be declared up front (the same a-priori knowledge classical real-time
// protocols like the PCP assume): the declared read sets drive the
// write-expansion/placeholder machinery that makes the worst-case reader
// blocking O(1). Issuing an undeclared multi-resource READ request weakens
// the writer FIFO guarantees; single-resource requests never need
// declaration.
//
// # Sharding
//
// The declared footprints partition the resources into connected components
// (core.Spec computes them), and requests confined to different components
// can never conflict with — nor even share a queue with — each other. New
// therefore runs one RSM behind one mutex per component, so acquisitions on
// disjoint components proceed independently; Rule G4's total order is only
// needed among requests that can interact, so the protocol's guarantees
// (Theorems 1 and 2) hold per component exactly as in the single-RSM build.
// Every declared request lies within one component by construction and takes
// this fast path. An undeclared request spanning several components is still
// served, by a slow path that acquires each component's slice in ascending
// component order (deadlock-free: all hold-wait edges point up) — but such a
// request is satisfied piecewise, not atomically, and inherits no FIFO bound
// across components. WithoutSharding restores the single global RSM.
//
// Real-time caveat: the Go runtime scheduler does not expose real-time
// priorities, so this package preserves the protocol's ordering semantics
// (who is satisfied before whom: timestamp-ordered writers, phase-fair
// alternation, entitlement) but cannot enforce the paper's timing bounds,
// which depend on Properties P1/P2 of an RTOS progress mechanism. The
// repository's simulator (internal/sim) validates the timing claims under
// the paper's exact model; this package is the practical concurrency
// library distilled from them.
package rwrnlp

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/obs"
)

// ResourceID identifies a shared resource (dense, zero-based).
type ResourceID = core.ResourceID

// Spec is the immutable description of the resource system: the number of
// resources and the read-sharing relation derived from declared potential
// requests.
type Spec = core.Spec

// SpecBuilder declares the system's potential requests. See
// core.SpecBuilder; re-exported for the public API.
type SpecBuilder = core.SpecBuilder

// NewSpecBuilder creates a builder for a system of q resources.
func NewSpecBuilder(q int) *SpecBuilder { return core.NewSpecBuilder(q) }

// Sentinel errors of the public API. Compare with errors.Is; messages may
// carry wrapped detail.
var (
	// ErrEmptyRequest reports an acquisition that names no resources.
	ErrEmptyRequest = core.ErrEmptyRequest

	// ErrUnknownResource reports a resource ID outside [0, q).
	ErrUnknownResource = core.ErrUnknownResource

	// ErrAlreadyReleased reports a second Release of the same Token (or
	// Incremental/Upgradeable), or the release of a zero Token.
	ErrAlreadyReleased = errors.New("rwrnlp: already released")

	// ErrCrossComponent reports an incremental or upgradeable request whose
	// resources span multiple declared components. Those forms need one
	// atomic timestamp in one total order; span a single component (declare
	// the footprint) or construct the Protocol with WithoutSharding.
	ErrCrossComponent = errors.New("rwrnlp: request spans multiple resource components")
)

// Protocol is a ready-to-use R/W RNLP instance. All methods are safe for
// concurrent use.
type Protocol struct {
	cfg    config
	spec   *Spec
	shards []*shard

	// Observability (nil unless WithMetrics): the wall* histograms are
	// resolved once so the acquisition path never touches the registry.
	metrics   *obs.Metrics
	slowPath  *obs.Counter
	wallAcqR  *obs.Histogram
	wallAcqW  *obs.Histogram
	wallBlock *obs.Histogram
	wallCS    *obs.Histogram

	// Causal attribution and black-box capture (each nil unless its option
	// was set): one attributor and one flight recorder serve every shard;
	// the watchdogs are per shard, so each one sees a single tick clock.
	attr         *obs.Attributor
	attrSlowNS   *obs.Histogram
	attrRevokeNS *obs.Histogram
	flight       *obs.FlightRecorder
	wdogs        []*obs.Watchdog

	// Continuous telemetry (nil unless WithTimeSeries): a bounded snapshot
	// ring whose capture goroutine runs from New until Close.
	ts *obs.TimeSeries

	// closeOnce makes Close idempotent and safe to race with itself; the
	// rnlpd service tier calls Close from session teardown and shutdown
	// paths that can overlap.
	closeOnce sync.Once
}

// Metrics re-exports the obs registry type for the public API.
type Metrics = obs.Metrics

// MetricsSnapshot re-exports the obs snapshot type for the public API.
type MetricsSnapshot = obs.Snapshot

// Attribution-layer re-exports (see WithAttribution, WithFlightRecorder,
// WithStallWatchdog).
type (
	// AttributionReport is the causal-attribution summary: per-component
	// delay totals plus the worst blocking chains.
	AttributionReport = obs.AttributionReport
	// BlockChain is one request's delay decomposition and wait edges.
	BlockChain = obs.BlockChain
	// ReqID identifies a request in chains and flight records.
	ReqID = core.ReqID
	// FlightRecorder is the bounded per-shard ring of recent protocol
	// events.
	FlightRecorder = obs.FlightRecorder
	// FlightDump is a serializable flight-recorder snapshot.
	FlightDump = obs.FlightDump
	// WatchdogConfig configures the stall watchdog (per shard).
	WatchdogConfig = obs.WatchdogConfig
	// StallReport describes one watchdog firing.
	StallReport = obs.StallReport
	// TimeSeries is the bounded snapshot ring behind WithTimeSeries.
	TimeSeries = obs.TimeSeries
	// TimeSeriesReport is a windowed rates/quantiles/bound-utilization query.
	TimeSeriesReport = obs.TimeSeriesReport
)

// New creates a Protocol for the given resource system. With no options the
// protocol runs sharded (one RSM per declared resource component), blocking
// waiters, no placeholders, no metrics; see the With… options and the
// deprecated Options struct.
func New(spec *Spec, opts ...Option) *Protocol {
	cfg := defaultConfig()
	for _, o := range opts {
		if o != nil {
			o.apply(&cfg)
		}
	}
	n := 1
	if cfg.sharding {
		if n = spec.NumComponents(); n < 1 {
			n = 1
		}
	}
	p := &Protocol{cfg: cfg, spec: spec}
	if cfg.metrics {
		p.metrics = obs.NewMetrics()
		p.slowPath = p.metrics.Counter(obs.MSlowPath)
		p.wallAcqR = p.metrics.Histogram(obs.MWallAcqReadNS)
		p.wallAcqW = p.metrics.Histogram(obs.MWallAcqWriteNS)
		p.wallBlock = p.metrics.Histogram(obs.MWallBlockNS)
		p.wallCS = p.metrics.Histogram(obs.MWallCSNS)
	}
	if cfg.attrTopK > 0 {
		reg := p.metrics
		if reg == nil {
			reg = obs.NewMetrics()
		}
		p.attr = obs.NewAttributor(reg, cfg.attrTopK)
		p.attrSlowNS = reg.Histogram(obs.AttrSlowPathNS)
		p.attrRevokeNS = reg.Histogram(obs.AttrFastRevocationNS)
	}
	if cfg.flightDepth > 0 {
		p.flight = obs.NewFlightRecorder(n, cfg.flightDepth)
	}
	if cfg.watchdog != nil {
		wc := *cfg.watchdog
		if wc.Flight == nil {
			wc.Flight = p.flight // may still be nil: reports just carry no dump
		}
		p.wdogs = make([]*obs.Watchdog, n)
		for i := range p.wdogs {
			p.wdogs[i] = obs.NewWatchdog(wc)
		}
	}
	p.shards = make([]*shard, n)
	for i := range p.shards {
		p.shards[i] = newShard(p, i, n)
	}
	if cfg.tsInterval > 0 {
		p.ts = obs.NewTimeSeries(p.metrics, cfg.tsInterval, cfg.tsCapacity)
		p.ts.Start()
	}
	return p
}

// TimeSeries returns the protocol's telemetry ring, or nil when
// WithTimeSeries was not set. Query it for windowed rates, tail quantiles,
// and bound utilization; it is also served at /debug/rnlp/timeseries by
// DebugMux.
func (p *Protocol) TimeSeries() *TimeSeries { return p.ts }

// Close releases the protocol's background resources — today the
// WithTimeSeries capture goroutine; tokens and shard state need no cleanup.
// The protocol remains usable for acquisitions after Close (telemetry simply
// stops accumulating history). Idempotent and safe to call concurrently —
// with itself and with in-flight Acquires/Releases; always nil.
func (p *Protocol) Close() error {
	p.closeOnce.Do(func() {
		if p.ts != nil {
			p.ts.Stop()
		}
	})
	return nil
}

// NumShards reports how many independent RSM shards the protocol runs — the
// number of declared resource components, or 1 under WithoutSharding.
func (p *Protocol) NumShards() int { return len(p.shards) }

// shardOf returns the shard owning resource a.
func (p *Protocol) shardOf(a ResourceID) *shard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	return p.shards[p.spec.Component(a)]
}

// Metrics returns the protocol's metrics registry, or nil when metrics are
// disabled. Event-derived histograms are in logical protocol ticks (one tick
// per shard invocation); the wall_* histograms are wall-clock nanoseconds;
// the shard_* series carry a {shard=i} label.
func (p *Protocol) Metrics() *Metrics { return p.metrics }

// FlightRecorder returns the protocol's flight recorder, or nil when
// WithFlightRecorder was not set. Dump() is safe at any time, concurrent
// with the workload.
func (p *Protocol) FlightRecorder() *FlightRecorder { return p.flight }

// Attribution reports the causal blocking attribution gathered so far: the
// per-component delay decomposition and the worst blocking chains, with
// spans in logical shard ticks. The zero report is returned when
// WithAttribution was not set (check Checked == 0).
func (p *Protocol) Attribution() AttributionReport {
	if p.attr == nil {
		return AttributionReport{}
	}
	return p.attr.Report()
}

// WatchdogFirings reports how many stall-watchdog firings have occurred
// across all shards (0 when WithStallWatchdog was not set).
func (p *Protocol) WatchdogFirings() int64 {
	var total int64
	for _, w := range p.wdogs {
		total += w.Firings()
	}
	return total
}

// StallReports returns the retained stall reports of every shard watchdog.
func (p *Protocol) StallReports() []StallReport {
	var out []StallReport
	for _, w := range p.wdogs {
		out = append(out, w.Reports()...)
	}
	return out
}

// DebugHandler serves the metrics snapshot over HTTP (JSON; ?format=text
// for a plain dump) — mount it on a debug mux in long-running services. It
// serves an empty snapshot when metrics are disabled.
func (p *Protocol) DebugHandler() http.Handler { return obs.Handler(p.metrics) }

// DebugMux serves the full observability surface of this protocol instance:
//
//	/metrics                metrics snapshot (JSON; ?format=text|prom|openmetrics)
//	/debug/rnlp/flight      flight-recorder dump (JSON; ?format=perfetto)
//	/debug/rnlp/watchdog    stall-watchdog firings and reports
//	/debug/rnlp/timeseries  windowed rates/quantiles/bound utilization (?window=30s)
//	/debug/rnlp/attr        causal blocking attribution (JSON; ?format=text)
//	/debug/pprof/...        the standard pprof handlers
//	/healthz                "ok"
//
// Routes whose subsystem is disabled serve empty data.
func (p *Protocol) DebugMux() http.Handler {
	cfg := obs.DebugMuxConfig{
		Metrics:   p.metrics,
		Flight:    p.flight,
		Series:    p.ts,
		Watchdogs: p.wdogs,
	}
	if p.attr != nil {
		cfg.Attribution = p.Attribution
	}
	return obs.NewDebugMux(cfg)
}

// SetTracer installs a secondary observer receiving every protocol event —
// feed it a trace.Recorder to machine-check an execution against the
// paper's properties. Must be called before any acquisition; it replaces
// any observers previously set with SetTracer or AddObserver (the metrics
// observers enabled by WithMetrics are unaffected). With several shards the
// tracer sees each shard's events in order but the shards interleave; the
// trace checker is insensitive to that, since cross-shard requests never
// conflict. (The argument type lives in an internal package; this hook is
// for in-module tooling, tests, and the examples.)
func (p *Protocol) SetTracer(o core.Observer) {
	for _, s := range p.shards {
		s.mu.Lock()
		s.tracer = o
		s.unlock()
	}
}

// AddObserver attaches an additional observer alongside any existing ones
// (fan-out via core.MultiObserver). Must be called before any acquisition.
func (p *Protocol) AddObserver(o core.Observer) {
	for _, s := range p.shards {
		s.mu.Lock()
		s.tracer = core.MultiObserver(s.tracer, o)
		s.unlock()
	}
}

// nowNS reads the wall clock only when some consumer (metrics, the
// attribution wall-clock components) needs it, keeping the fully disabled
// acquisition path free of time syscalls.
func (p *Protocol) nowNS() int64 {
	if p.metrics == nil && p.attr == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// finishAcquire records wall-clock acquisition metrics and mints the token.
// start/blockStart are nowNS readings (0 when metrics are disabled or the
// request never blocked). wgate marks a token whose Release must reopen its
// shard's writer gate.
func (p *Protocol) finishAcquire(s *shard, id core.ReqID, start, blockStart int64, isWrite, wgate bool, rest []tokenPart) Token {
	if p.metrics == nil {
		return Token{s: s, id: id, wgate: wgate, rest: rest}
	}
	now := time.Now().UnixNano()
	if isWrite {
		p.wallAcqW.Observe(now - start)
	} else {
		p.wallAcqR.Observe(now - start)
	}
	if blockStart != 0 {
		p.wallBlock.Observe(now - blockStart)
	}
	return Token{s: s, id: id, acqNS: now, wgate: wgate, rest: rest}
}

// tokenPart is one additional component slice held by a slow-path Token.
type tokenPart struct {
	s     *shard
	id    core.ReqID
	wgate bool // this part closed its shard's writer gate
}

// Token identifies a held acquisition, to be passed to Release. The zero
// Token is not valid; releasing it (or releasing twice) returns
// ErrAlreadyReleased.
type Token struct {
	s  *shard
	id core.ReqID
	// acqNS is the wall-clock satisfaction time (0 when metrics are
	// disabled), letting Release attribute the critical-section length.
	acqNS int64
	// rest holds the higher-component slices of a multi-component slow-path
	// acquisition, ascending; nil on the fast path.
	rest []tokenPart
	// wgate marks a write-capable token whose Release reopens the shard's
	// writer gate (see fastpath.go).
	wgate bool
	// fastSeq/fastSlot identify a reader-fast-path acquisition
	// (fastSeq != 0): the claim sequence and slot to CAS free.
	fastSeq  uint64
	fastSlot int32
	// fastW identifies a writer-fast-path acquisition (fastW != 0): the
	// claim sequence to CAS off the shard's writer word.
	fastW uint64
	// region is the critical section's runtime/trace region (nil unless
	// WithProfilingLabels and tracing were active at acquisition); Release
	// ends it.
	region *trace.Region
}

// part is one component's slice of a request footprint.
type part struct {
	s           *shard
	read, write []ResourceID
}

// split validates the footprint and groups it by component, ascending. The
// common case — all resources in one component, which every declared request
// satisfies by construction — returns exactly one part.
func (p *Protocol) split(read, write []ResourceID) ([]part, error) {
	q := p.spec.NumResources()
	check := func(ids []ResourceID) error {
		for _, id := range ids {
			if id < 0 || int(id) >= q {
				return fmt.Errorf("%w: resource %d not in [0,%d)", ErrUnknownResource, id, q)
			}
		}
		return nil
	}
	if err := check(read); err != nil {
		return nil, err
	}
	if err := check(write); err != nil {
		return nil, err
	}
	if len(read)+len(write) == 0 {
		return nil, ErrEmptyRequest
	}
	if len(p.shards) == 1 {
		return []part{{s: p.shards[0], read: read, write: write}}, nil
	}
	first, multi := -1, false
	for _, ids := range [2][]ResourceID{read, write} {
		for _, id := range ids {
			c := p.spec.Component(id)
			if first < 0 {
				first = c
			} else if c != first {
				multi = true
			}
		}
	}
	if !multi {
		return []part{{s: p.shards[first], read: read, write: write}}, nil
	}
	byComp := map[int]*part{}
	slice := func(ids []ResourceID, write bool) {
		for _, id := range ids {
			c := p.spec.Component(id)
			pt := byComp[c]
			if pt == nil {
				pt = &part{s: p.shards[c]}
				byComp[c] = pt
			}
			if write {
				pt.write = append(pt.write, id)
			} else {
				pt.read = append(pt.read, id)
			}
		}
	}
	slice(read, false)
	slice(write, true)
	comps := make([]int, 0, len(byComp))
	for c := range byComp {
		comps = append(comps, c)
	}
	sort.Ints(comps)
	parts := make([]part, 0, len(comps))
	for _, c := range comps {
		parts = append(parts, *byComp[c])
	}
	return parts, nil
}

// tagKey is the context key of ContextWithTag (unexported: collisions are
// impossible by construction).
type tagKey struct{}

// ContextWithTag returns a context carrying a request tag, pprof-label style:
// every RSM-path acquisition issued under the returned context stamps tag
// onto all of its core protocol events, so flight-recorder records,
// attribution chains, and OpenMetrics exemplars carry it. The rnlpd service
// tier uses string trace IDs as tags, which is what the cross-node trace
// stitching joins on; any fmt.Sprint-able value works. Fast-path hits bypass
// the RSM and are never stamped — tagging must not perturb the acquisition
// path it observes.
func ContextWithTag(ctx context.Context, tag any) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, tagKey{}, tag)
}

// TagFromContext returns the request tag installed by ContextWithTag, or nil.
func TagFromContext(ctx context.Context) any {
	if ctx == nil {
		return nil
	}
	return ctx.Value(tagKey{})
}

// ChainByTag returns the most recent retained blocking chain whose request
// carried the given tag (see ContextWithTag), with spans in logical shard
// ticks. It reports false when WithAttribution was not set, the tag was never
// seen, or its chain has been evicted — including when the tagged acquisition
// was a fast-path hit, which never reaches the attributor.
func (p *Protocol) ChainByTag(tag string) (BlockChain, bool) {
	if p.attr == nil {
		return BlockChain{}, false
	}
	return p.attr.ChainByTag(tag)
}

// BlockerTags resolves the trace tags of a chain's blockers: for every
// request ID on the chain's issue/entitle wait edges whose own chain is still
// retained and carried a tag, the map holds reqID → tag. This is how the
// service tier names the blocking writer's trace in a cross-node wait span.
// Blockers that were untagged, fast-path hits, or already evicted are absent.
func (p *Protocol) BlockerTags(c BlockChain) map[uint64]string {
	if p.attr == nil {
		return nil
	}
	var out map[uint64]string
	for _, ids := range [2][]core.ReqID{c.IssueBlockers, c.EntitleBlockers} {
		for _, id := range ids {
			if _, ok := out[uint64(id)]; ok {
				continue
			}
			if bc, ok := p.attr.Chain(id); ok && bc.Tag != "" {
				if out == nil {
					out = make(map[uint64]string)
				}
				out[uint64(id)] = bc.Tag
			}
		}
	}
	return out
}

// Acquire blocks until read access to every resource in read and write
// access to every resource in write is held (Sec. 3.5 mixing: both sets may
// be non-empty). Multiple resources are acquired atomically with no
// deadlock risk — that is the point of the protocol. An empty request
// returns ErrEmptyRequest. If ctx is done before satisfaction, the request
// is withdrawn and ctx.Err() returned; when satisfaction races with
// cancellation, the acquisition wins and the caller owns the token (check
// the error, not the context). A nil ctx never cancels.
//
// A request spanning several components (necessarily undeclared) is served
// by the slow path: each component's slice is acquired in ascending
// component order, piecewise rather than atomically — see the package
// documentation.
func (p *Protocol) Acquire(ctx context.Context, read, write []ResourceID) (Token, error) {
	if !p.cfg.profLabels {
		return p.acquire(ctx, read, write)
	}
	c := ctx
	if c == nil {
		c = context.Background()
	}
	mode := "read"
	if len(write) > 0 {
		mode = "write"
	}
	var tok Token
	var err error
	pprof.Do(c, pprof.Labels("rnlp_mode", mode), func(c context.Context) {
		tok, err = p.acquire(c, read, write)
	})
	if err == nil && trace.IsEnabled() {
		// The critical section becomes a trace region, ended by Release (which
		// must then run on this goroutine — see WithProfilingLabels).
		tok.region = trace.StartRegion(c, "rwrnlp.cs")
	}
	return tok, err
}

// acquire is the unlabeled acquisition path behind Acquire.
func (p *Protocol) acquire(ctx context.Context, read, write []ResourceID) (Token, error) {
	start := p.nowNS()
	parts, err := p.split(read, write)
	if err != nil {
		return Token{}, err
	}
	tag := TagFromContext(ctx)
	isWrite := len(write) > 0
	if len(parts) == 1 {
		s := parts[0].s
		fastMissed := false
		if !isWrite && s.fastR {
			if tok, ok := s.fastAcquire(read); ok {
				if p.metrics != nil {
					now := time.Now().UnixNano()
					p.wallAcqR.Observe(now - start)
					tok.acqNS = now
				}
				return tok, nil
			}
			fastMissed = true
		}
		if isWrite && s.fastW {
			if tok, ok := s.fastWriteAcquire(read, write); ok {
				if p.metrics != nil {
					now := time.Now().UnixNano()
					p.wallAcqW.Observe(now - start)
					tok.acqNS = now
				}
				return tok, nil
			}
			fastMissed = true
		}
		if p.cfg.profLabels {
			// A fast hit returned above already (its samples carry the outer
			// rnlp_mode label); what reaches here is the RSM path.
			path := "slow"
			if fastMissed {
				path = "fast-miss"
			}
			pprof.SetGoroutineLabels(pprof.WithLabels(ctx,
				pprof.Labels("rnlp_shard", strconv.Itoa(s.idx), "rnlp_path", path)))
		}
		wgate := isWrite && s.fastSlots != nil
		if wgate {
			s.writerEnter()
		}
		id, w, err := s.acquire(read, write, tag)
		if err != nil {
			if wgate {
				s.writerExit()
			}
			return Token{}, err
		}
		var blockStart int64
		if w != nil {
			blockStart = p.nowNS()
			if err := s.awaitAcquire(ctx, id, w); err != nil {
				if wgate {
					s.writerExit()
				}
				return Token{}, err
			}
		}
		tok := p.finishAcquire(s, id, start, blockStart, isWrite, wgate, nil)
		if fastMissed && p.attrRevokeNS != nil && start != 0 {
			// Revocation penalty: the wall-clock cost this fast-eligible read
			// paid for being routed through the RSM.
			p.attrRevokeNS.Observe(time.Now().UnixNano() - start)
		}
		return tok, nil
	}

	// Slow path: ascending component order; on failure release what is held
	// in reverse.
	if p.slowPath != nil {
		p.slowPath.Inc()
	}
	var held []tokenPart
	var blockStart int64
	for _, pt := range parts {
		wgate := len(pt.write) > 0 && pt.s.fastSlots != nil
		if wgate {
			pt.s.writerEnter()
		}
		id, w, err := pt.s.acquire(pt.read, pt.write, tag)
		if err == nil && w != nil {
			if blockStart == 0 {
				blockStart = p.nowNS()
			}
			err = pt.s.awaitAcquire(ctx, id, w)
		}
		if err != nil {
			if wgate {
				pt.s.writerExit()
			}
			for i := len(held) - 1; i >= 0; i-- {
				_ = held[i].s.release(held[i].id)
				if held[i].wgate {
					held[i].s.writerExit()
				}
			}
			return Token{}, err
		}
		held = append(held, tokenPart{s: pt.s, id: id, wgate: wgate})
	}
	first := held[0]
	tok := p.finishAcquire(first.s, first.id, start, blockStart, isWrite, first.wgate, held[1:])
	if p.attrSlowNS != nil && start != 0 {
		// Cross-component slow path: piecewise acquisition time, outside any
		// per-component Theorem 1/2 bound.
		p.attrSlowNS.Observe(time.Now().UnixNano() - start)
	}
	return tok, nil
}

// Read is shorthand for Acquire(ctx, resources, nil).
func (p *Protocol) Read(ctx context.Context, resources ...ResourceID) (Token, error) {
	return p.Acquire(ctx, resources, nil)
}

// Write is shorthand for Acquire(ctx, nil, resources).
func (p *Protocol) Write(ctx context.Context, resources ...ResourceID) (Token, error) {
	return p.Acquire(ctx, nil, resources)
}

// AcquireContext is the v1 name for a cancelable acquisition.
//
// Deprecated: Acquire is context-first since v2; call it directly.
// AcquireContext will be removed in v3; see the README's migration table.
func (p *Protocol) AcquireContext(ctx context.Context, read, write []ResourceID) (Token, error) {
	return p.Acquire(ctx, read, write)
}

// Release ends the critical section of a token, unlocking all its resources
// and satisfying whichever requests become eligible (their wakeups are
// signaled in one batch outside the shard lock). Releasing a token twice, or
// releasing the zero Token, returns ErrAlreadyReleased.
func (p *Protocol) Release(t Token) error {
	if t.s == nil {
		return ErrAlreadyReleased
	}
	if t.region != nil {
		t.region.End()
	}
	if t.acqNS != 0 && p.wallCS != nil {
		p.wallCS.Observe(time.Now().UnixNano() - t.acqNS)
	}
	var firstErr error
	for i := len(t.rest) - 1; i >= 0; i-- {
		err := t.rest[i].s.release(t.rest[i].id)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if t.rest[i].wgate && err == nil {
			t.rest[i].s.writerExit()
		}
	}
	if t.fastSeq != 0 {
		if err := t.s.fastRelease(t); err != nil && firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	if t.fastW != 0 {
		if err := t.s.fastWriteRelease(t); err != nil && firstErr == nil {
			firstErr = err
		}
		return firstErr
	}
	err := t.s.release(t.id)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if t.wgate && err == nil {
		// The write-capable request completed: its RSM locks are gone, so
		// the writer gate reopens. A failed (double) release must not
		// decrement again.
		t.s.writerExit()
	}
	return firstErr
}

// Stats returns the protocol's activity counters, summed over all shards.
// Fast-path acquisitions (reader or writer plane) never reach the RSM and
// are not counted here; see the fastpath_* metrics (or
// WithFastPath(FastPathConfig{}) to route every acquisition through the
// RSM).
func (p *Protocol) Stats() core.Stats {
	var total core.Stats
	for _, s := range p.shards {
		s.mu.Lock()
		st := s.rsm.Stats()
		s.unlock()
		total.Issued += st.Issued
		total.Satisfied += st.Satisfied
		total.Completed += st.Completed
		total.Canceled += st.Canceled
		total.ImmediateSats += st.ImmediateSats
		total.Entitlements += st.Entitlements
		total.UpgradesTaken += st.UpgradesTaken
		total.UpgradesSkipped += st.UpgradesSkipped
	}
	return total
}

func (p *Protocol) String() string {
	return fmt.Sprintf("rwrnlp.Protocol(q=%d, shards=%d, placeholders=%v)",
		p.spec.NumResources(), len(p.shards), p.cfg.placeholders)
}

// QueueState re-exports the per-resource queue snapshot type.
type QueueState = core.QueueState

// Snapshot returns the current queue and holder state of every resource —
// a consistent point-in-time view for debugging and instrumentation: all
// shard locks are held (in ascending order, like the slow path) while the
// queues are read. Request IDs match those inside Tokens, which are not
// exposed; correlate via a tracer if needed. Fast-path holders (reader or
// writer plane) do not appear (they hold no RSM state); use
// WithFastPath(FastPathConfig{}) when snapshots must show every holder.
func (p *Protocol) Snapshot() []QueueState {
	for _, s := range p.shards {
		s.mu.Lock()
	}
	q := p.spec.NumResources()
	out := make([]QueueState, q)
	for a := 0; a < q; a++ {
		out[a] = p.shardOf(ResourceID(a)).rsm.Queues(ResourceID(a))
	}
	for _, s := range p.shards {
		s.unlock()
	}
	return out
}
