// Package rwrnlp provides a goroutine-facing implementation of the R/W RNLP
// — the multi-resource real-time reader/writer locking protocol of Ward and
// Anderson (IPDPS 2014): fine-grained nested locking over a set of declared
// resources, with concurrent readers, phase-fair reader/writer alternation,
// deadlock freedom by construction, R/W mixing (Sec. 3.5), read-to-write
// upgrading (Sec. 3.6), and incremental locking (Sec. 3.7).
//
// Usage:
//
//	b := rwrnlp.NewSpecBuilder(3)            // resources 0, 1, 2
//	b.DeclareRequest([]rwrnlp.ResourceID{0, 1}, nil) // a potential 2-resource read
//	p := rwrnlp.New(b.Build(), rwrnlp.Options{Placeholders: true})
//
//	tok, _ := p.Acquire([]rwrnlp.ResourceID{0, 1}, nil) // read lock 0 and 1
//	defer p.Release(tok)
//
// The protocol requires the shapes of potential multi-resource requests to
// be declared up front (the same a-priori knowledge classical real-time
// protocols like the PCP assume): the declared read sets drive the
// write-expansion/placeholder machinery that makes the worst-case reader
// blocking O(1). Issuing an undeclared multi-resource READ request weakens
// the writer FIFO guarantees; single-resource requests never need
// declaration.
//
// Real-time caveat: the Go runtime scheduler does not expose real-time
// priorities, so this package preserves the protocol's ordering semantics
// (who is satisfied before whom: timestamp-ordered writers, phase-fair
// alternation, entitlement) but cannot enforce the paper's timing bounds,
// which depend on Properties P1/P2 of an RTOS progress mechanism. The
// repository's simulator (internal/sim) validates the timing claims under
// the paper's exact model; this package is the practical concurrency
// library distilled from them.
package rwrnlp

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/obs"
)

// ResourceID identifies a shared resource (dense, zero-based).
type ResourceID = core.ResourceID

// Spec is the immutable description of the resource system: the number of
// resources and the read-sharing relation derived from declared potential
// requests.
type Spec = core.Spec

// SpecBuilder declares the system's potential requests. See
// core.SpecBuilder; re-exported for the public API.
type SpecBuilder = core.SpecBuilder

// NewSpecBuilder creates a builder for a system of q resources.
func NewSpecBuilder(q int) *SpecBuilder { return core.NewSpecBuilder(q) }

// Options configure a Protocol.
type Options struct {
	// Placeholders enables the Sec. 3.4 optimization (recommended): writers
	// enqueue placeholders in the write queues of read-shared resources
	// instead of locking them, strictly increasing concurrency with the
	// same worst-case bounds.
	Placeholders bool

	// Spin makes waiters busy-wait (with cooperative yielding) instead of
	// blocking on a channel. Spinning mirrors the paper's Rule-S1 variant
	// and has lower wake-up latency; blocking is kinder to mixed workloads.
	Spin bool

	// SelfCheck verifies the protocol's structural invariants (mutual
	// exclusion, Prop. E10, queue order, Lemma 6, …) after every
	// invocation and panics on a violation. Costly; for bring-up and tests.
	SelfCheck bool

	// Metrics enables the observability layer (internal/obs): protocol
	// event counters and tick-valued histograms via an attached
	// obs.ProtocolObserver, plus wall-clock acquisition/blocking/CS
	// histograms recorded directly on the acquisition path. Retrieve with
	// Protocol.Metrics; serve with Protocol.DebugHandler. When disabled the
	// only cost on the acquisition path is a nil check.
	Metrics bool
}

// Protocol is a ready-to-use R/W RNLP instance. All methods are safe for
// concurrent use.
type Protocol struct {
	opt Options

	mu      sync.Mutex // serializes RSM invocations (Rule G4's total order)
	rsm     *core.RSM
	clock   core.Time
	waiters map[core.ReqID]*waiter
	tracer  core.Observer

	// Observability (nil unless Options.Metrics): metricsObs survives
	// SetTracer; the wall* histograms are resolved once so the acquisition
	// path never touches the registry.
	metrics    *obs.Metrics
	metricsObs core.Observer
	wallAcqR   *obs.Histogram
	wallAcqW   *obs.Histogram
	wallBlock  *obs.Histogram
	wallCS     *obs.Histogram
}

// Metrics re-exports the obs registry type for the public API.
type Metrics = obs.Metrics

// MetricsSnapshot re-exports the obs snapshot type for the public API.
type MetricsSnapshot = obs.Snapshot

// SetTracer installs a secondary observer receiving every protocol event —
// feed it a trace.Recorder to machine-check an execution against the
// paper's properties. Must be called before any acquisition; it replaces
// any observers previously set with SetTracer or AddObserver (the metrics
// observer enabled by Options.Metrics is unaffected). (The argument type
// lives in an internal package; this hook is for in-module tooling, tests,
// and the examples.)
func (p *Protocol) SetTracer(obs core.Observer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = obs
}

// AddObserver attaches an additional observer alongside any existing ones
// (fan-out via core.MultiObserver). Must be called before any acquisition.
func (p *Protocol) AddObserver(o core.Observer) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tracer = core.MultiObserver(p.tracer, o)
}

// waiter is the parked state of one unsatisfied request.
type waiter struct {
	done atomic.Bool
	ch   chan struct{}
	once sync.Once
}

func newWaiter() *waiter { return &waiter{ch: make(chan struct{})} }

func (w *waiter) signal() {
	w.once.Do(func() {
		w.done.Store(true)
		close(w.ch)
	})
}

func (w *waiter) wait(spin bool) {
	if !spin {
		<-w.ch
		return
	}
	for spins := 0; !w.done.Load(); spins++ {
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// New creates a Protocol for the given resource system.
func New(spec *Spec, opt Options) *Protocol {
	p := &Protocol{
		opt:     opt,
		rsm:     core.NewRSM(spec, core.Options{Placeholders: opt.Placeholders}),
		waiters: make(map[core.ReqID]*waiter),
	}
	if opt.Metrics {
		p.metrics = obs.NewMetrics()
		p.metricsObs = obs.NewProtocolObserver(p.metrics)
		p.wallAcqR = p.metrics.Histogram(obs.MWallAcqReadNS)
		p.wallAcqW = p.metrics.Histogram(obs.MWallAcqWriteNS)
		p.wallBlock = p.metrics.Histogram(obs.MWallBlockNS)
		p.wallCS = p.metrics.Histogram(obs.MWallCSNS)
	}
	p.rsm.SetObserver(core.ObserverFunc(p.observe))
	return p
}

// Metrics returns the protocol's metrics registry, or nil when
// Options.Metrics is disabled. Event-derived histograms are in logical
// protocol ticks (one tick per invocation); the wall_* histograms are
// wall-clock nanoseconds.
func (p *Protocol) Metrics() *Metrics { return p.metrics }

// DebugHandler serves the metrics snapshot over HTTP (JSON; ?format=text
// for a plain dump) — mount it on a debug mux in long-running services. It
// serves an empty snapshot when metrics are disabled.
func (p *Protocol) DebugHandler() http.Handler { return obs.Handler(p.metrics) }

// observe runs under p.mu (the RSM is only invoked with the mutex held).
func (p *Protocol) observe(e core.Event) {
	switch e.Type {
	case core.EvSatisfied, core.EvGranted, core.EvCanceled:
		if w, ok := p.waiters[e.Req]; ok {
			delete(p.waiters, e.Req)
			w.signal()
		}
	}
	if p.metricsObs != nil {
		p.metricsObs.Observe(e)
	}
	if p.tracer != nil {
		p.tracer.Observe(e)
	}
}

// nowNS reads the wall clock only when metrics are enabled, keeping the
// disabled acquisition path free of time syscalls.
func (p *Protocol) nowNS() int64 {
	if p.metrics == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// finishAcquire records wall-clock acquisition metrics and mints the token.
// start/blockStart are nowNS readings (0 when metrics are disabled or the
// request never blocked).
func (p *Protocol) finishAcquire(id core.ReqID, start, blockStart int64, isWrite bool) Token {
	if p.metrics == nil {
		return Token{id: id}
	}
	now := time.Now().UnixNano()
	if isWrite {
		p.wallAcqW.Observe(now - start)
	} else {
		p.wallAcqR.Observe(now - start)
	}
	if blockStart != 0 {
		p.wallBlock.Observe(now - blockStart)
	}
	return Token{id: id, acqNS: now}
}

func (p *Protocol) tick() core.Time {
	p.clock++
	return p.clock
}

// selfCheck runs the invariant audit when enabled; called with p.mu held
// after every protocol invocation.
func (p *Protocol) selfCheck() {
	if !p.opt.SelfCheck {
		return
	}
	if v := p.rsm.CheckInvariants(); len(v) != 0 {
		panic("rwrnlp: invariant violated: " + v[0])
	}
}

// Token identifies a held acquisition, to be passed to Release.
type Token struct {
	id core.ReqID
	// acqNS is the wall-clock satisfaction time (0 when metrics are
	// disabled), letting Release attribute the critical-section length.
	acqNS int64
}

// Acquire blocks until read access to every resource in read and write
// access to every resource in write is held (Sec. 3.5 mixing: both sets may
// be non-empty). Multiple resources are acquired atomically with no
// deadlock risk — that is the point of the protocol. An empty request is an
// error.
func (p *Protocol) Acquire(read, write []ResourceID) (Token, error) {
	start := p.nowNS()
	p.mu.Lock()
	id, err := p.rsm.Issue(p.tick(), read, write, nil)
	p.selfCheck()
	if err != nil {
		p.mu.Unlock()
		return Token{}, err
	}
	st, _ := p.rsm.State(id)
	if st == core.StateSatisfied {
		p.mu.Unlock()
		return p.finishAcquire(id, start, 0, len(write) > 0), nil
	}
	w := newWaiter()
	p.waiters[id] = w
	p.mu.Unlock()
	blockStart := p.nowNS()
	w.wait(p.opt.Spin)
	return p.finishAcquire(id, start, blockStart, len(write) > 0), nil
}

// Read is shorthand for Acquire(resources, nil).
func (p *Protocol) Read(resources ...ResourceID) (Token, error) {
	return p.Acquire(resources, nil)
}

// Write is shorthand for Acquire(nil, resources).
func (p *Protocol) Write(resources ...ResourceID) (Token, error) {
	return p.Acquire(nil, resources)
}

// Release ends the critical section of a token, unlocking all its resources
// and satisfying whichever requests become eligible.
func (p *Protocol) Release(t Token) error {
	if t.acqNS != 0 && p.wallCS != nil {
		p.wallCS.Observe(time.Now().UnixNano() - t.acqNS)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	err := p.rsm.Complete(p.tick(), t.id)
	p.selfCheck()
	return err
}

// Stats returns the protocol's activity counters.
func (p *Protocol) Stats() core.Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rsm.Stats()
}

func (p *Protocol) String() string {
	return fmt.Sprintf("rwrnlp.Protocol(q=%d, placeholders=%v)", p.rsm.Spec().NumResources(), p.opt.Placeholders)
}

// AcquireContext is Acquire with cancellation: if ctx is done before the
// request is satisfied, the request is withdrawn and ctx.Err() returned.
// If satisfaction races with cancellation, the acquisition wins and the
// caller owns the token (check the error, not the context).
func (p *Protocol) AcquireContext(ctx context.Context, read, write []ResourceID) (Token, error) {
	start := p.nowNS()
	p.mu.Lock()
	id, err := p.rsm.Issue(p.tick(), read, write, nil)
	if err != nil {
		p.mu.Unlock()
		return Token{}, err
	}
	st, _ := p.rsm.State(id)
	if st == core.StateSatisfied {
		p.mu.Unlock()
		return p.finishAcquire(id, start, 0, len(write) > 0), nil
	}
	w := newWaiter()
	p.waiters[id] = w
	p.mu.Unlock()

	blockStart := p.nowNS()
	select {
	case <-w.ch:
		return p.finishAcquire(id, start, blockStart, len(write) > 0), nil
	case <-ctx.Done():
	}
	// Withdraw — unless satisfaction won the race.
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.done.Load() {
		return p.finishAcquire(id, start, blockStart, len(write) > 0), nil
	}
	st, err = p.rsm.State(id)
	if err == nil && st == core.StateSatisfied {
		delete(p.waiters, id)
		return p.finishAcquire(id, start, blockStart, len(write) > 0), nil
	}
	delete(p.waiters, id)
	if cerr := p.rsm.CancelRequest(p.tick(), id); cerr != nil {
		return Token{}, cerr
	}
	return Token{}, ctx.Err()
}

// QueueState re-exports the per-resource queue snapshot type.
type QueueState = core.QueueState

// Snapshot returns the current queue and holder state of every resource —
// a consistent point-in-time view for debugging and instrumentation
// (request IDs match those inside Tokens, which are not exposed; correlate
// via a tracer if needed).
func (p *Protocol) Snapshot() []QueueState {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.rsm.Spec().NumResources()
	out := make([]QueueState, q)
	for a := 0; a < q; a++ {
		out[a] = p.rsm.Queues(ResourceID(a))
	}
	return out
}
