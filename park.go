package rwrnlp

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements futex-style per-request parking for the contended
// slow path. Every unsatisfied request gets one waiter, whose lifecycle is
// a single packed state word driven by CAS:
//
//	parkIdle ──signal──▶ parkSignaled          (direct: owner never blocked)
//	parkIdle ──owner───▶ parkParked            (owner commits to blocking)
//	parkParked ─signal─▶ parkSignaled + token  (exactly one wake)
//	parkParked ─owner──▶ parkCancelled         (ctx cancellation won)
//	parkCancelled ◀─signal arrives too late    (spurious: dropped by CAS)
//
// The terminal states are absorbing, so a signal-vs-cancel race settles by
// whichever CAS lands first — never by a double close, and never with a
// lost wakeup: if the signaler's CAS wins, the token is in flight and the
// cancelling owner consumes it; if the canceller's CAS wins, the signaler
// drops the signal as spurious and the owner resolves the request's true
// state under the shard mutex (a satisfied-then-cancelled request is still
// owned — Acquire's documented "acquisition wins" rule).
//
// Parking itself is a buffered channel of capacity one used as a token
// semaphore: signal is one CAS plus one non-blocking send, so a batched
// release that satisfies many requests wakes exactly the entitled ones,
// one runtime wakeup each — no broadcast, no thundering herd. In front of
// the park sits a bounded spin/yield burst (and, under WithSpin, a short
// capped sleep ladder that re-checks the state word before every sleep):
// on a contended shard with short critical sections most signals land
// within the burst, and the request resolves without a scheduler round
// trip at all (counted as park_direct).
//
// ParkChan retains the previous chan-close/sync.Once waiter as an ablation
// baseline; `make park-overhead` prices the two against each other and CI
// fails unless the semaphore parker is strictly faster under contention.
//
// The token design buys one structural advantage the close design cannot
// have: a drained one-token channel is reusable, while a closed channel is
// one-shot. Semaphore waiters therefore recycle through a sync.Pool,
// removing the waiter+channel allocation from every contended acquisition.
// Recycling is only legal on paths where the signaler has provably finished
// with the waiter — the owner consumed the token (the send happens-before
// the receive) or observed the direct-delivery CAS (the signaler's last
// touch). The cancellation paths never recycle: a batched late signal may
// still be in flight against the cancelled waiter, and resetting the state
// word under it would hand the signal to an unrelated future request.

// Waiter states (waiter.state).
const (
	parkIdle      uint32 = iota // created; owner not yet committed to blocking
	parkParked                  // owner is blocked (or about to block) on sema
	parkSignaled                // grant delivered; absorbing
	parkCancelled               // owner withdrew (ctx cancellation); absorbing
)

// Pre-park burst tuning. The yield burst bounds single-P starvation (every
// iteration yields); the sleep ladder is capped so that once a signal has
// fired the waiter sleeps at most parkMaxSleep longer — the old ladder
// re-checked only per rung and could oversleep by two orders of magnitude.
const (
	parkSpinYields = 256
	parkMaxSleep   = 8 * time.Microsecond
)

// parkOutcome classifies one signal delivery, for the shard's accounting
// counters (park_wakeups / park_direct / park_spurious).
type parkOutcome uint8

const (
	parkWokeParked parkOutcome = iota // woke a parked goroutine with one token
	parkDirect                        // delivered before the owner parked
	parkSpurious                      // owner already cancelled; dropped
)

// waiter is the parked state of one unsatisfied request. In semaphore mode
// (the default) state drives everything and sema carries at most one token;
// in legacy chan mode (ParkChan) sema is close-signaled under a sync.Once
// with done mirroring it, exactly the pre-PR 9 machinery, kept as the
// ablation baseline.
type waiter struct {
	state  atomic.Uint32
	sema   chan struct{}
	legacy bool
	done   atomic.Bool // legacy mode only
	once   sync.Once   // legacy mode only
}

// waiterPool recycles semaphore-mode waiters (see the file comment for why
// legacy chan-close waiters cannot be pooled). Pooled waiters are always in
// state parkIdle with an empty channel.
var waiterPool = sync.Pool{
	New: func() any { return &waiter{sema: make(chan struct{}, 1)} },
}

// newWaiter mints a waiter in the shard's configured parking mode.
func (s *shard) newWaiter() *waiter {
	if s.parkChan {
		return &waiter{sema: make(chan struct{}), legacy: true}
	}
	return waiterPool.Get().(*waiter)
}

// recycle returns a semaphore waiter to the pool. Callers must guarantee
// the signaler is done with it: the wakeup token was consumed, or direct
// delivery was observed via the state word. Never call on a cancellation
// path — a late spurious signal may still be in flight.
func (w *waiter) recycle() {
	if w.legacy {
		return
	}
	w.state.Store(parkIdle)
	waiterPool.Put(w)
}

// signal delivers the waiter's one wakeup and reports what it found. Safe
// to call at most once per waiter in semaphore mode (the waiters map hands
// each waiter out exactly once); legacy mode tolerates repeats via the Once.
func (w *waiter) signal() parkOutcome {
	if w.legacy {
		out := parkSpurious
		w.once.Do(func() {
			w.done.Store(true)
			close(w.sema)
			out = parkWokeParked
		})
		return out
	}
	for {
		switch w.state.Load() {
		case parkIdle:
			if w.state.CompareAndSwap(parkIdle, parkSignaled) {
				return parkDirect
			}
		case parkParked:
			if w.state.CompareAndSwap(parkParked, parkSignaled) {
				// The send cannot block (capacity 1, one signal per waiter)
				// and cannot be missed: the owner either is blocked on sema
				// or will consume the token when its cancel CAS fails.
				w.sema <- struct{}{}
				return parkWokeParked
			}
		default:
			// Signaled (double signal — structurally excluded by the waiters
			// map) or cancelled: nothing to wake.
			return parkSpurious
		}
	}
}

// signaled reports whether the wakeup has been delivered.
func (w *waiter) signaled() bool {
	if w.legacy {
		return w.done.Load()
	}
	return w.state.Load() == parkSignaled
}

// cancel resolves the owner's side of a signal-vs-cancel race: true means
// the cancellation won (the request must be withdrawn or re-checked under
// the shard mutex), false means a signal's CAS already landed and its token
// is in flight. Semaphore mode only.
func (w *waiter) cancel() bool {
	return w.state.CompareAndSwap(parkParked, parkCancelled)
}

// preParkSpin runs the bounded burst in front of the park. Blocking mode
// (the default) checks the state word once and parks immediately — exactly
// the old blocking waiter's latency profile, minus its wakeup broadcast.
// Spin mode (WithSpin) folds the old spin machinery in front of the park:
// a yield loop, then a short exponential sleep ladder capped at
// parkMaxSleep that re-checks the state word before every sleep — so the
// worst-case signal-to-wake latency added by the burst is one parkMaxSleep
// rung, not the sum of the ladder. Reports whether the signal already
// landed.
func (w *waiter) preParkSpin(spin bool) bool {
	if w.state.Load() == parkSignaled {
		return true
	}
	if !spin {
		return false
	}
	for i := 0; i < parkSpinYields; i++ {
		if w.state.Load() == parkSignaled {
			return true
		}
		runtime.Gosched()
	}
	for d := time.Microsecond; d <= parkMaxSleep; d *= 2 {
		if w.state.Load() == parkSignaled {
			return true
		}
		time.Sleep(d)
	}
	return w.state.Load() == parkSignaled
}

// park commits the owner to blocking after the pre-park burst. False means
// the signal already landed and the owner must not block.
func (w *waiter) park(spin bool) bool {
	if w.preParkSpin(spin) {
		return false
	}
	return w.state.CompareAndSwap(parkIdle, parkParked)
}

// wait blocks until signaled (no cancellation). Legacy mode preserves the
// pre-PR 9 behavior — block on the closed channel, with the spin option
// running the old yield burst first — except that its sleep ladder now also
// re-checks done before every sleep and is capped at parkMaxSleep (the
// 127µs-oversleep fix applies to both parkers; the ablation pair prices
// chan-close wakeups against token handoff, not a known latency bug).
func (w *waiter) wait(spin bool) {
	if w.legacy {
		if spin {
			for i := 0; i < parkSpinYields; i++ {
				if w.done.Load() {
					return
				}
				runtime.Gosched()
			}
			for d := time.Microsecond; d <= parkMaxSleep; d *= 2 {
				if w.done.Load() {
					return
				}
				time.Sleep(d)
			}
		}
		<-w.sema
		return
	}
	if w.park(spin) {
		<-w.sema
	}
}
