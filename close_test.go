package rwrnlp

import (
	"context"
	"sync"
	"testing"
	"time"
)

// Regression: Protocol.Close must be idempotent and safe to call
// concurrently — with itself and with in-flight Acquires/Releases. The
// rnlpd service tier calls Close from session-teardown and shutdown paths
// that overlap with live traffic.
func TestCloseIdempotentConcurrentWithAcquires(t *testing.T) {
	b := NewSpecBuilder(4)
	if err := b.DeclareRequest([]ResourceID{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	p := New(b.Build(), WithPlaceholders(), WithTimeSeries(time.Millisecond, 16), WithSelfCheck())

	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var (
					tok Token
					err error
				)
				if i%2 == 0 {
					tok, err = p.Write(ctx, ResourceID(i%4))
				} else {
					tok, err = p.Read(ctx, 0, 1)
				}
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if err := p.Release(tok); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(i)
	}

	// Hammer Close from several goroutines while the workload runs.
	var cg sync.WaitGroup
	for i := 0; i < 8; i++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for j := 0; j < 10; j++ {
				if err := p.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}
		}()
	}
	cg.Wait()

	// The protocol must remain usable after Close.
	tok, err := p.Write(context.Background(), 2)
	if err != nil {
		t.Fatalf("acquire after Close: %v", err)
	}
	if err := p.Release(tok); err != nil {
		t.Fatalf("release after Close: %v", err)
	}

	close(stop)
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
}
