package rwrnlp

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// Regression: Protocol.Close must be idempotent and safe to call
// concurrently — with itself and with in-flight Acquires/Releases. The
// rnlpd service tier calls Close from session-teardown and shutdown paths
// that overlap with live traffic.
func TestCloseIdempotentConcurrentWithAcquires(t *testing.T) {
	b := NewSpecBuilder(4)
	if err := b.DeclareRequest([]ResourceID{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	p := New(b.Build(), WithPlaceholders(), WithTimeSeries(time.Millisecond, 16), WithSelfCheck())

	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var (
					tok Token
					err error
				)
				if i%2 == 0 {
					tok, err = p.Write(ctx, ResourceID(i%4))
				} else {
					tok, err = p.Read(ctx, 0, 1)
				}
				if err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if err := p.Release(tok); err != nil {
					t.Errorf("release: %v", err)
					return
				}
			}
		}(i)
	}

	// Hammer Close from several goroutines while the workload runs.
	var cg sync.WaitGroup
	for i := 0; i < 8; i++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for j := 0; j < 10; j++ {
				if err := p.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}
		}()
	}
	cg.Wait()

	// The protocol must remain usable after Close.
	tok, err := p.Write(context.Background(), 2)
	if err != nil {
		t.Fatalf("acquire after Close: %v", err)
	}
	if err := p.Release(tok); err != nil {
		t.Fatalf("release after Close: %v", err)
	}

	close(stop)
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
}

// goroutinesWith counts live goroutines whose stack contains sub.
func goroutinesWith(sub string) int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, sub) {
			count++
		}
	}
	return count
}

// TestCloseStopsTimeSeries: Protocol.Close must terminate the WithTimeSeries
// capture goroutine — a leaked capture loop would pin the metrics registry
// and tick forever after the protocol is gone.
func TestCloseStopsTimeSeries(t *testing.T) {
	const capture = "(*TimeSeries).Start"
	before := goroutinesWith(capture)

	b := NewSpecBuilder(2)
	p := New(b.Build(), WithPlaceholders(), WithTimeSeries(time.Millisecond, 16))

	deadline := time.Now().Add(3 * time.Second)
	for goroutinesWith(capture) <= before {
		if time.Now().After(deadline) {
			t.Fatal("capture goroutine not running after New with WithTimeSeries")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Stop waits for the goroutine, so no polling needed after Close returns.
	if n := goroutinesWith(capture); n > before {
		t.Fatalf("%d capture goroutine(s) still running after Close", n-before)
	}
	// Close is idempotent; the ring stays queryable.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if ts := p.TimeSeries(); ts == nil {
		t.Fatal("TimeSeries nil after Close")
	}
}
