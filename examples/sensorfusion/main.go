// Sensor fusion: the R/W mixing showcase (Sec. 3.5).
//
// A perception pipeline shares q sensor buffers and one fused world model:
//
//   - sensor drivers WRITE their own buffer (single-resource writes);
//   - the fusion stage READS several sensor buffers while WRITING the world
//     model — one atomic mixed request, so it never sees a torn sensor
//     frame and never publishes a torn model;
//   - planners READ the world model plus a sensor buffer (multi-resource
//     reads, all concurrent with each other AND with the fusion stage's
//     read-mode sensor locks — exactly the concurrency Sec. 3.5 adds).
//
// The example validates the executed event stream against the paper's
// properties with the trace checker and reports the concurrency achieved.
//
//	go run ./examples/sensorfusion
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/rtsync/rwrnlp"
	"github.com/rtsync/rwrnlp/internal/trace"
)

const (
	nSensors = 4
	world    = rwrnlp.ResourceID(nSensors) // the fused world model
)

type frame struct {
	seq  int64
	a, b int64 // payload halves; a torn frame has a != b
}

func main() {
	spec := rwrnlp.NewSpecBuilder(nSensors + 1)
	// Fusion: reads all sensors, writes the world model.
	sensors := make([]rwrnlp.ResourceID, nSensors)
	for i := range sensors {
		sensors[i] = rwrnlp.ResourceID(i)
	}
	if err := spec.DeclareRequest(sensors, []rwrnlp.ResourceID{world}); err != nil {
		panic(err)
	}
	// Planner: reads the world model plus one sensor.
	for _, s := range sensors {
		if err := spec.DeclareRequest([]rwrnlp.ResourceID{s, world}, nil); err != nil {
			panic(err)
		}
	}
	// WithoutFastPath: this example machine-checks the event stream, and a
	// reader served by the BRAVO fast path never emits events — full trace
	// fidelity matters more here than reader throughput.
	p := rwrnlp.New(spec.Build(), rwrnlp.WithPlaceholders(), rwrnlp.WithoutFastPath())
	rec := &trace.Recorder{}
	p.SetTracer(rec)

	buf := make([]frame, nSensors)
	var model frame
	var torn atomic.Int64
	var wg sync.WaitGroup

	// Sensor drivers.
	for s := 0; s < nSensors; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(1); i <= 1500; i++ {
				tok, err := p.Write(context.Background(), sensors[s])
				if err != nil {
					panic(err)
				}
				buf[s] = frame{seq: i, a: i * 7, b: i * 7}
				if err := p.Release(tok); err != nil {
					panic(err)
				}
			}
		}()
	}

	// Fusion stage: mixed request (read sensors, write world).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); i <= 2000; i++ {
			tok, err := p.Acquire(context.Background(), sensors, []rwrnlp.ResourceID{world})
			if err != nil {
				panic(err)
			}
			var sumA, sumB int64
			for s := range buf {
				if buf[s].a != buf[s].b {
					torn.Add(1) // torn sensor frame observed under lock
				}
				sumA += buf[s].a
				sumB += buf[s].b
			}
			model = frame{seq: i, a: sumA, b: sumB}
			if err := p.Release(tok); err != nil {
				panic(err)
			}
		}
	}()

	// Planners: read the model and one sensor, concurrently.
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				tok, err := p.Read(context.Background(), sensors[g%nSensors], world)
				if err != nil {
					panic(err)
				}
				if model.a != model.b {
					torn.Add(1) // torn world model observed under lock
				}
				if err := p.Release(tok); err != nil {
					panic(err)
				}
			}
		}()
	}

	wg.Wait()

	res := trace.Check(rec.Events())
	st := p.Stats()
	fmt.Printf("torn frames observed under locks: %d (must be 0)\n", torn.Load())
	fmt.Printf("trace: %d events, checker violations: %d (must be 0)\n", res.Events, len(res.Violations))
	fmt.Printf("protocol: %d requests, %d immediate, %d entitlements\n",
		st.Issued, st.ImmediateSats, st.Entitlements)
	if torn.Load() != 0 || !res.Ok() {
		for _, v := range res.Violations {
			fmt.Println("  ", v)
		}
		panic("violations detected")
	}
	fmt.Println("OK")
}
