// STM example: a tiny bank built on the lock-based software transactional
// memory of internal/stm — the application the paper motivates (Sec. 1).
//
// Transactions never abort and never deadlock; read-only audits run
// concurrently with each other; upgradeable maintenance transactions read
// optimistically and escalate to writes only when work is needed
// (Sec. 3.6).
//
//	go run ./examples/stm
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/rtsync/rwrnlp/internal/stm"
)

func main() {
	const nAccounts = 8
	const initial = 3

	sys := stm.NewSystem()
	accounts := make([]*stm.Var[int], nAccounts)
	var all []stm.VarBase
	for i := range accounts {
		accounts[i] = stm.NewVar(sys, initial)
		all = append(all, accounts[i])
	}
	// Declared transaction shapes: pairwise transfers, full audits, and
	// per-account upgradeable maintenance (single-variable shapes need no
	// declaration, but transfers and audits do).
	sys.DeclareTx(all, nil) // audit
	for i := 0; i < nAccounts; i++ {
		for j := 0; j < nAccounts; j++ {
			if i != j {
				sys.DeclareTx(nil, stm.Writes(accounts[i], accounts[j]))
			}
		}
	}
	s := sys.Build(stm.Options{Placeholders: true})

	var wg sync.WaitGroup

	// Transfer workers.
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				from := accounts[(w+i)%nAccounts]
				to := accounts[(w+i+1+i%3)%nAccounts]
				if from == to {
					continue
				}
				err := s.Atomically(nil, stm.Writes(from, to), func(tx *stm.Tx) error {
					amt := 1 + i%5
					stm.Set(tx, from, stm.Get(tx, from)-amt)
					stm.Set(tx, to, stm.Get(tx, to)+amt)
					return nil
				})
				if err != nil {
					panic(err)
				}
			}
		}()
	}

	// Auditors: transfers preserve the total and maintenance only adds, so
	// every atomic snapshot must show total ≥ the initial sum.
	audits, bad := 0, 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			err := s.Atomically(all, nil, func(tx *stm.Tx) error {
				total := 0
				for _, a := range accounts {
					total += stm.Get(tx, a)
				}
				audits++
				if total < nAccounts*initial {
					bad++
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
		}
	}()

	wg.Wait()

	// Maintenance sweep: upgradeable transactions forgive overdrafts — they
	// read optimistically (sharing with any concurrent readers) and upgrade
	// to a write only where the balance is actually negative.
	var forgiven atomic.Int64
	var mwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		mwg.Add(1)
		go func() {
			defer mwg.Done()
			for i := w; i < nAccounts; i += 4 {
				acct := accounts[i]
				err := s.AtomicallyUpgradeable(stm.Reads(acct),
					func(tx *stm.Tx) (stm.UpgradeableResult, error) {
						if stm.Get(tx, acct) < 0 {
							return stm.Upgrade, nil
						}
						return stm.Commit, nil
					},
					func(tx *stm.Tx) error {
						// Re-read after the upgrade: the balance may have
						// changed between the phases (Sec. 3.6).
						if v := stm.Get(tx, acct); v < 0 {
							stm.Set(tx, acct, 0)
							forgiven.Add(1)
						}
						return nil
					})
				if err != nil {
					panic(err)
				}
			}
		}()
	}
	mwg.Wait()

	total := 0
	for _, a := range accounts {
		total += stm.Peek(a)
	}
	fmt.Printf("audits: %d consistent, %d inconsistent (must be 0)\n", audits-bad, bad)
	fmt.Printf("overdrafts forgiven: %d (total grew accordingly: %d ≥ %d)\n",
		forgiven.Load(), total, nAccounts*initial)
	if bad > 0 || total < nAccounts*initial {
		panic("consistency violated")
	}
	fmt.Println("OK")
}
