// rtdb: a miniature in-memory "real-time database" built on the lock-based
// STM — the style of system the paper's STM motivation points at.
//
// Schema: an orders table (transactional bucket map), per-symbol inventory
// variables, and a statistics row. Three transaction classes run
// concurrently under synthetic load:
//
//   - place-order: write one order row + decrement one inventory var +
//     bump stats — a declared multi-variable write transaction;
//   - restock: upgradeable per-symbol maintenance — read inventory, escalate
//     to a write only when below the threshold (Sec. 3.6 in action);
//   - report: read-only snapshot over all inventory + stats, concurrent
//     with other reports and with order reads.
//
// Because every transaction acquires its declared locks atomically through
// the R/W RNLP, the workload is deadlock-free and abort-free by
// construction, and the demo verifies global consistency at the end
// (inventory sold + remaining == initial, orders counted == stats row).
// Per-class latency percentiles are reported — the numbers a real-time
// system would compare against its blocking bounds.
//
//	go run ./examples/rtdb
package main

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/rtsync/rwrnlp/internal/stm"
)

const (
	nSymbols     = 6
	initialStock = 3_000
	nClients     = 8
	ordersEach   = 1_500
)

type order struct {
	ID     int
	Symbol int
	Qty    int
}

type latRec struct {
	mu   sync.Mutex
	durs map[string][]time.Duration
}

func (l *latRec) add(class string, d time.Duration) {
	l.mu.Lock()
	l.durs[class] = append(l.durs[class], d)
	l.mu.Unlock()
}

func (l *latRec) report() {
	classes := make([]string, 0, len(l.durs))
	for c := range l.durs {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Println("latency per transaction class:")
	for _, c := range classes {
		ds := l.durs[c]
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		p := func(q float64) time.Duration { return ds[int(q*float64(len(ds)-1))] }
		fmt.Printf("  %-12s n=%-6d p50=%-10v p99=%-10v max=%v\n", c, len(ds), p(0.5), p(0.99), ds[len(ds)-1])
	}
}

func main() {
	sys := stm.NewSystem()

	inventory := make([]*stm.Var[int], nSymbols)
	var invAll []stm.VarBase
	for i := range inventory {
		inventory[i] = stm.NewVar(sys, initialStock)
		invAll = append(invAll, inventory[i])
	}
	ordersPlaced := stm.NewVar(sys, 0)
	unitsSold := stm.NewVar(sys, 0)

	// Declared shapes: per-symbol order placement (inventory + both stats),
	// and the full report (read everything).
	for i := range inventory {
		sys.DeclareTx(nil, stm.Writes(inventory[i], ordersPlaced, unitsSold))
	}
	sys.DeclareTx(append(append([]stm.VarBase{}, invAll...), ordersPlaced, unitsSold), nil)
	s := sys.Build(stm.Options{Placeholders: true})

	// The orders table lives in its own transactional map (separate lock
	// universe: order rows never participate in inventory transactions).
	orders := stm.NewMap[int, order](stm.MapConfig{Buckets: 32, Options: stm.Options{Placeholders: true}})

	lat := &latRec{durs: map[string][]time.Duration{}}
	var wg sync.WaitGroup
	var clients sync.WaitGroup
	clientsDone := make(chan struct{})

	// Order-placing clients.
	for c := 0; c < nClients; c++ {
		c := c
		wg.Add(1)
		clients.Add(1)
		go func() {
			defer wg.Done()
			defer clients.Done()
			for i := 0; i < ordersEach; i++ {
				id := c*ordersEach + i
				symbol := (c + i) % nSymbols
				qty := 1 + i%3
				start := time.Now()
				err := s.Atomically(nil, stm.Writes(inventory[symbol], ordersPlaced, unitsSold), func(tx *stm.Tx) error {
					stock := stm.Get(tx, inventory[symbol])
					if stock < qty {
						return nil // out of stock: no-op (still a valid tx)
					}
					stm.Set(tx, inventory[symbol], stock-qty)
					stm.Set(tx, ordersPlaced, stm.Get(tx, ordersPlaced)+1)
					stm.Set(tx, unitsSold, stm.Get(tx, unitsSold)+qty)
					orders.Put(id, order{ID: id, Symbol: symbol, Qty: qty})
					return nil
				})
				lat.add("place-order", time.Since(start))
				if err != nil {
					panic(err)
				}
			}
		}()
	}

	go func() { clients.Wait(); close(clientsDone) }()

	// Restockers: upgradeable read-mostly maintenance, polling until the
	// order flow ends.
	restocks := 0
	var restockMu sync.Mutex
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-clientsDone:
					return
				default:
				}
				symbol := (r + i) % nSymbols
				start := time.Now()
				err := s.AtomicallyUpgradeable(stm.Reads(inventory[symbol]),
					func(tx *stm.Tx) (stm.UpgradeableResult, error) {
						if stm.Get(tx, inventory[symbol]) < initialStock/10 {
							return stm.Upgrade, nil
						}
						return stm.Commit, nil
					},
					func(tx *stm.Tx) error {
						if v := stm.Get(tx, inventory[symbol]); v < initialStock/10 {
							stm.Set(tx, inventory[symbol], v+initialStock/10)
							restockMu.Lock()
							restocks++
							restockMu.Unlock()
						}
						return nil
					})
				lat.add("restock", time.Since(start))
				if err != nil {
					panic(err)
				}
			}
		}()
	}

	// Reporters: consistent read-only snapshots.
	inconsistent := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		all := append(append([]stm.VarBase{}, invAll...), ordersPlaced, unitsSold)
		for i := 0; i < 1_000; i++ {
			start := time.Now()
			err := s.Atomically(all, nil, func(tx *stm.Tx) error {
				remaining := 0
				for _, inv := range inventory {
					remaining += stm.Get(tx, inv)
				}
				// Conservation under the lock: initial + restocked(≤ now) -
				// sold == remaining. Restocks outside this tx make exact
				// equality unverifiable mid-flight, but remaining + sold
				// must never exceed initial + all possible restocks.
				sold := stm.Get(tx, unitsSold)
				if remaining+sold < nSymbols*initialStock {
					inconsistent++
				}
				return nil
			})
			lat.add("report", time.Since(start))
			if err != nil {
				panic(err)
			}
		}
	}()

	wg.Wait()

	// Final audit (single-threaded).
	remaining := 0
	for _, inv := range inventory {
		remaining += stm.Peek(inv)
	}
	sold := stm.Peek(unitsSold)
	placed := stm.Peek(ordersPlaced)
	expected := nSymbols*initialStock + restocks*(initialStock/10)
	fmt.Printf("orders placed: %d (rows in table: %d)\n", placed, orders.Len())
	fmt.Printf("units sold: %d; remaining: %d; restocked %d times; conservation: %d == %d\n",
		sold, remaining, restocks, remaining+sold, expected)
	fmt.Printf("inconsistent reports: %d (must be 0)\n", inconsistent)
	lat.report()
	if remaining+sold != expected || placed != orders.Len() || inconsistent > 0 {
		panic("consistency violated")
	}
	fmt.Println("OK")
}
