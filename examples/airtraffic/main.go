// Air-traffic sectors: incremental locking (Sec. 3.7) and upgrades
// (Sec. 3.6) on a shared track table.
//
// The airspace is divided into sectors, each a resource guarding its set of
// tracks. Conflict-resolution tasks walk a flight path sector by sector:
// they declare the full path up front (the a-priori set the protocol needs,
// just like the PCP) and lock sectors INCREMENTALLY as the aircraft
// progresses, holding earlier sectors while acquiring later ones — the
// entitlement mechanism guarantees the total blocking across all increments
// stays within a single request's bound, with no deadlock possible.
// Monitoring tasks use UPGRADEABLE requests: they scan a sector read-only
// and escalate to a write only when they find a deviation to correct.
//
//	go run ./examples/airtraffic
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/rtsync/rwrnlp"
)

const nSectors = 6

type sector struct {
	tracks   int64
	occupant int32 // writer-presence check
}

func main() {
	spec := rwrnlp.NewSpecBuilder(nSectors)
	// Flight paths: any window of three consecutive sectors may be locked
	// by one incremental request; monitors read pairs.
	for s := 0; s < nSectors; s++ {
		path := []rwrnlp.ResourceID{
			rwrnlp.ResourceID(s),
			rwrnlp.ResourceID((s + 1) % nSectors),
			rwrnlp.ResourceID((s + 2) % nSectors),
		}
		if err := spec.DeclareRequest(nil, path); err != nil {
			panic(err)
		}
		if err := spec.DeclareRequest(path[:2], nil); err != nil {
			panic(err)
		}
	}
	p := rwrnlp.New(spec.Build(), rwrnlp.Options{Placeholders: true})

	sectors := make([]sector, nSectors)
	var overlaps, deviationsFixed atomic.Int64
	var wg sync.WaitGroup

	// Conflict-resolution tasks: incremental path locking.
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				s0 := (g*3 + i) % nSectors
				path := []rwrnlp.ResourceID{
					rwrnlp.ResourceID(s0),
					rwrnlp.ResourceID((s0 + 1) % nSectors),
					rwrnlp.ResourceID((s0 + 2) % nSectors),
				}
				// Declare the whole path; take the first sector now.
				inc, err := p.AcquireIncremental(context.Background(), nil, path, nil, path[:1])
				if err != nil {
					panic(err)
				}
				for hop := 0; hop < len(path); hop++ {
					if hop > 0 {
						if err := inc.Acquire(context.Background(), path[hop]); err != nil {
							panic(err)
						}
					}
					// Work inside the sector: exclusive access check.
					sec := &sectors[path[hop]]
					if atomic.AddInt32(&sec.occupant, 1) != 1 {
						overlaps.Add(1)
					}
					sec.tracks++
					atomic.AddInt32(&sec.occupant, -1)
				}
				if err := inc.Release(); err != nil {
					panic(err)
				}
			}
		}()
	}

	// Monitors: upgradeable sector scans.
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 600; i++ {
				s0 := rwrnlp.ResourceID((g + i) % nSectors)
				u, err := p.AcquireUpgradeable(context.Background(), s0)
				if err != nil {
					panic(err)
				}
				fix := false
				if u.Reading() {
					// Optimistic read: deviation iff track count not a
					// multiple of 3 (an arbitrary rule for the demo).
					fix = sectors[s0].tracks%3 != 0
					if !fix {
						if err := u.ReleaseRead(); err != nil {
							panic(err)
						}
						continue
					}
					if err := u.Upgrade(context.Background()); err != nil {
						panic(err)
					}
				}
				// Write phase: re-check (state may have changed) and fix.
				sec := &sectors[s0]
				if atomic.AddInt32(&sec.occupant, 1) != 1 {
					overlaps.Add(1)
				}
				if sec.tracks%3 != 0 {
					sec.tracks += 3 - sec.tracks%3
					deviationsFixed.Add(1)
				}
				atomic.AddInt32(&sec.occupant, -1)
				if err := u.Release(); err != nil {
					panic(err)
				}
			}
		}()
	}

	wg.Wait()
	st := p.Stats()
	var total int64
	for i := range sectors {
		total += sectors[i].tracks
	}
	fmt.Printf("sector write overlaps: %d (must be 0)\n", overlaps.Load())
	fmt.Printf("deviations fixed via upgrade: %d; total tracks: %d\n", deviationsFixed.Load(), total)
	fmt.Printf("protocol: %d requests, %d upgrades taken, %d skipped, %d canceled\n",
		st.Issued, st.UpgradesTaken, st.UpgradesSkipped, st.Canceled)
	if overlaps.Load() != 0 {
		panic("mutual exclusion violated")
	}
	fmt.Println("OK")
}
