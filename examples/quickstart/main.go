// Quickstart: the smallest useful R/W RNLP program.
//
// Three resources guard three shared counters. Writers update pairs of
// counters atomically (multi-resource write requests — no deadlock possible,
// no lock-ordering discipline needed); readers take consistent snapshots of
// all three (multi-resource read requests, running concurrently with each
// other); one goroutine issues mixed requests (Sec. 3.5), reading two
// counters while writing the third.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"sync"

	"github.com/rtsync/rwrnlp"
)

const (
	rX rwrnlp.ResourceID = iota // counter X
	rY                          // counter Y
	rZ                          // counter Z
)

func main() {
	// Declare the potential request shapes: snapshots read {X, Y, Z}, and
	// the mixed aggregator reads {X, Y} while writing Z.
	spec := rwrnlp.NewSpecBuilder(3)
	if err := spec.DeclareRequest([]rwrnlp.ResourceID{rX, rY, rZ}, nil); err != nil {
		panic(err)
	}
	if err := spec.DeclareRequest([]rwrnlp.ResourceID{rX, rY}, []rwrnlp.ResourceID{rZ}); err != nil {
		panic(err)
	}
	p := rwrnlp.New(spec.Build(), rwrnlp.Options{Placeholders: true})

	var x, y, z int
	var wg sync.WaitGroup

	// Writers: atomically move a unit from X to Y (and vice versa).
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tok, err := p.Write(context.Background(), rX, rY)
				if err != nil {
					panic(err)
				}
				if w == 0 {
					x--
					y++
				} else {
					x++
					y--
				}
				if err := p.Release(tok); err != nil {
					panic(err)
				}
			}
		}()
	}

	// Mixed aggregator: z = x + y, reading X and Y (sharing with snapshot
	// readers) while writing Z.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			tok, err := p.Acquire(context.Background(), []rwrnlp.ResourceID{rX, rY}, []rwrnlp.ResourceID{rZ})
			if err != nil {
				panic(err)
			}
			z = x + y
			if err := p.Release(tok); err != nil {
				panic(err)
			}
		}
	}()

	// Snapshot readers: X+Y must always be 0 (transfers preserve the sum).
	inconsistencies := 0
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tok, err := p.Read(context.Background(), rX, rY, rZ)
				if err != nil {
					panic(err)
				}
				if x+y != 0 {
					inconsistencies++ // safe: we hold read locks, writers are out
				}
				if err := p.Release(tok); err != nil {
					panic(err)
				}
			}
		}()
	}

	wg.Wait()
	st := p.Stats()
	fmt.Printf("final state: x=%d y=%d z=%d (x+y must be 0)\n", x, y, z)
	fmt.Printf("snapshot inconsistencies: %d (must be 0)\n", inconsistencies)
	fmt.Printf("protocol: %d requests, %d satisfied immediately, %d entitlements\n",
		st.Issued, st.ImmediateSats, st.Entitlements)
	if x+y != 0 || inconsistencies > 0 {
		panic("consistency violated")
	}
	fmt.Println("OK")
}
