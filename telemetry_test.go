package rwrnlp

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rtsync/rwrnlp/internal/obs"
)

// omExemplarRe matches one OpenMetrics histogram bucket line carrying an
// exemplar, capturing (req, flight_seq, value).
var omExemplarRe = regexp.MustCompile(
	`rwrnlp_acq_delay_write_bucket\{le="[^"]+"\} \d+ # \{req="(\d+)",flight_seq="(\d+)"\} (\d+)`)

// TestExemplarLoopEndToEnd closes the telemetry loop the way an operator
// would: run a contended workload, scrape the OpenMetrics endpoint, take the
// tail exemplar off the write-delay histogram, resolve its flight_seq
// against a flight dump scraped from the same process, and check the
// resulting blocking chain names the request that actually held the lock.
func TestExemplarLoopEndToEnd(t *testing.T) {
	spec := NewSpecBuilder(1)
	if err := spec.DeclareRequest([]ResourceID{0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := spec.DeclareRequest(nil, []ResourceID{0}); err != nil {
		t.Fatal(err)
	}
	p := New(spec.Build(), WithMetrics(), WithFlightRecorder(4096), WithAttribution(10))
	ctx := context.Background()

	// W1 takes the write lock and sits on it. It is the very first request on
	// the only shard, and shard IDs run FirstID+IDStep, FirstID+2·IDStep, …
	// (FirstID=0, IDStep=1 for a single component), so W1 is request 1.
	w1, err := p.Write(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	const w1ID = 1

	// A pack of readers queues behind W1's write phase; each issuance ticks
	// the shard clock, so the eventual write delay is well off zero.
	const readers = 20
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tok, err := p.Read(ctx, 0)
			if err != nil {
				t.Error(err)
				return
			}
			_ = p.Release(tok)
		}()
	}
	waitIssued(t, p, 1+readers)

	// W2 queues after the readers: it must wait out W1's hold and the read
	// phase, accruing the delay whose exemplar the scrape below picks up.
	w2done := make(chan error, 1)
	go func() {
		tok, err := p.Write(ctx, 0)
		if err != nil {
			w2done <- err
			return
		}
		w2done <- p.Release(tok)
	}()
	waitIssued(t, p, 2+readers)

	if err := p.Release(w1); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := <-w2done; err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(p.DebugMux())
	defer srv.Close()

	// Leg 1: scrape OpenMetrics, keep the largest-valued write-delay exemplar.
	om := httpGet(t, srv.URL+"/metrics?format=openmetrics")
	matches := omExemplarRe.FindAllStringSubmatch(om, -1)
	if len(matches) == 0 {
		t.Fatalf("no write-delay exemplars in scrape:\n%s", om)
	}
	var req int64
	var seq uint64
	var val int64 = -1
	for _, m := range matches {
		v, _ := strconv.ParseInt(m[3], 10, 64)
		if v > val {
			val = v
			req, _ = strconv.ParseInt(m[1], 10, 64)
			seq, _ = strconv.ParseUint(m[2], 10, 64)
		}
	}
	if val <= 0 {
		t.Fatalf("tail exemplar value = %d, want > 0 (W2 should have waited)", val)
	}
	if seq == 0 {
		t.Fatal("tail exemplar has no flight_seq (exemplar source not wired?)")
	}

	// Leg 2: scrape the flight dump and resolve the sequence — the same path
	// `flightdump -seq` takes offline.
	dump, err := obs.ParseFlightDump(strings.NewReader(httpGet(t, srv.URL+"/debug/rnlp/flight")))
	if err != nil {
		t.Fatal(err)
	}
	rec, chain, err := dump.ResolveSeq(seq)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Req != req {
		t.Errorf("flight seq %d names req %d, exemplar says %d", seq, rec.Req, req)
	}
	if rec.Type != "satisfied" {
		t.Errorf("flight seq %d is a %q record, want the satisfaction event", seq, rec.Type)
	}
	if int64(chain.Req) != req {
		t.Errorf("chain is for req %d, want %d", chain.Req, req)
	}
	if chain.Delay != val {
		t.Errorf("chain delay %d != exemplar value %d", chain.Delay, val)
	}

	// The chain must name the actual blocker: W1, the writer that held the
	// lock when W2 issued.
	found := false
	for _, b := range chain.IssueBlockers {
		if int64(b) == w1ID {
			found = true
		}
	}
	for _, b := range chain.EntitleBlockers {
		if int64(b) == w1ID {
			found = true
		}
	}
	if !found {
		t.Errorf("blocking chain (issue=%v entitle=%v) does not name W1 (req %d)",
			chain.IssueBlockers, chain.EntitleBlockers, w1ID)
	}
}

// TestTelemetryEndpointsConcurrentWithWorkload scrapes the new telemetry
// surface — timeseries, OpenMetrics exemplars, and live exemplar resolution
// — while a contended workload runs, under -race via the telemetry-race make
// target. Resolution against a live ring may legitimately miss (the ring
// wraps); it must never tear or panic.
func TestTelemetryEndpointsConcurrentWithWorkload(t *testing.T) {
	spec := NewSpecBuilder(4)
	for i := 0; i < 4; i++ {
		if err := spec.DeclareRequest([]ResourceID{ResourceID(i), ResourceID((i + 1) % 4)}, nil); err != nil {
			t.Fatal(err)
		}
		if err := spec.DeclareRequest(nil, []ResourceID{ResourceID(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p := New(spec.Build(),
		WithTimeSeries(20*time.Millisecond, 0),
		WithFlightRecorder(512),
		WithAttribution(5),
		WithStallWatchdog(WatchdogConfig{}),
	)
	defer p.Close()
	srv := httptest.NewServer(p.DebugMux())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var tok Token
				var err error
				if g%3 == 0 {
					tok, err = p.Write(ctx, ResourceID(i%4))
				} else {
					tok, err = p.Read(ctx, ResourceID(i%4), ResourceID((i+1)%4))
				}
				if err != nil {
					t.Error(err)
					return
				}
				if err := p.Release(tok); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	deadline := time.Now().Add(800 * time.Millisecond)
	sawSamples := false
	for time.Now().Before(deadline) {
		ts := httpGet(t, srv.URL+"/debug/rnlp/timeseries?window=5s")
		if strings.Contains(ts, `"samples"`) && !strings.Contains(ts, `"samples": 0`) {
			sawSamples = true
		}
		om := httpGet(t, srv.URL+"/metrics?format=openmetrics")
		if !strings.HasSuffix(om, "# EOF\n") {
			t.Fatalf("openmetrics scrape not terminated:\n...%s", om[max(0, len(om)-200):])
		}
		// Resolve whatever exemplar the scrape carries against a concurrently
		// captured dump; a wrap-induced miss is fine, a panic or race is not.
		if m := omExemplarRe.FindStringSubmatch(om); m != nil {
			seq, _ := strconv.ParseUint(m[2], 10, 64)
			if seq != 0 {
				dump, err := obs.ParseFlightDump(strings.NewReader(httpGet(t, srv.URL+"/debug/rnlp/flight")))
				if err != nil {
					t.Fatal(err)
				}
				_, _, _ = dump.ResolveSeq(seq)
			}
		}
		httpGet(t, srv.URL+"/debug/rnlp/attr")
		httpGet(t, srv.URL+"/debug/rnlp/watchdog")
	}
	close(stop)
	wg.Wait()
	if !sawSamples {
		t.Error("timeseries endpoint never served a non-empty window during the workload")
	}

	// The ring kept capturing throughout; the final report must price the
	// workload's tails against the Theorem 1/2 envelope.
	rep := p.TimeSeries().Query(5 * time.Second)
	if rep.Bound.ReadBound <= 0 {
		t.Errorf("bound utilization absent from final report: %+v", rep.Bound)
	}
}

// waitIssued polls the registry until the protocol has issued n requests.
func waitIssued(t *testing.T, p *Protocol, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c, ok := p.Metrics().Snapshot().Counters[obs.MIssued]; ok && c >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d issued requests", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("%s: %s\n%s", url, resp.Status, body)
	}
	return string(body)
}
