package rwrnlp

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/rtsync/rwrnlp/internal/obs"
	"github.com/rtsync/rwrnlp/internal/trace"
)

// fastCounter reads one shard-labeled fastpath counter from p's metrics.
func fastCounter(t *testing.T, p *Protocol, name string, shard int) int64 {
	t.Helper()
	if p.Metrics() == nil {
		t.Fatal("protocol built without metrics")
	}
	return p.Metrics().Snapshot().Counters[obs.ShardMetric(name, shard)]
}

// A fast-path hit never reaches the RSM: no issued/completed protocol
// events, no shard_acquires, only the fastpath_hit counter moves.
func TestFastPathHitInvisibleToRSM(t *testing.T) {
	p := newTestProtocol(t, 2, Options{Metrics: true}, []ResourceID{0, 1})
	tok, err := p.Read(bg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tok.fastSeq == 0 {
		t.Fatal("uncontended all-read acquisition did not take the fast path")
	}
	if got := fastCounter(t, p, obs.MFastPathHit, 0); got != 1 {
		t.Errorf("fastpath_hit = %d, want 1", got)
	}
	if st := p.Stats(); st.Issued != 0 {
		t.Errorf("RSM saw %d issues for a fast-path read, want 0", st.Issued)
	}
	if got := fastCounter(t, p, obs.MShardAcquires, 0); got != 0 {
		t.Errorf("shard_acquires = %d for a fast-path read, want 0", got)
	}
	if err := p.Release(tok); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Issued != 0 || st.Completed != 0 {
		t.Errorf("RSM stats after fast release: %+v, want all zero", st)
	}
	if got := fastCounter(t, p, obs.MFastPathMigrated, 0); got != 0 {
		t.Errorf("fastpath_migrated = %d with no writer, want 0", got)
	}
}

// newGatedProtocol builds a single-component, 4-resource protocol in which a
// write on 0 (expansion {0,1}) does not conflict with a read of 3 (read
// group {2,3}) — but shares the component, so the writer gate still covers
// the read. Read groups {0,1} and {2,3} are joined by a write-only
// declaration, which contributes no read sharing (Sec. 3.5).
func newGatedProtocol(t testing.TB, opts ...Option) *Protocol {
	t.Helper()
	b := NewSpecBuilder(4)
	for _, d := range [][2][]ResourceID{
		{{0, 1}, nil}, {{2, 3}, nil}, {nil, {1, 2}},
	} {
		if err := b.DeclareRequest(d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	spec := b.Build()
	if got := spec.NumComponents(); got != 1 {
		t.Fatalf("NumComponents = %d, want 1", got)
	}
	return New(spec, opts...)
}

// While a write-capable request is in flight the gate is closed: a fast-
// eligible read falls back to the RSM (miss) and still succeeds when its
// resources don't conflict with the writer's.
func TestFastPathGateClosedMiss(t *testing.T) {
	p := newGatedProtocol(t, WithMetrics())
	w, err := p.Write(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := p.Read(bg, 3) // no conflict with the write on {0,1}, but gate closed
	if err != nil {
		t.Fatal(err)
	}
	if r.fastSeq != 0 {
		t.Fatal("read admitted to the fast path while the writer gate was closed")
	}
	if got := fastCounter(t, p, obs.MFastPathMiss, 0); got == 0 {
		t.Error("fastpath_miss = 0, want > 0")
	}
	if got := fastCounter(t, p, obs.MFastPathHit, 0); got != 0 {
		t.Errorf("fastpath_hit = %d, want 0", got)
	}
	if st := p.Stats(); st.Issued != 2 { // the writer and the fallback read
		t.Errorf("RSM issued = %d, want 2", st.Issued)
	}
	if err := p.Release(r); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(w); err != nil {
		t.Fatal(err)
	}
}

// An entering writer migrates the in-flight fast reader into the RSM and
// queues behind its surrogate: the writer must block until the reader
// releases, and the surrogate must show up in the protocol stats.
func TestFastPathMigrationBlocksWriter(t *testing.T) {
	p := newTestProtocol(t, 2, Options{Metrics: true}, []ResourceID{0, 1})
	r, err := p.Read(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.fastSeq == 0 {
		t.Fatal("read did not take the fast path")
	}

	acquired := make(chan Token, 1)
	go func() {
		w, err := p.Write(bg, 0)
		if err != nil {
			panic(err)
		}
		acquired <- w
	}()

	select {
	case <-acquired:
		t.Fatal("writer acquired resource 0 while a fast reader held it")
	case <-time.After(50 * time.Millisecond):
	}
	if got := fastCounter(t, p, obs.MFastPathMigrated, 0); got != 1 {
		t.Errorf("fastpath_migrated = %d, want 1", got)
	}
	// The surrogate read plus the writer are both RSM requests now.
	if st := p.Stats(); st.Issued != 2 {
		t.Errorf("RSM issued = %d, want 2 (surrogate + writer)", st.Issued)
	}

	// Releasing the fast token completes the surrogate and wakes the writer.
	if err := p.Release(r); err != nil {
		t.Fatal(err)
	}
	select {
	case w := <-acquired:
		if err := p.Release(w); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("writer not woken by the migrated reader's release")
	}
	if st := p.Stats(); st.Completed != 2 {
		t.Errorf("RSM completed = %d, want 2", st.Completed)
	}
}

// Double release of a fast-path token fails the claim CAS (sequences are
// never reused) even after the slot has been re-claimed by another reader.
func TestFastPathDoubleRelease(t *testing.T) {
	p := newTestProtocol(t, 2, Options{}, []ResourceID{0, 1})
	tok, err := p.Read(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tok.fastSeq == 0 {
		t.Fatal("read did not take the fast path")
	}
	if err := p.Release(tok); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(tok); !errors.Is(err, ErrAlreadyReleased) {
		t.Errorf("second release: got %v, want ErrAlreadyReleased", err)
	}
	// Re-claim the same slot population, then double-release the old token
	// again: the stale sequence must still be rejected.
	tok2, err := p.Read(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Release(tok); !errors.Is(err, ErrAlreadyReleased) {
		t.Errorf("stale release after re-claim: got %v, want ErrAlreadyReleased", err)
	}
	if err := p.Release(tok2); err != nil {
		t.Fatal(err)
	}
}

// Sustained write pressure revokes the path after fastRevokeMisses gate-
// closed misses; fastGraceReads writer-free misses re-enable it. The
// thresholds are driven deterministically from a single goroutine.
func TestFastPathRevocationHysteresis(t *testing.T) {
	p := newGatedProtocol(t, WithMetrics())
	s := p.shardOf(0)

	w, err := p.Write(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Each read of 3 is fast-eligible, finds the gate closed, and is served
	// immediately by the RSM (it doesn't conflict with the write's {0,1}).
	for i := 0; i < fastRevokeMisses; i++ {
		r, err := p.Read(bg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.fastSeq != 0 {
			t.Fatal("fast-path hit while the gate was closed")
		}
		if err := p.Release(r); err != nil {
			t.Fatal(err)
		}
	}
	if !s.fastRevoked.Load() {
		t.Fatalf("path not revoked after %d gate-closed misses", fastRevokeMisses)
	}
	if got := fastCounter(t, p, obs.MFastPathRevoked, 0); got != 1 {
		t.Errorf("fastpath_revoked = %d, want 1", got)
	}
	if err := p.Release(w); err != nil {
		t.Fatal(err)
	}

	// Gate open but path revoked: the next fastGraceReads reads are writer-
	// free misses that count down the grace period.
	for i := 0; i < fastGraceReads; i++ {
		if !s.fastRevoked.Load() {
			t.Fatalf("path re-enabled after only %d writer-free misses", i)
		}
		r, err := p.Read(bg, 3)
		if err != nil {
			t.Fatal(err)
		}
		if r.fastSeq != 0 {
			t.Fatal("fast-path hit while revoked")
		}
		if err := p.Release(r); err != nil {
			t.Fatal(err)
		}
	}
	if s.fastRevoked.Load() {
		t.Fatal("path still revoked after the writer-free grace period")
	}
	r, err := p.Read(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.fastSeq == 0 {
		t.Fatal("read after re-enable did not take the fast path")
	}
	if err := p.Release(r); err != nil {
		t.Fatal(err)
	}
}

// WithoutFastPath routes every read through the RSM and registers no
// fastpath counters.
func TestWithoutFastPath(t *testing.T) {
	b := NewSpecBuilder(2)
	if err := b.DeclareRequest([]ResourceID{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	p := New(b.Build(), WithMetrics(), WithoutFastPath())
	tok, err := p.Read(bg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tok.fastSeq != 0 {
		t.Fatal("fast-path token under WithoutFastPath")
	}
	if err := p.Release(tok); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Issued != 1 || st.Completed != 1 {
		t.Errorf("RSM stats = %+v, want 1 issued / 1 completed", st)
	}
	if got := fastCounter(t, p, obs.MFastPathHit, 0); got != 0 {
		t.Errorf("fastpath_hit = %d under WithoutFastPath, want 0", got)
	}
}

// A concurrent mix of fast readers and writers must leave a protocol event
// stream that satisfies the paper's properties: migrated readers appear as
// ordinary satisfied reads, so the trace checker must find mutual exclusion,
// writer FIFO, and entitlement intact — and never see a torn or phantom
// lifecycle from the migration handshake.
func TestFastPathTraceConsistent(t *testing.T) {
	p := newTestProtocol(t, 2, Options{}, []ResourceID{0, 1})
	rec := &trace.Recorder{}
	p.SetTracer(rec)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if g%4 == 0 && i%8 == 0 {
					tok, err := p.Write(bg, 0, 1)
					if err != nil {
						t.Error(err)
						return
					}
					if err := p.Release(tok); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				tok, err := p.Read(bg, ResourceID(g%2))
				if err != nil {
					t.Error(err)
					return
				}
				if err := p.Release(tok); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	res := trace.Check(rec.Events())
	if !res.Ok() {
		for _, v := range res.Violations {
			t.Errorf("trace violation: %s", v)
		}
	}
}

// Regression: a writer's migration scan can catch a claim mid-publication —
// after the reader's slot CAS, before its failing gate re-check — and record
// a surrogate the reader never entered a critical section for. The
// retraction must retire that surrogate (complete or cancel it), or the RSM
// holds a phantom read lock and the component deadlocks. A tight read/write
// loop on one resource reproduced this reliably before the fix.
func TestFastPathRetractMigrationRace(t *testing.T) {
	p := newTestProtocol(t, 2, Options{}, []ResourceID{0, 1})
	const iters = 20000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var tok Token
				var err error
				if g == 0 && i%16 == 0 {
					tok, err = p.Write(bg, 0)
				} else {
					tok, err = p.Read(bg, 0)
				}
				if err != nil {
					t.Error(err)
					return
				}
				if err := p.Release(tok); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("deadlock: a migrated-then-retracted claim left a phantom surrogate in the RSM")
	}
	if st := p.Stats(); st.Issued != st.Completed+st.Canceled {
		t.Errorf("leaked RSM requests: %+v", st)
	}
}

// A writer fast-path hit never reaches the RSM: the whole component is
// claimed by one CAS on the shard's writer word, no issued/completed
// protocol events, only fastpath_write_hit moves.
func TestWriterFastPathHit(t *testing.T) {
	p := newTestProtocol(t, 2, Options{Metrics: true}, []ResourceID{0, 1})
	tok, err := p.Write(bg, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tok.fastW == 0 {
		t.Fatal("uncontended write did not take the writer fast path")
	}
	if got := fastCounter(t, p, obs.MFastWriteHit, 0); got != 1 {
		t.Errorf("fastpath_write_hit = %d, want 1", got)
	}
	if st := p.Stats(); st.Issued != 0 {
		t.Errorf("RSM saw %d issues for a fast write, want 0", st.Issued)
	}
	if got := fastCounter(t, p, obs.MShardAcquires, 0); got != 0 {
		t.Errorf("shard_acquires = %d for a fast write, want 0", got)
	}
	if err := p.Release(tok); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Issued != 0 || st.Completed != 0 {
		t.Errorf("RSM stats after fast write release: %+v, want all zero", st)
	}
	if got := fastCounter(t, p, obs.MFastWriteMigrated, 0); got != 0 {
		t.Errorf("fastpath_write_migrated = %d with no contender, want 0", got)
	}
}

// A mixed-footprint (read+write) request is write-capable and takes the
// writer plane when its component is idle.
func TestWriterFastPathMixedFootprint(t *testing.T) {
	p := newGatedProtocol(t, WithMetrics())
	tok, err := p.Acquire(bg, []ResourceID{3}, []ResourceID{1})
	if err != nil {
		t.Fatal(err)
	}
	if tok.fastW == 0 {
		t.Fatal("uncontended mixed request did not take the writer fast path")
	}
	if err := p.Release(tok); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Issued != 0 {
		t.Errorf("RSM issued = %d for a fast mixed request, want 0", st.Issued)
	}
}

// A contender entering the slow path materializes the in-flight fast writer
// as a surrogate write request in the RSM and queues behind it: mutual
// exclusion holds through the surrogate, and the contender is woken by the
// fast token's release.
func TestWriterFastPathMigrationBlocksWriter(t *testing.T) {
	p := newTestProtocol(t, 2, Options{Metrics: true}, []ResourceID{0, 1})
	w, err := p.Write(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.fastW == 0 {
		t.Fatal("write did not take the writer fast path")
	}

	acquired := make(chan Token, 1)
	go func() {
		w2, err := p.Write(bg, 0)
		if err != nil {
			panic(err)
		}
		acquired <- w2
	}()

	select {
	case <-acquired:
		t.Fatal("second writer acquired resource 0 while a fast writer held it")
	case <-time.After(50 * time.Millisecond):
	}
	if got := fastCounter(t, p, obs.MFastWriteMigrated, 0); got != 1 {
		t.Errorf("fastpath_write_migrated = %d, want 1", got)
	}
	// The surrogate write plus the contender are both RSM requests now.
	if st := p.Stats(); st.Issued != 2 {
		t.Errorf("RSM issued = %d, want 2 (surrogate + contender)", st.Issued)
	}

	if err := p.Release(w); err != nil {
		t.Fatal(err)
	}
	select {
	case w2 := <-acquired:
		if err := p.Release(w2); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("contender not woken by the migrated fast writer's release")
	}
	if st := p.Stats(); st.Completed != 2 {
		t.Errorf("RSM completed = %d, want 2", st.Completed)
	}
}

// Same migration, reader contender: a read conflicting with the fast
// writer's footprint must block behind the surrogate until release.
func TestWriterFastPathMigrationBlocksReader(t *testing.T) {
	p := newTestProtocol(t, 2, Options{Metrics: true}, []ResourceID{0, 1})
	w, err := p.Write(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.fastW == 0 {
		t.Fatal("write did not take the writer fast path")
	}

	acquired := make(chan Token, 1)
	go func() {
		r, err := p.Read(bg, 0)
		if err != nil {
			panic(err)
		}
		acquired <- r
	}()

	select {
	case <-acquired:
		t.Fatal("reader acquired resource 0 while a fast writer held it")
	case <-time.After(50 * time.Millisecond):
	}
	if err := p.Release(w); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-acquired:
		if err := p.Release(r); err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader not woken by the migrated fast writer's release")
	}
}

// Double release of a writer fast-path token fails the word CAS (the word
// holds a fresh sequence or zero, never a stale one).
func TestWriterFastPathDoubleRelease(t *testing.T) {
	p := newTestProtocol(t, 2, Options{}, []ResourceID{0, 1})
	tok, err := p.Write(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tok.fastW == 0 {
		t.Fatal("write did not take the writer fast path")
	}
	if err := p.Release(tok); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(tok); !errors.Is(err, ErrAlreadyReleased) {
		t.Errorf("second release: got %v, want ErrAlreadyReleased", err)
	}
	// Re-claim the word with a new fast write, then double-release the old
	// token again: the stale sequence must still be rejected.
	tok2, err := p.Write(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Release(tok); !errors.Is(err, ErrAlreadyReleased) {
		t.Errorf("stale release after re-claim: got %v, want ErrAlreadyReleased", err)
	}
	if err := p.Release(tok2); err != nil {
		t.Fatal(err)
	}
}

// WithFastPath plane selection: each plane can be enabled independently,
// and the zero config disables both.
func TestFastPathConfigPlanes(t *testing.T) {
	build := func(fc FastPathConfig) *Protocol {
		b := NewSpecBuilder(2)
		if err := b.DeclareRequest([]ResourceID{0, 1}, nil); err != nil {
			t.Fatal(err)
		}
		return New(b.Build(), WithMetrics(), WithFastPath(fc))
	}
	roundtrip := func(p *Protocol, write bool) Token {
		t.Helper()
		var tok Token
		var err error
		if write {
			tok, err = p.Write(bg, 0)
		} else {
			tok, err = p.Read(bg, 0)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Release(tok); err != nil {
			t.Fatal(err)
		}
		return tok
	}

	p := build(FastPathConfig{Readers: true})
	if tok := roundtrip(p, false); tok.fastSeq == 0 {
		t.Error("Readers-only: read did not take the fast path")
	}
	if tok := roundtrip(p, true); tok.fastW != 0 {
		t.Error("Readers-only: write took the writer fast path")
	}

	p = build(FastPathConfig{Writers: true})
	if tok := roundtrip(p, false); tok.fastSeq != 0 {
		t.Error("Writers-only: read took the reader fast path")
	}
	if tok := roundtrip(p, true); tok.fastW == 0 {
		t.Error("Writers-only: write did not take the writer fast path")
	}

	p = build(FastPathConfig{})
	if tok := roundtrip(p, false); tok.fastSeq != 0 {
		t.Error("zero config: read took the fast path")
	}
	if tok := roundtrip(p, true); tok.fastW != 0 {
		t.Error("zero config: write took the writer fast path")
	}
	if st := p.Stats(); st.Issued != 2 || st.Completed != 2 {
		t.Errorf("zero config RSM stats = %+v, want 2 issued / 2 completed", st)
	}

	p = build(DefaultFastPath())
	if tok := roundtrip(p, false); tok.fastSeq == 0 {
		t.Error("default: read did not take the fast path")
	}
	if tok := roundtrip(p, true); tok.fastW == 0 {
		t.Error("default: write did not take the writer fast path")
	}
}

// Slot striping modes: StripeShared keeps the single global sequence,
// StripePerP derives claims from per-slot counters. Both must admit
// uncontended reads, keep sequences unique (stale double release rejected),
// and interoperate with writer migration.
func TestFastPathSlotStriping(t *testing.T) {
	for _, mode := range []SlotStriping{StripeShared, StripePerP} {
		name := "perP"
		if mode == StripeShared {
			name = "shared"
		}
		t.Run(name, func(t *testing.T) {
			b := NewSpecBuilder(2)
			if err := b.DeclareRequest([]ResourceID{0, 1}, nil); err != nil {
				t.Fatal(err)
			}
			p := New(b.Build(), WithMetrics(),
				WithFastPath(FastPathConfig{Readers: true, Writers: true, SlotStriping: mode}))

			tok, err := p.Read(bg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if tok.fastSeq == 0 {
				t.Fatal("read did not take the fast path")
			}
			if err := p.Release(tok); err != nil {
				t.Fatal(err)
			}
			if err := p.Release(tok); !errors.Is(err, ErrAlreadyReleased) {
				t.Errorf("double release: got %v, want ErrAlreadyReleased", err)
			}

			// Parallel churn with a migrating writer in the mix.
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 500; i++ {
						var tok Token
						var err error
						if g == 0 && i%32 == 0 {
							tok, err = p.Write(bg, 0)
						} else {
							tok, err = p.Read(bg, 0)
						}
						if err != nil {
							t.Error(err)
							return
						}
						if err := p.Release(tok); err != nil {
							t.Error(err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if st := p.Stats(); st.Issued != st.Completed+st.Canceled {
				t.Errorf("leaked RSM requests: %+v", st)
			}
			if got := fastCounter(t, p, obs.MFastPathHit, 0); got == 0 {
				t.Error("fastpath_hit = 0 under parallel readers")
			}
		})
	}
}

// Writer-plane revocation hysteresis with a custom RevocationPolicy: busy
// misses revoke the path, idle misses re-enable it, and a revocation that
// fires again right after a re-enable with little fast traffic counts as a
// storm.
func TestWriterFastPathRevocationHysteresis(t *testing.T) {
	const misses, grace = 4, 3
	p := newGatedProtocol(t, WithMetrics(), WithFastPath(FastPathConfig{
		Readers:    true,
		Writers:    true,
		Revocation: RevocationPolicy{RevokeMisses: misses, GraceReads: grace},
	}))
	s := p.shardOf(0)

	// A fast reader claim on 3 keeps the component busy from the writer
	// plane's point of view (and stays live as a surrogate after the first
	// slow writer migrates it).
	r, err := p.Read(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.fastSeq == 0 {
		t.Fatal("read did not take the fast path")
	}
	for i := 0; i < misses; i++ {
		w, err := p.Write(bg, 0) // busy miss, then served by the RSM
		if err != nil {
			t.Fatal(err)
		}
		if w.fastW != 0 {
			t.Fatal("writer fast hit while a fast reader was in flight")
		}
		if err := p.Release(w); err != nil {
			t.Fatal(err)
		}
	}
	if !s.fastWRevoked.Load() {
		t.Fatalf("writer path not revoked after %d busy misses", misses)
	}
	if got := fastCounter(t, p, obs.MFastWriteRevoked, 0); got != 1 {
		t.Errorf("fastpath_write_revoked = %d, want 1", got)
	}
	if err := p.Release(r); err != nil {
		t.Fatal(err)
	}

	// Component idle but path revoked: idle misses count down the grace
	// period, then re-enable.
	for i := 0; i < grace; i++ {
		if !s.fastWRevoked.Load() {
			t.Fatalf("writer path re-enabled after only %d idle misses", i)
		}
		w, err := p.Write(bg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if w.fastW != 0 {
			t.Fatal("writer fast hit while revoked")
		}
		if err := p.Release(w); err != nil {
			t.Fatal(err)
		}
	}
	if s.fastWRevoked.Load() {
		t.Fatal("writer path still revoked after the idle grace period")
	}
	w, err := p.Write(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.fastW == 0 {
		t.Fatal("write after re-enable did not take the writer fast path")
	}
	if err := p.Release(w); err != nil {
		t.Fatal(err)
	}

	// Storm: revoke again right after the re-enable, with only one fast op
	// in between (< 2*RevokeMisses).
	r2, err := p.Read(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < misses; i++ {
		w, err := p.Write(bg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Release(w); err != nil {
			t.Fatal(err)
		}
	}
	if !s.fastWRevoked.Load() {
		t.Fatal("writer path not revoked by the second busy streak")
	}
	if got := fastCounter(t, p, obs.MFastWriteStorm, 0); got != 1 {
		t.Errorf("fastpath_write_storm = %d, want 1", got)
	}
	if err := p.Release(r2); err != nil {
		t.Fatal(err)
	}
}

// Race stress for the writer plane: fast writes, fast reads, slow mixed
// requests, and upgradeable pairs churning one component. The claim/migrate/
// retract handshakes must neither deadlock nor leak RSM requests.
func TestWriterFastPathRaceStress(t *testing.T) {
	p := newTestProtocol(t, 2, Options{}, []ResourceID{0, 1})
	const iters = 20000
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case g == 0:
					tok, err := p.Write(bg, 0)
					if err != nil {
						t.Error(err)
						return
					}
					if err := p.Release(tok); err != nil {
						t.Error(err)
						return
					}
				case g == 1 && i%64 == 0:
					u, err := p.AcquireUpgradeable(bg, 0)
					if err != nil {
						t.Error(err)
						return
					}
					if u.Reading() && i%128 != 0 {
						if err := u.ReleaseRead(); err != nil {
							t.Error(err)
							return
						}
						continue
					}
					if u.Reading() {
						if err := u.Upgrade(bg); err != nil {
							t.Error(err)
							return
						}
					}
					if err := u.Release(); err != nil {
						t.Error(err)
						return
					}
				case g == 2 && i%16 == 0:
					tok, err := p.Acquire(bg, []ResourceID{1}, []ResourceID{0})
					if err != nil {
						t.Error(err)
						return
					}
					if err := p.Release(tok); err != nil {
						t.Error(err)
						return
					}
				default:
					tok, err := p.Read(bg, 0)
					if err != nil {
						t.Error(err)
						return
					}
					if err := p.Release(tok); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("deadlock: the writer fast-path handshake stranded a request")
	}
	if st := p.Stats(); st.Issued != st.Completed+st.Canceled {
		t.Errorf("leaked RSM requests: %+v", st)
	}
}

// Satellite: the undeclared cross-component slow path under the race
// detector. Every cross-component all-read acquisition must count on
// protocol_slow_path, and none may be lost — writers churn both components
// the whole time, so the per-part gate handshakes and rollbacks all fire.
func TestCrossComponentSlowPathRace(t *testing.T) {
	// Components {0,1} and {2,3}; reads spanning both are undeclared and
	// take the ordered multi-part slow path.
	p := newTestProtocol(t, 4, Options{Metrics: true}, []ResourceID{0, 1}, []ResourceID{2, 3})

	const (
		crossers = 4
		writers  = 2
		perGoro  = 200
		crossOps = crossers * perGoro
	)
	var wg sync.WaitGroup
	for g := 0; g < crossers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				tok, err := p.Read(bg, 1, 2) // spans both components
				if err != nil {
					t.Error(err)
					return
				}
				if err := p.Release(tok); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := ResourceID(2 * g)
			for i := 0; i < perGoro; i++ {
				tok, err := p.Write(bg, base, base+1)
				if err != nil {
					t.Error(err)
					return
				}
				if err := p.Release(tok); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("lost wakeup: slow-path stress did not complete")
	}

	snap := p.Metrics().Snapshot()
	if got := snap.Counters[obs.MSlowPath]; got != crossOps {
		t.Errorf("protocol_slow_path = %d, want %d", got, crossOps)
	}
	// Every acquisition released: nothing in flight, nothing leaked.
	if st := p.Stats(); st.Issued != st.Completed+st.Canceled {
		t.Errorf("leaked requests: %+v", st)
	}
}
