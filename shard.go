package rwrnlp

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/obs"
)

// issueOp is a published acquisition record (flat combining): a goroutine
// that finds the shard mutex contended pushes its op onto a lock-free stack
// instead of queueing on the mutex, and the current lock holder executes it
// before unlocking. One mutex handoff then completes many acquisitions.
type issueOp struct {
	next        *issueOp
	read, write []ResourceID
	// tag is the caller's request tag (see ContextWithTag), stamped onto
	// every core event of the issued request; nil for untagged acquisitions.
	tag any

	// Results, published before done — the release/acquire pair on done
	// makes them visible to the publisher.
	id   core.ReqID
	w    *waiter // non-nil if not satisfied synchronously
	err  error
	done atomic.Bool
}

// shard runs one connected component's RSM behind its own mutex. Requests
// confined to the component never interact with other shards in any way
// (see core.Spec: the read-sharing closure never crosses a component
// boundary), so per-shard Rule G4 total orders preserve the protocol within
// each component. Request IDs are strided (FirstID=idx, IDStep=n) so they
// are globally unique across shards.
type shard struct {
	p   *Protocol
	idx int
	n   int // shard count (for globally unique fast-path event IDs)

	// parkChan selects the legacy chan-close waiter (see park.go); the
	// default is the futex-style semaphore parker.
	parkChan bool

	mu      sync.Mutex
	rsm     *core.RSM
	clock   core.Time
	waiters map[core.ReqID]*waiter
	tracer  core.Observer
	signals []*waiter // satisfied during the current critical section

	ops atomic.Pointer[issueOp] // combining stack; nil = empty

	// Reader fast path (BRAVO-style; see fastpath.go). fastSlots is nil
	// when both planes are disabled (WithFastPath(FastPathConfig{})), which
	// disables every fast-path hook; fastR/fastW gate the per-plane
	// admission attempts. fastWriters is the writer gate: the number of
	// write-capable requests anywhere between writerEnter and writerExit
	// (fast writers hold it for their whole critical section); readers are
	// admitted to the slots only while it is zero. fastRevoked latches after
	// a drain exceeds its miss-streak budget and clears once fastGrace
	// fast-eligible reads observe the component writer-free again. fastSurr
	// maps a fast claim sequence to its migrated surrogate RSM request
	// (guarded by mu); a fast read that is never migrated reaches neither
	// the RSM nor the event stream (see fastpath.go).
	fastR          bool
	fastW          bool
	fastPerP       bool
	revokeMisses   int64
	graceReads     int64
	fastSlots      []fastSlot
	fastMask       int
	fastWriters    atomic.Int64
	fastRevoked    atomic.Bool
	fastGrace      atomic.Int64
	fastMissStreak atomic.Int64
	fastSeq        atomic.Uint64
	fastSurr       map[uint64]core.ReqID

	// Writer fast path (see fastpath.go). fastWWord holds the current
	// claim's sequence (0 = free); fastWRead/fastWWrite its published
	// footprint masks. rsmLive mirrors the RSM's incomplete count (stored
	// under mu by runOp/unlock/syncLive); rsmIntent counts issuers between
	// slowEnter and slowExit. The admission pre-check and re-check read both
	// without the mutex. fastWSurr maps a writer claim sequence to its
	// migrated surrogate (guarded by mu); fastWMig is the handshake word of
	// the exactly-once retirement, written only under mu.
	fastWWord       atomic.Uint64
	fastWRead       [fastSlotWords]atomic.Uint64
	fastWWrite      [fastSlotWords]atomic.Uint64
	fastWSeq        atomic.Uint64
	fastWMig        atomic.Uint64
	fastWSurr       map[uint64]core.ReqID
	fastWRevoked    atomic.Bool
	fastWGrace      atomic.Int64
	fastWMissStreak atomic.Int64
	fastWOps        atomic.Int64 // attempts since the last re-enable (storm detection)
	fastWReenabled  atomic.Bool  // the plane has been revoked and re-enabled before
	rsmLive         atomic.Int64
	rsmIntent       atomic.Int64

	// Observability (nil unless metrics): the ProtocolObserver instance is
	// per shard (its pending map sees only this shard's strided IDs) but
	// records into the Protocol's shared registry, so the protocol_* series
	// aggregate across shards; the shard_* instruments carry a shard label.
	metricsObs                              core.Observer
	acquires, releases, contended, combined *obs.Counter
	combineWait                             *obs.Histogram
	parkWakeC, parkDirectC, parkSpurC       *obs.Counter
	fastHitC, fastMissC                     *obs.Counter
	fastRevokedC, fastMigratedC             *obs.Counter
	fastWHitC, fastWMissC                   *obs.Counter
	fastWRevokedC, fastWMigratedC           *obs.Counter
	fastWStormC                             *obs.Counter

	// Attribution/black-box hooks (each nil unless its option was set):
	// flight and attr are the Protocol-wide instances, wd is this shard's
	// watchdog (one per shard so tick clocks never mix). All three cost one
	// nil check per event when disabled.
	flight *obs.FlightRecorder
	attr   *obs.Attributor
	wd     *obs.Watchdog
}

func newShard(p *Protocol, idx, n int) *shard {
	s := &shard{p: p, idx: idx, n: n, waiters: make(map[core.ReqID]*waiter)}
	s.parkChan = !p.cfg.park.sema()
	s.rsm = core.NewRSM(p.spec, core.Options{
		Placeholders: p.cfg.placeholders,
		FirstID:      core.ReqID(idx),
		IDStep:       core.ReqID(n),
	})
	if fc := p.cfg.fast; fc.enabled() {
		s.fastR = fc.Readers
		s.fastW = fc.Writers
		s.fastPerP = fc.perP()
		s.revokeMisses = fc.revokeMisses()
		s.graceReads = fc.graceReads()
		s.initFastPath()
	}
	if p.metrics != nil {
		po := obs.NewProtocolObserver(p.metrics)
		if p.flight != nil {
			po.SetExemplarSource(p.flight, idx)
		}
		s.metricsObs = po
		s.acquires = p.metrics.Counter(obs.ShardMetric(obs.MShardAcquires, idx))
		s.releases = p.metrics.Counter(obs.ShardMetric(obs.MShardReleases, idx))
		s.contended = p.metrics.Counter(obs.ShardMetric(obs.MShardContended, idx))
		s.combined = p.metrics.Counter(obs.ShardMetric(obs.MShardCombined, idx))
		s.combineWait = p.metrics.Histogram(obs.ShardMetric(obs.MShardCombineWaitNS, idx))
		s.parkWakeC = p.metrics.Counter(obs.ShardMetric(obs.MParkWakeups, idx))
		s.parkDirectC = p.metrics.Counter(obs.ShardMetric(obs.MParkDirect, idx))
		s.parkSpurC = p.metrics.Counter(obs.ShardMetric(obs.MParkSpurious, idx))
		if p.cfg.fast.Readers {
			s.fastHitC = p.metrics.Counter(obs.ShardMetric(obs.MFastPathHit, idx))
			s.fastMissC = p.metrics.Counter(obs.ShardMetric(obs.MFastPathMiss, idx))
			s.fastRevokedC = p.metrics.Counter(obs.ShardMetric(obs.MFastPathRevoked, idx))
			s.fastMigratedC = p.metrics.Counter(obs.ShardMetric(obs.MFastPathMigrated, idx))
		}
		if p.cfg.fast.Writers {
			s.fastWHitC = p.metrics.Counter(obs.ShardMetric(obs.MFastWriteHit, idx))
			s.fastWMissC = p.metrics.Counter(obs.ShardMetric(obs.MFastWriteMiss, idx))
			s.fastWRevokedC = p.metrics.Counter(obs.ShardMetric(obs.MFastWriteRevoked, idx))
			s.fastWMigratedC = p.metrics.Counter(obs.ShardMetric(obs.MFastWriteMigrated, idx))
			s.fastWStormC = p.metrics.Counter(obs.ShardMetric(obs.MFastWriteStorm, idx))
		}
	}
	s.flight = p.flight
	s.attr = p.attr
	if p.wdogs != nil {
		s.wd = p.wdogs[idx]
	}
	s.rsm.SetObserver(core.ObserverFunc(s.observe))
	return s
}

func (s *shard) tick() core.Time {
	s.clock++
	return s.clock
}

// observe runs under s.mu (the RSM is only invoked with the mutex held).
// Wakeups are batched: satisfied waiters are collected here and signaled by
// unlock after the mutex is released, so one Release that satisfies many
// requests signals them all outside its critical section and woken
// goroutines never collide with the signaler on s.mu.
func (s *shard) observe(e core.Event) {
	switch e.Type {
	case core.EvSatisfied, core.EvGranted, core.EvCanceled:
		if w, ok := s.waiters[e.Req]; ok {
			delete(s.waiters, e.Req)
			s.signals = append(s.signals, w)
		}
	}
	// The flight recorder runs before the metrics observer so that when the
	// observer tags an acquisition-delay exemplar with LastSeqOf, the
	// sequence names exactly this event's record.
	if s.flight != nil {
		s.flight.Record(s.idx, e)
	}
	if s.metricsObs != nil {
		s.metricsObs.Observe(e)
	}
	if s.attr != nil {
		s.attr.Observe(e)
	}
	if s.wd != nil {
		s.wd.Observe(e)
	}
	if s.tracer != nil {
		s.tracer.Observe(e)
	}
}

func (s *shard) selfCheck() {
	if !s.p.cfg.selfCheck {
		return
	}
	if v := s.rsm.CheckInvariants(); len(v) != 0 {
		panic("rwrnlp: invariant violated: " + v[0])
	}
}

// drainOps executes every published op. Caller holds s.mu.
func (s *shard) drainOps() {
	for op := s.ops.Swap(nil); op != nil; {
		next := op.next
		s.runOp(op)
		op = next
	}
}

// syncLive mirrors the RSM's incomplete count into rsmLive for the writer
// fast path's lock-free admission checks. Caller holds s.mu. A stale-high
// reading (a completion not yet mirrored) only costs a conservative miss;
// stale-low is impossible because every issuance syncs before its result is
// published (runOp before op.done, unlock before releasing the mutex) and
// the issuer's rsmIntent covers the window before that.
func (s *shard) syncLive() {
	if s.fastW {
		s.rsmLive.Store(int64(s.rsm.IncompleteLen()))
	}
}

// unlock leaves the shard's critical section: it combines any ops published
// while the lock was held, re-mirrors rsmLive, releases the mutex, and only
// then signals the batch of waiters satisfied during the section — exactly
// one wake per entitled grant, delivered outside the mutex so woken
// goroutines never collide with the signaler on s.mu. Every code path that
// locks s.mu must exit through unlock (or the deferred signals would be
// lost). Each delivery outcome feeds the park accounting counters, so
// "wakeups ≈ grants" is checkable from the metrics plane (see park.go).
func (s *shard) unlock() {
	s.drainOps()
	s.syncLive()
	sigs := s.signals
	s.signals = nil
	s.mu.Unlock()
	for _, w := range sigs {
		switch w.signal() {
		case parkWokeParked:
			if s.parkWakeC != nil {
				s.parkWakeC.Inc()
			}
		case parkDirect:
			if s.parkDirectC != nil {
				s.parkDirectC.Inc()
			}
		case parkSpurious:
			if s.parkSpurC != nil {
				s.parkSpurC.Inc()
			}
		}
	}
}

// runOp issues one published acquisition. Caller holds s.mu. rsmLive is
// mirrored before done is published: the publisher's slowExit must not run
// while its issuance is still invisible to the writer fast path.
func (s *shard) runOp(op *issueOp) {
	op.id, op.err = s.rsm.Issue(s.tick(), op.read, op.write, op.tag)
	if op.err == nil {
		if st, _ := s.rsm.State(op.id); st != core.StateSatisfied {
			op.w = s.newWaiter()
			s.waiters[op.id] = op.w
		}
	}
	s.syncLive()
	s.selfCheck()
	op.done.Store(true)
}

// acquire issues one request on this shard, returning the request ID and a
// waiter to park on (nil when satisfied synchronously). An uncontended
// caller takes the mutex directly; a contended one publishes an op for the
// current holder to combine, falling back to the mutex if no holder picks it
// up in time (the fallback drains the stack itself, so an op is always
// executed after at most one lock acquisition).
func (s *shard) acquire(read, write []ResourceID, tag any) (core.ReqID, *waiter, error) {
	if s.acquires != nil {
		s.acquires.Inc()
	}
	// Announce the issuance to the writer fast path (and migrate a fast
	// writer holding the word) before touching the mutex; the intent stays
	// up until the issued request is mirrored in rsmLive.
	s.slowEnter()
	defer s.slowExit()
	if s.mu.TryLock() {
		op := issueOp{read: read, write: write, tag: tag}
		s.runOp(&op)
		s.unlock()
		return op.id, op.w, op.err
	}
	if s.contended != nil {
		s.contended.Inc()
	}
	var start int64
	if s.combineWait != nil {
		start = time.Now().UnixNano()
	}
	op := &issueOp{read: read, write: write, tag: tag}
	for {
		old := s.ops.Load()
		op.next = old
		if s.ops.CompareAndSwap(old, op) {
			break
		}
	}
	for i := 0; i < 128; i++ {
		if op.done.Load() {
			// A lock holder combined the op on our behalf.
			if s.combined != nil {
				s.combined.Inc()
				s.combineWait.Observe(time.Now().UnixNano() - start)
			}
			return op.id, op.w, op.err
		}
		runtime.Gosched()
	}
	// Fallback: take the mutex. Holders drain the stack before releasing, so
	// once we hold it the op is either done or still in the stack.
	s.mu.Lock()
	if !op.done.Load() {
		s.drainOps()
	}
	s.unlock()
	if s.combineWait != nil {
		s.combineWait.Observe(time.Now().UnixNano() - start)
	}
	return op.id, op.w, op.err
}

// release completes a request, mapping the RSM's unknown-request report to
// the deterministic ErrAlreadyReleased (request IDs are never reused, so a
// second completion of the same ID always lands there).
func (s *shard) release(id core.ReqID) error {
	if s.releases != nil {
		s.releases.Inc()
	}
	s.mu.Lock()
	err := s.rsm.Complete(s.tick(), id)
	s.selfCheck()
	s.unlock()
	if errors.Is(err, core.ErrUnknownRequest) {
		return ErrAlreadyReleased
	}
	return err
}

// awaitCtx parks on w until it is signaled or ctx is done. A nil or
// non-cancelable ctx parks unconditionally. On cancellation the
// signal-vs-cancel race settles on the waiter's state word: if the cancel
// CAS loses, the wakeup token is in flight — consume it and own the grant;
// if it wins, no signal will ever be delivered (a late one is dropped as
// spurious) and the request's true state is resolved under s.mu — won
// (optional) reports satisfaction whose batched signal had not landed
// before the CAS, and otherwise the withdraw callback removes the request,
// returning ctx.Err().
func (s *shard) awaitCtx(ctx context.Context, w *waiter, won func() bool, withdraw func() error) error {
	if ctx == nil || ctx.Done() == nil {
		w.wait(s.p.cfg.spin)
		w.recycle()
		return nil
	}
	if w.legacy {
		select {
		case <-w.sema:
			return nil
		case <-ctx.Done():
		}
	} else {
		if !w.park(false) {
			w.recycle() // direct delivery: the signaler's CAS was its last touch
			return nil
		}
		select {
		case <-w.sema:
			w.recycle()
			return nil
		case <-ctx.Done():
			if !w.cancel() {
				// The signal's CAS landed first: its token is in flight.
				<-w.sema
				w.recycle()
				return nil
			}
		}
	}
	s.mu.Lock()
	if w.signaled() || (won != nil && won()) {
		s.unlock()
		return nil
	}
	err := withdraw()
	s.selfCheck()
	s.unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// awaitAcquire is awaitCtx for a plain pending acquisition: cancellation
// withdraws the whole request.
func (s *shard) awaitAcquire(ctx context.Context, id core.ReqID, w *waiter) error {
	return s.awaitCtx(ctx, w,
		func() bool {
			if st, err := s.rsm.State(id); err == nil && st == core.StateSatisfied {
				delete(s.waiters, id)
				return true
			}
			return false
		},
		func() error {
			delete(s.waiters, id)
			return s.rsm.CancelRequest(s.tick(), id)
		})
}
