package rwrnlp

// config is the resolved configuration of a Protocol.
type config struct {
	placeholders bool
	spin         bool
	selfCheck    bool
	metrics      bool
	sharding     bool
	fastPath     bool
}

func defaultConfig() config {
	return config{sharding: true, fastPath: true}
}

// Option configures a Protocol at construction:
//
//	p := rwrnlp.New(spec, rwrnlp.WithPlaceholders(), rwrnlp.WithMetrics())
//
// The legacy Options struct also implements Option, so v1 call sites keep
// compiling unchanged.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithPlaceholders enables the Sec. 3.4 optimization (recommended): writers
// enqueue placeholders in the write queues of read-shared resources instead
// of locking them, strictly increasing concurrency with the same worst-case
// bounds.
func WithPlaceholders() Option {
	return optionFunc(func(c *config) { c.placeholders = true })
}

// WithSpin makes waiters busy-wait (yielding from the first iteration, then
// backing off) instead of blocking on a channel. Spinning mirrors the paper's
// Rule-S1 variant and has lower wake-up latency; blocking is kinder to mixed
// workloads. Context-aware waits always block regardless of this option.
func WithSpin() Option {
	return optionFunc(func(c *config) { c.spin = true })
}

// WithSelfCheck verifies the protocol's structural invariants (mutual
// exclusion, Prop. E10, queue order, Lemma 6, …) after every invocation —
// per component shard — and panics on a violation. Costly; for bring-up and
// tests.
func WithSelfCheck() Option {
	return optionFunc(func(c *config) { c.selfCheck = true })
}

// WithMetrics enables the observability layer (internal/obs): protocol event
// counters and tick-valued histograms via per-shard obs.ProtocolObservers
// recording into one shared registry, per-shard acquire/contention counters
// (shard-labeled names), plus wall-clock acquisition/blocking/CS histograms
// recorded directly on the acquisition path. Retrieve with Protocol.Metrics;
// serve with Protocol.DebugHandler. When disabled the only cost on the
// acquisition path is a nil check.
func WithMetrics() Option {
	return optionFunc(func(c *config) { c.metrics = true })
}

// WithoutSharding forces a single RSM + mutex for the whole resource system
// instead of one per connected component. Use it when requests routinely
// span undeclared resource combinations (so the multi-component slow path
// would dominate) or when the exact v1 single-timeline semantics are needed
// — e.g. a mutex-RNLP built over undeclared resources, where per-resource
// sequential locking would not be the RNLP.
func WithoutSharding() Option {
	return optionFunc(func(c *config) { c.sharding = false })
}

// WithoutFastPath disables the BRAVO-style reader fast path (on by default):
// an all-read acquisition within one component, admitted while the component
// has no write-capable request in flight, normally publishes its read set
// into a padded per-shard slot array with atomic stores only — no shard
// mutex, no RSM invocation. Writers close a per-shard gate and migrate the
// in-flight fast readers into the RSM as surrogate read requests before
// issuing, so the RSM's grant decisions match the all-slow baseline exactly;
// under sustained write pressure the path revokes itself (hysteresis).
// Disable it when every read acquisition must appear in Stats/Snapshot and
// the protocol event stream (a fast read is visible there only if a writer
// migrated it; otherwise its only telemetry is the per-shard fastpath_*
// counters), or when benchmarking the pure RSM path.
func WithoutFastPath() Option {
	return optionFunc(func(c *config) { c.fastPath = false })
}

// Options is the v1 configuration struct.
//
// Deprecated: pass functional options to New instead — Options{Placeholders:
// true} becomes WithPlaceholders(), and so on. Options implements Option, so
// existing New(spec, Options{…}) call sites keep compiling; it always
// implies WithoutSharding-off (sharding stays enabled).
type Options struct {
	// Placeholders enables the Sec. 3.4 optimization. See WithPlaceholders.
	Placeholders bool

	// Spin makes waiters busy-wait. See WithSpin.
	Spin bool

	// SelfCheck verifies structural invariants after every invocation. See
	// WithSelfCheck.
	SelfCheck bool

	// Metrics enables the observability layer. See WithMetrics.
	Metrics bool
}

func (o Options) apply(c *config) {
	c.placeholders = o.Placeholders
	c.spin = o.Spin
	c.selfCheck = o.SelfCheck
	c.metrics = o.Metrics
}
