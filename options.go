package rwrnlp

import (
	"time"

	"github.com/rtsync/rwrnlp/internal/obs"
)

// config is the resolved configuration of a Protocol.
type config struct {
	placeholders bool
	spin         bool
	selfCheck    bool
	metrics      bool
	sharding     bool
	fast         FastPathConfig
	park         ParkMode

	flightDepth int                 // per-shard flight ring slots; 0 disables
	watchdog    *obs.WatchdogConfig // nil disables the stall watchdog
	attrTopK    int                 // 0 disables causal attribution
	profLabels  bool                // pprof labels + runtime/trace regions
	tsInterval  time.Duration       // time-series capture interval; 0 disables
	tsCapacity  int                 // time-series ring capacity; 0 = default
}

func defaultConfig() config {
	return config{sharding: true, fast: DefaultFastPath()}
}

// ParkMode selects how unsatisfied requests block on the contended slow
// path (see WithParking).
type ParkMode int

const (
	// ParkAuto lets the implementation choose; it currently selects
	// ParkSema.
	ParkAuto ParkMode = iota

	// ParkSema parks each unsatisfied request on a futex-style per-request
	// token semaphore: a single packed state word (idle/parked/signaled/
	// cancelled) driven by CAS, with a bounded spin/yield burst in front of
	// the park. Signaling a grant is one CAS plus at most one runtime
	// wakeup, so a batched release wakes exactly the entitled requests —
	// no broadcast, no thundering herd. Signal-vs-cancel races settle by
	// whichever CAS lands first (park.go).
	ParkSema

	// ParkChan parks each unsatisfied request on a channel closed under a
	// sync.Once — the pre-parking machinery, kept as an ablation baseline
	// for the park-overhead CI gate. Strictly more overhead per wakeup
	// under contention; do not use it outside benchmarks.
	ParkChan
)

// sema resolves the mode (ParkAuto selects ParkSema).
func (m ParkMode) sema() bool { return m != ParkChan }

// SlotStriping selects how reader fast-path claims are assigned to the
// per-shard visible-readers slots (see FastPathConfig.SlotStriping).
type SlotStriping int

const (
	// StripeAuto lets the implementation choose; it currently selects
	// StripePerP.
	StripeAuto SlotStriping = iota

	// StripePerP stripes claims across the slot array by a goroutine-local
	// hint (derived from the goroutine's stack address — no runtime_procPin,
	// no TLS), so readers running on different Ps claim different, padded
	// slots and the claim CAS stays core-local. Claim sequences are minted
	// from a per-slot counter, so the hot path never touches a shared
	// sequence word at all.
	StripePerP

	// StripeShared probes from a hash of one global claim-sequence counter —
	// the original PR 4 layout. Marginally less memory traffic at low core
	// counts; the shared counter becomes a contended line at high ones.
	StripeShared
)

// RevocationPolicy tunes the BRAVO-style revocation hysteresis shared by
// both fast-path planes. The zero value selects the defaults (128 misses to
// revoke, 64 writer-free/idle observations to re-enable).
type RevocationPolicy struct {
	// RevokeMisses is the streak of conflict-induced fast-path misses after
	// which the plane revokes itself and stops paying the publish/retract
	// overhead. <= 0 selects 128.
	RevokeMisses int

	// GraceReads is how many subsequent fast-eligible acquisitions (served
	// by the RSM) must observe the conflict gone — component writer-free for
	// the reader plane, fully idle for the writer plane — before the plane
	// re-enables. <= 0 selects 64.
	GraceReads int
}

// FastPathConfig is the unified configuration of the lock-free fast paths
// (see WithFastPath). The zero value disables both planes; DefaultFastPath
// is what a Protocol runs with when WithFastPath is not given.
type FastPathConfig struct {
	// Readers enables the BRAVO-style reader fast path: an all-read
	// acquisition within one component, admitted while the component has no
	// write-capable request in flight, publishes its read set into a padded
	// per-shard slot array with atomic stores only — no shard mutex, no RSM.
	// Writers close a per-shard gate and migrate in-flight fast readers into
	// the RSM as surrogate read requests before issuing, so grant decisions
	// match the all-slow baseline exactly (fastpath.go).
	Readers bool

	// Writers enables the uncontended-writer fast path: a write-capable
	// acquisition within one component, admitted while the component's RSM
	// is empty and no fast reader is in flight, claims the whole component
	// with one CAS on a per-shard writer word. The first conflicting request
	// revokes the claim BRAVO-style, materializing the fast writer as a
	// surrogate write request in the RSM; grant decisions thereafter match
	// the all-slow baseline (fastpath.go).
	Writers bool

	// Revocation tunes the per-plane revocation hysteresis.
	Revocation RevocationPolicy

	// SlotStriping selects the reader-slot assignment strategy.
	SlotStriping SlotStriping
}

// DefaultFastPath returns the fast-path configuration a Protocol runs with
// when WithFastPath is not given: both planes enabled, default revocation
// hysteresis, automatic (per-P) slot striping.
func DefaultFastPath() FastPathConfig {
	return FastPathConfig{Readers: true, Writers: true}
}

// enabled reports whether any fast-path plane is on (the shard allocates
// its slot array and gate machinery only then).
func (fc FastPathConfig) enabled() bool { return fc.Readers || fc.Writers }

// revokeMisses resolves the RevokeMisses default.
func (fc FastPathConfig) revokeMisses() int64 {
	if fc.Revocation.RevokeMisses <= 0 {
		return fastRevokeMisses
	}
	return int64(fc.Revocation.RevokeMisses)
}

// graceReads resolves the GraceReads default.
func (fc FastPathConfig) graceReads() int64 {
	if fc.Revocation.GraceReads <= 0 {
		return fastGraceReads
	}
	return int64(fc.Revocation.GraceReads)
}

// perP resolves the SlotStriping choice (StripeAuto selects StripePerP).
func (fc FastPathConfig) perP() bool { return fc.SlotStriping != StripeShared }

// Option configures a Protocol at construction:
//
//	p := rwrnlp.New(spec, rwrnlp.WithPlaceholders(), rwrnlp.WithMetrics())
//
// The legacy Options struct also implements Option, so v1 call sites keep
// compiling unchanged.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithPlaceholders enables the Sec. 3.4 optimization (recommended): writers
// enqueue placeholders in the write queues of read-shared resources instead
// of locking them, strictly increasing concurrency with the same worst-case
// bounds.
func WithPlaceholders() Option {
	return optionFunc(func(c *config) { c.placeholders = true })
}

// WithSpin makes waiters busy-wait (yielding from the first iteration, then
// backing off) instead of blocking on a channel. Spinning mirrors the paper's
// Rule-S1 variant and has lower wake-up latency; blocking is kinder to mixed
// workloads. Context-aware waits always block regardless of this option.
func WithSpin() Option {
	return optionFunc(func(c *config) { c.spin = true })
}

// WithSelfCheck verifies the protocol's structural invariants (mutual
// exclusion, Prop. E10, queue order, Lemma 6, …) after every invocation —
// per component shard — and panics on a violation. Costly; for bring-up and
// tests.
func WithSelfCheck() Option {
	return optionFunc(func(c *config) { c.selfCheck = true })
}

// WithMetrics enables the observability layer (internal/obs): protocol event
// counters and tick-valued histograms via per-shard obs.ProtocolObservers
// recording into one shared registry, per-shard acquire/contention counters
// (shard-labeled names), plus wall-clock acquisition/blocking/CS histograms
// recorded directly on the acquisition path. Retrieve with Protocol.Metrics;
// serve with Protocol.DebugHandler. When disabled the only cost on the
// acquisition path is a nil check.
func WithMetrics() Option {
	return optionFunc(func(c *config) { c.metrics = true })
}

// WithoutSharding forces a single RSM + mutex for the whole resource system
// instead of one per connected component. Use it when requests routinely
// span undeclared resource combinations (so the multi-component slow path
// would dominate) or when the exact v1 single-timeline semantics are needed
// — e.g. a mutex-RNLP built over undeclared resources, where per-resource
// sequential locking would not be the RNLP.
func WithoutSharding() Option {
	return optionFunc(func(c *config) { c.sharding = false })
}

// WithFastPath replaces the Protocol's fast-path configuration wholesale
// with fc: which planes run lock-free (Readers — the BRAVO visible-readers
// table; Writers — the single-CAS uncontended-writer word), how aggressively
// each plane revokes itself under conflict pressure, and how reader claims
// stripe across the slot array. The zero FastPathConfig disables both planes
// and routes every acquisition through the RSM — do that when every
// acquisition must appear in Stats/Snapshot and the protocol event stream (a
// fast acquisition is visible there only if a conflicting request migrated
// it; otherwise its only telemetry is the per-shard fastpath_* counters), or
// when benchmarking the pure RSM path.
func WithFastPath(fc FastPathConfig) Option {
	return optionFunc(func(c *config) { c.fast = fc })
}

// WithoutFastPath disables both fast-path planes.
//
// Deprecated: use WithFastPath(FastPathConfig{}) — or a partial
// FastPathConfig to disable one plane only. WithoutFastPath will be removed
// in v3.
func WithoutFastPath() Option {
	return WithFastPath(FastPathConfig{})
}

// WithParking selects the slow-path parking implementation. The default
// (ParkAuto) is the per-request token-semaphore parker; ParkChan restores
// the legacy chan-close waiter for ablation benchmarks. The choice affects
// only how an already-unsatisfied request blocks and wakes — grant order
// and every protocol invariant are identical under both modes.
func WithParking(m ParkMode) Option {
	return optionFunc(func(c *config) { c.park = m })
}

// WithFlightRecorder enables the black-box flight recorder: every protocol
// event (with its causal wait edges) is copied into a bounded lock-free ring
// per shard, holding the perShard most recent events (values <= 0 select
// obs.DefaultFlightDepth). Dump the rings any time with
// Protocol.FlightRecorder().Dump() — or over HTTP via Protocol.DebugMux —
// and render the dump with cmd/flightdump or as a Perfetto trace. The ring
// write is a handful of stores per event; when disabled, the only cost on
// the event path is a nil check. Fast-path acquisitions bypass the RSM and
// are recorded only if a conflicting request migrated them (see
// WithFastPath).
func WithFlightRecorder(perShard int) Option {
	if perShard <= 0 {
		perShard = obs.DefaultFlightDepth
	}
	return optionFunc(func(c *config) { c.flightDepth = perShard })
}

// WithStallWatchdog arms a per-shard stall watchdog: if a request waits
// longer than its Theorem 1/2 envelope × cfg.Slack (in that shard's logical
// ticks — one tick per shard invocation), the watchdog fires, retains a
// StallReport, and invokes cfg.OnStall with a flight-recorder dump (when
// WithFlightRecorder is also set and cfg.Flight is nil) and optionally a
// goroutine profile. Each shard gets its own watchdog so tick clocks never
// mix; firings and reports aggregate via Protocol.WatchdogFirings and
// Protocol.StallReports. Checks are event-driven: a stall is detected when
// the shard next processes any invocation. The OnStall callback must not
// call back into the Protocol's acquisition paths.
func WithStallWatchdog(cfg WatchdogConfig) Option {
	return optionFunc(func(c *config) { c.watchdog = &cfg })
}

// WithAttribution enables causal blocking attribution: an obs.Attributor
// consumes the event stream's wait edges and decomposes every acquisition
// delay into the paper-aligned components (reader behind entitled writer /
// entitled wait, writer queue wait / blocked by read phase), keeping the
// topK worst blocking chains (<= 0 means 10). Retrieve the report with
// Protocol.Attribution. With WithMetrics also set, the component histograms
// land in the shared registry (attr_* series); otherwise they go to a
// private one. The runtime-only components — cross-component slow path and
// fast-path revocation penalty — are recorded as wall-clock histograms
// (attr_slow_path_ns, attr_fastpath_revocation_ns).
func WithAttribution(topK int) Option {
	if topK <= 0 {
		topK = 10
	}
	return optionFunc(func(c *config) { c.attrTopK = topK })
}

// WithTimeSeries enables continuous telemetry (implies WithMetrics): a
// bounded obs.TimeSeries ring captures a metrics snapshot every interval
// (<= 0 selects one second), retaining capacity samples (<= 0 selects
// obs.DefaultTimeSeriesCapacity), so rates, windowed tail quantiles, and
// Theorem 1/2 bound utilization are queryable over "the last N seconds" —
// via Protocol.TimeSeries or the /debug/rnlp/timeseries route of
// Protocol.DebugMux. The capture goroutine starts with the Protocol; call
// Protocol.Close to stop it.
func WithTimeSeries(interval time.Duration, capacity int) Option {
	return optionFunc(func(c *config) {
		c.metrics = true
		if interval <= 0 {
			interval = time.Second
		}
		c.tsInterval = interval
		c.tsCapacity = capacity
	})
}

// WithProfilingLabels tags the acquisition path for the Go profiler and
// execution tracer: Acquire runs under pprof labels (rnlp_mode=read|write,
// plus rnlp_shard and rnlp_path=fast|slow once routing is known), so CPU
// profiles of a contended system attribute spin/wait time per shard and
// path; and when runtime/trace is active, each critical section becomes a
// "rwrnlp.cs" trace region from acquisition to Release. Trace regions
// require Release to be called from the acquiring goroutine (the
// runtime/trace region contract); tokens handed across goroutines should
// not use this option while tracing.
func WithProfilingLabels() Option {
	return optionFunc(func(c *config) { c.profLabels = true })
}

// Options is the v1 configuration struct.
//
// Deprecated: pass functional options to New instead — Options{Placeholders:
// true} becomes WithPlaceholders(), and so on. Options implements Option, so
// existing New(spec, Options{…}) call sites keep compiling; it always
// implies WithoutSharding-off (sharding stays enabled). Options will be
// removed in v3; see the README's migration table.
type Options struct {
	// Placeholders enables the Sec. 3.4 optimization. See WithPlaceholders.
	Placeholders bool

	// Spin makes waiters busy-wait. See WithSpin.
	Spin bool

	// SelfCheck verifies structural invariants after every invocation. See
	// WithSelfCheck.
	SelfCheck bool

	// Metrics enables the observability layer. See WithMetrics.
	Metrics bool
}

func (o Options) apply(c *config) {
	c.placeholders = o.Placeholders
	c.spin = o.Spin
	c.selfCheck = o.SelfCheck
	c.metrics = o.Metrics
}
