// Command mccheck runs the systematic model checker (internal/mc) over
// bounded R/W RNLP scenarios: every interleaving of a scope is explored,
// with invariant, differential-oracle, deadlock, and Theorem 1/2 envelope
// checks at each step, and violations are shrunk to minimal replayable
// counterexamples.
//
// Usage:
//
//	mccheck [flags] <preset>|ci          exhaustive exploration
//	mccheck [flags] -templates DSL -q N  exhaustive exploration, custom scope
//	mccheck [flags] -walk <preset>       seeded randomized stress walk
//	mccheck [flags] -replay FILE         re-execute a saved counterexample
//
// The special scope "ci" runs every preset in both placeholder modes — the
// bounded-depth configuration the CI pipeline gates on.
//
// Exit status: 0 clean, 1 violation found (or replay reproduced), 2 usage
// or internal error.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/rtsync/rwrnlp/internal/mc"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("mccheck", flag.ExitOnError)
	var (
		templates  = fs.String("templates", "", "scenario DSL (e.g. 'r:0+1 w:1+2 u:0+2 i:0|2/2/0'); overrides the preset argument")
		q          = fs.Int("q", 0, "number of resources for -templates")
		placehold  = fs.Bool("placeholders", false, "use the Sec. 3.4 placeholder variant")
		cancels    = fs.Bool("cancels", false, "enable CancelRequest actions")
		chaos      = fs.Bool("chaos-skip-wq-head-check", false, "inject the write-overtaking fault (detector demo)")
		depth      = fs.Int("depth", 0, "maximum schedule depth, 0 = unbounded")
		maxStates  = fs.Int("max-states", 0, "abort after this many distinct states, 0 = unlimited")
		noMemo     = fs.Bool("no-memo", false, "disable canonical-state memoization")
		noSleep    = fs.Bool("no-sleep", false, "disable sleep-set pruning")
		noBounds   = fs.Bool("no-bounds", false, "disable the Theorem 1/2 envelope check")
		exhBounds  = fs.Bool("exhaustive-bounds", false, "check bounds over all timing histories (expensive)")
		m          = fs.Int("m", 0, "processor count for Theorem 2, 0 = one per template")
		walk       = fs.Bool("walk", false, "randomized stress-walk mode instead of exhaustive DFS")
		episodes   = fs.Int("episodes", 200, "walk episodes")
		steps      = fs.Int("steps", 0, "walk max steps per episode, 0 = run to terminal")
		seed       = fs.Int64("seed", 1, "walk RNG seed (deterministic per seed)")
		stats      = fs.Bool("stats", false, "print exploration statistics")
		noMinimize = fs.Bool("no-minimize", false, "report the raw counterexample without shrinking")
		replayPath = fs.String("replay", "", "replay a saved counterexample script instead of exploring")
		traceOut   = fs.String("trace-out", "", "write a Perfetto trace of the violation replay to this file")
		scriptOut  = fs.String("o", "", "write the violation's replay script to this file")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mccheck [flags] <preset>|ci\n\npresets:")
		for _, p := range mc.Presets() {
			fmt.Fprintf(fs.Output(), " %s", p.Name)
		}
		fmt.Fprintf(fs.Output(), "\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	opt := mc.Options{
		Memo:             !*noMemo,
		SleepSets:        !*noSleep,
		CheckBounds:      !*noBounds,
		ExhaustiveBounds: *exhBounds,
		MaxDepth:         *depth,
		MaxStates:        *maxStates,
		M:                *m,
	}

	if *replayPath != "" {
		return replay(*replayPath, *traceOut)
	}

	var scenarios []*mc.Scenario
	switch {
	case *templates != "":
		tpl, err := mc.ParseTemplates(*templates)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mccheck:", err)
			return 2
		}
		if *q <= 0 {
			fmt.Fprintln(os.Stderr, "mccheck: -templates requires -q")
			return 2
		}
		scenarios = []*mc.Scenario{{
			Name:                 "custom",
			Q:                    *q,
			Templates:            tpl,
			Placeholders:         *placehold,
			Cancels:              *cancels,
			ChaosSkipWQHeadCheck: *chaos,
		}}
	case fs.NArg() == 1 && fs.Arg(0) == "ci":
		// The CI gate: every preset, both placeholder modes.
		for _, base := range mc.Presets() {
			for _, ph := range []bool{false, true} {
				sc := *base
				sc.Placeholders = ph
				sc.ChaosSkipWQHeadCheck = *chaos
				scCopy := sc
				scenarios = append(scenarios, &scCopy)
			}
		}
	case fs.NArg() == 1:
		sc := mc.Preset(fs.Arg(0))
		if sc == nil {
			fmt.Fprintf(os.Stderr, "mccheck: unknown preset %q\n", fs.Arg(0))
			fs.Usage()
			return 2
		}
		sc.Placeholders = *placehold
		sc.ChaosSkipWQHeadCheck = sc.ChaosSkipWQHeadCheck || *chaos
		if *cancels {
			sc.Cancels = true
		}
		scenarios = []*mc.Scenario{sc}
	default:
		fs.Usage()
		return 2
	}

	for _, sc := range scenarios {
		var res mc.Result
		var err error
		mode := "explore"
		if *walk {
			mode = fmt.Sprintf("walk seed=%d episodes=%d", *seed, *episodes)
			res, err = mc.Walk(sc, opt, *seed, *episodes, *steps)
		} else {
			res, err = mc.Explore(sc, opt)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "mccheck:", err)
			return 2
		}
		label := sc.Name
		if sc.Placeholders {
			label += "+placeholders"
		}
		if res.Violation != nil {
			v := res.Violation
			fmt.Printf("%s: VIOLATION (%s)\n", label, mode)
			if !*noMinimize {
				min := mc.Minimize(v)
				fmt.Printf("minimized: %d steps (from %d)\n", len(min.Path), len(v.Path))
				v = min
			}
			fmt.Println(v)
			if err := emitArtifacts(v, *scriptOut, *traceOut); err != nil {
				fmt.Fprintln(os.Stderr, "mccheck:", err)
				return 2
			}
			return 1
		}
		if *stats || len(scenarios) > 1 {
			fmt.Printf("%s: ok (%s) %s\n", label, mode, res.Stats)
		} else {
			fmt.Printf("%s: ok (%s)\n", label, mode)
		}
	}
	return 0
}

// emitArtifacts writes the replay script and the Perfetto trace of the
// violation, as requested.
func emitArtifacts(v *mc.Violation, scriptOut, traceOut string) error {
	if scriptOut != "" {
		if err := os.WriteFile(scriptOut, []byte(v.Script()), 0o644); err != nil {
			return err
		}
		fmt.Printf("replay script written to %s\n", scriptOut)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if _, err := mc.Replay(v.Scenario, v.Path, f); err != nil {
			return err
		}
		fmt.Printf("perfetto trace written to %s (load in ui.perfetto.dev)\n", traceOut)
	}
	return nil
}

// replay re-executes a saved counterexample script.
func replay(path, traceOut string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mccheck:", err)
		return 2
	}
	sc, schedule, err := mc.ParseReplay(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mccheck:", err)
		return 2
	}
	var trace *os.File
	if traceOut != "" {
		if trace, err = os.Create(traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "mccheck:", err)
			return 2
		}
		defer trace.Close()
	}
	var v *mc.Violation
	if trace != nil {
		v, err = mc.Replay(sc, schedule, trace)
	} else {
		v, err = mc.Replay(sc, schedule, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mccheck:", err)
		return 2
	}
	if traceOut != "" {
		fmt.Printf("perfetto trace written to %s (load in ui.perfetto.dev)\n", traceOut)
	}
	if v != nil {
		fmt.Printf("reproduced at step %d:\n%s", v.Step, v)
		return 1
	}
	fmt.Println("schedule ran clean (violation not reproduced)")
	return 0
}
