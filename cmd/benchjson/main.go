// Command benchjson converts `go test -bench` text output (on stdin) into a
// machine-readable JSON snapshot: benchmark name → ns/op, B/op, allocs/op.
// Lines that are not benchmark results are ignored, so the full test output
// can be piped through unfiltered. Used by `make bench-json` to record
// BENCH_<date>.json performance snapshots.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results := []Result{} // non-nil so empty input marshals as [], not null
	pkg := ""
	scan := bufio.NewScanner(os.Stdin)
	scan.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scan.Scan() {
		line := scan.Text()
		// `go test` prints a "pkg: <import path>" header per package;
		// qualify benchmark names with it so same-named benchmarks in
		// different packages stay distinct.
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = rest
			continue
		}
		if r, ok := parseLine(line); ok {
			if pkg != "" {
				r.Name = pkg + "." + r.Name
			}
			results = append(results, r)
		}
	}
	if err := scan.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(results), *out)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkLock/m=8-16    1000000    1234 ns/op    456 B/op    7 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
				seen = true
			}
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, seen
}
