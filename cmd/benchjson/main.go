// Command benchjson converts `go test -bench` text output (on stdin) into a
// machine-readable JSON snapshot: benchmark name → ns/op, B/op, allocs/op.
// Lines that are not benchmark results are ignored, so the full test output
// can be piped through unfiltered. Used by `make bench-json` to record
// BENCH_<date>.json performance snapshots.
//
// A second mode compares two snapshots and fails on throughput regressions:
//
//	benchjson compare [-threshold 15] [-match regex] old.json new.json
//
// exits 1 if any benchmark present in both files slowed down by more than
// threshold percent (ns/op). Used by `make bench-check` and the CI perf
// gate.
//
// A third mode compares two benchmarks within ONE snapshot — a same-run
// ablation pair, immune to cross-run machine drift:
//
//	benchjson pair [-threshold 2] snapshot.json baseName variantName
//
// exits 1 if variant exceeds base by more than threshold percent (ns/op).
// Used by the CI overhead gates (BenchmarkAcquire/flight=off vs =on,
// BenchmarkAcquire/hdr=off vs =on).
//
// Pair-gate protocol: run both sides with `go test -count=5` in a single
// invocation. The converter merges repeated lines by MINIMUM ns/op, so each
// side of the pair is the min of five interleaved runs. This matters: a
// single-run pair on a shared machine routinely inverts (a 2026-08-06
// snapshot recorded the observed variant at 467 ns/op against a 577 ns/op
// uninstrumented baseline — a -19% "overhead" that was pure scheduler
// noise). Minima cancel one-sided interference, and interleaving cancels
// thermal/frequency drift between the sides; what remains is the real
// effect, so thresholds encode tolerance for the instrument's true cost,
// not for measurement noise.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "compare":
			os.Exit(compareMain(os.Args[2:]))
		case "pair":
			os.Exit(pairMain(os.Args[2:]))
		}
	}
	convertMain()
}

func convertMain() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results := []Result{} // non-nil so empty input marshals as [], not null
	pkg := ""
	scan := bufio.NewScanner(os.Stdin)
	scan.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scan.Scan() {
		line := scan.Text()
		// `go test` prints a "pkg: <import path>" header per package;
		// qualify benchmark names with it so same-named benchmarks in
		// different packages stay distinct.
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = rest
			continue
		}
		if r, ok := parseLine(line); ok {
			if pkg != "" {
				r.Name = pkg + "." + r.Name
			}
			results = append(results, r)
		}
	}
	if err := scan.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	results = mergeDuplicates(results)

	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks written to %s\n", len(results), *out)
}

// mergeDuplicates collapses repeated measurements of the same benchmark
// (`go test -count=N` emits one line per run) into a single entry that
// keeps the minimum ns/op, B/op, and allocs/op observed. Scheduler and
// co-tenant interference only ever slow a benchmark down, so the minimum
// is the robust estimator of its true cost — using it on both sides of a
// `compare` makes the regression gate far less sensitive to machine noise
// than a mean would be. The output is sorted by name, and with duplicates
// merged the sort is a total order, so two conversions of equivalent
// input produce byte-identical JSON.
func mergeDuplicates(in []Result) []Result {
	byName := make(map[string]*Result, len(in))
	order := []Result{}
	for _, r := range in {
		prev, ok := byName[r.Name]
		if !ok {
			order = append(order, r)
			byName[r.Name] = &order[len(order)-1]
			continue
		}
		prev.NsPerOp = min(prev.NsPerOp, r.NsPerOp)
		prev.BytesPerOp = min(prev.BytesPerOp, r.BytesPerOp)
		prev.AllocsPerOp = min(prev.AllocsPerOp, r.AllocsPerOp)
		prev.Iterations += r.Iterations
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Name < order[j].Name })
	return order
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkLock/m=8-16    1000000    1234 ns/op    456 B/op    7 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err == nil {
				seen = true
			}
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, seen
}

// compareMain implements `benchjson compare old.json new.json`: exit 0 if no
// benchmark regressed past the threshold, 1 on regression, 2 on usage or
// I/O errors. Benchmarks only present in one file are reported but never
// fail the gate (CI machines differ; the gate targets same-machine pairs).
func compareMain(argv []string) int {
	fs := flag.NewFlagSet("benchjson compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 15, "max allowed ns/op slowdown in percent")
	match := fs.String("match", "", "only compare benchmarks whose name matches this regexp")
	fs.Parse(argv)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-threshold pct] [-match regex] old.json new.json")
		return 2
	}
	var re *regexp.Regexp
	if *match != "" {
		var err error
		if re, err = regexp.Compile(*match); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson compare:", err)
			return 2
		}
	}
	old, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson compare:", err)
		return 2
	}
	cur, err := loadSnapshot(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson compare:", err)
		return 2
	}

	names := make([]string, 0, len(old))
	for name := range old {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions, compared := 0, 0
	for _, name := range names {
		if re != nil && !re.MatchString(name) {
			continue
		}
		o := old[name]
		n, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-60s (in old snapshot only)\n", name)
			continue
		}
		if o.NsPerOp <= 0 {
			continue
		}
		compared++
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		status := "ok"
		if delta > *threshold {
			status = "REGRESSED"
			regressions++
		}
		fmt.Printf("%-9s %-60s %12.1f -> %12.1f ns/op  (%+.1f%%)\n", status, name, o.NsPerOp, n.NsPerOp, delta)
	}
	for name := range cur {
		if _, ok := old[name]; !ok && (re == nil || re.MatchString(name)) {
			fmt.Printf("NEW      %-60s %12.1f ns/op\n", name, cur[name].NsPerOp)
		}
	}
	fmt.Printf("compared %d benchmarks, %d regression(s) past %+.1f%%\n", compared, regressions, *threshold)
	if regressions > 0 {
		return 1
	}
	return 0
}

func loadSnapshot(path string) (map[string]Result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []Result
	if err := json.Unmarshal(buf, &list); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Result, len(list))
	for _, r := range list {
		// Later entries win, matching mergeDuplicates' "one entry per
		// name" contract for snapshots written by this tool.
		m[r.Name] = r
	}
	return m, nil
}

// pairMain implements `benchjson pair [-threshold pct] snapshot.json base
// variant`: both names are looked up in the same snapshot (exact match
// first, then unique suffix match so pkg-qualified names need not be
// spelled out) and the gate fails when variant is more than threshold
// percent slower than base. Exit 0 ok, 1 past threshold, 2 on usage or
// lookup errors.
func pairMain(argv []string) int {
	fs := flag.NewFlagSet("benchjson pair", flag.ExitOnError)
	threshold := fs.Float64("threshold", 2, "max allowed ns/op excess of variant over base, percent")
	fs.Parse(argv)
	if fs.NArg() != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchjson pair [-threshold pct] snapshot.json baseName variantName")
		return 2
	}
	snap, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson pair:", err)
		return 2
	}
	base, err := lookupResult(snap, fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson pair:", err)
		return 2
	}
	variant, err := lookupResult(snap, fs.Arg(2))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson pair:", err)
		return 2
	}
	if base.NsPerOp <= 0 {
		fmt.Fprintf(os.Stderr, "benchjson pair: %s has no ns/op measurement\n", base.Name)
		return 2
	}
	delta := (variant.NsPerOp - base.NsPerOp) / base.NsPerOp * 100
	status := "ok"
	if delta > *threshold {
		status = "EXCEEDED"
	}
	fmt.Printf("%-9s %s %.1f ns/op vs %s %.1f ns/op  (%+.1f%%, threshold %+.1f%%)\n",
		status, base.Name, base.NsPerOp, variant.Name, variant.NsPerOp, delta, *threshold)
	if status != "ok" {
		return 1
	}
	return 0
}

// lookupResult resolves a benchmark by exact name, falling back to a unique
// suffix match over the pkg-qualified snapshot names. Both passes are also
// tried with any `-N` GOMAXPROCS suffix stripped from the snapshot names:
// `go test` appends `-GOMAXPROCS` to every benchmark when it is not 1, and
// the Makefile pair gates spell names without it so they stay portable
// across runner core counts.
func lookupResult(snap map[string]Result, name string) (Result, error) {
	if r, ok := snap[name]; ok {
		return r, nil
	}
	var exact, suffix []Result
	for n, r := range snap {
		if trimProcs(n) == name {
			exact = append(exact, r)
		} else if strings.HasSuffix(n, name) || strings.HasSuffix(trimProcs(n), name) {
			suffix = append(suffix, r)
		}
	}
	found := exact
	if len(found) == 0 {
		found = suffix
	}
	switch len(found) {
	case 1:
		return found[0], nil
	case 0:
		return Result{}, fmt.Errorf("benchmark %q not in snapshot", name)
	default:
		return Result{}, fmt.Errorf("benchmark %q is ambiguous (%d suffix matches)", name, len(found))
	}
}

// trimProcs removes a trailing `-N` (all digits) GOMAXPROCS qualifier from a
// benchmark name; names without one are returned unchanged. `8g-4c`-style
// sub-benchmark labels survive because their tail is not all digits.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}
