// Command schedstudy runs the forecast evaluation the paper names as future
// work (Sec. 4; experiment E14): a Brandenburg-style schedulability study
// comparing the R/W RNLP against group locking and the mutex RNLP on the
// basis of real-time schedulability. For each total-utilization point it
// generates many random task systems, inflates execution times by each
// protocol's blocking bounds (s-oblivious methodology), and reports the
// fraction deemed schedulable.
//
//	schedstudy -m 8 -read-ratio 0.8 -sets 200
//
// The output is one table per scheduler (G-EDF, P-EDF): rows are utilization
// caps, columns are protocols — the series of a classic schedulability plot.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"github.com/rtsync/rwrnlp/internal/analysis"
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/workload"
)

func main() {
	var (
		m      = flag.Int("m", 8, "processors")
		nres   = flag.Int("resources", 8, "number of resources")
		readR  = flag.Float64("read-ratio", 0.8, "fraction of read requests")
		nested = flag.Float64("nested", 0.4, "probability of multi-resource requests")
		sets   = flag.Int("sets", 100, "task sets per utilization point")
		seed   = flag.Int64("seed", 1, "base random seed")
		csMax  = flag.Int64("cs-max", 100_000, "max critical-section length (ns)")
		wScale = flag.Float64("write-cs-scale", 0.25, "write CS length relative to reads (long reads, short writes)")
		progS  = flag.String("progress", "spin", "spin | donation")
	)
	flag.Parse()

	prog := sim.SpinNP
	if *progS == "donation" {
		prog = sim.Donation
	}
	protos := []sim.Protocol{sim.ProtoNone, sim.ProtoRWRNLP, sim.ProtoMutexRNLP, sim.ProtoGroupPF, sim.ProtoGroupMutex}
	names := []string{"none", "rw-rnlp", "rw-refined", "mutex-rnlp", "group-pf", "group-mutex"}

	fmt.Printf("# Schedulability study: m=%d q=%d read-ratio=%.0f%% nested=%.0f%% cs≤%dµs write-scale=%.2f progress=%s sets=%d\n\n",
		*m, *nres, *readR*100, *nested*100, *csMax/1000, *wScale, prog, *sets)

	for _, test := range []string{"G-EDF", "P-EDF", "P-FP(RM)"} {
		fmt.Printf("## %s — fraction of schedulable task sets\n\n", test)
		fmt.Printf("| U/m  |")
		for _, n := range names {
			fmt.Printf(" %-11s |", n)
		}
		fmt.Println()
		fmt.Printf("|------|")
		for range names {
			fmt.Printf("-------------|")
		}
		fmt.Println()

		for _, frac := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
			util := frac * float64(*m)
			counts := make([]int, len(names))
			for s := 0; s < *sets; s++ {
				rng := rand.New(rand.NewSource(*seed + int64(s)*7919 + int64(util*1000)))
				p := workload.Params{
					M: *m, TotalUtil: util, Util: workload.UtilUniformLight,
					NumResources: *nres, AccessProb: 0.8, ReqPerJob: 2,
					NestedProb: *nested, ReadRatio: *readR,
					CSMin: 10_000, CSMax: simtime.Time(*csMax),
					WriteCSScale: *wScale,
				}
				sys := workload.Generate(rng, p)
				col := 0
				for _, proto := range protos {
					a := analysis.NewAnalyzer(sys, proto, prog)
					ok := false
					switch test {
					case "G-EDF":
						ok = a.SchedulableGEDF()
					case "P-EDF":
						ok = a.SchedulablePEDF()
					default:
						ok = a.SchedulablePFP()
					}
					if ok {
						counts[col]++
					}
					col++
					if proto == sim.ProtoRWRNLP {
						// Conflict-aware refined bounds (G-EDF only; see
						// internal/analysis/refined.go).
						if test == "G-EDF" && analysis.NewRefinedAnalyzer(sys, prog).SchedulableGEDFRefined() {
							counts[col]++
						} else if test != "G-EDF" && ok {
							counts[col]++ // refined P-EDF not implemented; mirror coarse
						}
						col++
					}
				}
			}
			fmt.Printf("| %.2f |", frac)
			for _, c := range counts {
				fmt.Printf(" %-11.2f |", float64(c)/float64(*sets))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("Expected shape: none ≥ rw-rnlp ≥ mutex-rnlp on read-heavy workloads;")
	fmt.Println("group variants trail where groups are large. Crossovers move right as")
	fmt.Println("the read ratio grows — the benefit of O(1) reader blocking.")
}
