package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/rtsync/rwrnlp/internal/obs"
)

// frameData is everything one refresh pulled from the debug endpoint. Any
// section may be zero (endpoint absent or subsystem disabled); render skips
// what is empty.
type frameData struct {
	TS   obs.TimeSeriesReport
	WD   wdStatus
	Attr obs.AttributionReport
	Errs []string // per-endpoint fetch failures, shown in the header
}

// wdStatus mirrors the /debug/rnlp/watchdog JSON body.
type wdStatus struct {
	Firings int64             `json:"firings"`
	Reports []obs.StallReport `json:"reports"`
}

// renderConfig is the static context of a frame.
type renderConfig struct {
	URL      string
	Window   time.Duration
	Interval time.Duration
	Now      time.Time
	Plain    bool // no ANSI clear between frames
	TopK     int  // blocking chains to show
}

// histOrder is the preferred row order of the quantile table; remaining
// non-shard histograms follow alphabetically.
var histOrder = []string{
	obs.MAcqDelayRead, obs.MAcqDelayWrite, obs.MAcqDelayIncremental,
	obs.MEntitlementWait,
	obs.MWallAcqReadNS, obs.MWallAcqWriteNS, obs.MWallBlockNS, obs.MWallCSNS,
	obs.MCSLengthRead, obs.MCSLengthWrite, obs.MQueueDepth,
}

const maxHistRows = 14

// shardOf splits a shard-labeled instrument name, e.g.
// "fastpath_hit{shard=2}" into ("fastpath_hit", 2, true).
func shardOf(name string) (string, int, bool) {
	i := strings.Index(name, "{shard=")
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, 0, false
	}
	n, err := strconv.Atoi(name[i+len("{shard=") : len(name)-1])
	if err != nil {
		return name, 0, false
	}
	return name[:i], n, true
}

// render writes one full cockpit frame. It is pure: everything it shows comes
// from f and cfg, so tests can drive it with canned data.
func render(w io.Writer, f frameData, cfg renderConfig) {
	if !cfg.Plain {
		fmt.Fprint(w, "\x1b[H\x1b[2J") // cursor home + clear screen
	}
	fmt.Fprintf(w, "rnlptop — %s  window %s  interval %s  %s\n",
		cfg.URL, cfg.Window, cfg.Interval, cfg.Now.Format("15:04:05"))
	fmt.Fprintf(w, "samples %d  span %.1fs\n",
		f.TS.Samples, float64(f.TS.WindowNS)/1e9)
	for _, e := range f.Errs {
		fmt.Fprintf(w, "! %s\n", e)
	}
	fmt.Fprintln(w)

	renderThroughput(w, f.TS)
	renderHists(w, f.TS)
	renderShards(w, f.TS)
	renderBound(w, f.TS.Bound)
	renderWatchdog(w, f.WD)
	renderChains(w, f.Attr, cfg.TopK)
}

func renderThroughput(w io.Writer, ts obs.TimeSeriesReport) {
	if len(ts.Rates) == 0 && len(ts.Gauges) == 0 {
		fmt.Fprintln(w, "(no metrics in window — is the workload running and WithTimeSeries set?)")
		return
	}
	fmt.Fprintf(w, "throughput  issued %s/s  satisfied %s/s  completed %s/s  canceled %s/s  slow-path %s/s\n",
		rate(ts.Rates, obs.MIssued), rate(ts.Rates, obs.MSatisfied),
		rate(ts.Rates, obs.MCompleted), rate(ts.Rates, obs.MCanceled),
		rate(ts.Rates, obs.MSlowPath))
	fmt.Fprintf(w, "gauges      inflight %d  holders %d\n\n",
		ts.Gauges[obs.MInflight], ts.Gauges[obs.MHolders])
}

func rate(rates map[string]float64, name string) string {
	return fmt.Sprintf("%.1f", rates[name])
}

func renderHists(w io.Writer, ts obs.TimeSeriesReport) {
	rows := make([]string, 0, len(ts.Hists))
	seen := map[string]bool{}
	for _, name := range histOrder {
		if _, ok := ts.Hists[name]; ok {
			rows = append(rows, name)
			seen[name] = true
		}
	}
	var rest []string
	for name := range ts.Hists {
		if _, _, sharded := shardOf(name); !sharded && !seen[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	rows = append(rows, rest...)
	if len(rows) == 0 {
		return
	}
	if len(rows) > maxHistRows {
		rows = rows[:maxHistRows]
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "histogram\trate/s\tp50\tp90\tp99\tp999\tmax\t")
	for _, name := range rows {
		h := ts.Hists[name]
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%d\t%d\t%d\t%d\t\n",
			name, h.Rate, h.P50, h.P90, h.P99, h.P999, h.Max)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// renderShards aggregates the shard-labeled counters into one row per shard:
// acquisition traffic, the parking economy (wake/s should track the grant
// rate one-for-one — direct deliveries resolved before the waiter blocked,
// spurious ones hit cancelled waiters), plus both fast-path planes'
// economies — the reader plane's hit/miss/migration columns and the writer
// plane's hit/revocation/storm columns.
func renderShards(w io.Writer, ts obs.TimeSeriesReport) {
	type shardRow struct {
		acq, rel, cont, hit, miss, migr, revoked float64
		whit, wmiss, wrev, wstorm                float64
		pwake, pdirect, pspur                    float64
	}
	rows := map[int]*shardRow{}
	get := func(i int) *shardRow {
		if rows[i] == nil {
			rows[i] = &shardRow{}
		}
		return rows[i]
	}
	for name, v := range ts.Rates {
		base, i, ok := shardOf(name)
		if !ok {
			continue
		}
		switch base {
		case obs.MShardAcquires:
			get(i).acq = v
		case obs.MShardReleases:
			get(i).rel = v
		case obs.MShardContended:
			get(i).cont = v
		case obs.MParkWakeups:
			get(i).pwake = v
		case obs.MParkDirect:
			get(i).pdirect = v
		case obs.MParkSpurious:
			get(i).pspur = v
		case obs.MFastPathHit:
			get(i).hit = v
		case obs.MFastPathMiss:
			get(i).miss = v
		case obs.MFastPathMigrated:
			get(i).migr = v
		case obs.MFastPathRevoked:
			get(i).revoked = v
		case obs.MFastWriteHit:
			get(i).whit = v
		case obs.MFastWriteMiss:
			get(i).wmiss = v
		case obs.MFastWriteRevoked:
			get(i).wrev = v
		case obs.MFastWriteStorm:
			get(i).wstorm = v
		}
	}
	if len(rows) == 0 {
		return
	}
	ids := make([]int, 0, len(rows))
	for i := range rows {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "shard\tacq/s\trel/s\tcontended/s\twake/s\tdirect/s\tspur/s\tfast hit/s\tmiss/s\tmigrated/s\trevoked/s\thit%\tw-hit/s\tw-miss/s\tw-rev/s\tw-storm/s\tw-hit%\t")
	for _, i := range ids {
		r := rows[i]
		hitPct := 0.0
		if r.hit+r.miss > 0 {
			hitPct = 100 * r.hit / (r.hit + r.miss)
		}
		whitPct := 0.0
		if r.whit+r.wmiss > 0 {
			whitPct = 100 * r.whit / (r.whit + r.wmiss)
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			i, r.acq, r.rel, r.cont, r.pwake, r.pdirect, r.pspur,
			r.hit, r.miss, r.migr, r.revoked, hitPct,
			r.whit, r.wmiss, r.wrev, r.wstorm, whitPct)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

func renderBound(w io.Writer, b obs.BoundUtilization) {
	if b.ReadBound == 0 && b.WriteBound == 0 {
		return
	}
	src := "observed"
	if b.Analytic {
		src = "analytic"
	}
	fmt.Fprintf(w, "bounds (%s, Lr=%d Lw=%d m=%d)  read p999 %d / %d (%.0f%%)  write p999 %d / %d (%.0f%%)\n\n",
		src, b.Lr, b.Lw, b.M,
		b.ReadP999, b.ReadBound, 100*b.ReadUtil,
		b.WriteP999, b.WriteBound, 100*b.WriteUtil)
}

func renderWatchdog(w io.Writer, wd wdStatus) {
	fmt.Fprintf(w, "watchdog    %d firing(s)\n", wd.Firings)
	if n := len(wd.Reports); n > 0 {
		fmt.Fprintf(w, "  last: %s\n", wd.Reports[n-1].String())
	}
	fmt.Fprintln(w)
}

// renderCluster writes one merged multi-node cockpit frame. Like render it is
// pure — tests drive it with canned ClusterReports.
func renderCluster(w io.Writer, rep obs.ClusterReport, cfg renderConfig) {
	if !cfg.Plain {
		fmt.Fprint(w, "\x1b[H\x1b[2J")
	}
	fmt.Fprintf(w, "rnlptop cluster — %d node(s), %d healthy  window %s  interval %s  %s\n\n",
		len(rep.Nodes), rep.Healthy, cfg.Window, cfg.Interval, cfg.Now.Format("15:04:05"))

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "node\thealth\tsatisfied/s\tinflight\tread-util\twrite-util\t")
	for _, st := range rep.Nodes {
		if !st.Healthy {
			fmt.Fprintf(tw, "%s\tDOWN\t-\t-\t-\t-\t(%s)\n", st.Name, st.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\tok\t%.1f\t%d\t%.0f%%\t%.0f%%\t\n",
			st.Name, st.Series.Rates[obs.MSatisfied], st.Series.Gauges[obs.MInflight],
			100*st.Series.Bound.ReadUtil, 100*st.Series.Bound.WriteUtil)
	}
	tw.Flush()
	fmt.Fprintln(w)

	merged := obs.TimeSeriesReport{Rates: rep.Rates, Hists: rep.Hists}
	fmt.Fprintf(w, "cluster     issued %s/s  satisfied %s/s  completed %s/s  slow-path %s/s  (sums; tails are worst-node)\n\n",
		rate(rep.Rates, obs.MIssued), rate(rep.Rates, obs.MSatisfied),
		rate(rep.Rates, obs.MCompleted), rate(rep.Rates, obs.MSlowPath))
	renderHists(w, merged)
	if rep.BoundNode != "" {
		fmt.Fprintf(w, "worst bound utilization: node %s\n", rep.BoundNode)
		renderBound(w, rep.Bound)
	}
	if len(rep.Top) > 0 {
		topK := cfg.TopK
		if topK <= 0 {
			topK = 5
		}
		fmt.Fprintln(w, "top blocking chains (cluster-wide; same tag = one distributed acquisition):")
		for i, c := range rep.Top {
			if i >= topK {
				break
			}
			fmt.Fprintf(w, "  [%s] %s\n", c.Node, c.Chain.String())
		}
	}
}

func renderChains(w io.Writer, attr obs.AttributionReport, topK int) {
	if len(attr.Top) == 0 {
		return
	}
	if topK <= 0 {
		topK = 5
	}
	fmt.Fprintf(w, "top blocking chains (of %d attributed):\n", attr.Checked)
	for i, c := range attr.Top {
		if i >= topK {
			break
		}
		fmt.Fprintf(w, "  %s\n", c.String())
	}
}
