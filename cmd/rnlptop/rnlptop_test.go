package main

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/rtsync/rwrnlp/internal/obs"
)

// TestRenderFrame drives the renderer with canned data and checks every
// section appears with the expected values — the deterministic half of the
// cockpit's coverage.
func TestRenderFrame(t *testing.T) {
	f := frameData{
		TS: obs.TimeSeriesReport{
			Samples:  7,
			WindowNS: int64(6 * time.Second),
			Rates: map[string]float64{
				obs.MIssued:                       1500,
				obs.MSatisfied:                    1499.5,
				obs.MCompleted:                    1498,
				"shard_acquires{shard=0}":         900,
				"shard_acquires{shard=1}":         600,
				"park_wakeups{shard=0}":           123.5,
				"park_direct{shard=0}":            17.5,
				"park_spurious{shard=0}":          1.5,
				"fastpath_hit{shard=0}":           810,
				"fastpath_miss{shard=0}":          90,
				"fastpath_write_hit{shard=0}":     240,
				"fastpath_write_miss{shard=0}":    60,
				"fastpath_write_revoked{shard=0}": 3,
			},
			Gauges: map[string]int64{obs.MInflight: 4, obs.MHolders: 2},
			Hists: map[string]obs.WindowStats{
				obs.MAcqDelayRead: {Count: 9000, Rate: 1500, P50: 10, P90: 40, P99: 80, P999: 120, Max: 127},
			},
			Bound: obs.BoundUtilization{
				Lr: 30, Lw: 50, M: 8,
				ReadBound: 80, WriteBound: 560,
				ReadP999: 60, WriteP999: 280,
				ReadUtil: 0.75, WriteUtil: 0.5,
			},
		},
		WD: wdStatus{Firings: 2},
		Attr: obs.AttributionReport{
			Checked: 9000,
			Top: []obs.BlockChain{{
				Req: 17, Delay: 42,
				Parts: []obs.DelayPart{{Component: obs.AttrWriterQueueWait, Span: 42}},
			}},
		},
	}
	var buf bytes.Buffer
	render(&buf, f, renderConfig{
		URL: "http://example:6060", Window: 30 * time.Second,
		Interval: time.Second, Now: time.Unix(0, 0).UTC(), Plain: true, TopK: 5,
	})
	out := buf.String()

	for _, want := range []string{
		"rnlptop — http://example:6060",
		"samples 7  span 6.0s",
		"issued 1500.0/s",
		"inflight 4  holders 2",
		"acq_delay_read",
		"120", // p999
		"read p999 60 / 80 (75%)",
		"write p999 280 / 560 (50%)",
		"watchdog    2 firing(s)",
		"top blocking chains (of 9000 attributed):",
		"req=17",
		"writer_queue_wait:42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("plain frame contains ANSI escapes:\n%s", out)
	}

	// Per-shard table: both shards present, hit ratio computed.
	if !strings.Contains(out, "90.0") {
		t.Errorf("shard 0 hit%% (90.0) missing:\n%s", out)
	}
	// Writer-plane columns: hit/miss rates and the 240/(240+60) = 80% ratio.
	if !strings.Contains(out, "w-hit/s") {
		t.Errorf("writer fast-path columns missing:\n%s", out)
	}
	if !strings.Contains(out, "80.0") {
		t.Errorf("shard 0 writer hit%% (80.0) missing:\n%s", out)
	}
	// Parking columns: per-shard wakeup/direct/spurious delivery rates.
	for _, want := range []string{"wake/s", "direct/s", "spur/s", "123.5", "17.5", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("parking column value %q missing:\n%s", want, out)
		}
	}
}

// TestRenderEmptyFrame: a cockpit pointed at a dead or bare endpoint must
// still produce a frame (header + hints), not panic or emit garbage.
func TestRenderEmptyFrame(t *testing.T) {
	var buf bytes.Buffer
	render(&buf, frameData{Errs: []string{"timeseries: connection refused"}}, renderConfig{
		URL: "http://down:1", Window: time.Minute, Interval: time.Second,
		Now: time.Unix(0, 0).UTC(), Plain: true,
	})
	out := buf.String()
	if !strings.Contains(out, "! timeseries: connection refused") {
		t.Errorf("fetch error not surfaced:\n%s", out)
	}
	if !strings.Contains(out, "no metrics in window") {
		t.Errorf("empty-window hint missing:\n%s", out)
	}
}

// TestRenderCluster drives the merged multi-node frame with canned data:
// per-node rows (including a down node with its error), cluster sums,
// worst-node bound, and node-tagged blocking chains.
func TestRenderCluster(t *testing.T) {
	rep := obs.ClusterReport{
		Healthy:  2,
		WindowNS: int64(6 * time.Second),
		Nodes: []obs.NodeStatus{
			{Name: "http://n1:6060", Healthy: true, Series: obs.TimeSeriesReport{
				Rates:  map[string]float64{obs.MSatisfied: 700},
				Gauges: map[string]int64{obs.MInflight: 3},
				Bound:  obs.BoundUtilization{ReadUtil: 0.25, WriteUtil: 0.5},
			}},
			{Name: "http://n2:6060", Healthy: true, Series: obs.TimeSeriesReport{
				Rates:  map[string]float64{obs.MSatisfied: 800},
				Gauges: map[string]int64{obs.MInflight: 5},
				Bound:  obs.BoundUtilization{ReadUtil: 0.75, WriteUtil: 0.6},
			}},
			{Name: "http://n3:6060", Err: "connection refused"},
		},
		Rates: map[string]float64{
			obs.MIssued: 1510, obs.MSatisfied: 1500, obs.MCompleted: 1490,
		},
		Hists: map[string]obs.WindowStats{
			obs.MAcqDelayRead: {Count: 9000, Rate: 1500, P50: 10, P90: 40, P99: 80, P999: 120, Max: 127},
		},
		Bound:     obs.BoundUtilization{Lr: 30, Lw: 50, M: 8, ReadBound: 80, WriteBound: 560, ReadP999: 60, WriteP999: 280, ReadUtil: 0.75, WriteUtil: 0.5},
		BoundNode: "http://n2:6060",
		Top: []obs.ClusterChain{
			{Node: "http://n2:6060", Chain: obs.BlockChain{Req: 17, Delay: 42,
				Parts: []obs.DelayPart{{Component: obs.AttrWriterQueueWait, Span: 42}}}},
			{Node: "http://n1:6060", Chain: obs.BlockChain{Req: 4, Delay: 9,
				Parts: []obs.DelayPart{{Component: obs.AttrReaderEntitledWait, Span: 9}}}},
		},
	}
	var buf bytes.Buffer
	renderCluster(&buf, rep, renderConfig{
		URL: "http://n1:6060,http://n2:6060,http://n3:6060", Window: 30 * time.Second,
		Interval: time.Second, Now: time.Unix(0, 0).UTC(), Plain: true, TopK: 5,
	})
	out := buf.String()

	for _, want := range []string{
		"rnlptop cluster — 3 node(s), 2 healthy",
		"http://n1:6060",
		"700.0",
		"http://n2:6060",
		"800.0",
		"DOWN",
		"connection refused",
		"issued 1510.0/s  satisfied 1500.0/s",
		"acq_delay_read",
		"worst bound utilization: node http://n2:6060",
		"read p999 60 / 80 (75%)",
		"top blocking chains (cluster-wide",
		"[http://n2:6060]",
		"req=17",
		"[http://n1:6060]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Errorf("plain cluster frame contains ANSI escapes:\n%s", out)
	}
}

// TestCockpitLiveSmoke is the acceptance check: start the in-process demo
// (real protocol, real contended workload, real DebugMux over loopback),
// poll it exactly as main does, and require at least one full frame with
// live numbers in it.
func TestCockpitLiveSmoke(t *testing.T) {
	stop, addr, err := startDemo()
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}

	deadline := time.Now().Add(10 * time.Second)
	for {
		time.Sleep(300 * time.Millisecond)
		f := fetchFrame(client, base, 10*time.Second)
		if len(f.Errs) > 0 {
			t.Fatalf("fetch errors: %v", f.Errs)
		}
		if f.TS.Samples >= 2 && f.TS.Rates[obs.MIssued] > 0 {
			var buf bytes.Buffer
			render(&buf, f, renderConfig{
				URL: base, Window: 10 * time.Second, Interval: time.Second,
				Now: time.Now(), Plain: true, TopK: 3,
			})
			out := buf.String()
			for _, want := range []string{"rnlptop — ", "throughput", "acq_delay_read", "watchdog", "shard"} {
				if !strings.Contains(out, want) {
					t.Fatalf("live frame missing %q:\n%s", want, out)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live frame within deadline; last: samples=%d rates=%v",
				f.TS.Samples, f.TS.Rates)
		}
	}
}
