// Command rnlptop is a top-like cockpit for a running rwrnlp protocol. It
// polls the protocol's DebugMux — the time-series, watchdog, and attribution
// routes — and redraws one screen per interval: throughput, windowed tail
// latencies per histogram, per-shard fast-path economy, Theorem 1/2 bound
// utilization, watchdog state, and the worst blocking chains.
//
//	rnlptop -url http://localhost:6060            # watch a live process
//	rnlptop -window 10s -interval 500ms ...       # tighter view
//	rnlptop -demo                                 # self-contained: in-process workload
//	rnlptop -demo -frames 3 -plain                # scripted (CI smoke test)
//	rnlptop -cluster http://n1:6060,http://n2:6060,http://n3:6060
//
// With -cluster, every frame fan-out-scrapes each node's timeseries and
// attribution routes and renders the merged cockpit: per-node health and
// throughput, cluster-wide rates and (conservative) tails, the worst node's
// bound utilization, and the cross-node top blocking chains — chains from
// different nodes that share a tag are one distributed acquisition.
//
// The target must serve a DebugMux with WithTimeSeries enabled (the
// timeseries route refreshes itself on scrape, so even a stopped capture
// goroutine yields current data). Watchdog and attribution sections appear
// when those options are armed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/rtsync/rwrnlp"
	"github.com/rtsync/rwrnlp/internal/obs"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:6060", "base URL of a rwrnlp DebugMux")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		window   = flag.Duration("window", 30*time.Second, "rate/quantile window")
		frames   = flag.Int("frames", 0, "exit after N frames (0 = run until interrupted)")
		topK     = flag.Int("top", 5, "blocking chains to show")
		plain    = flag.Bool("plain", false, "append frames instead of redrawing the screen (for logs and tests)")
		demo     = flag.Bool("demo", false, "ignore -url: run an in-process contended workload and watch it")
		cluster  = flag.String("cluster", "", "comma-separated node base URLs: scrape every node and render the merged cluster cockpit instead of -url")
	)
	flag.Parse()

	if *demo {
		stop, addr, err := startDemo()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rnlptop:", err)
			os.Exit(1)
		}
		defer stop()
		*url = "http://" + addr
		// Let the first capture interval elapse so frame one has a window.
		time.Sleep(300 * time.Millisecond)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	if *cluster != "" {
		var nodes []obs.ClusterNode
		for _, u := range strings.Split(*cluster, ",") {
			if u = strings.TrimSpace(u); u != "" {
				nodes = append(nodes, obs.ClusterNode{Name: u, URL: u})
			}
		}
		if len(nodes) == 0 {
			fmt.Fprintln(os.Stderr, "rnlptop: -cluster needs at least one node URL")
			os.Exit(2)
		}
		cfg := renderConfig{URL: *cluster, Window: *window, Interval: *interval, Plain: *plain, TopK: *topK}
		for n := 0; *frames == 0 || n < *frames; n++ {
			if n > 0 {
				time.Sleep(*interval)
			}
			rep := obs.ScrapeCluster(context.Background(), client, nodes, *window)
			cfg.Now = time.Now()
			renderCluster(os.Stdout, rep, cfg)
		}
		return
	}
	cfg := renderConfig{URL: *url, Window: *window, Interval: *interval, Plain: *plain, TopK: *topK}
	for n := 0; *frames == 0 || n < *frames; n++ {
		if n > 0 {
			time.Sleep(*interval)
		}
		f := fetchFrame(client, *url, *window)
		cfg.Now = time.Now()
		render(os.Stdout, f, cfg)
	}
}

// fetchFrame pulls one refresh worth of state. Endpoint failures are folded
// into the frame (shown in the header) so a cockpit pointed at a half-enabled
// process degrades instead of dying.
func fetchFrame(c *http.Client, base string, window time.Duration) frameData {
	var f frameData
	if err := getJSON(c, fmt.Sprintf("%s/debug/rnlp/timeseries?window=%s", base, window), &f.TS); err != nil {
		f.Errs = append(f.Errs, "timeseries: "+err.Error())
	}
	if err := getJSON(c, base+"/debug/rnlp/watchdog", &f.WD); err != nil {
		f.Errs = append(f.Errs, "watchdog: "+err.Error())
	}
	if err := getJSON(c, base+"/debug/rnlp/attr", &f.Attr); err != nil {
		f.Errs = append(f.Errs, "attr: "+err.Error())
	}
	return f
}

func getJSON(c *http.Client, url string, v any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// startDemo builds a fully instrumented protocol, keeps a contended
// read-mostly workload running against it, and serves its DebugMux on a
// loopback port. It returns a stop function and the listen address.
func startDemo() (func(), string, error) {
	const nres = 8
	sb := rwrnlp.NewSpecBuilder(nres)
	for i := 0; i < nres; i++ {
		a, b := rwrnlp.ResourceID(i), rwrnlp.ResourceID((i+1)%nres)
		if err := sb.DeclareRequest([]rwrnlp.ResourceID{a, b}, nil); err != nil {
			return nil, "", err
		}
		if err := sb.DeclareRequest(nil, []rwrnlp.ResourceID{a}); err != nil {
			return nil, "", err
		}
	}
	p := rwrnlp.New(sb.Build(),
		rwrnlp.WithPlaceholders(),
		rwrnlp.WithTimeSeries(250*time.Millisecond, 0),
		rwrnlp.WithFlightRecorder(0),
		rwrnlp.WithAttribution(10),
		rwrnlp.WithStallWatchdog(rwrnlp.WatchdogConfig{}),
	)

	done := make(chan struct{})
	work := func(seed int64, write bool) {
		rng := rand.New(rand.NewSource(seed))
		for {
			select {
			case <-done:
				return
			default:
			}
			r := rwrnlp.ResourceID(rng.Intn(nres))
			var tok rwrnlp.Token
			var err error
			if write {
				tok, err = p.Write(context.Background(), r)
			} else {
				tok, err = p.Read(context.Background(), r, rwrnlp.ResourceID((int(r)+1)%nres))
			}
			if err != nil {
				return
			}
			time.Sleep(time.Duration(50+rng.Intn(200)) * time.Microsecond)
			if p.Release(tok) != nil {
				return
			}
		}
	}
	for i := 0; i < 6; i++ {
		go work(int64(i), false)
	}
	for i := 0; i < 2; i++ {
		go work(int64(100+i), true)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		close(done)
		_ = p.Close()
		return nil, "", err
	}
	srv := &http.Server{Handler: p.DebugMux()}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		close(done)
		_ = srv.Close()
		_ = p.Close()
	}
	return stop, ln.Addr().String(), nil
}
