// Command experiments regenerates every figure and analytical claim of the
// paper (see EXPERIMENTS.md for the index):
//
//	experiments fig2      — the running example: schedule + queue table (E1, E2)
//	experiments fig3      — s-oblivious vs s-aware pi-blocking (E3)
//	experiments thm1      — Theorem 1: reader acquisition bound sweep (E4)
//	experiments thm2      — Theorem 2: writer acquisition bound sweep (E5)
//	experiments piblock   — pi-blocking bounds, spin and donation (E7, E8)
//	experiments compare   — protocol comparison across read ratios (headline)
//	experiments ablation  — placeholders / mixing / upgrades / incremental (E9–E12)
//	experiments all       — everything above
//
// All runs are seeded and deterministic.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"

	"github.com/rtsync/rwrnlp/internal/analysis"
	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/obs"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/stats"
	"github.com/rtsync/rwrnlp/internal/workload"
)

var (
	seeds    = flag.Int("seeds", 20, "random workloads per configuration")
	horizon  = flag.Int64("horizon", 500_000_000, "simulation horizon (ns)")
	metricsF = flag.Bool("metrics", false, "aggregate protocol metrics across all runs and print the snapshot")
	traceOut = flag.String("trace-out", "", "write the Fig. 2 running example as Perfetto trace-event JSON (fig2 only)")
	httpAddr = flag.String("http", "", "serve the aggregated metrics debug endpoint after the experiments")
)

// Suite-wide observability state: one metrics registry shared by every run
// (when -metrics is set) and the aggregated verdict of the per-run Theorem
// 1/2 bound monitors that run() attaches unconditionally.
var (
	reg         *obs.Metrics
	boundRuns   int
	boundChecks int64
	boundSkips  int64
	boundViols  []string
)

func main() {
	flag.Parse()
	if *metricsF {
		reg = obs.NewMetrics()
	}
	cmd := "all"
	if flag.NArg() > 0 {
		cmd = flag.Arg(0)
	}
	cmds := map[string]func(){
		"fig2": fig2, "fig3": fig3,
		"thm1": thm1, "thm2": thm2,
		"piblock": piblock, "compare": compare, "ablation": ablation,
		"control": control, "refined": refined, "clusters": clusters,
		"overheads": overheads,
	}
	if cmd == "all" {
		for _, name := range []string{"fig2", "fig3", "thm1", "thm2", "piblock", "compare", "ablation", "control", "refined", "clusters", "overheads"} {
			cmds[name]()
		}
		finish()
		return
	}
	f, ok := cmds[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
		os.Exit(2)
	}
	f()
	finish()
}

// finish prints the suite-wide observability summaries and exits non-zero if
// any run violated its analytical bound.
func finish() {
	if reg != nil {
		fmt.Println("## Aggregated metrics (all runs, simulated ns)")
		fmt.Println()
		fmt.Print(reg.Snapshot().String())
		fmt.Println()
	}
	if boundRuns > 0 {
		fmt.Printf("## Bound monitor: %d RW-RNLP runs, %d satisfactions checked against Thm 1/2 (%d incremental skipped), %d violations\n",
			boundRuns, boundChecks, boundSkips, len(boundViols))
		for _, v := range boundViols {
			fmt.Println("  VIOLATION", v)
		}
		fmt.Println()
	}
	if *httpAddr != "" {
		fmt.Printf("serving debug endpoint on http://%s (/metrics, /healthz); Ctrl-C to stop\n", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, obs.DebugMux(reg, nil, nil)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if len(boundViols) > 0 {
		os.Exit(1)
	}
}

// run executes one configuration with the suite's observers attached: the
// shared metrics registry (if -metrics) and — for RW-RNLP under a progress
// mechanism that establishes P1/P2 — an analytic Theorem 1/2 bound monitor
// using the system's overhead-inflated L^r/L^w. The E17 negative control
// (inheritance, bounds intentionally broken) bypasses run and calls sim.New
// directly.
func run(cfg sim.Config) *sim.Result {
	var bm *obs.BoundMonitor
	if cfg.Protocol == sim.ProtoRWRNLP && cfg.Progress != sim.Inheritance {
		bm = obs.NewBoundMonitor(cfg.System.M)
		ib := analysis.BoundsOf(cfg.System).Inflate(cfg.Overheads.Invocation, cfg.Overheads.CtxSwitch)
		bm.SetAnalytic(int64(ib.Lr), int64(ib.Lw))
		cfg.Observers = append(cfg.Observers, bm)
	}
	if reg != nil {
		cfg.Observers = append(cfg.Observers, obs.NewProtocolObserver(reg))
	}
	s, err := sim.New(cfg)
	if err != nil {
		panic(err)
	}
	res := s.Run()
	if len(res.Violations) > 0 {
		panic(fmt.Sprintf("invariant violations: %v", res.Violations[0]))
	}
	if bm != nil {
		rep := bm.Report()
		boundRuns++
		boundChecks += rep.Checked
		boundSkips += rep.SkippedIncremental
		for _, v := range rep.Violations {
			boundViols = append(boundViols, fmt.Sprintf("m=%d seed=%d: %s", cfg.System.M, cfg.Seed, v))
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// E1/E2: Fig. 2

func fig2() {
	fmt.Println("## E1/E2 — Fig. 2: the running example")
	fmt.Println()

	// Replay at the RSM level for the queue table.
	sb := core.NewSpecBuilder(3)
	if err := sb.DeclareReadGroup(0, 1); err != nil {
		panic(err)
	}
	m := core.NewRSM(sb.Build(), core.Options{})
	names := map[core.ReqID]string{}
	issue := func(at core.Time, label string, read, write []core.ResourceID) core.ReqID {
		id, err := m.Issue(at, read, write, nil)
		if err != nil {
			panic(err)
		}
		names[id] = label
		return id
	}
	queueRow := func(interval string) {
		row := func(qs core.QueueState, ids []core.ReqID) string {
			if len(ids) == 0 {
				return "∅"
			}
			s := "{"
			for i, id := range ids {
				if i > 0 {
					s += ", "
				}
				s += names[id]
			}
			return s + "}"
		}
		qa, qb := m.Queues(0), m.Queues(1)
		fmt.Printf("| %-9s | %-12s | %-12s | %-12s | %-12s |\n",
			interval, row(qa, qa.RQ), row(qa, qa.WQ), row(qb, qb.RQ), row(qb, qb.WQ))
	}

	fmt.Println("Queue states (Fig. 2(b); RQ(ℓa) corrected to include R5,1 — see EXPERIMENTS.md):")
	fmt.Println()
	fmt.Println("| interval  | RQ(ℓa)       | WQ(ℓa)       | RQ(ℓb)       | WQ(ℓb)       |")
	fmt.Println("|-----------|--------------|--------------|--------------|--------------|")
	w11 := issue(1, "R1,1w", nil, []core.ResourceID{0, 1})
	queueRow("[0,2)")
	w21 := issue(2, "R2,1w", nil, []core.ResourceID{0, 1, 2})
	r31 := issue(3, "R3,1r", []core.ResourceID{2}, nil)
	r41 := issue(4, "R4,1r", []core.ResourceID{2}, nil)
	must(m.Complete(5, w11))
	must(m.Complete(6, r41))
	queueRow("[2,7)")
	r51 := issue(7, "R5,1r", []core.ResourceID{0, 1}, nil)
	queueRow("[7,8)")
	must(m.Complete(8, r31))
	queueRow("[8,10)")
	must(m.Complete(10, w21))
	queueRow("[10,12]")
	must(m.Complete(12, r51))
	fmt.Println()

	// Full schedule through the simulator.
	var tb *obs.TraceBuilder
	var observers []core.Observer
	if *traceOut != "" {
		tb = obs.NewTraceBuilder()
		tb.TimeDiv = 1 // the running example is in logical ticks
		observers = append(observers, tb)
	}
	res := run(sim.Config{
		System: workload.Fig2System(), Policy: sched.EDF, Progress: sim.SpinNP,
		Protocol: sim.ProtoRWRNLP, Horizon: 12, JobsPerTask: 1,
		CheckInvariants: true, RecordRequests: true, RecordSchedule: true,
		Observers: observers,
	})
	if tb != nil {
		tb.AddSchedule(res.Schedule)
		f, err := os.Create(*traceOut)
		if err != nil {
			panic(err)
		}
		if _, err := tb.WriteTo(f); err != nil {
			panic(err)
		}
		f.Close()
		fmt.Printf("wrote Fig. 2 trace to %s (open in ui.perfetto.dev)\n\n", *traceOut)
	}
	fmt.Println("Simulated schedule (issue → satisfied → complete):")
	fmt.Println()
	fmt.Println("| request | issued | acquisition delay | CS    | satisfied | completes |")
	fmt.Println("|---------|--------|-------------------|-------|-----------|-----------|")
	for _, r := range res.Requests {
		sat := r.Issue + r.Acq
		fmt.Printf("| T%d      | t=%-4d | %-17d | %-5d | t=%-7d | t=%-7d |\n",
			r.Task, r.Issue, r.Acq, r.CS, sat, sat+r.CS)
	}
	fmt.Printf("\nPaper schedule: R2,1 satisfied at t=8 (waited 6), R5,1 at t=10 (waited 3); all others immediate. ✓\n\n")
	fmt.Println("Gantt (5 CPUs, t=0..12; letters=CS of task A..E ↔ T1..T5, ~=spin):")
	fmt.Println()
	fmt.Print(sim.RenderGantt(res, 24))
	fmt.Println()
	fig2Variants()
}

// fig2Variants replays the Sec. 3.4 and Sec. 3.5 worked variants of the
// running example at the RSM level.
func fig2Variants() {
	mkRSM := func(opt core.Options) *core.RSM {
		sb := core.NewSpecBuilder(3)
		if err := sb.DeclareReadGroup(0, 1); err != nil {
			panic(err)
		}
		return core.NewRSM(sb.Build(), opt)
	}

	fmt.Println("Variant (Sec. 3.4, placeholders): N1,1={ℓb}, N2,1={ℓa,ℓc} —")
	m := mkRSM(core.Options{Placeholders: true})
	w11, err := m.Issue(1, nil, []core.ResourceID{1}, nil)
	must(err2(w11, err))
	w21, err := m.Issue(2, nil, []core.ResourceID{0, 2}, nil)
	must(err2(w21, err))
	st, _ := m.State(w21)
	fmt.Printf("  R2,1 at t=2: %s (paper: satisfied immediately — placeholders add concurrency) ✓\n", st)
	must(m.Complete(3, w11))
	must(m.Complete(4, w21))

	fmt.Println("Variant (Sec. 3.5, mixing): R2,1 reads {ℓa,ℓb}, writes {ℓc} —")
	mm := mkRSM(core.Options{})
	mw11, _ := mm.Issue(1, nil, []core.ResourceID{0, 1}, nil)
	mw21, _ := mm.Issue(2, []core.ResourceID{0, 1}, []core.ResourceID{2}, nil)
	r31, _ := mm.Issue(3, []core.ResourceID{2}, nil, nil)
	r41, _ := mm.Issue(4, []core.ResourceID{2}, nil, nil)
	must(mm.Complete(5, mw11))
	must(mm.Complete(6, r41))
	r51, _ := mm.Issue(7, []core.ResourceID{0, 1}, nil, nil)
	st, _ = mm.State(r51)
	fmt.Printf("  R5,1 at t=7: %s (paper: satisfied immediately — no conflict with the mixed R2,1) ✓\n", st)
	must(mm.Complete(8, r31))
	must(mm.Complete(10, mw21))
	must(mm.Complete(12, r51))
	fmt.Println()
}

func err2(_ core.ReqID, err error) error { return err }

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// ---------------------------------------------------------------------------
// E3: Fig. 3

func fig3() {
	fmt.Println("## E3 — Fig. 3: s-oblivious vs s-aware pi-blocking")
	fmt.Println()
	res := run(sim.Config{
		System: workload.Fig3System(), Policy: sched.EDF, Progress: sim.Donation,
		Protocol: sim.ProtoRWRNLP, Horizon: 100, JobsPerTask: 1,
		CheckInvariants: true, RecordRequests: true,
	})
	fmt.Println("| job | s-oblivious pi-blocking | s-aware pi-blocking |")
	fmt.Println("|-----|-------------------------|---------------------|")
	labels := []string{"J2 (holds lock [1,4))", "J1 (suspended [2,4))", "J3 (waits [3,5))"}
	for i, ts := range res.Tasks {
		fmt.Printf("| %-21s | %-23d | %-19d |\n", labels[i], ts.MaxPiSOb, ts.MaxPiSAw)
	}
	fmt.Println()
	fmt.Println("J3's wait while two higher-priority jobs are *pending* is invisible to")
	fmt.Println("s-oblivious analysis (paper: \"J3 is not s-oblivious pi-blocked\") but")
	fmt.Println("counts as s-aware pi-blocking — the Fig. 3 distinction. ✓")
	fmt.Println()
}

// ---------------------------------------------------------------------------
// E4/E5: Theorems 1 and 2

func theoremSweep(write bool) {
	kind, thm := "read", "Theorem 1: L^r + L^w (constant in m)"
	if write {
		kind, thm = "write", "Theorem 2: (m−1)(L^r + L^w) (linear in m)"
	}
	fmt.Printf("## %s — worst-case %s acquisition delay vs. bound\n\n", thm, kind)
	fmt.Println("| m  | progress | max observed (µs) | bound (µs) | observed/bound | samples |")
	fmt.Println("|----|----------|-------------------|------------|----------------|---------|")
	for _, m := range []int{2, 4, 8, 16} {
		for _, prog := range []sim.Progress{sim.SpinNP, sim.Donation} {
			var maxObs, bound simtime.Time
			n := 0
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				p := workload.Params{
					M: m, NumTasks: 3 * m, Util: workload.UtilUniformLight,
					NumResources: 6, AccessProb: 1, ReqPerJob: 3,
					NestedProb: 0.5, ReadRatio: 0.5,
					CSMin: 50_000, CSMax: 500_000,
				}
				sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
				b := analysis.BoundsOf(sys)
				res := run(sim.Config{
					System: sys, Policy: sched.EDF, Progress: prog,
					Protocol: sim.ProtoRWRNLP, Horizon: simtime.Time(*horizon), Seed: seed,
					CheckInvariants: true,
				})
				var obs, bd simtime.Time
				if write {
					obs, bd = res.MaxWriteAcq, b.WriteAcq()
					n += res.NumWriteAcq
				} else {
					obs, bd = res.MaxReadAcq, b.ReadAcq()
					n += res.NumReadAcq
				}
				if obs > maxObs {
					maxObs = obs
				}
				if bd > bound {
					bound = bd
				}
				if obs > bd {
					panic(fmt.Sprintf("BOUND VIOLATED: m=%d seed=%d obs=%d bound=%d", m, seed, obs, bd))
				}
			}
			fmt.Printf("| %-2d | %-8s | %-17.1f | %-10.1f | %-14s | %-7d |\n",
				m, prog, float64(maxObs)/1000, float64(bound)/1000,
				stats.Ratio(float64(maxObs), float64(bound)), n)
		}
	}
	fmt.Println()
}

func thm1() { theoremSweep(false) }
func thm2() { theoremSweep(true) }

// ---------------------------------------------------------------------------
// E7/E8: pi-blocking bounds

func piblock() {
	fmt.Println("## E7/E8 — per-job pi-blocking vs. O(m) bound")
	fmt.Println()
	fmt.Println("| m  | progress | metric       | max observed (µs) | bound (µs) |")
	fmt.Println("|----|----------|--------------|-------------------|------------|")
	for _, m := range []int{2, 4, 8} {
		for _, prog := range []sim.Progress{sim.SpinNP, sim.Donation} {
			var maxObs, bound simtime.Time
			metric := "Def.1 (spin)"
			if prog == sim.Donation {
				metric = "s-oblivious"
			}
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				p := workload.Params{
					M: m, NumTasks: 3 * m, Util: workload.UtilUniformLight,
					NumResources: 6, AccessProb: 1, ReqPerJob: 3,
					NestedProb: 0.5, ReadRatio: 0.5,
					CSMin: 50_000, CSMax: 500_000,
				}
				sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
				b := analysis.BoundsOf(sys)
				res := run(sim.Config{
					System: sys, Policy: sched.EDF, Progress: prog,
					Protocol: sim.ProtoRWRNLP, Horizon: simtime.Time(*horizon), Seed: seed,
				})
				var obs simtime.Time
				if prog == sim.SpinNP {
					obs = res.MaxPiSpin
				} else {
					obs = res.MaxPiSOb
				}
				if obs > maxObs {
					maxObs = obs
				}
				if b.RequestSpan() > bound {
					bound = b.RequestSpan()
				}
				if obs > b.RequestSpan() {
					panic(fmt.Sprintf("PI-BLOCKING BOUND VIOLATED: m=%d seed=%d obs=%d bound=%d", m, seed, obs, b.RequestSpan()))
				}
			}
			fmt.Printf("| %-2d | %-8s | %-12s | %-17.1f | %-10.1f |\n",
				m, prog, metric, float64(maxObs)/1000, float64(bound)/1000)
		}
	}
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Headline comparison: protocols across read ratios

func compare() {
	fmt.Println("## Protocol comparison — reader/writer blocking and concurrency")
	fmt.Println()
	protos := []sim.Protocol{sim.ProtoRWRNLP, sim.ProtoMutexRNLP, sim.ProtoGroupPF, sim.ProtoGroupMutex}
	for _, rr := range []float64{0.1, 0.5, 0.9} {
		fmt.Printf("Read ratio %.0f%% (m=8, spin):\n\n", rr*100)
		fmt.Println("| protocol    | max read acq (µs) | mean read acq | max write acq (µs) | CS parallelism |")
		fmt.Println("|-------------|-------------------|---------------|--------------------|----------------|")
		for _, proto := range protos {
			var maxR, maxW simtime.Time
			var sumMeanR, sumPar float64
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				p := workload.Params{
					M: 8, NumTasks: 24, Util: workload.UtilUniformLight,
					NumResources: 8, AccessProb: 1, ReqPerJob: 3,
					NestedProb: 0.5, ReadRatio: rr,
					CSMin: 50_000, CSMax: 500_000,
				}
				sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
				res := run(sim.Config{
					System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
					Protocol: proto, RSM: core.Options{Placeholders: true},
					Horizon: simtime.Time(*horizon), Seed: seed,
				})
				if res.MaxReadAcq > maxR {
					maxR = res.MaxReadAcq
				}
				if res.MaxWriteAcq > maxW {
					maxW = res.MaxWriteAcq
				}
				sumMeanR += res.MeanReadAcq()
				sumPar += res.CSParallelism
			}
			n := float64(*seeds)
			fmt.Printf("| %-11s | %-17.1f | %-13.1f | %-18.1f | %-14.3f |\n",
				proto, float64(maxR)/1000, sumMeanR/n/1000, float64(maxW)/1000, sumPar/n)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape: the R/W RNLP keeps reader blocking low (readers share);")
	fmt.Println("the mutex RNLP charges read requests the full writer price; group")
	fmt.Println("locking loses CS parallelism (≈1.0 = serialized).")
	fmt.Println()
}

// ---------------------------------------------------------------------------
// E9–E12: ablations

func ablation() {
	fmt.Println("## E9 — Sec. 3.4 ablation: expanded writes vs placeholders")
	fmt.Println()
	fmt.Println("| variant      | mean write acq (µs) | max write acq (µs) | CS parallelism |")
	fmt.Println("|--------------|---------------------|--------------------|----------------|")
	for _, ph := range []bool{false, true} {
		name := "expanded"
		if ph {
			name = "placeholders"
		}
		var sumMean, sumPar float64
		var maxW simtime.Time
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			p := workload.Params{
				M: 8, NumTasks: 24, Util: workload.UtilUniformLight,
				NumResources: 8, AccessProb: 1, ReqPerJob: 3,
				NestedProb: 0.6, ReadRatio: 0.5,
				CSMin: 50_000, CSMax: 500_000,
			}
			sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
			res := run(sim.Config{
				System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
				Protocol: sim.ProtoRWRNLP, RSM: core.Options{Placeholders: ph},
				Horizon: simtime.Time(*horizon), Seed: seed,
			})
			sumMean += res.MeanWriteAcq()
			sumPar += res.CSParallelism
			if res.MaxWriteAcq > maxW {
				maxW = res.MaxWriteAcq
			}
		}
		n := float64(*seeds)
		fmt.Printf("| %-12s | %-19.1f | %-18.1f | %-14.3f |\n",
			name, sumMean/n/1000, float64(maxW)/1000, sumPar/n)
	}
	fmt.Println()
	fmt.Println("Placeholders keep the same worst case but improve average concurrency")
	fmt.Println("(Sec. 3.4: 'allows for additional concurrency ... not reflected in the")
	fmt.Println("worst-case blocking bounds').")
	fmt.Println()

	fmt.Println("## E10 — Sec. 3.5 ablation: R/W mixing")
	fmt.Println()
	fmt.Println("| variant      | mean read acq (µs) | CS parallelism |")
	fmt.Println("|--------------|--------------------|----------------|")
	for _, mixed := range []float64{0, 0.6} {
		name := "pure writes"
		if mixed > 0 {
			name = "mixed (60%)"
		}
		var sumMean, sumPar float64
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			p := workload.Params{
				M: 8, NumTasks: 24, Util: workload.UtilUniformLight,
				NumResources: 8, AccessProb: 1, ReqPerJob: 3,
				NestedProb: 0.8, ReadRatio: 0.4, MixedProb: mixed,
				CSMin: 50_000, CSMax: 500_000,
			}
			sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
			res := run(sim.Config{
				System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
				Protocol: sim.ProtoRWRNLP, RSM: core.Options{Placeholders: true},
				Horizon: simtime.Time(*horizon), Seed: seed,
			})
			sumMean += res.MeanReadAcq()
			sumPar += res.CSParallelism
		}
		n := float64(*seeds)
		fmt.Printf("| %-12s | %-18.1f | %-14.3f |\n", name, sumMean/n/1000, sumPar/n)
	}
	fmt.Println()

	fmt.Println("## E11 — Sec. 3.6 ablation: upgradeable vs pessimistic write")
	fmt.Println()
	fmt.Println("(RW-RNLP supports upgrades natively; baselines pessimistically write-lock.)")
	fmt.Println()
	fmt.Println("| protocol    | mean acq of upgrade/req (µs) | CS parallelism |")
	fmt.Println("|-------------|------------------------------|----------------|")
	for _, proto := range []sim.Protocol{sim.ProtoRWRNLP, sim.ProtoMutexRNLP} {
		var sumAcq, sumPar float64
		var nAcq int
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			p := workload.Params{
				M: 8, NumTasks: 24, Util: workload.UtilUniformLight,
				NumResources: 8, AccessProb: 1, ReqPerJob: 2,
				NestedProb: 0.3, ReadRatio: 0.7, UpgradeProb: 1.0,
				CSMin: 50_000, CSMax: 500_000,
			}
			sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
			res := run(sim.Config{
				System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
				Protocol: proto, RSM: core.Options{Placeholders: true},
				Horizon: simtime.Time(*horizon), Seed: seed, RecordRequests: true,
			})
			for _, r := range res.Requests {
				if r.Upgrade {
					sumAcq += float64(r.Acq)
					nAcq++
				}
			}
			sumPar += res.CSParallelism
		}
		mean := 0.0
		if nAcq > 0 {
			mean = sumAcq / float64(nAcq)
		}
		fmt.Printf("| %-11s | %-28.1f | %-14.3f |\n", proto, mean/1000, sumPar/float64(*seeds))
	}
	fmt.Println()

	fmt.Println("## E12 — Sec. 3.7: incremental locking total delay within single-shot bound")
	fmt.Println()
	var maxInc, bound simtime.Time
	var cnt int
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		p := workload.Params{
			M: 8, NumTasks: 24, Util: workload.UtilUniformLight,
			NumResources: 8, AccessProb: 1, ReqPerJob: 2,
			NestedProb: 0.9, ReadRatio: 0.3, IncrementalProb: 1.0,
			CSMin: 50_000, CSMax: 500_000,
		}
		sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
		b := analysis.BoundsOf(sys)
		res := run(sim.Config{
			System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
			Protocol: sim.ProtoRWRNLP, Horizon: simtime.Time(*horizon), Seed: seed,
			RecordRequests: true,
		})
		for _, r := range res.Requests {
			if r.Incr {
				cnt++
				if r.Acq > maxInc {
					maxInc = r.Acq
				}
				if r.Acq > b.WriteAcq() {
					panic("incremental cumulative delay exceeded single-shot bound")
				}
			}
		}
		if b.WriteAcq() > bound {
			bound = b.WriteAcq()
		}
	}
	fmt.Printf("incremental requests: %d; max cumulative acquisition delay %.1fµs ≤ single-shot bound %.1fµs ✓\n\n",
		cnt, float64(maxInc)/1000, float64(bound)/1000)
}

// ---------------------------------------------------------------------------
// E17: negative control — progress mechanisms matter

// control demonstrates that the paper's bounds rest on Properties P1/P2:
// plain priority inheritance (no issuance gate, no donors) violates P2 and
// loses the s-blocking guarantees, while Rule S1 and priority donation keep
// every invariant and every bound.
func control() {
	fmt.Println("## E17 — negative control: progress mechanisms matter")
	fmt.Println()
	fmt.Println("| progress    | P1/P2 violations | read-bound exceedances | write-bound exceedances |")
	fmt.Println("|-------------|------------------|------------------------|-------------------------|")
	for _, prog := range []sim.Progress{sim.SpinNP, sim.Donation, sim.Inheritance} {
		viol, rex, wex := 0, 0, 0
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			p := workload.Params{
				M: 2, NumTasks: 10, Util: workload.UtilUniformMedium,
				NumResources: 4, AccessProb: 1, ReqPerJob: 3,
				NestedProb: 0.6, ReadRatio: 0.5,
				CSMin: 100_000, CSMax: 800_000,
			}
			sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
			b := analysis.BoundsOf(sys)
			s, err := sim.New(sim.Config{
				System: sys, Policy: sched.EDF, Progress: prog,
				Protocol: sim.ProtoRWRNLP, Horizon: simtime.Time(*horizon), Seed: seed,
				CheckInvariants: true,
			})
			if err != nil {
				panic(err)
			}
			res := s.Run()
			viol += len(res.Violations)
			if res.MaxReadAcq > b.ReadAcq() {
				rex++
			}
			if res.MaxWriteAcq > b.WriteAcq() {
				wex++
			}
		}
		fmt.Printf("| %-11s | %-16d | %-22d | %-23d |\n", prog, viol, rex, wex)
	}
	fmt.Println()
	fmt.Println("Rule S1 and priority donation establish P1/P2 (Lemmas 1, 7) and keep the")
	fmt.Println("Theorem 1/2 bounds; plain inheritance establishes neither — exactly why the")
	fmt.Println("paper pairs the RSM with a *proper* progress mechanism.")
	fmt.Println()
}

// ---------------------------------------------------------------------------
// E18: refined conflict-aware analysis (the paper's named future work)

// refined compares the coarse Theorem-2 bounds against the conflict-aware
// refinement of internal/analysis/refined.go on sparse and dense sharing
// graphs, and validates the refinement's admissions by simulation.
func refined() {
	fmt.Println("## E18 — refined conflict-aware bounds (paper future work)")
	fmt.Println()
	fmt.Println("| sharing | U/m  | coarse rw-rnlp | refined rw-rnlp | simulated misses (refined-admitted) |")
	fmt.Println("|---------|------|----------------|-----------------|--------------------------------------|")
	for _, sparse := range []bool{false, true} {
		name, q, nested := "dense", 8, 0.4
		if sparse {
			name, q, nested = "sparse", 24, 0.1
		}
		for _, frac := range []float64{0.4, 0.5} {
			coarseOK, refinedOK, misses, simmed := 0, 0, 0, 0
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				rng := rand.New(rand.NewSource(seed))
				sys := workload.Generate(rng, workload.Params{
					M: 8, TotalUtil: frac * 8, Util: workload.UtilUniformLight,
					NumResources: q, AccessProb: 0.8, ReqPerJob: 2,
					NestedProb: nested, ReadRatio: 0.8,
					CSMin: 10_000, CSMax: 100_000, WriteCSScale: 0.25,
				})
				a := analysis.NewAnalyzer(sys, sim.ProtoRWRNLP, sim.SpinNP)
				ra := analysis.NewRefinedAnalyzer(sys, sim.SpinNP)
				c, r := a.SchedulableGEDF(), ra.SchedulableGEDFRefined()
				if c {
					coarseOK++
				}
				if r {
					refinedOK++
				}
				if r && !c && simmed < 5 {
					// Soundness: simulate refined-only admissions.
					simmed++
					res := run(sim.Config{
						System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
						Protocol: sim.ProtoRWRNLP, Horizon: simtime.Time(*horizon), Seed: seed,
					})
					misses += res.Misses
				}
			}
			n := float64(*seeds)
			fmt.Printf("| %-7s | %.2f | %-14.2f | %-15.2f | %-36d |\n",
				name, frac, float64(coarseOK)/n, float64(refinedOK)/n, misses)
		}
	}
	fmt.Println()
	fmt.Println("Refined ≥ coarse always (monotone); the admissions it adds miss no")
	fmt.Println("deadlines in simulation. On sparse sharing the refinement separates")
	fmt.Println("fine-grained locking from the coarse worst-case analysis entirely.")
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Clustered scheduling sweep: partitioned (c=1) … global (c=m)

// clusters sweeps the cluster size under the suspension-based variant: the
// paper's model covers the whole spectrum (Sec. 2), and the donation
// mechanism's per-job pi-blocking depends on c through the "top-c pending"
// gate. Acquisition bounds are cluster-independent (the RSM does not see
// clusters); pi-blocking shifts with c.
func clusters() {
	fmt.Println("## Clustered scheduling sweep (m=8, donation, EDF)")
	fmt.Println()
	fmt.Println("| c | scheduling  | max read acq (µs) | max write acq (µs) | max s-oblivious pi (µs) | misses |")
	fmt.Println("|---|-------------|-------------------|--------------------|-------------------------|--------|")
	for _, c := range []int{1, 2, 4, 8} {
		name := "clustered"
		switch c {
		case 1:
			name = "partitioned"
		case 8:
			name = "global"
		}
		var maxR, maxW, maxPi simtime.Time
		misses := 0
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			p := workload.Params{
				M: 8, ClusterSize: c, NumTasks: 24, Util: workload.UtilUniformLight,
				NumResources: 8, AccessProb: 1, ReqPerJob: 3,
				NestedProb: 0.5, ReadRatio: 0.5,
				CSMin: 50_000, CSMax: 500_000,
			}
			sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
			b := analysis.BoundsOf(sys)
			res := run(sim.Config{
				System: sys, Policy: sched.EDF, Progress: sim.Donation,
				Protocol: sim.ProtoRWRNLP, RSM: core.Options{Placeholders: true},
				Horizon: simtime.Time(*horizon), Seed: seed,
				CheckInvariants: true,
			})
			if res.MaxReadAcq > b.ReadAcq() || res.MaxWriteAcq > b.WriteAcq() {
				panic("acquisition bound violated in clustered config")
			}
			if res.MaxReadAcq > maxR {
				maxR = res.MaxReadAcq
			}
			if res.MaxWriteAcq > maxW {
				maxW = res.MaxWriteAcq
			}
			if res.MaxPiSOb > maxPi {
				maxPi = res.MaxPiSOb
			}
			misses += res.Misses
		}
		fmt.Printf("| %d | %-11s | %-17.1f | %-18.1f | %-23.1f | %-6d |\n",
			c, name, float64(maxR)/1000, float64(maxW)/1000, float64(maxPi)/1000, misses)
	}
	fmt.Println()
	fmt.Println("Acquisition delays are cluster-independent (RSM-level, bounds asserted);")
	fmt.Println("pi-blocking varies with c through the donation gate. Partitioned runs may")
	fmt.Println("miss deadlines at higher load (bin imbalance), global ones absorb it.")
	fmt.Println()
}

// ---------------------------------------------------------------------------
// Overhead sensitivity (Sec. 2: "overheads … can be factored into the final
// analysis")

// overheads sweeps protocol-invocation and context-switch costs and checks
// the overhead-inflated Theorem bounds.
func overheads() {
	fmt.Println("## Overhead sensitivity (m=8, spin, R/W RNLP)")
	fmt.Println()
	fmt.Println("| invocation (µs) | ctx switch (µs) | max read acq (µs) | inflated Thm-1 bound (µs) | max write acq (µs) |")
	fmt.Println("|-----------------|-----------------|-------------------|---------------------------|--------------------|")
	for _, ov := range []struct{ inv, ctx simtime.Time }{
		{0, 0}, {1_000, 2_000}, {10_000, 20_000},
	} {
		var maxR, maxW, bound simtime.Time
		for seed := int64(1); seed <= int64(*seeds); seed++ {
			p := workload.Params{
				M: 8, NumTasks: 24, Util: workload.UtilUniformLight,
				NumResources: 8, AccessProb: 1, ReqPerJob: 3,
				NestedProb: 0.5, ReadRatio: 0.5,
				CSMin: 50_000, CSMax: 500_000,
			}
			sys := workload.Generate(rand.New(rand.NewSource(seed)), p)
			b := analysis.BoundsOf(sys).Inflate(ov.inv, ov.ctx)
			res := run(sim.Config{
				System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
				Protocol: sim.ProtoRWRNLP, RSM: core.Options{Placeholders: true},
				Overheads: sim.Overheads{Invocation: ov.inv, CtxSwitch: ov.ctx},
				Horizon:   simtime.Time(*horizon), Seed: seed,
				CheckInvariants: true,
			})
			if res.MaxReadAcq > b.ReadAcq() || res.MaxWriteAcq > b.WriteAcq() {
				panic("overhead-inflated bound violated")
			}
			if res.MaxReadAcq > maxR {
				maxR = res.MaxReadAcq
			}
			if res.MaxWriteAcq > maxW {
				maxW = res.MaxWriteAcq
			}
			if b.ReadAcq() > bound {
				bound = b.ReadAcq()
			}
		}
		fmt.Printf("| %-15.0f | %-15.0f | %-17.1f | %-25.1f | %-18.1f |\n",
			float64(ov.inv)/1000, float64(ov.ctx)/1000,
			float64(maxR)/1000, float64(bound)/1000, float64(maxW)/1000)
	}
	fmt.Println()
	fmt.Println("Delays grow with the charged overheads and stay within the bounds computed")
	fmt.Println("from overhead-inflated CS lengths (analysis.Bounds.Inflate) — the paper's")
	fmt.Println(`"factored into the final analysis" recipe, executed.`)
	fmt.Println()
}
