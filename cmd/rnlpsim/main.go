// Command rnlpsim runs one discrete-event simulation of a random sporadic
// task system under a chosen locking protocol and progress mechanism, and
// prints blocking/response statistics. It is the interactive entry point to
// the simulator; cmd/experiments drives the full reproduction suites.
//
// Example:
//
//	rnlpsim -m 8 -tasks 24 -protocol rw-rnlp -progress spin -read-ratio 0.8 -seed 7
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"

	"github.com/rtsync/rwrnlp/internal/analysis"
	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/obs"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/stats"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
	"github.com/rtsync/rwrnlp/internal/workload"
)

func main() {
	var (
		m        = flag.Int("m", 8, "processors")
		c        = flag.Int("c", 0, "cluster size (0 = global)")
		tasks    = flag.Int("tasks", 24, "number of tasks")
		nres     = flag.Int("resources", 8, "number of resources")
		readR    = flag.Float64("read-ratio", 0.7, "fraction of read requests")
		nested   = flag.Float64("nested", 0.5, "probability of multi-resource requests")
		mixed    = flag.Float64("mixed", 0, "probability of mixed R/W requests")
		upgrades = flag.Float64("upgrades", 0, "probability a read is upgradeable")
		incr     = flag.Float64("incremental", 0, "probability a nested write is incremental")
		execVar  = flag.Float64("exec-var", 0, "per-job execution-time variation in [0,1)")
		ovInv    = flag.Int64("ov-invocation", 0, "protocol invocation overhead (ns)")
		ovCtx    = flag.Int64("ov-ctx", 0, "context-switch overhead (ns)")
		protoS   = flag.String("protocol", "rw-rnlp", "rw-rnlp | mutex-rnlp | group-pf | group-mutex | none")
		progS    = flag.String("progress", "spin", "spin | donation | inheritance")
		policyS  = flag.String("policy", "edf", "edf | fp")
		placeh   = flag.Bool("placeholders", true, "Sec. 3.4 placeholder optimization (rw-rnlp)")
		horizon  = flag.Int64("horizon", 1_000_000_000, "simulation horizon (ns)")
		seed     = flag.Int64("seed", 1, "random seed")
		sysFile  = flag.String("system", "", "load the task system from a JSON file instead of generating one")
		dump     = flag.String("dump-system", "", "write the generated task system to a JSON file and exit")
		report   = flag.Bool("analysis", false, "print the per-task blocking breakdown")
		gantt    = flag.Bool("gantt", false, "render an ASCII Gantt chart of the schedule")
		verbose  = flag.Bool("v", false, "print the per-request log")
		metricsF = flag.Bool("metrics", false, "collect protocol metrics and print the snapshot")
		traceOut = flag.String("trace-out", "", "write a Perfetto/Chrome trace-event JSON file (load in ui.perfetto.dev)")
		httpAddr = flag.String("http", "", "serve the metrics/bounds debug endpoint on this address after the run")
		attrTopK = flag.Int("attr", 0, "causal blocking attribution: keep the N worst blocking chains and print the report (0 = off)")
		flightN  = flag.Int("flight", 0, "flight recorder: ring capacity in events (0 = off)")
		flightO  = flag.String("flight-out", "", "write the flight-recorder dump (JSON) to this file after the run")
		wdogF    = flag.Bool("watchdog", false, "arm the stall watchdog (analytic envelope for rw-rnlp, observed otherwise)")
		wdSlack  = flag.Float64("watchdog-slack", obs.DefaultWatchdogSlack, "stall-watchdog envelope multiplier")
		tsF      = flag.Duration("timeseries", 0, "continuous telemetry: capture a metrics snapshot at this interval while -http serves (implies -metrics; 0 = off)")
	)
	flag.Parse()

	protos := map[string]sim.Protocol{
		"rw-rnlp": sim.ProtoRWRNLP, "mutex-rnlp": sim.ProtoMutexRNLP,
		"group-pf": sim.ProtoGroupPF, "group-mutex": sim.ProtoGroupMutex,
		"none": sim.ProtoNone,
	}
	proto, ok := protos[*protoS]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protoS)
		os.Exit(2)
	}
	prog := sim.SpinNP
	switch *progS {
	case "donation":
		prog = sim.Donation
	case "inheritance":
		prog = sim.Inheritance
	}
	policy := sched.EDF
	if *policyS == "fp" {
		policy = sched.FP
	}
	if *c == 0 {
		*c = *m
	}

	var sys *taskmodel.System
	if *sysFile != "" {
		f, err := os.Open(*sysFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sys, err = taskmodel.ReadJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		*m, *c = sys.M, sys.ClusterSize
	} else {
		p := workload.Params{
			M: *m, ClusterSize: *c, NumTasks: *tasks,
			Util: workload.UtilUniformLight, NumResources: *nres,
			AccessProb: 1, ReqPerJob: 3,
			NestedProb: *nested, ReadRatio: *readR, MixedProb: *mixed,
			UpgradeProb: *upgrades, IncrementalProb: *incr,
			ExecVar: *execVar,
			CSMin:   50_000, CSMax: 500_000,
		}
		sys = workload.Generate(rand.New(rand.NewSource(*seed)), p)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := sys.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *dump)
		return
	}
	b := analysis.BoundsOf(sys)

	// Observability sinks: metrics, the online Theorem 1/2 bound monitor
	// (analytic envelope, overhead-inflated; only where the paper claims the
	// bounds — RW-RNLP under a P1/P2 progress mechanism), and the Perfetto
	// trace builder.
	var observers []core.Observer
	// The flight recorder is attached first so each event's record is already
	// in the ring when the metrics observer tags acquisition-delay exemplars
	// with LastSeqOf — the exemplar's flight_seq then names the satisfaction
	// event itself.
	var fl *obs.FlightRecorder
	if *flightN > 0 || *flightO != "" {
		fl = obs.NewFlightRecorder(1, *flightN) // the simulator runs one RSM
		observers = append(observers, fl.ShardObserver(0))
	}
	var reg *obs.Metrics
	if *metricsF || *tsF > 0 {
		reg = obs.NewMetrics()
		po := obs.NewProtocolObserver(reg)
		if fl != nil {
			po.SetExemplarSource(fl, 0)
		}
		observers = append(observers, po)
	}
	var bm *obs.BoundMonitor
	if proto == sim.ProtoRWRNLP && prog != sim.Inheritance {
		bm = obs.NewBoundMonitor(sys.M)
		ib := b.Inflate(simtime.Time(*ovInv), simtime.Time(*ovCtx))
		bm.SetAnalytic(int64(ib.Lr), int64(ib.Lw))
		observers = append(observers, bm)
	}
	var tb *obs.TraceBuilder
	if *traceOut != "" {
		tb = obs.NewTraceBuilder()
		observers = append(observers, tb)
	}
	var attr *obs.Attributor
	if *attrTopK > 0 {
		if reg == nil {
			reg = obs.NewMetrics()
		}
		attr = obs.NewAttributor(reg, *attrTopK)
		observers = append(observers, attr)
	}
	var wd *obs.Watchdog
	if *wdogF {
		wd = obs.NewWatchdog(obs.WatchdogConfig{
			M: sys.M, Slack: *wdSlack, Flight: fl,
			OnStall: func(r obs.StallReport) {
				fmt.Fprintf(os.Stderr, "watchdog: %s\n", r)
			},
		})
		if proto == sim.ProtoRWRNLP && prog != sim.Inheritance {
			ib := b.Inflate(simtime.Time(*ovInv), simtime.Time(*ovCtx))
			wd.SetAnalytic(int64(ib.Lr), int64(ib.Lw))
		}
		observers = append(observers, wd)
	}

	s, err := sim.New(sim.Config{
		System: sys, Policy: policy, Progress: prog, Protocol: proto,
		RSM:       core.Options{Placeholders: *placeh},
		Overheads: sim.Overheads{Invocation: simtime.Time(*ovInv), CtxSwitch: simtime.Time(*ovCtx)},
		Horizon:   simtime.Time(*horizon), Seed: *seed,
		CheckInvariants: true, RecordRequests: true,
		RecordSchedule: *gantt || tb != nil,
		Observers:      observers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := s.Run()

	fmt.Printf("system: m=%d c=%d n=%d q=%d U=%.2f  L^r=%.1fµs L^w=%.1fµs\n",
		*m, *c, len(sys.Tasks), *nres, sys.Utilization(),
		float64(b.Lr)/1000, float64(b.Lw)/1000)
	fmt.Printf("config: protocol=%s progress=%s policy=%s placeholders=%v horizon=%.0fms seed=%d\n\n",
		proto, prog, policy, *placeh, float64(*horizon)/1e6, *seed)

	if len(res.Violations) > 0 {
		fmt.Printf("INVARIANT VIOLATIONS (%d):\n", len(res.Violations))
		for _, v := range res.Violations {
			fmt.Println(" ", v)
		}
		os.Exit(1)
	}

	fmt.Printf("jobs: released=%d finished=%d deadline misses=%d\n", res.Jobs, res.Finished, res.Misses)
	fmt.Printf("CS parallelism: %.3f (utilization %.3f)\n\n", res.CSParallelism, res.CSUtilization)

	var reads, writes []simtime.Time
	for _, r := range res.Requests {
		if r.Write {
			writes = append(writes, r.Acq)
		} else {
			reads = append(reads, r.Acq)
		}
	}
	fmt.Printf("read  acquisition delay (ns): %s  [Thm 1 bound %d]\n", stats.Summarize(reads), b.ReadAcq())
	fmt.Printf("write acquisition delay (ns): %s  [Thm 2 bound %d]\n", stats.Summarize(writes), b.WriteAcq())
	fmt.Printf("\npi-blocking maxima (ns): spin(Def.1)=%d  s-oblivious=%d  s-aware=%d  s-blocking=%d\n",
		res.MaxPiSpin, res.MaxPiSOb, res.MaxPiSAw, res.MaxSBlock)

	a := analysis.NewAnalyzer(sys, proto, prog)
	fmt.Printf("\nschedulability (s-oblivious inflation): G-EDF=%v  P-EDF=%v  P-FP(RM)=%v\n",
		a.SchedulableGEDF(), a.SchedulablePEDF(), a.SchedulablePFP())
	if proto == sim.ProtoRWRNLP {
		ra := analysis.NewRefinedAnalyzer(sys, prog)
		fmt.Printf("refined (conflict-aware) G-EDF=%v\n", ra.SchedulableGEDFRefined())
	}

	if *report {
		fmt.Println("\nper-task blocking breakdown:")
		if err := a.Report(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}

	if *verbose {
		fmt.Println("\nper-request log:")
		for _, r := range res.Requests {
			kind := "R"
			if r.Write {
				kind = "W"
			}
			fmt.Printf("  T%-3d J%-4d %s issue=%-12d acq=%-10d cs=%d\n",
				r.Task, r.Job, kind, r.Issue, r.Acq, r.CS)
		}
	}
	if len(reads) > 0 {
		fmt.Println("\nread-delay histogram:")
		fmt.Print(stats.Histogram(reads, 8))
	}
	if *gantt {
		fmt.Println("\nschedule:")
		fmt.Print(sim.RenderGantt(res, 100))
	}

	if reg != nil {
		fmt.Println("\nmetrics snapshot (simulated ns):")
		fmt.Print(reg.Snapshot().String())
	}
	if attr != nil {
		fmt.Println()
		fmt.Print(attr.Report().String())
	}
	boundsOK := true
	if bm != nil {
		rep := bm.Report()
		fmt.Println()
		fmt.Print(rep.String())
		boundsOK = rep.Ok()
	}
	if wd != nil {
		fmt.Printf("\nstall watchdog: %d firing(s)\n", wd.Firings())
		for _, r := range wd.Reports() {
			fmt.Printf("  %s\n", r)
		}
		if wd.Firings() > 0 {
			boundsOK = false
		}
	}
	if fl != nil && *flightO != "" {
		f, err := os.Create(*flightO)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		d := fl.Dump()
		if err := d.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote flight dump (%d records) to %s (render with cmd/flightdump)\n", len(d.Records), *flightO)
	}
	if tb != nil {
		tb.AddSchedule(res.Schedule)
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, err := tb.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\nwrote trace to %s (open in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
		if d := tb.DroppedRequests(); d > 0 {
			fmt.Printf("note: %d requests beyond the per-request track cap were rendered without lifecycle tracks\n", d)
		}
	}
	if *httpAddr != "" {
		var ts *obs.TimeSeries
		if *tsF > 0 && reg != nil {
			// The run is already over, so the ring mostly re-captures the final
			// cumulative snapshot; scrapes still get windowed views and the
			// endpoint shape is live for cockpit clients (rnlptop).
			ts = obs.NewTimeSeries(reg, *tsF, 0)
			ts.Start()
			defer ts.Stop()
		}
		cfg := obs.DebugMuxConfig{Metrics: reg, Bounds: bm, Flight: fl, Series: ts, Watchdogs: []*obs.Watchdog{wd}}
		if attr != nil {
			cfg.Attribution = attr.Report
		}
		fmt.Printf("\nserving debug endpoint on http://%s (/metrics, /bounds, /debug/rnlp/flight, /debug/rnlp/watchdog, /debug/rnlp/timeseries, /debug/rnlp/attr, /debug/pprof, /healthz); Ctrl-C to stop\n", *httpAddr)
		if err := http.ListenAndServe(*httpAddr, obs.NewDebugMux(cfg)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if !boundsOK {
		os.Exit(1)
	}
}
