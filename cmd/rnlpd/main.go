// Command rnlpd is the distributed lock-service daemon: it serves the R/W
// RNLP runtime lock over HTTP with sessions, leases, and fencing tokens
// (package internal/service), and mounts the protocol's full debug surface
// so rnlptop and flightdump work against a live node.
//
//	rnlpd -resources 8 -declare "0,1;2,3"            # single node on :6060
//	rnlpd -addr 127.0.0.1:0 -lease-ttl 2s            # ephemeral port (printed)
//	rnlpd -node http://a:6060 \
//	      -nodes http://a:6060,http://b:6060         # one node of a cluster
//
// Components (connected components of the declared footprints) are placed
// onto the nodes of -nodes by consistent hashing; this process serves the
// components the ring assigns to -node and rejects the rest with a
// wrong_node redirect. Watch a live node with:
//
//	rnlptop -url http://localhost:6060
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/rtsync/rwrnlp"
	"github.com/rtsync/rwrnlp/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":6060", "listen address (host:port; port 0 picks one and prints it)")
		resources = flag.Int("resources", 8, "number of resources (IDs 0..q-1)")
		declare   = flag.String("declare", "", "declared read groups, e.g. \"0,1;2,3\" (semicolon-separated; shapes drive component formation)")
		leaseTTL  = flag.Duration("lease-ttl", 5*time.Second, "default session lease")
		maxTTL    = flag.Duration("max-lease-ttl", 0, "cap on client-requested leases (0 = 12x lease-ttl)")
		sweep     = flag.Duration("sweep", 0, "lease sweep interval (0 = lease-ttl/4)")
		acqTO     = flag.Duration("acquire-timeout", 60*time.Second, "server-side cap on one blocking acquire")
		node      = flag.String("node", "", "this node's identity in -nodes (default: single node)")
		nodes     = flag.String("nodes", "", "static cluster map, comma-separated node identities")
		vnodes    = flag.Int("vnodes", 0, "consistent-hash virtual nodes per node (0 = default)")
		placeh    = flag.Bool("placeholders", true, "enable the Sec. 3.4 placeholder optimization")
		park      = flag.String("park", "sema", "contended-waiter parking: sema (futex-style state word) or chan (legacy chan-close)")
		flight    = flag.Int("flight", 4096, "flight-recorder ring depth per shard (0 disables)")
		tsInt     = flag.Duration("timeseries", time.Second, "telemetry capture interval (0 disables)")
		attrTopK  = flag.Int("attr", 10, "causal-attribution top-K blocking chains (0 disables)")
	)
	flag.Parse()

	b := rwrnlp.NewSpecBuilder(*resources)
	if *declare != "" {
		for _, group := range strings.Split(*declare, ";") {
			var ids []rwrnlp.ResourceID
			for _, f := range strings.Split(group, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					fatalf("bad -declare %q: %v", group, err)
				}
				ids = append(ids, rwrnlp.ResourceID(n))
			}
			if err := b.DeclareRequest(ids, nil); err != nil {
				fatalf("declare %q: %v", group, err)
			}
		}
	}

	opts := []rwrnlp.Option{rwrnlp.WithMetrics()}
	if *placeh {
		opts = append(opts, rwrnlp.WithPlaceholders())
	}
	switch *park {
	case "sema":
		opts = append(opts, rwrnlp.WithParking(rwrnlp.ParkSema))
	case "chan":
		opts = append(opts, rwrnlp.WithParking(rwrnlp.ParkChan))
	default:
		fatalf("bad -park %q: want sema or chan", *park)
	}
	if *flight > 0 {
		opts = append(opts, rwrnlp.WithFlightRecorder(*flight))
	}
	if *tsInt > 0 {
		opts = append(opts, rwrnlp.WithTimeSeries(*tsInt, 0))
	}
	if *attrTopK > 0 {
		opts = append(opts, rwrnlp.WithAttribution(*attrTopK))
	}

	cfg := service.Config{
		Spec:           b.Build(),
		Options:        opts,
		LeaseTTL:       *leaseTTL,
		MaxLeaseTTL:    *maxTTL,
		SweepInterval:  *sweep,
		AcquireTimeout: *acqTO,
		Node:           *node,
		VNodes:         *vnodes,
	}
	if *nodes != "" {
		for _, n := range strings.Split(*nodes, ",") {
			if n = strings.TrimSpace(n); n != "" {
				cfg.Nodes = append(cfg.Nodes, n)
			}
		}
	}
	srv, err := service.NewServer(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen %s: %v", *addr, err)
	}
	// The "listening on" line is a stable interface: the integration tests
	// (and scripts) parse it to learn an ephemeral port.
	fmt.Printf("rnlpd: listening on %s (node %s, lease %s)\n", ln.Addr(), srv.SpecInfo().Node, *leaseTTL)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("rnlpd: %v, draining\n", sig)
	case err := <-errc:
		fatalf("serve: %v", err)
	}
	// Close first: it cancels every session context, so blocked acquire
	// handlers return immediately and Shutdown drains fast.
	_ = srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	fmt.Println("rnlpd: bye")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rnlpd: "+format+"\n", args...)
	os.Exit(1)
}
