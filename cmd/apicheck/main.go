// Command apicheck records and verifies the exported API surface of the
// repository's public packages (the module root and, via repeated -dir
// flags, any other public package such as ./client). It is a
// dependency-free stand-in for golang.org/x/exp/apidiff: a deterministic
// textual dump of every exported declaration — functions, methods, types,
// struct fields, interface methods, consts and vars — diffed against a
// committed baseline.
//
//	go run ./cmd/apicheck -dir . -dir client -o API.txt      # (re)record
//	go run ./cmd/apicheck -dir . -dir client -check API.txt  # CI gate
//
// Lines from the module root are unprefixed (baseline compatibility);
// lines from any other -dir carry a "<pkg>: " prefix, where <pkg> is the
// directory's base name, so same-named declarations in different packages
// stay distinct.
//
// A failing check prints the delta as +added/-removed lines. Intentional API
// changes are accepted by re-recording the baseline in the same commit, which
// makes every surface change visible in review.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// dirList is a repeatable -dir flag.
type dirList []string

func (d *dirList) String() string     { return strings.Join(*d, ",") }
func (d *dirList) Set(v string) error { *d = append(*d, v); return nil }

func main() {
	var dirs dirList
	flag.Var(&dirs, "dir", "directory of a package to dump (repeatable; default \".\")")
	out := flag.String("o", "", "write the API dump to this file")
	check := flag.String("check", "", "compare the dump against this baseline and exit non-zero on any difference")
	flag.Parse()
	if len(dirs) == 0 {
		dirs = dirList{"."}
	}

	var lines []string
	for _, dir := range dirs {
		dl, err := dumpAPI(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(2)
		}
		// Root package lines stay bare for baseline compatibility; other
		// packages are prefixed so their surfaces cannot collide.
		if clean := strings.Trim(dir, "./"); clean != "" {
			prefix := path.Base(filepath.ToSlash(clean)) + ": "
			for i := range dl {
				dl[i] = prefix + dl[i]
			}
		}
		lines = append(lines, dl...)
	}
	sort.Strings(lines)
	dump := strings.Join(lines, "\n") + "\n"

	switch {
	case *out != "":
		if err := os.WriteFile(*out, []byte(dump), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(2)
		}
		fmt.Printf("apicheck: wrote %d declarations to %s\n", len(lines), *out)
	case *check != "":
		base, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(2)
		}
		added, removed := diffLines(splitLines(string(base)), lines)
		if len(added) == 0 && len(removed) == 0 {
			fmt.Printf("apicheck: API unchanged (%d declarations)\n", len(lines))
			return
		}
		fmt.Fprintf(os.Stderr, "apicheck: exported API differs from %s:\n", *check)
		for _, l := range removed {
			fmt.Fprintln(os.Stderr, "  -", l)
		}
		for _, l := range added {
			fmt.Fprintln(os.Stderr, "  +", l)
		}
		dirFlags := ""
		for _, d := range dirs {
			dirFlags += " -dir " + d
		}
		fmt.Fprintf(os.Stderr, "apicheck: if intentional, re-record with: go run ./cmd/apicheck%s -o %s\n", dirFlags, *check)
		os.Exit(1)
	default:
		fmt.Print(dump)
	}
}

// dumpAPI parses the non-test files of the package in dir and returns one
// sorted line per exported declaration.
func dumpAPI(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

func declLines(fset *token.FileSet, decl ast.Decl) []string {
	var lines []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			recv := exprString(fset, d.Recv.List[0].Type)
			// Methods on unexported receivers are unreachable API.
			if !ast.IsExported(strings.TrimPrefix(strings.TrimPrefix(recv, "*"), "")) {
				return nil
			}
			lines = append(lines, fmt.Sprintf("method (%s) %s%s", recv, d.Name.Name, signatureString(fset, d.Type)))
		} else {
			lines = append(lines, fmt.Sprintf("func %s%s", d.Name.Name, signatureString(fset, d.Type)))
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				typ := ""
				if s.Type != nil {
					typ = " " + exprString(fset, s.Type)
				}
				for _, n := range s.Names {
					if n.IsExported() {
						lines = append(lines, fmt.Sprintf("%s %s%s", kw, n.Name, typ))
					}
				}
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				lines = append(lines, typeLines(fset, s)...)
			}
		}
	}
	return lines
}

// typeLines renders a type declaration: one line for the type itself plus one
// line per exported struct field or interface method.
func typeLines(fset *token.FileSet, s *ast.TypeSpec) []string {
	name := s.Name.Name
	eq := ""
	if s.Assign.IsValid() {
		eq = "= "
	}
	switch t := s.Type.(type) {
	case *ast.StructType:
		lines := []string{fmt.Sprintf("type %s %sstruct", name, eq)}
		for _, f := range t.Fields.List {
			ft := exprString(fset, f.Type)
			if len(f.Names) == 0 { // embedded
				if ast.IsExported(strings.TrimPrefix(ft, "*")) {
					lines = append(lines, fmt.Sprintf("field %s.%s %s (embedded)", name, strings.TrimPrefix(ft, "*"), ft))
				}
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					lines = append(lines, fmt.Sprintf("field %s.%s %s", name, n.Name, ft))
				}
			}
		}
		return lines
	case *ast.InterfaceType:
		lines := []string{fmt.Sprintf("type %s %sinterface", name, eq)}
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				lines = append(lines, fmt.Sprintf("ifacemethod %s.%s (embedded)", name, exprString(fset, m.Type)))
				continue
			}
			ft, ok := m.Type.(*ast.FuncType)
			if !ok {
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					lines = append(lines, fmt.Sprintf("ifacemethod %s.%s%s", name, n.Name, signatureString(fset, ft)))
				}
			}
		}
		return lines
	default:
		return []string{fmt.Sprintf("type %s %s%s", name, eq, exprString(fset, s.Type))}
	}
}

var ws = regexp.MustCompile(`\s+`)

// exprString renders an AST expression on one normalized line.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return fmt.Sprintf("<%T>", e)
	}
	return ws.ReplaceAllString(buf.String(), " ")
}

// signatureString renders a function type's "(params) results" part.
func signatureString(fset *token.FileSet, ft *ast.FuncType) string {
	s := exprString(fset, ft)
	return strings.TrimPrefix(s, "func")
}

func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l = strings.TrimRight(l, "\r"); l != "" {
			out = append(out, l)
		}
	}
	return out
}

// diffLines computes the set difference both ways over sorted inputs.
func diffLines(base, cur []string) (added, removed []string) {
	in := func(set []string, l string) bool {
		i := sort.SearchStrings(set, l)
		return i < len(set) && set[i] == l
	}
	for _, l := range cur {
		if !in(base, l) {
			added = append(added, l)
		}
	}
	for _, l := range base {
		if !in(cur, l) {
			removed = append(removed, l)
		}
	}
	return added, removed
}
