// Command flightdump renders a flight-recorder dump into a human-readable
// report. Dumps are produced by the /debug/rnlp/flight endpoint, by
// rnlpsim -flight-out, or carried inside a stall-watchdog report; this tool
// is the offline half of the loop — point it at the JSON and it answers
// "who was blocking whom, and where did the wait go".
//
//	flightdump dump.json                  # summary + top blocking chains
//	flightdump -top 20 dump.json          # deeper chain report
//	flightdump -events dump.json          # also print the raw event timeline
//	flightdump -seq 1337 dump.json        # resolve one metric exemplar's flight_seq
//	flightdump -perfetto out.json dump.json   # re-render as a Perfetto trace
//	flightdump node1.json node2.json node3.json   # merge per-node dumps
//	flightdump -trace 4f2a... node*.json  # one distributed trace across nodes
//	curl -s host:6060/debug/rnlp/flight | flightdump   # reads stdin
//
// The attribution report decomposes each delayed request's wait into the
// paper-aligned components (entitled writer wait, reader behind entitled
// writer, writer behind a read phase) and expands the blocker edges into
// nested chains, exactly as the in-process Attributor would have.
//
// With several input files — one /debug/rnlp/flight dump per cluster node —
// the dumps are merged into a single view: shards get disjoint index ranges,
// request IDs are remapped to stay unique, and every record is labeled with
// its node (the file's base name). Cross-node requests join by tag: a
// distributed trace ID stamps every event of its request on every hop, so
// -trace filters the merged dump down to one acquisition's cluster-wide
// lifecycle, and -perfetto renders it as one multi-track trace.
//
// -seq closes the exemplar loop: an OpenMetrics tail bucket carries
// `# {req="R",flight_seq="S"}`; resolving S against a dump of the same
// process prints the recorded event and the full blocking chain of the
// request that produced that tail sample. Sequence numbers are per-node —
// -seq takes a single input file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/rtsync/rwrnlp/internal/obs"
)

func main() {
	top := flag.Int("top", 10, "number of worst blocking chains to report")
	perfetto := flag.String("perfetto", "", "also write the dump as a Perfetto/Chrome trace to this file")
	events := flag.Bool("events", false, "print the raw event timeline after the report")
	seqF := flag.Uint64("seq", 0, "resolve this flight sequence number (a metric exemplar's flight_seq) into its record and blocking chain, instead of the full report (single input only)")
	traceF := flag.String("trace", "", "keep only records tagged with this trace ID (a distributed acquisition's cluster-wide lifecycle)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: flightdump [-top K] [-seq N] [-trace ID] [-perfetto out.json] [-events] [dump.json ...]\n\nreads stdin when no file is given; several files (one per node) are merged\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var d obs.FlightDump
	switch {
	case flag.NArg() > 1 && *seqF != 0:
		fail(fmt.Errorf("-seq resolves per-node sequence numbers: give exactly one dump file"))
	case flag.NArg() > 1:
		dumps := make([]obs.FlightDump, flag.NArg())
		names := make([]string, flag.NArg())
		for i, p := range flag.Args() {
			dumps[i] = parseFile(p)
			names[i] = strings.TrimSuffix(filepath.Base(p), ".json")
		}
		d = obs.MergeFlightDumps(dumps, names)
	case flag.NArg() == 1:
		d = parseFile(flag.Arg(0))
	default:
		var err error
		if d, err = obs.ParseFlightDump(os.Stdin); err != nil {
			fail(fmt.Errorf("stdin: %w", err))
		}
	}
	if *traceF != "" {
		d = d.FilterTag(*traceF)
		if len(d.Records) == 0 {
			fail(fmt.Errorf("no records carry trace %q", *traceF))
		}
	}

	if *seqF != 0 {
		rec, chain, err := d.ResolveSeq(*seqF)
		if err != nil {
			fail(err)
		}
		fmt.Printf("flight seq %d: shard %d t=%d %s req %d %s\n\n",
			rec.Seq, rec.Shard, rec.T, rec.Type, rec.Req, rec.Kind)
		fmt.Print(chain.String())
		return
	}

	summarize(os.Stdout, d)
	fmt.Println()
	fmt.Print(d.Attribution(*top).String())

	if *events {
		fmt.Println()
		timeline(os.Stdout, d)
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fail(err)
		}
		if err := d.WritePerfetto(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote Perfetto trace to %s (open in ui.perfetto.dev)\n", *perfetto)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flightdump:", err)
	os.Exit(1)
}

// parseFile reads one dump file.
func parseFile(path string) obs.FlightDump {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	d, err := obs.ParseFlightDump(f)
	if err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return d
}

// summarize prints the dump's shape: per-shard record counts, the time
// window covered, and event-type totals.
func summarize(w io.Writer, d obs.FlightDump) {
	byShard := map[int]int{}
	byType := map[string]int{}
	var tMin, tMax int64
	for i, r := range d.Records {
		byShard[r.Shard]++
		byType[r.Type]++
		if i == 0 || r.T < tMin {
			tMin = r.T
		}
		if i == 0 || r.T > tMax {
			tMax = r.T
		}
	}
	fmt.Fprintf(w, "flight dump v%d: %d records, %d shard(s)", d.Version, len(d.Records), d.Shards)
	if len(d.Records) > 0 {
		fmt.Fprintf(w, ", t=[%d, %d]", tMin, tMax)
	}
	fmt.Fprintln(w)

	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		fmt.Fprintf(w, "  shard %d: %d records\n", s, byShard[s])
	}
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(w, "  %-12s %d\n", t, byType[t])
	}
}

// timeline prints every record in sequence order, one line per event.
func timeline(w io.Writer, d obs.FlightDump) {
	fmt.Fprintln(w, "event timeline (seq order):")
	for _, r := range d.Records {
		var b strings.Builder
		fmt.Fprintf(&b, "  [%6d] ", r.Seq)
		if r.Node != "" {
			fmt.Fprintf(&b, "%s ", r.Node)
		}
		fmt.Fprintf(&b, "shard %d t=%-8d %-12s req %d %s", r.Shard, r.T, r.Type, r.Req, r.Kind)
		if len(r.Resources) > 0 {
			fmt.Fprintf(&b, " res=%v", r.Resources)
		}
		if len(r.Read) > 0 || len(r.Write) > 0 {
			fmt.Fprintf(&b, " read=%v write=%v", r.Read, r.Write)
		}
		if r.Pair != 0 {
			fmt.Fprintf(&b, " pair=%d", r.Pair)
		}
		if r.Incremental {
			b.WriteString(" incremental")
		}
		if r.Tag != "" {
			fmt.Fprintf(&b, " tag=%s", r.Tag)
		}
		if len(r.Blockers) > 0 {
			fmt.Fprintf(&b, " blockers=%v", r.Blockers)
		}
		fmt.Fprintln(w, b.String())
	}
}
