// Command flightdump renders a flight-recorder dump into a human-readable
// report. Dumps are produced by the /debug/rnlp/flight endpoint, by
// rnlpsim -flight-out, or carried inside a stall-watchdog report; this tool
// is the offline half of the loop — point it at the JSON and it answers
// "who was blocking whom, and where did the wait go".
//
//	flightdump dump.json                  # summary + top blocking chains
//	flightdump -top 20 dump.json          # deeper chain report
//	flightdump -events dump.json          # also print the raw event timeline
//	flightdump -seq 1337 dump.json        # resolve one metric exemplar's flight_seq
//	flightdump -perfetto out.json dump.json   # re-render as a Perfetto trace
//	curl -s host:6060/debug/rnlp/flight | flightdump   # reads stdin
//
// The attribution report decomposes each delayed request's wait into the
// paper-aligned components (entitled writer wait, reader behind entitled
// writer, writer behind a read phase) and expands the blocker edges into
// nested chains, exactly as the in-process Attributor would have.
//
// -seq closes the exemplar loop: an OpenMetrics tail bucket carries
// `# {req="R",flight_seq="S"}`; resolving S against a dump of the same
// process prints the recorded event and the full blocking chain of the
// request that produced that tail sample.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/rtsync/rwrnlp/internal/obs"
)

func main() {
	top := flag.Int("top", 10, "number of worst blocking chains to report")
	perfetto := flag.String("perfetto", "", "also write the dump as a Perfetto/Chrome trace to this file")
	events := flag.Bool("events", false, "print the raw event timeline after the report")
	seqF := flag.Uint64("seq", 0, "resolve this flight sequence number (a metric exemplar's flight_seq) into its record and blocking chain, instead of the full report")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: flightdump [-top K] [-seq N] [-perfetto out.json] [-events] [dump.json]\n\nreads stdin when no file is given\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	in := io.Reader(os.Stdin)
	src := "stdin"
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
		src = flag.Arg(0)
	}

	d, err := obs.ParseFlightDump(in)
	if err != nil {
		fail(fmt.Errorf("%s: %w", src, err))
	}

	if *seqF != 0 {
		rec, chain, err := d.ResolveSeq(*seqF)
		if err != nil {
			fail(err)
		}
		fmt.Printf("flight seq %d: shard %d t=%d %s req %d %s\n\n",
			rec.Seq, rec.Shard, rec.T, rec.Type, rec.Req, rec.Kind)
		fmt.Print(chain.String())
		return
	}

	summarize(os.Stdout, d)
	fmt.Println()
	fmt.Print(d.Attribution(*top).String())

	if *events {
		fmt.Println()
		timeline(os.Stdout, d)
	}

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fail(err)
		}
		if err := d.WritePerfetto(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\nwrote Perfetto trace to %s (open in ui.perfetto.dev)\n", *perfetto)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "flightdump:", err)
	os.Exit(1)
}

// summarize prints the dump's shape: per-shard record counts, the time
// window covered, and event-type totals.
func summarize(w io.Writer, d obs.FlightDump) {
	byShard := map[int]int{}
	byType := map[string]int{}
	var tMin, tMax int64
	for i, r := range d.Records {
		byShard[r.Shard]++
		byType[r.Type]++
		if i == 0 || r.T < tMin {
			tMin = r.T
		}
		if i == 0 || r.T > tMax {
			tMax = r.T
		}
	}
	fmt.Fprintf(w, "flight dump v%d: %d records, %d shard(s)", d.Version, len(d.Records), d.Shards)
	if len(d.Records) > 0 {
		fmt.Fprintf(w, ", t=[%d, %d]", tMin, tMax)
	}
	fmt.Fprintln(w)

	shards := make([]int, 0, len(byShard))
	for s := range byShard {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		fmt.Fprintf(w, "  shard %d: %d records\n", s, byShard[s])
	}
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Fprintf(w, "  %-12s %d\n", t, byType[t])
	}
}

// timeline prints every record in sequence order, one line per event.
func timeline(w io.Writer, d obs.FlightDump) {
	fmt.Fprintln(w, "event timeline (seq order):")
	for _, r := range d.Records {
		var b strings.Builder
		fmt.Fprintf(&b, "  [%6d] shard %d t=%-8d %-12s req %d %s", r.Seq, r.Shard, r.T, r.Type, r.Req, r.Kind)
		if len(r.Resources) > 0 {
			fmt.Fprintf(&b, " res=%v", r.Resources)
		}
		if len(r.Read) > 0 || len(r.Write) > 0 {
			fmt.Fprintf(&b, " read=%v write=%v", r.Read, r.Write)
		}
		if r.Pair != 0 {
			fmt.Fprintf(&b, " pair=%d", r.Pair)
		}
		if r.Incremental {
			b.WriteString(" incremental")
		}
		if r.Tag != "" {
			fmt.Fprintf(&b, " tag=%s", r.Tag)
		}
		if len(r.Blockers) > 0 {
			fmt.Fprintf(&b, " blockers=%v", r.Blockers)
		}
		fmt.Fprintln(w, b.String())
	}
}
