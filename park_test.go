package rwrnlp

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rtsync/rwrnlp/internal/obs"
)

// parkTestSpec declares one {0,1} component.
func parkTestSpec(t testing.TB) *Spec {
	t.Helper()
	sb := NewSpecBuilder(2)
	if err := sb.DeclareRequest([]ResourceID{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	return sb.Build()
}

// parkCounters sums the shard-labeled park accounting counters.
func parkCounters(p *Protocol) (wake, direct, spur int64) {
	snap := p.Metrics().Snapshot()
	for s := 0; s < p.NumShards(); s++ {
		wake += snap.Counters[obs.ShardMetric(obs.MParkWakeups, s)]
		direct += snap.Counters[obs.ShardMetric(obs.MParkDirect, s)]
		spur += snap.Counters[obs.ShardMetric(obs.MParkSpurious, s)]
	}
	return
}

// TestWaiterStateMachine drives the packed state word through every legal
// transition, including both outcomes of the signal-vs-cancel race.
func TestWaiterStateMachine(t *testing.T) {
	newSema := func() *waiter { return &waiter{sema: make(chan struct{}, 1)} }

	t.Run("signal-before-park", func(t *testing.T) {
		w := newSema()
		if got := w.signal(); got != parkDirect {
			t.Fatalf("signal on idle waiter = %v, want parkDirect", got)
		}
		if !w.signaled() {
			t.Fatal("waiter not signaled after direct signal")
		}
		if w.park(false) {
			t.Fatal("park committed to blocking after the signal landed")
		}
		if len(w.sema) != 0 {
			t.Fatal("direct signal must not spend a token")
		}
	})

	t.Run("signal-after-park", func(t *testing.T) {
		w := newSema()
		woke := make(chan struct{})
		go func() {
			w.wait(false)
			close(woke)
		}()
		for w.state.Load() != parkParked {
			time.Sleep(50 * time.Microsecond)
		}
		if got := w.signal(); got != parkWokeParked {
			t.Fatalf("signal on parked waiter = %v, want parkWokeParked", got)
		}
		select {
		case <-woke:
		case <-time.After(5 * time.Second):
			t.Fatal("lost wakeup: parked waiter never woke")
		}
	})

	t.Run("cancel-wins", func(t *testing.T) {
		w := newSema()
		if !w.park(false) {
			t.Fatal("park refused on an idle waiter")
		}
		if !w.cancel() {
			t.Fatal("cancel lost with no signal in flight")
		}
		if got := w.signal(); got != parkSpurious {
			t.Fatalf("signal after winning cancel = %v, want parkSpurious", got)
		}
		if len(w.sema) != 0 {
			t.Fatal("spurious signal must not leave a token behind")
		}
	})

	t.Run("cancel-loses", func(t *testing.T) {
		w := newSema()
		if !w.park(false) {
			t.Fatal("park refused on an idle waiter")
		}
		if got := w.signal(); got != parkWokeParked {
			t.Fatalf("signal on parked waiter = %v, want parkWokeParked", got)
		}
		if w.cancel() {
			t.Fatal("cancel won after the signal's CAS landed")
		}
		select {
		case <-w.sema: // the losing canceller consumes the in-flight token
		default:
			t.Fatal("no token in flight after losing cancel")
		}
	})

	t.Run("legacy-once", func(t *testing.T) {
		w := &waiter{sema: make(chan struct{}), legacy: true}
		if got := w.signal(); got != parkWokeParked {
			t.Fatalf("first legacy signal = %v, want parkWokeParked", got)
		}
		if got := w.signal(); got != parkSpurious {
			t.Fatalf("second legacy signal = %v, want parkSpurious", got)
		}
		if !w.signaled() {
			t.Fatal("legacy waiter not signaled after close")
		}
		w.wait(false) // must return immediately on the closed channel
	})
}

// TestParkWakeupAccounting is the batched-release acceptance test: N readers
// park behind one writer; releasing the writer satisfies all of them inside
// one critical section, and the signal batch must deliver exactly one
// runtime wakeup per entitled grant — no broadcast, no spurious delivery.
func TestParkWakeupAccounting(t *testing.T) {
	const readers = 6
	p := New(parkTestSpec(t),
		WithPlaceholders(),
		WithMetrics(),
		WithSelfCheck(),
		WithFastPath(FastPathConfig{}))

	wtok, err := p.Write(bgCtx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tok, err := p.Read(bgCtx, 0, 1)
			if err != nil {
				t.Error(err)
				return
			}
			if err := p.Release(tok); err != nil {
				t.Error(err)
			}
		}()
	}

	// Wait until every reader is not merely issued but physically parked
	// (state word observed parkParked), so no signal can land as a direct
	// delivery and the count below prices real wakeups.
	s := p.shards[0]
	deadline := time.Now().Add(10 * time.Second)
	for {
		parked := 0
		s.mu.Lock()
		for _, w := range s.waiters {
			if w.state.Load() == parkParked {
				parked++
			}
		}
		s.mu.Unlock()
		if parked == readers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d readers parked", parked, readers)
		}
		time.Sleep(time.Millisecond)
	}

	if err := p.Release(wtok); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	wake, direct, spur := parkCounters(p)
	if wake != readers || direct != 0 || spur != 0 {
		t.Fatalf("park accounting after batched release: wakeups=%d direct=%d spurious=%d, want %d/0/0",
			wake, direct, spur, readers)
	}
	snap := p.Metrics().Snapshot()
	grants := snap.Counters[obs.MSatisfied] - snap.Counters[obs.MImmediate]
	if wake != grants {
		t.Fatalf("park_wakeups = %d, want one wake per non-immediate grant (%d)", wake, grants)
	}
}

// TestParkSignalCancelStorm is the signal-vs-ctx-cancel storm (the PR 7
// lease-race pattern): four jittered workers race short context deadlines
// against contended acquisitions under -race, in both parking modes. The
// assertions are: no lost wakeup (the storm drains), no double grant
// (writer exclusivity counter + WithSelfCheck), and exact accounting after
// the drain — every non-immediate grant was delivered as exactly one
// wakeup/direct signal, with spurious deliveries only for cancelled
// waiters.
func TestParkSignalCancelStorm(t *testing.T) {
	for _, mode := range []struct {
		name string
		park ParkMode
	}{{"sema", ParkSema}, {"chan", ParkChan}} {
		mode := mode
		t.Run("park="+mode.name, func(t *testing.T) {
			p := New(parkTestSpec(t),
				WithPlaceholders(),
				WithMetrics(),
				WithSelfCheck(),
				WithParking(mode.park),
				WithFlightRecorder(512),
				WithFastPath(FastPathConfig{}))
			// On failure, persist the flight rings so the counterexample
			// survives the runner (CI uploads *.flight.json as artifacts).
			defer func() {
				if !t.Failed() {
					return
				}
				buf, err := json.MarshalIndent(p.FlightRecorder().Dump(), "", "  ")
				if err == nil {
					name := "park-storm-" + mode.name + ".flight.json"
					if werr := os.WriteFile(name, buf, 0o644); werr == nil {
						t.Logf("flight dump written to %s", name)
					}
				}
			}()

			const workers = 4
			iters := 300
			if testing.Short() {
				iters = 60
			}

			var excl atomic.Int32 // writer-exclusivity witness
			var granted, cancelled atomic.Int64
			var wg sync.WaitGroup
			for wk := 0; wk < workers; wk++ {
				wg.Add(1)
				go func(wk int) {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						// Jitter the deadline across iterations so the cancel
						// lands before, during, and after the grant.
						ttl := time.Duration(50+(wk*7+i)%9*40) * time.Microsecond
						ctx, cancel := context.WithTimeout(bgCtx, ttl)
						write := (wk+i)%3 == 0
						var tok Token
						var err error
						if write {
							tok, err = p.Write(ctx, 0, 1)
						} else {
							tok, err = p.Read(ctx, 0, 1)
						}
						cancel()
						switch {
						case err == nil:
							granted.Add(1)
							if write {
								if v := excl.Add(1); v != 1 {
									t.Errorf("double grant: writer entered with %d holders", v)
								}
								excl.Add(-1)
							} else if v := excl.Load(); v != 0 {
								t.Errorf("double grant: reader overlapped a writer (%d)", v)
							}
							if rerr := p.Release(tok); rerr != nil {
								t.Errorf("release: %v", rerr)
							}
						case errors.Is(err, context.DeadlineExceeded):
							cancelled.Add(1)
						default:
							t.Errorf("worker %d iter %d: unexpected error %v", wk, i, err)
						}
					}
				}(wk)
			}
			wg.Wait()

			// No lost wakeup: nothing is left parked and the component is
			// immediately writable again.
			s := p.shards[0]
			s.mu.Lock()
			left := len(s.waiters)
			s.mu.Unlock()
			if left != 0 {
				t.Fatalf("%d waiters left parked after drain", left)
			}
			ctx, cancelFn := context.WithTimeout(bgCtx, 5*time.Second)
			tok, err := p.Write(ctx, 0, 1)
			cancelFn()
			if err != nil {
				t.Fatalf("component not free after storm: %v", err)
			}
			if err := p.Release(tok); err != nil {
				t.Fatal(err)
			}

			// Exact accounting: every signal the shard delivered is classified
			// once, and every request that blocked and was satisfied received
			// exactly one delivery.
			wake, direct, spur := parkCounters(p)
			snap := p.Metrics().Snapshot()
			blocked := snap.Counters[obs.MSatisfied] - snap.Counters[obs.MImmediate]
			if wake+direct+spur != blocked {
				t.Fatalf("park accounting: wakeups=%d direct=%d spurious=%d (sum %d), want satisfied-immediate=%d",
					wake, direct, spur, wake+direct+spur, blocked)
			}
			if granted.Load() == 0 || cancelled.Load() == 0 {
				t.Logf("storm imbalance: granted=%d cancelled=%d (still valid, but jitter covered one side only)",
					granted.Load(), cancelled.Load())
			}
		})
	}
}

// TestParkSignalToWakeLatency is the regression test for the spin-mode
// oversleep bug: the old backoff ladder re-checked the signal only at rung
// boundaries and could sleep up to 127µs after signal had already fired.
// The parker now re-checks the state word before every sleep and caps the
// ladder at parkMaxSleep (8µs), so the post-signal latency is one rung plus
// scheduler slop. Wall-clock bounds are kept loose for noisy CI machines;
// an unbounded ladder or a lost wakeup fails them by orders of magnitude.
func TestParkSignalToWakeLatency(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 50
	}

	// Already-signaled waits must never sleep at all.
	for i := 0; i < trials; i++ {
		w := &waiter{sema: make(chan struct{}, 1)}
		w.signal()
		start := time.Now()
		w.wait(true)
		if d := time.Since(start); d > 100*time.Millisecond {
			t.Fatalf("trial %d: already-signaled wait slept %v", i, d)
		}
	}

	// Signal landing mid-burst: measure signal-to-wake and bound the median,
	// which an uncapped per-rung ladder inflates by orders of magnitude.
	lat := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		w := &waiter{sema: make(chan struct{}, 1)}
		done := make(chan time.Time, 1)
		go func() {
			w.wait(true)
			done <- time.Now()
		}()
		// Jitter the signal across the yield burst and into the sleep ladder.
		for y := 0; y < (i%16)*4; y++ {
			_ = y
		}
		time.Sleep(time.Duration(i%20) * time.Microsecond)
		t0 := time.Now()
		w.signal()
		select {
		case woke := <-done:
			if d := woke.Sub(t0); d > 0 {
				lat = append(lat, d)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("lost wakeup in spin mode")
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	median := lat[len(lat)/2]
	worst := lat[len(lat)-1]
	t.Logf("signal-to-wake: median=%v p100=%v over %d trials", median, worst, len(lat))
	if median > 10*time.Millisecond {
		t.Fatalf("median signal-to-wake latency %v; the capped ladder should resolve within one %v rung plus scheduler slop",
			median, parkMaxSleep)
	}
	if worst > time.Second {
		t.Fatalf("worst signal-to-wake latency %v", worst)
	}
}

// TestParkChanAblationMode exercises the legacy parker end to end — the
// park-overhead gate's baseline must stay correct, not just slow: contended
// grants, context cancellation, and the post-cancel accounting all behave
// identically to the semaphore parker.
func TestParkChanAblationMode(t *testing.T) {
	p := New(parkTestSpec(t),
		WithPlaceholders(),
		WithSelfCheck(),
		WithParking(ParkChan),
		WithFastPath(FastPathConfig{}))

	wtok, err := p.Write(bgCtx, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A cancelled waiter withdraws cleanly.
	ctx, cancel := context.WithTimeout(bgCtx, 10*time.Millisecond)
	if _, err := p.Write(ctx, 0, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled legacy wait: err=%v, want DeadlineExceeded", err)
	}
	cancel()
	// A parked waiter still gets its grant.
	got := make(chan error, 1)
	go func() {
		tok, err := p.Read(bgCtx, 0)
		if err == nil {
			err = p.Release(tok)
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := p.Release(wtok); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("legacy parked reader: %v", err)
	}
}

var bgCtx = context.Background()
