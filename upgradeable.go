package rwrnlp

import (
	"context"
	"errors"
	"fmt"

	"github.com/rtsync/rwrnlp/internal/core"
)

// ErrNotReading is returned by Upgrade/ReleaseRead when the upgradeable
// request is not in its optimistic read phase.
var ErrNotReading = errors.New("rwrnlp: upgradeable request is not in its read phase")

// Upgradeable is an in-flight upgradeable request (Sec. 3.6): the caller
// optimistically reads under read locks and may then atomically queue-jump
// to write access without re-contending from the back of the line — the
// write half kept its original timestamp the whole time.
//
// Lifecycle:
//
//	u, _ := p.AcquireUpgradeable(ctx, rs...)
//	if u.Reading() {
//	    // read the data
//	    if needWrite {
//	        u.Upgrade(ctx)     // blocks; data may have changed — re-read!
//	        // write the data
//	        u.Release()
//	    } else {
//	        u.ReleaseRead()    // done, write half canceled
//	    }
//	} else {
//	    // the write half won the race: full write access, no read segment
//	    // write the data
//	    u.Release()
//	}
type Upgradeable struct {
	s       *shard
	h       core.UpgradeHandle
	reading bool
	gate    bool // the pair holds its shard's writer gate (see fastpath.go)
}

// exitGate reopens the shard's writer gate once the pair can no longer
// write-lock anything (completed, read-released, or withdrawn). Idempotent:
// the several terminal paths of the pair's lifecycle may race only with
// themselves (an Upgradeable is single-owner), so a plain flag suffices.
func (u *Upgradeable) exitGate() {
	if u.gate {
		u.gate = false
		u.s.writerExit()
	}
}

// AcquireUpgradeable blocks until the upgradeable request holds either its
// read locks (the common case — check Reading) or, if the write half won the
// race, its write locks. If ctx is done first, the pair is withdrawn and
// ctx.Err() returned.
//
// The resources must lie within one declared component (ErrCrossComponent
// otherwise): the pair's two halves share one timestamp in one total order.
func (p *Protocol) AcquireUpgradeable(ctx context.Context, resources ...ResourceID) (*Upgradeable, error) {
	parts, err := p.split(resources, nil)
	if err != nil {
		return nil, err
	}
	if len(parts) > 1 {
		return nil, fmt.Errorf("%w: upgradeable footprint covers %d components", ErrCrossComponent, len(parts))
	}
	s := parts[0].s
	// The pair's write half is write-capable from issuance on (it may win
	// the race immediately), so the writer gate closes for the pair's whole
	// lifetime.
	gate := s.fastSlots != nil
	if gate {
		s.writerEnter()
	}
	// Announce the issuance to the writer fast path (and migrate a fast
	// writer holding the word) before taking the mutex; the intent can drop
	// right after unlock, which mirrored the issued pair into rsmLive.
	s.slowEnter()
	s.mu.Lock()
	h, err := s.rsm.IssueUpgradeable(s.tick(), resources, nil)
	if err != nil {
		s.unlock()
		s.slowExit()
		if gate {
			s.writerExit()
		}
		return nil, err
	}
	// The pair is in the RSM: mirror it into rsmLive now so the issuance
	// intent can drop before the mutex does.
	s.syncLive()
	s.slowExit()
	u := &Upgradeable{s: s, h: h, gate: gate}
	for {
		switch s.rsm.UpgradePhase(h) {
		case core.UpgradeReading:
			u.reading = true
			s.unlock()
			return u, nil
		case core.UpgradeWriting:
			s.unlock()
			return u, nil
		}
		// Neither half satisfied yet: wait for the read half (the write
		// half's satisfaction cancels it, which also signals the waiter).
		w := s.newWaiter()
		s.waiters[h.ReadID] = w
		s.unlock()
		if err := s.awaitCtx(ctx, w,
			func() bool {
				ph := s.rsm.UpgradePhase(h)
				return ph == core.UpgradeReading || ph == core.UpgradeWriting
			},
			func() error {
				delete(s.waiters, h.ReadID)
				return s.rsm.CancelUpgradeable(s.tick(), h)
			}); err != nil {
			u.exitGate()
			return nil, err
		}
		s.mu.Lock()
	}
}

// Reading reports whether the request is in its optimistic read phase.
func (u *Upgradeable) Reading() bool { return u.reading }

// Upgrade ends the read segment and blocks until write access is granted.
// The resources may have been modified by other writers in between; the
// caller must re-validate anything it read (Sec. 3.6). After Upgrade
// returns nil, finish with Release. If ctx is done before write access is
// granted, the write half is withdrawn — the read locks are already gone at
// that point, so the pair is over and Release reports ErrAlreadyReleased.
func (u *Upgradeable) Upgrade(ctx context.Context) error {
	s := u.s
	s.mu.Lock()
	if !u.reading {
		s.unlock()
		return ErrNotReading
	}
	u.reading = false
	if err := s.rsm.FinishRead(s.tick(), u.h, true); err != nil {
		s.unlock()
		return err
	}
	if s.rsm.UpgradePhase(u.h) == core.UpgradeWriting {
		s.selfCheck()
		s.unlock()
		return nil
	}
	w := s.newWaiter()
	s.waiters[u.h.WriteID] = w
	s.selfCheck()
	s.unlock()
	err := s.awaitCtx(ctx, w,
		func() bool {
			if s.rsm.UpgradePhase(u.h) == core.UpgradeWriting {
				delete(s.waiters, u.h.WriteID)
				return true
			}
			return false
		},
		func() error {
			delete(s.waiters, u.h.WriteID)
			return s.rsm.CancelUpgradeable(s.tick(), u.h)
		})
	if err != nil {
		// The pair is over: the read locks were released by FinishRead and
		// the write half has been withdrawn.
		u.exitGate()
	}
	return err
}

// ReleaseRead ends the read segment without upgrading: the write half is
// canceled and the request is complete.
func (u *Upgradeable) ReleaseRead() error {
	s := u.s
	s.mu.Lock()
	if !u.reading {
		s.unlock()
		return ErrNotReading
	}
	u.reading = false
	err := s.rsm.FinishRead(s.tick(), u.h, false)
	s.selfCheck()
	s.unlock()
	if err == nil {
		// Write half canceled, read locks released: the pair is complete.
		u.exitGate()
	}
	return err
}

// Release ends the write segment (after Upgrade, or when the write half won
// the race at acquisition). A second Release — or a Release after a
// context-canceled Upgrade — returns ErrAlreadyReleased.
func (u *Upgradeable) Release() error {
	err := u.s.release(u.h.WriteID)
	if err == nil {
		u.exitGate()
	}
	return err
}
