package rwrnlp

import (
	"errors"

	"github.com/rtsync/rwrnlp/internal/core"
)

// ErrNotReading is returned by Upgrade/ReleaseRead when the upgradeable
// request is not in its optimistic read phase.
var ErrNotReading = errors.New("rwrnlp: upgradeable request is not in its read phase")

// Upgradeable is an in-flight upgradeable request (Sec. 3.6): the caller
// optimistically reads under read locks and may then atomically queue-jump
// to write access without re-contending from the back of the line — the
// write half kept its original timestamp the whole time.
//
// Lifecycle:
//
//	u, _ := p.AcquireUpgradeable(rs...)
//	if u.Reading() {
//	    // read the data
//	    if needWrite {
//	        u.Upgrade()        // blocks; data may have changed — re-read!
//	        // write the data
//	        u.Release()
//	    } else {
//	        u.ReleaseRead()    // done, write half canceled
//	    }
//	} else {
//	    // the write half won the race: full write access, no read segment
//	    // write the data
//	    u.Release()
//	}
type Upgradeable struct {
	p       *Protocol
	h       core.UpgradeHandle
	reading bool
}

// AcquireUpgradeable blocks until the upgradeable request holds either its
// read locks (the common case — check Reading) or, if the write half won the
// race, its write locks.
func (p *Protocol) AcquireUpgradeable(resources ...ResourceID) (*Upgradeable, error) {
	p.mu.Lock()
	h, err := p.rsm.IssueUpgradeable(p.tick(), resources, nil)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	u := &Upgradeable{p: p, h: h}
	for {
		switch p.rsm.UpgradePhase(h) {
		case core.UpgradeReading:
			u.reading = true
			p.mu.Unlock()
			return u, nil
		case core.UpgradeWriting:
			p.mu.Unlock()
			return u, nil
		}
		// Neither half satisfied yet: wait for the read half (the write
		// half's satisfaction cancels it, which also signals the waiter).
		w := newWaiter()
		p.waiters[h.ReadID] = w
		p.mu.Unlock()
		w.wait(p.opt.Spin)
		p.mu.Lock()
	}
}

// Reading reports whether the request is in its optimistic read phase.
func (u *Upgradeable) Reading() bool { return u.reading }

// Upgrade ends the read segment and blocks until write access is granted.
// The resources may have been modified by other writers in between; the
// caller must re-validate anything it read (Sec. 3.6). After Upgrade
// returns, finish with Release.
func (u *Upgradeable) Upgrade() error {
	p := u.p
	p.mu.Lock()
	if !u.reading {
		p.mu.Unlock()
		return ErrNotReading
	}
	u.reading = false
	if err := p.rsm.FinishRead(p.tick(), u.h, true); err != nil {
		p.mu.Unlock()
		return err
	}
	if p.rsm.UpgradePhase(u.h) == core.UpgradeWriting {
		p.mu.Unlock()
		return nil
	}
	w := newWaiter()
	p.waiters[u.h.WriteID] = w
	p.mu.Unlock()
	w.wait(p.opt.Spin)
	return nil
}

// ReleaseRead ends the read segment without upgrading: the write half is
// canceled and the request is complete.
func (u *Upgradeable) ReleaseRead() error {
	p := u.p
	p.mu.Lock()
	defer p.mu.Unlock()
	if !u.reading {
		return ErrNotReading
	}
	u.reading = false
	return p.rsm.FinishRead(p.tick(), u.h, false)
}

// Release ends the write segment (after Upgrade, or when the write half won
// the race at acquisition).
func (u *Upgradeable) Release() error {
	p := u.p
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rsm.Complete(p.tick(), u.h.WriteID)
}
