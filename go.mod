module github.com/rtsync/rwrnlp

go 1.22
