package rwrnlp_test

import (
	"context"
	"errors"
	"fmt"

	"github.com/rtsync/rwrnlp"
)

// The basic lifecycle: declare the resource system, acquire a multi-resource
// read snapshot and a write, release.
func Example() {
	spec := rwrnlp.NewSpecBuilder(3)
	// Potential multi-resource reads must be declared (they drive the
	// phase-fair expansion machinery).
	if err := spec.DeclareRequest([]rwrnlp.ResourceID{0, 1, 2}, nil); err != nil {
		panic(err)
	}
	p := rwrnlp.New(spec.Build(), rwrnlp.WithPlaceholders())
	ctx := context.Background()

	// Atomic multi-resource write: no lock ordering to get wrong, no
	// deadlock possible.
	w, err := p.Write(ctx, 0, 1)
	if err != nil {
		panic(err)
	}
	if err := p.Release(w); err != nil {
		panic(err)
	}

	// Consistent three-resource read snapshot; concurrent readers share.
	r, err := p.Read(ctx, 0, 1, 2)
	if err != nil {
		panic(err)
	}
	if err := p.Release(r); err != nil {
		panic(err)
	}
	fmt.Println("done")
	// Output: done
}

// Mixed requests (Sec. 3.5): read some resources while writing others in
// one atomic acquisition.
func ExampleProtocol_Acquire() {
	spec := rwrnlp.NewSpecBuilder(3)
	if err := spec.DeclareRequest([]rwrnlp.ResourceID{0, 1}, []rwrnlp.ResourceID{2}); err != nil {
		panic(err)
	}
	p := rwrnlp.New(spec.Build())

	tok, err := p.Acquire(context.Background(), []rwrnlp.ResourceID{0, 1}, []rwrnlp.ResourceID{2})
	if err != nil {
		panic(err)
	}
	// ... read resources 0 and 1, write resource 2 ...
	if err := p.Release(tok); err != nil {
		panic(err)
	}
	fmt.Println("mixed request done")
	// Output: mixed request done
}

// Read-to-write upgrading (Sec. 3.6): optimistically read, escalate only
// when a write turns out to be necessary — without re-queueing behind later
// writers.
func ExampleProtocol_AcquireUpgradeable() {
	spec := rwrnlp.NewSpecBuilder(1)
	p := rwrnlp.New(spec.Build())
	ctx := context.Background()

	needWrite := true // decided from the data read, in a real program

	u, err := p.AcquireUpgradeable(ctx, 0)
	if err != nil {
		panic(err)
	}
	if u.Reading() {
		// ... read the resource ...
		if needWrite {
			if err := u.Upgrade(ctx); err != nil {
				panic(err)
			}
			// ... re-validate and write: the data may have changed between
			// the phases ...
			if err := u.Release(); err != nil {
				panic(err)
			}
		} else if err := u.ReleaseRead(); err != nil {
			panic(err)
		}
	} else {
		// The write half won the race: we already hold write access.
		if err := u.Release(); err != nil {
			panic(err)
		}
	}
	fmt.Println("upgraded")
	// Output: upgraded
}

// Incremental locking (Sec. 3.7): declare the full potential set, then take
// possession step by step — total blocking stays within one request's bound.
func ExampleProtocol_AcquireIncremental() {
	spec := rwrnlp.NewSpecBuilder(3)
	if err := spec.DeclareRequest(nil, []rwrnlp.ResourceID{0, 1, 2}); err != nil {
		panic(err)
	}
	p := rwrnlp.New(spec.Build(), rwrnlp.WithPlaceholders())
	ctx := context.Background()

	path := []rwrnlp.ResourceID{0, 1, 2}
	inc, err := p.AcquireIncremental(ctx, nil, path, nil, path[:1])
	if err != nil {
		panic(err)
	}
	for _, next := range path[1:] {
		// ... work in the sectors held so far ...
		if err := inc.Acquire(ctx, next); err != nil {
			panic(err)
		}
	}
	if err := inc.Release(); err != nil {
		panic(err)
	}
	fmt.Println("walked the path")
	// Output: walked the path
}

// Typed sentinel errors make failure modes testable with errors.Is.
func ExampleProtocol_Release_alreadyReleased() {
	p := rwrnlp.New(rwrnlp.NewSpecBuilder(2).Build())
	tok, err := p.Write(context.Background(), 0)
	if err != nil {
		panic(err)
	}
	if err := p.Release(tok); err != nil {
		panic(err)
	}
	err = p.Release(tok)
	fmt.Println(errors.Is(err, rwrnlp.ErrAlreadyReleased))
	// Output: true
}
