// Package analysis implements the paper's worst-case blocking bounds
// (Theorems 1–2 and the pi-blocking discussions of Secs. 3.3 and 3.8) and
// the s-oblivious schedulability tests used for the forecast evaluation
// (E14): execution-time inflation by blocking bounds followed by standard
// multiprocessor schedulability tests (GFB for global EDF, first-fit
// partitioning for partitioned EDF).
package analysis

import (
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// Bounds carries the quantities the paper's bounds are stated in.
type Bounds struct {
	M  int          // processors
	Lr simtime.Time // L^r_max: longest read critical section
	Lw simtime.Time // L^w_max: longest write critical section
}

// BoundsOf extracts the bound parameters from a system.
func BoundsOf(sys *taskmodel.System) Bounds {
	lr, lw := sys.CSBounds()
	return Bounds{M: sys.M, Lr: lr, Lw: lw}
}

// Lmax returns max(L^r_max, L^w_max).
func (b Bounds) Lmax() simtime.Time {
	if b.Lr > b.Lw {
		return b.Lr
	}
	return b.Lw
}

// ReadAcq is Theorem 1: the worst-case acquisition delay of a read request
// under the R/W RNLP is L^w_max + L^r_max — O(1), independent of m.
func (b Bounds) ReadAcq() simtime.Time { return b.Lr + b.Lw }

// WriteAcq is Theorem 2: the worst-case acquisition delay of a write request
// under the R/W RNLP is (m−1)(L^r_max + L^w_max) — O(m).
func (b Bounds) WriteAcq() simtime.Time {
	return simtime.Time(b.M-1) * (b.Lr + b.Lw)
}

// RequestSpan is the worst-case span of one complete request: acquisition
// delay plus the critical section itself. This bounds how long a
// non-preemptive spinning job can occupy its processor (Sec. 3.3) and how
// long a priority donor stays suspended (Sec. 3.8): the "acquisition delay
// plus the maximum critical section length".
func (b Bounds) RequestSpan() simtime.Time {
	return b.WriteAcq() + b.Lw
}

// SpinPiBlock bounds the Def.-1 pi-blocking a job incurs under Rule S1: at
// release it may find every processor of its cluster occupied by
// non-preemptive lower-priority jobs and must wait for one request span.
// The paper quotes m·max(L^w, L^r) for this term by analogy with
// single-resource spin locks; RequestSpan is the form our simulator
// validates exactly (both are O(m); see EXPERIMENTS.md E7).
func (b Bounds) SpinPiBlock() simtime.Time { return b.RequestSpan() }

// DonationPiBlock bounds the s-oblivious pi-blocking caused by priority
// donation, which affects every job in the system (Sec. 3.8):
// L^w_max + (m−1)(L^r_max + L^w_max) = O(m).
func (b Bounds) DonationPiBlock() simtime.Time { return b.RequestSpan() }

// Inflate returns overhead-aware bounds: every critical section passes
// through the protocol twice (entry + release, 2·inv) and its holder may be
// (re)dispatched up to twice around it (2·ctx) — the matching accounting
// for sim.Overheads. The inflated L^r/L^w plug into the same theorems.
func (b Bounds) Inflate(inv, ctx simtime.Time) Bounds {
	add := 2*inv + 2*ctx
	return Bounds{M: b.M, Lr: b.Lr + add, Lw: b.Lw + add}
}

// MutexAcq is the acquisition-delay bound of the original mutex RNLP [19]
// for any request, read or write: (m−1)·L_max — readers receive no O(1)
// guarantee because they are treated as writers.
func (b Bounds) MutexAcq() simtime.Time {
	return simtime.Time(b.M-1) * b.Lmax()
}

// groupBounds computes per-group CS-length bounds for group protocols: each
// request maps to exactly one group, so the group's L^r/L^w are maxima over
// the requests it serves. Under a group mutex every request is a write.
func groupBounds(sys *taskmodel.System, proto sim.Protocol) []Bounds {
	group, n := sim.Groups(proto, sys)
	gb := make([]Bounds, n)
	for i := range gb {
		gb[i].M = sys.M
	}
	for _, t := range sys.Tasks {
		for _, seg := range t.Segments {
			if seg.Kind == taskmodel.SegCompute {
				continue
			}
			g := segGroup(seg, group)
			cs := seg.CSLength()
			isWrite := seg.IsWrite() || proto == sim.ProtoGroupMutex || proto == sim.ProtoMutexRNLP
			if isWrite {
				if cs > gb[g].Lw {
					gb[g].Lw = cs
				}
			} else if cs > gb[g].Lr {
				gb[g].Lr = cs
			}
		}
	}
	return gb
}

func segGroup(seg taskmodel.Segment, group []int) int {
	if len(seg.Read) > 0 {
		return group[seg.Read[0]]
	}
	return group[seg.Write[0]]
}
