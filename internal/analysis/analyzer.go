package analysis

import (
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// Analyzer computes per-task blocking bounds for one (protocol, progress
// mechanism) pair and runs schedulability tests on the inflated system.
//
// The inflation follows the s-oblivious methodology the paper adopts
// (Sec. 3.8): a job's worst-case suspensions (or spin times) are analytically
// treated as extra computation, e'_i = e_i + b_i, after which a standard
// suspension-free multiprocessor schedulability test applies.
type Analyzer struct {
	sys   *taskmodel.System
	proto sim.Protocol
	prog  sim.Progress

	b     Bounds
	gb    []Bounds
	group []int
}

// NewAnalyzer prepares an analyzer for the system under the given protocol
// and progress mechanism.
func NewAnalyzer(sys *taskmodel.System, proto sim.Protocol, prog sim.Progress) *Analyzer {
	a := &Analyzer{sys: sys, proto: proto, prog: prog, b: BoundsOf(sys)}
	if proto == sim.ProtoGroupPF || proto == sim.ProtoGroupMutex {
		a.gb = groupBounds(sys, proto)
		a.group, _ = sim.Groups(proto, sys)
	}
	return a
}

// RequestBound returns the worst-case acquisition delay of one request
// segment under the analyzer's protocol. For group protocols the bound uses
// the CS lengths of the request's group.
func (a *Analyzer) RequestBound(seg taskmodel.Segment) simtime.Time {
	if seg.Kind == taskmodel.SegCompute {
		return 0
	}
	switch a.proto {
	case sim.ProtoNone:
		return 0
	case sim.ProtoRWRNLP:
		if seg.Kind == taskmodel.SegUpgrade {
			// Each half of an upgradeable request blocks like a write
			// (Sec. 3.6); the two waits are bounded independently.
			return 2 * a.b.WriteAcq()
		}
		if seg.IsWrite() {
			return a.b.WriteAcq()
		}
		return a.b.ReadAcq()
	case sim.ProtoMutexRNLP:
		return a.b.MutexAcq()
	default: // group protocols
		g := a.gb[segGroup(seg, a.group)]
		if a.proto == sim.ProtoGroupMutex {
			return simtime.Time(g.M-1) * g.Lmax()
		}
		if seg.IsWrite() {
			return g.WriteAcq()
		}
		return g.ReadAcq()
	}
}

// RequestSpanBound is the worst-case span (acquisition delay + critical
// section) of any single request under the analyzer's protocol — the
// duration a non-preemptive spinner can occupy a processor (Rule S1) or a
// priority donor can stay suspended (Sec. 3.8).
func (a *Analyzer) RequestSpanBound() simtime.Time {
	switch a.proto {
	case sim.ProtoNone:
		return 0
	case sim.ProtoRWRNLP:
		return a.b.RequestSpan()
	case sim.ProtoMutexRNLP:
		return a.b.MutexAcq() + a.b.Lmax()
	default: // group protocols: the worst group's span
		var worst simtime.Time
		for _, g := range a.gb {
			var s simtime.Time
			if a.proto == sim.ProtoGroupMutex {
				s = simtime.Time(g.M-1)*g.Lmax() + g.Lmax()
			} else {
				s = g.RequestSpan()
			}
			if s > worst {
				worst = s
			}
		}
		return worst
	}
}

// TaskBlocking returns b_i: the per-job blocking inflation of task t — the
// sum of its own acquisition-delay bounds plus the per-job progress-
// mechanism term (non-preemptive blocking under Rule S1; donation duty under
// priority donation), which affects every task, resource-using or not. Both
// terms are one request span of the analyzer's protocol.
func (a *Analyzer) TaskBlocking(t *taskmodel.Task) simtime.Time {
	if a.proto == sim.ProtoNone {
		return 0
	}
	var sum simtime.Time
	for _, seg := range t.Segments {
		sum += a.RequestBound(seg)
	}
	sum += a.RequestSpanBound()
	return sum
}

// InflatedWCET returns e'_i = e_i + b_i.
func (a *Analyzer) InflatedWCET(t *taskmodel.Task) simtime.Time {
	return t.WCET() + a.TaskBlocking(t)
}

// InflatedUtil returns u'_i = e'_i / p_i.
func (a *Analyzer) InflatedUtil(t *taskmodel.Task) float64 {
	return float64(a.InflatedWCET(t)) / float64(t.Period)
}

// SchedulableGEDF applies the Goossens–Funk–Baruah bound for global EDF with
// implicit deadlines to the inflated system:
// U' ≤ m − (m−1)·u'_max, with every u'_i ≤ 1.
func (a *Analyzer) SchedulableGEDF() bool {
	total, umax := 0.0, 0.0
	for _, t := range a.sys.Tasks {
		u := a.InflatedUtil(t)
		if u > 1 {
			return false
		}
		total += u
		if u > umax {
			umax = u
		}
	}
	m := float64(a.sys.M)
	return total <= m-(m-1)*umax+1e-9
}

// SchedulablePEDF applies first-fit-decreasing partitioning of the inflated
// utilizations onto m uniprocessor EDF bins (capacity 1, exact for implicit
// deadlines).
func (a *Analyzer) SchedulablePEDF() bool {
	us := make([]float64, 0, len(a.sys.Tasks))
	for _, t := range a.sys.Tasks {
		u := a.InflatedUtil(t)
		if u > 1 {
			return false
		}
		us = append(us, u)
	}
	// Sort descending.
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j] > us[j-1]; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
	bins := make([]float64, a.sys.M)
	for _, u := range us {
		placed := false
		for i := range bins {
			if bins[i]+u <= 1+1e-9 {
				bins[i] += u
				placed = true
				break
			}
		}
		if !placed {
			return false
		}
	}
	return true
}

// SchedulableCEDF partitions tasks onto m/c clusters (first-fit decreasing
// by inflated utilization, capacity c per cluster) and applies the GFB
// bound within each cluster.
func (a *Analyzer) SchedulableCEDF(c int) bool {
	if c <= 0 || a.sys.M%c != 0 {
		return false
	}
	type clusterAcc struct {
		total, umax float64
	}
	nclust := a.sys.M / c
	us := make([]float64, 0, len(a.sys.Tasks))
	for _, t := range a.sys.Tasks {
		u := a.InflatedUtil(t)
		if u > 1 {
			return false
		}
		us = append(us, u)
	}
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j] > us[j-1]; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
	cl := make([]clusterAcc, nclust)
	cf := float64(c)
	for _, u := range us {
		placed := false
		for i := range cl {
			umax := cl[i].umax
			if u > umax {
				umax = u
			}
			if cl[i].total+u <= cf-(cf-1)*umax+1e-9 {
				cl[i].total += u
				cl[i].umax = umax
				placed = true
				break
			}
		}
		if !placed {
			return false
		}
	}
	return true
}
