package analysis

import (
	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// Refined, conflict-aware blocking analysis for the R/W RNLP — the "more
// fine-grained blocking analysis" the paper leaves as future work (Sec. 3.4
// end, Sec. 4 end). Two refinements over the coarse Theorem 1/2 bounds:
//
//  1. Per-conflict-component critical-section maxima. A request can only be
//     blocked — directly or transitively through queues and entitlement —
//     by requests whose (transitively closed) resource sets intersect the
//     same component of the sharing graph, so L^r/L^w maxima are taken per
//     component instead of globally. (The proofs of Lemmas 5–6 and
//     Theorems 1–2 only ever chain within a component: every queue contains
//     only requests pertaining to that resource.)
//
//  2. Writer-population limits. Theorem 2 charges (m−1) earlier-timestamped
//     writers; but only writers that can share a queue with the request —
//     i.e. whose transitively CLOSED pertain sets intersect (placeholder
//     queues count: a write is delayed behind an earlier closure-sharing
//     write's placeholder until that write becomes entitled) — can ever
//     precede it. Each blocking writer is a distinct job, and under the
//     standard assumption that each task has at most one incomplete job at
//     a time (implied by the response-time ≤ period condition the
//     schedulability test itself establishes), the number of competing
//     writers is at most the number of OTHER tasks owning a
//     closure-conflicting write request. The writer bound becomes
//     min(m−1, n_w(R)) · (L^r_c + L^w_c).
//
// Both refinements are sound per the argument above and collapse to the
// paper's bounds in the fully shared case — on sparse sharing graphs they
// can be dramatically tighter, which is exactly what separates fine-grained
// locking from group locking analytically (the coarse bounds cannot tell
// them apart; see EXPERIMENTS.md E14).

// RefinedAnalyzer extends Analyzer with conflict-aware bounds for the
// R/W RNLP.
type RefinedAnalyzer struct {
	*Analyzer
	comp      []int // resource -> conflict component
	compB     []Bounds
	taskWSets []core.ResourceSet // per task: union of closed write-request pertain sets
}

// NewRefinedAnalyzer builds the refined analyzer (R/W RNLP only; other
// protocols keep their coarse bounds).
func NewRefinedAnalyzer(sys *taskmodel.System, prog sim.Progress) *RefinedAnalyzer {
	ra := &RefinedAnalyzer{Analyzer: NewAnalyzer(sys, sim.ProtoRWRNLP, prog)}
	// The conflict components coincide with the group-lock grouping: the
	// connected components of requested-together ∪ read-shared.
	ra.comp, _ = sim.Groups(sim.ProtoGroupPF, sys)
	n := 0
	for _, g := range ra.comp {
		if g+1 > n {
			n = g + 1
		}
	}
	ra.compB = make([]Bounds, n)
	for i := range ra.compB {
		ra.compB[i].M = sys.M
	}
	for _, t := range sys.Tasks {
		for _, seg := range t.Segments {
			if seg.Kind == taskmodel.SegCompute {
				continue
			}
			g := segGroup(seg, ra.comp)
			cs := seg.CSLength()
			if seg.IsWrite() {
				if cs > ra.compB[g].Lw {
					ra.compB[g].Lw = cs
				}
			} else if cs > ra.compB[g].Lr {
				ra.compB[g].Lr = cs
			}
		}
	}
	// Per-task closed write pertain sets for the population refinement.
	ra.taskWSets = make([]core.ResourceSet, len(sys.Tasks))
	for ti, t := range sys.Tasks {
		for _, seg := range t.Segments {
			if seg.Kind == taskmodel.SegCompute || !seg.IsWrite() {
				continue
			}
			ra.taskWSets[ti].UnionWith(closedPertain(sys, seg))
		}
	}
	return ra
}

// closedPertain is the transitively closed resource set a request pertains
// to: ∪ S(ℓ) over its needed resources (queues and placeholder queues).
func closedPertain(sys *taskmodel.System, seg taskmodel.Segment) core.ResourceSet {
	var n core.ResourceSet
	for _, id := range seg.Read {
		n.Add(id)
	}
	for _, id := range seg.Write {
		n.Add(id)
	}
	return sys.Spec.Expand(n)
}

// conflictingWriters returns the number of OTHER tasks owning a write
// request whose closed pertain set intersects the request's.
func (ra *RefinedAnalyzer) conflictingWriters(owner int, seg taskmodel.Segment) int {
	p := closedPertain(ra.sys, seg)
	n := 0
	for ti := range ra.sys.Tasks {
		if ti == owner {
			continue
		}
		if ra.taskWSets[ti].Intersects(p) {
			n++
		}
	}
	return n
}

// RequestBoundRefined is the conflict-aware acquisition-delay bound of one
// request segment of the given task.
func (ra *RefinedAnalyzer) RequestBoundRefined(taskIdx int, seg taskmodel.Segment) simtime.Time {
	if seg.Kind == taskmodel.SegCompute {
		return 0
	}
	g := segGroup(seg, ra.comp)
	b := ra.compB[g]
	sum := b.Lr + b.Lw
	if !seg.IsWrite() {
		return sum // Theorem 1, component CS lengths
	}
	writers := ra.conflictingWriters(taskIdx, seg)
	if writers > ra.sys.M-1 {
		writers = ra.sys.M - 1
	}
	bound := simtime.Time(writers) * sum
	if seg.Kind == taskmodel.SegUpgrade {
		bound *= 2 // both halves wait like writers
	}
	// A writer with zero conflicting writers can still wait for one read
	// phase of current readers (it may not be satisfiable at issuance if a
	// reader holds a resource): one component read phase.
	if bound < b.Lr {
		bound = b.Lr
	}
	return bound
}

// TaskBlockingRefined is b_i under the refined analysis.
func (ra *RefinedAnalyzer) TaskBlockingRefined(taskIdx int) simtime.Time {
	t := ra.sys.Tasks[taskIdx]
	var sum simtime.Time
	for _, seg := range t.Segments {
		sum += ra.RequestBoundRefined(taskIdx, seg)
	}
	// Per-job progress term: the worst single request span anywhere in the
	// system, computed with refined per-request bounds.
	sum += ra.worstSpanRefined()
	return sum
}

func (ra *RefinedAnalyzer) worstSpanRefined() simtime.Time {
	var worst simtime.Time
	for ti, t := range ra.sys.Tasks {
		for _, seg := range t.Segments {
			if seg.Kind == taskmodel.SegCompute {
				continue
			}
			s := ra.RequestBoundRefined(ti, seg) + seg.CSLength()
			if s > worst {
				worst = s
			}
		}
	}
	return worst
}

// InflatedUtilRefined returns u'_i with refined blocking.
func (ra *RefinedAnalyzer) InflatedUtilRefined(taskIdx int) float64 {
	t := ra.sys.Tasks[taskIdx]
	return float64(t.WCET()+ra.TaskBlockingRefined(taskIdx)) / float64(t.Period)
}

// SchedulableGEDFRefined applies the GFB bound with refined inflation.
func (ra *RefinedAnalyzer) SchedulableGEDFRefined() bool {
	total, umax := 0.0, 0.0
	for ti := range ra.sys.Tasks {
		u := ra.InflatedUtilRefined(ti)
		if u > 1 {
			return false
		}
		total += u
		if u > umax {
			umax = u
		}
	}
	m := float64(ra.sys.M)
	return total <= m-(m-1)*umax+1e-9
}
