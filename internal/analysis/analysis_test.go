package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
	"github.com/rtsync/rwrnlp/internal/workload"
)

func TestBoundFormulas(t *testing.T) {
	b := Bounds{M: 4, Lr: 10, Lw: 30}
	if got := b.ReadAcq(); got != 40 {
		t.Errorf("ReadAcq = %d, want 40", got)
	}
	if got := b.WriteAcq(); got != 120 {
		t.Errorf("WriteAcq = %d, want 120", got)
	}
	if got := b.RequestSpan(); got != 150 {
		t.Errorf("RequestSpan = %d, want 150", got)
	}
	if got := b.MutexAcq(); got != 90 {
		t.Errorf("MutexAcq = %d, want 90", got)
	}
	if got := b.Lmax(); got != 30 {
		t.Errorf("Lmax = %d, want 30", got)
	}
}

// Theorem 1's point: the reader bound is constant in m while the writer
// (and mutex) bounds grow linearly.
func TestReaderBoundConstantInM(t *testing.T) {
	for m := 2; m <= 64; m *= 2 {
		b := Bounds{M: m, Lr: 10, Lw: 30}
		if b.ReadAcq() != 40 {
			t.Fatalf("m=%d: reader bound %d varies with m", m, b.ReadAcq())
		}
		if b.WriteAcq() != simtime.Time(m-1)*40 {
			t.Fatalf("m=%d: writer bound %d not linear", m, b.WriteAcq())
		}
	}
}

func tinySystem(util float64, read bool) *taskmodel.System {
	sb := core.NewSpecBuilder(2)
	_ = sb.DeclareReadGroup(0, 1)
	seg := taskmodel.Segment{Kind: taskmodel.SegRequest, Duration: 100_000}
	if read {
		seg.Read = []core.ResourceID{0}
	} else {
		seg.Write = []core.ResourceID{0}
	}
	period := simtime.Time(float64(200_000) / util)
	return &taskmodel.System{
		Spec: sb.Build(), M: 4, ClusterSize: 4,
		Tasks: []*taskmodel.Task{{
			ID: 0, Period: period, Deadline: period,
			Segments: []taskmodel.Segment{
				{Kind: taskmodel.SegCompute, Duration: 100_000},
				seg,
			},
		}},
	}
}

func TestAnalyzerInflation(t *testing.T) {
	sys := tinySystem(0.2, true)
	a := NewAnalyzer(sys, sim.ProtoRWRNLP, sim.SpinNP)
	tk := sys.Tasks[0]
	// Read request: bound Lr + Lw = 100k + 0 (no writes in system) = 100k;
	// per-job spin term (m−1)(Lr+Lw)+Lw = 300k.
	want := simtime.Time(100_000 + 300_000)
	if got := a.TaskBlocking(tk); got != want {
		t.Errorf("TaskBlocking = %d, want %d", got, want)
	}
	if got := a.InflatedWCET(tk); got != tk.WCET()+want {
		t.Errorf("InflatedWCET = %d", got)
	}
	none := NewAnalyzer(sys, sim.ProtoNone, sim.SpinNP)
	if none.TaskBlocking(tk) != 0 {
		t.Error("ProtoNone has nonzero blocking")
	}
}

func TestSchedulabilityTestsBasic(t *testing.T) {
	// Four independent tasks of utilization 0.2 on 4 CPUs: schedulable
	// under everything.
	sb := core.NewSpecBuilder(1)
	var tasks []*taskmodel.Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, &taskmodel.Task{
			ID: i, Period: 1_000_000, Deadline: 1_000_000,
			Segments: []taskmodel.Segment{{Kind: taskmodel.SegCompute, Duration: 200_000}},
		})
	}
	sys := &taskmodel.System{Spec: sb.Build(), M: 4, ClusterSize: 4, Tasks: tasks}
	a := NewAnalyzer(sys, sim.ProtoNone, sim.SpinNP)
	if !a.SchedulableGEDF() || !a.SchedulablePEDF() || !a.SchedulableCEDF(2) {
		t.Error("light independent system deemed unschedulable")
	}

	// A task with u > 1 fails everything.
	over := &taskmodel.System{Spec: sb.Build(), M: 4, ClusterSize: 4,
		Tasks: []*taskmodel.Task{{ID: 0, Period: 100, Deadline: 100,
			Segments: []taskmodel.Segment{{Kind: taskmodel.SegCompute, Duration: 200}}}}}
	ao := NewAnalyzer(over, sim.ProtoNone, sim.SpinNP)
	if ao.SchedulableGEDF() || ao.SchedulablePEDF() || ao.SchedulableCEDF(2) {
		t.Error("overloaded task deemed schedulable")
	}

	// PEDF bin packing: 5 tasks of u=0.6 do not fit on 4 CPUs, but 4 do.
	var five []*taskmodel.Task
	for i := 0; i < 5; i++ {
		five = append(five, &taskmodel.Task{ID: i, Period: 1_000_000, Deadline: 1_000_000,
			Segments: []taskmodel.Segment{{Kind: taskmodel.SegCompute, Duration: 600_000}}})
	}
	s5 := &taskmodel.System{Spec: sb.Build(), M: 4, ClusterSize: 1, Tasks: five}
	if NewAnalyzer(s5, sim.ProtoNone, sim.SpinNP).SchedulablePEDF() {
		t.Error("five 0.6-tasks packed into four unit bins")
	}
	s4 := &taskmodel.System{Spec: sb.Build(), M: 4, ClusterSize: 1, Tasks: five[:4]}
	if !NewAnalyzer(s4, sim.ProtoNone, sim.SpinNP).SchedulablePEDF() {
		t.Error("four 0.6-tasks not packed into four unit bins")
	}
}

// On read-heavy workloads with many processors, the R/W RNLP admits at
// least as many task sets as the mutex RNLP and the group mutex — the
// paper's raison d'être.
func TestSchedulabilityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := workload.Params{
		M: 8, NumTasks: 24, Util: workload.UtilUniformLight,
		NumResources: 8, AccessProb: 0.5, ReadRatio: 0.9,
		NestedProb: 0.3, CSMin: 10_000, CSMax: 50_000,
	}
	counts := map[sim.Protocol]int{}
	trials := 60
	for i := 0; i < trials; i++ {
		sys := workload.Generate(rng, p)
		for _, proto := range []sim.Protocol{sim.ProtoNone, sim.ProtoRWRNLP, sim.ProtoMutexRNLP, sim.ProtoGroupMutex} {
			if NewAnalyzer(sys, proto, sim.SpinNP).SchedulableGEDF() {
				counts[proto]++
			}
		}
	}
	if counts[sim.ProtoNone] < counts[sim.ProtoRWRNLP] {
		t.Errorf("none %d < rw-rnlp %d", counts[sim.ProtoNone], counts[sim.ProtoRWRNLP])
	}
	if counts[sim.ProtoRWRNLP] < counts[sim.ProtoMutexRNLP] {
		t.Errorf("rw-rnlp %d < mutex-rnlp %d (read-heavy workload)", counts[sim.ProtoRWRNLP], counts[sim.ProtoMutexRNLP])
	}
	if counts[sim.ProtoRWRNLP] == 0 {
		t.Error("rw-rnlp admitted nothing; workload too hard to discriminate")
	}
}

// Soundness spot check: when the analyzer deems a system schedulable under
// the spin-based R/W RNLP with global EDF, simulation finds no deadline
// misses.
func TestSchedulabilitySoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := workload.Params{
		M: 4, NumTasks: 8, Util: workload.UtilUniformLight,
		NumResources: 4, AccessProb: 0.8, ReadRatio: 0.5,
		NestedProb: 0.4, CSMin: 10_000, CSMax: 100_000,
	}
	checked := 0
	for i := 0; i < 40 && checked < 10; i++ {
		sys := workload.Generate(rng, p)
		a := NewAnalyzer(sys, sim.ProtoRWRNLP, sim.SpinNP)
		if !a.SchedulableGEDF() {
			continue
		}
		checked++
		s, err := sim.New(sim.Config{
			System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
			Protocol: sim.ProtoRWRNLP, Horizon: 1_000_000_000, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if res.Misses != 0 {
			t.Errorf("trial %d: analyzer said schedulable but simulation missed %d deadlines", i, res.Misses)
		}
	}
	if checked == 0 {
		t.Skip("no schedulable sets generated; adjust parameters")
	}
}

func TestRTAFits(t *testing.T) {
	// Classic RM example: (e=1,p=4), (e=2,p=6), (e=3,p=12): R3 = 3+2·1+2·2... schedulable.
	ok := rtaFits([]inflated{
		{wcet: 1, period: 4, deadline: 4},
		{wcet: 2, period: 6, deadline: 6},
		{wcet: 3, period: 12, deadline: 12},
	})
	if !ok {
		t.Error("classic schedulable RM set rejected")
	}
	// Overload: U > 1 on one CPU.
	bad := rtaFits([]inflated{
		{wcet: 3, period: 4, deadline: 4},
		{wcet: 3, period: 6, deadline: 6},
	})
	if bad {
		t.Error("overloaded set accepted")
	}
	// RM-unschedulable but EDF-schedulable boundary: (e=2,p=4),(e=4,p=8) is
	// exactly feasible under RM (R2 = 4+2·... = 8 ≤ 8).
	edge := rtaFits([]inflated{
		{wcet: 2, period: 4, deadline: 4},
		{wcet: 4, period: 8, deadline: 8},
	})
	if !edge {
		t.Error("exactly-feasible RM set rejected")
	}
}

func TestSchedulablePFP(t *testing.T) {
	sb := core.NewSpecBuilder(1)
	mk := func(e, p simtime.Time) *taskmodel.Task {
		return &taskmodel.Task{Period: p, Deadline: p,
			Segments: []taskmodel.Segment{{Kind: taskmodel.SegCompute, Duration: e}}}
	}
	sys := &taskmodel.System{Spec: sb.Build(), M: 2, ClusterSize: 1,
		Tasks: []*taskmodel.Task{mk(2, 4), mk(3, 6), mk(2, 8)}}
	a := NewAnalyzer(sys, sim.ProtoNone, sim.SpinNP)
	if !a.SchedulablePFP() {
		t.Error("partitionable RM set rejected")
	}
	over := &taskmodel.System{Spec: sb.Build(), M: 1, ClusterSize: 1,
		Tasks: []*taskmodel.Task{mk(3, 4), mk(3, 6)}}
	if NewAnalyzer(over, sim.ProtoNone, sim.SpinNP).SchedulablePFP() {
		t.Error("overloaded single-CPU set accepted")
	}
}

// PFP consistency on random systems: never accepts a set whose inflated
// utilization exceeds m; monotone against ProtoNone.
func TestPFPSanityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := workload.Params{M: 4, NumTasks: 10, Util: workload.UtilUniformLight,
		NumResources: 4, AccessProb: 0.7, ReadRatio: 0.6, NestedProb: 0.3,
		CSMin: 10_000, CSMax: 50_000}
	for i := 0; i < 30; i++ {
		sys := workload.Generate(rng, p)
		a := NewAnalyzer(sys, sim.ProtoRWRNLP, sim.SpinNP)
		an := NewAnalyzer(sys, sim.ProtoNone, sim.SpinNP)
		if a.SchedulablePFP() && !an.SchedulablePFP() {
			t.Fatal("blocking improved schedulability")
		}
		total := 0.0
		for _, tk := range sys.Tasks {
			total += a.InflatedUtil(tk)
		}
		if total > float64(sys.M) && a.SchedulablePFP() {
			t.Fatal("accepted a set with inflated utilization above m")
		}
	}
}

// The refined bounds are never looser than the coarse ones, and their
// schedulability verdicts are validated against simulation (soundness spot
// check).
func TestRefinedTighterAndSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := workload.Params{
		M: 8, NumTasks: 16, Util: workload.UtilUniformLight,
		NumResources: 12, AccessProb: 0.9, ReadRatio: 0.6,
		NestedProb: 0.3, CSMin: 10_000, CSMax: 100_000,
	}
	gained, checked := 0, 0
	for trial := 0; trial < 25; trial++ {
		sys := workload.Generate(rng, p)
		coarse := NewAnalyzer(sys, sim.ProtoRWRNLP, sim.SpinNP)
		refined := NewRefinedAnalyzer(sys, sim.SpinNP)
		for ti, tk := range sys.Tasks {
			cb := coarse.TaskBlocking(tk)
			rb := refined.TaskBlockingRefined(ti)
			if rb > cb {
				t.Fatalf("trial %d task %d: refined %d > coarse %d", trial, ti, rb, cb)
			}
			if rb < cb {
				gained++
			}
		}
		if refined.SchedulableGEDFRefined() && !coarse.SchedulableGEDF() {
			// Refinement admitted a set the coarse test rejects: verify by
			// simulation that it truly meets deadlines.
			checked++
			s, err := sim.New(sim.Config{
				System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
				Protocol: sim.ProtoRWRNLP, Horizon: 2_000_000_000, Seed: int64(trial),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res := s.Run(); res.Misses != 0 {
				t.Errorf("trial %d: refined-admitted set missed %d deadlines", trial, res.Misses)
			}
		}
		if coarse.SchedulableGEDF() && !refined.SchedulableGEDFRefined() {
			t.Fatalf("trial %d: refined rejected a coarse-admitted set (must be monotone)", trial)
		}
	}
	if gained == 0 {
		t.Error("refined analysis never improved a bound; sharing graph too dense?")
	}
}

// The refinement bounds blocking by the conflicting-writer POPULATION
// rather than the processor count — on systems with few writers per
// component it beats the coarse (m−1)-writer charge, which is what starts
// to separate fine-grained locking from group locking analytically (E14
// finding; full separation needs placeholder-aware chain analysis, future
// work squared).
func TestRefinedSeparatesFromGroupLock(t *testing.T) {
	// Two disjoint pairs of tasks, each pair sharing one private resource;
	// plus one read template linking resources into one component via a
	// shared read — so the GROUP is one big lock but actual write conflicts
	// are pairwise.
	sb := core.NewSpecBuilder(4)
	if err := sb.DeclareRequest([]core.ResourceID{0, 1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	mk := func(id int, res core.ResourceID) *taskmodel.Task {
		return &taskmodel.Task{
			ID: id, Period: 10_000_000, Deadline: 10_000_000,
			Segments: []taskmodel.Segment{
				{Kind: taskmodel.SegCompute, Duration: 100_000},
				{Kind: taskmodel.SegRequest, Write: []core.ResourceID{res}, Duration: 50_000},
			},
		}
	}
	sys := &taskmodel.System{
		Spec: sb.Build(), M: 8, ClusterSize: 8,
		Tasks: []*taskmodel.Task{mk(0, 0), mk(1, 0), mk(2, 2), mk(3, 2)},
	}
	// Hmm: resources 0..3 are all in one component via the 4-resource read
	// template, but each write conflicts with exactly ONE other task.
	refined := NewRefinedAnalyzer(sys, sim.SpinNP)
	coarse := NewAnalyzer(sys, sim.ProtoRWRNLP, sim.SpinNP)
	rb := refined.RequestBoundRefined(0, sys.Tasks[0].Segments[1])
	cb := coarse.RequestBound(sys.Tasks[0].Segments[1])
	if rb >= cb {
		t.Errorf("refined writer bound %d not tighter than coarse %d", rb, cb)
	}
	// All four resources are one closure component (placeholder queues make
	// closure-sharing writers delay each other), so the sound population
	// count is the 3 OTHER writer tasks — not the m−1 = 7 processors the
	// coarse bound charges: bound = 3·(Lr+Lw) = 150_000 (Lr = 0 here).
	if rb != 150_000 {
		t.Errorf("refined bound = %d, want 150000 (three conflicting writer tasks)", rb)
	}
}

func TestReport(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sys := workload.Generate(rng, workload.Params{
		M: 4, NumTasks: 5, Util: workload.UtilUniformLight,
		NumResources: 4, AccessProb: 1, ReadRatio: 0.5, NestedProb: 0.4,
		CSMin: 10_000, CSMax: 50_000,
	})
	var buf strings.Builder
	a := NewAnalyzer(sys, sim.ProtoRWRNLP, sim.SpinNP)
	if err := a.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"protocol=rw-rnlp", "| task |", "G-EDF:", "T0", "T4"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// ProtoNone: zero span term and u' == u.
	var buf2 strings.Builder
	if err := NewAnalyzer(sys, sim.ProtoNone, sim.SpinNP).Report(&buf2); err != nil {
		t.Fatal(err)
	}
}
