package analysis

import (
	"fmt"
	"io"

	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// Report writes a per-task blocking breakdown as a markdown table: each
// task's WCET, its per-request acquisition bounds under the analyzer's
// protocol, the per-job progress-mechanism term, the inflated WCET and
// utilization — the working sheet of an s-oblivious schedulability argument.
func (a *Analyzer) Report(w io.Writer) error {
	b := a.b
	if _, err := fmt.Fprintf(w,
		"protocol=%s progress=%s  m=%d  L^r=%.1fµs L^w=%.1fµs  span=%.1fµs\n\n",
		a.proto, a.prog, b.M, us(b.Lr), us(b.Lw), us(a.RequestSpanBound())); err != nil {
		return err
	}
	fmt.Fprintf(w, "| task | period (ms) | e_i (µs) | requests | Σ acq bounds (µs) | span term (µs) | e'_i (µs) | u_i | u'_i |\n")
	fmt.Fprintf(w, "|------|-------------|----------|----------|-------------------|----------------|-----------|-----|------|\n")
	totalU, totalU2 := 0.0, 0.0
	for _, t := range a.sys.Tasks {
		var reqSum, nreq = a.requestSum(t)
		span := a.RequestSpanBound()
		if a.proto == sim.ProtoNone {
			span = 0
		}
		infl := a.InflatedWCET(t)
		u := t.Utilization()
		u2 := a.InflatedUtil(t)
		totalU += u
		totalU2 += u2
		fmt.Fprintf(w, "| T%-3d | %-11.2f | %-8.1f | %-8d | %-17.1f | %-14.1f | %-9.1f | %.3f | %.3f |\n",
			t.ID, float64(t.Period)/1e6, us(t.WCET()), nreq, us(reqSum), us(span), us(infl), u, u2)
	}
	fmt.Fprintf(w, "\nΣu = %.3f → Σu' = %.3f (m = %d);  G-EDF: %v  P-EDF: %v  P-FP(RM): %v\n",
		totalU, totalU2, a.sys.M, a.SchedulableGEDF(), a.SchedulablePEDF(), a.SchedulablePFP())
	return nil
}

func (a *Analyzer) requestSum(t *taskmodel.Task) (sum simtimeDur, n int) {
	for _, seg := range t.Segments {
		if seg.Kind == taskmodel.SegCompute {
			continue
		}
		sum += a.RequestBound(seg)
		n++
	}
	return sum, n
}

type simtimeDur = simtime.Time

func us(t simtime.Time) float64 { return float64(t) / 1000 }
