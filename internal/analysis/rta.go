package analysis

import (
	"sort"

	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// This file adds partitioned fixed-priority schedulability via exact
// uniprocessor response-time analysis (RTA), the second classic test axis of
// the schedulability studies the paper's evaluation methodology comes from.
// Priorities are rate monotonic (shorter period = higher priority); blocking
// enters as s-oblivious inflation, like the EDF tests.

// rtaFits reports whether the task set (already assigned to one processor,
// with inflated WCETs) is schedulable under preemptive fixed-priority
// scheduling with rate-monotonic priorities and implicit deadlines:
// R_i = e'_i + Σ_{j ∈ hp(i)} ⌈R_i/p_j⌉ · e'_j, iterated to a fixed point,
// must not exceed d_i.
func rtaFits(tasks []inflated) bool {
	// Sort by period ascending = priority descending (RM).
	sort.Slice(tasks, func(a, b int) bool { return tasks[a].period < tasks[b].period })
	for i := range tasks {
		r := tasks[i].wcet
		for {
			next := tasks[i].wcet
			for j := 0; j < i; j++ {
				next += ceilDiv(r, tasks[j].period) * tasks[j].wcet
			}
			if next == r {
				break
			}
			if next > tasks[i].deadline {
				return false
			}
			r = next
		}
		if r > tasks[i].deadline {
			return false
		}
	}
	return true
}

type inflated struct {
	wcet, period, deadline simtime.Time
}

func ceilDiv(a, b simtime.Time) simtime.Time {
	if b <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// SchedulablePFP applies partitioned fixed-priority scheduling with
// rate-monotonic priorities: tasks are assigned to processors first-fit in
// decreasing inflated-utilization order, each processor verified by exact
// RTA.
func (a *Analyzer) SchedulablePFP() bool {
	type taskU struct {
		t *taskmodel.Task
		u float64
	}
	ts := make([]taskU, 0, len(a.sys.Tasks))
	for _, t := range a.sys.Tasks {
		u := a.InflatedUtil(t)
		if u > 1 {
			return false
		}
		ts = append(ts, taskU{t, u})
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].u > ts[j].u })

	bins := make([][]inflated, a.sys.M)
	for _, tu := range ts {
		inf := inflated{
			wcet:     a.InflatedWCET(tu.t),
			period:   tu.t.Period,
			deadline: tu.t.Deadline,
		}
		placed := false
		for b := range bins {
			trial := append(append([]inflated{}, bins[b]...), inf)
			if rtaFits(trial) {
				bins[b] = trial
				placed = true
				break
			}
		}
		if !placed {
			return false
		}
	}
	return true
}
