package core

import "fmt"

// EventType classifies the protocol transitions the RSM reports to its
// Observer. Every transition defined by the paper's rules maps to exactly
// one event, which makes traces replayable and machine-checkable
// (internal/trace verifies the paper's lemmas against event streams).
type EventType int

const (
	// EvIssued: a request was issued and enqueued (Rules G1, R1, W1).
	EvIssued EventType = iota
	// EvEntitled: a request became entitled (Defs. 3–4).
	EvEntitled
	// EvSatisfied: a request was satisfied and now holds its lock set
	// (Rules R1, R2, W1, W2).
	EvSatisfied
	// EvGranted: an incremental request was granted a subset of its
	// resources while still entitled (Sec. 3.7).
	EvGranted
	// EvCompleted: a critical section completed; resources released
	// (Rule G3).
	EvCompleted
	// EvCanceled: one half of an upgradeable pair was removed (Sec. 3.6).
	EvCanceled
	// EvPlaceholdersRemoved: a write's placeholder entries were dequeued
	// because it became entitled or satisfied (Sec. 3.4).
	EvPlaceholdersRemoved
	// EvReadSegmentDone: the optimistic read half of an upgradeable request
	// finished; Resources reports the read locks released (Sec. 3.6).
	EvReadSegmentDone
)

func (e EventType) String() string {
	switch e {
	case EvIssued:
		return "issued"
	case EvEntitled:
		return "entitled"
	case EvSatisfied:
		return "satisfied"
	case EvGranted:
		return "granted"
	case EvCompleted:
		return "completed"
	case EvCanceled:
		return "canceled"
	case EvPlaceholdersRemoved:
		return "placeholders-removed"
	case EvReadSegmentDone:
		return "read-segment-done"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is one protocol transition. Events within a single invocation share
// the invocation's Time and are emitted in deterministic order.
type Event struct {
	T         Time
	Type      EventType
	Req       ReqID
	Kind      Kind
	Resources ResourceSet // resources affected (lock set, grant set, …)
	// Read and Write are the request's read-mode and write-mode lock sets
	// (N^r and N^w ∪ extras), so consumers — e.g. the trace checker — can
	// reconstruct lock modes without access to the RSM.
	Read  ResourceSet
	Write ResourceSet
	// Pair is the other half of an upgradeable pair (Sec. 3.6), or 0 for
	// plain requests. Consumers need it to attribute the write half's waits
	// correctly: its bound applies per wait, restarting at EvReadSegmentDone.
	Pair ReqID
	// Incremental marks a Sec. 3.7 incremental request, whose
	// issue-to-satisfaction span includes hold phases between grants and is
	// therefore not an acquisition delay (use the cumulative ask delays).
	Incremental bool
	Tag         any // the request's caller-supplied tag
	// Blockers names the requests this one is causally waiting behind, per
	// the RSM's queue state at the instant of the event, in timestamp order:
	//
	//   - on EvIssued: the entitled and satisfied requests it conflicts with
	//     (the blocking condition of Rules R1/W1 — why it was not satisfied
	//     immediately). Empty when the request was satisfied at issuance.
	//   - on EvEntitled: the satisfied requests in its blocking set B(R, t)
	//     (Rules R2/W2 — for an entitled writer, the current read phase it
	//     must outwait; for an entitled reader, the conflicting write holder).
	//
	// Nil on every other event type. Consumers (obs.Attributor, the flight
	// recorder) chain these edges into causal blocking attributions: reader ←
	// entitled writer ← read-phase holders is the paper's Fig. 2 situation.
	// The slice is freshly allocated per event and owned by the consumer.
	Blockers []ReqID
}

func (e Event) String() string {
	return fmt.Sprintf("t=%d %s req=%d (%s) %s", e.T, e.Type, e.Req, e.Kind, e.Resources)
}

// Observer receives every protocol transition. Implementations must not call
// back into the RSM. A nil observer disables reporting.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }

// MultiObserver composes observers into one fan-out observer that delivers
// every event to each of them in argument order. Nil arguments are dropped,
// nested multi-observers are flattened, and degenerate compositions collapse:
// zero live observers yield nil (so the RSM's nil check stays the only cost
// of disabled observation) and a single live observer is returned unchanged.
func MultiObserver(observers ...Observer) Observer {
	var list multiObserver
	for _, o := range observers {
		switch v := o.(type) {
		case nil:
			// dropped
		case multiObserver:
			list = append(list, v...)
		default:
			list = append(list, o)
		}
	}
	switch len(list) {
	case 0:
		return nil
	case 1:
		return list[0]
	}
	return list
}

type multiObserver []Observer

func (mo multiObserver) Observe(e Event) {
	for _, o := range mo {
		o.Observe(e)
	}
}
