package core

import "testing"

// Scenario tests for Lemma 2's Props. E1–E10: each property is exercised by
// a purpose-built schedule in which the "if" side genuinely occurs, and the
// property's conclusion is asserted. The randomized invariant harness
// (invariants_test.go) covers the same properties statistically; these tests
// pin each one to a concrete, human-checkable scenario. Observer events are
// used to detect exactly WHICH invocation entitled/satisfied a request.

// eventLog records (invocation boundary → events) so tests can assert what
// a specific invocation caused.
type eventLog struct {
	events []Event
}

func (l *eventLog) Observe(e Event) { l.events = append(l.events, e) }

// eventsSince returns events appended after mark.
func (l *eventLog) mark() int { return len(l.events) }
func (l *eventLog) since(mark int) []Event {
	return l.events[mark:]
}

func hasEvent(evs []Event, typ EventType, id ReqID) bool {
	for _, e := range evs {
		if e.Type == typ && e.Req == id {
			return true
		}
	}
	return false
}

func propRSM(t *testing.T) (*RSM, *eventLog) {
	t.Helper()
	b := NewSpecBuilder(3)
	if err := b.DeclareReadGroup(0, 1); err != nil {
		t.Fatal(err)
	}
	m := NewRSM(b.Build(), Options{})
	log := &eventLog{}
	m.SetObserver(log)
	return m, log
}

// E1: a read request is satisfied only by a read issuance (its own) or a
// write completion. Scenario: a read blocked by a write holder is satisfied
// exactly at the write's completion — and a WRITE issuance in between does
// not satisfy it.
func TestPropE1(t *testing.T) {
	m, log := propRSM(t)
	w1 := mustIssue(t, m, 1, nil, []ResourceID{2})
	r := mustIssue(t, m, 2, []ResourceID{2}, nil)
	wantState(t, m, r, StateEntitled)

	mark := log.mark()
	w2 := mustIssue(t, m, 3, nil, []ResourceID{2}) // write issuance
	if hasEvent(log.since(mark), EvSatisfied, r) {
		t.Fatal("E1 violated: a write issuance satisfied a read")
	}
	mark = log.mark()
	mustComplete(t, m, 4, w1) // write completion
	if !hasEvent(log.since(mark), EvSatisfied, r) {
		t.Fatal("read not satisfied at the write completion")
	}
	mustComplete(t, m, 5, r)
	mustComplete(t, m, 6, w2)
}

// E2: a write request is satisfied only by its own issuance, a read
// completion, or a write completion — never by a read issuance.
func TestPropE2(t *testing.T) {
	m, log := propRSM(t)
	r1 := mustIssue(t, m, 1, []ResourceID{2}, nil)
	w := mustIssue(t, m, 2, nil, []ResourceID{2})
	wantState(t, m, w, StateEntitled)

	mark := log.mark()
	r2 := mustIssue(t, m, 3, []ResourceID{0}, nil) // unrelated read issuance
	if hasEvent(log.since(mark), EvSatisfied, w) {
		t.Fatal("E2 violated: a read issuance satisfied a write")
	}
	mark = log.mark()
	mustComplete(t, m, 4, r1) // read completion
	if !hasEvent(log.since(mark), EvSatisfied, w) {
		t.Fatal("write not satisfied at the read completion")
	}
	mustComplete(t, m, 5, w)
	mustComplete(t, m, 6, r2)
}

// E3/E4: an issuance satisfies only the issued request itself. Scenario:
// requests are queued; a fresh non-conflicting issuance is satisfied
// immediately without satisfying anything else.
func TestPropE3E4(t *testing.T) {
	m, log := propRSM(t)
	w1 := mustIssue(t, m, 1, nil, []ResourceID{2})
	w2 := mustIssue(t, m, 2, nil, []ResourceID{2}) // queued behind w1
	wantState(t, m, w2, StateWaiting)

	mark := log.mark()
	r := mustIssue(t, m, 3, []ResourceID{0}, nil) // E3: satisfies only itself
	evs := log.since(mark)
	for _, e := range evs {
		if e.Type == EvSatisfied && e.Req != r {
			t.Fatalf("E3 violated: read issuance satisfied request %d", e.Req)
		}
	}
	mark = log.mark()
	w3 := mustIssue(t, m, 4, nil, []ResourceID{1}) // E4: write satisfies only itself
	for _, e := range log.since(mark) {
		if e.Type == EvSatisfied && e.Req != w3 {
			t.Fatalf("E4 violated: write issuance satisfied request %d", e.Req)
		}
	}
	mustComplete(t, m, 5, w1)
	mustComplete(t, m, 6, w2)
	mustComplete(t, m, 7, r)
	mustComplete(t, m, 8, w3)
}

// E5: when a read completion satisfies a conflicting write, the write was
// entitled just before, blocked ONLY by that read.
func TestPropE5(t *testing.T) {
	m, log := propRSM(t)
	rA := mustIssue(t, m, 1, []ResourceID{2}, nil)
	rB := mustIssue(t, m, 2, []ResourceID{2}, nil)
	w := mustIssue(t, m, 3, nil, []ResourceID{2})
	wantState(t, m, w, StateEntitled) // blocked by two readers

	mark := log.mark()
	mustComplete(t, m, 4, rA) // B(w) = {rB}: must NOT satisfy w
	if hasEvent(log.since(mark), EvSatisfied, w) {
		t.Fatal("E5 violated: write satisfied while another blocking reader held")
	}
	mark = log.mark()
	mustComplete(t, m, 5, rB) // last blocker: satisfies w
	if !hasEvent(log.since(mark), EvSatisfied, w) {
		t.Fatal("write not satisfied when its last blocker completed")
	}
	mustComplete(t, m, 6, w)
}

// E6: when a write completion satisfies a conflicting read, the read was
// entitled just before with B = {that write}.
func TestPropE6(t *testing.T) {
	m, log := propRSM(t)
	w := mustIssue(t, m, 1, nil, []ResourceID{0}) // expanded: locks {0,1}
	r := mustIssue(t, m, 2, []ResourceID{0, 1}, nil)
	wantState(t, m, r, StateEntitled) // blocked by w alone

	mark := log.mark()
	mustComplete(t, m, 3, w)
	if !hasEvent(log.since(mark), EvSatisfied, r) {
		t.Fatal("E6 violated: entitled read with a single write blocker not satisfied at its completion")
	}
	mustComplete(t, m, 4, r)
}

// E7: when a write completion satisfies another write, the satisfied write
// headed every queue and every resource it needs was either held by the
// completing write or unlocked.
func TestPropE7(t *testing.T) {
	m, log := propRSM(t)
	w1 := mustIssue(t, m, 1, nil, []ResourceID{2})
	w2 := mustIssue(t, m, 2, nil, []ResourceID{2})
	wantState(t, m, w2, StateWaiting) // behind the write holder, not entitled

	mark := log.mark()
	mustComplete(t, m, 3, w1)
	if !hasEvent(log.since(mark), EvSatisfied, w2) {
		t.Fatal("E7 violated: successor write not satisfied at predecessor completion")
	}
	// The successor transitioned Waiting→Entitled→Satisfied within ONE
	// invocation (the completion), exactly as Prop. E7's proof describes.
	if !hasEvent(log.since(mark), EvEntitled, w2) {
		t.Fatal("successor write skipped the entitlement transition")
	}
	mustComplete(t, m, 4, w2)
}

// E8: reads become entitled only at read issuances or read completions —
// plus, per Finding 3 (see IMPLEMENTATION.md), at invocations that
// write-lock their resources. Scenario from the paper's own example: a read
// becomes entitled when the write blocking it is SATISFIED (at a read
// completion), not at unrelated write issuances.
func TestPropE8(t *testing.T) {
	m, log := propRSM(t)
	rHold := mustIssue(t, m, 1, []ResourceID{2}, nil) // reader holds ℓ2
	w := mustIssue(t, m, 2, nil, []ResourceID{2})     // entitled behind the reader
	wantState(t, m, w, StateEntitled)
	r := mustIssue(t, m, 3, []ResourceID{2}, nil) // blocked by entitled w
	wantState(t, m, r, StateWaiting)

	mark := log.mark()
	wOther := mustIssue(t, m, 4, nil, []ResourceID{0}) // unrelated write issuance
	if hasEvent(log.since(mark), EvEntitled, r) {
		t.Fatal("E8 violated: unrelated write issuance entitled a read")
	}
	mark = log.mark()
	mustComplete(t, m, 5, rHold) // read completion → w satisfied → r entitled
	if !hasEvent(log.since(mark), EvEntitled, r) {
		t.Fatal("read not entitled at the read completion that satisfied its blocker")
	}
	mustComplete(t, m, 6, w)
	mustComplete(t, m, 7, r)
	mustComplete(t, m, 8, wOther)
}

// E9: writes become entitled only at write issuances or write completions.
func TestPropE9(t *testing.T) {
	m, log := propRSM(t)
	w1 := mustIssue(t, m, 1, nil, []ResourceID{2})
	w2 := mustIssue(t, m, 2, nil, []ResourceID{2})
	wantState(t, m, w2, StateWaiting)

	mark := log.mark()
	r := mustIssue(t, m, 3, []ResourceID{0}, nil) // read issuance
	if hasEvent(log.since(mark), EvEntitled, w2) {
		t.Fatal("E9 violated: a read issuance entitled a write")
	}
	mark = log.mark()
	mustComplete(t, m, 4, w1) // write completion entitles (and satisfies) w2
	if !hasEvent(log.since(mark), EvEntitled, w2) {
		t.Fatal("write not entitled at the write completion")
	}
	mustComplete(t, m, 5, w2)
	mustComplete(t, m, 6, r)
}

// E10: a conflicting read and write are never simultaneously entitled —
// driven through the exact interleaving Defs. 3/4 guard against: an
// entitled write plus a read that WOULD be entitled if the write's headship
// did not block it.
func TestPropE10(t *testing.T) {
	m, _ := propRSM(t)
	rHold := mustIssue(t, m, 1, []ResourceID{2}, nil)
	w := mustIssue(t, m, 2, nil, []ResourceID{2}) // entitled (blocked by reader)
	wantState(t, m, w, StateEntitled)

	// A second write holder on the read-shared pair {0,1} so the next read
	// has a write-locked resource (Def. 3's trigger)…
	wHold := mustIssue(t, m, 3, nil, []ResourceID{0})
	// …and a read needing both the write-locked ℓ0 AND the contested ℓ2:
	// its Def. 3 head check on WQ(ℓ2) sees the entitled w → NOT entitled.
	r := mustIssue(t, m, 4, []ResourceID{0, 1}, nil)
	wantState(t, m, r, StateEntitled) // ℓ0 write locked, no entitled heads on {0,1}

	// r (reads {0,1}) does not conflict with w (writes {2}) — E10 intact.
	// Now a read spanning ℓ1 and ℓ2 would conflict with w; it must not
	// become entitled while w is.
	r2 := mustIssue(t, m, 5, []ResourceID{1, 2}, nil)
	wantState(t, m, r2, StateWaiting)

	mustComplete(t, m, 6, rHold)
	wantState(t, m, w, StateSatisfied)
	mustComplete(t, m, 7, w)
	mustComplete(t, m, 8, wHold)
	mustComplete(t, m, 9, r)
	wantState(t, m, r2, StateSatisfied)
	mustComplete(t, m, 10, r2)
}
