package core

import "testing"

// TestSec34PlaceholderExample replays the Sec. 3.4 worked example: with
// placeholder requests, R1,1 needs only N1,1 = {ℓb} and R2,1 only
// N2,1 = {ℓa, ℓc}. R2,1 no longer conflicts with R1,1 and is satisfied
// immediately at t=2 — concurrency the expanded protocol forgoes.
func TestSec34PlaceholderExample(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{Placeholders: true})

	// t=1: R1,1 needs {ℓb}; placeholder would go to WQ(ℓa), but immediate
	// satisfaction removes it at once.
	w11 := mustIssue(t, m, 1, nil, []ResourceID{lb})
	wantState(t, m, w11, StateSatisfied)
	if qs := m.Queues(la); len(qs.WQ) != 0 {
		t.Fatalf("WQ(ℓa) = %v, want empty (placeholder removed on satisfaction)", qs.WQ)
	}
	if h := m.Holders(la); len(h) != 0 {
		t.Fatalf("ℓa holders = %v, want none (placeholder mode locks only N)", h)
	}

	// t=2: R2,1 needs {ℓa, ℓc}; placeholder in WQ(ℓb). R1,1 holds only ℓb,
	// so R2,1 is satisfied immediately.
	w21 := mustIssue(t, m, 2, nil, []ResourceID{la, lc})
	wantState(t, m, w21, StateSatisfied)

	mustComplete(t, m, 3, w11)
	mustComplete(t, m, 4, w21)
}

// Under the expanded protocol the same workload serializes: R1,1 expands to
// {ℓa, ℓb}, so R2,1 (needing ℓa) must wait. This is the E9 ablation pair.
func TestSec34ExpandedSerializes(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{Placeholders: false})
	w11 := mustIssue(t, m, 1, nil, []ResourceID{lb})
	wantState(t, m, w11, StateSatisfied)
	w21 := mustIssue(t, m, 2, nil, []ResourceID{la, lc})
	wantState(t, m, w21, StateWaiting)
	mustComplete(t, m, 3, w11)
	wantState(t, m, w21, StateSatisfied)
	mustComplete(t, m, 4, w21)
}

// Placeholders still prevent later-timestamped writes from overtaking: a
// waiting write's placeholder holds its spot in the queues of non-needed
// read-shared resources until the write becomes entitled (Lemma 6 is
// preserved).
func TestPlaceholderGatesLaterWrites(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{Placeholders: true})

	// Reader group {ℓa, ℓb}: a write of ℓa placeholds ℓb and vice versa.
	// w0 write-locks ℓa for a while.
	w0 := mustIssue(t, m, 1, nil, []ResourceID{la})
	wantState(t, m, w0, StateSatisfied)

	// w1 needs {ℓa}: blocked behind w0, waiting (not entitled: ℓa write
	// locked). Its placeholder sits at the head of WQ(ℓb).
	w1 := mustIssue(t, m, 2, nil, []ResourceID{la})
	wantState(t, m, w1, StateWaiting)
	if qs := m.Queues(lb); len(qs.WQ) != 1 || qs.WQ[0] != w1 || !qs.Placeholder[0] {
		t.Fatalf("WQ(ℓb) = %+v, want placeholder of w1", qs)
	}

	// w2 needs {ℓb}: ℓb is unlocked and w2 conflicts with no entitled or
	// satisfied request, but w1's placeholder heads WQ(ℓb), and per
	// Sec. 3.4 placeholders "prevent later-issued write requests from
	// becoming entitled or satisfied" — Lemma 6 depends on it. So w2 waits.
	w2 := mustIssue(t, m, 3, nil, []ResourceID{lb})
	wantState(t, m, w2, StateWaiting)

	// w0 completes: w1 becomes entitled and satisfied (its placeholder
	// heads WQ(ℓb), ℓa is free). The placeholder removal then lets w2 reach
	// the head of WQ(ℓb); it becomes entitled with an empty blocking set
	// (w1 locks only ℓa in placeholder mode) and is satisfied in the same
	// invocation.
	mustComplete(t, m, 4, w0)
	wantState(t, m, w1, StateSatisfied)
	wantState(t, m, w2, StateSatisfied)
	mustComplete(t, m, 5, w1)
	mustComplete(t, m, 6, w2)
}

// TestSec35MixingExample replays the Sec. 3.5 worked example: R2,1 is a
// mixed request reading {ℓa, ℓb} and writing {ℓc}. R5,1 (read {ℓa, ℓb}) no
// longer conflicts with it and is satisfied immediately at t=7 instead of
// waiting until t=10.
func TestSec35MixingExample(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})

	w11 := mustIssue(t, m, 1, nil, []ResourceID{la, lb})
	w21 := mustIssue(t, m, 2, []ResourceID{la, lb}, []ResourceID{lc}) // mixed
	r31 := mustIssue(t, m, 3, []ResourceID{lc}, nil)
	r41 := mustIssue(t, m, 4, []ResourceID{lc}, nil)
	wantState(t, m, r31, StateSatisfied)
	wantState(t, m, r41, StateSatisfied)
	wantState(t, m, w21, StateWaiting)

	mustComplete(t, m, 5, w11)
	wantState(t, m, w21, StateEntitled)
	mustComplete(t, m, 6, r41)

	// t=7: R5,1 reads {ℓa, ℓb}; it does not conflict with the mixed R2,1
	// (both only read ℓa, ℓb) nor with R3,1, so Rule R1 satisfies it now.
	r51 := mustIssue(t, m, 7, []ResourceID{la, lb}, nil)
	wantState(t, m, r51, StateSatisfied)

	mustComplete(t, m, 8, r31)
	wantState(t, m, w21, StateSatisfied)
	// ℓa and ℓb are read locked by BOTH the mixed write and R5,1.
	if h := m.Holders(la); len(h) != 2 {
		t.Fatalf("ℓa holders = %v, want mixed + reader", h)
	}
	mustComplete(t, m, 10, w21)
	mustComplete(t, m, 12, r51)
}

// A resource read locked by a mixed request is treated as write locked for
// writer entitlement (Sec. 3.5): a later write needing that resource cannot
// become entitled until the mixed request completes.
func TestMixedReadLockBlocksWriterEntitlement(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	// Mixed: read {ℓa}, write {ℓc}. Expansion of {ℓa, ℓc}: S(ℓa) = {ℓa,ℓb}
	// adds ℓb as a locked extra (expanded mode).
	mixed := mustIssue(t, m, 1, []ResourceID{la}, []ResourceID{lc})
	wantState(t, m, mixed, StateSatisfied)

	// Pure write of ℓa: ℓa is read locked by a mixed (write-kind) request,
	// so the writer is NOT entitled, merely waiting.
	w := mustIssue(t, m, 2, nil, []ResourceID{la})
	wantState(t, m, w, StateWaiting)

	// A plain read of ℓa does not conflict with the mixed holder... but it
	// must not overtake an in-queue write either; with w waiting (not
	// entitled), Rule R1 lets the read through (reader parallelism).
	r := mustIssue(t, m, 3, []ResourceID{la}, nil)
	wantState(t, m, r, StateSatisfied)

	mustComplete(t, m, 4, mixed)
	// Now w is entitled (blocked only by the satisfied reader r).
	wantState(t, m, w, StateEntitled)
	mustComplete(t, m, 5, r)
	wantState(t, m, w, StateSatisfied)
	mustComplete(t, m, 6, w)
}

// Mixed requests queue in the write queue of every needed resource,
// including read-only ones, and must be at the head of all of them to become
// entitled (Sec. 3.5).
func TestMixedQueuesInAllWriteQueues(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	blocker := mustIssue(t, m, 1, nil, []ResourceID{lc})
	mixed := mustIssue(t, m, 2, []ResourceID{la}, []ResourceID{lc})
	wantState(t, m, mixed, StateWaiting)
	qa := m.Queues(la)
	if len(qa.WQ) != 1 || qa.WQ[0] != mixed {
		t.Fatalf("WQ(ℓa) = %v, want mixed request enqueued for its read-access resource", qa.WQ)
	}
	mustComplete(t, m, 3, blocker)
	wantState(t, m, mixed, StateSatisfied)
	// ℓa read locked, ℓc write locked by the same request.
	if qs := m.Queues(la); len(qs.ReadHolders) != 1 || qs.ReadHolders[0] != mixed {
		t.Fatalf("ℓa read holders = %v", qs.ReadHolders)
	}
	if qs := m.Queues(lc); qs.WriteHolder != mixed {
		t.Fatalf("ℓc write holder = %v", qs.WriteHolder)
	}
	mustComplete(t, m, 4, mixed)
}

// Placeholder mode composes with mixing: the mixed request locks only N and
// placeholds the read-shared extras.
func TestMixedWithPlaceholders(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{Placeholders: true})
	mixed := mustIssue(t, m, 1, []ResourceID{la}, []ResourceID{lc})
	wantState(t, m, mixed, StateSatisfied)
	// ℓb (read shared with ℓa) must NOT be locked.
	if h := m.Holders(lb); len(h) != 0 {
		t.Fatalf("ℓb holders = %v, want none", h)
	}
	r := mustIssue(t, m, 2, []ResourceID{lb}, nil)
	wantState(t, m, r, StateSatisfied)
	mustComplete(t, m, 3, mixed)
	mustComplete(t, m, 4, r)
}
