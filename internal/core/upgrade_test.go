package core

import (
	"errors"
	"testing"
)

func mustUpgradeable(t testing.TB, m *RSM, at Time, res ...ResourceID) UpgradeHandle {
	t.Helper()
	h, err := m.IssueUpgradeable(at, res, nil)
	if err != nil {
		t.Fatalf("IssueUpgradeable at t=%d: %v", at, err)
	}
	return h
}

// On an uncontended system, the read half is satisfied immediately and the
// write half becomes entitled behind it, blocked by its own read half.
func TestUpgradeUncontendedReadsFirst(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	h := mustUpgradeable(t, m, 1, la)
	if got := m.UpgradePhase(h); got != UpgradeReading {
		t.Fatalf("phase = %s, want reading", got)
	}
	wantState(t, m, h.ReadID, StateSatisfied)
	wantState(t, m, h.WriteID, StateEntitled)
}

// Decide not to upgrade: the write half is canceled and other requests
// blocked by it proceed.
func TestUpgradeSkipped(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{RecordHistory: true})
	h := mustUpgradeable(t, m, 1, la)

	// Another reader arrives: it conflicts with the *entitled* write half,
	// so it must wait (the upgrade pair behaves like a write request toward
	// the rest of the system).
	r := mustIssue(t, m, 2, []ResourceID{la}, nil)
	wantState(t, m, r, StateWaiting)

	if err := m.FinishRead(3, h, false); err != nil {
		t.Fatal(err)
	}
	if got := m.UpgradePhase(h); got != UpgradeDone {
		t.Fatalf("phase = %s, want done", got)
	}
	// Cancellation unblocked the reader even though nothing was unlocked at
	// cancellation time itself (read locks were released by FinishRead).
	wantState(t, m, r, StateSatisfied)
	mustComplete(t, m, 4, r)

	st := m.Stats()
	if st.UpgradesSkipped != 1 || st.UpgradesTaken != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", st.Canceled)
	}
}

// Upgrade taken: read segment, then write segment, with the write half
// satisfied after the read locks are released.
func TestUpgradeTaken(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	h := mustUpgradeable(t, m, 1, la)

	if err := m.FinishRead(2, h, true); err != nil {
		t.Fatal(err)
	}
	if got := m.UpgradePhase(h); got != UpgradeWriting {
		t.Fatalf("phase = %s, want writing", got)
	}
	wantState(t, m, h.WriteID, StateSatisfied)
	mustComplete(t, m, 3, h.WriteID)
	if got := m.UpgradePhase(h); got != UpgradeDone {
		t.Fatalf("phase = %s, want done", got)
	}
}

// Concurrent readers share the read phase with the upgradeable read half.
func TestUpgradeReadHalfSharesWithReaders(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	r := mustIssue(t, m, 1, []ResourceID{la}, nil)
	h := mustUpgradeable(t, m, 2, la)
	wantState(t, m, r, StateSatisfied)
	wantState(t, m, h.ReadID, StateSatisfied)
	// The write half is entitled, blocked by both readers.
	wantState(t, m, h.WriteID, StateEntitled)

	// Upgrade: write half must wait for the *other* reader too.
	if err := m.FinishRead(3, h, true); err != nil {
		t.Fatal(err)
	}
	wantState(t, m, h.WriteID, StateEntitled)
	mustComplete(t, m, 4, r)
	wantState(t, m, h.WriteID, StateSatisfied)
	mustComplete(t, m, 5, h.WriteID)
}

// If the write half is satisfied first, the read half is canceled: the job
// skips the optimistic read segment and goes straight to writing. We force
// this by canceling... the natural path cannot produce it (the read half
// always wins ties), so we drive the write half through entitlement while
// the read half is still blocked by an entitled write of another job — and
// then let the other job finish in an order that satisfies the write half
// first. Since both halves share the same resources this cannot happen
// under the protocol's phasing; instead we verify the defensive branch
// directly: satisfying the write half while the read half is waiting
// cancels the read half.
func TestUpgradeWriteWinsCancelsRead(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{RecordHistory: true})

	// Occupy ℓa with a writer so both halves must queue.
	w := mustIssue(t, m, 1, nil, []ResourceID{la})
	h := mustUpgradeable(t, m, 2, la)
	// The read half is entitled (blocked by the satisfied write w, whose
	// queue head — the write half — cannot be entitled while ℓa is write
	// locked); the write half waits.
	wantState(t, m, h.ReadID, StateEntitled)
	wantState(t, m, h.WriteID, StateWaiting)

	// Force the write half to win: drop the read half's entitlement chance
	// by satisfying the write half via the white-box path. (Driving this
	// through public invocations is impossible by design — Prop. E10-style
	// phasing always lets the read half go first — so we exercise the
	// defensive cancellation branch directly.)
	ur := m.reqs[h.ReadID]
	uw := m.reqs[h.WriteID]
	if ur == nil || uw == nil {
		t.Fatal("halves not queued")
	}
	m.unlockAll(m.reqs[w])
	m.reqs[w].state = StateComplete
	m.removeIncomplete(m.reqs[w])
	// Satisfy the write half directly.
	m.satisfy(3, uw, false)
	if ur.state != StateCanceled {
		t.Fatalf("read half state = %s, want canceled", ur.state)
	}
	if got := m.UpgradePhase(h); got != UpgradeWriting {
		t.Fatalf("phase = %s, want writing", got)
	}
	mustComplete(t, m, 4, h.WriteID)
}

func TestUpgradeErrors(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	h := mustUpgradeable(t, m, 1, la)

	// FinishRead on the wrong ID.
	if err := m.FinishRead(2, UpgradeHandle{ReadID: h.WriteID, WriteID: h.ReadID}, true); !errors.Is(err, ErrNotUpgrade) {
		t.Errorf("swapped handle: err = %v", err)
	}

	// FinishRead while the read half is not satisfied.
	m2 := NewRSM(fig2Spec(t), Options{})
	w := mustIssue(t, m2, 1, nil, []ResourceID{la})
	h2 := mustUpgradeable(t, m2, 2, la)
	if err := m2.FinishRead(3, h2, true); !errors.Is(err, ErrBadState) {
		t.Errorf("unsatisfied read half: err = %v", err)
	}
	mustComplete(t, m2, 4, w)

	// Upgradeable with no resources.
	if _, err := m.IssueUpgradeable(5, nil, nil); !errors.Is(err, ErrEmptyRequest) {
		t.Errorf("empty upgradeable: err = %v", err)
	}
}

// The pair counts as one request in the Issued statistic (Prop. P2
// accounting: an upgradeable request is only one request).
func TestUpgradePairCountsOnce(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	mustUpgradeable(t, m, 1, la, lb)
	if st := m.Stats(); st.Issued != 1 {
		t.Errorf("issued = %d, want 1", st.Issued)
	}
}

// An upgradeable request in a contended system: the write half keeps its
// timestamp position among other writes.
func TestUpgradeWriteHalfFIFOPosition(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	w0 := mustIssue(t, m, 1, nil, []ResourceID{lc}) // holder
	h := mustUpgradeable(t, m, 2, lc)               // halves queue behind
	w1 := mustIssue(t, m, 3, nil, []ResourceID{lc}) // later write

	mustComplete(t, m, 4, w0)
	// Read half wins first (reads concede only to entitled writes with
	// earlier position; the write half cannot be entitled while its own
	// read half is queued ahead in time).
	wantState(t, m, h.ReadID, StateSatisfied)
	wantState(t, m, w1, StateWaiting)

	if err := m.FinishRead(5, h, true); err != nil {
		t.Fatal(err)
	}
	// Upgrade: the write half precedes w1 in WQ(ℓc).
	wantState(t, m, h.WriteID, StateSatisfied)
	wantState(t, m, w1, StateWaiting)
	mustComplete(t, m, 6, h.WriteID)
	wantState(t, m, w1, StateSatisfied)
	mustComplete(t, m, 7, w1)
}
