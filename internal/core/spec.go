package core

import "fmt"

// Spec is the static description of the resource system required by the
// R/W RNLP: the number of resources q and the read-sharing relation ~
// (Sec. 3.2 of the paper, generalized for mixed requests in Sec. 3.5).
//
// Two resources ℓa and ℓb are read shared, ℓb ~ ℓa, if some potential
// request R has ℓa ∈ N (its needed set) and ℓb ∈ N^r (its read subset).
// The read set S(ℓa) = {ℓb | ℓb ~ ℓa} is the set a write request that needs
// ℓa must additionally pertain to (either by acquiring the extras — the
// "expanded" mode of Sec. 3.2 — or by enqueueing placeholder requests in
// their write queues — Sec. 3.4).
//
// A Spec is immutable once built; RSMs share it without copying.
//
// Beyond the read-sharing relation, a Spec records the connected components
// of the union of declared request footprints: two resources are in the same
// component iff some chain of declared requests links them. Requests confined
// to one component can never conflict with — nor even share a queue with —
// requests of another (S(ℓ) never crosses a component boundary, so neither
// expansion extras nor placeholders do), which is what lets the runtime lock
// run one independent RSM per component (Rule G4's total order is only
// needed among requests that can interact).
type Spec struct {
	q        int
	readSets []ResourceSet // readSets[a] = S(ℓa); always contains a itself
	comp     []int         // comp[a] = dense component index of resource a
	compRes  [][]ResourceID
}

// SpecBuilder accumulates the potential requests of the system and derives
// the read-sharing relation from them. The set of potential requests must be
// known a priori — the same assumption made by classical real-time protocols
// such as the priority ceiling protocol (see Sec. 3.7 of the paper).
type SpecBuilder struct {
	q        int
	readSets []ResourceSet
	parent   []int // union-find over declared footprints
}

// NewSpecBuilder creates a builder for a system of numResources resources.
// Read sharing is reflexive: initially S(ℓ) = {ℓ} for every resource.
func NewSpecBuilder(numResources int) *SpecBuilder {
	if numResources < 0 {
		panic(fmt.Sprintf("core: negative resource count %d", numResources))
	}
	b := &SpecBuilder{
		q:        numResources,
		readSets: make([]ResourceSet, numResources),
		parent:   make([]int, numResources),
	}
	for i := range b.readSets {
		b.readSets[i].Add(ResourceID(i))
		b.parent[i] = i
	}
	return b
}

// find is union-find root lookup with path compression.
func (b *SpecBuilder) find(x int) int {
	for b.parent[x] != x {
		b.parent[x] = b.parent[b.parent[x]]
		x = b.parent[x]
	}
	return x
}

func (b *SpecBuilder) union(x, y int) {
	rx, ry := b.find(x), b.find(y)
	if rx != ry {
		b.parent[ry] = rx
	}
}

// NumResources returns q.
func (b *SpecBuilder) NumResources() int { return b.q }

func (b *SpecBuilder) check(ids []ResourceID) error {
	for _, id := range ids {
		if id < 0 || int(id) >= b.q {
			return fmt.Errorf("%w: resource %d not in [0,%d)", ErrUnknownResource, id, b.q)
		}
	}
	return nil
}

// DeclareRequest registers a potential request that reads the resources in
// read and writes the resources in write (either may be empty). Every
// resource in read becomes read shared with every resource in read ∪ write.
//
// A pure read request is declared with write == nil; a pure write request
// (write-only) with read == nil contributes no read sharing, and a mixed
// request contributes sharing from its read subset only (Sec. 3.5: the
// relation need not be symmetric once mixed requests exist).
func (b *SpecBuilder) DeclareRequest(read, write []ResourceID) error {
	if err := b.check(read); err != nil {
		return err
	}
	if err := b.check(write); err != nil {
		return err
	}
	// ℓb ~ ℓa  ⇔  ∃ potential R: ℓa ∈ N ∧ ℓb ∈ N^r.
	for _, a := range read {
		for _, bID := range read {
			b.readSets[a].Add(bID)
		}
	}
	for _, a := range write {
		for _, bID := range read {
			b.readSets[a].Add(bID)
		}
	}
	// Every resource of the footprint (read ∪ write) belongs to one declared
	// request and therefore to one connected component — including write-only
	// footprints, which contribute no read sharing but are still acquired
	// atomically by a single request.
	var first = -1
	for _, ids := range [][]ResourceID{read, write} {
		for _, id := range ids {
			if first < 0 {
				first = int(id)
				continue
			}
			b.union(first, int(id))
		}
	}
	return nil
}

// DeclareReadGroup is shorthand for DeclareRequest(ids, nil): it declares
// that the listed resources may all be requested together by a single read
// request, making them pairwise read shared.
func (b *SpecBuilder) DeclareReadGroup(ids ...ResourceID) error {
	return b.DeclareRequest(ids, nil)
}

// Build freezes the builder into an immutable Spec. The builder may continue
// to be used afterwards; the Spec keeps independent copies.
//
// Build transitively closes the read sets: if ℓb ∈ S(ℓa) then S(ℓb) ⊆ S(ℓa).
// The paper defines D = ∪_{ℓa∈N} S(ℓa) over the raw relation, but ~ is not
// transitive, and without closure a write request can lock an expansion
// extra ℓ' whose own read set is not covered by D. A read blocked on that
// extra then blocks the entitlement of an earlier-timestamped write that
// shares a resource with the read but not with the holder — falsifying
// Lemma 6 and with it the Theorem 2 bound. (Concrete counterexample, found
// by the randomized invariant harness: declared read sets {ℓ0,ℓ3} and
// {ℓ2,ℓ3}; W46 writes ℓ4, W48 writes ℓ2 and so locks extra ℓ3; read R58 of
// {ℓ0,ℓ3} is blocked by W48's lock on ℓ3 and becomes entitled, its presence
// in RQ(ℓ0) blocking the earlier W46, which expands over ℓ0 — W46 is the
// earliest incomplete write yet neither entitled nor satisfied.) Closure
// makes D self-covering, which is exactly what the Lemma 6 proof's step
// "ℓa must be in at least one of these read sets" requires.
func (b *SpecBuilder) Build() *Spec {
	s := &Spec{q: b.q, readSets: make([]ResourceSet, b.q)}
	for i := range b.readSets {
		s.readSets[i] = b.readSets[i].Clone()
	}
	for changed := true; changed; {
		changed = false
		for a := range s.readSets {
			before := s.readSets[a].Len()
			s.readSets[a].ForEach(func(bID ResourceID) bool {
				if int(bID) != a {
					s.readSets[a].UnionWith(s.readSets[bID])
				}
				return true
			})
			if s.readSets[a].Len() != before {
				changed = true
			}
		}
	}
	// Component assignment: dense indices in order of each component's
	// smallest resource ID, so the numbering is stable and independent of
	// declaration order. The transitive closure above never crosses a
	// component boundary (readSets only ever grow within declared
	// footprints), so S(ℓa) ⊆ component(a) holds by construction.
	s.comp = make([]int, b.q)
	roots := map[int]int{}
	for a := 0; a < b.q; a++ {
		r := b.find(a)
		c, ok := roots[r]
		if !ok {
			c = len(s.compRes)
			roots[r] = c
			s.compRes = append(s.compRes, nil)
		}
		s.comp[a] = c
		s.compRes[c] = append(s.compRes[c], ResourceID(a))
	}
	return s
}

// NumComponents returns the number of connected components of the declared
// footprints. Resources never named by any DeclareRequest each form their
// own singleton component.
func (s *Spec) NumComponents() int { return len(s.compRes) }

// Component returns the dense component index of resource a. Components are
// numbered in order of their smallest resource ID.
func (s *Spec) Component(a ResourceID) int {
	if a < 0 || int(a) >= s.q {
		panic(fmt.Sprintf("core: resource %d out of range [0,%d)", a, s.q))
	}
	return s.comp[a]
}

// ComponentResources returns the resources of component c in ascending
// order. The returned slice must not be modified.
func (s *Spec) ComponentResources(c int) []ResourceID { return s.compRes[c] }

// NumResources returns q, the number of resources in the system.
func (s *Spec) NumResources() int { return s.q }

// ReadSet returns S(ℓa), the set of resources read shared with a.
// The returned set must not be modified.
func (s *Spec) ReadSet(a ResourceID) ResourceSet {
	if a < 0 || int(a) >= s.q {
		panic(fmt.Sprintf("core: resource %d out of range [0,%d)", a, s.q))
	}
	return s.readSets[a]
}

// Expand returns ∪_{ℓa ∈ n} S(ℓa): the full set of resources a write
// request needing n must pertain to (Sec. 3.2).
func (s *Spec) Expand(n ResourceSet) ResourceSet {
	var d ResourceSet
	n.ForEach(func(a ResourceID) bool {
		d.UnionWith(s.readSets[a])
		return true
	})
	return d
}

// Validate checks that every ID of n names a resource of this system.
// Violations wrap ErrUnknownResource.
func (s *Spec) Validate(n ResourceSet) error {
	var err error
	n.ForEach(func(a ResourceID) bool {
		if int(a) >= s.q {
			err = fmt.Errorf("%w: resource %d not in [0,%d)", ErrUnknownResource, a, s.q)
			return false
		}
		return true
	})
	return err
}
