package core

import (
	"errors"
	"testing"
)

// Uncontended incremental request: satisfied immediately with the whole
// potential set held (Rules R1/W1 apply unchanged).
func TestIncrementalUncontendedImmediate(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	id, err := m.IssueIncremental(1, nil, []ResourceID{la, lc}, nil, []ResourceID{la}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, m, id, StateSatisfied)
	ok, err := m.Granted(id, []ResourceID{la, lc})
	if err != nil || !ok {
		t.Fatalf("Granted = %v, %v; want full set held", ok, err)
	}
	ri, _ := m.Info(id)
	if ri.AcquisitionDelay() != 0 {
		t.Errorf("delay = %d, want 0", ri.AcquisitionDelay())
	}
	mustComplete(t, m, 2, id)
}

// Contended incremental write: entitled first, then granted subsets as
// conflicting holders drain, in ask order; satisfied when the full needed
// set is held.
func TestIncrementalGrantsAsHoldersDrain(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})

	rA := mustIssue(t, m, 1, []ResourceID{la}, nil) // reader holds ℓa
	rC := mustIssue(t, m, 2, []ResourceID{lc}, nil) // reader holds ℓc

	// Incremental write over potential {ℓa, ℓc}; initially asks for ℓc.
	id, err := m.IssueIncremental(3, nil, []ResourceID{la, lc}, nil, []ResourceID{lc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, m, id, StateEntitled) // blocked only by readers

	// ℓc still read locked: no grant yet.
	if ok, _ := m.Granted(id, []ResourceID{lc}); ok {
		t.Fatal("granted ℓc while read locked")
	}
	mustComplete(t, m, 4, rC)
	if ok, _ := m.Granted(id, []ResourceID{lc}); !ok {
		t.Fatal("ℓc not granted after reader completed")
	}
	wantState(t, m, id, StateEntitled) // still incomplete: ℓa outstanding? no — not asked yet

	// Ask for ℓa: still read locked → not granted synchronously.
	ok, err := m.Acquire(5, id, []ResourceID{la})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ℓa granted while read locked")
	}
	mustComplete(t, m, 6, rA)
	if ok, _ := m.Granted(id, []ResourceID{la}); !ok {
		t.Fatal("ℓa not granted after reader completed")
	}
	// Full needed set held → satisfied.
	wantState(t, m, id, StateSatisfied)

	ri, _ := m.Info(id)
	// Cumulative acquisition delay: ℓc ask waited [3,4); ℓa ask waited
	// [5,6); total 2.
	if got := ri.AcquisitionDelay(); got != 2 {
		t.Errorf("cumulative incremental delay = %d, want 2", got)
	}
	mustComplete(t, m, 7, id)
}

// An incremental request may complete early without acquiring the rest of
// its potential set.
func TestIncrementalEarlyComplete(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	rA := mustIssue(t, m, 1, []ResourceID{la}, nil)

	id, err := m.IssueIncremental(2, nil, []ResourceID{la, lc}, nil, []ResourceID{lc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, m, id, StateEntitled)
	if ok, _ := m.Granted(id, []ResourceID{lc}); !ok {
		t.Fatal("ℓc (free) not granted to the entitled request")
	}
	// Complete while entitled, having only ever held ℓc.
	mustComplete(t, m, 3, id)

	// The queues must be clean: a later write of ℓc sails through.
	w := mustIssue(t, m, 4, nil, []ResourceID{lc})
	wantState(t, m, w, StateSatisfied)
	mustComplete(t, m, 5, w)
	mustComplete(t, m, 6, rA)
}

// While an incremental request is entitled with partial grants, conflicting
// requests cannot be satisfied (Cors. 1–2: entitlement protects the whole
// potential set).
func TestIncrementalEntitlementProtectsPotentialSet(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	rA := mustIssue(t, m, 1, []ResourceID{la}, nil)

	id, err := m.IssueIncremental(2, nil, []ResourceID{la, lc}, nil, []ResourceID{lc}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, m, id, StateEntitled)

	// A later write of ℓc conflicts with the entitled incremental request:
	// it must wait even though it "only" sees a partially granted holder.
	w := mustIssue(t, m, 3, nil, []ResourceID{lc})
	wantState(t, m, w, StateWaiting)

	// A later read of ℓc also waits, and is not entitled either: the head
	// of WQ(ℓc) is the entitled incremental request itself (Def. 3).
	r := mustIssue(t, m, 4, []ResourceID{lc}, nil)
	wantState(t, m, r, StateWaiting)

	mustComplete(t, m, 5, rA)
	wantState(t, m, id, StateEntitled) // ℓa not asked: still entitled, holding ℓc
	mustComplete(t, m, 6, id)
	// With the incremental request gone, w reaches the head of WQ(ℓc),
	// becomes entitled with an empty blocking set, and is satisfied; the
	// read then waits out the write phase (phase-fair alternation).
	wantState(t, m, w, StateSatisfied)
	wantState(t, m, r, StateEntitled)
	mustComplete(t, m, 7, w)
	wantState(t, m, r, StateSatisfied)
	mustComplete(t, m, 8, r)
}

// Incremental reads: grants require only the absence of write locks.
func TestIncrementalRead(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	w := mustIssue(t, m, 1, nil, []ResourceID{la}) // write-locks ℓa (+ℓb extra)

	id, err := m.IssueIncremental(2, []ResourceID{la, lc}, nil, []ResourceID{lc}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, m, id, StateEntitled) // blocked by satisfied write on ℓa
	if ok, _ := m.Granted(id, []ResourceID{lc}); !ok {
		t.Fatal("free resource ℓc not granted to entitled read")
	}
	// Another reader shares ℓc concurrently with the partial grant.
	r2 := mustIssue(t, m, 3, []ResourceID{lc}, nil)
	wantState(t, m, r2, StateSatisfied)

	ok, err := m.Acquire(4, id, []ResourceID{la})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ℓa granted while write locked")
	}
	mustComplete(t, m, 5, w)
	wantState(t, m, id, StateSatisfied)
	mustComplete(t, m, 6, id)
	mustComplete(t, m, 7, r2)
}

func TestIncrementalErrors(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})

	// Initial ask outside the potential set.
	if _, err := m.IssueIncremental(1, nil, []ResourceID{la}, nil, []ResourceID{lc}, nil); err == nil {
		t.Error("out-of-set initial ask accepted")
	}

	id, err := m.IssueIncremental(2, nil, []ResourceID{la, lc}, nil, []ResourceID{la}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ask outside the potential set.
	if _, err := m.Acquire(3, id, []ResourceID{lb}); err == nil {
		t.Error("out-of-set ask accepted")
	}
	// Acquire on a non-incremental request.
	plain := mustIssue(t, m, 4, []ResourceID{lb}, nil)
	if _, err := m.Acquire(5, plain, []ResourceID{lb}); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("non-incremental acquire: err = %v", err)
	}
	// Acquire of already-held resources returns true immediately.
	ok, err := m.Acquire(6, id, []ResourceID{la, lc})
	if err != nil || !ok {
		t.Fatalf("already-held acquire = %v, %v", ok, err)
	}
	// Unknown request.
	if _, err := m.Acquire(7, 999, []ResourceID{la}); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown acquire: err = %v", err)
	}
	// Granted on unknown request.
	if _, err := m.Granted(999, []ResourceID{la}); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown granted: err = %v", err)
	}
}

// Acquire with an in-flight partial want merges asks.
func TestIncrementalMergedAsks(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	blocker := mustIssue(t, m, 1, nil, []ResourceID{la, lb, lc})

	id, err := m.IssueIncremental(2, nil, []ResourceID{la, lc}, nil, []ResourceID{la}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, m, id, StateWaiting) // blocked by the write holder; not yet entitled
	if ok, _ := m.Acquire(3, id, []ResourceID{lc}); ok {
		t.Fatal("grant while blocked")
	}
	mustComplete(t, m, 4, blocker)
	// Both merged asks granted at once; full set held → satisfied.
	wantState(t, m, id, StateSatisfied)
	ri, _ := m.Info(id)
	// The oldest outstanding ask started at t=2; granted at t=4.
	if got := ri.AcquisitionDelay(); got != 2 {
		t.Errorf("delay = %d, want 2", got)
	}
	mustComplete(t, m, 5, id)
}
