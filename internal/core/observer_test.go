package core

import (
	"reflect"
	"testing"
)

func TestMultiObserverCollapse(t *testing.T) {
	if got := MultiObserver(); got != nil {
		t.Errorf("MultiObserver() = %v, want nil", got)
	}
	if got := MultiObserver(nil, nil); got != nil {
		t.Errorf("MultiObserver(nil, nil) = %v, want nil", got)
	}
	single := ObserverFunc(func(Event) {})
	got := MultiObserver(nil, single, nil)
	if reflect.ValueOf(got).Pointer() != reflect.ValueOf(single).Pointer() {
		t.Errorf("single live observer should be returned unchanged, got %T", got)
	}
}

func TestMultiObserverFanOutOrder(t *testing.T) {
	var order []int
	mk := func(i int) Observer {
		return ObserverFunc(func(Event) { order = append(order, i) })
	}
	mo := MultiObserver(mk(1), nil, mk(2), mk(3))
	mo.Observe(Event{})
	if want := []int{1, 2, 3}; !reflect.DeepEqual(order, want) {
		t.Errorf("delivery order = %v, want %v", order, want)
	}
}

func TestMultiObserverFlattens(t *testing.T) {
	var n int
	count := ObserverFunc(func(Event) { n++ })
	inner := MultiObserver(count, count)
	outer := MultiObserver(inner, count)
	flat, ok := outer.(multiObserver)
	if !ok {
		t.Fatalf("composition of multiObserver = %T, want multiObserver", outer)
	}
	if len(flat) != 3 {
		t.Errorf("nested multi-observer not flattened: len=%d, want 3", len(flat))
	}
	outer.Observe(Event{})
	if n != 3 {
		t.Errorf("fan-out delivered %d times, want 3", n)
	}
}

// TestMultiObserverRSM attaches two recorders through MultiObserver and
// checks both see the identical event stream from a live RSM.
func TestMultiObserverRSM(t *testing.T) {
	var a, b []Event
	m := NewRSM(NewSpecBuilder(2).Build(), Options{})
	m.SetObserver(MultiObserver(
		ObserverFunc(func(e Event) { a = append(a, e) }),
		ObserverFunc(func(e Event) { b = append(b, e) }),
	))
	id1, err := m.Issue(1, nil, []ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := m.Issue(2, []ResourceID{0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Complete(3, id1); err != nil {
		t.Fatal(err)
	}
	if err := m.Complete(4, id2); err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("no events delivered")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("observers diverged:\n a=%v\n b=%v", a, b)
	}
}
