// Package core implements the request-satisfaction mechanism (RSM) of the
// R/W RNLP — the reader/writer real-time nested locking protocol of Ward and
// Anderson ("Multi-Resource Real-Time Reader/Writer Locks for
// Multiprocessors", IPDPS 2014).
//
// The RSM is the protocol's ordering brain: it decides when resource
// requests are satisfied, independent of how waiting is realized (spinning
// or suspending) and of the progress mechanism that keeps lock holders
// scheduled. This package is therefore a pure, single-threaded state
// machine driven by invocations (request issuance and critical-section
// completion, Rule G4); the discrete-event simulator (internal/sim) and the
// goroutine-facing runtime lock (package rwrnlp) both embed it.
//
// Implemented protocol features:
//
//   - the base RSM: Rules G1–G4, R1–R2, W1–W2 and entitlement Defs. 3–4
//     (Sec. 3.2 of the paper), with write-request expansion over read sets;
//   - placeholder requests instead of expansion (Sec. 3.4, Options.Placeholders);
//   - R/W mixing: requests that read some resources and write others
//     (Sec. 3.5);
//   - read-to-write upgrading (Sec. 3.6);
//   - incremental locking within an entitled request (Sec. 3.7).
package core

import (
	"errors"
	"fmt"
)

// Options configure protocol variants of the RSM.
type Options struct {
	// Placeholders selects the Sec. 3.4 optimization: instead of expanding a
	// write request's lock set to ∪ S(ℓ), enqueue placeholder entries in the
	// write queues of the non-needed read-shared resources and lock only N.
	// Placeholders preserve the worst-case bounds and strictly increase
	// concurrency.
	Placeholders bool

	// RecordHistory retains a RequestInfo for every completed or canceled
	// request, retrievable via History. Experiments use it to compute
	// acquisition-delay statistics without an Observer.
	RecordHistory bool

	// ChaosSkipWQHeadCheck is a TEST-ONLY fault-injection switch used by the
	// systematic model checker (internal/mc) to validate that its detectors
	// actually fire: it removes freshPass's write-queue head check,
	// re-introducing the satisfaction-overtakes-earlier-write bug ruled out
	// by Finding 1 (see freshPass). A later-timestamped write can then be
	// satisfied past an earlier conflicting one, falsifying Lemma 6 and the
	// mutex-RNLP satisfaction order. Never enable outside tests.
	ChaosSkipWQHeadCheck bool

	// ChaosDeafFreshReads is a TEST-ONLY fault-injection switch validating
	// the model checker's fast-path admission detector: it makes freshPass
	// skip read requests and disables lateReadPass, so a fresh read issued
	// into a writer-free component strands in StateWaiting instead of being
	// satisfied immediately — breaking exactly the implication
	// (WriterFree ⇒ immediate read satisfaction) the runtime reader fast
	// path relies on. Never enable outside tests.
	ChaosDeafFreshReads bool

	// ChaosDeafFreshWrites is the writer-plane counterpart of
	// ChaosDeafFreshReads: freshPass skips write-capable requests (still
	// clearing their fresh flag) and entitlePass refuses to entitle them, so
	// a fresh write issued into an IDLE component strands in StateWaiting —
	// breaking exactly the implication (ComponentIdle ⇒ immediate
	// satisfaction) the runtime writer fast path relies on. Entitlement must
	// be suppressed too: a stranded fresh write in an otherwise empty
	// component heads every queue and would be entitled and satisfied within
	// the same stabilize call, hiding the injected fault from the detector.
	// Never enable outside tests.
	ChaosDeafFreshWrites bool

	// FirstID and IDStep stride the request-ID space so several RSMs feeding
	// shared observers mint globally unique IDs (the sharded runtime lock
	// runs one RSM per resource component; shard i uses FirstID=i,
	// IDStep=numShards). IDs are FirstID+IDStep, FirstID+2·IDStep, … — still
	// strictly increasing within one RSM, so per-RSM timestamp reasoning is
	// unaffected. A zero (or negative) IDStep means 1, giving the default
	// dense numbering 1, 2, 3, …
	FirstID ReqID
	IDStep  ReqID
}

// Exported errors returned by RSM methods on API misuse.
var (
	ErrUnknownRequest  = errors.New("core: unknown or completed request")
	ErrBadState        = errors.New("core: request is not in a valid state for this operation")
	ErrTimeRegressed   = errors.New("core: invocation time precedes an earlier invocation (violates G4 total order)")
	ErrEmptyRequest    = errors.New("core: request needs no resources")
	ErrNotUpgrade      = errors.New("core: request is not an upgradeable pair")
	ErrNotIncremental  = errors.New("core: request is not incremental")
	ErrUnknownResource = errors.New("core: resource out of range")
)

// resourceState is the per-resource queue and lock state of Fig. 1: a read
// queue RQ(ℓ), a timestamp-ordered write queue WQ(ℓ) (which may contain
// placeholder entries in placeholder mode), and the current holders.
type resourceState struct {
	wq          []wqEntry  // FIFO by timestamp (Rule W1)
	rq          []*request // issuance order (order is irrelevant for reads)
	readHolders []*request // satisfied requests holding ℓ in read mode
	writeHolder *request   // the unique satisfied request holding ℓ in write mode
}

type wqEntry struct {
	r           *request
	placeholder bool
}

// RSM is the request-satisfaction mechanism. It is NOT safe for concurrent
// use; callers serialize invocations (Rule G4 requires a total order anyway).
type RSM struct {
	spec *Spec
	opt  Options

	nextID ReqID
	lastT  Time

	res        []resourceState
	reqs       map[ReqID]*request
	incomplete []*request // all incomplete requests, timestamp order

	nextGroup int64

	obs     Observer
	history []RequestInfo

	stats Stats
}

// Stats aggregates protocol activity counters.
type Stats struct {
	Issued          int64
	Satisfied       int64
	Completed       int64
	Canceled        int64
	ImmediateSats   int64 // satisfied at issuance via R1/W1
	Entitlements    int64
	UpgradesTaken   int64 // read halves that proceeded to the write segment
	UpgradesSkipped int64 // write halves canceled because no upgrade was needed
}

// NewRSM creates an RSM for the resource system described by spec.
func NewRSM(spec *Spec, opt Options) *RSM {
	if opt.IDStep <= 0 {
		opt.IDStep = 1
	}
	return &RSM{
		spec:   spec,
		opt:    opt,
		nextID: opt.FirstID,
		res:    make([]resourceState, spec.NumResources()),
		reqs:   make(map[ReqID]*request),
	}
}

// SetObserver installs obs to receive protocol events; nil disables.
func (m *RSM) SetObserver(obs Observer) { m.obs = obs }

// Spec returns the resource-system description the RSM was built with.
func (m *RSM) Spec() *Spec { return m.spec }

// Options returns the protocol variant configuration.
func (m *RSM) Options() Options { return m.opt }

// Stats returns a copy of the activity counters.
func (m *RSM) Stats() Stats { return m.stats }

// History returns the records of completed/canceled requests accumulated
// under Options.RecordHistory. The returned slice is owned by the caller.
func (m *RSM) History() []RequestInfo {
	h := make([]RequestInfo, len(m.history))
	copy(h, m.history)
	return h
}

func (m *RSM) emit(t Time, typ EventType, r *request, rs ResourceSet) {
	if m.obs == nil {
		return
	}
	e := Event{
		T: t, Type: typ, Req: r.id, Kind: r.kind,
		Resources:   rs,
		Read:        r.needRead.Clone(),
		Write:       r.writeLockSet(),
		Incremental: r.incremental,
		Tag:         r.tag,
	}
	if r.groupPeer != nil {
		e.Pair = r.groupPeer.id
	}
	switch typ {
	case EvIssued:
		if r.state == StateWaiting {
			e.Blockers = m.blockerIDs(r, false)
		}
	case EvEntitled:
		e.Blockers = m.blockerIDs(r, true)
	}
	m.obs.Observe(e)
}

// blockerIDs lists the incomplete requests r is waiting behind, in timestamp
// order: the conflicting satisfied requests and — unless holdersOnly — the
// conflicting entitled ones too. This is the blocking condition of Rules
// R1/W1 (holdersOnly=false, at issuance) and the blocking set B(R, t) of
// Rules R2/W2 (holdersOnly=true, at entitlement). Only computed when an
// observer is attached, so the unobserved invocation path never pays for it.
func (m *RSM) blockerIDs(r *request, holdersOnly bool) []ReqID {
	var ids []ReqID
	for _, o := range m.incomplete {
		if o == r {
			continue
		}
		holding := o.state == StateSatisfied ||
			(o.state == StateEntitled && (!holdersOnly || (o.incremental && !o.granted.Empty())))
		if !holding {
			continue
		}
		if r.conflictsWith(o) {
			ids = append(ids, o.id)
		}
	}
	return ids
}

func (m *RSM) checkTime(t Time) error {
	if t < m.lastT {
		return fmt.Errorf("%w: t=%d < last=%d", ErrTimeRegressed, t, m.lastT)
	}
	m.lastT = t
	return nil
}

// ---------------------------------------------------------------------------
// Issuance (Rules G1, R1, W1; Secs. 3.4–3.5)

// Issue issues a request at time t that needs read access to the resources
// in read and write access to those in write (Sec. 3.5 mixing: both may be
// non-empty; overlapping IDs are treated as writes). A request with an empty
// write set is a read request; otherwise it is a write request.
//
// The returned ReqID identifies the request in subsequent calls. Use Info to
// learn whether it was satisfied immediately. tag is an opaque annotation
// carried into events (pass nil if unused).
func (m *RSM) Issue(t Time, read, write []ResourceID, tag any) (ReqID, error) {
	nr := NewResourceSet(read...)
	nw := NewResourceSet(write...)
	nr.SubtractWith(nw) // overlap is a write
	return m.issueSets(t, nr, nw, tag)
}

func (m *RSM) issueSets(t Time, nr, nw ResourceSet, tag any) (ReqID, error) {
	if err := m.checkTime(t); err != nil {
		return 0, err
	}
	r, err := m.buildRequest(t, nr, nw, tag)
	if err != nil {
		return 0, err
	}
	m.enqueue(r)
	m.emit(t, EvIssued, r, r.pertainSet())
	m.stabilize(t)
	return r.id, nil
}

// buildRequest validates the needed sets and constructs the request with its
// expansion extras or placeholder set, without enqueueing it.
func (m *RSM) buildRequest(t Time, nr, nw ResourceSet, tag any) (*request, error) {
	if err := m.spec.Validate(nr); err != nil {
		return nil, err
	}
	if err := m.spec.Validate(nw); err != nil {
		return nil, err
	}
	need := Union(nr, nw)
	if need.Empty() {
		return nil, ErrEmptyRequest
	}
	m.nextID += m.opt.IDStep
	r := &request{
		id:        m.nextID,
		seq:       int64(m.nextID),
		needRead:  nr,
		needWrite: nw,
		need:      need,
		state:     StateWaiting,
		issueT:    t,
		fresh:     true,
		tag:       tag,
	}
	if nw.Empty() {
		r.kind = KindRead
		r.rqSet = need.Clone()
	} else {
		r.kind = KindWrite
		// Write-request expansion (Sec. 3.2): pertain to every resource read
		// shared with a needed resource, either by acquiring it (expanded
		// mode) or by a placeholder entry in its write queue (Sec. 3.4).
		extra := m.spec.Expand(need)
		extra.SubtractWith(need)
		if m.opt.Placeholders {
			r.placeholders = extra
			r.wqSet = need.Clone()
		} else {
			r.extraWrite = extra
			r.wqSet = need.Clone()
			r.wqSet.UnionWith(extra)
		}
	}
	m.stats.Issued++
	return r, nil
}

// enqueue inserts the request into the queues of every resource it pertains
// to (Rules R1/W1 first clauses; Sec. 3.4 placeholder enqueueing).
func (m *RSM) enqueue(r *request) {
	m.reqs[r.id] = r
	m.incomplete = append(m.incomplete, r)
	if r.kind == KindRead {
		r.rqSet.ForEach(func(a ResourceID) bool {
			m.res[a].rq = append(m.res[a].rq, r)
			return true
		})
		return
	}
	r.wqSet.ForEach(func(a ResourceID) bool {
		m.res[a].wq = append(m.res[a].wq, wqEntry{r: r})
		return true
	})
	r.placeholders.ForEach(func(a ResourceID) bool {
		m.res[a].wq = append(m.res[a].wq, wqEntry{r: r, placeholder: true})
		return true
	})
	// Write queues are kept in timestamp order. Requests are issued with
	// increasing timestamps, so appending preserves order; this sort is a
	// defensive invariant guard that costs nothing when already sorted.
}

// ---------------------------------------------------------------------------
// Completion (Rules G2, G3)

// Complete reports at time t that the request's critical section finished.
// All resources held by the request are unlocked (Rule G3). Valid only for
// satisfied requests — or entitled incremental requests, which may complete
// having acquired only a subset of their potential resources (Sec. 3.7).
func (m *RSM) Complete(t Time, id ReqID) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	r := m.reqs[id]
	if r == nil {
		return fmt.Errorf("%w: id=%d", ErrUnknownRequest, id)
	}
	switch {
	case r.state == StateSatisfied:
	case r.state == StateEntitled && r.incremental:
		// An incremental request may finish early without acquiring the rest
		// of its potential set; it still occupies its queue slots, so remove
		// them now.
		m.dequeueAll(r)
	default:
		return fmt.Errorf("%w: Complete(%d) in state %s", ErrBadState, id, r.state)
	}
	m.unlockAll(r)
	r.state = StateComplete
	r.completeT = t
	m.removeIncomplete(r)
	m.stats.Completed++
	m.emit(t, EvCompleted, r, r.pertainSet())
	m.record(r)
	m.stabilize(t)
	return nil
}

// unlockAll releases every resource currently locked by r.
func (m *RSM) unlockAll(r *request) {
	r.granted.ForEach(func(a ResourceID) bool {
		rs := &m.res[a]
		if rs.writeHolder == r {
			rs.writeHolder = nil
		}
		rs.readHolders = removeReq(rs.readHolders, r)
		return true
	})
	r.granted = ResourceSet{}
}

// dequeueAll removes r (and its placeholders) from every queue (Rule G2).
func (m *RSM) dequeueAll(r *request) {
	r.rqSet.ForEach(func(a ResourceID) bool {
		m.res[a].rq = removeReq(m.res[a].rq, r)
		return true
	})
	both := Union(r.wqSet, r.placeholders)
	both.ForEach(func(a ResourceID) bool {
		m.res[a].wq = removeWQ(m.res[a].wq, r)
		return true
	})
}

func (m *RSM) removeIncomplete(r *request) {
	m.incomplete = removeReq(m.incomplete, r)
	delete(m.reqs, r.id)
}

func (m *RSM) record(r *request) {
	if m.opt.RecordHistory {
		m.history = append(m.history, r.info())
	}
}

func removeReq(s []*request, r *request) []*request {
	for i, x := range s {
		if x == r {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func removeWQ(s []wqEntry, r *request) []wqEntry {
	out := s[:0]
	for _, e := range s {
		if e.r != r {
			out = append(out, e)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// The stabilization fixed point

// stabilize drives the RSM to the unique post-invocation state: it applies
// Rules R1/W1 (immediate satisfaction, for requests flagged for recheck),
// R2/W2 (satisfaction of entitled requests whose blocking set emptied),
// incremental grants (Sec. 3.7), and entitlement transitions (Defs. 3–4),
// repeating in timestamp order until no rule fires. Timestamp order makes
// the result deterministic; the paper's Props. E1–E10 guarantee the fixed
// point is reached after O(requests) rounds.
func (m *RSM) stabilize(t Time) {
	for {
		changed := false
		if m.freshPass(t) {
			changed = true
		}
		if m.satisfyPass(t) {
			changed = true
		}
		if m.grantPass(t) {
			changed = true
		}
		if m.entitlePass(t) {
			changed = true
		}
		if m.lateReadPass(t) {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// freshPass applies the immediate-satisfaction clauses of Rules R1/W1 to
// requests at their issuance invocation: a fresh waiting request that
// conflicts with no entitled or satisfied request is satisfied at once.
// One refinement over the paper's literal text (Finding 1,
// IMPLEMENTATION.md): a write must additionally head every write queue it
// is enqueued in (including placeholder queues) — satisfaction must never
// overtake an earlier-timestamped conflicting write, or Lemma 6 (and with
// it the Theorem 2 bound) breaks. Sec. 3.4 states this explicitly:
// placeholders "prevent later-issued write requests from becoming entitled
// or satisfied".
func (m *RSM) freshPass(t Time) bool {
	changed := false
	for _, r := range snapshot(m.incomplete) {
		if r.state != StateWaiting || !r.fresh {
			continue
		}
		r.fresh = false
		if r.kind == KindRead && m.opt.ChaosDeafFreshReads {
			continue
		}
		if r.kind == KindWrite && m.opt.ChaosDeafFreshWrites {
			continue
		}
		if r.kind == KindWrite && !m.opt.ChaosSkipWQHeadCheck && !m.headEverywhere(r) {
			continue
		}
		if !m.conflictsActive(r) {
			m.satisfy(t, r, true)
			changed = true
		}
	}
	return changed
}

// lateReadPass re-applies Rule R1's satisfaction test to non-fresh waiting
// READS after entitlement updates (Finding 3): a read whose last blocker
// vanished without write-locking anything can satisfy neither Def. 3 nor
// R2 and would strand. Running after entitlePass ensures a write that
// became entitled at this same invocation blocks the read (reads concede to
// entitled writes). Writes never need this: Def. 4 has no trigger
// precondition, so an unblocked waiting write always proceeds through
// entitle→satisfy (Props. E7/E9).
func (m *RSM) lateReadPass(t Time) bool {
	if m.opt.ChaosDeafFreshReads {
		return false
	}
	changed := false
	for _, r := range snapshot(m.incomplete) {
		if r.state != StateWaiting || r.kind != KindRead {
			continue
		}
		if !m.conflictsActive(r) {
			m.satisfy(t, r, true)
			changed = true
		}
	}
	return changed
}

// headEverywhere reports whether r (or its placeholder) heads every write
// queue it is enqueued in.
func (m *RSM) headEverywhere(r *request) bool {
	ok := true
	Union(r.wqSet, r.placeholders).ForEach(func(a ResourceID) bool {
		q := m.res[a].wq
		if len(q) == 0 || q[0].r != r {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// conflictsActive reports whether r conflicts with any entitled or satisfied
// incomplete request (the blocking condition of Rules R1/W1).
func (m *RSM) conflictsActive(r *request) bool {
	for _, o := range m.incomplete {
		if o == r || (o.state != StateEntitled && o.state != StateSatisfied) {
			continue
		}
		if r.conflictsWith(o) {
			return true
		}
	}
	return false
}

// satisfyPass applies Rules R2/W2: an entitled request is satisfied at the
// first instant its blocking set B(R, t) is empty.
func (m *RSM) satisfyPass(t Time) bool {
	changed := false
	for _, r := range snapshot(m.incomplete) {
		if r.state != StateEntitled || r.incremental {
			continue
		}
		if !m.blocked(r) {
			m.satisfy(t, r, false)
			changed = true
		}
	}
	return changed
}

// blocked reports whether B(r, t) ≠ ∅: some satisfied request conflicts
// with r. (Incremental partial holders count through their granted locks.)
func (m *RSM) blocked(r *request) bool {
	return m.someBlocker(r, func(*request) bool { return true })
}

// someBlocker reports whether any satisfied conflicting request matching
// keep blocks r. Conflicts are evaluated against the blocker's *actual*
// lock-relevant sets so that partially granted incremental requests block
// exactly through what they pertain to.
func (m *RSM) someBlocker(r *request, keep func(*request) bool) bool {
	for _, o := range m.incomplete {
		if o == r || !keep(o) {
			continue
		}
		holding := o.state == StateSatisfied ||
			(o.state == StateEntitled && o.incremental && !o.granted.Empty())
		if !holding {
			continue
		}
		if r.conflictsWith(o) {
			return true
		}
	}
	return false
}

// satisfy transitions r to Satisfied: dequeues it everywhere (Rule G2),
// locks its lock sets, and resolves upgrade-pair interactions (Sec. 3.6).
func (m *RSM) satisfy(t Time, r *request, immediate bool) {
	m.dequeueAll(r)
	if !r.placeholders.Empty() {
		m.emit(t, EvPlaceholdersRemoved, r, r.placeholders)
		r.placeholders = ResourceSet{}
	}
	r.state = StateSatisfied
	r.satisfyT = t
	if r.incremental {
		if r.askT >= 0 {
			r.incDelay += t - r.askT
			r.askT = -1
		}
		r.want = ResourceSet{}
	}
	m.lock(r, r.needRead, false)
	m.lock(r, r.writeLockSet(), true)
	m.stats.Satisfied++
	if immediate {
		m.stats.ImmediateSats++
	}
	m.emit(t, EvSatisfied, r, r.granted)

	// Sec. 3.6: if the write half of an upgradeable request is satisfied
	// while the read half is still queued, the read half is canceled.
	if r.upgradeRole == roleUWrite && r.groupPeer != nil {
		p := r.groupPeer
		if p.state == StateWaiting || p.state == StateEntitled {
			m.cancel(t, p)
		}
	}
}

// lock records r as holder of every resource in set, in write mode if write.
func (m *RSM) lock(r *request, set ResourceSet, write bool) {
	set.ForEach(func(a ResourceID) bool {
		rs := &m.res[a]
		if write {
			if rs.writeHolder != nil {
				panic(fmt.Sprintf("core: double write lock on resource %d (holder %d, new %d)", a, rs.writeHolder.id, r.id))
			}
			rs.writeHolder = r
		} else {
			rs.readHolders = append(rs.readHolders, r)
		}
		r.granted.Add(a)
		return true
	})
}

// entitlePass applies Defs. 3–4: waiting requests become entitled when
// eligible. Evaluation is in timestamp order so that, e.g., the read half of
// an upgradeable pair is considered before its write half.
func (m *RSM) entitlePass(t Time) bool {
	changed := false
	for _, r := range snapshot(m.incomplete) {
		if r.state != StateWaiting {
			continue
		}
		if r.kind == KindWrite && m.opt.ChaosDeafFreshWrites {
			continue
		}
		var ok bool
		if r.kind == KindRead {
			ok = m.readEntitleEligible(r)
		} else {
			ok = m.writeEntitleEligible(r)
		}
		if ok {
			r.state = StateEntitled
			r.entitleT = t
			m.stats.Entitlements++
			// Sec. 3.4: placeholders are removed when the request becomes
			// entitled (they have done their job: no later write passed).
			if !r.placeholders.Empty() {
				ph := r.placeholders
				r.placeholders = ResourceSet{}
				ph.ForEach(func(a ResourceID) bool {
					m.res[a].wq = removeWQ(m.res[a].wq, r)
					return true
				})
				m.emit(t, EvPlaceholdersRemoved, r, ph)
			}
			m.emit(t, EvEntitled, r, r.pertainSet())
			changed = true
		}
	}
	return changed
}

// readEntitleEligible implements Def. 3: an unsatisfied read request becomes
// entitled when some resource in D is write locked and, for every resource
// in D, the head of its write queue is not entitled (placeholders are never
// entitled; an empty queue is a null, non-entitled head).
func (m *RSM) readEntitleEligible(r *request) bool {
	someWriteLocked := false
	ok := true
	r.need.ForEach(func(a ResourceID) bool {
		rs := &m.res[a]
		if rs.writeHolder != nil {
			someWriteLocked = true
		}
		if len(rs.wq) > 0 {
			h := rs.wq[0]
			if !h.placeholder && h.r.state == StateEntitled {
				ok = false
				return false
			}
		}
		return true
	})
	return someWriteLocked && ok
}

// writeEntitleEligible implements Def. 4 with the Sec. 3.4 and Sec. 3.5
// adjustments: the request (or its placeholder) must be at the head of every
// write queue it is enqueued in — including placeholder queues; no read
// request in RQ(ℓ) may be entitled for any ℓ ∈ D; and no resource in D may
// be held by a write request (a resource read-locked by a mixed request is
// treated as if it were write locked).
func (m *RSM) writeEntitleEligible(r *request) bool {
	ok := true
	// Head of every write queue where enqueued (real and placeholder).
	Union(r.wqSet, r.placeholders).ForEach(func(a ResourceID) bool {
		rs := &m.res[a]
		if len(rs.wq) == 0 || rs.wq[0].r != r {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		return false
	}
	// For each ℓ ∈ D (needed set plus expansion extras): no entitled read,
	// and no write-kind holder.
	r.pertainSet().ForEach(func(a ResourceID) bool {
		rs := &m.res[a]
		for _, rr := range rs.rq {
			if rr.state == StateEntitled {
				ok = false
				return false
			}
		}
		if rs.writeHolder != nil {
			ok = false
			return false
		}
		for _, h := range rs.readHolders {
			if h.kind == KindWrite { // read-locked by a mixed request (Sec. 3.5)
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// snapshot copies the incomplete list so passes may mutate it while ranging.
func snapshot(s []*request) []*request {
	out := make([]*request, len(s))
	copy(out, s)
	return out
}

// ---------------------------------------------------------------------------
// Introspection

// Info returns a snapshot of the request's state. Completed or canceled
// requests are reported only when Options.RecordHistory is enabled;
// otherwise Info returns ErrUnknownRequest once a request is gone.
func (m *RSM) Info(id ReqID) (RequestInfo, error) {
	if r := m.reqs[id]; r != nil {
		return r.info(), nil
	}
	if m.opt.RecordHistory {
		for i := len(m.history) - 1; i >= 0; i-- {
			if m.history[i].ID == id {
				return m.history[i], nil
			}
		}
	}
	return RequestInfo{}, fmt.Errorf("%w: id=%d", ErrUnknownRequest, id)
}

// State returns the request's current lifecycle state, or StateComplete /
// StateCanceled from history if recorded.
func (m *RSM) State(id ReqID) (State, error) {
	ri, err := m.Info(id)
	return ri.State, err
}

// QueueState describes a resource's RSM state at one instant (Fig. 2(b)).
type QueueState struct {
	Resource    ResourceID
	RQ          []ReqID // waiting/entitled read requests
	WQ          []ReqID // waiting/entitled write requests, timestamp order
	Placeholder []bool  // Placeholder[i] reports whether WQ[i] is a placeholder entry
	ReadHolders []ReqID
	WriteHolder ReqID // 0 = none
}

// Queues returns the current queue/lock state of resource a.
func (m *RSM) Queues(a ResourceID) QueueState {
	rs := &m.res[a]
	qs := QueueState{Resource: a}
	for _, r := range rs.rq {
		qs.RQ = append(qs.RQ, r.id)
	}
	for _, e := range rs.wq {
		qs.WQ = append(qs.WQ, e.r.id)
		qs.Placeholder = append(qs.Placeholder, e.placeholder)
	}
	for _, r := range rs.readHolders {
		qs.ReadHolders = append(qs.ReadHolders, r.id)
	}
	if rs.writeHolder != nil {
		qs.WriteHolder = rs.writeHolder.id
	}
	return qs
}

// Incomplete returns the IDs of all incomplete requests in timestamp order.
func (m *RSM) Incomplete() []ReqID {
	ids := make([]ReqID, len(m.incomplete))
	for i, r := range m.incomplete {
		ids[i] = r.id
	}
	return ids
}

// Holders returns the IDs of requests currently holding resource a, with
// the write holder (if any) first.
func (m *RSM) Holders(a ResourceID) []ReqID {
	rs := &m.res[a]
	var ids []ReqID
	if rs.writeHolder != nil {
		ids = append(ids, rs.writeHolder.id)
	}
	for _, r := range rs.readHolders {
		ids = append(ids, r.id)
	}
	return ids
}
