package core

import "fmt"

// This file implements incremental locking (Sec. 3.7).
//
// An incremental request declares a priori the full set of resources it
// could possibly lock during its critical section (the same information the
// priority ceiling protocol requires) and is queued for all of them, but may
// take possession incrementally: once the request is entitled, a requested
// subset s is granted as soon as no resource in s is locked by a conflicting
// request. Because the request is entitled to its whole potential set,
// Corollaries 1 and 2 guarantee that no conflicting request can be satisfied
// before it, so the total acquisition delay summed over all incremental asks
// is bounded by the single-shot worst case of Theorems 1 and 2. Entitlement
// here plays the role the priority ceiling plays in the PCP.

// IssueIncremental issues an incremental request at time t. read and write
// are the full potential sets; initialRead/initialWrite (subsets of them)
// form the first ask. The request is enqueued for its full potential sets.
// If it is satisfied immediately (Rules R1/W1) it holds everything; check
// Info or the Granted method. Otherwise the first ask is granted once the
// request is entitled and the asked resources are free of conflicts.
func (m *RSM) IssueIncremental(t Time, read, write, initialRead, initialWrite []ResourceID, tag any) (ReqID, error) {
	if err := m.checkTime(t); err != nil {
		return 0, err
	}
	nr := NewResourceSet(read...)
	nw := NewResourceSet(write...)
	nr.SubtractWith(nw)
	r, err := m.buildRequest(t, nr, nw, tag)
	if err != nil {
		return 0, err
	}
	want := NewResourceSet(initialRead...)
	want.UnionWith(NewResourceSet(initialWrite...))
	if !r.need.ContainsAll(want) {
		return 0, fmt.Errorf("core: initial ask %s is not a subset of the potential set %s", want, r.need)
	}
	r.incremental = true
	r.want = want
	r.askT = t
	m.enqueue(r)
	m.emit(t, EvIssued, r, r.pertainSet())
	m.stabilize(t)
	return r.id, nil
}

// Acquire asks for additional resources of an incremental request at time t.
// The resources must belong to the declared potential set and not already be
// granted; any outstanding previous ask is merged. It returns true if the
// ask was granted synchronously (the caller holds the resources on return);
// otherwise the grant happens at a later invocation and is reported through
// an EvGranted event, with completion of the ask observable via Granted.
func (m *RSM) Acquire(t Time, id ReqID, resources []ResourceID) (bool, error) {
	if err := m.checkTime(t); err != nil {
		return false, err
	}
	r := m.reqs[id]
	if r == nil {
		return false, fmt.Errorf("%w: id=%d", ErrUnknownRequest, id)
	}
	if !r.incremental {
		return false, fmt.Errorf("%w: id=%d", ErrNotIncremental, id)
	}
	if r.state != StateEntitled && r.state != StateWaiting && r.state != StateSatisfied {
		return false, fmt.Errorf("%w: Acquire in state %s", ErrBadState, r.state)
	}
	ask := NewResourceSet(resources...)
	if !r.need.ContainsAll(ask) {
		return false, fmt.Errorf("core: ask %s is not a subset of the potential set %s", ask, r.need)
	}
	ask.SubtractWith(r.granted)
	if ask.Empty() && r.want.Empty() {
		return true, nil // everything already held
	}
	if r.state == StateSatisfied {
		// Satisfied means the full potential set is held already.
		return true, nil
	}
	r.want.UnionWith(ask)
	if r.askT < 0 {
		r.askT = t
	}
	m.stabilize(t)
	return r.want.Empty(), nil
}

// CancelAsk withdraws the outstanding (ungranted) ask of an incremental
// request, e.g. when the caller's context expires while waiting for a grant.
// A pending ask occupies no queues and holds nothing — Acquire only records
// the asked set on the request — so cancellation simply clears it; resources
// already granted are unaffected and the request itself stays issued (it
// still occupies the queues of its full potential set, as Sec. 3.7 requires).
func (m *RSM) CancelAsk(t Time, id ReqID) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	r := m.reqs[id]
	if r == nil {
		return fmt.Errorf("%w: id=%d", ErrUnknownRequest, id)
	}
	if !r.incremental {
		return fmt.Errorf("%w: id=%d", ErrNotIncremental, id)
	}
	r.want = ResourceSet{}
	r.askT = -1
	return nil
}

// Granted reports whether the request currently holds all resources in the
// given set (for incremental requests, whether an earlier ask has been
// granted).
func (m *RSM) Granted(id ReqID, resources []ResourceID) (bool, error) {
	r := m.reqs[id]
	if r == nil {
		return false, fmt.Errorf("%w: id=%d", ErrUnknownRequest, id)
	}
	return r.granted.ContainsAll(NewResourceSet(resources...)), nil
}

// grantPass grants outstanding incremental asks: an entitled incremental
// request's ask is granted atomically as soon as every asked resource is
// free of conflicting locks (Sec. 3.7).
func (m *RSM) grantPass(t Time) bool {
	changed := false
	for _, r := range snapshot(m.incomplete) {
		if !r.incremental || r.state != StateEntitled || r.want.Empty() {
			continue
		}
		if !m.askFree(r) {
			continue
		}
		ask := r.want.Clone()
		r.want = ResourceSet{}
		readPart := ask.Clone()
		readPart.IntersectWith(r.needRead)
		writePart := ask.Clone()
		writePart.IntersectWith(r.writeLockSet())
		m.lock(r, readPart, false)
		m.lock(r, writePart, true)
		if r.askT >= 0 {
			r.incDelay += t - r.askT
			r.askT = -1
		}
		m.emit(t, EvGranted, r, ask)
		// Once the full needed set is held the request is satisfied
		// outright: dequeue it everywhere (Rule G2). Expansion extras are
		// never granted incrementally; their queue entries persist until
		// this dequeue and thus gate later writes exactly as placeholders
		// would, so incremental requests behave identically in both modes.
		if r.granted.ContainsAll(r.need) {
			m.dequeueAll(r)
			r.state = StateSatisfied
			r.satisfyT = t
			m.stats.Satisfied++
			m.emit(t, EvSatisfied, r, r.granted)
		}
		changed = true
	}
	return changed
}

// askFree reports whether every resource in r.want is free of locks that
// conflict with r's access mode for that resource.
func (m *RSM) askFree(r *request) bool {
	free := true
	r.want.ForEach(func(a ResourceID) bool {
		rs := &m.res[a]
		if rs.writeHolder != nil {
			free = false
			return false
		}
		if r.writeLockSet().Has(a) && len(rs.readHolders) > 0 {
			free = false
			return false
		}
		return true
	})
	return free
}
