package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestResourceSetBasics(t *testing.T) {
	var s ResourceSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("zero value not empty: %v", s)
	}
	s.Add(3)
	s.Add(70)
	s.Add(3)
	if s.Len() != 2 || !s.Has(3) || !s.Has(70) || s.Has(4) {
		t.Fatalf("after adds: %v", s)
	}
	s.Remove(3)
	if s.Has(3) || s.Len() != 1 {
		t.Fatalf("after remove: %v", s)
	}
	s.Remove(200) // absent, no-op
	s.Remove(-1)  // negative, no-op
	if s.Len() != 1 {
		t.Fatalf("after no-op removes: %v", s)
	}
	if s.Has(-5) {
		t.Fatal("negative ID reported present")
	}
}

func TestResourceSetAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var s ResourceSet
	s.Add(-1)
}

func TestResourceSetSetOps(t *testing.T) {
	a := NewResourceSet(1, 2, 3, 64)
	b := NewResourceSet(3, 64, 100)

	u := Union(a, b)
	for _, id := range []ResourceID{1, 2, 3, 64, 100} {
		if !u.Has(id) {
			t.Errorf("union missing %d", id)
		}
	}
	if u.Len() != 5 {
		t.Errorf("union len = %d, want 5", u.Len())
	}

	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(NewResourceSet(7, 200)) {
		t.Error("disjoint sets reported intersecting")
	}

	c := a.Clone()
	c.SubtractWith(b)
	if c.Has(3) || c.Has(64) || !c.Has(1) || !c.Has(2) {
		t.Errorf("subtract wrong: %v", c)
	}

	d := a.Clone()
	d.IntersectWith(b)
	if !d.Equal(NewResourceSet(3, 64)) {
		t.Errorf("intersect wrong: %v", d)
	}

	if !u.ContainsAll(a) || !u.ContainsAll(b) {
		t.Error("union does not contain operands")
	}
	if a.ContainsAll(b) {
		t.Error("a should not contain b")
	}
}

func TestResourceSetEqualDifferentLengths(t *testing.T) {
	a := NewResourceSet(1)
	b := NewResourceSet(1, 100)
	b.Remove(100) // b now has trailing zero words
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets with different word counts but same members should be equal")
	}
}

func TestResourceSetForEachOrderAndEarlyStop(t *testing.T) {
	s := NewResourceSet(5, 1, 130, 64)
	var got []ResourceID
	s.ForEach(func(id ResourceID) bool {
		got = append(got, id)
		return true
	})
	want := []ResourceID{1, 5, 64, 130}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	n := 0
	s.ForEach(func(ResourceID) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestResourceSetString(t *testing.T) {
	if got := NewResourceSet(2, 0).String(); got != "{0, 2}" {
		t.Errorf("String() = %q", got)
	}
	if got := (ResourceSet{}).String(); got != "{}" {
		t.Errorf("empty String() = %q", got)
	}
}

// Property: Union is commutative and idempotent, and ContainsAll/Intersects
// are consistent with membership — verified against a map-based model.
func TestResourceSetQuickAgainstModel(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b ResourceSet
		ma, mb := map[ResourceID]bool{}, map[ResourceID]bool{}
		for _, x := range xs {
			a.Add(ResourceID(x))
			ma[ResourceID(x)] = true
		}
		for _, y := range ys {
			b.Add(ResourceID(y))
			mb[ResourceID(y)] = true
		}
		u := Union(a, b)
		if !u.Equal(Union(b, a)) {
			return false
		}
		inter := false
		for id := range ma {
			if !u.Has(id) {
				return false
			}
			if mb[id] {
				inter = true
			}
		}
		for id := range mb {
			if !u.Has(id) {
				return false
			}
		}
		if u.Len() != len(mergeKeys(ma, mb)) {
			return false
		}
		if a.Intersects(b) != inter {
			return false
		}
		return u.ContainsAll(a) && u.ContainsAll(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func mergeKeys(a, b map[ResourceID]bool) map[ResourceID]bool {
	m := map[ResourceID]bool{}
	for k := range a {
		m[k] = true
	}
	for k := range b {
		m[k] = true
	}
	return m
}

// Property: Subtract then Union with the same set restores a superset
// relationship, and IDs round-trips through NewResourceSet.
func TestResourceSetQuickRoundTrip(t *testing.T) {
	f := func(xs []uint8) bool {
		var s ResourceSet
		for _, x := range xs {
			s.Add(ResourceID(x))
		}
		back := NewResourceSet(s.IDs()...)
		return back.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}
