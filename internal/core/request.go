package core

import "fmt"

// Time is a logical time instant. The RSM never reads a clock: every
// invocation carries its own instant, supplied by the caller (the
// discrete-event simulator, or a monotonic stamp in the runtime plane).
// Units are opaque to the RSM; the simulator uses nanosecond ticks.
type Time int64

// ReqID identifies a request R_{i,k} issued to an RSM. IDs are unique for
// the lifetime of the RSM, never reused, and strictly increase in issuance
// order — a request's ID doubles as its timestamp ts(R_{i,k}) per Rule G1:
// the RSM serializes invocations (Rule G4), so issuance order is a total
// order consistent with the caller-supplied Time values.
type ReqID int64

// Kind distinguishes read requests R^r from write requests R^w.
// A mixed request (Sec. 3.5) is a write request whose read subset N^r is
// non-empty; there is no separate kind for it.
type Kind int

const (
	// KindRead is a read-only request: N^w = ∅.
	KindRead Kind = iota
	// KindWrite is a write request: N^w ≠ ∅ (possibly mixed, N^r ≠ ∅).
	KindWrite
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// State is the lifecycle state of a request.
//
//	Waiting ──► Entitled ──► Satisfied ──► Complete
//	   │            │ (incremental: partial grants while Entitled)
//	   └────────────┴──► Canceled          (upgrade pair halves only)
//	   └──► Satisfied  (immediate satisfaction, Rules R1/W1)
type State int

const (
	// StateWaiting: issued, enqueued, neither entitled nor satisfied.
	StateWaiting State = iota
	// StateEntitled: "next in line" (Defs. 3–4); blocked only by satisfied
	// requests of the opposite kind; remains entitled until satisfied.
	StateEntitled
	// StateSatisfied: holds all resources in its lock set; executing its
	// critical section.
	StateSatisfied
	// StateComplete: critical section finished; all resources released.
	StateComplete
	// StateCanceled: removed without being run to completion. Only the two
	// halves of an upgradeable request (Sec. 3.6) can be canceled.
	StateCanceled
)

func (s State) String() string {
	switch s {
	case StateWaiting:
		return "waiting"
	case StateEntitled:
		return "entitled"
	case StateSatisfied:
		return "satisfied"
	case StateComplete:
		return "complete"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// upgrade roles for the two halves of an upgradeable request.
const (
	roleNone   = 0
	roleURead  = 1 // R^{u_r}: the optimistic read half
	roleUWrite = 2 // R^{u_w}: the pessimistic write half
)

// request is the RSM's internal representation of one resource request.
type request struct {
	id  ReqID
	seq int64 // timestamp order ts(R); identical to id but kept separate for clarity

	kind Kind

	// Needed sets (Sec. 3.5 notation): N^r, N^w, and N = N^r ∪ N^w.
	needRead  ResourceSet
	needWrite ResourceSet
	need      ResourceSet

	// extraWrite is D \ N in expanded mode (Sec. 3.2): resources a write is
	// forced to additionally acquire (in write mode) to avoid inconsistent
	// phases. Empty for reads and in placeholder mode.
	extraWrite ResourceSet

	// placeholders is M = (∪_{ℓ∈N} S(ℓ)) \ N in placeholder mode
	// (Sec. 3.4): write queues holding a placeholder entry for this request.
	// Placeholder entries are removed when the request becomes entitled or
	// satisfied.
	placeholders ResourceSet

	// wqSet / rqSet: the write/read queues this request is (really) enqueued
	// in while incomplete. For a write, wqSet = N ∪ extraWrite; for a read,
	// rqSet = N.
	wqSet ResourceSet
	rqSet ResourceSet

	state State

	// Timestamps for metrics (acquisition delay analysis).
	issueT    Time
	entitleT  Time
	satisfyT  Time
	completeT Time

	// Upgradeable-request pairing (Sec. 3.6).
	group       int64 // 0 = not part of an upgrade pair
	groupPeer   *request
	upgradeRole int

	// Incremental locking (Sec. 3.7).
	incremental bool
	granted     ResourceSet // resources currently locked by this request
	want        ResourceSet // outstanding incremental asks not yet granted
	askT        Time        // time of the oldest outstanding ask (metrics)
	incDelay    Time        // cumulative acquisition delay across increments

	// fresh marks a request between issuance and its first R1/W1
	// immediate-satisfaction evaluation. Waiting WRITES are only eligible
	// for immediate satisfaction while fresh: an unblocked older write
	// always proceeds through the Def. 4 entitle→satisfy path instead
	// (same instant, paper-canonical transitions — Props. E7/E9). Reads
	// stay eligible at every invocation (Finding 3: Def. 3's trigger can be
	// false for an unblocked read, which would otherwise strand).
	fresh bool

	// tag is an opaque caller annotation (task/job identity) carried into
	// events and request infos.
	tag any
}

// writeLockSet is the set of resources this request locks in write mode when
// satisfied: N^w ∪ extraWrite.
func (r *request) writeLockSet() ResourceSet {
	return Union(r.needWrite, r.extraWrite)
}

// pertainSet is D, the full set of resources the request pertains to for
// conflict purposes: N ∪ extraWrite. Placeholder queues are excluded — a
// placeholder never locks anything and never conflicts.
func (r *request) pertainSet() ResourceSet {
	return Union(r.need, r.extraWrite)
}

// conflictsWith reports whether r and o conflict: they pertain to a common
// resource that at least one of them writes (Sec. 2, "Resource model").
func (r *request) conflictsWith(o *request) bool {
	if r == o {
		return false
	}
	return r.writeLockSet().Intersects(o.pertainSet()) ||
		o.writeLockSet().Intersects(r.pertainSet())
}

// RequestInfo is an immutable snapshot of a request's externally visible
// state, returned by RSM.Info.
type RequestInfo struct {
	ID        ReqID
	Kind      Kind
	State     State
	NeedRead  ResourceSet
	NeedWrite ResourceSet
	// Extra is the expansion extras (expanded mode) or placeholder set
	// (placeholder mode) — the resources the request pertains to beyond N.
	Extra       ResourceSet
	Placeholder bool // true if Extra holds placeholder queues rather than locked extras
	Granted     ResourceSet
	Incremental bool
	Upgrade     bool // part of an upgradeable pair
	IssueT      Time
	EntitleT    Time // valid only if the request was ever entitled
	SatisfyT    Time // valid only if State ≥ Satisfied
	CompleteT   Time // valid only if State == Complete
	IncDelay    Time // cumulative incremental acquisition delay (Sec. 3.7)
	Tag         any
}

// IncDelay is the cumulative acquisition delay across all incremental asks
// (Sec. 3.7); it is meaningful only for incremental requests.

// AcquisitionDelay returns the request's acquisition delay: the time between
// issuance and satisfaction (Sec. 2). For incremental requests it is the
// cumulative delay across all incremental asks (Sec. 3.7). It returns 0 for
// requests that have not been satisfied.
func (ri RequestInfo) AcquisitionDelay() Time {
	if ri.Incremental {
		return ri.IncDelay
	}
	if ri.State != StateSatisfied && ri.State != StateComplete {
		return 0
	}
	return ri.SatisfyT - ri.IssueT
}

func (r *request) info() RequestInfo {
	ri := RequestInfo{
		ID:          r.id,
		Kind:        r.kind,
		State:       r.state,
		NeedRead:    r.needRead.Clone(),
		NeedWrite:   r.needWrite.Clone(),
		Granted:     r.granted.Clone(),
		Incremental: r.incremental,
		Upgrade:     r.group != 0,
		IncDelay:    r.incDelay,
		IssueT:      r.issueT,
		EntitleT:    r.entitleT,
		SatisfyT:    r.satisfyT,
		CompleteT:   r.completeT,
		Tag:         r.tag,
	}
	if !r.extraWrite.Empty() {
		ri.Extra = r.extraWrite.Clone()
	} else if !r.placeholders.Empty() {
		ri.Extra = r.placeholders.Clone()
		ri.Placeholder = true
	}
	return ri
}
