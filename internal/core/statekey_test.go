package core

import (
	"strings"
	"testing"
)

// StateKey must be invariant under absolute time shifts (only timestamp
// ORDER is behavior, Rule G1), and interleaving diamonds whose intermediate
// requests have drained must converge to the same key — that convergence is
// what the model checker's memoization exploits.
func TestStateKeyCanonical(t *testing.T) {
	spec := NewSpecBuilder(4).Build()
	alias := func(ids map[ReqID]int32) func(ReqID) int32 {
		return func(id ReqID) int32 { return ids[id] }
	}

	// Absolute time must not leak into the key.
	m1 := NewRSM(spec, Options{})
	a1, _ := m1.Issue(1, nil, []ResourceID{0}, nil)
	b1, _ := m1.Issue(2, nil, []ResourceID{2}, nil)
	k1 := m1.StateKey(alias(map[ReqID]int32{a1: 10, b1: 20}))

	m2 := NewRSM(spec, Options{})
	a2, _ := m2.Issue(100, nil, []ResourceID{0}, nil)
	b2, _ := m2.Issue(2000, nil, []ResourceID{2}, nil)
	k2 := m2.StateKey(alias(map[ReqID]int32{a2: 10, b2: 20}))
	if k1 != k2 {
		t.Fatalf("keys differ under time shift:\n%s\n%s", k1, k2)
	}

	// Diamond convergence: the two interleavings of {issue A, issue B} then
	// complete A land in the same canonical state.
	m3 := NewRSM(spec, Options{})
	a3, _ := m3.Issue(1, nil, []ResourceID{0}, nil)
	b3, _ := m3.Issue(2, nil, []ResourceID{2}, nil)
	if err := m3.Complete(3, a3); err != nil {
		t.Fatal(err)
	}
	k3 := m3.StateKey(alias(map[ReqID]int32{a3: 10, b3: 20}))

	m4 := NewRSM(spec, Options{})
	b4, _ := m4.Issue(1, nil, []ResourceID{2}, nil)
	a4, _ := m4.Issue(2, nil, []ResourceID{0}, nil)
	if err := m4.Complete(3, a4); err != nil {
		t.Fatal(err)
	}
	k4 := m4.StateKey(alias(map[ReqID]int32{a4: 10, b4: 20}))
	if k3 != k4 {
		t.Fatalf("diamond did not converge:\n%s\n%s", k3, k4)
	}

	// Requests still incomplete in different timestamp order must NOT
	// compare equal: stabilization iterates in timestamp order, which can
	// decide entitlement races, so the relative order is behavior.
	kPre1 := m1.StateKey(alias(map[ReqID]int32{a1: 10, b1: 20}))
	m5 := NewRSM(spec, Options{})
	b5, _ := m5.Issue(1, nil, []ResourceID{2}, nil)
	a5, _ := m5.Issue(2, nil, []ResourceID{0}, nil)
	kPre2 := m5.StateKey(alias(map[ReqID]int32{a5: 10, b5: 20}))
	if kPre1 == kPre2 {
		t.Fatalf("keys equal despite different incomplete order:\n%s", kPre1)
	}
}

// StateKey must distinguish states that differ in write-queue order —
// timestamp order is behavior (Rule W1).
func TestStateKeyWQOrderMatters(t *testing.T) {
	spec := NewSpecBuilder(2).Build()
	alias := func(ids map[ReqID]int32) func(ReqID) int32 {
		return func(id ReqID) int32 { return ids[id] }
	}

	// Holder on 0 keeps both later writes queued; their queue order differs.
	m1 := NewRSM(spec, Options{})
	h1, _ := m1.Issue(1, nil, []ResourceID{0, 1}, nil)
	x1, _ := m1.Issue(2, nil, []ResourceID{0}, nil)
	y1, _ := m1.Issue(3, nil, []ResourceID{0}, nil)
	k1 := m1.StateKey(alias(map[ReqID]int32{h1: 1, x1: 2, y1: 3}))

	m2 := NewRSM(spec, Options{})
	h2, _ := m2.Issue(1, nil, []ResourceID{0, 1}, nil)
	y2, _ := m2.Issue(2, nil, []ResourceID{0}, nil)
	x2, _ := m2.Issue(3, nil, []ResourceID{0}, nil)
	k2 := m2.StateKey(alias(map[ReqID]int32{h2: 1, x2: 2, y2: 3}))

	if k1 == k2 {
		t.Fatalf("keys equal despite different WQ order:\n%s", k1)
	}
}

func TestCanCompleteCanCancel(t *testing.T) {
	spec := NewSpecBuilder(2).Build()
	m := NewRSM(spec, Options{})
	w, _ := m.Issue(1, nil, []ResourceID{0}, nil)
	if !m.CanComplete(w) {
		t.Errorf("satisfied write: CanComplete = false")
	}
	if m.CanCancel(w) {
		t.Errorf("satisfied write: CanCancel = true")
	}
	r, _ := m.Issue(2, []ResourceID{0}, nil, nil)
	if m.CanComplete(r) {
		t.Errorf("waiting read: CanComplete = true")
	}
	if !m.CanCancel(r) {
		t.Errorf("waiting read: CanCancel = false")
	}
	if m.CanComplete(999) || m.CanCancel(999) {
		t.Errorf("unknown request reported completable/cancelable")
	}
	// Upgradeable halves are never CancelRequest-able.
	h, err := m.IssueUpgradeable(3, []ResourceID{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.CanCancel(h.WriteID) {
		t.Errorf("upgrade write half: CanCancel = true")
	}
}

// ChaosSkipWQHeadCheck must reintroduce the overtaking bug: a later write
// with a disjoint needed set but a shared queue predecessor gets satisfied
// past the earlier write.
func TestChaosSkipWQHeadCheckOvertakes(t *testing.T) {
	spec := NewSpecBuilder(2).Build()

	run := func(chaos bool) State {
		m := NewRSM(spec, Options{ChaosSkipWQHeadCheck: chaos})
		mustIssue(t, m, 1, nil, []ResourceID{0})       // holder of 0
		mustIssue(t, m, 2, nil, []ResourceID{0, 1})    // waits behind holder
		w3 := mustIssue(t, m, 3, nil, []ResourceID{1}) // behind the waiter in WQ(1)
		st, err := m.State(w3)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if st := run(false); st != StateWaiting {
		t.Fatalf("sound mode: overtaking write state = %s, want waiting", st)
	}
	if st := run(true); st != StateSatisfied {
		t.Fatalf("chaos mode: overtaking write state = %s, want satisfied", st)
	}
}

// The invariant report must never silently truncate: beyond the cap it has
// to say how many more violations exist.
func TestCheckInvariantsTruncationReported(t *testing.T) {
	q := maxInvariantReports + 5
	m := NewRSM(NewSpecBuilder(q).Build(), Options{})
	// Manufacture q out-of-order write queues directly: two bare requests
	// with decreasing seq in every WQ trips I4 once per resource.
	r1 := &request{id: 1, seq: 2, kind: KindWrite}
	r2 := &request{id: 2, seq: 1, kind: KindWrite}
	for a := 0; a < q; a++ {
		m.res[a].wq = []wqEntry{{r: r1}, {r: r2}}
	}
	v := m.CheckInvariants()
	if len(v) != maxInvariantReports+1 {
		t.Fatalf("got %d reports, want %d capped + 1 summary", len(v), maxInvariantReports)
	}
	last := v[len(v)-1]
	if !strings.Contains(last, "and 5 more") {
		t.Fatalf("summary line = %q, want '… and 5 more'", last)
	}
}
