package core

import "fmt"

// CheckInvariants inspects the RSM's internal state and returns a
// description of every violated structural invariant (nil when consistent).
// It is the library form of the E13 verification harness; embedders can run
// it after invocations during bring-up (the runtime Protocol exposes it via
// Options.SelfCheck, and the test suites call it after every invocation of
// randomized episodes).
//
// Checked invariants (numbering follows EXPERIMENTS.md E13):
//
//	I1  Mutual exclusion: a write-locked resource has exactly one holder.
//	I2  No two holders with conflicting locked sets.
//	I3  Prop. E10: conflicting read/write requests never both entitled.
//	I4  Write queues are timestamp ordered (Rule W1).
//	I5  Satisfied/complete requests appear in no queue (Rule G2).
//	I6  An entitled write (or its placeholder) heads every write queue it
//	    occupies (Def. 4).
//	I7  Lemma 6: the earliest incomplete write is entitled or satisfied —
//	    checked in the weakened form that tolerates the legitimate blocking
//	    channels of the Sec. 3.5/3.7 extensions (an entitled read occupying
//	    a relevant read queue).
//	I9  Waiting requests hold nothing; entitled non-incremental requests
//	    hold nothing.
//
// maxInvariantReports caps the number of individually formatted violations;
// the count beyond the cap is still reported in a final "… and N more" entry
// so consumers (in particular the model checker's minimizer) can distinguish
// a truncated report from a stable one.
const maxInvariantReports = 20

func (m *RSM) CheckInvariants() []string {
	var v []string
	truncated := 0
	fail := func(format string, args ...any) {
		if len(v) < maxInvariantReports {
			v = append(v, fmt.Sprintf(format, args...))
		} else {
			truncated++
		}
	}

	for a := range m.res {
		rs := &m.res[a]
		if rs.writeHolder != nil && len(rs.readHolders) > 0 {
			fail("I1: resource %d write locked by %d with %d readers", a, rs.writeHolder.id, len(rs.readHolders))
		}
		for i := 1; i < len(rs.wq); i++ {
			if rs.wq[i-1].r.seq > rs.wq[i].r.seq {
				fail("I4: WQ(%d) out of timestamp order", a)
			}
		}
		for _, e := range rs.wq {
			if e.r.state == StateSatisfied || e.r.state == StateComplete || e.r.state == StateCanceled {
				fail("I5: request %d (%s) still in WQ(%d)", e.r.id, e.r.state, a)
			}
		}
		for _, r := range rs.rq {
			if r.state == StateSatisfied || r.state == StateComplete || r.state == StateCanceled {
				fail("I5: request %d (%s) still in RQ(%d)", r.id, r.state, a)
			}
		}
	}

	var earliestWrite *request
	for _, r := range m.incomplete {
		if r.kind == KindWrite && (earliestWrite == nil || r.seq < earliestWrite.seq) {
			earliestWrite = r
		}
		holding := !r.granted.Empty()
		if holding {
			for _, o := range m.incomplete {
				if o == r || o.granted.Empty() {
					continue
				}
				if holderConflict(r, o) {
					fail("I2: %d and %d hold conflicting locks", r.id, o.id)
				}
			}
		}
		if r.state == StateEntitled && r.kind == KindRead {
			for _, o := range m.incomplete {
				if o.state == StateEntitled && o.kind == KindWrite && r.conflictsWith(o) {
					fail("I3/E10: entitled read %d conflicts with entitled write %d", r.id, o.id)
				}
			}
		}
		if r.state == StateEntitled && r.kind == KindWrite {
			Union(r.wqSet, r.placeholders).ForEach(func(a ResourceID) bool {
				q := m.res[a].wq
				if len(q) == 0 || q[0].r != r {
					fail("I6: entitled write %d not at head of WQ(%d)", r.id, a)
				}
				return true
			})
		}
		if r.state == StateWaiting && !r.granted.Empty() {
			fail("I9: waiting request %d holds %v", r.id, r.granted)
		}
		if r.state == StateEntitled && !r.incremental && !r.granted.Empty() {
			fail("I9: entitled request %d holds %v", r.id, r.granted)
		}
	}

	if earliestWrite != nil && earliestWrite.state == StateWaiting {
		exempt := false
		earliestWrite.pertainSet().ForEach(func(a ResourceID) bool {
			for _, rr := range m.res[a].rq {
				if rr.state == StateEntitled {
					exempt = true
					return false
				}
			}
			return true
		})
		if !exempt {
			fail("I7/Lemma 6: earliest write %d is waiting", earliestWrite.id)
		}
	}
	if truncated > 0 {
		v = append(v, fmt.Sprintf("… and %d more violations (report truncated at %d)", truncated, maxInvariantReports))
	}
	return v
}

// holderConflict tests whether two partially-or-fully granted requests hold
// conflicting locks, based on what each actually holds and in which mode.
func holderConflict(a, b *request) bool {
	aw := a.granted.Clone()
	aw.IntersectWith(a.writeLockSet())
	bw := b.granted.Clone()
	bw.IntersectWith(b.writeLockSet())
	return aw.Intersects(b.granted) || bw.Intersects(a.granted)
}
