package core

// This file holds the RSM-side contract of the runtime lock's fast paths
// (rwrnlp/fastpath.go): a request confined to one component may be satisfied
// outside the RSM — with atomic publication only — exactly when the RSM
// itself would satisfy it immediately at issuance. Two admission predicates
// define that condition: WriterFree for the BRAVO-style reader plane, and
// ComponentIdle for the uncontended-writer plane. The model checker
// (internal/mc) verifies both implications on every reachable state:
// whenever WriterFree holds for a component, a fresh all-read request over
// that component is satisfied by Issue in the same invocation; whenever
// ComponentIdle holds, a fresh request of ANY kind over that component is.

// WriterFree reports whether no incomplete request could write-lock any
// resource of the component containing a — the RSM-side admission predicate
// of the reader fast path.
//
// KindWrite covers every write-capable form: plain writes, mixed requests
// (Sec. 3.5, their write half locks N^w), the write half of an upgradeable
// pair (Sec. 3.6), and incremental requests with a non-empty write potential.
// All-read incomplete requests are deliberately ignored: readers never
// conflict with readers (Rule R1), so their presence cannot delay a fresh
// read.
//
// Correctness (see IMPLEMENTATION.md, "Reader fast path"): if WriterFree(a)
// holds, a fresh all-read request R over resources of a's component
// satisfies Rule R1 immediately — conflictsActive(R) scans for entitled or
// satisfied write-capable requests on R's resources, and with no KindWrite
// request incomplete in the component there is none, so freshPass satisfies
// R in the Issue invocation itself with zero acquisition delay.
func (m *RSM) WriterFree(a ResourceID) bool {
	if a < 0 || int(a) >= m.spec.NumResources() {
		return false
	}
	c := m.spec.Component(a)
	for _, r := range m.incomplete {
		if r.kind != KindWrite {
			continue
		}
		// A request's footprint never crosses a component boundary (the
		// read-sharing closure is component-confined), so any one member
		// locates it.
		found := false
		r.need.ForEach(func(b ResourceID) bool {
			found = m.spec.Component(b) == c
			return false
		})
		if found {
			return false
		}
	}
	return true
}

// ComponentIdle reports whether no incomplete request of any kind touches
// the component containing a — the RSM-side admission predicate of the
// uncontended-writer fast path.
//
// Correctness (see IMPLEMENTATION.md, "Writer fast path"): if
// ComponentIdle(a) holds, a fresh request R confined to a's component is
// satisfied by Rules R1/W1 in the Issue invocation itself — every queue of
// the component is empty, so R (or its placeholders) heads every write queue
// it enqueues in, and conflictsActive(R) finds no entitled or satisfied
// request to conflict with. The predicate deliberately counts all-read
// requests too: a write issued behind an incomplete read is NOT satisfied
// immediately (phase alternation), so the writer plane needs the stronger
// emptiness condition where the reader plane gets away with WriterFree.
func (m *RSM) ComponentIdle(a ResourceID) bool {
	if a < 0 || int(a) >= m.spec.NumResources() {
		return false
	}
	c := m.spec.Component(a)
	for _, r := range m.incomplete {
		found := false
		r.need.ForEach(func(b ResourceID) bool {
			found = m.spec.Component(b) == c
			return false
		})
		if found {
			return false
		}
	}
	return true
}

// IncompleteLen reports the number of incomplete requests in the RSM. The
// sharded runtime lock mirrors it into a per-shard atomic (rsmLive) after
// every issuance and completion so the writer fast path's admission
// pre-check and re-check can read "is this component's RSM empty" without
// taking the shard mutex.
func (m *RSM) IncompleteLen() int { return len(m.incomplete) }
