package core

// This file holds the RSM-side contract of the runtime lock's BRAVO-style
// reader fast path (rwrnlp/shard.go): an all-read request confined to one
// component may be satisfied outside the RSM — with atomic publication only —
// exactly when the RSM itself would satisfy it immediately at issuance. The
// admission predicate below defines that condition, and the model checker
// (internal/mc) verifies the implication on every reachable state: whenever
// WriterFree holds for a component, a fresh all-read request over that
// component is satisfied by Issue in the same invocation.

// WriterFree reports whether no incomplete request could write-lock any
// resource of the component containing a — the RSM-side admission predicate
// of the reader fast path.
//
// KindWrite covers every write-capable form: plain writes, mixed requests
// (Sec. 3.5, their write half locks N^w), the write half of an upgradeable
// pair (Sec. 3.6), and incremental requests with a non-empty write potential.
// All-read incomplete requests are deliberately ignored: readers never
// conflict with readers (Rule R1), so their presence cannot delay a fresh
// read.
//
// Correctness (see IMPLEMENTATION.md, "Reader fast path"): if WriterFree(a)
// holds, a fresh all-read request R over resources of a's component
// satisfies Rule R1 immediately — conflictsActive(R) scans for entitled or
// satisfied write-capable requests on R's resources, and with no KindWrite
// request incomplete in the component there is none, so freshPass satisfies
// R in the Issue invocation itself with zero acquisition delay.
func (m *RSM) WriterFree(a ResourceID) bool {
	if a < 0 || int(a) >= m.spec.NumResources() {
		return false
	}
	c := m.spec.Component(a)
	for _, r := range m.incomplete {
		if r.kind != KindWrite {
			continue
		}
		// A request's footprint never crosses a component boundary (the
		// read-sharing closure is component-confined), so any one member
		// locates it.
		found := false
		r.need.ForEach(func(b ResourceID) bool {
			found = m.spec.Component(b) == c
			return false
		})
		if found {
			return false
		}
	}
	return true
}
