package core

import (
	"errors"
	"testing"
)

func TestCancelRequest(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{RecordHistory: true})

	// Cancel a waiting write; the request behind it proceeds.
	w1 := mustIssue(t, m, 1, nil, []ResourceID{lc})
	w2 := mustIssue(t, m, 2, nil, []ResourceID{lc})
	w3 := mustIssue(t, m, 3, nil, []ResourceID{lc})
	wantState(t, m, w2, StateWaiting)
	if err := m.CancelRequest(4, w2); err != nil {
		t.Fatal(err)
	}
	wantState(t, m, w2, StateCanceled)
	mustComplete(t, m, 5, w1)
	wantState(t, m, w3, StateSatisfied) // w2's queue slot is gone
	mustComplete(t, m, 6, w3)

	// Cancel an ENTITLED request: the read it blocked is satisfied via the
	// late-read pass.
	r1 := mustIssue(t, m, 7, []ResourceID{lc}, nil)
	wE := mustIssue(t, m, 8, nil, []ResourceID{lc})
	wantState(t, m, wE, StateEntitled)
	rBlocked := mustIssue(t, m, 9, []ResourceID{lc}, nil)
	wantState(t, m, rBlocked, StateWaiting)
	if err := m.CancelRequest(10, wE); err != nil {
		t.Fatal(err)
	}
	wantState(t, m, rBlocked, StateSatisfied)
	mustComplete(t, m, 11, r1)
	mustComplete(t, m, 12, rBlocked)

	// Error paths.
	if err := m.CancelRequest(13, 999); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown cancel: %v", err)
	}
	sat := mustIssue(t, m, 14, []ResourceID{la}, nil)
	if err := m.CancelRequest(15, sat); !errors.Is(err, ErrBadState) {
		t.Errorf("cancel of satisfied request: %v", err)
	}
	h := mustUpgradeable(t, m, 16, lc)
	if err := m.CancelRequest(17, h.WriteID); !errors.Is(err, ErrNotUpgrade) {
		t.Errorf("cancel of upgrade half: %v", err)
	}
	if err := m.FinishRead(18, h, false); err != nil {
		t.Fatal(err)
	}
	mustComplete(t, m, 19, sat)

	// Cancel a waiting incremental request with no grants.
	blocker := mustIssue(t, m, 20, nil, []ResourceID{la, lb, lc})
	inc, err := m.IssueIncremental(21, nil, []ResourceID{la}, nil, []ResourceID{la}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, m, inc, StateWaiting)
	if err := m.CancelRequest(22, inc); err != nil {
		t.Fatal(err)
	}
	mustComplete(t, m, 23, blocker)

	// Cancel is refused once an incremental request holds grants.
	rHold := mustIssue(t, m, 24, []ResourceID{lc}, nil)
	inc2, err := m.IssueIncremental(25, nil, []ResourceID{la, lc}, nil, []ResourceID{la}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantState(t, m, inc2, StateEntitled) // holds ℓa, waits for nothing else yet
	if err := m.CancelRequest(26, inc2); !errors.Is(err, ErrBadState) {
		t.Errorf("cancel of granted incremental: %v", err)
	}
	mustComplete(t, m, 27, inc2)
	mustComplete(t, m, 28, rHold)
}

func TestStringersAndAccessors(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{Placeholders: true})
	if m.Spec().NumResources() != 3 {
		t.Error("Spec accessor")
	}
	if !m.Options().Placeholders {
		t.Error("Options accessor")
	}
	for _, s := range []string{
		KindRead.String(), KindWrite.String(), Kind(9).String(),
		StateWaiting.String(), StateEntitled.String(), StateSatisfied.String(),
		StateComplete.String(), StateCanceled.String(), State(9).String(),
		EvIssued.String(), EvEntitled.String(), EvSatisfied.String(),
		EvGranted.String(), EvCompleted.String(), EvCanceled.String(),
		EvPlaceholdersRemoved.String(), EvReadSegmentDone.String(), EventType(99).String(),
		UpgradePending.String(), UpgradeReading.String(), UpgradeWriting.String(),
		UpgradeDone.String(), UpgradePhase(9).String(),
	} {
		if s == "" {
			t.Error("empty stringer output")
		}
	}
	id := mustIssue(t, m, 1, []ResourceID{la}, nil)
	if got := m.Incomplete(); len(got) != 1 || got[0] != id {
		t.Errorf("Incomplete = %v", got)
	}
	ev := Event{T: 1, Type: EvIssued, Req: id, Kind: KindRead, Resources: NewResourceSet(la)}
	if ev.String() == "" {
		t.Error("event stringer")
	}
	mustComplete(t, m, 2, id)
}
