package core

import (
	"math/rand"
	"testing"
)

// Microbenchmarks of the RSM hot paths: issue/complete cycles at varying
// contention, resource counts, and protocol-variant options. These quantify
// the cost of the satisfaction engine itself (the runtime-plane locks embed
// it behind one mutex, so ns/op here is the floor of lock overhead).

func benchSpec(q int) *Spec {
	b := NewSpecBuilder(q)
	for i := 0; i+1 < q; i += 2 {
		if err := b.DeclareReadGroup(ResourceID(i), ResourceID(i+1)); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// Uncontended single-resource write lock/unlock round trip.
func BenchmarkRSMUncontendedWrite(b *testing.B) {
	m := NewRSM(benchSpec(8), Options{})
	t := Time(0)
	for i := 0; i < b.N; i++ {
		t++
		id, err := m.Issue(t, nil, []ResourceID{0}, nil)
		if err != nil {
			b.Fatal(err)
		}
		t++
		if err := m.Complete(t, id); err != nil {
			b.Fatal(err)
		}
	}
}

// Uncontended two-resource read.
func BenchmarkRSMUncontendedNestedRead(b *testing.B) {
	m := NewRSM(benchSpec(8), Options{})
	t := Time(0)
	for i := 0; i < b.N; i++ {
		t++
		id, err := m.Issue(t, []ResourceID{0, 1}, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		t++
		if err := m.Complete(t, id); err != nil {
			b.Fatal(err)
		}
	}
}

// Contended pipeline: a window of outstanding conflicting requests drains
// FIFO — measures stabilize() with populated queues.
func benchContended(b *testing.B, opt Options, window int) {
	m := NewRSM(benchSpec(8), opt)
	rng := rand.New(rand.NewSource(1))
	t := Time(0)
	var pending []ReqID
	for i := 0; i < b.N; i++ {
		t++
		var id ReqID
		var err error
		if rng.Intn(2) == 0 {
			id, err = m.Issue(t, []ResourceID{ResourceID(rng.Intn(8))}, nil, nil)
		} else {
			id, err = m.Issue(t, nil, []ResourceID{ResourceID(rng.Intn(8))}, nil)
		}
		if err != nil {
			b.Fatal(err)
		}
		pending = append(pending, id)
		if len(pending) >= window {
			// Complete the oldest satisfied request.
			for j, pid := range pending {
				st, err := m.State(pid)
				if err != nil {
					b.Fatal(err)
				}
				if st == StateSatisfied {
					t++
					if err := m.Complete(t, pid); err != nil {
						b.Fatal(err)
					}
					pending = append(pending[:j], pending[j+1:]...)
					break
				}
			}
		}
	}
	for _, pid := range pending {
		st, _ := m.State(pid)
		if st == StateSatisfied {
			t++
			_ = m.Complete(t, pid)
		}
	}
}

func BenchmarkRSMContendedExpanded(b *testing.B) {
	benchContended(b, Options{}, 8)
}

func BenchmarkRSMContendedPlaceholders(b *testing.B) {
	benchContended(b, Options{Placeholders: true}, 8)
}

// Scaling with the resource count (q = 64, 512): bitset-backed sets keep
// per-request cost near-flat.
func BenchmarkRSMWideResourceSpace(b *testing.B) {
	for _, q := range []int{64, 512} {
		q := q
		b.Run(benchName(q), func(b *testing.B) {
			m := NewRSM(benchSpec(q), Options{Placeholders: true})
			t := Time(0)
			for i := 0; i < b.N; i++ {
				t++
				r0 := ResourceID(i % q)
				id, err := m.Issue(t, nil, []ResourceID{r0}, nil)
				if err != nil {
					b.Fatal(err)
				}
				t++
				if err := m.Complete(t, id); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(q int) string {
	if q == 64 {
		return "q=64"
	}
	return "q=512"
}

// Observer overhead at the RSM layer: the same uncontended read round trip
// with no observer (emit's nil check only) and with a live observer fan-out.

func benchAcquireCycle(b *testing.B, m *RSM) {
	b.Helper()
	t := Time(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t++
		id, err := m.Issue(t, []ResourceID{0}, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		t++
		if err := m.Complete(t, id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcquireNoObserver(b *testing.B) {
	benchAcquireCycle(b, NewRSM(benchSpec(8), Options{}))
}

func BenchmarkAcquireObserved(b *testing.B) {
	m := NewRSM(benchSpec(8), Options{})
	var n int64
	m.SetObserver(MultiObserver(
		ObserverFunc(func(Event) { n++ }),
		ObserverFunc(func(Event) { n++ }),
	))
	benchAcquireCycle(b, m)
	if n == 0 {
		b.Fatal("observer saw no events")
	}
}

// Upgrade pair round trip (read phase only — the common case).
func BenchmarkRSMUpgradeReadOnly(b *testing.B) {
	m := NewRSM(benchSpec(8), Options{})
	t := Time(0)
	for i := 0; i < b.N; i++ {
		t++
		h, err := m.IssueUpgradeable(t, []ResourceID{0}, nil)
		if err != nil {
			b.Fatal(err)
		}
		t++
		if err := m.FinishRead(t, h, false); err != nil {
			b.Fatal(err)
		}
	}
}
