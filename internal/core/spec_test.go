package core

import "testing"

// The Fig. 2 system: three resources ℓa=0, ℓb=1, ℓc=2, with one potential
// multi-resource read request {ℓa, ℓb} (request R5,1), so that
// S(ℓa) = S(ℓb) = {ℓa, ℓb} and S(ℓc) = {ℓc}.
func fig2Spec(t testing.TB) *Spec {
	b := NewSpecBuilder(3)
	if err := b.DeclareReadGroup(0, 1); err != nil {
		t.Fatal(err)
	}
	return b.Build()
}

func TestSpecReflexive(t *testing.T) {
	s := NewSpecBuilder(4).Build()
	for i := 0; i < 4; i++ {
		rs := s.ReadSet(ResourceID(i))
		if rs.Len() != 1 || !rs.Has(ResourceID(i)) {
			t.Errorf("S(%d) = %v, want {%d}", i, rs, i)
		}
	}
}

func TestSpecFig2ReadSets(t *testing.T) {
	s := fig2Spec(t)
	if got := s.ReadSet(0); !got.Equal(NewResourceSet(0, 1)) {
		t.Errorf("S(ℓa) = %v, want {0, 1}", got)
	}
	if got := s.ReadSet(1); !got.Equal(NewResourceSet(0, 1)) {
		t.Errorf("S(ℓb) = %v, want {0, 1}", got)
	}
	if got := s.ReadSet(2); !got.Equal(NewResourceSet(2)) {
		t.Errorf("S(ℓc) = %v, want {2}", got)
	}
}

func TestSpecExpand(t *testing.T) {
	s := fig2Spec(t)
	// A write needing {ℓa, ℓc} expands to {ℓa, ℓb, ℓc} (the Sec. 3.4
	// example: D2,1 = {ℓa, ℓb, ℓc} when N2,1 = {ℓa, ℓc}).
	d := s.Expand(NewResourceSet(0, 2))
	if !d.Equal(NewResourceSet(0, 1, 2)) {
		t.Errorf("Expand({a,c}) = %v, want {0, 1, 2}", d)
	}
}

func TestSpecMixedAsymmetric(t *testing.T) {
	// A mixed request reading ℓ0 and writing ℓ1 makes ℓ0 read shared with
	// ℓ1 (ℓ0 ∈ S(ℓ1)) but not vice versa (Sec. 3.5 footnote: the relation
	// need not be symmetric once mixed requests exist).
	b := NewSpecBuilder(2)
	if err := b.DeclareRequest([]ResourceID{0}, []ResourceID{1}); err != nil {
		t.Fatal(err)
	}
	s := b.Build()
	if got := s.ReadSet(1); !got.Equal(NewResourceSet(0, 1)) {
		t.Errorf("S(ℓ1) = %v, want {0, 1}", got)
	}
	if got := s.ReadSet(0); !got.Equal(NewResourceSet(0)) {
		t.Errorf("S(ℓ0) = %v, want {0}", got)
	}
}

func TestSpecValidation(t *testing.T) {
	b := NewSpecBuilder(2)
	if err := b.DeclareReadGroup(0, 5); err == nil {
		t.Error("out-of-range declaration accepted")
	}
	if err := b.DeclareRequest(nil, []ResourceID{-1}); err == nil {
		t.Error("negative ID accepted")
	}
	s := b.Build()
	if err := s.Validate(NewResourceSet(0, 1)); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	if err := s.Validate(NewResourceSet(2)); err == nil {
		t.Error("out-of-range set accepted")
	}
}

func TestSpecBuilderIndependence(t *testing.T) {
	b := NewSpecBuilder(3)
	s1 := b.Build()
	if err := b.DeclareReadGroup(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	s2 := b.Build()
	if s1.ReadSet(0).Len() != 1 {
		t.Error("earlier Build affected by later declarations")
	}
	if s2.ReadSet(0).Len() != 3 {
		t.Error("later Build missing declarations")
	}
}

func TestSpecBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpecBuilder(-1) did not panic")
		}
	}()
	NewSpecBuilder(-1)
}
