package core

import (
	"errors"
	"testing"
)

// Component partitioning: connected components of declared footprints, dense
// numbering by smallest resource ID, undeclared resources as singletons.
func TestSpecComponents(t *testing.T) {
	b := NewSpecBuilder(7)
	if err := b.DeclareRequest([]ResourceID{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareRequest(nil, []ResourceID{3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareRequest([]ResourceID{1}, []ResourceID{2}); err != nil {
		t.Fatal(err)
	}
	s := b.Build()
	// Components: {0,1,2} (chained via resource 1), {3,4}, {5}, {6}.
	if got := s.NumComponents(); got != 4 {
		t.Fatalf("NumComponents = %d, want 4", got)
	}
	wantComp := []int{0, 0, 0, 1, 1, 2, 3}
	for a, want := range wantComp {
		if got := s.Component(ResourceID(a)); got != want {
			t.Errorf("Component(%d) = %d, want %d", a, got, want)
		}
	}
	wantRes := [][]ResourceID{{0, 1, 2}, {3, 4}, {5}, {6}}
	for c, want := range wantRes {
		got := s.ComponentResources(c)
		if len(got) != len(want) {
			t.Fatalf("ComponentResources(%d) = %v, want %v", c, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ComponentResources(%d) = %v, want %v", c, got, want)
			}
		}
	}
}

// The read-sharing closure can never cross a component boundary: S(ℓ) only
// grows within declared footprints.
func TestSpecReadSetsWithinComponent(t *testing.T) {
	b := NewSpecBuilder(6)
	if err := b.DeclareReadGroup(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareReadGroup(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareReadGroup(4, 5); err != nil {
		t.Fatal(err)
	}
	s := b.Build()
	for a := 0; a < s.NumResources(); a++ {
		c := s.Component(ResourceID(a))
		s.ReadSet(ResourceID(a)).ForEach(func(bID ResourceID) bool {
			if s.Component(bID) != c {
				t.Errorf("S(%d) contains %d from component %d (resource in component %d)", a, bID, s.Component(bID), c)
			}
			return true
		})
	}
}

func TestSpecNoDeclarationsAllSingletons(t *testing.T) {
	s := NewSpecBuilder(4).Build()
	if got := s.NumComponents(); got != 4 {
		t.Fatalf("NumComponents = %d, want 4", got)
	}
	for a := 0; a < 4; a++ {
		if got := s.Component(ResourceID(a)); got != a {
			t.Errorf("Component(%d) = %d, want %d", a, got, a)
		}
	}
}

func TestSpecUnknownResourceSentinel(t *testing.T) {
	b := NewSpecBuilder(2)
	if err := b.DeclareRequest([]ResourceID{0, 5}, nil); !errors.Is(err, ErrUnknownResource) {
		t.Fatalf("DeclareRequest out of range: err = %v, want ErrUnknownResource", err)
	}
	s := b.Build()
	if err := s.Validate(NewResourceSet(3)); !errors.Is(err, ErrUnknownResource) {
		t.Fatalf("Validate out of range: err = %v, want ErrUnknownResource", err)
	}
}

// FirstID/IDStep stride the ID space so several RSMs mint disjoint IDs.
func TestRSMIDStriding(t *testing.T) {
	spec := NewSpecBuilder(2).Build()
	seen := map[ReqID]int{}
	for i := 0; i < 3; i++ {
		m := NewRSM(spec, Options{FirstID: ReqID(i), IDStep: 3})
		var tm Time
		for k := 0; k < 4; k++ {
			tm++
			id, err := m.Issue(tm, []ResourceID{0}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if id == 0 {
				t.Fatalf("shard %d minted reserved ID 0", i)
			}
			if int(id)%3 != i {
				t.Errorf("shard %d minted ID %d (mod 3 = %d)", i, id, int(id)%3)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("ID %d minted by shards %d and %d", id, prev, i)
			}
			seen[id] = i
			if err := m.Complete(tm, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	if len(seen) != 12 {
		t.Fatalf("minted %d distinct IDs, want 12", len(seen))
	}
}

func TestCancelAsk(t *testing.T) {
	b := NewSpecBuilder(2)
	if err := b.DeclareRequest(nil, []ResourceID{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareReadGroup(1); err != nil {
		t.Fatal(err)
	}
	spec := b.Build()
	m := NewRSM(spec, Options{})

	// A reader holds resource 1: the incremental request becomes entitled
	// (only in-flight readers ahead of it) but its ask for 1 stays blocked.
	blocker, err := m.Issue(1, []ResourceID{1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.IssueIncremental(2, nil, []ResourceID{0, 1}, nil, []ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := m.Granted(id, []ResourceID{0}); err != nil || !ok {
		t.Fatalf("initial ask for free resource 0: granted=%v err=%v", ok, err)
	}
	if ok, err := m.Acquire(3, id, []ResourceID{1}); err != nil || ok {
		t.Fatalf("ask for held resource 1: granted=%v err=%v", ok, err)
	}
	if err := m.CancelAsk(4, id); err != nil {
		t.Fatal(err)
	}
	// The blocker finishing must NOT grant the canceled ask.
	if err := m.Complete(5, blocker); err != nil {
		t.Fatal(err)
	}
	if ok, _ := m.Granted(id, []ResourceID{1}); ok {
		t.Fatal("canceled ask was granted anyway")
	}
	// The request itself stays usable: re-ask and complete.
	if ok, err := m.Acquire(6, id, []ResourceID{1}); err != nil || !ok {
		t.Fatalf("re-ask after cancel: granted=%v err=%v", ok, err)
	}
	if err := m.Complete(7, id); err != nil {
		t.Fatal(err)
	}
	if v := m.CheckInvariants(); v != nil {
		t.Fatalf("invariants violated: %v", v)
	}

	if err := m.CancelAsk(8, 999); !errors.Is(err, ErrUnknownRequest) {
		t.Fatalf("CancelAsk unknown: err = %v", err)
	}
}

func TestCancelUpgradeable(t *testing.T) {
	spec := NewSpecBuilder(1).Build()
	m := NewRSM(spec, Options{})

	// Pending pair behind a writer: cancel both halves.
	w, err := m.Issue(1, nil, []ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.IssueUpgradeable(2, []ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ph := m.UpgradePhase(h); ph != UpgradePending {
		t.Fatalf("phase = %v, want pending", ph)
	}
	if err := m.CancelUpgradeable(3, h); err != nil {
		t.Fatal(err)
	}
	if ph := m.UpgradePhase(h); ph != UpgradeDone {
		t.Fatalf("phase after cancel = %v, want done", ph)
	}
	if err := m.Complete(4, w); err != nil {
		t.Fatal(err)
	}

	// A reader holding before the pair issues keeps the write half blocked
	// across FinishRead below.
	r, err := m.Issue(5, []ResourceID{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Satisfied read half: cancellation refused.
	h2, err := m.IssueUpgradeable(6, []ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ph := m.UpgradePhase(h2); ph != UpgradeReading {
		t.Fatalf("phase = %v, want reading", ph)
	}
	if err := m.CancelUpgradeable(7, h2); !errors.Is(err, ErrBadState) {
		t.Fatalf("cancel with satisfied read half: err = %v, want ErrBadState", err)
	}

	// Pending upgrade (read half finished, write half blocked by reader r):
	// cancel just the write half.
	if err := m.FinishRead(8, h2, true); err != nil {
		t.Fatal(err)
	}
	if ph := m.UpgradePhase(h2); ph != UpgradePending {
		t.Fatalf("phase = %v, want pending (write half waiting)", ph)
	}
	if err := m.CancelUpgradeable(9, h2); err != nil {
		t.Fatal(err)
	}
	if ph := m.UpgradePhase(h2); ph != UpgradeDone {
		t.Fatalf("phase = %v, want done", ph)
	}
	if err := m.Complete(10, r); err != nil {
		t.Fatal(err)
	}
	if v := m.CheckInvariants(); v != nil {
		t.Fatalf("invariants violated: %v", v)
	}
	if got := m.Stats(); got.Canceled != 2 {
		t.Fatalf("Canceled = %d, want 2 (one per canceled pair): %+v", got.Canceled, got)
	}
	if left := m.Incomplete(); len(left) != 0 {
		t.Fatalf("incomplete requests remain: %v", left)
	}
}
