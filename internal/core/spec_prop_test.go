package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property tests (testing/quick) for the read-sharing closure — the
// correctness keystone identified by the E13 finding (see SpecBuilder.Build).

// genBuilder derives a builder with random declarations from raw bytes.
func genBuilder(q int, decl []uint8) *SpecBuilder {
	b := NewSpecBuilder(q)
	for i := 0; i+2 < len(decl); i += 3 {
		ids := []ResourceID{
			ResourceID(int(decl[i]) % q),
			ResourceID(int(decl[i+1]) % q),
			ResourceID(int(decl[i+2]) % q),
		}
		if err := b.DeclareRequest(ids, nil); err != nil {
			panic(err)
		}
	}
	return b
}

// Closure property: b ∈ S(a) ⇒ S(b) ⊆ S(a).
func TestSpecClosureProperty(t *testing.T) {
	f := func(decl []uint8) bool {
		s := genBuilder(8, decl).Build()
		for a := 0; a < 8; a++ {
			ok := true
			s.ReadSet(ResourceID(a)).ForEach(func(bID ResourceID) bool {
				if !s.ReadSet(ResourceID(a)).ContainsAll(s.ReadSet(bID)) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// Idempotence: building twice (declaring the closed sets again) changes
// nothing.
func TestSpecClosureIdempotent(t *testing.T) {
	f := func(decl []uint8) bool {
		s1 := genBuilder(8, decl).Build()
		b2 := NewSpecBuilder(8)
		for a := 0; a < 8; a++ {
			if err := b2.DeclareRequest(s1.ReadSet(ResourceID(a)).IDs(), nil); err != nil {
				panic(err)
			}
		}
		s2 := b2.Build()
		for a := 0; a < 8; a++ {
			if !s1.ReadSet(ResourceID(a)).Equal(s2.ReadSet(ResourceID(a))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity: declaring more never shrinks a read set.
func TestSpecDeclareMonotone(t *testing.T) {
	f := func(decl []uint8, extra []uint8) bool {
		b := genBuilder(8, decl)
		before := b.Build()
		for i := 0; i+1 < len(extra); i += 2 {
			ids := []ResourceID{ResourceID(int(extra[i]) % 8), ResourceID(int(extra[i+1]) % 8)}
			if err := b.DeclareRequest(ids, nil); err != nil {
				panic(err)
			}
		}
		after := b.Build()
		for a := 0; a < 8; a++ {
			if !after.ReadSet(ResourceID(a)).ContainsAll(before.ReadSet(ResourceID(a))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// Expansion is self-covering: D = Expand(N) satisfies Expand(D) = D — the
// property the Lemma 6 proof needs (every extra's read set is already in D).
func TestSpecExpandSelfCovering(t *testing.T) {
	f := func(decl []uint8, reqRaw []uint8) bool {
		s := genBuilder(8, decl).Build()
		var n ResourceSet
		for _, r := range reqRaw {
			n.Add(ResourceID(int(r) % 8))
		}
		if n.Empty() {
			return true
		}
		d := s.Expand(n)
		return s.Expand(d).Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

// FuzzRSMInvocations is a native fuzz target driving the RSM with an
// arbitrary byte-encoded invocation script; the invariant checker validates
// every step. Run with `go test -fuzz=FuzzRSMInvocations ./internal/core`
// for continuous fuzzing; the seed corpus runs as a normal test.
func FuzzRSMInvocations(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 255, 255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) < 2 {
			return
		}
		q := int(script[0])%6 + 2
		b := NewSpecBuilder(q)
		// First few bytes declare read groups.
		i := 1
		for ; i+1 < len(script) && i < 7; i += 2 {
			_ = b.DeclareReadGroup(ResourceID(int(script[i])%q), ResourceID(int(script[i+1])%q))
		}
		m := NewRSM(b.Build(), Options{Placeholders: script[0]%2 == 0})
		ck := newChecker(t, m, false)
		var live []ReqID
		now := Time(0)
		for ; i+2 < len(script); i += 3 {
			now++
			op := script[i] % 4
			r0 := ResourceID(int(script[i+1]) % q)
			r1 := ResourceID(int(script[i+2]) % q)
			switch op {
			case 0: // read
				id, err := m.Issue(now, []ResourceID{r0}, nil, nil)
				if err == nil {
					live = append(live, id)
				}
			case 1: // write
				id, err := m.Issue(now, nil, []ResourceID{r0, r1}, nil)
				if err == nil {
					live = append(live, id)
				}
			case 2: // mixed
				id, err := m.Issue(now, []ResourceID{r0}, []ResourceID{r1}, nil)
				if err == nil {
					live = append(live, id)
				}
			case 3: // complete something satisfied
				for j, id := range live {
					st, err := m.State(id)
					if err != nil {
						t.Fatal(err)
					}
					if st == StateSatisfied {
						if err := m.Complete(now, id); err != nil {
							t.Fatal(err)
						}
						live = append(live[:j], live[j+1:]...)
						break
					}
				}
			}
			ck.check("fuzz")
		}
		// Drain. One completion per round, so the round budget must cover
		// every live request (a long script can leave well over 1000): only
		// a round with no satisfiable request is a genuine liveness failure.
		budget := len(live) + 16
		for rounds := 0; rounds < budget && len(live) > 0; rounds++ {
			now++
			progressed := false
			for j, id := range live {
				st, err := m.State(id)
				if err != nil {
					t.Fatal(err)
				}
				if st == StateSatisfied {
					if err := m.Complete(now, id); err != nil {
						t.Fatal(err)
					}
					live = append(live[:j], live[j+1:]...)
					progressed = true
					break
				}
			}
			ck.check("fuzz-drain")
			if !progressed {
				break
			}
		}
		if len(live) != 0 {
			t.Fatalf("liveness: %d requests stuck", len(live))
		}
	})
}
