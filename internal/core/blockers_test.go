package core

import (
	"reflect"
	"testing"
)

// collectBlockers runs a scenario and indexes the emitted blocker sets by
// (request, event type).
type blockerLog map[ReqID]map[EventType][]ReqID

func attachBlockerLog(m *RSM) blockerLog {
	log := blockerLog{}
	m.SetObserver(ObserverFunc(func(e Event) {
		if e.Type != EvIssued && e.Type != EvEntitled {
			return
		}
		if log[e.Req] == nil {
			log[e.Req] = map[EventType][]ReqID{}
		}
		log[e.Req][e.Type] = append([]ReqID(nil), e.Blockers...)
	}))
	return log
}

// TestBlockerSetsFig2 drives the paper's Fig. 2 situation — a reader issued
// behind an entitled writer that is itself waiting out a read phase — and
// checks the causal wait edges emitted on EvIssued/EvEntitled name exactly
// the requests each one is waiting behind.
func TestBlockerSetsFig2(t *testing.T) {
	m := NewRSM(NewSpecBuilder(2).Build(), Options{})
	log := attachBlockerLog(m)

	// t=1: read A holds {0} (the read phase).
	a, err := m.Issue(1, []ResourceID{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// t=2: write B wants {0}: blocked by A, becomes entitled behind it (W2).
	b, err := m.Issue(2, nil, []ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// t=3: read C wants {0}: not satisfied (concedes to the entitled B, Def. 3).
	c, err := m.Issue(3, []ResourceID{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	if st, _ := m.State(b); st != StateEntitled {
		t.Fatalf("B state = %v, want entitled", st)
	}
	if st, _ := m.State(c); st != StateWaiting {
		t.Fatalf("C state = %v, want waiting", st)
	}

	// B was issued behind (and is entitled behind) the satisfied reader A.
	if got := log[b][EvIssued]; !reflect.DeepEqual(got, []ReqID{a}) {
		t.Errorf("B issued blockers = %v, want [%d]", got, a)
	}
	if got := log[b][EvEntitled]; !reflect.DeepEqual(got, []ReqID{a}) {
		t.Errorf("B entitled blockers = %v, want [%d]", got, a)
	}
	// C was issued behind the entitled writer B only: A is a fellow reader
	// and never conflicts with C.
	if got := log[c][EvIssued]; !reflect.DeepEqual(got, []ReqID{b}) {
		t.Errorf("C issued blockers = %v, want [%d]", got, b)
	}

	// t=4: A completes — B is satisfied, and C becomes entitled behind B.
	if err := m.Complete(4, a); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.State(b); st != StateSatisfied {
		t.Fatalf("B state = %v, want satisfied", st)
	}
	if got := log[c][EvEntitled]; !reflect.DeepEqual(got, []ReqID{b}) {
		t.Errorf("C entitled blockers = %v, want [%d]", got, b)
	}

	// t=5: B completes — C runs; its blocker sets are never rewritten.
	if err := m.Complete(5, b); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.State(c); st != StateSatisfied {
		t.Fatalf("C state = %v, want satisfied", st)
	}
}

// TestBlockerSetsImmediateEmpty: a request satisfied at issuance reports no
// blockers on EvIssued.
func TestBlockerSetsImmediateEmpty(t *testing.T) {
	m := NewRSM(NewSpecBuilder(1).Build(), Options{})
	log := attachBlockerLog(m)
	id, err := m.Issue(1, nil, []ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := log[id][EvIssued]; len(got) != 0 {
		t.Errorf("immediately satisfied request has blockers %v, want none", got)
	}
}

// TestBlockerSetsTimestampOrder: several holders are reported in timestamp
// order.
func TestBlockerSetsTimestampOrder(t *testing.T) {
	m := NewRSM(NewSpecBuilder(2).Build(), Options{})
	log := attachBlockerLog(m)
	r1, _ := m.Issue(1, []ResourceID{0}, nil, nil)
	r2, _ := m.Issue(2, []ResourceID{1}, nil, nil)
	w, err := m.Issue(3, nil, []ResourceID{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := log[w][EvIssued], []ReqID{r1, r2}; !reflect.DeepEqual(got, want) {
		t.Errorf("W issued blockers = %v, want %v", got, want)
	}
}
