package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// ResourceID identifies one of the q shared resources ℓ_1, …, ℓ_q.
// IDs are dense and zero-based: valid IDs are 0 … q-1.
type ResourceID int

// ResourceSet is a bit set of resource IDs. The zero value is an empty set
// that can grow on demand; all operations treat absent words as zero.
//
// ResourceSet values are used on the hot path of the RSM (conflict tests,
// entitlement checks), so the representation is a flat []uint64 with
// word-at-a-time operations rather than a map.
type ResourceSet struct {
	words []uint64
}

// NewResourceSet returns a set containing exactly the given IDs.
func NewResourceSet(ids ...ResourceID) ResourceSet {
	var s ResourceSet
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *ResourceSet) grow(word int) {
	for len(s.words) <= word {
		s.words = append(s.words, 0)
	}
}

// Add inserts id into the set. Negative IDs panic: they indicate a
// programming error rather than a recoverable condition.
func (s *ResourceSet) Add(id ResourceID) {
	if id < 0 {
		panic(fmt.Sprintf("core: negative ResourceID %d", id))
	}
	w := int(id) / 64
	s.grow(w)
	s.words[w] |= 1 << (uint(id) % 64)
}

// Remove deletes id from the set; removing an absent ID is a no-op.
func (s *ResourceSet) Remove(id ResourceID) {
	if id < 0 {
		return
	}
	w := int(id) / 64
	if w >= len(s.words) {
		return
	}
	s.words[w] &^= 1 << (uint(id) % 64)
}

// Has reports whether id is in the set.
func (s ResourceSet) Has(id ResourceID) bool {
	if id < 0 {
		return false
	}
	w := int(id) / 64
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<(uint(id)%64)) != 0
}

// Len returns the number of IDs in the set.
func (s ResourceSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set contains no IDs.
func (s ResourceSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s ResourceSet) Clone() ResourceSet {
	if len(s.words) == 0 {
		return ResourceSet{}
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return ResourceSet{words: w}
}

// UnionWith adds every ID of t to s.
func (s *ResourceSet) UnionWith(t ResourceSet) {
	s.grow(len(t.words) - 1)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// SubtractWith removes every ID of t from s.
func (s *ResourceSet) SubtractWith(t ResourceSet) {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= t.words[i]
	}
}

// IntersectWith removes from s every ID not in t.
func (s *ResourceSet) IntersectWith(t ResourceSet) {
	for i := range s.words {
		if i < len(t.words) {
			s.words[i] &= t.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// Union returns s ∪ t as a new set.
func Union(s, t ResourceSet) ResourceSet {
	u := s.Clone()
	u.UnionWith(t)
	return u
}

// Intersects reports whether s ∩ t is non-empty.
func (s ResourceSet) Intersects(t ResourceSet) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every ID of t is also in s.
func (s ResourceSet) ContainsAll(t ResourceSet) bool {
	for i, w := range t.words {
		var sw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if w&^sw != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain exactly the same IDs.
func (s ResourceSet) Equal(t ResourceSet) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var sw, tw uint64
		if i < len(s.words) {
			sw = s.words[i]
		}
		if i < len(t.words) {
			tw = t.words[i]
		}
		if sw != tw {
			return false
		}
	}
	return true
}

// ForEach calls f for every ID in the set in ascending order. If f returns
// false, iteration stops early.
func (s ResourceSet) ForEach(f func(ResourceID) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !f(ResourceID(i*64 + b)) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// IDs returns the set's members in ascending order.
func (s ResourceSet) IDs() []ResourceID {
	ids := make([]ResourceID, 0, s.Len())
	s.ForEach(func(id ResourceID) bool {
		ids = append(ids, id)
		return true
	})
	return ids
}

// String renders the set as "{0, 3, 7}".
func (s ResourceSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(id ResourceID) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", id)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
