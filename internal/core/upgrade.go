package core

import "fmt"

// This file implements read-to-write upgrading (Sec. 3.6).
//
// An upgradeable request R^u is treated as two requests issued atomically:
// a read half R^{u_r} and a write half R^{u_w} over the same resources,
// which can cancel each other:
//
//   - if R^{u_w} is satisfied before R^{u_r}, the read half is canceled and
//     the job proceeds directly to its write segment;
//   - if R^{u_r} is satisfied first, the job optimistically executes its
//     read-only segment. When it finishes it either cancels R^{u_w} (no
//     upgrade needed) or releases its read locks and waits for R^{u_w}
//     (upgrade). Data may change between the two segments; callers that
//     cannot tolerate re-reads should issue a plain write request instead.
//
// The two halves conflict with each other like any read/write pair over
// common resources; this is what prevents the write half from being
// "satisfied" while the read half still holds its locks. The optimistic
// read segment executes "for free" with respect to worst-case blocking: the
// pair's bound is a write request's bound, which already budgets for
// blocking readers. Per Prop. P2 accounting, the pair counts as ONE request.

// UpgradeHandle identifies the two halves of an upgradeable request.
type UpgradeHandle struct {
	ReadID  ReqID // R^{u_r}
	WriteID ReqID // R^{u_w}
}

// UpgradePhase reports which half of an upgradeable request is active.
type UpgradePhase int

const (
	// UpgradePending: neither half satisfied yet.
	UpgradePending UpgradePhase = iota
	// UpgradeReading: the read half is satisfied; the job may execute its
	// read-only segment and must then call FinishRead.
	UpgradeReading
	// UpgradeWriting: the write half is satisfied (either directly, with the
	// read half canceled, or after FinishRead(…, true)); the job may execute
	// its write segment and must then call Complete on the write half.
	UpgradeWriting
	// UpgradeDone: the pair has fully completed or been canceled.
	UpgradeDone
)

func (p UpgradePhase) String() string {
	switch p {
	case UpgradePending:
		return "pending"
	case UpgradeReading:
		return "reading"
	case UpgradeWriting:
		return "writing"
	case UpgradeDone:
		return "done"
	default:
		return fmt.Sprintf("UpgradePhase(%d)", int(p))
	}
}

// IssueUpgradeable issues an upgradeable request for the given resources at
// time t (Sec. 3.6): the read half is enqueued in the read queue of every
// resource and the write half in the write queues (with expansion or
// placeholders per the RSM options), atomically within one invocation. The
// read half is considered first, so on an uncontended system the read half
// is satisfied immediately and the write half becomes entitled behind it.
func (m *RSM) IssueUpgradeable(t Time, resources []ResourceID, tag any) (UpgradeHandle, error) {
	if err := m.checkTime(t); err != nil {
		return UpgradeHandle{}, err
	}
	need := NewResourceSet(resources...)
	ur, err := m.buildRequest(t, need.Clone(), ResourceSet{}, tag)
	if err != nil {
		return UpgradeHandle{}, err
	}
	uw, err := m.buildRequest(t, ResourceSet{}, need.Clone(), tag)
	if err != nil {
		return UpgradeHandle{}, err
	}
	m.nextGroup++
	ur.group, uw.group = m.nextGroup, m.nextGroup
	ur.groupPeer, uw.groupPeer = uw, ur
	ur.upgradeRole, uw.upgradeRole = roleURead, roleUWrite
	// The pair counts as a single request for Prop. P2 purposes; both halves
	// still count individually in the Issued statistic above, so correct it.
	m.stats.Issued--

	m.enqueue(ur)
	m.enqueue(uw)
	m.emit(t, EvIssued, ur, ur.pertainSet())
	m.emit(t, EvIssued, uw, uw.pertainSet())
	m.stabilize(t)
	return UpgradeHandle{ReadID: ur.id, WriteID: uw.id}, nil
}

// UpgradePhase reports the current phase of the pair.
func (m *RSM) UpgradePhase(h UpgradeHandle) UpgradePhase {
	ur := m.reqs[h.ReadID]
	uw := m.reqs[h.WriteID]
	switch {
	case ur != nil && ur.state == StateSatisfied:
		return UpgradeReading
	case uw != nil && uw.state == StateSatisfied:
		return UpgradeWriting
	case ur == nil && uw == nil:
		return UpgradeDone
	default:
		return UpgradePending
	}
}

// FinishRead reports that the optimistic read segment of the pair finished
// at time t. If upgrade is false, no write access turned out to be needed:
// the write half is canceled and the pair is done. If upgrade is true, the
// read locks are released and the job must wait until the write half is
// satisfied (the resources' state may change in between — see Sec. 3.6).
//
// FinishRead is valid only while the read half is satisfied
// (UpgradeReading); in particular it must not be called if the write half
// won the race and the read half was canceled.
func (m *RSM) FinishRead(t Time, h UpgradeHandle, upgrade bool) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	ur := m.reqs[h.ReadID]
	if ur == nil || ur.upgradeRole != roleURead {
		return fmt.Errorf("%w: read half %d", ErrNotUpgrade, h.ReadID)
	}
	if ur.state != StateSatisfied {
		return fmt.Errorf("%w: FinishRead with read half in state %s", ErrBadState, ur.state)
	}
	released := ur.granted.Clone()
	m.unlockAll(ur)
	ur.state = StateComplete
	ur.completeT = t
	m.removeIncomplete(ur)
	m.emit(t, EvReadSegmentDone, ur, released)
	m.record(ur)

	uw := m.reqs[h.WriteID]
	if upgrade {
		m.stats.UpgradesTaken++
		// The write half stays queued (it may already be entitled); once the
		// read locks above are released its blocking set shrinks and normal
		// satisfaction applies.
	} else {
		m.stats.UpgradesSkipped++
		if uw != nil && (uw.state == StateWaiting || uw.state == StateEntitled) {
			m.cancel(t, uw)
		}
	}
	m.stabilize(t)
	return nil
}

// cancel removes one half of an upgradeable pair from all queues without it
// ever holding resources. Cancellation can remove the only obstacle blocking
// other requests without unlocking anything — a case the base rules never
// face; the caller's stabilize pass re-applies the R1/W1 immediate-
// satisfaction test to every waiting request afterwards.
func (m *RSM) cancel(t Time, r *request) {
	m.dequeueAll(r)
	r.state = StateCanceled
	r.completeT = t
	m.removeIncomplete(r)
	m.stats.Canceled++
	m.emit(t, EvCanceled, r, r.pertainSet())
	m.record(r)
}

// CancelUpgradeable withdraws an upgradeable pair before it holds anything.
// Two configurations are legal:
//
//   - Neither half satisfied (UpgradePending): both halves are canceled.
//     This is the context-cancellation path of the runtime's upgradeable
//     acquire, mirroring CancelRequest for plain requests.
//   - The read half already completed via FinishRead(…, true) and the write
//     half is still waiting/entitled: only the write half is canceled. This
//     is the context-cancellation path of a pending upgrade; the caller no
//     longer holds the read locks, so nothing is released.
//
// If either half is satisfied (holds locks), cancellation is refused with
// ErrBadState — the pair must go through its normal FinishRead/Complete
// lifecycle instead.
func (m *RSM) CancelUpgradeable(t Time, h UpgradeHandle) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	uw := m.reqs[h.WriteID]
	if uw == nil || uw.upgradeRole != roleUWrite {
		return fmt.Errorf("%w: write half %d", ErrNotUpgrade, h.WriteID)
	}
	if (uw.state != StateWaiting && uw.state != StateEntitled) || !uw.granted.Empty() {
		return fmt.Errorf("%w: CancelUpgradeable with write half in state %s", ErrBadState, uw.state)
	}
	ur := m.reqs[h.ReadID]
	if ur != nil {
		if ur.upgradeRole != roleURead {
			return fmt.Errorf("%w: read half %d", ErrNotUpgrade, h.ReadID)
		}
		if ur.state == StateSatisfied || !ur.granted.Empty() {
			return fmt.Errorf("%w: read half is satisfied; use FinishRead", ErrBadState)
		}
		m.cancel(t, ur)
		// The pair counted as one request at issue (stats.Issued was
		// decremented); canceling both halves must likewise count once.
		m.stats.Canceled--
	}
	m.cancel(t, uw)
	m.stabilize(t)
	return nil
}

// CancelRequest withdraws a request that has not yet acquired anything:
// waiting or entitled plain requests, and incremental requests with no
// grants. It must not be used on satisfied requests, partially granted
// incremental requests, or the halves of an upgradeable pair (those cancel
// each other through their own lifecycle). Cancellation dequeues the
// request everywhere; the stabilization pass then re-evaluates waiting
// requests, since removing a queue entry can unblock them without any
// resource being unlocked.
//
// This is an extension beyond the paper (which has no timeout story); it is
// what gives the runtime plane context-aware acquisition. Canceling a
// waiting request cannot affect any satisfied request and therefore
// preserves every safety invariant; the worst-case bounds of OTHER requests
// only improve (their blocking sets and queues shrink).
func (m *RSM) CancelRequest(t Time, id ReqID) error {
	if err := m.checkTime(t); err != nil {
		return err
	}
	r := m.reqs[id]
	if r == nil {
		return fmt.Errorf("%w: id=%d", ErrUnknownRequest, id)
	}
	if r.group != 0 {
		return fmt.Errorf("%w: cancel upgradeable halves via FinishRead", ErrNotUpgrade)
	}
	if r.state != StateWaiting && r.state != StateEntitled {
		return fmt.Errorf("%w: CancelRequest in state %s", ErrBadState, r.state)
	}
	if !r.granted.Empty() {
		return fmt.Errorf("%w: request %d holds %v", ErrBadState, id, r.granted)
	}
	m.cancel(t, r)
	m.stabilize(t)
	return nil
}
