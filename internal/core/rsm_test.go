package core

import (
	"errors"
	"testing"
)

// Resource names matching the paper's running example.
const (
	la ResourceID = 0
	lb ResourceID = 1
	lc ResourceID = 2
)

func mustIssue(t testing.TB, m *RSM, at Time, read, write []ResourceID) ReqID {
	t.Helper()
	id, err := m.Issue(at, read, write, nil)
	if err != nil {
		t.Fatalf("Issue at t=%d: %v", at, err)
	}
	return id
}

func mustComplete(t testing.TB, m *RSM, at Time, id ReqID) {
	t.Helper()
	if err := m.Complete(at, id); err != nil {
		t.Fatalf("Complete(%d) at t=%d: %v", id, at, err)
	}
}

func wantState(t testing.TB, m *RSM, id ReqID, want State) {
	t.Helper()
	got, err := m.State(id)
	if err != nil {
		t.Fatalf("State(%d): %v", id, err)
	}
	if got != want {
		t.Fatalf("request %d state = %s, want %s", id, got, want)
	}
}

// TestFig2RunningExample replays the paper's running example (Fig. 2) event
// by event and asserts every state transition the narrative describes, plus
// the Fig. 2(b) queue table. All five tasks have their own processor, so
// Props. P1/P2 hold trivially and the RSM's logical decisions are exactly
// the schedule of Fig. 2(a).
//
// Request sets (reconciling the paper's internally inconsistent statements —
// see EXPERIMENTS.md E1 for the discrepancy notes):
//
//	R1,1^w : write {ℓa, ℓb}     issued t=1, CS [1, 5)
//	R2,1^w : write {ℓa, ℓb, ℓc} issued t=2, CS [8, 10)
//	R3,1^r : read  {ℓc}         issued t=3, CS [3, 8)
//	R4,1^r : read  {ℓc}         issued t=4, CS [4, 6)
//	R5,1^r : read  {ℓa, ℓb}     issued t=7, CS [10, 12)
func TestFig2RunningExample(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{RecordHistory: true})

	// t=1: R1,1 issued and satisfied immediately (Rule W1).
	w11 := mustIssue(t, m, 1, nil, []ResourceID{la, lb})
	wantState(t, m, w11, StateSatisfied)

	// t=2: R2,1 issued; enqueued in WQ(ℓa), WQ(ℓb), WQ(ℓc); not satisfied,
	// not entitled (ℓa, ℓb write locked by R1,1).
	w21 := mustIssue(t, m, 2, nil, []ResourceID{la, lb, lc})
	wantState(t, m, w21, StateWaiting)
	for _, l := range []ResourceID{la, lb, lc} {
		qs := m.Queues(l)
		if len(qs.WQ) != 1 || qs.WQ[0] != w21 {
			t.Fatalf("WQ(%d) = %v, want [%d]", l, qs.WQ, w21)
		}
	}

	// t=3: R3,1 (read ℓc) cuts ahead of the non-entitled R2,1 (Rule R1).
	r31 := mustIssue(t, m, 3, []ResourceID{lc}, nil)
	wantState(t, m, r31, StateSatisfied)

	// t=4: R4,1 (read ℓc) also satisfied immediately: reader parallelism on
	// ℓc while ℓa, ℓb are write locked — only possible with fine-grained
	// locking.
	r41 := mustIssue(t, m, 4, []ResourceID{lc}, nil)
	wantState(t, m, r41, StateSatisfied)
	if h := m.Holders(lc); len(h) != 2 {
		t.Fatalf("ℓc holders = %v, want two readers", h)
	}

	// t=5: R1,1 completes; R2,1 becomes entitled (earliest write, nothing
	// write locked) but stays blocked: B(R2,1) = {R3,1, R4,1}.
	mustComplete(t, m, 5, w11)
	wantState(t, m, w21, StateEntitled)

	// t=6: R4,1 completes; B(R2,1) = {R3,1}: still blocked.
	mustComplete(t, m, 6, r41)
	wantState(t, m, w21, StateEntitled)

	// t=7: R5,1 (read ℓa, ℓb) issued; blocked by the entitled R2,1, and not
	// entitled itself (no resource in its set is write locked).
	r51 := mustIssue(t, m, 7, []ResourceID{la, lb}, nil)
	wantState(t, m, r51, StateWaiting)

	// t=8: R3,1 completes; R2,1 is satisfied (Rule W2) and dequeued from
	// all write queues; R5,1 becomes entitled (ℓa write locked, empty write
	// queues).
	mustComplete(t, m, 8, r31)
	wantState(t, m, w21, StateSatisfied)
	wantState(t, m, r51, StateEntitled)
	for _, l := range []ResourceID{la, lb, lc} {
		if qs := m.Queues(l); len(qs.WQ) != 0 {
			t.Fatalf("WQ(%d) = %v after R2,1 satisfied, want empty", l, qs.WQ)
		}
		if h := m.Holders(l); len(h) != 1 || h[0] != w21 {
			t.Fatalf("holders(%d) = %v, want [%d]", l, m.Holders(l), w21)
		}
	}

	// t=10: R2,1 completes; R5,1 satisfied (Rule R2).
	mustComplete(t, m, 10, w21)
	wantState(t, m, r51, StateSatisfied)

	// t=12: R5,1 completes; system drained.
	mustComplete(t, m, 12, r51)
	if n := len(m.Incomplete()); n != 0 {
		t.Fatalf("%d incomplete requests after drain", n)
	}

	// Acquisition delays measured off the schedule: R2,1 waited [2,8);
	// R5,1 waited [7,10); everything else was satisfied immediately.
	checkDelay := func(id ReqID, want Time) {
		t.Helper()
		ri, err := m.Info(id)
		if err != nil {
			t.Fatal(err)
		}
		if got := ri.AcquisitionDelay(); got != want {
			t.Errorf("request %d acquisition delay = %d, want %d", id, got, want)
		}
	}
	checkDelay(w11, 0)
	checkDelay(w21, 6)
	checkDelay(r31, 0)
	checkDelay(r41, 0)
	checkDelay(r51, 3)

	st := m.Stats()
	if st.Issued != 5 || st.Satisfied != 5 || st.Completed != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.ImmediateSats != 3 {
		t.Errorf("immediate satisfactions = %d, want 3 (R1,1, R3,1, R4,1)", st.ImmediateSats)
	}
}

// TestFig2QueueTable replays Fig. 2 and asserts the queue-state table of
// Fig. 2(b) for ℓa and ℓb at a representative instant inside each interval.
// (The published table omits R5,1 from RQ(ℓa) during [7,10); since
// N5,1 = {ℓa, ℓb} per the paper's own Sec. 3.2 example, R5,1 is enqueued in
// both read queues — see EXPERIMENTS.md E2.)
func TestFig2QueueTable(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})

	type row struct {
		rqA, wqA, rqB, wqB []ReqID
	}
	check := func(at string, want row) {
		t.Helper()
		got := row{
			rqA: m.Queues(la).RQ, wqA: m.Queues(la).WQ,
			rqB: m.Queues(lb).RQ, wqB: m.Queues(lb).WQ,
		}
		eq := func(a, b []ReqID) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		if !eq(got.rqA, want.rqA) || !eq(got.wqA, want.wqA) || !eq(got.rqB, want.rqB) || !eq(got.wqB, want.wqB) {
			t.Errorf("%s: queues = %+v, want %+v", at, got, want)
		}
	}

	// [0, 2): all empty (R1,1 satisfied at issuance, instantly dequeued).
	w11 := mustIssue(t, m, 1, nil, []ResourceID{la, lb})
	check("[0,2) after t=1", row{})

	// [2, 7): WQ(ℓa) = WQ(ℓb) = {R2,1}.
	w21 := mustIssue(t, m, 2, nil, []ResourceID{la, lb, lc})
	r31 := mustIssue(t, m, 3, []ResourceID{lc}, nil)
	r41 := mustIssue(t, m, 4, []ResourceID{lc}, nil)
	mustComplete(t, m, 5, w11)
	mustComplete(t, m, 6, r41)
	check("[2,7)", row{wqA: []ReqID{w21}, wqB: []ReqID{w21}})

	// [7, 8): R5,1 joins the read queues of both ℓa and ℓb.
	r51 := mustIssue(t, m, 7, []ResourceID{la, lb}, nil)
	check("[7,8)", row{rqA: []ReqID{r51}, wqA: []ReqID{w21}, rqB: []ReqID{r51}, wqB: []ReqID{w21}})

	// [8, 10): R2,1 satisfied and dequeued; R5,1 entitled, still queued.
	mustComplete(t, m, 8, r31)
	check("[8,10)", row{rqA: []ReqID{r51}, rqB: []ReqID{r51}})

	// [10, 12]: all empty again.
	mustComplete(t, m, 10, w21)
	check("[10,12]", row{})
	mustComplete(t, m, 12, r51)
}

func TestIssueErrors(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	if _, err := m.Issue(1, nil, nil, nil); !errors.Is(err, ErrEmptyRequest) {
		t.Errorf("empty request: err = %v", err)
	}
	if _, err := m.Issue(1, []ResourceID{9}, nil, nil); err == nil {
		t.Error("out-of-range resource accepted")
	}
	id := mustIssue(t, m, 5, []ResourceID{la}, nil)
	if _, err := m.Issue(4, []ResourceID{la}, nil, nil); !errors.Is(err, ErrTimeRegressed) {
		t.Errorf("time regression: err = %v", err)
	}
	if err := m.Complete(5, id+100); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("unknown request: err = %v", err)
	}
	mustComplete(t, m, 6, id)
	if err := m.Complete(7, id); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("double complete: err = %v", err)
	}
}

func TestCompleteBeforeSatisfiedRejected(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	w1 := mustIssue(t, m, 1, nil, []ResourceID{la})
	w2 := mustIssue(t, m, 2, nil, []ResourceID{la})
	// Per Def. 4 a write behind a write *holder* is waiting, not entitled:
	// entitled writes are blocked only by satisfied readers.
	wantState(t, m, w2, StateWaiting)
	if err := m.Complete(3, w2); !errors.Is(err, ErrBadState) {
		t.Errorf("completing an unsatisfied request: err = %v", err)
	}
	mustComplete(t, m, 3, w1)
	wantState(t, m, w2, StateSatisfied)
}

// Overlapping read and write sets are treated as writes.
func TestIssueOverlapIsWrite(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	id := mustIssue(t, m, 1, []ResourceID{la, lb}, []ResourceID{la})
	ri, err := m.Info(id)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Kind != KindWrite {
		t.Errorf("kind = %s, want write", ri.Kind)
	}
	if !ri.NeedWrite.Equal(NewResourceSet(la)) || !ri.NeedRead.Equal(NewResourceSet(lb)) {
		t.Errorf("need sets: read %v write %v", ri.NeedRead, ri.NeedWrite)
	}
}

// A write request whose needed set intersects a read group expands to cover
// the group's read set (Sec. 3.2) in expanded mode: a reader of the extras
// is then blocked.
func TestWriteExpansionBlocksReaderOfExtras(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	// Write needing only ℓa expands to D = {ℓa, ℓb}.
	w := mustIssue(t, m, 1, nil, []ResourceID{la})
	wantState(t, m, w, StateSatisfied)
	ri, _ := m.Info(w)
	if ri.Placeholder || !ri.Extra.Equal(NewResourceSet(lb)) {
		t.Fatalf("extras = %v (placeholder=%v), want locked {ℓb}", ri.Extra, ri.Placeholder)
	}
	// A read of ℓb alone now conflicts with the expanded write; blocked by a
	// satisfied write with empty write queues, it is entitled at once
	// (Def. 3).
	r := mustIssue(t, m, 2, []ResourceID{lb}, nil)
	wantState(t, m, r, StateEntitled)
	mustComplete(t, m, 3, w)
	wantState(t, m, r, StateSatisfied)
}

// Multiple readers of disjoint and overlapping sets are all satisfied
// concurrently; a writer arriving later becomes entitled and is satisfied
// once the last conflicting reader completes, and readers arriving after
// the writer's entitlement must wait (phase-fairness: reads concede to
// writes).
func TestPhaseAlternation(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	r1 := mustIssue(t, m, 1, []ResourceID{la, lb}, nil)
	r2 := mustIssue(t, m, 2, []ResourceID{lb}, nil)
	wantState(t, m, r1, StateSatisfied)
	wantState(t, m, r2, StateSatisfied)

	w := mustIssue(t, m, 3, nil, []ResourceID{lb})
	wantState(t, m, w, StateEntitled) // blocked by both readers

	r3 := mustIssue(t, m, 4, []ResourceID{lb}, nil)
	wantState(t, m, r3, StateWaiting) // reads concede to the entitled write

	mustComplete(t, m, 5, r1)
	wantState(t, m, w, StateEntitled)
	mustComplete(t, m, 6, r2)
	wantState(t, m, w, StateSatisfied) // write phase begins
	wantState(t, m, r3, StateEntitled) // next read phase is entitled

	mustComplete(t, m, 7, w)
	wantState(t, m, r3, StateSatisfied) // writes concede to reads
}

// Two writers on disjoint resources proceed concurrently (fine-grained
// locking); under a single group lock they would serialize.
func TestDisjointWritersConcurrent(t *testing.T) {
	b := NewSpecBuilder(4)
	s := b.Build()
	m := NewRSM(s, Options{})
	w1 := mustIssue(t, m, 1, nil, []ResourceID{0, 1})
	w2 := mustIssue(t, m, 2, nil, []ResourceID{2, 3})
	wantState(t, m, w1, StateSatisfied)
	wantState(t, m, w2, StateSatisfied)
}

// FIFO among conflicting writers: satisfaction follows timestamp order.
func TestWriterFIFO(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	w1 := mustIssue(t, m, 1, nil, []ResourceID{lc})
	w2 := mustIssue(t, m, 2, nil, []ResourceID{lc})
	w3 := mustIssue(t, m, 3, nil, []ResourceID{lc})
	wantState(t, m, w1, StateSatisfied)
	// Writes behind a write holder are waiting (Def. 4: a resource in D must
	// not be write locked for entitlement); satisfaction still follows
	// timestamp order through the FIFO write queue.
	wantState(t, m, w2, StateWaiting)
	wantState(t, m, w3, StateWaiting)
	mustComplete(t, m, 4, w1)
	wantState(t, m, w2, StateSatisfied)
	wantState(t, m, w3, StateWaiting)
	mustComplete(t, m, 5, w2)
	wantState(t, m, w3, StateSatisfied)
	mustComplete(t, m, 6, w3)
}

// Info on an unknown ID fails; with RecordHistory, completed requests stay
// observable.
func TestInfoHistory(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{RecordHistory: true})
	id := mustIssue(t, m, 1, []ResourceID{la}, nil)
	mustComplete(t, m, 2, id)
	ri, err := m.Info(id)
	if err != nil {
		t.Fatalf("history lookup failed: %v", err)
	}
	if ri.State != StateComplete || ri.CompleteT != 2 {
		t.Errorf("history info = %+v", ri)
	}
	if h := m.History(); len(h) != 1 || h[0].ID != id {
		t.Errorf("History() = %+v", h)
	}

	m2 := NewRSM(fig2Spec(t), Options{})
	id2 := mustIssue(t, m2, 1, []ResourceID{la}, nil)
	mustComplete(t, m2, 2, id2)
	if _, err := m2.Info(id2); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("without history: err = %v", err)
	}
}

// Tags round-trip through events and infos.
func TestTagsAndObserver(t *testing.T) {
	m := NewRSM(fig2Spec(t), Options{})
	var events []Event
	m.SetObserver(ObserverFunc(func(e Event) { events = append(events, e) }))
	id, err := m.Issue(1, []ResourceID{la}, nil, "job-7")
	if err != nil {
		t.Fatal(err)
	}
	mustComplete(t, m, 2, id)
	if len(events) != 3 { // issued, satisfied, completed
		t.Fatalf("events = %v", events)
	}
	want := []EventType{EvIssued, EvSatisfied, EvCompleted}
	for i, e := range events {
		if e.Type != want[i] || e.Req != id || e.Tag != "job-7" {
			t.Errorf("event %d = %+v", i, e)
		}
	}
}
