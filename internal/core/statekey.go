package core

import (
	"fmt"
	"sort"
	"strings"
)

// This file contains the introspection hooks the systematic model checker
// (internal/mc) drives the RSM through: a canonical state encoding for
// memoized state-space exploration, and enabled-invocation predicates that
// mirror the legality checks of Complete and CancelRequest without
// performing them.

// StateKey renders a canonical, behavior-complete encoding of the RSM's
// dynamic state. Two RSMs over the same Spec and Options whose StateKeys are
// equal react identically to any identical future invocation sequence: the
// key captures every queue (write queues in timestamp order, read queues and
// holder lists canonically sorted), every incomplete request's lifecycle
// state, lock-relevant sets, freshness flag, and the relative timestamp
// order of incomplete requests (which the stabilization passes iterate in).
// Absolute Time values are deliberately excluded — the RSM's decisions
// depend only on timestamp ORDER (Rule G1), so states reached through
// different interleavings of the same actions can compare equal.
//
// alias maps request IDs to caller-chosen canonical names, letting an
// explorer identify requests by their scenario role rather than their
// issuance-order ID (which varies across interleavings). A nil alias uses
// raw IDs.
func (m *RSM) StateKey(alias func(ReqID) int32) string {
	name := func(id ReqID) int32 {
		if alias == nil {
			return int32(id)
		}
		return alias(id)
	}
	var b strings.Builder

	// Incomplete requests, in timestamp order (the order every stabilization
	// pass visits them in — it is part of the behavior).
	for _, r := range m.incomplete {
		fmt.Fprintf(&b, "R%d:k%d,s%d,f%t,i%t,u%d", name(r.id), r.kind, r.state,
			r.fresh, r.incremental, r.upgradeRole)
		b.WriteString(";nr=")
		b.WriteString(r.needRead.String())
		b.WriteString(";nw=")
		b.WriteString(r.needWrite.String())
		b.WriteString(";xw=")
		b.WriteString(r.extraWrite.String())
		b.WriteString(";ph=")
		b.WriteString(r.placeholders.String())
		b.WriteString(";g=")
		b.WriteString(r.granted.String())
		b.WriteString(";w=")
		b.WriteString(r.want.String())
		b.WriteByte('|')
	}

	sortedNames := func(reqs []*request) []int32 {
		ns := make([]int32, len(reqs))
		for i, r := range reqs {
			ns[i] = name(r.id)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		return ns
	}
	for a := range m.res {
		rs := &m.res[a]
		if len(rs.rq) == 0 && len(rs.wq) == 0 && len(rs.readHolders) == 0 && rs.writeHolder == nil {
			continue
		}
		fmt.Fprintf(&b, "L%d:", a)
		// Read-queue order is issuance order but never consulted by any rule
		// (only membership and per-entry state are), so sort for canonicity.
		fmt.Fprintf(&b, "rq=%v;", sortedNames(rs.rq))
		// Write-queue order IS behavior (Rule W1): keep it.
		b.WriteString("wq=[")
		for _, e := range rs.wq {
			fmt.Fprintf(&b, "%d", name(e.r.id))
			if e.placeholder {
				b.WriteByte('p')
			}
			b.WriteByte(' ')
		}
		b.WriteString("];")
		fmt.Fprintf(&b, "rh=%v;", sortedNames(rs.readHolders))
		if rs.writeHolder != nil {
			fmt.Fprintf(&b, "wh=%d", name(rs.writeHolder.id))
		}
		b.WriteByte('|')
	}
	return b.String()
}

// CanComplete reports whether Complete(id) would be accepted right now:
// the request is satisfied, or it is an entitled incremental request
// (which may finish early, Sec. 3.7).
func (m *RSM) CanComplete(id ReqID) bool {
	r := m.reqs[id]
	if r == nil {
		return false
	}
	return r.state == StateSatisfied || (r.state == StateEntitled && r.incremental)
}

// CanCancel reports whether CancelRequest(id) would be accepted right now:
// a plain (non-upgradeable) request that is waiting or entitled and holds
// nothing.
func (m *RSM) CanCancel(id ReqID) bool {
	r := m.reqs[id]
	if r == nil {
		return false
	}
	return r.group == 0 &&
		(r.state == StateWaiting || r.state == StateEntitled) &&
		r.granted.Empty()
}
