package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file is the E13 harness: it drives an RSM with randomized workloads
// and checks the paper's structural properties as machine-verified
// invariants after every invocation:
//
//	I1  Mutual exclusion: a write-locked resource has exactly one holder.
//	I2  No two conflicting satisfied requests (and partially granted
//	    incremental holders conflict with no satisfied request on their
//	    granted resources).
//	I3  Prop. E10: conflicting read and write requests are never
//	    simultaneously entitled.
//	I4  Write queues are timestamp ordered (Rule W1).
//	I5  Satisfied/complete requests appear in no queue (Rule G2).
//	I6  An entitled write (or its placeholder) heads every write queue it
//	    is enqueued in (Def. 4).
//	I7  Lemma 6: the earliest-timestamped incomplete write request is
//	    entitled or satisfied.
//	I8  Cors. 1–2: the blocking set of an entitled request never gains
//	    members (monotone drain until satisfaction).
//	I9  Entitled requests hold no locks (except incremental grants).
//	I10 Liveness: when all critical sections complete, no incomplete
//	    requests remain.

// checker captures blocking sets of entitled requests to verify I8 across
// invocations.
type checker struct {
	t *testing.T
	m *RSM
	// strict enables the full-strength Lemma 6 check, valid for
	// Assumption-1 workloads (no mixing, no incremental requests). The
	// extended protocol features introduce a legitimate blocking channel —
	// an entitled read occupying RQ(ℓ) for a read-access or persistently
	// granted resource — that the lemma's statement predates.
	strict bool
	// lastB maps an entitled request ID to the set of request IDs blocking it.
	lastB map[ReqID]map[ReqID]bool
}

func newChecker(t *testing.T, m *RSM, strict bool) *checker {
	return &checker{t: t, m: m, strict: strict, lastB: map[ReqID]map[ReqID]bool{}}
}

// blockingIDs recomputes B(r): satisfied (or partially granted incremental)
// conflicting requests.
func (c *checker) blockingIDs(r *request) map[ReqID]bool {
	b := map[ReqID]bool{}
	for _, o := range c.m.incomplete {
		if o == r {
			continue
		}
		holding := o.state == StateSatisfied ||
			(o.state == StateEntitled && o.incremental && !o.granted.Empty())
		if holding && r.conflictsWith(o) {
			b[o.id] = true
		}
	}
	return b
}

func (c *checker) check(ctx string) {
	t, m := c.t, c.m
	t.Helper()

	// I1–I7 (weak form), I9 via the library self-check.
	if v := m.CheckInvariants(); len(v) != 0 {
		t.Fatalf("%s: %s\n%s", ctx, v[0], dumpState(m))
	}

	// Strict I7 (Lemma 6, Assumption-1 workloads): the earliest incomplete
	// write must be entitled or satisfied with NO exemptions.
	if c.strict {
		var earliestWrite *request
		for _, r := range m.incomplete {
			if r.kind == KindWrite && (earliestWrite == nil || r.seq < earliestWrite.seq) {
				earliestWrite = r
			}
		}
		if earliestWrite != nil && earliestWrite.state == StateWaiting {
			t.Fatalf("%s: I7/Lemma 6 violated: earliest write %d is waiting (need %v, extra %v)\n%s",
				ctx, earliestWrite.id, earliestWrite.need, earliestWrite.extraWrite, dumpState(m))
		}
	}

	// I8 (Cors. 1–2): blocking sets of entitled requests only shrink.
	nowB := map[ReqID]map[ReqID]bool{}
	for _, r := range m.incomplete {
		if r.state != StateEntitled {
			continue
		}
		b := c.blockingIDs(r)
		if prev, ok := c.lastB[r.id]; ok {
			for id := range b {
				if !prev[id] {
					t.Fatalf("%s: I8/Cor violated: request %d gained blocker %d after entitlement", ctx, r.id, id)
				}
			}
		}
		nowB[r.id] = b
	}
	c.lastB = nowB
}

// dumpState renders the full RSM state for failure diagnostics.
func dumpState(m *RSM) string {
	var b []byte
	for _, r := range m.incomplete {
		b = append(b, fmt.Sprintf("  req %d kind=%s state=%s role=%d r%v/w%v extra=%v ph=%v granted=%v\n",
			r.id, r.kind, r.state, r.upgradeRole, r.needRead, r.needWrite, r.extraWrite, r.placeholders, r.granted)...)
	}
	for a := 0; a < m.spec.NumResources(); a++ {
		qs := m.Queues(ResourceID(a))
		b = append(b, fmt.Sprintf("  res %d: RQ=%v WQ=%v ph=%v readH=%v writeH=%v\n",
			a, qs.RQ, qs.WQ, qs.Placeholder, qs.ReadHolders, qs.WriteHolder)...)
	}
	return string(b)
}

// reqTemplate is one declared potential request. The paper's model requires
// the set of potential requests to be known a priori (the read-sharing
// relation ~ is derived from them); a workload that issues undeclared
// multi-resource reads breaks the expansion machinery and with it Lemma 6 —
// so the harness only ever issues subsets of declared templates.
type reqTemplate struct {
	read  []ResourceID
	write []ResourceID
}

// randomSystem builds a random resource system together with the templates
// of its declared potential requests.
func randomSystem(rng *rand.Rand, q int, mixed bool) (*Spec, []reqTemplate) {
	b := NewSpecBuilder(q)
	var templates []reqTemplate
	n := rng.Intn(5) + 3
	for i := 0; i < n; i++ {
		var tpl reqTemplate
		switch {
		case mixed && rng.Intn(3) == 0: // mixed template
			tpl.read = pickResources(rng, q, 2)
			tpl.write = pickResources(rng, q, 2)
		case rng.Intn(2) == 0: // pure read group
			tpl.read = pickResources(rng, q, 3)
		default: // pure write
			tpl.write = pickResources(rng, q, 3)
		}
		// Drop overlap: overlapping IDs would be writes anyway.
		tpl.read = subtract(tpl.read, tpl.write)
		if len(tpl.read) == 0 && len(tpl.write) == 0 {
			continue
		}
		if err := b.DeclareRequest(tpl.read, tpl.write); err != nil {
			panic(err)
		}
		templates = append(templates, tpl)
	}
	if len(templates) == 0 {
		tpl := reqTemplate{write: []ResourceID{0}}
		if err := b.DeclareRequest(nil, tpl.write); err != nil {
			panic(err)
		}
		templates = append(templates, tpl)
	}
	return b.Build(), templates
}

func subtract(a, b []ResourceID) []ResourceID {
	var out []ResourceID
	for _, x := range a {
		drop := false
		for _, y := range b {
			if x == y {
				drop = true
				break
			}
		}
		if !drop {
			out = append(out, x)
		}
	}
	return out
}

// sampleTemplate returns a random non-empty sub-request of a random
// template. Sub-requests stay within the declared sharing relation.
func sampleTemplate(rng *rand.Rand, templates []reqTemplate) (read, write []ResourceID) {
	tpl := templates[rng.Intn(len(templates))]
	read = subsample(rng, tpl.read)
	write = subsample(rng, tpl.write)
	if len(read) == 0 && len(write) == 0 {
		if len(tpl.write) > 0 {
			write = tpl.write[:1]
		} else {
			read = tpl.read[:1]
		}
	}
	return read, write
}

func subsample(rng *rand.Rand, ids []ResourceID) []ResourceID {
	var out []ResourceID
	for _, id := range ids {
		if rng.Intn(3) > 0 {
			out = append(out, id)
		}
	}
	return out
}

// readTemplates filters templates to the pure-read ones (for upgrades and
// read-incremental requests, whose needed sets must be declared read sets).
func readTemplates(templates []reqTemplate) []reqTemplate {
	var out []reqTemplate
	for _, tpl := range templates {
		if len(tpl.write) == 0 {
			out = append(out, tpl)
		}
	}
	return out
}

func pickResources(rng *rand.Rand, q, max int) []ResourceID {
	n := rng.Intn(max) + 1
	seen := map[ResourceID]bool{}
	var ids []ResourceID
	for i := 0; i < n; i++ {
		id := ResourceID(rng.Intn(q))
		if !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	return ids
}

// fuzzCfg selects which protocol features a fuzz episode exercises.
type fuzzCfg struct {
	opt         Options
	upgrades    bool
	incremental bool
	mixed       bool
}

// fuzzRSM drives one randomized episode and invariant-checks every step.
// Returns the number of completed requests.
func fuzzRSM(t *testing.T, seed int64, cfg fuzzCfg) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	q := rng.Intn(6) + 2
	spec, templates := randomSystem(rng, q, cfg.mixed)
	rtpls := readTemplates(templates)
	m := NewRSM(spec, cfg.opt)
	strict := !cfg.mixed && !cfg.incremental
	ck := newChecker(t, m, strict)

	var pending []*liveReq
	now := Time(0)
	steps := 200 + rng.Intn(200)

	for s := 0; s < steps; s++ {
		now += Time(rng.Intn(5) + 1)
		op := rng.Intn(10)
		switch {
		case op < 4 && len(pending) < 12: // issue a declared (sub-)request
			read, write := sampleTemplate(rng, templates)
			if len(read) == 0 && len(write) == 0 {
				continue
			}
			id, err := m.Issue(now, read, write, nil)
			if err != nil {
				t.Fatalf("seed %d step %d: Issue: %v", seed, s, err)
			}
			pending = append(pending, &liveReq{id: id})

		case op == 4 && cfg.upgrades && len(rtpls) > 0 && len(pending) < 12:
			res := subsample(rng, rtpls[rng.Intn(len(rtpls))].read)
			if len(res) == 0 {
				continue
			}
			h, err := m.IssueUpgradeable(now, res, nil)
			if err != nil {
				t.Fatalf("seed %d step %d: IssueUpgradeable: %v", seed, s, err)
			}
			pending = append(pending, &liveReq{id: h.WriteID, upgrade: &h})

		case op == 5 && cfg.incremental && len(pending) < 12:
			var id ReqID
			var err error
			if rng.Intn(2) == 0 && len(rtpls) > 0 {
				full := subsample(rng, rtpls[rng.Intn(len(rtpls))].read)
				if len(full) == 0 {
					continue
				}
				initial := full[:rng.Intn(len(full))+1]
				id, err = m.IssueIncremental(now, full, nil, initial, nil, nil)
			} else {
				full := pickResources(rng, q, 3)
				initial := full[:rng.Intn(len(full))+1]
				id, err = m.IssueIncremental(now, nil, full, nil, initial, nil)
			}
			if err != nil {
				t.Fatalf("seed %d step %d: IssueIncremental: %v", seed, s, err)
			}
			pending = append(pending, &liveReq{id: id, incr: true})

		default: // progress a random pending request
			if len(pending) == 0 {
				continue
			}
			i := rng.Intn(len(pending))
			p := pending[i]
			done, err := progressRequest(m, now, p, rng)
			if err != nil {
				t.Fatalf("seed %d step %d: progress: %v", seed, s, err)
			}
			if done {
				pending = append(pending[:i], pending[i+1:]...)
			}
		}
		ck.check(fmt.Sprintf("seed %d step %d", seed, s))
	}

	// Drain: complete everything satisfiable until the system is empty.
	for round := 0; round < 10000 && len(pending) > 0; round++ {
		now += 1
		i := round % len(pending)
		p := pending[i]
		done, err := progressRequest(m, now, p, rng)
		if err != nil {
			t.Fatalf("seed %d drain: %v", seed, err)
		}
		if done {
			pending = append(pending[:i], pending[i+1:]...)
		}
		ck.check(fmt.Sprintf("seed %d drain %d", seed, round))
	}
	if len(pending) != 0 {
		var states []string
		for _, p := range pending {
			st, _ := m.State(p.id)
			states = append(states, fmt.Sprintf("%d:%s", p.id, st))
		}
		t.Fatalf("seed %d: I10/liveness violated: %d stuck requests: %v", seed, len(pending), states)
	}
	if n := len(m.Incomplete()); n != 0 {
		t.Fatalf("seed %d: RSM reports %d incomplete after drain", seed, n)
	}
	return int(m.Stats().Completed)
}

// liveReq tracks one in-flight request of the fuzz harness.
type liveReq struct {
	id      ReqID
	upgrade *UpgradeHandle
	incr    bool
}

// progressRequest advances one live request by one step; returns true when
// the request is fully done.
func progressRequest(m *RSM, now Time, p *liveReq, rng *rand.Rand) (bool, error) {
	if p.upgrade != nil {
		h := *p.upgrade
		switch m.UpgradePhase(h) {
		case UpgradeReading:
			up := rng.Intn(2) == 0
			if err := m.FinishRead(now, h, up); err != nil {
				return false, err
			}
			if !up {
				return true, nil
			}
			return m.UpgradePhase(h) == UpgradeDone, nil
		case UpgradeWriting:
			if err := m.Complete(now, h.WriteID); err != nil {
				return false, err
			}
			return true, nil
		case UpgradeDone:
			return true, nil
		default:
			return false, nil // still pending
		}
	}
	st, err := m.State(p.id)
	if err != nil {
		return false, err
	}
	switch st {
	case StateSatisfied:
		return true, m.Complete(now, p.id)
	case StateEntitled:
		if p.incr {
			// Sometimes complete early, sometimes ask for more.
			if rng.Intn(3) == 0 {
				return true, m.Complete(now, p.id)
			}
			ri, err := m.Info(p.id)
			if err != nil {
				return false, err
			}
			rest := Union(ri.NeedRead, ri.NeedWrite)
			rest.SubtractWith(ri.Granted)
			if rest.Empty() {
				return true, m.Complete(now, p.id)
			}
			ids := rest.IDs()
			_, err = m.Acquire(now, p.id, ids[:rng.Intn(len(ids))+1])
			return false, err
		}
		return false, nil
	default:
		return false, nil
	}
}

// Assumption-1 workloads (all-read or all-write requests): every invariant
// including the full-strength Lemma 6 holds.
func TestInvariantsRandomBase(t *testing.T) {
	total := 0
	for seed := int64(1); seed <= 30; seed++ {
		total += fuzzRSM(t, seed, fuzzCfg{})
	}
	if total == 0 {
		t.Fatal("no requests completed across all seeds")
	}
}

func TestInvariantsRandomPlaceholders(t *testing.T) {
	for seed := int64(100); seed <= 130; seed++ {
		fuzzRSM(t, seed, fuzzCfg{opt: Options{Placeholders: true}})
	}
}

func TestInvariantsRandomMixed(t *testing.T) {
	for seed := int64(500); seed <= 530; seed++ {
		fuzzRSM(t, seed, fuzzCfg{mixed: true})
	}
}

func TestInvariantsRandomMixedPlaceholders(t *testing.T) {
	for seed := int64(600); seed <= 630; seed++ {
		fuzzRSM(t, seed, fuzzCfg{opt: Options{Placeholders: true}, mixed: true})
	}
}

func TestInvariantsRandomUpgrades(t *testing.T) {
	for seed := int64(200); seed <= 230; seed++ {
		fuzzRSM(t, seed, fuzzCfg{upgrades: true})
	}
}

func TestInvariantsRandomIncremental(t *testing.T) {
	for seed := int64(300); seed <= 330; seed++ {
		fuzzRSM(t, seed, fuzzCfg{incremental: true})
	}
}

func TestInvariantsRandomEverything(t *testing.T) {
	for seed := int64(400); seed <= 440; seed++ {
		fuzzRSM(t, seed, fuzzCfg{
			opt:         Options{Placeholders: seed%2 == 0, RecordHistory: true},
			upgrades:    true,
			incremental: true,
			mixed:       true,
		})
	}
}

// Soak coverage: many more seeds when not in -short mode.
func TestInvariantsSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	for seed := int64(1000); seed <= 1150; seed++ {
		cfg := fuzzCfg{
			opt:         Options{Placeholders: seed%2 == 0, RecordHistory: seed%3 == 0},
			upgrades:    seed%2 == 0,
			incremental: seed%3 == 0,
			mixed:       seed%5 != 0,
		}
		fuzzRSM(t, seed, cfg)
	}
}
