package core

import "testing"

// WriterFree must be false exactly while a write-capable request — plain
// write, mixed, upgradeable pair, or incremental with write potential — is
// incomplete in the resource's component, and must ignore all-read requests
// and other components entirely.
func TestWriterFree(t *testing.T) {
	b := NewSpecBuilder(4)
	if err := b.DeclareRequest([]ResourceID{0, 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareRequest([]ResourceID{2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	m := NewRSM(b.Build(), Options{})

	for a := ResourceID(0); a < 4; a++ {
		if !m.WriterFree(a) {
			t.Fatalf("WriterFree(%d) = false on an empty RSM", a)
		}
	}
	if m.WriterFree(-1) || m.WriterFree(4) {
		t.Error("WriterFree accepted an out-of-range resource")
	}

	// An all-read request never makes its component writer-bound.
	r := mustIssue(t, m, 1, []ResourceID{0, 1}, nil)
	if !m.WriterFree(0) {
		t.Error("WriterFree(0) = false with only a read incomplete")
	}

	// A plain write closes its whole component — including resources the
	// write doesn't name — and leaves the other component free.
	w := mustIssue(t, m, 2, nil, []ResourceID{0})
	if m.WriterFree(0) || m.WriterFree(1) {
		t.Error("WriterFree true in a component with an incomplete write")
	}
	if !m.WriterFree(2) {
		t.Error("WriterFree(2) = false; the write is in the other component")
	}
	mustComplete(t, m, 3, r)
	// Still write-bound until the write COMPLETES, not merely satisfies.
	if m.WriterFree(0) {
		t.Error("WriterFree(0) = true while the write is satisfied but incomplete")
	}
	mustComplete(t, m, 4, w)
	if !m.WriterFree(0) {
		t.Error("WriterFree(0) = false after the write completed")
	}

	// A mixed request (read 2, write 3) is write-capable for component {2,3}.
	mix := mustIssue(t, m, 5, []ResourceID{2}, []ResourceID{3})
	if m.WriterFree(2) {
		t.Error("WriterFree(2) = true with an incomplete mixed request")
	}
	mustComplete(t, m, 6, mix)

	// The write half of an upgradeable pair is write-capable from issuance,
	// through the read phase, until the pair is over.
	h, err := m.IssueUpgradeable(7, []ResourceID{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.WriterFree(0) {
		t.Error("WriterFree(0) = true with an upgradeable pair in its read phase")
	}
	if err := m.FinishRead(8, h, false); err != nil {
		t.Fatal(err)
	}
	if !m.WriterFree(0) {
		t.Error("WriterFree(0) = false after the pair's write half was canceled")
	}

	// An incremental request with non-empty write potential is write-capable
	// even before (and after) any write resource is asked for.
	inc, err := m.IssueIncremental(9, []ResourceID{2}, []ResourceID{3}, []ResourceID{2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.WriterFree(2) {
		t.Error("WriterFree(2) = true with an incremental write potential outstanding")
	}
	mustComplete(t, m, 10, inc)
	if !m.WriterFree(2) {
		t.Error("WriterFree(2) = false after the incremental request completed")
	}
}
