package mutexrnlp

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rtsync/rwrnlp/internal/core"
)

func TestExclusiveEvenForReads(t *testing.T) {
	l := New(2)
	t1, err := l.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	go func() {
		t2, err := l.Acquire(0) // a "read" would share under R/W; here it waits
		if err != nil {
			t.Error(err)
		}
		close(entered)
		l.Release(t2)
	}()
	select {
	case <-entered:
		t.Fatal("mutex RNLP shared a resource")
	case <-time.After(100 * time.Millisecond):
	}
	l.Release(t1)
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("successor never acquired")
	}
}

func TestNestedMutualExclusion(t *testing.T) {
	l := New(4)
	var data [4]int64
	var inside [4]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res := []core.ResourceID{core.ResourceID(g % 4), core.ResourceID((g + 1) % 4)}
			for i := 0; i < 400; i++ {
				tok, err := l.Acquire(res...)
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range res {
					if inside[r].Add(1) != 1 {
						t.Errorf("overlap on %d", r)
					}
					data[r]++
				}
				for _, r := range res {
					inside[r].Add(-1)
				}
				if err := l.Release(tok); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := l.Stats(); st.Completed != 6*400 {
		t.Errorf("completed = %d", st.Completed)
	}
}

// Disjoint requests proceed concurrently (fine-grained, unlike a group
// lock).
func TestDisjointConcurrency(t *testing.T) {
	l := New(2)
	t1, _ := l.Acquire(0)
	done := make(chan struct{})
	go func() {
		t2, err := l.Acquire(1)
		if err != nil {
			t.Error(err)
		}
		l.Release(t2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("disjoint request blocked")
	}
	l.Release(t1)
}
