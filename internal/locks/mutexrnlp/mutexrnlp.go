// Package mutexrnlp implements the original mutex-only RNLP of Ward and
// Anderson (ECRTS 2012, reference [19] of the paper) as a runtime lock: a
// fine-grained nested locking protocol in which EVERY request — including
// read-only ones — is an exclusive request. It is realized on the same
// request-satisfaction engine as the R/W RNLP with all requests issued as
// writes, which degenerates the phase-fair machinery to per-resource
// timestamp-ordered FIFO queues: exactly the mutex RNLP's satisfaction
// order.
//
// This is the prior-art baseline whose O(m) reader blocking motivates the
// paper: compare a read-mostly workload here against package rwrnlp.
package mutexrnlp

import (
	"context"

	"github.com/rtsync/rwrnlp"
	"github.com/rtsync/rwrnlp/internal/core"
)

// Lock is a mutex RNLP instance over q resources.
type Lock struct {
	p *rwrnlp.Protocol
}

// New creates a mutex RNLP for q resources.
func New(q int) *Lock {
	// No read sharing exists when every request is exclusive, so the spec
	// needs no declarations. Sharding is disabled: with nothing declared
	// every resource is its own component, and the engine's multi-component
	// slow path (per-component sequential locking) is NOT the mutex RNLP's
	// single-timestamp atomic acquisition. Both fast-path planes are off:
	// this package exists to exhibit the RSM's timestamp-FIFO satisfaction
	// order, and the writer fast path would serve uncontended requests
	// outside the RSM entirely.
	return &Lock{p: rwrnlp.New(core.NewSpecBuilder(q).Build(),
		rwrnlp.WithoutSharding(), rwrnlp.WithFastPath(rwrnlp.FastPathConfig{}))}
}

// Token identifies a held acquisition.
type Token = rwrnlp.Token

// Acquire blocks until exclusive access to all resources is held. Reads and
// writes are not distinguished — that is the protocol's limitation.
func (l *Lock) Acquire(resources ...core.ResourceID) (Token, error) {
	return l.p.Write(context.Background(), resources...)
}

// Release ends the critical section.
func (l *Lock) Release(t Token) error { return l.p.Release(t) }

// Stats exposes the underlying engine's counters.
func (l *Lock) Stats() core.Stats { return l.p.Stats() }
