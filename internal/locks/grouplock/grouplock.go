// Package grouplock implements coarse-grained group locking (Sec. 1 of the
// paper): resources that may be accessed together are folded into a single
// lockable group protected by one phase-fair reader/writer lock (or a mutex
// in mutex mode). It is the classical baseline the R/W RNLP is measured
// against — simple, deadlock-free, and destructive to concurrency: requests
// for unrelated resources in the same group serialize.
//
// Requests spanning several groups acquire the group locks in ascending
// group order, the standard total-order discipline that keeps multi-group
// acquisition deadlock-free.
package grouplock

import (
	"fmt"
	"sort"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/locks/phasefair"
)

// Lock is a group-locking protocol instance.
type Lock struct {
	group   []int // resource -> group
	locks   []*phasefair.Lock
	mutexed bool // mutex mode: every acquisition is exclusive
}

// New creates a group lock. group maps each resource ID to its group index
// in [0, ngroups). If mutexOnly is true, read requests are acquired
// exclusively (the group-mutex baseline); otherwise readers share
// (phase-fair group R/W locking).
func New(group []int, ngroups int, mutexOnly bool) (*Lock, error) {
	for r, g := range group {
		if g < 0 || g >= ngroups {
			return nil, fmt.Errorf("grouplock: resource %d mapped to group %d out of [0,%d)", r, g, ngroups)
		}
	}
	l := &Lock{group: group, mutexed: mutexOnly}
	l.locks = make([]*phasefair.Lock, ngroups)
	for i := range l.locks {
		l.locks[i] = new(phasefair.Lock)
	}
	return l, nil
}

// NewSingle creates the fully coarse variant: one group covering all q
// resources.
func NewSingle(q int, mutexOnly bool) *Lock {
	group := make([]int, q)
	l, err := New(group, 1, mutexOnly)
	if err != nil {
		panic(err)
	}
	return l
}

// Token records the groups held and their modes, for Release.
type Token struct {
	groups []int
	write  []bool
}

// Acquire locks the groups covering the requested resources: in write mode
// for groups containing a written resource (or all groups in mutex mode),
// in read mode otherwise. Groups are locked in ascending order.
func (l *Lock) Acquire(read, write []core.ResourceID) (Token, error) {
	type mode struct{ write bool }
	gm := map[int]*mode{}
	for _, r := range read {
		if int(r) >= len(l.group) {
			return Token{}, fmt.Errorf("grouplock: resource %d out of range", r)
		}
		g := l.group[r]
		if gm[g] == nil {
			gm[g] = &mode{}
		}
	}
	for _, r := range write {
		if int(r) >= len(l.group) {
			return Token{}, fmt.Errorf("grouplock: resource %d out of range", r)
		}
		g := l.group[r]
		if gm[g] == nil {
			gm[g] = &mode{}
		}
		gm[g].write = true
	}
	if len(gm) == 0 {
		return Token{}, fmt.Errorf("grouplock: empty request")
	}
	var gs []int
	for g := range gm {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	tok := Token{}
	for _, g := range gs {
		w := gm[g].write || l.mutexed
		if w {
			l.locks[g].Lock()
		} else {
			l.locks[g].RLock()
		}
		tok.groups = append(tok.groups, g)
		tok.write = append(tok.write, w)
	}
	return tok, nil
}

// Release unlocks the token's groups in reverse acquisition order.
func (l *Lock) Release(t Token) {
	for i := len(t.groups) - 1; i >= 0; i-- {
		if t.write[i] {
			l.locks[t.groups[i]].Unlock()
		} else {
			l.locks[t.groups[i]].RUnlock()
		}
	}
}
