package grouplock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rtsync/rwrnlp/internal/core"
)

func TestValidation(t *testing.T) {
	if _, err := New([]int{0, 2}, 2, false); err == nil {
		t.Error("out-of-range group accepted")
	}
	l := NewSingle(4, false)
	if _, err := l.Acquire(nil, nil); err == nil {
		t.Error("empty request accepted")
	}
	if _, err := l.Acquire([]core.ResourceID{9}, nil); err == nil {
		t.Error("out-of-range resource accepted")
	}
}

// Readers of the same group share; writers exclude.
func TestGroupSharing(t *testing.T) {
	l := NewSingle(2, false)
	t1, err := l.Acquire([]core.ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		t2, err := l.Acquire([]core.ResourceID{1}, nil) // same group, read
		if err != nil {
			t.Error(err)
		}
		l.Release(t2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("reader blocked by reader within one group")
	}
	l.Release(t1)
}

// Mutex mode serializes even read-read.
func TestMutexModeSerializes(t *testing.T) {
	l := NewSingle(2, true)
	t1, _ := l.Acquire([]core.ResourceID{0}, nil)
	entered := make(chan struct{})
	go func() {
		t2, _ := l.Acquire([]core.ResourceID{1}, nil)
		close(entered)
		l.Release(t2)
	}()
	select {
	case <-entered:
		t.Fatal("mutex-mode group lock allowed read sharing")
	case <-time.After(100 * time.Millisecond):
	}
	l.Release(t1)
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("second acquisition never proceeded")
	}
}

// Coarseness: a write to resource 0 blocks a reader of the UNRELATED
// resource 1 in the same group — the concurrency loss the R/W RNLP removes.
func TestGroupCoarseness(t *testing.T) {
	l := NewSingle(2, false)
	w, _ := l.Acquire(nil, []core.ResourceID{0})
	rDone := make(chan struct{})
	go func() {
		r, _ := l.Acquire([]core.ResourceID{1}, nil)
		close(rDone)
		l.Release(r)
	}()
	select {
	case <-rDone:
		t.Fatal("reader of unrelated resource not blocked by group write lock")
	case <-time.After(100 * time.Millisecond):
	}
	l.Release(w)
	<-rDone
}

// Multi-group requests under concurrency: ascending-order acquisition stays
// deadlock-free and mutually exclusive.
func TestMultiGroupConcurrent(t *testing.T) {
	l, err := New([]int{0, 0, 1, 1}, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	var data [4]int64
	var inWrite [4]atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res := []core.ResourceID{core.ResourceID(g % 4), core.ResourceID((g + 2) % 4)}
			for i := 0; i < 500; i++ {
				if i%3 == 0 {
					tok, err := l.Acquire(nil, res)
					if err != nil {
						t.Error(err)
						return
					}
					for _, r := range res {
						if inWrite[r].Add(1) != 1 {
							t.Errorf("write overlap on %d", r)
						}
						data[r]++
					}
					for _, r := range res {
						inWrite[r].Add(-1)
					}
					l.Release(tok)
				} else {
					tok, err := l.Acquire(res, nil)
					if err != nil {
						t.Error(err)
						return
					}
					for _, r := range res {
						if inWrite[r].Load() != 0 {
							t.Errorf("reader overlapped writer on %d", r)
						}
					}
					l.Release(tok)
				}
			}
		}(g)
	}
	wg.Wait()
}
