// Package phasefair implements a ticket-based phase-fair reader/writer spin
// lock (the PF-T lock of Brandenburg and Anderson, "Spin-based reader-writer
// synchronization for multiprocessor real-time systems", Real-Time Systems
// 46, 2010 — reference [7] of the paper).
//
// Phase-fairness is the single-resource property the R/W RNLP generalizes to
// fine-grained nested locking: read phases and write phases alternate, reads
// concede to writes and writes concede to reads, giving O(1) worst-case
// reader blocking (at most one write phase plus one read phase) and O(m)
// writer blocking. This implementation is the runtime-plane baseline for the
// throughput benchmarks (E15) and the building block of the group-lock
// baseline.
//
// Caveat (repro note): the Go runtime does not honor real-time priorities,
// so this lock preserves phase-fair *ordering*, not the paper's timing
// bounds; those are validated on the simulator plane.
package phasefair

import (
	"runtime"
	"sync/atomic"
)

// Layout of the rin/rout words: the low byte holds the writer-presence and
// phase-ID bits; reader arrivals increment in units of readerInc above them.
const (
	wPresent  = 0x1 // a writer holds or is entitled to the lock
	wPhase    = 0x2 // phase ID bit, toggles per writer
	wMask     = wPresent | wPhase
	readerInc = 0x100
)

// Lock is a phase-fair reader/writer spin lock. The zero value is unlocked.
// It must not be copied after first use.
type Lock struct {
	rin  atomic.Uint32 // reader arrivals + writer presence/phase bits
	rout atomic.Uint32 // reader departures
	win  atomic.Uint32 // writer ticket dispenser
	wout atomic.Uint32 // writer tickets served
}

// RLock acquires the lock for reading. Readers block only while a writer is
// present, and only until that writer's phase completes — at most one write
// phase, regardless of how many writers are queued (phase-fairness).
func (l *Lock) RLock() {
	w := l.rin.Add(readerInc) & wMask
	if w == 0 {
		return // no writer present: read phase in progress
	}
	// Spin until the writer phase changes: either the presence bit clears
	// or the phase ID flips (a different writer: our blocker finished).
	for spins := 0; l.rin.Load()&wMask == w; spins++ {
		backoff(spins)
	}
}

// RUnlock releases a read acquisition.
func (l *Lock) RUnlock() {
	l.rout.Add(readerInc)
}

// Lock acquires the lock for writing. Writers queue FIFO by ticket; the
// head writer publishes its presence (blocking later readers) and waits for
// in-flight readers to drain.
func (l *Lock) Lock() {
	ticket := l.win.Add(1) - 1
	for spins := 0; l.wout.Load() != ticket; spins++ {
		backoff(spins) // wait for predecessor writers
	}
	// Presence bit plus an alternating phase ID so consecutive writers are
	// distinguishable to spinning readers.
	w := uint32(wPresent) | uint32(ticket&1)<<1
	// Publish presence and snapshot the reader arrival count (the low bits
	// are clear here: our predecessor removed its presence bits before
	// passing the ticket, and readers only touch the high bits).
	r := l.rin.Add(w) - w
	// Wait until every reader that arrived before us has departed.
	for spins := 0; l.rout.Load() != r; spins++ {
		backoff(spins)
	}
}

// Unlock releases a write acquisition: clears the presence bits (releasing
// the blocked read phase) and passes the ticket to the next writer.
func (l *Lock) Unlock() {
	// Clear the writer bits in rin (CAS loop: portable atomic AND).
	for {
		old := l.rin.Load()
		if l.rin.CompareAndSwap(old, old&^uint32(wMask)) {
			break
		}
	}
	l.wout.Add(1)
}

// backoff yields the processor progressively: pure spinning for a short
// burst, then cooperative yields so the Go scheduler can run the lock
// holder. (On an RTOS, Rule S1's non-preemptive spinning makes this
// unnecessary; under the Go runtime it is required for liveness when
// goroutines outnumber Ps.)
func backoff(spins int) {
	if spins > 64 {
		runtime.Gosched()
	}
}
