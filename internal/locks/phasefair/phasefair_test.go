package phasefair

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Mutual exclusion: writers never overlap each other or readers. Run with
// -race for full effect.
func TestMutualExclusion(t *testing.T) {
	var l Lock
	var shared int64
	var inWrite atomic.Int32
	var readersSeen atomic.Int32
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				if inWrite.Add(1) != 1 {
					t.Error("two writers inside")
				}
				shared++
				inWrite.Add(-1)
				l.Unlock()
			}
		}()
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.RLock()
				if inWrite.Load() != 0 {
					t.Error("reader overlapped a writer")
				}
				readersSeen.Add(1)
				_ = shared
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if shared != 4*2000 {
		t.Errorf("shared = %d, want %d (lost writer updates)", shared, 4*2000)
	}
	if readersSeen.Load() != 8*2000 {
		t.Errorf("readersSeen = %d", readersSeen.Load())
	}
}

// Readers are concurrent: two readers can be inside simultaneously.
func TestReaderConcurrency(t *testing.T) {
	var l Lock
	l.RLock()
	done := make(chan struct{})
	go func() {
		l.RLock() // must not block
		l.RUnlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second reader blocked by first")
	}
	l.RUnlock()
}

// Phase-fairness: a reader arriving while a writer waits behind the current
// read phase must wait for that writer (reads concede to writes), and is
// admitted as soon as the writer's single phase ends (writes concede to
// reads) — it does NOT wait for later queued writers.
func TestPhaseFairOrdering(t *testing.T) {
	var l Lock
	l.RLock() // read phase in progress

	writerIn := make(chan struct{})
	writerGo := make(chan struct{})
	go func() {
		l.Lock() // queues behind the read phase, publishes presence
		close(writerIn)
		<-writerGo
		l.Unlock()
	}()

	// Give the writer time to publish presence.
	time.Sleep(50 * time.Millisecond)

	lateReader := make(chan struct{})
	go func() {
		l.RLock() // must wait: writer present
		close(lateReader)
		l.RUnlock()
	}()

	select {
	case <-lateReader:
		t.Fatal("late reader entered during a pending write phase")
	case <-time.After(100 * time.Millisecond):
	}

	l.RUnlock() // end read phase: writer enters
	select {
	case <-writerIn:
	case <-time.After(2 * time.Second):
		t.Fatal("writer never entered after readers drained")
	}
	close(writerGo) // writer exits: the blocked reader's phase begins
	select {
	case <-lateReader:
	case <-time.After(2 * time.Second):
		t.Fatal("reader not admitted after one write phase")
	}
}

// A reader waits at most ONE write phase even with multiple queued writers.
func TestReaderWaitsOneWritePhase(t *testing.T) {
	var l Lock
	l.RLock()

	var order []string
	var mu sync.Mutex
	log := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }

	w1in := make(chan struct{})
	w1go := make(chan struct{})
	go func() {
		l.Lock()
		close(w1in)
		<-w1go
		log("w1")
		l.Unlock()
	}()
	time.Sleep(50 * time.Millisecond)
	go func() {
		l.Lock() // second writer queues behind the first
		log("w2")
		l.Unlock()
	}()
	time.Sleep(50 * time.Millisecond)

	readerDone := make(chan struct{})
	go func() {
		l.RLock()
		log("r")
		l.RUnlock()
		close(readerDone)
	}()
	time.Sleep(50 * time.Millisecond)

	l.RUnlock() // w1 enters
	<-w1in
	close(w1go) // w1 exits; phase-fair: the reader goes before w2
	select {
	case <-readerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("reader starved behind second writer (not phase-fair)")
	}
	mu.Lock()
	defer mu.Unlock()
	for i, s := range order {
		if s == "r" {
			for _, later := range order[i+1:] {
				if later == "w1" {
					t.Errorf("order %v: reader preceded its blocking writer", order)
				}
			}
		}
	}
}

// Writers are FIFO by ticket.
func TestWriterFIFO(t *testing.T) {
	var l Lock
	l.Lock()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock()
		}()
		time.Sleep(50 * time.Millisecond) // serialize ticket draws
	}
	l.Unlock()
	wg.Wait()
	for i := 1; i <= 3; i++ {
		if order[i-1] != i {
			t.Fatalf("writer order %v, want [1 2 3]", order)
		}
	}
}

func BenchmarkReadHeavy(b *testing.B) {
	var l Lock
	var x int64
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%16 == 0 {
				l.Lock()
				x++
				l.Unlock()
			} else {
				l.RLock()
				_ = x
				l.RUnlock()
			}
			i++
		}
	})
}

func BenchmarkRWMutexReadHeavy(b *testing.B) {
	var l sync.RWMutex
	var x int64
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%16 == 0 {
				l.Lock()
				x++
				l.Unlock()
			} else {
				l.RLock()
				_ = x
				l.RUnlock()
			}
			i++
		}
	})
}
