// Package taskfair implements a task-fair (FIFO) ticket-based reader/writer
// spin lock — the TF-T lock of Brandenburg and Anderson's reader/writer
// study (reference [7] of the paper), and the foil against which
// phase-fairness is defined: under task-fairness readers and writers are
// served strictly in arrival order, so a reader that arrives behind k queued
// writers waits for ALL k of them (O(m) reader blocking), whereas a
// phase-fair reader waits for at most one write phase (O(1)).
//
// The algorithm is the classic "rwticket" lock: three packed counters —
// ticket dispenser (users), next-writer ticket (write), and next-reader
// ticket (read). A writer enters when write reaches its ticket and leaves by
// advancing both write and read; a reader enters when read reaches its
// ticket, immediately advances read (admitting a consecutive reader), and
// leaves by advancing write. Consecutive readers therefore overlap, but any
// intervening writer ticket fences them — strict FIFO.
//
// The counters are 16-bit tickets packed in one 64-bit word; updates use a
// CAS loop with field-wise wrap-around (a plain fetch-and-add would carry
// into the neighboring field when a ticket wraps past 65535).
package taskfair

import (
	"runtime"
	"sync/atomic"
)

const (
	writeShift = 0
	readShift  = 16
	usersShift = 32
	mask       = 0xffff
)

// Lock is a task-fair reader/writer spin lock. The zero value is unlocked.
// It must not be copied after first use. Up to 65535 simultaneous waiters
// are supported (the counters are 16-bit tickets that wrap).
type Lock struct {
	state atomic.Uint64
}

func unpack(v uint64) (w, r, u uint64) {
	return (v >> writeShift) & mask, (v >> readShift) & mask, (v >> usersShift) & mask
}

func pack(w, r, u uint64) uint64 {
	return (w&mask)<<writeShift | (r&mask)<<readShift | (u&mask)<<usersShift
}

// bump applies the field deltas with per-field wrap-around and returns the
// PREVIOUS field values.
func (l *Lock) bump(dw, dr, du uint64) (w, r, u uint64) {
	for {
		old := l.state.Load()
		w, r, u = unpack(old)
		if l.state.CompareAndSwap(old, pack(w+dw, r+dr, u+du)) {
			return w, r, u
		}
	}
}

// Lock acquires write access: strict FIFO behind every earlier reader and
// writer.
func (l *Lock) Lock() {
	_, _, me := l.bump(0, 0, 1) // draw a ticket
	for spins := 0; ; spins++ {
		w, _, _ := unpack(l.state.Load())
		if w == me {
			return
		}
		backoff(spins)
	}
}

// Unlock releases write access, admitting the next ticket holder (reader or
// writer alike: both write and read advance).
func (l *Lock) Unlock() {
	l.bump(1, 1, 0)
}

// RLock acquires read access: FIFO behind earlier writers, concurrent with
// adjacent readers.
func (l *Lock) RLock() {
	_, _, me := l.bump(0, 0, 1) // draw a ticket
	for spins := 0; ; spins++ {
		_, r, _ := unpack(l.state.Load())
		if r == me {
			break
		}
		backoff(spins)
	}
	// Admit the next ticket holder if it is a reader; a writer still waits
	// for the write counter, which only departing holders advance.
	l.bump(0, 1, 0)
}

// RUnlock releases read access: each departing reader advances the write
// ticket, so a writer queued behind a batch of k readers enters once all k
// have departed.
func (l *Lock) RUnlock() {
	l.bump(1, 0, 0)
}

func backoff(spins int) {
	if spins > 64 {
		runtime.Gosched()
	}
}
