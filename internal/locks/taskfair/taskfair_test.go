package taskfair

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMutualExclusion(t *testing.T) {
	var l Lock
	var shared int64
	var inWrite atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.Lock()
				if inWrite.Add(1) != 1 {
					t.Error("two writers inside")
				}
				shared++
				inWrite.Add(-1)
				l.Unlock()
			}
		}()
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l.RLock()
				if inWrite.Load() != 0 {
					t.Error("reader overlapped a writer")
				}
				_ = shared
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if shared != 4*2000 {
		t.Errorf("shared = %d, want %d", shared, 4*2000)
	}
}

func TestAdjacentReadersShare(t *testing.T) {
	var l Lock
	l.RLock()
	done := make(chan struct{})
	go func() {
		l.RLock()
		l.RUnlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("adjacent reader blocked")
	}
	l.RUnlock()
}

// Task-fairness vs phase-fairness: a reader arriving behind TWO queued
// writers waits for BOTH write phases — the O(m) reader blocking the
// R/W RNLP's phase-fair design eliminates.
func TestReaderWaitsAllQueuedWriters(t *testing.T) {
	var l Lock
	l.RLock() // read phase in progress

	w1go := make(chan struct{})
	w1in := make(chan struct{})
	go func() {
		l.Lock()
		close(w1in)
		<-w1go
		l.Unlock()
	}()
	time.Sleep(50 * time.Millisecond)
	w2go := make(chan struct{})
	w2in := make(chan struct{})
	go func() {
		l.Lock()
		close(w2in)
		<-w2go
		l.Unlock()
	}()
	time.Sleep(50 * time.Millisecond)

	readerDone := make(chan struct{})
	go func() {
		l.RLock() // queued behind BOTH writers
		close(readerDone)
		l.RUnlock()
	}()
	time.Sleep(50 * time.Millisecond)

	l.RUnlock() // w1 enters
	<-w1in
	close(w1go) // w1 exits; task-fair: w2 goes BEFORE the reader
	select {
	case <-readerDone:
		t.Fatal("reader entered before the second queued writer (not task-fair)")
	case <-time.After(100 * time.Millisecond):
	}
	<-w2in
	close(w2go)
	select {
	case <-readerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("reader never entered")
	}
}

// Strict FIFO among writers.
func TestWriterFIFO(t *testing.T) {
	var l Lock
	l.Lock()
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Lock()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Unlock()
		}()
		time.Sleep(50 * time.Millisecond)
	}
	l.Unlock()
	wg.Wait()
	for i := 1; i <= 3; i++ {
		if order[i-1] != i {
			t.Fatalf("writer order %v", order)
		}
	}
}

func BenchmarkTaskFairReadHeavy(b *testing.B) {
	var l Lock
	var x int64
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%16 == 0 {
				l.Lock()
				x++
				l.Unlock()
			} else {
				l.RLock()
				_ = x
				l.RUnlock()
			}
			i++
		}
	})
}

// Ticket wrap-around: more than 65536 acquisitions must not corrupt the
// packed counters (a plain fetch-and-add would carry across fields).
func TestTicketWrapAround(t *testing.T) {
	var l Lock
	var wg sync.WaitGroup
	var shared int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25_000; i++ { // 4×25k readers+writers ≫ 65536
				if i%4 == 0 {
					l.Lock()
					shared++
					l.Unlock()
				} else {
					l.RLock()
					_ = shared
					l.RUnlock()
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("wrap-around deadlock")
	}
	if shared != 4*25_000/4 {
		t.Errorf("shared = %d", shared)
	}
}
