package rnlp

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBasicNesting(t *testing.T) {
	l := New(3)
	rq, err := l.Open(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rq.Acquire(0); err != nil {
		t.Fatal(err)
	}
	// Nested: take ℓ2 while holding ℓ0 — any order is safe.
	if err := rq.Acquire(2); err != nil {
		t.Fatal(err)
	}
	if !rq.Holds(0) || !rq.Holds(2) || rq.Holds(1) {
		t.Fatal("holdings wrong")
	}
	if err := rq.Acquire(0); !errors.Is(err, ErrHeld) {
		t.Errorf("re-acquire: %v", err)
	}
	if err := rq.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rq.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
}

func TestValidation(t *testing.T) {
	l := New(2)
	if _, err := l.Open(5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range: %v", err)
	}
	rq, _ := l.Open(0)
	if err := rq.Acquire(1); !errors.Is(err, ErrNotDeclared) {
		t.Errorf("undeclared: %v", err)
	}
	if _, err := rq.TryAcquire(1); !errors.Is(err, ErrNotDeclared) {
		t.Errorf("undeclared try: %v", err)
	}
	rq.Close()
	if err := rq.Acquire(0); !errors.Is(err, ErrClosed) {
		t.Errorf("acquire after close: %v", err)
	}
	if _, err := rq.TryAcquire(0); !errors.Is(err, ErrClosed) {
		t.Errorf("try after close: %v", err)
	}
}

// Grants follow timestamp order per resource: a later request cannot take a
// resource an earlier request may still acquire — even before the earlier
// one asks for it. (This conservatism is the price of deadlock freedom; the
// R/W RNLP's entitlement machinery keeps it while adding read sharing.)
func TestTimestampOrderBlocksLaterRequest(t *testing.T) {
	l := New(2)
	early, _ := l.Open(0, 1) // earlier timestamp; has not acquired anything
	late, _ := l.Open(1)

	if ok, _ := late.TryAcquire(1); ok {
		t.Fatal("later request granted a resource an earlier request may still take")
	}
	// The earlier request never takes ℓ1 and closes: now the later one goes.
	if err := early.Acquire(0); err != nil {
		t.Fatal(err)
	}
	early.Close()
	if ok, _ := late.TryAcquire(1); !ok {
		t.Fatal("later request still blocked after the earlier one closed")
	}
	late.Close()
}

// The classic deadlock scenario — two requests taking two resources in
// opposite orders — cannot deadlock: timestamp order serializes them.
func TestNoDeadlockOppositeOrders(t *testing.T) {
	l := New(2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				rq, err := l.Open(0, 1)
				if err != nil {
					t.Error(err)
					return
				}
				first, second := ResourceID(0), ResourceID(1)
				if g%2 == 1 {
					first, second = second, first
				}
				if err := rq.Acquire(first); err != nil {
					t.Error(err)
					return
				}
				if err := rq.Acquire(second); err != nil {
					t.Error(err)
					return
				}
				if err := rq.Close(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock")
	}
}

// Mutual exclusion under concurrent nested use.
func TestMutualExclusion(t *testing.T) {
	l := New(4)
	var inside [4]atomic.Int32
	var data [4]int64
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			r0 := ResourceID(g % 4)
			r1 := ResourceID((g + 1) % 4)
			for i := 0; i < 400; i++ {
				rq, err := l.Open(r0, r1)
				if err != nil {
					t.Error(err)
					return
				}
				if err := rq.Acquire(r0); err != nil {
					t.Error(err)
					return
				}
				if inside[r0].Add(1) != 1 {
					t.Errorf("overlap on %d", r0)
				}
				data[r0]++
				// Nested acquisition mid-CS.
				if err := rq.Acquire(r1); err != nil {
					t.Error(err)
					return
				}
				if inside[r1].Add(1) != 1 {
					t.Errorf("overlap on %d", r1)
				}
				data[r1]++
				inside[r1].Add(-1)
				inside[r0].Add(-1)
				if err := rq.Close(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Disjoint declared sets proceed fully concurrently (fine-grained).
func TestDisjointConcurrency(t *testing.T) {
	l := New(2)
	a, _ := l.Open(0)
	if err := a.Acquire(0); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		b, _ := l.Open(1)
		if err := b.Acquire(1); err != nil {
			t.Error(err)
		}
		b.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("disjoint request blocked")
	}
	a.Close()
}

// Everything is exclusive — even "read-only" use: the motivating limitation.
func TestNoReadSharing(t *testing.T) {
	l := New(1)
	a, _ := l.Open(0)
	a.Acquire(0)
	b, _ := l.Open(0)
	got := make(chan struct{})
	go func() {
		b.Acquire(0)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("two requests held the same resource")
	case <-time.After(100 * time.Millisecond):
	}
	a.Close()
	<-got
	b.Close()
}

func BenchmarkNestedPair(b *testing.B) {
	l := New(8)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			r0 := ResourceID(i % 8)
			r1 := ResourceID((i + 1) % 8)
			rq, _ := l.Open(r0, r1)
			rq.Acquire(r0)
			rq.Acquire(r1)
			rq.Close()
			i++
		}
	})
}
