// Package rnlp implements the original mutex RNLP of Ward and Anderson
// ("Supporting Nested Locking in Multiprocessor Real-Time Systems",
// ECRTS 2012 — reference [19] of the R/W paper) as a runtime lock with TRUE
// nested (incremental) acquisition, the protocol the R/W RNLP extends.
//
// Mechanics (the paper's token lock + RSM, collapsed for a runtime setting):
//
//   - A job opens a request by declaring the full set of resources it may
//     acquire (the a-priori knowledge assumption shared by the whole RNLP
//     family). The open assigns a timestamp and enqueues the request in the
//     queue of EVERY potential resource, in timestamp order.
//   - Acquire(ℓ) blocks until the request is at the head of Q(ℓ). Because
//     every earlier-timestamped request that may still acquire ℓ sits ahead
//     in Q(ℓ), grants follow timestamp order and deadlock is impossible —
//     no matter in which order nested resources are taken.
//   - Close releases everything and dequeues the request everywhere.
//
// The token lock of the original paper (limiting concurrent requests to m
// and supplying timestamps) corresponds here to the open operation: in a
// runtime setting the progress mechanism's P2 role is played by the caller
// limiting its own concurrency, exactly as with the R/W RNLP runtime plane.
//
// Everything — including read-only accesses — is exclusive: that is the
// limitation motivating the R/W RNLP (compare package rwrnlp).
package rnlp

import (
	"errors"
	"fmt"
	"sync"
)

// ResourceID identifies a resource (dense, zero-based).
type ResourceID int

// Exported errors.
var (
	ErrOutOfRange  = errors.New("rnlp: resource out of range")
	ErrNotDeclared = errors.New("rnlp: resource not in the request's declared set")
	ErrClosed      = errors.New("rnlp: request already closed")
	ErrHeld        = errors.New("rnlp: resource already held by this request")
)

// Lock is an RNLP instance over q resources.
type Lock struct {
	mu     sync.Mutex
	q      int
	nextTS uint64
	queues [][]*request // per resource, timestamp order
}

// New creates an RNLP for q resources.
func New(q int) *Lock {
	return &Lock{q: q, queues: make([][]*request, q)}
}

type request struct {
	ts       uint64
	declared map[ResourceID]bool
	held     map[ResourceID]bool
	closed   bool
	waiters  map[ResourceID]chan struct{} // parked Acquire calls
}

// Request is an open nested acquisition.
type Request struct {
	l *Lock
	r *request
}

// Open starts a request that may acquire any of the declared resources,
// in any order, without deadlock. Nothing is held yet.
func (l *Lock) Open(declared ...ResourceID) (*Request, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := &request{
		declared: make(map[ResourceID]bool, len(declared)),
		held:     map[ResourceID]bool{},
		waiters:  map[ResourceID]chan struct{}{},
	}
	for _, id := range declared {
		if id < 0 || int(id) >= l.q {
			return nil, fmt.Errorf("%w: %d", ErrOutOfRange, id)
		}
		r.declared[id] = true
	}
	l.nextTS++
	r.ts = l.nextTS
	// Enqueue in every potential resource's queue (timestamp order =
	// append order, since timestamps are drawn under the lock).
	for id := range r.declared {
		l.queues[id] = append(l.queues[id], r)
	}
	return &Request{l: l, r: r}, nil
}

// head reports whether r heads Q(id). Caller holds l.mu.
func (l *Lock) head(r *request, id ResourceID) bool {
	q := l.queues[id]
	return len(q) > 0 && q[0] == r
}

// Acquire blocks until the resource — which must be in the declared set —
// is granted. Grants follow timestamp order per resource; a request may
// interleave Acquire calls with its own computation (true nested locking).
func (rq *Request) Acquire(id ResourceID) error {
	l := rq.l
	l.mu.Lock()
	r := rq.r
	if r.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if !r.declared[id] {
		l.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNotDeclared, id)
	}
	if r.held[id] {
		l.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrHeld, id)
	}
	if l.head(r, id) {
		r.held[id] = true
		l.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	r.waiters[id] = ch
	l.mu.Unlock()
	<-ch
	return nil
}

// TryAcquire acquires the resource only if it is immediately grantable.
func (rq *Request) TryAcquire(id ResourceID) (bool, error) {
	l := rq.l
	l.mu.Lock()
	defer l.mu.Unlock()
	r := rq.r
	if r.closed {
		return false, ErrClosed
	}
	if !r.declared[id] {
		return false, fmt.Errorf("%w: %d", ErrNotDeclared, id)
	}
	if r.held[id] {
		return true, nil
	}
	if l.head(r, id) {
		r.held[id] = true
		return true, nil
	}
	return false, nil
}

// Holds reports whether the resource is currently held by this request.
func (rq *Request) Holds(id ResourceID) bool {
	rq.l.mu.Lock()
	defer rq.l.mu.Unlock()
	return rq.r.held[id]
}

// Close releases every held resource and withdraws the request from all
// queues, granting successors as they reach the heads.
func (rq *Request) Close() error {
	l := rq.l
	l.mu.Lock()
	defer l.mu.Unlock()
	r := rq.r
	if r.closed {
		return ErrClosed
	}
	r.closed = true
	for id := range r.declared {
		q := l.queues[id]
		for i, x := range q {
			if x == r {
				l.queues[id] = append(q[:i], q[i+1:]...)
				break
			}
		}
		// The new head, if parked on this resource, is granted now.
		l.grantHead(id)
	}
	return nil
}

// grantHead wakes the head of Q(id) if it is parked waiting for id.
// Caller holds l.mu.
func (l *Lock) grantHead(id ResourceID) {
	q := l.queues[id]
	if len(q) == 0 {
		return
	}
	h := q[0]
	if ch, ok := h.waiters[id]; ok && !h.held[id] {
		h.held[id] = true
		delete(h.waiters, id)
		close(ch)
	}
}
