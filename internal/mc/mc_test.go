package mc

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseTemplatesRoundTrip(t *testing.T) {
	dsl := "r:0+1 w:1+2 m:0|1+2 u:0+2 i:0|2/2/0"
	tpl, err := ParseTemplates(dsl)
	if err != nil {
		t.Fatal(err)
	}
	if len(tpl) != 5 {
		t.Fatalf("got %d templates, want 5", len(tpl))
	}
	sigs := make([]string, len(tpl))
	for i, tp := range tpl {
		sigs[i] = tp.Signature()
	}
	if got := strings.Join(sigs, " "); got != dsl {
		t.Fatalf("round trip:\n got %s\nwant %s", got, dsl)
	}
	if _, err := ParseTemplates("x:0"); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ParseTemplates("i:0|1"); err == nil {
		t.Error("incremental without asks accepted")
	}
}

func TestOracleSelection(t *testing.T) {
	cases := []struct {
		preset string
		want   []string
	}{
		{"writeonly3", []string{"mutex-rnlp"}},
		{"single4", []string{"phase-fair"}},
		{"mixed4x3", nil},
		{"cancel3", nil},
		{"shards4x2", []string{"sharded-rsm"}},
	}
	for _, c := range cases {
		var names []string
		for _, o := range activeOracles(Preset(c.preset)) {
			names = append(names, o.name())
		}
		if strings.Join(names, ",") != strings.Join(c.want, ",") {
			t.Errorf("%s: oracles %v, want %v", c.preset, names, c.want)
		}
	}
}

// Every preset scope must be clean — invariants, oracles, deadlock freedom,
// and terminal bounds — in both placeholder modes. This is the checker's
// core claim: "no violation for ANY interleaving of these scopes".
func TestExplorePresetsClean(t *testing.T) {
	for _, base := range Presets() {
		if base.Name == "nested5x4" && testing.Short() {
			continue // the largest scope; exercised by make ci
		}
		for _, ph := range []bool{false, true} {
			sc := *base
			sc.Placeholders = ph
			name := sc.Name
			if ph {
				name += "+placeholders"
			}
			t.Run(name, func(t *testing.T) {
				res, err := Explore(&sc, DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				if res.Violation != nil {
					t.Fatalf("violation:\n%s", res.Violation)
				}
				if res.Stats.Terminals == 0 || res.Stats.States == 0 {
					t.Fatalf("implausible stats: %s", res.Stats)
				}
				t.Logf("%s: %s", name, res.Stats)
			})
		}
	}
}

// The flagship documented scope (ISSUE acceptance criterion): 4 requests —
// reader, writer, upgradeable pair, incremental — over 3 resources,
// exhaustively.
func TestExploreMixed4x3Exhaustive(t *testing.T) {
	res, err := Explore(Preset("mixed4x3"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	t.Logf("mixed4x3 exhausted: %s", res.Stats)
}

// Memoization and sleep sets must not change the verdict, only the effort.
func TestPruningPreservesVerdict(t *testing.T) {
	sc := Preset("writeonly3")
	full, err := Explore(sc, Options{CheckBounds: true}) // no pruning at all
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Explore(sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if (full.Violation == nil) != (pruned.Violation == nil) {
		t.Fatalf("verdicts differ: full=%v pruned=%v", full.Violation, pruned.Violation)
	}
	if pruned.Stats.States >= full.Stats.States {
		t.Errorf("pruning did not reduce states: full=%d pruned=%d",
			full.Stats.States, pruned.Stats.States)
	}
	t.Logf("full: %s", full.Stats)
	t.Logf("pruned: %s", pruned.Stats)
}

// Statically independent templates (disjoint footprints) must trigger
// sleep-set pruning.
func TestSleepSetPruning(t *testing.T) {
	sc := &Scenario{Name: "disjoint2", Q: 2, Templates: mustTemplates("w:0 w:1")}
	res, err := Explore(sc, Options{SleepSets: true, CheckBounds: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	if res.Stats.SleepPruned == 0 {
		t.Errorf("no sleep-set pruning on disjoint templates: %s", res.Stats)
	}
}

// Identical templates must trigger the symmetry reduction.
func TestSymmetryPruning(t *testing.T) {
	sc := &Scenario{Name: "twins", Q: 1, Templates: mustTemplates("w:0 w:0")}
	res, err := Explore(sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	if res.Stats.SymmetryPruned == 0 {
		t.Errorf("no symmetry pruning on identical templates: %s", res.Stats)
	}
}

// The acceptance-criterion injection: ChaosSkipWQHeadCheck reintroduces
// write overtaking, which the mutex-RNLP differential oracle must catch; the
// counterexample must minimize to no more than the injected schedule (the
// three issues) and replay to a Perfetto trace.
func TestInjectedViolationCaughtMinimizedReplayed(t *testing.T) {
	sc := &Scenario{
		Name:                 "inject-overtake",
		Q:                    2,
		Templates:            mustTemplates("w:0 w:0+1 w:1"),
		ChaosSkipWQHeadCheck: true,
	}
	res, err := Explore(sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("injected overtaking bug not caught")
	}
	if v.Kind != VOracle {
		t.Fatalf("caught as %s, want oracle-divergence:\n%s", v.Kind, v)
	}

	min := Minimize(v)
	if len(min.Path) > len(v.Path) {
		t.Fatalf("minimization grew the schedule: %d > %d", len(min.Path), len(v.Path))
	}
	// The injected bug needs exactly: issue the holder, issue the blocked
	// waiter, issue the overtaker.
	if len(min.Path) > 3 {
		t.Fatalf("minimal counterexample has %d steps, want ≤ 3:\n%s", len(min.Path), min)
	}

	var trace bytes.Buffer
	rv, err := Replay(min.Scenario, min.Path, &trace)
	if err != nil {
		t.Fatal(err)
	}
	if rv == nil || rv.Kind != VOracle {
		t.Fatalf("replay did not reproduce the divergence: %v", rv)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("replay trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("replay trace has no events")
	}
}

// Replay scripts must round-trip: Script → ParseReplay → identical scenario
// and schedule.
func TestReplayScriptRoundTrip(t *testing.T) {
	sc := &Scenario{
		Name:                 "inject-overtake",
		Q:                    2,
		Templates:            mustTemplates("w:0 w:0+1 w:1"),
		ChaosSkipWQHeadCheck: true,
	}
	v := &Violation{
		Kind: VOracle, Step: 3,
		Path: []Action{{Tmpl: 0, Kind: ActIssue}, {Tmpl: 1, Kind: ActIssue}, {Tmpl: 2, Kind: ActIssue}},
	}
	v.Scenario = sc
	script := v.Script()
	sc2, path2, err := ParseReplay(strings.NewReader(script))
	if err != nil {
		t.Fatalf("parsing own script: %v\n%s", err, script)
	}
	if sc2.Q != sc.Q || sc2.Name != sc.Name ||
		sc2.ChaosSkipWQHeadCheck != sc.ChaosSkipWQHeadCheck ||
		sc2.TemplatesDSL() != sc.TemplatesDSL() {
		t.Fatalf("scenario did not round trip:\n%s", script)
	}
	if len(path2) != len(v.Path) {
		t.Fatalf("schedule did not round trip: %v vs %v", path2, v.Path)
	}
	for i := range path2 {
		if path2[i] != v.Path[i] {
			t.Fatalf("action %d: %s vs %s", i, path2[i], v.Path[i])
		}
	}

	// All action forms must survive String → parseAction.
	forms := []Action{
		{Tmpl: 1, Kind: ActIssue},
		{Tmpl: 2, Kind: ActComplete},
		{Tmpl: 0, Kind: ActCancel},
		{Tmpl: 3, Kind: ActFinishReadNo},
		{Tmpl: 3, Kind: ActFinishReadYes},
		{Tmpl: 4, Kind: ActAcquire, Ask: 2},
	}
	for _, a := range forms {
		back, err := parseAction(a.String())
		if err != nil {
			t.Errorf("%s: %v", a, err)
		} else if back != a {
			t.Errorf("%s parsed back as %s", a, back)
		}
	}
}

// Walk must be deterministic for a fixed seed and clean on the presets.
func TestWalkSeededDeterministic(t *testing.T) {
	sc := Preset("mixed4x3")
	r1, err := Walk(sc, DefaultOptions(), 42, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Violation != nil {
		t.Fatalf("violation:\n%s", r1.Violation)
	}
	r2, err := Walk(sc, DefaultOptions(), 42, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Fatalf("same seed, different stats:\n%s\n%s", r1.Stats, r2.Stats)
	}
	r3, err := Walk(sc, DefaultOptions(), 43, 25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats == r3.Stats {
		t.Error("different seeds produced identical stats (suspicious)")
	}
}

// A depth limit must truncate honestly: cutoffs are counted and terminals
// may be missed, but no spurious violation is reported.
func TestMaxDepthCutoff(t *testing.T) {
	sc := Preset("writeonly3")
	res, err := Explore(sc, Options{Memo: true, CheckBounds: true, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	if res.Stats.DepthCutoffs == 0 {
		t.Errorf("depth 3 on a 6-step scope produced no cutoffs: %s", res.Stats)
	}
	if res.Stats.Terminals != 0 {
		t.Errorf("depth 3 cannot reach a terminal of a 6-step scope: %s", res.Stats)
	}
}
