package mc

import (
	"strings"
	"testing"
)

// The fastread5x4 preset must actually exercise the fast-path admission
// implication: every all-read issue into a writer-free component checked,
// on every reachable interleaving, with no violation. (Cleanliness across
// presets is asserted by TestExplorePresetsClean; this pins the coverage.)
func TestFastPathImplicationChecked(t *testing.T) {
	for _, ph := range []bool{false, true} {
		sc := *Preset("fastread5x4")
		sc.Placeholders = ph
		res, err := Explore(&sc, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("placeholders=%v: violation:\n%s", ph, res.Violation)
		}
		if res.Stats.FastPathChecked == 0 {
			t.Fatalf("placeholders=%v: FastPathChecked = 0 — the admission implication was never evaluated", ph)
		}
		t.Logf("placeholders=%v: %d admission implications checked", ph, res.Stats.FastPathChecked)
	}
}

// The wfast2x2 and wmix4x3 presets must exercise the writer-plane admission
// implication: every write-capable issue into an idle component checked, on
// every reachable interleaving, with no violation.
func TestWriterFastPathImplicationChecked(t *testing.T) {
	for _, name := range []string{"wfast2x2", "wmix4x3"} {
		for _, ph := range []bool{false, true} {
			sc := *Preset(name)
			sc.Placeholders = ph
			res, err := Explore(&sc, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("%s placeholders=%v: violation:\n%s", name, ph, res.Violation)
			}
			if res.Stats.FastWriteChecked == 0 {
				t.Fatalf("%s placeholders=%v: FastWriteChecked = 0 — the writer admission implication was never evaluated", name, ph)
			}
			t.Logf("%s placeholders=%v: %d writer admission implications checked", name, ph, res.Stats.FastWriteChecked)
		}
	}
}

// The mixed preset must also drive the reader-plane check — both planes are
// live in the same state space.
func TestMixedPresetChecksBothPlanes(t *testing.T) {
	sc := *Preset("wmix4x3")
	res, err := Explore(&sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation:\n%s", res.Violation)
	}
	if res.Stats.FastPathChecked == 0 || res.Stats.FastWriteChecked == 0 {
		t.Fatalf("want both planes checked, got read=%d write=%d",
			res.Stats.FastPathChecked, res.Stats.FastWriteChecked)
	}
}

// Fault injection validating the detector: with ChaosDeafFreshReads the RSM
// deliberately leaves fresh all-read requests unsatisfied at issuance, so
// the explorer must surface a VFastPath violation — and its replay script
// must reproduce it deterministically.
func TestChaosDeafFreshReadsCaught(t *testing.T) {
	sc := *Preset("fastread5x4")
	sc.ChaosDeafFreshReads = true
	res, err := Explore(&sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("ChaosDeafFreshReads explored clean — the fast-path detector is deaf too")
	}
	if res.Violation.Kind != VFastPath {
		t.Fatalf("violation kind = %v, want VFastPath:\n%s", res.Violation.Kind, res.Violation)
	}

	script := res.Violation.Script()
	if !strings.Contains(script, "chaos-deaf-fresh-reads") {
		t.Fatalf("replay script does not carry the chaos flag:\n%s", script)
	}
	rsc, path, err := ParseReplay(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	v, err := Replay(rsc, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Kind != VFastPath {
		t.Fatalf("replay did not reproduce the VFastPath violation (got %v)", v)
	}
}

// Writer-plane analog: ChaosDeafFreshWrites strands fresh write-capable
// requests (skipping both the fresh pass and the entitlement pass, so the
// fault is not healed within the same stabilize call), and the explorer must
// surface it as a VFastPath violation that replays deterministically.
func TestChaosDeafFreshWritesCaught(t *testing.T) {
	sc := *Preset("wfast2x2")
	sc.ChaosDeafFreshWrites = true
	res, err := Explore(&sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("ChaosDeafFreshWrites explored clean — the writer fast-path detector is deaf too")
	}
	if res.Violation.Kind != VFastPath {
		t.Fatalf("violation kind = %v, want VFastPath:\n%s", res.Violation.Kind, res.Violation)
	}

	script := res.Violation.Script()
	if !strings.Contains(script, "chaos-deaf-fresh-writes") {
		t.Fatalf("replay script does not carry the chaos flag:\n%s", script)
	}
	rsc, path, err := ParseReplay(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	v, err := Replay(rsc, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Kind != VFastPath {
		t.Fatalf("replay did not reproduce the VFastPath violation (got %v)", v)
	}
}
