package mc

import (
	"strings"
	"testing"
)

// The fastread5x4 preset must actually exercise the fast-path admission
// implication: every all-read issue into a writer-free component checked,
// on every reachable interleaving, with no violation. (Cleanliness across
// presets is asserted by TestExplorePresetsClean; this pins the coverage.)
func TestFastPathImplicationChecked(t *testing.T) {
	for _, ph := range []bool{false, true} {
		sc := *Preset("fastread5x4")
		sc.Placeholders = ph
		res, err := Explore(&sc, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if res.Violation != nil {
			t.Fatalf("placeholders=%v: violation:\n%s", ph, res.Violation)
		}
		if res.Stats.FastPathChecked == 0 {
			t.Fatalf("placeholders=%v: FastPathChecked = 0 — the admission implication was never evaluated", ph)
		}
		t.Logf("placeholders=%v: %d admission implications checked", ph, res.Stats.FastPathChecked)
	}
}

// Fault injection validating the detector: with ChaosDeafFreshReads the RSM
// deliberately leaves fresh all-read requests unsatisfied at issuance, so
// the explorer must surface a VFastPath violation — and its replay script
// must reproduce it deterministically.
func TestChaosDeafFreshReadsCaught(t *testing.T) {
	sc := *Preset("fastread5x4")
	sc.ChaosDeafFreshReads = true
	res, err := Explore(&sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("ChaosDeafFreshReads explored clean — the fast-path detector is deaf too")
	}
	if res.Violation.Kind != VFastPath {
		t.Fatalf("violation kind = %v, want VFastPath:\n%s", res.Violation.Kind, res.Violation)
	}

	script := res.Violation.Script()
	if !strings.Contains(script, "chaos-deaf-fresh-reads") {
		t.Fatalf("replay script does not carry the chaos flag:\n%s", script)
	}
	rsc, path, err := ParseReplay(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	v, err := Replay(rsc, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil || v.Kind != VFastPath {
		t.Fatalf("replay did not reproduce the VFastPath violation (got %v)", v)
	}
}
