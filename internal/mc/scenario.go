// Package mc is a systematic model checker for the R/W RNLP request-
// satisfaction mechanism. It drives the REAL core.RSM — not a model of it —
// through every interleaving of a bounded scenario: at each step the
// explorer picks which pending protocol action fires next (issue, complete,
// cancel, upgrade finish-read, incremental acquire), so "no violation" means
// no violation exists for ANY arrival/completion ordering of the scenario,
// not merely for the orderings a randomized harness happened to sample.
//
// After every step the checker validates the structural invariants I1–I9
// (core.CheckInvariants), deadlock freedom (a non-terminal state must have
// an enabled action), and two differential oracles realized as independent
// reimplementations of prior-art protocols: write-only scenarios must
// reproduce the mutex RNLP's timestamp-FIFO satisfaction order, and
// single-resource scenarios must reproduce phase-fair reader/writer
// admission. At terminal states the Theorem 1/2 acquisition-delay envelopes
// are checked in RSM logical time via obs.BoundMonitor.
//
// The state space is kept tractable with canonical-state memoization
// (core.StateKey), symmetry reduction over identical templates, and
// sleep-set pruning over statically independent actions; see explore.go for
// the soundness argument of each.
package mc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rtsync/rwrnlp/internal/core"
)

// Template describes one request of a scenario, before any interleaving is
// chosen. A template turns into one request (or one upgradeable pair) when
// its issue action fires.
type Template struct {
	// Read and Write are the needed sets N^r and N^w. For an upgradeable
	// template, Read holds the pair's resource set and Write must be empty.
	// For an incremental template they are the full potential sets.
	Read  []core.ResourceID
	Write []core.ResourceID

	// Upgradeable marks a Sec. 3.6 read-to-write upgradeable pair.
	Upgradeable bool

	// Incremental marks a Sec. 3.7 incremental request; Asks[0] is the
	// initial ask issued with the request, and each later entry becomes a
	// separate Acquire action.
	Incremental bool
	Asks        [][]core.ResourceID
}

// Signature returns the canonical DSL form of the template; templates with
// equal signatures are interchangeable (the symmetry reduction relies on
// this).
func (tp Template) Signature() string {
	ids := func(rs []core.ResourceID) string {
		sorted := append([]core.ResourceID(nil), rs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		parts := make([]string, len(sorted))
		for i, r := range sorted {
			parts[i] = fmt.Sprintf("%d", r)
		}
		return strings.Join(parts, "+")
	}
	switch {
	case tp.Upgradeable:
		return "u:" + ids(tp.Read)
	case tp.Incremental:
		s := "i:" + ids(tp.Read) + "|" + ids(tp.Write)
		for _, a := range tp.Asks {
			s += "/" + ids(a)
		}
		return s
	case len(tp.Write) == 0:
		return "r:" + ids(tp.Read)
	case len(tp.Read) == 0:
		return "w:" + ids(tp.Write)
	default:
		return "m:" + ids(tp.Read) + "|" + ids(tp.Write)
	}
}

// need returns N = Read ∪ Write as a set.
func (tp Template) need() core.ResourceSet {
	n := core.NewResourceSet(tp.Read...)
	n.UnionWith(core.NewResourceSet(tp.Write...))
	return n
}

// plain reports whether the template is a plain single-shot request.
func (tp Template) plain() bool { return !tp.Upgradeable && !tp.Incremental }

// Scenario is a bounded model-checking scope: a resource system plus the
// request templates whose interleavings are explored.
type Scenario struct {
	Name      string
	Q         int // number of resources
	Templates []Template

	// Placeholders selects the Sec. 3.4 RSM variant.
	Placeholders bool
	// Cancels adds CancelRequest actions for plain templates that are
	// waiting/entitled with nothing granted.
	Cancels bool
	// ChaosSkipWQHeadCheck forwards the core fault-injection flag
	// (test-only; used to validate that the checker's detectors fire).
	ChaosSkipWQHeadCheck bool
	// ChaosDeafFreshReads forwards the core fault-injection flag that
	// strands fresh reads in writer-free components (test-only; validates
	// the VFastPath admission detector).
	ChaosDeafFreshReads bool
	// ChaosDeafFreshWrites forwards the core fault-injection flag that
	// strands fresh writes in idle components (test-only; validates the
	// writer-plane VFastPath admission detector).
	ChaosDeafFreshWrites bool
}

// Spec derives the resource-system Spec from the templates: every template
// is declared as a potential request, exactly as an embedder would declare
// its workload a priori.
func (s *Scenario) Spec() (*core.Spec, error) {
	b := core.NewSpecBuilder(s.Q)
	for _, tp := range s.Templates {
		if tp.Upgradeable {
			// The pair issues a read half over Read and a write half over
			// the same set.
			if err := b.DeclareRequest(tp.Read, nil); err != nil {
				return nil, err
			}
			if err := b.DeclareRequest(nil, tp.Read); err != nil {
				return nil, err
			}
			continue
		}
		if err := b.DeclareRequest(tp.Read, tp.Write); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// Options returns the core.Options the scenario runs under.
func (s *Scenario) Options() core.Options {
	return core.Options{
		Placeholders:         s.Placeholders,
		ChaosSkipWQHeadCheck: s.ChaosSkipWQHeadCheck,
		ChaosDeafFreshReads:  s.ChaosDeafFreshReads,
		ChaosDeafFreshWrites: s.ChaosDeafFreshWrites,
	}
}

// Validate checks structural well-formedness of the scenario.
func (s *Scenario) Validate() error {
	if s.Q <= 0 {
		return fmt.Errorf("mc: scenario needs at least one resource, got q=%d", s.Q)
	}
	if len(s.Templates) == 0 {
		return fmt.Errorf("mc: scenario has no templates")
	}
	check := func(ids []core.ResourceID) error {
		for _, id := range ids {
			if id < 0 || int(id) >= s.Q {
				return fmt.Errorf("mc: resource %d out of range [0,%d)", id, s.Q)
			}
		}
		return nil
	}
	for i, tp := range s.Templates {
		if err := check(tp.Read); err != nil {
			return fmt.Errorf("template %d: %w", i, err)
		}
		if err := check(tp.Write); err != nil {
			return fmt.Errorf("template %d: %w", i, err)
		}
		if tp.Upgradeable {
			if len(tp.Write) != 0 || tp.Incremental || len(tp.Asks) != 0 {
				return fmt.Errorf("mc: template %d: upgradeable templates use Read only", i)
			}
			if len(tp.Read) == 0 {
				return fmt.Errorf("mc: template %d: empty upgradeable set", i)
			}
			continue
		}
		if tp.Incremental {
			if len(tp.Asks) == 0 {
				return fmt.Errorf("mc: template %d: incremental template needs at least the initial ask", i)
			}
			need := tp.need()
			for j, a := range tp.Asks {
				if err := check(a); err != nil {
					return fmt.Errorf("template %d ask %d: %w", i, j, err)
				}
				if !need.ContainsAll(core.NewResourceSet(a...)) {
					return fmt.Errorf("mc: template %d ask %d not a subset of the potential set", i, j)
				}
			}
			if need.Empty() {
				return fmt.Errorf("mc: template %d: empty potential set", i)
			}
			continue
		}
		if len(tp.Read) == 0 && len(tp.Write) == 0 {
			return fmt.Errorf("mc: template %d requests nothing", i)
		}
	}
	return nil
}

// TemplatesDSL renders the scenario's templates in the DSL accepted by
// ParseTemplates, space separated.
func (s *Scenario) TemplatesDSL() string {
	sigs := make([]string, len(s.Templates))
	for i, tp := range s.Templates {
		sigs[i] = tp.Signature()
	}
	return strings.Join(sigs, " ")
}

// ParseTemplates parses the scenario DSL: templates separated by spaces,
// commas, or semicolons, each of the form
//
//	r:IDS          read request            (r:0+1)
//	w:IDS          write request           (w:1+2)
//	m:IDS|IDS      mixed read|write        (m:0|1+2)
//	u:IDS          upgradeable pair        (u:0+2)
//	i:IDS|IDS/ASK[/ASK...]  incremental potential read|write with asks
//	               (i:0|2/2/0 — potential read {0} write {2}, initial ask
//	               {2}, then acquire {0}); either side of | may be empty.
//
// IDS is a +-separated list of resource IDs.
func ParseTemplates(dsl string) ([]Template, error) {
	fields := strings.FieldsFunc(dsl, func(r rune) bool {
		return r == ' ' || r == ',' || r == ';' || r == '\t' || r == '\n'
	})
	ids := func(s string) ([]core.ResourceID, error) {
		if s == "" {
			return nil, nil
		}
		var out []core.ResourceID
		for _, part := range strings.Split(s, "+") {
			var id int
			if _, err := fmt.Sscanf(part, "%d", &id); err != nil {
				return nil, fmt.Errorf("mc: bad resource id %q", part)
			}
			out = append(out, core.ResourceID(id))
		}
		return out, nil
	}
	var tpl []Template
	for _, f := range fields {
		kind, rest, ok := strings.Cut(f, ":")
		if !ok {
			return nil, fmt.Errorf("mc: template %q: missing kind prefix", f)
		}
		var tp Template
		var err error
		switch kind {
		case "r":
			tp.Read, err = ids(rest)
		case "w":
			tp.Write, err = ids(rest)
		case "m":
			r, w, found := strings.Cut(rest, "|")
			if !found {
				return nil, fmt.Errorf("mc: mixed template %q needs read|write", f)
			}
			if tp.Read, err = ids(r); err == nil {
				tp.Write, err = ids(w)
			}
		case "u":
			tp.Upgradeable = true
			tp.Read, err = ids(rest)
		case "i":
			tp.Incremental = true
			parts := strings.Split(rest, "/")
			if len(parts) < 2 {
				return nil, fmt.Errorf("mc: incremental template %q needs sets and at least one ask", f)
			}
			r, w, found := strings.Cut(parts[0], "|")
			if !found {
				return nil, fmt.Errorf("mc: incremental template %q needs read|write", f)
			}
			if tp.Read, err = ids(r); err == nil {
				tp.Write, err = ids(w)
			}
			for _, a := range parts[1:] {
				if err != nil {
					break
				}
				var ask []core.ResourceID
				if ask, err = ids(a); err == nil {
					tp.Asks = append(tp.Asks, ask)
				}
			}
		default:
			return nil, fmt.Errorf("mc: template %q: unknown kind %q", f, kind)
		}
		if err != nil {
			return nil, fmt.Errorf("mc: template %q: %w", f, err)
		}
		tpl = append(tpl, tp)
	}
	if len(tpl) == 0 {
		return nil, fmt.Errorf("mc: empty template list")
	}
	return tpl, nil
}

// mustTemplates parses a known-good DSL (presets only).
func mustTemplates(dsl string) []Template {
	tpl, err := ParseTemplates(dsl)
	if err != nil {
		panic(err)
	}
	return tpl
}

// Presets returns the named built-in scenarios, in a stable order.
func Presets() []*Scenario {
	return []*Scenario{
		{
			// The documented flagship scope (EXPERIMENTS.md E21): four
			// requests — a reader, a writer, an upgradeable pair, and a
			// mixed incremental request — over three resources.
			Name:      "mixed4x3",
			Q:         3,
			Templates: mustTemplates("r:0+1 w:1+2 u:0+2 i:0|2/2/0"),
		},
		{
			// Write-only triangle: activates the mutex-RNLP differential
			// oracle (every request exclusive, timestamp-FIFO order).
			Name:      "writeonly3",
			Q:         3,
			Templates: mustTemplates("w:0+1 w:1+2 w:0+2"),
		},
		{
			// Single resource, two readers and two writers: activates the
			// phase-fair differential oracle.
			Name:      "single4",
			Q:         1,
			Templates: mustTemplates("r:0 r:0 w:0 w:0"),
		},
		{
			// Cancellation interleavings: a reader that may withdraw while
			// queued behind writers (the beyond-paper timeout extension).
			Name:      "cancel3",
			Q:         2,
			Templates: mustTemplates("w:0+1 w:0 r:1"),
			Cancels:   true,
		},
		{
			// Five requests over four resources with nesting and read
			// sharing; the largest scope make ci exhausts.
			Name:      "nested5x4",
			Q:         4,
			Templates: mustTemplates("r:0+1 w:1+2 r:2+3 w:0+3 u:1+3"),
		},
		{
			// Two disjoint declared components {0,1} and {2,3}, with
			// cancellations: activates the sharded-RSM differential oracle,
			// checking that one protocol instance per component reproduces
			// the global instance's satisfaction order exactly.
			Name:      "shards4x2",
			Q:         4,
			Templates: mustTemplates("r:0+1 w:0+1 r:2+3 w:2+3"),
			Cancels:   true,
		},
		{
			// Read-mostly traffic over two components: two identical readers
			// racing a writer in component {0,1} plus a reader/writer pair
			// in {2,3}. Exercises the fast-path admission check (every
			// all-read issue into a writer-free component must satisfy
			// immediately — the invariant the runtime's BRAVO-style reader
			// fast path relies on) across every interleaving, with the
			// sharded-RSM differential oracle active.
			Name:      "fastread5x4",
			Q:         4,
			Templates: mustTemplates("r:0+1 r:0+1 w:0+1 r:2+3 w:2+3"),
		},
		{
			// Writer-fast-path admission: two writers racing over one
			// component, with cancellation. Exercises the writer-plane
			// implication (every write-capable issue into an idle component
			// must satisfy immediately — the invariant the runtime's
			// uncontended-writer fast path relies on) across every
			// interleaving, including revocation racing release and cancel.
			// Write-only traffic also activates the mutex-RNLP differential
			// oracle.
			Name:      "wfast2x2",
			Q:         2,
			Templates: mustTemplates("w:0 w:0+1"),
			Cancels:   true,
		},
		{
			// Parking cancellation interleavings: two writers contending for
			// resource 0 with a reader on each resource, all cancellable.
			// Every schedule where a queued request is withdrawn while
			// others are being satisfied is explored — the model-level
			// counterpart of the runtime's cancel-while-parked and
			// signal-after-cancel races (park.go): a request whose waiter
			// loses or wins the cancel CAS must leave the RSM in a state
			// where the remaining requests still satisfy I1–I9 and the
			// delay envelopes, under both placeholder modes.
			Name:      "parkcancel4x2",
			Q:         2,
			Templates: mustTemplates("w:0+1 w:0+1 r:0 r:1"),
			Cancels:   true,
		},
		{
			// Mixed reader+writer fast-path plane: a reader, two writers,
			// and an upgradeable pair over three resources, with
			// cancellation. Both fast-path implications (reader-fast and
			// writer-fast) are checked on every issue, covering revocation
			// racing release, cancellation, and upgrade.
			Name:      "wmix4x3",
			Q:         3,
			Templates: mustTemplates("r:0+1 w:1+2 w:0 u:0+2"),
			Cancels:   true,
		},
	}
}

// Preset returns the named preset scenario, or nil.
func Preset(name string) *Scenario {
	for _, s := range Presets() {
		if s.Name == name {
			return s
		}
	}
	return nil
}
