package mc

// Counterexample shrinking. A violation found by the explorer already ends
// at its detection step, but usually still contains actions irrelevant to
// the failure (templates that never interact with the buggy ones, redundant
// interleaving choices). Minimize greedily shrinks the schedule while
// preserving the violation KIND — the reproduced failure must stay the same
// class of bug, not merely some failure:
//
//  1. remove every action of one template at a time (coarse, delta-debugging
//     style: most of the reduction comes from discarding bystander
//     templates), then
//  2. remove single actions, scanning from the end (fine).
//
// Both passes repeat until a fixed point. Every candidate schedule is
// validated by actually replaying it — an illegal schedule (e.g. completing
// a request whose issue was removed) simply fails to reproduce and is
// rejected, so the minimizer needs no dependency analysis.

// Minimize returns the smallest violation reachable from v by greedy
// schedule reduction. The result reproduces deterministically via Replay
// and is never longer than v's schedule.
func Minimize(v *Violation) *Violation {
	if v == nil || v.Scenario == nil {
		return v
	}
	best := v
	for {
		improved := false

		// Coarse pass: drop whole templates.
		seenTmpl := map[int]bool{}
		for _, a := range best.Path {
			seenTmpl[a.Tmpl] = true
		}
		for tmpl := range seenTmpl {
			cand := make([]Action, 0, len(best.Path))
			for _, a := range best.Path {
				if a.Tmpl != tmpl {
					cand = append(cand, a)
				}
			}
			if len(cand) == len(best.Path) {
				continue
			}
			if rv := reproduce(best.Scenario, cand, best.Kind); rv != nil {
				best = rv
				improved = true
			}
		}

		// Fine pass: drop single actions, from the end (later actions are
		// more likely to be removable without invalidating the prefix).
		for i := len(best.Path) - 1; i >= 0; i-- {
			cand := make([]Action, 0, len(best.Path)-1)
			cand = append(cand, best.Path[:i]...)
			cand = append(cand, best.Path[i+1:]...)
			if rv := reproduce(best.Scenario, cand, best.Kind); rv != nil {
				best = rv
				improved = true
			}
		}

		if !improved {
			return best
		}
	}
}

// reproduce replays a candidate schedule and returns the violation if it
// fails with the wanted kind (truncated at the detection step), nil
// otherwise. Candidate schedules may be illegal — an apply error just means
// "does not reproduce".
func reproduce(sc *Scenario, path []Action, want VKind) *Violation {
	r, err := newRunner(sc)
	if err != nil {
		return nil
	}
	for i, a := range path {
		if err := r.apply(a); err != nil {
			return nil
		}
		if v := r.checkStep(); v != nil {
			if v.Kind != want {
				return nil
			}
			v.attach(sc, path[:i+1])
			return v
		}
	}
	switch want {
	case VDeadlock:
		if enab, sym := r.enabled(); len(enab) == 0 && sym == 0 && !r.terminal() {
			v := &Violation{Kind: VDeadlock, Step: len(path),
				Details: []string{"no action enabled but templates remain unfinished"}}
			v.attach(sc, path)
			return v
		}
	case VBound:
		if r.terminal() {
			if v := checkBounds(r, len(sc.Templates)); v != nil {
				v.attach(sc, path)
				return v
			}
		}
	}
	return nil
}
