package mc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rtsync/rwrnlp/internal/core"
)

// ActionKind is one protocol invocation choice of the explorer.
type ActionKind uint8

const (
	// ActIssue issues the template's request (or upgradeable pair).
	ActIssue ActionKind = iota
	// ActComplete completes the template's critical section.
	ActComplete
	// ActCancel withdraws a plain waiting/entitled request (CancelRequest).
	ActCancel
	// ActFinishReadNo ends an upgrade pair's optimistic read segment without
	// upgrading (the write half is canceled).
	ActFinishReadNo
	// ActFinishReadYes ends the read segment and upgrades: read locks are
	// released and the write half proceeds.
	ActFinishReadYes
	// ActAcquire issues incremental ask Action.Ask (Sec. 3.7).
	ActAcquire
)

// Action is one step of a schedule: apply Kind to template Tmpl.
type Action struct {
	Tmpl int
	Kind ActionKind
	Ask  int // ask index, ActAcquire only
}

func (a Action) String() string {
	switch a.Kind {
	case ActIssue:
		return fmt.Sprintf("issue %d", a.Tmpl)
	case ActComplete:
		return fmt.Sprintf("complete %d", a.Tmpl)
	case ActCancel:
		return fmt.Sprintf("cancel %d", a.Tmpl)
	case ActFinishReadNo:
		return fmt.Sprintf("finish-read %d no-upgrade", a.Tmpl)
	case ActFinishReadYes:
		return fmt.Sprintf("finish-read %d upgrade", a.Tmpl)
	case ActAcquire:
		return fmt.Sprintf("acquire %d %d", a.Tmpl, a.Ask)
	default:
		return fmt.Sprintf("action(%d) %d", a.Kind, a.Tmpl)
	}
}

// parseAction parses the String form back.
func parseAction(s string) (Action, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 {
		return Action{}, fmt.Errorf("mc: bad action %q", s)
	}
	var tmpl int
	if _, err := fmt.Sscanf(fields[1], "%d", &tmpl); err != nil {
		return Action{}, fmt.Errorf("mc: bad action template in %q", s)
	}
	a := Action{Tmpl: tmpl}
	switch fields[0] {
	case "issue":
		a.Kind = ActIssue
	case "complete":
		a.Kind = ActComplete
	case "cancel":
		a.Kind = ActCancel
	case "finish-read":
		if len(fields) < 3 {
			return Action{}, fmt.Errorf("mc: finish-read needs upgrade|no-upgrade in %q", s)
		}
		switch fields[2] {
		case "upgrade":
			a.Kind = ActFinishReadYes
		case "no-upgrade":
			a.Kind = ActFinishReadNo
		default:
			return Action{}, fmt.Errorf("mc: bad finish-read mode in %q", s)
		}
	case "acquire":
		a.Kind = ActAcquire
		if len(fields) < 3 {
			return Action{}, fmt.Errorf("mc: acquire needs an ask index in %q", s)
		}
		if _, err := fmt.Sscanf(fields[2], "%d", &a.Ask); err != nil {
			return Action{}, fmt.Errorf("mc: bad ask index in %q", s)
		}
	default:
		return Action{}, fmt.Errorf("mc: unknown action %q", fields[0])
	}
	return a, nil
}

// tmplRun is the per-template lifecycle progress within one run.
type tmplRun struct {
	issued   bool
	done     bool
	canceled bool

	id core.ReqID         // plain / incremental request
	uh core.UpgradeHandle // upgradeable pair

	finishedRead bool // upgrade: FinishRead called
	upgraded     bool // upgrade: FinishRead(…, true)
	nextAsk      int  // incremental: next Asks index to fire (starts at 1)
}

// aliasBase computes the canonical request name for template i: plain and
// incremental requests use 3i, the halves of an upgradeable pair 3i+1 and
// 3i+2. Canonical names are stable across interleavings, unlike ReqIDs.
func aliasBase(tmpl int) int32 { return int32(3 * tmpl) }

// runner executes one schedule prefix against a fresh RSM, maintaining the
// alias map, the template progress, the protocol event log, and the active
// differential oracles.
type runner struct {
	sc   *Scenario
	spec *core.Spec
	rsm  *core.RSM

	tr    []tmplRun
	alias map[core.ReqID]int32
	step  int // number of applied actions; doubles as the logical clock

	events []core.Event // full protocol event log (for bounds + traces)

	oracles    []oracle
	divergence *Violation

	// Fast-path admission checks (see checkFastPath): fastChecked /
	// fastWChecked count the issues the reader-/writer-plane implication
	// applied to; fastViolation records the first
	// failure.
	fastChecked   int
	fastWChecked  int
	fastViolation *Violation
}

// satEv is one satisfaction observation: template tmpl satisfied at step.
type satEv struct {
	step int
	tmpl int
}

func satLogString(log []satEv) string {
	var b strings.Builder
	for _, s := range log {
		fmt.Fprintf(&b, "(t=%d req=%d) ", s.step, s.tmpl)
	}
	return strings.TrimSpace(b.String())
}

// canonicalizeSatLog sorts same-step entries by template: within one
// invocation several requests may be satisfied (e.g. a read phase starting),
// and their relative in-step order is not semantically meaningful.
func canonicalizeSatLog(log []satEv) {
	sort.SliceStable(log, func(i, j int) bool {
		if log[i].step != log[j].step {
			return log[i].step < log[j].step
		}
		return log[i].tmpl < log[j].tmpl
	})
}

// newRunner builds a fresh runner for the scenario. extra observers (may be
// nil) additionally receive every protocol event — the replayer attaches the
// Perfetto trace builder this way.
func newRunner(sc *Scenario, extra ...core.Observer) (*runner, error) {
	spec, err := sc.Spec()
	if err != nil {
		return nil, err
	}
	r := &runner{
		sc:    sc,
		spec:  spec,
		rsm:   core.NewRSM(spec, sc.Options()),
		tr:    make([]tmplRun, len(sc.Templates)),
		alias: make(map[core.ReqID]int32),
	}
	collect := core.ObserverFunc(func(e core.Event) {
		r.events = append(r.events, e)
	})
	obs := append([]core.Observer{collect}, extra...)
	r.rsm.SetObserver(core.MultiObserver(obs...))
	r.oracles = activeOracles(sc)
	return r, nil
}

// terminal reports whether every template has run to completion (or been
// canceled).
func (r *runner) terminal() bool {
	for i := range r.tr {
		if !r.tr[i].done {
			return false
		}
	}
	return true
}

// enabled enumerates every action legal in the current state, in canonical
// (template, kind) order. The identical-template symmetry reduction is
// applied here: among unissued templates with equal signatures only the
// lowest-indexed may issue (any run violating with a different order maps to
// a violating canonical-order run by renaming the interchangeable
// templates). symmetryPruned counts the suppressed issues.
func (r *runner) enabled() (acts []Action, symmetryPruned int) {
	issuedSig := map[string]int{} // signature → lowest unissued template index
	for i := range r.sc.Templates {
		if r.tr[i].issued {
			continue
		}
		sig := r.sc.Templates[i].Signature()
		if _, seen := issuedSig[sig]; !seen {
			issuedSig[sig] = i
		}
	}
	for i := range r.sc.Templates {
		tp := &r.sc.Templates[i]
		run := &r.tr[i]
		if run.done {
			continue
		}
		if !run.issued {
			if issuedSig[tp.Signature()] == i {
				acts = append(acts, Action{Tmpl: i, Kind: ActIssue})
			} else {
				symmetryPruned++
			}
			continue
		}
		switch {
		case tp.Upgradeable:
			switch r.rsm.UpgradePhase(run.uh) {
			case core.UpgradeReading:
				if !run.finishedRead {
					acts = append(acts,
						Action{Tmpl: i, Kind: ActFinishReadNo},
						Action{Tmpl: i, Kind: ActFinishReadYes})
				}
			case core.UpgradeWriting:
				acts = append(acts, Action{Tmpl: i, Kind: ActComplete})
			}
		case tp.Incremental:
			st, err := r.rsm.State(run.id)
			if err != nil {
				continue
			}
			if st == core.StateSatisfied {
				// Satisfied means the full potential set is held; remaining
				// asks would be no-ops, so completion is the only step.
				acts = append(acts, Action{Tmpl: i, Kind: ActComplete})
				continue
			}
			// The next ask fires once every earlier ask has been granted
			// (merging asks is legal but only multiplies equivalent states).
			prevGranted := false
			if st == core.StateEntitled || st == core.StateWaiting {
				asked := askedSoFar(tp, run.nextAsk)
				ok, err := r.rsm.Granted(run.id, asked)
				prevGranted = err == nil && ok
			}
			if run.nextAsk < len(tp.Asks) && prevGranted {
				acts = append(acts, Action{Tmpl: i, Kind: ActAcquire, Ask: run.nextAsk})
			}
			// An entitled incremental request may finish early once all its
			// declared asks are granted (Sec. 3.7 early completion).
			if run.nextAsk == len(tp.Asks) && prevGranted && r.rsm.CanComplete(run.id) {
				acts = append(acts, Action{Tmpl: i, Kind: ActComplete})
			}
			if r.sc.Cancels && r.rsm.CanCancel(run.id) {
				acts = append(acts, Action{Tmpl: i, Kind: ActCancel})
			}
		default: // plain
			if r.rsm.CanComplete(run.id) {
				acts = append(acts, Action{Tmpl: i, Kind: ActComplete})
			}
			if r.sc.Cancels && r.rsm.CanCancel(run.id) {
				acts = append(acts, Action{Tmpl: i, Kind: ActCancel})
			}
		}
	}
	return acts, symmetryPruned
}

// askedSoFar returns the union of Asks[0:n] as a slice.
func askedSoFar(tp *Template, n int) []core.ResourceID {
	s := core.ResourceSet{}
	for i := 0; i < n && i < len(tp.Asks); i++ {
		s.UnionWith(core.NewResourceSet(tp.Asks[i]...))
	}
	return s.IDs()
}

// apply executes one action at the next logical instant. It returns an error
// if the action is not legal in the current state (the minimizer probes
// candidate schedules this way; the explorer only applies enabled actions).
func (r *runner) apply(a Action) error {
	if a.Tmpl < 0 || a.Tmpl >= len(r.sc.Templates) {
		return fmt.Errorf("mc: action %s: no such template", a)
	}
	tp := &r.sc.Templates[a.Tmpl]
	run := &r.tr[a.Tmpl]
	r.step++
	t := core.Time(r.step)

	switch a.Kind {
	case ActIssue:
		if run.issued {
			return fmt.Errorf("mc: %s: already issued", a)
		}
		switch {
		case tp.Upgradeable:
			h, err := r.rsm.IssueUpgradeable(t, tp.Read, a.Tmpl)
			if err != nil {
				return err
			}
			run.uh = h
			r.alias[h.ReadID] = aliasBase(a.Tmpl) + 1
			r.alias[h.WriteID] = aliasBase(a.Tmpl) + 2
		case tp.Incremental:
			id, err := r.rsm.IssueIncremental(t, tp.Read, tp.Write, tp.Asks[0], nil, a.Tmpl)
			if err != nil {
				return err
			}
			run.id = id
			run.nextAsk = 1
			r.alias[id] = aliasBase(a.Tmpl)
		default:
			// Fast-path admission implications (the contract of the runtime
			// fast paths, rwrnlp/fastpath.go): evaluate the admission
			// predicates BEFORE the issue and afterwards require immediate
			// satisfaction. The reader plane admits all-read requests into a
			// writer-free component (core.WriterFree); the writer plane
			// admits write-capable requests — plain and mixed — into a fully
			// idle component (core.ComponentIdle).
			readFast := len(tp.Write) == 0 && len(tp.Read) > 0 &&
				r.rsm.WriterFree(tp.Read[0])
			writeFast := len(tp.Write) > 0 && r.rsm.ComponentIdle(tp.Write[0])
			id, err := r.rsm.Issue(t, tp.Read, tp.Write, a.Tmpl)
			if err != nil {
				return err
			}
			run.id = id
			r.alias[id] = aliasBase(a.Tmpl)
			if readFast {
				r.checkFastPath(a.Tmpl, id, false)
			}
			if writeFast {
				r.checkFastPath(a.Tmpl, id, true)
			}
		}
		run.issued = true

	case ActComplete:
		if !run.issued || run.done {
			return fmt.Errorf("mc: %s: not active", a)
		}
		id := run.id
		if tp.Upgradeable {
			if r.rsm.UpgradePhase(run.uh) != core.UpgradeWriting {
				return fmt.Errorf("mc: %s: write half not satisfied", a)
			}
			id = run.uh.WriteID
		}
		if err := r.rsm.Complete(t, id); err != nil {
			return err
		}
		run.done = true

	case ActCancel:
		if !run.issued || run.done || tp.Upgradeable {
			return fmt.Errorf("mc: %s: not cancelable", a)
		}
		if err := r.rsm.CancelRequest(t, run.id); err != nil {
			return err
		}
		run.done = true
		run.canceled = true

	case ActFinishReadNo, ActFinishReadYes:
		if !tp.Upgradeable || !run.issued || run.finishedRead {
			return fmt.Errorf("mc: %s: no active read segment", a)
		}
		upgrade := a.Kind == ActFinishReadYes
		if err := r.rsm.FinishRead(t, run.uh, upgrade); err != nil {
			return err
		}
		run.finishedRead = true
		run.upgraded = upgrade
		if !upgrade {
			run.done = true
		}

	case ActAcquire:
		if !tp.Incremental || !run.issued || run.done {
			return fmt.Errorf("mc: %s: not an active incremental request", a)
		}
		if a.Ask != run.nextAsk || a.Ask >= len(tp.Asks) {
			return fmt.Errorf("mc: %s: ask out of order (next is %d of %d)", a, run.nextAsk, len(tp.Asks))
		}
		if _, err := r.rsm.Acquire(t, run.id, tp.Asks[a.Ask]); err != nil {
			return err
		}
		run.nextAsk++

	default:
		return fmt.Errorf("mc: unknown action kind %d", a.Kind)
	}

	// An upgrade pair may resolve as a side effect of other requests'
	// transitions (the write half winning the race cancels the read half and
	// later completes), so refresh done-ness for upgrade templates.
	for i := range r.sc.Templates {
		if r.sc.Templates[i].Upgradeable && r.tr[i].issued && !r.tr[i].done {
			if r.rsm.UpgradePhase(r.tr[i].uh) == core.UpgradeDone {
				r.tr[i].done = true
			}
		}
	}

	// Drive the oracles through the same invocation and compare.
	if r.divergence == nil && len(r.oracles) > 0 {
		for _, o := range r.oracles {
			o.apply(r.step, a, r.sc)
		}
		r.compareOracles()
	}
	return nil
}

// rsmSatLog derives the RSM's satisfaction log from the event stream. The
// alias lookup must happen here, not in the observer: satisfactions emitted
// during an Issue invocation precede the alias registration (the ReqID is
// only known once Issue returns).
func (r *runner) rsmSatLog() []satEv {
	var log []satEv
	for _, e := range r.events {
		if e.Type != core.EvSatisfied {
			continue
		}
		if al, ok := r.alias[e.Req]; ok {
			log = append(log, satEv{step: int(e.T), tmpl: int(al) / 3})
		}
	}
	return log
}

// compareOracles checks the RSM satisfaction log against each oracle's.
func (r *runner) compareOracles() {
	got := r.rsmSatLog()
	canonicalizeSatLog(got)
	for _, o := range r.oracles {
		want := o.satisfactions()
		canonicalizeSatLog(want)
		if len(got) == len(want) {
			equal := true
			for i := range got {
				if got[i] != want[i] {
					equal = false
					break
				}
			}
			if equal {
				continue
			}
		}
		r.divergence = &Violation{
			Kind: VOracle,
			Step: r.step,
			Details: []string{
				fmt.Sprintf("differential oracle %q diverged at step %d", o.name(), r.step),
				"rsm:    " + satLogString(got),
				"oracle: " + satLogString(want),
			},
		}
		return
	}
}

// checkFastPath asserts a fast-path admission implication for one plain
// issue whose admission predicate held at the invocation: the RSM must have
// satisfied it within the Issue invocation itself (Rules R1/W1, zero
// acquisition delay). writer selects the plane — false for an all-read
// issue into a writer-free component (core.WriterFree), true for a
// write-capable issue into an idle component (core.ComponentIdle). This is
// checked on EVERY reachable interleaving the explorer drives, so a pass
// means the runtime fast paths — which admit requests exactly under these
// predicates, enforced by their gate/word protocols — only ever satisfy
// requests the RSM would satisfy immediately.
func (r *runner) checkFastPath(tmpl int, id core.ReqID, writer bool) {
	if writer {
		r.fastWChecked++
	} else {
		r.fastChecked++
	}
	if r.fastViolation != nil {
		return
	}
	st, err := r.rsm.State(id)
	if err != nil || st != core.StateSatisfied {
		plane, pred, runtime := "all-read", "writer-free", "reader"
		if writer {
			plane, pred, runtime = "write-capable", "idle", "writer"
		}
		r.fastViolation = &Violation{
			Kind: VFastPath,
			Step: r.step,
			Details: []string{
				fmt.Sprintf("template %d: %s issue into a %s component not satisfied immediately (state %v)", tmpl, plane, pred, st),
				fmt.Sprintf("the runtime %s fast path would have admitted this request outside the RSM", runtime),
			},
		}
	}
}

// checkStep runs the per-state checks: structural invariants, the fast-path
// admission implication, and oracle divergence. The explorer adds deadlock
// and terminal bound checks.
func (r *runner) checkStep() *Violation {
	// The fast-path admission violation outranks structural invariants: a
	// stranded fresh request usually trips both (a waiting write violates
	// I7/Lemma 6 too), and the admission implication is the more specific
	// diagnosis — it names the template and the runtime plane affected.
	if r.fastViolation != nil {
		return r.fastViolation
	}
	if bad := r.rsm.CheckInvariants(); len(bad) > 0 {
		return &Violation{Kind: VInvariant, Step: r.step, Details: bad}
	}
	if r.divergence != nil {
		return r.divergence
	}
	return nil
}

// progressKey encodes per-template lifecycle progress that the RSM state
// alone cannot distinguish (unissued vs. completed templates, upgrade
// branch taken, next ask index).
func (r *runner) progressKey() string {
	var b strings.Builder
	for i := range r.tr {
		run := &r.tr[i]
		fmt.Fprintf(&b, "%t%t%t%t%t%d;", run.issued, run.done, run.canceled,
			run.finishedRead, run.upgraded, run.nextAsk)
	}
	return b.String()
}

// key is the memoization key: canonical RSM state + template progress +
// oracle state (oracle state is history-dependent; merging states with
// different oracle views could hide a divergence).
func (r *runner) key() string {
	var b strings.Builder
	b.WriteString(r.rsm.StateKey(func(id core.ReqID) int32 { return r.alias[id] }))
	b.WriteByte('#')
	b.WriteString(r.progressKey())
	for _, o := range r.oracles {
		b.WriteByte('#')
		b.WriteString(o.key())
	}
	return b.String()
}

// ageKey encodes the timing-relevant history of the run: for every
// lifecycle event, the request's canonical name and the event's age in
// steps. Options.ExhaustiveBounds appends it to the memoization key, making
// the Theorem 1/2 delay check exhaustive over timing histories — states the
// canonical key would merge can differ in how long their requests have
// already waited and in the critical-section lengths that feed the observed
// envelope. The price is that memoization degenerates to near-tree
// exploration; without the flag, bounds are still checked on every canonical
// path (see explore.go).
func (r *runner) ageKey() string {
	var b strings.Builder
	for _, e := range r.events {
		switch e.Type {
		case core.EvIssued, core.EvSatisfied, core.EvCompleted, core.EvReadSegmentDone:
			fmt.Fprintf(&b, "%d:%d=%d;", e.Type, r.alias[e.Req], r.step-int(e.T))
		}
	}
	return b.String()
}
