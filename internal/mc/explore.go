package mc

import (
	"fmt"
	"math/rand"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/obs"
)

// Options configure an exploration.
type Options struct {
	// Memo enables canonical-state memoization: a state whose key
	// (core.StateKey + template progress + oracle state) was explored before
	// is not re-expanded. Sound because the key is behavior-complete: every
	// action sequence enabled from the revisit was already explored from the
	// first visit.
	Memo bool

	// SleepSets enables sleep-set pruning over statically independent
	// actions (templates whose expanded resource footprints are disjoint
	// commute in the RSM and in both oracles: no rule lets requests interact
	// except through shared resources). Auto-disabled when the action
	// universe exceeds 64 bits or when ExhaustiveBounds is set (independent
	// orderings differ in timing, which that mode must enumerate).
	SleepSets bool

	// CheckBounds validates the Theorem 1/2 acquisition-delay envelopes (in
	// logical step units, observed-envelope mode) at every terminal state.
	CheckBounds bool

	// ExhaustiveBounds appends the full timing history to the memoization
	// key, making the bound check exhaustive over timing histories rather
	// than per canonical path — at near-tree exploration cost.
	ExhaustiveBounds bool

	// MaxDepth bounds the schedule length (0 = unbounded; scenarios are
	// finite anyway, so this is a CI time valve, not a semantic limit).
	MaxDepth int

	// MaxStates aborts exploration after this many distinct states
	// (0 = unlimited); the result reports Truncated.
	MaxStates int

	// M is the processor count for Theorem 2's (m−1) factor; 0 means one
	// processor per template (each request from its own task, Rule G4's
	// serialized invocation model).
	M int
}

// DefaultOptions returns the standard exhaustive configuration.
func DefaultOptions() Options {
	return Options{Memo: true, SleepSets: true, CheckBounds: true}
}

// Stats describes an exploration's effort and pruning effectiveness.
type Stats struct {
	States           int // distinct states expanded
	Revisits         int // memoization hits
	Terminals        int // complete schedules reached
	SleepPruned      int // transitions suppressed by sleep sets
	SymmetryPruned   int // issue transitions suppressed by template symmetry
	DepthCutoffs     int // paths truncated by MaxDepth
	MaxDepthSeen     int // longest schedule reached
	FastPathChecked  int // reader-plane admission implications evaluated (over all node replays)
	FastWriteChecked int // writer-plane admission implications evaluated (over all node replays)
	Truncated        bool
}

func (s Stats) String() string {
	return fmt.Sprintf("states=%d revisits=%d terminals=%d sleep-pruned=%d symmetry-pruned=%d depth-cutoffs=%d max-depth=%d fastpath-checked=%d fastwrite-checked=%d",
		s.States, s.Revisits, s.Terminals, s.SleepPruned, s.SymmetryPruned, s.DepthCutoffs, s.MaxDepthSeen, s.FastPathChecked, s.FastWriteChecked)
}

// Result is the outcome of an exploration or walk.
type Result struct {
	Scenario  *Scenario
	Violation *Violation // nil when the scope is clean
	Stats     Stats
}

// memoEntry records under what conditions a state was already expanded.
type memoEntry struct {
	sleep uint64 // sleep set the state was explored under
	depth int    // depth it was reached at (matters only with MaxDepth)
}

// actionBit maps an action to its bit in the sleep-set mask: 8 slots per
// template (issue, complete, cancel, finish-read ×2, acquire ×3).
func actionBit(a Action) (uint64, bool) {
	var sub int
	switch a.Kind {
	case ActIssue:
		sub = 0
	case ActComplete:
		sub = 1
	case ActCancel:
		sub = 2
	case ActFinishReadNo:
		sub = 3
	case ActFinishReadYes:
		sub = 4
	case ActAcquire:
		if a.Ask > 2 {
			return 0, false
		}
		sub = 5 + a.Ask
	}
	idx := a.Tmpl*8 + sub
	if idx >= 64 {
		return 0, false
	}
	return 1 << uint(idx), true
}

// independenceMasks precomputes, per template, the mask of all actions of
// templates whose expanded footprints are disjoint from it. Two requests
// with disjoint footprints (needed sets closed under the read-sharing
// expansion) share no queue, no holder list, and no conflict edge, so their
// invocations commute — in the RSM and in both oracles.
func independenceMasks(sc *Scenario, spec *core.Spec) []uint64 {
	n := len(sc.Templates)
	foot := make([]core.ResourceSet, n)
	for i, tp := range sc.Templates {
		foot[i] = spec.Expand(tp.need())
	}
	masks := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || foot[i].Intersects(foot[j]) {
				continue
			}
			// All 8 action slots of template j are independent of i.
			masks[i] |= 0xff << uint(j*8)
		}
	}
	return masks
}

// Explore exhaustively enumerates every interleaving of the scenario,
// checking invariants and oracles after every step, deadlock freedom at
// every state, and (optionally) the Theorem 1/2 envelopes at every terminal
// state. It stops at the first violation.
//
// The search is stateless in the jpf sense: each node is reconstructed by
// replaying its schedule prefix on a fresh RSM, which keeps the explorer
// honest (it can only use the public invocation surface) and gives every
// violation a ready-made replay script.
func Explore(sc *Scenario, opt Options) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	spec, err := sc.Spec()
	if err != nil {
		return Result{}, err
	}
	res := Result{Scenario: sc}

	sleepOK := opt.SleepSets && !opt.ExhaustiveBounds && len(sc.Templates)*8 <= 64
	var indep []uint64
	if sleepOK {
		indep = independenceMasks(sc, spec)
	}
	memo := map[string]memoEntry{}
	m := opt.M
	if m == 0 {
		m = len(sc.Templates)
	}

	var dfs func(path []Action, sleep uint64) (*Violation, error)
	dfs = func(path []Action, sleep uint64) (*Violation, error) {
		r, err := newRunner(sc)
		if err != nil {
			return nil, err
		}
		for _, a := range path {
			if err := r.apply(a); err != nil {
				return nil, fmt.Errorf("mc: internal: replaying %s: %w", a, err)
			}
		}
		if len(path) > res.Stats.MaxDepthSeen {
			res.Stats.MaxDepthSeen = len(path)
		}
		res.Stats.FastPathChecked += r.fastChecked
		res.Stats.FastWriteChecked += r.fastWChecked
		if v := r.checkStep(); v != nil {
			v.attach(sc, path)
			return v, nil
		}

		enab, sym := r.enabled()
		res.Stats.SymmetryPruned += sym
		if len(enab) == 0 && sym == 0 {
			if !r.terminal() {
				v := &Violation{
					Kind: VDeadlock,
					Step: len(path),
					Details: []string{
						"no action enabled but templates remain unfinished",
						"incomplete: " + fmt.Sprint(r.rsm.Incomplete()),
					},
				}
				v.attach(sc, path)
				return v, nil
			}
			res.Stats.Terminals++
			if opt.CheckBounds {
				if v := checkBounds(r, m); v != nil {
					v.attach(sc, path)
					return v, nil
				}
			}
			return nil, nil
		}

		if opt.MaxDepth > 0 && len(path) >= opt.MaxDepth {
			res.Stats.DepthCutoffs++
			return nil, nil
		}

		if opt.Memo {
			key := r.key()
			if opt.ExhaustiveBounds {
				key += "@" + r.ageKey()
			}
			if e, seen := memo[key]; seen {
				depthOK := opt.MaxDepth == 0 || e.depth <= len(path)
				if depthOK && e.sleep&^sleep == 0 {
					// The earlier visit explored a superset of what we would
					// (its sleep set was ⊆ ours) from at least as much
					// remaining depth: prune.
					res.Stats.Revisits++
					return nil, nil
				}
				// Revisit under an incomparable sleep set (or from a
				// shallower depth): re-explore under the intersection so no
				// transition stays unexplored.
				sleep &= e.sleep
				if e.depth < len(path) {
					memo[key] = memoEntry{sleep: sleep, depth: e.depth}
				} else {
					memo[key] = memoEntry{sleep: sleep, depth: len(path)}
				}
			} else {
				memo[key] = memoEntry{sleep: sleep, depth: len(path)}
			}
		}
		res.Stats.States++
		if opt.MaxStates > 0 && res.Stats.States > opt.MaxStates {
			res.Stats.Truncated = true
			return nil, nil
		}

		var explored uint64
		for _, a := range enab {
			bit, hasBit := uint64(0), false
			if sleepOK {
				bit, hasBit = actionBit(a)
			}
			if hasBit && sleep&bit != 0 {
				res.Stats.SleepPruned++
				continue
			}
			childSleep := uint64(0)
			if sleepOK {
				childSleep = (sleep | explored) & indep[a.Tmpl]
			}
			v, err := dfs(append(path[:len(path):len(path)], a), childSleep)
			if v != nil || err != nil {
				return v, err
			}
			if hasBit {
				explored |= bit
			}
			if res.Stats.Truncated {
				return nil, nil
			}
		}
		return nil, nil
	}

	v, err := dfs(nil, 0)
	if err != nil {
		return res, err
	}
	res.Violation = v
	return res, nil
}

// checkBounds validates the Theorem 1/2 envelopes over the run's event log.
// Time units are logical steps, so L^r_max/L^w_max are the longest observed
// critical sections in steps.
//
// obs.BoundMonitor's observed-envelope mode deliberately excludes
// incremental requests from the envelope, but a request BLOCKED by an
// incremental holder waits for its whole hold span (Sec. 3.7 charges the
// full span as that request's critical-section length). The checker
// therefore derives the envelope itself — folding incremental hold spans
// (first grant to completion) into L^r_max/L^w_max per the request's
// read/write potential — and runs the monitor in analytic mode against it.
// For scenarios without incremental templates this reduces exactly to the
// observed envelope.
func checkBounds(r *runner, m int) *Violation {
	lr, lw := observedEnvelope(r.events)
	bm := obs.NewBoundMonitor(m)
	bm.SetAnalytic(lr, lw)
	for _, e := range r.events {
		bm.Observe(e)
	}
	rep := bm.Report()
	if rep.Ok() {
		return nil
	}
	details := []string{fmt.Sprintf("Theorem 1/2 envelope exceeded (m=%d, Lr=%d, Lw=%d logical steps)", rep.M, rep.Lr, rep.Lw)}
	for _, bv := range rep.Violations {
		details = append(details, bv.String())
	}
	return &Violation{Kind: VBound, Step: r.step, Details: details}
}

// observedEnvelope computes L^r_max/L^w_max in logical steps from an event
// stream: ordinary critical sections (satisfy → complete / read-segment
// end) by kind, and incremental hold spans (first grant → complete) counted
// toward each kind the request's potential set touches.
func observedEnvelope(events []core.Event) (lr, lw int64) {
	type live struct {
		kind        core.Kind
		incremental bool
		incRead     bool
		incWrite    bool
		start       core.Time // CS start (ordinary) or hold start (incremental)
		started     bool
	}
	open := map[core.ReqID]*live{}
	for _, e := range events {
		switch e.Type {
		case core.EvIssued:
			open[e.Req] = &live{
				kind:        e.Kind,
				incremental: e.Incremental,
				incRead:     !e.Read.Empty(),
				incWrite:    !e.Write.Empty(),
			}
		case core.EvGranted:
			if o := open[e.Req]; o != nil && o.incremental && !o.started {
				o.start, o.started = e.T, true
			}
		case core.EvSatisfied:
			if o := open[e.Req]; o != nil && !o.started {
				o.start, o.started = e.T, true
			}
		case core.EvCompleted, core.EvReadSegmentDone:
			if o := open[e.Req]; o != nil && o.started {
				d := int64(e.T - o.start)
				if o.incremental {
					if o.incRead && d > lr {
						lr = d
					}
					if o.incWrite && d > lw {
						lw = d
					}
				} else if o.kind == core.KindRead {
					if d > lr {
						lr = d
					}
				} else if d > lw {
					lw = d
				}
			}
			delete(open, e.Req)
		case core.EvCanceled:
			delete(open, e.Req)
		}
	}
	return lr, lw
}

// Walk runs seeded randomized episodes through the scenario — the "stress
// walk" mode for scopes beyond exhaustive reach. Every step runs the same
// checks as Explore; the first violation is returned with its replayable
// schedule. Deterministic for a fixed seed.
func Walk(sc *Scenario, opt Options, seed int64, episodes, maxSteps int) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Scenario: sc}
	rng := rand.New(rand.NewSource(seed))
	m := opt.M
	if m == 0 {
		m = len(sc.Templates)
	}
	for ep := 0; ep < episodes; ep++ {
		r, err := newRunner(sc)
		if err != nil {
			return res, err
		}
		var path []Action
		for steps := 0; maxSteps == 0 || steps < maxSteps; steps++ {
			enab, _ := r.enabled()
			if len(enab) == 0 {
				if !r.terminal() {
					v := &Violation{Kind: VDeadlock, Step: len(path),
						Details: []string{"no action enabled but templates remain unfinished"}}
					v.attach(sc, path)
					res.Violation = v
					return res, nil
				}
				res.Stats.Terminals++
				if opt.CheckBounds {
					if v := checkBounds(r, m); v != nil {
						v.attach(sc, path)
						res.Violation = v
						return res, nil
					}
				}
				break
			}
			a := enab[rng.Intn(len(enab))]
			if err := r.apply(a); err != nil {
				return res, fmt.Errorf("mc: internal: walk applying %s: %w", a, err)
			}
			path = append(path, a)
			res.Stats.States++
			if len(path) > res.Stats.MaxDepthSeen {
				res.Stats.MaxDepthSeen = len(path)
			}
			if v := r.checkStep(); v != nil {
				v.attach(sc, path)
				res.Violation = v
				return res, nil
			}
		}
	}
	return res, nil
}
