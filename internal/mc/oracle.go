package mc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rtsync/rwrnlp/internal/core"
)

// Differential oracles: independent reimplementations of the two protocols
// the R/W RNLP must degenerate to in restricted scopes. They deliberately
// share no code with core.RSM — each is a from-scratch transcription of the
// prior-art protocol's satisfaction rule — so an implementation bug in the
// RSM's queue machinery cannot cancel out of the comparison.
//
//   - Write-only scenarios: the RSM must produce exactly the mutex RNLP's
//     satisfaction order (Ward & Anderson, ECRTS 2012 — reference [19]):
//     per-resource timestamp-FIFO write queues, a request satisfied when it
//     heads every queue it occupies and no needed resource is held.
//
//   - Single-resource scenarios: the RSM must produce exactly phase-fair
//     reader/writer admission (Brandenburg & Anderson's PF-T — reference
//     [7], realized in internal/locks/phasefair): writers FIFO; the head
//     writer publishes presence as soon as its predecessor finishes,
//     blocking later readers; readers that arrived earlier drain first; a
//     completing writer releases ALL readers blocked on its phase.
//
//   - Multi-component scenarios (the declared footprints partition into
//     more than one connected component): one independent RSM per
//     component, exactly the runtime lock's sharded deployment, must
//     reproduce the single RSM's satisfaction log. This validates the
//     partitioning argument end to end: requests in different components
//     never conflict, so per-component protocol instances are
//     indistinguishable from one global instance.
//
// An oracle consumes the same action sequence as the RSM and produces its
// own satisfaction log; the runner compares the two after every step.

// oracle is a reference model driven alongside the RSM.
type oracle interface {
	name() string
	// apply observes one action at the given step (1-based logical time).
	apply(step int, a Action, sc *Scenario)
	// satisfactions returns the model's satisfaction log so far. The caller
	// owns the slice.
	satisfactions() []satEv
	// key canonically encodes the oracle's internal state for memoization.
	key() string
}

// activeOracles returns the oracles applicable to the scenario. Oracles
// require plain templates (upgradeable pairs and incremental requests have
// no counterpart in the reference protocols).
func activeOracles(sc *Scenario) []oracle {
	plain := true
	for _, tp := range sc.Templates {
		if !tp.plain() {
			plain = false
			break
		}
	}
	if !plain {
		return nil
	}
	var os []oracle
	writeOnly := true
	for _, tp := range sc.Templates {
		if len(tp.Read) > 0 {
			writeOnly = false
			break
		}
	}
	if writeOnly {
		os = append(os, newMutexOracle(sc))
	}
	if sc.Q == 1 {
		os = append(os, newPhaseFairOracle())
	}
	if spec, err := sc.Spec(); err == nil && spec.NumComponents() > 1 {
		os = append(os, newShardOracle(sc, spec))
	}
	return os
}

// ---------------------------------------------------------------------------
// Mutex RNLP oracle (write-only scenarios)

// mutexOracle models the mutex-only RNLP: every request is exclusive, every
// resource has one timestamp-ordered FIFO queue, and a request is satisfied
// at the first instant it heads all of its queues and none of its resources
// is held. With no read sharing declared, the R/W RNLP's expansion is the
// identity, so needed sets are queue sets.
type mutexOracle struct {
	queues  [][]int // queues[resource] = template indices, arrival order
	holder  []int   // holder[resource] = template index or -1
	arrival []int   // arrival[tmpl] = arrival rank (timestamp), -1 unissued
	nextArr int
	log     []satEv
}

func newMutexOracle(sc *Scenario) *mutexOracle {
	o := &mutexOracle{
		queues:  make([][]int, sc.Q),
		holder:  make([]int, sc.Q),
		arrival: make([]int, len(sc.Templates)),
	}
	for i := range o.holder {
		o.holder[i] = -1
	}
	for i := range o.arrival {
		o.arrival[i] = -1
	}
	return o
}

func (o *mutexOracle) name() string { return "mutex-rnlp" }

func (o *mutexOracle) apply(step int, a Action, sc *Scenario) {
	tp := &sc.Templates[a.Tmpl]
	switch a.Kind {
	case ActIssue:
		o.arrival[a.Tmpl] = o.nextArr
		o.nextArr++
		for _, res := range tp.Write {
			o.queues[res] = append(o.queues[res], a.Tmpl)
		}
	case ActComplete:
		for res := range o.holder {
			if o.holder[res] == a.Tmpl {
				o.holder[res] = -1
			}
		}
	case ActCancel:
		for res := range o.queues {
			o.queues[res] = removeTmpl(o.queues[res], a.Tmpl)
		}
	}
	o.satisfyLoop(step, sc)
}

// satisfyLoop applies the satisfaction rule to a fixed point, visiting
// candidates in timestamp order (the mutex RNLP satisfies in that order
// within one instant, as does the RSM's stabilization).
func (o *mutexOracle) satisfyLoop(step int, sc *Scenario) {
	for {
		progressed := false
		cands := make([]int, 0, len(o.arrival))
		for tmpl, arr := range o.arrival {
			if arr >= 0 && o.queued(tmpl) {
				cands = append(cands, tmpl)
			}
		}
		sort.Slice(cands, func(i, j int) bool { return o.arrival[cands[i]] < o.arrival[cands[j]] })
		for _, tmpl := range cands {
			if !o.headEverywhere(tmpl, sc) || o.anyHeld(tmpl, sc) {
				continue
			}
			for _, res := range sc.Templates[tmpl].Write {
				o.queues[res] = removeTmpl(o.queues[res], tmpl)
				o.holder[res] = tmpl
			}
			o.log = append(o.log, satEv{step: step, tmpl: tmpl})
			progressed = true
		}
		if !progressed {
			return
		}
	}
}

// queued reports whether tmpl still waits in some queue.
func (o *mutexOracle) queued(tmpl int) bool {
	for _, q := range o.queues {
		for _, t := range q {
			if t == tmpl {
				return true
			}
		}
	}
	return false
}

func (o *mutexOracle) headEverywhere(tmpl int, sc *Scenario) bool {
	for _, res := range sc.Templates[tmpl].Write {
		q := o.queues[res]
		if len(q) == 0 || q[0] != tmpl {
			return false
		}
	}
	return true
}

func (o *mutexOracle) anyHeld(tmpl int, sc *Scenario) bool {
	for _, res := range sc.Templates[tmpl].Write {
		if o.holder[res] != -1 {
			return true
		}
	}
	return false
}

func (o *mutexOracle) satisfactions() []satEv {
	return append([]satEv(nil), o.log...)
}

func (o *mutexOracle) key() string {
	var b strings.Builder
	for res, q := range o.queues {
		if len(q) > 0 || o.holder[res] != -1 {
			fmt.Fprintf(&b, "q%d=%v,h%d;", res, q, o.holder[res])
		}
	}
	// Arrival ranks of live (queued or holding) templates relative order.
	fmt.Fprintf(&b, "arr=%v", o.arrival)
	return b.String()
}

func removeTmpl(q []int, tmpl int) []int {
	out := q[:0]
	for _, t := range q {
		if t != tmpl {
			out = append(out, t)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Phase-fair oracle (single-resource scenarios)

// phaseFairOracle transcribes the PF-T ticket lock's admission discipline at
// the logical level (see internal/locks/phasefair for the runtime-plane
// realization):
//
//   - A reader is admitted immediately unless a writer holds the resource or
//     a head writer has published presence (is "entitled"); otherwise it
//     blocks on the current writer phase.
//   - Writers queue FIFO. The queue head publishes presence as soon as no
//     other writer holds or is present — even while readers hold — and
//     acquires once in-flight readers drain.
//   - A completing writer first releases every reader blocked on its phase
//     (they arrived before the next writer's presence), then the next writer
//     becomes present.
type phaseFairOracle struct {
	readHolders    map[int]bool
	writer         int   // holding writer template, -1 = none
	entitledWriter int   // present (head, draining readers) writer, -1 = none
	wq             []int // waiting writers beyond the present one, FIFO
	blockedReaders []int // readers blocked on the current writer phase
	log            []satEv
}

func newPhaseFairOracle() *phaseFairOracle {
	return &phaseFairOracle{
		readHolders:    map[int]bool{},
		writer:         -1,
		entitledWriter: -1,
	}
}

func (o *phaseFairOracle) name() string { return "phase-fair" }

func (o *phaseFairOracle) apply(step int, a Action, sc *Scenario) {
	tp := &sc.Templates[a.Tmpl]
	isRead := len(tp.Write) == 0
	switch a.Kind {
	case ActIssue:
		if isRead {
			if o.writer == -1 && o.entitledWriter == -1 {
				o.readHolders[a.Tmpl] = true
				o.log = append(o.log, satEv{step: step, tmpl: a.Tmpl})
			} else {
				o.blockedReaders = append(o.blockedReaders, a.Tmpl)
			}
		} else {
			o.wq = append(o.wq, a.Tmpl)
			o.promote(step)
		}
	case ActComplete:
		if isRead {
			delete(o.readHolders, a.Tmpl)
			o.promote(step)
		} else {
			o.writer = -1
			// Phase-fairness: every reader blocked on the finished phase is
			// admitted before the next writer phase begins.
			blocked := o.blockedReaders
			o.blockedReaders = nil
			for _, rt := range blocked {
				o.readHolders[rt] = true
				o.log = append(o.log, satEv{step: step, tmpl: rt})
			}
			o.promote(step)
		}
	case ActCancel:
		if isRead {
			o.blockedReaders = removeTmpl(o.blockedReaders, a.Tmpl)
		} else {
			o.wq = removeTmpl(o.wq, a.Tmpl)
			if o.entitledWriter == a.Tmpl {
				o.entitledWriter = -1
				o.promote(step)
				// If no writer took over, the readers blocked on the
				// canceled presence are admitted (the RSM's stabilization
				// re-runs the R1 satisfaction test after a cancellation).
				if o.writer == -1 && o.entitledWriter == -1 {
					blocked := o.blockedReaders
					o.blockedReaders = nil
					for _, rt := range blocked {
						o.readHolders[rt] = true
						o.log = append(o.log, satEv{step: step, tmpl: rt})
					}
				}
			}
		}
	}
}

// promote advances the writer pipeline: the queue head publishes presence
// when no writer holds or is present, and acquires once no readers hold.
func (o *phaseFairOracle) promote(step int) {
	if o.writer == -1 && o.entitledWriter == -1 && len(o.wq) > 0 {
		o.entitledWriter = o.wq[0]
		o.wq = o.wq[1:]
	}
	if o.writer == -1 && o.entitledWriter != -1 && len(o.readHolders) == 0 {
		o.writer = o.entitledWriter
		o.entitledWriter = -1
		o.log = append(o.log, satEv{step: step, tmpl: o.writer})
	}
}

func (o *phaseFairOracle) satisfactions() []satEv {
	return append([]satEv(nil), o.log...)
}

func (o *phaseFairOracle) key() string {
	rh := make([]int, 0, len(o.readHolders))
	for t := range o.readHolders {
		rh = append(rh, t)
	}
	sort.Ints(rh)
	return fmt.Sprintf("rh=%v,w=%d,e=%d,wq=%v,br=%v", rh, o.writer, o.entitledWriter, o.wq, o.blockedReaders)
}

// ---------------------------------------------------------------------------
// Sharded-RSM oracle (multi-component scenarios)

// shardOracle runs one real core.RSM per connected component of the declared
// footprints — the exact deployment the runtime lock uses when sharding —
// and routes every action to the owning component's instance. Unlike the
// other two oracles it is not an independent transcription of a prior-art
// protocol: it is a differential check of the PARTITIONING argument. If
// splitting the resource system along component boundaries could ever
// reorder, delay, or drop a satisfaction relative to the single global RSM,
// the logs diverge and the violation is reported with the schedule.
//
// Request IDs are strided (instance i mints i+n, i+2n, …) exactly as the
// runtime shards stride theirs, so the canonical state keys of the instances
// can be concatenated without collisions.
type shardOracle struct {
	spec *core.Spec
	rsms []*core.RSM

	comp   []int        // comp[tmpl] = owning component, -1 unissued
	ids    []core.ReqID // ids[tmpl] = request ID in its component's RSM
	alias  map[core.ReqID]int32
	events []core.Event
	broken bool // an instance rejected an action the global RSM accepted
}

func newShardOracle(sc *Scenario, spec *core.Spec) *shardOracle {
	n := spec.NumComponents()
	o := &shardOracle{
		spec:  spec,
		rsms:  make([]*core.RSM, n),
		comp:  make([]int, len(sc.Templates)),
		ids:   make([]core.ReqID, len(sc.Templates)),
		alias: map[core.ReqID]int32{},
	}
	for i := range o.comp {
		o.comp[i] = -1
	}
	for i := range o.rsms {
		opt := sc.Options()
		opt.FirstID = core.ReqID(i)
		opt.IDStep = core.ReqID(n)
		o.rsms[i] = core.NewRSM(spec, opt)
		o.rsms[i].SetObserver(core.ObserverFunc(func(e core.Event) {
			o.events = append(o.events, e)
		}))
	}
	return o
}

func (o *shardOracle) name() string { return "sharded-rsm" }

func (o *shardOracle) apply(step int, a Action, sc *Scenario) {
	if o.broken {
		return
	}
	tp := &sc.Templates[a.Tmpl]
	t := core.Time(step)
	switch a.Kind {
	case ActIssue:
		// Every declared footprint lies within one component by
		// construction of the union-find closure; route by any member.
		need := tp.need().IDs()
		c := o.spec.Component(need[0])
		id, err := o.rsms[c].Issue(t, tp.Read, tp.Write, a.Tmpl)
		if err != nil {
			o.broken = true
			return
		}
		o.comp[a.Tmpl] = c
		o.ids[a.Tmpl] = id
		o.alias[id] = aliasBase(a.Tmpl)
	case ActComplete:
		if err := o.rsms[o.comp[a.Tmpl]].Complete(t, o.ids[a.Tmpl]); err != nil {
			o.broken = true
		}
	case ActCancel:
		if err := o.rsms[o.comp[a.Tmpl]].CancelRequest(t, o.ids[a.Tmpl]); err != nil {
			o.broken = true
		}
	}
}

// satisfactions derives the combined log. A rejected action (broken) yields
// an impossible sentinel entry so the comparison reports a divergence rather
// than silently truncating.
func (o *shardOracle) satisfactions() []satEv {
	var log []satEv
	for _, e := range o.events {
		if e.Type != core.EvSatisfied {
			continue
		}
		if al, ok := o.alias[e.Req]; ok {
			log = append(log, satEv{step: int(e.T), tmpl: int(al) / 3})
		}
	}
	if o.broken {
		log = append(log, satEv{step: -1, tmpl: -1})
	}
	return log
}

func (o *shardOracle) key() string {
	var b strings.Builder
	for i, m := range o.rsms {
		fmt.Fprintf(&b, "s%d:", i)
		b.WriteString(m.StateKey(func(id core.ReqID) int32 { return o.alias[id] }))
		b.WriteByte('|')
	}
	if o.broken {
		b.WriteString("!broken")
	}
	return b.String()
}
