package mc

import (
	"math/rand"
	"testing"
)

// Differential unit tests OUTSIDE the checker: fixed, hand-analyzed
// schedules (no DFS involved) asserting that the RSM's satisfaction order
// equals the prior-art protocols' disciplines — the mutex RNLP's
// timestamp-FIFO order on write-only workloads (locks/mutexrnlp's
// semantics) and phase-fair admission on single-resource workloads
// (locks/phasefair's semantics). Both are seeded from the paper's Fig. 2
// running example; the expected logs are hand-computed literals, so these
// tests catch a bug even if the oracle models and the RSM drifted together.

// applySchedule runs a fixed schedule, asserting every per-step check
// (invariants + oracle comparison) stays clean, and returns the RSM's
// canonical satisfaction log.
func applySchedule(t *testing.T, sc *Scenario, schedule []Action) []satEv {
	t.Helper()
	r, err := newRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range schedule {
		if err := r.apply(a); err != nil {
			t.Fatalf("step %d (%s): %v", i+1, a, err)
		}
		if v := r.checkStep(); v != nil {
			v.attach(sc, schedule[:i+1])
			t.Fatalf("step %d (%s):\n%s", i+1, a, v)
		}
	}
	log := r.rsmSatLog()
	canonicalizeSatLog(log)
	return log
}

func assertLog(t *testing.T, got, want []satEv) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("satisfaction log:\n got %v\nwant %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("satisfaction log differs at %d:\n got %v\nwant %v", i, got, want)
		}
	}
}

// The Fig. 2 example with every request issued as a write — exactly how
// locks/mutexrnlp degenerates the engine — must reproduce the mutex RNLP's
// timestamp-FIFO satisfaction order:
//
//	R1 w{a,b}, R2 w{a,b,c}, R3 w{c}, R4 w{c}, R5 w{a,b}  (a,b,c = 0,1,2)
//
// R1 is satisfied on issue; R1's completion satisfies R2 (head of every
// queue); R2's completion satisfies R3 (next in WQ(c)) and R5 (queues a,b
// now empty) in the same instant; R3's completion satisfies R4.
func TestDifferentialMutexWriteOnlyFig2(t *testing.T) {
	sc := &Scenario{
		Name:      "fig2-writeonly",
		Q:         3,
		Templates: mustTemplates("w:0+1 w:0+1+2 w:2 w:2 w:0+1"),
	}
	if len(activeOracles(sc)) != 1 {
		t.Fatal("mutex oracle not active on a write-only scenario")
	}
	schedule := []Action{
		{Tmpl: 0, Kind: ActIssue},    // t=1: R1 satisfied immediately
		{Tmpl: 1, Kind: ActIssue},    // t=2: R2 waits behind R1
		{Tmpl: 2, Kind: ActIssue},    // t=3: R3 waits behind R2 in WQ(c)
		{Tmpl: 3, Kind: ActIssue},    // t=4: R4 waits behind R3
		{Tmpl: 0, Kind: ActComplete}, // t=5: R2 satisfied
		{Tmpl: 4, Kind: ActIssue},    // t=6: R5 waits behind R2 on a,b
		{Tmpl: 1, Kind: ActComplete}, // t=7: R3 and R5 satisfied
		{Tmpl: 2, Kind: ActComplete}, // t=8: R4 satisfied
		{Tmpl: 4, Kind: ActComplete}, // t=9
		{Tmpl: 3, Kind: ActComplete}, // t=10
	}
	got := applySchedule(t, sc, schedule)
	assertLog(t, got, []satEv{
		{step: 1, tmpl: 0},
		{step: 5, tmpl: 1},
		{step: 7, tmpl: 2},
		{step: 7, tmpl: 4},
		{step: 8, tmpl: 3},
	})
}

// Single-resource R/W traffic (the ℓc contention of Fig. 2, extended) must
// reproduce phase-fair admission — locks/phasefair's discipline:
//
//   - readers blocked on a write phase are ALL admitted when it ends,
//     before any queued writer;
//   - a reader arriving while the next writer is present (entitled,
//     draining earlier readers) waits for that writer's phase;
//   - the writer acquires once the earlier readers drain.
func TestDifferentialPhaseFairSingleResourceFig2(t *testing.T) {
	sc := &Scenario{
		Name:      "fig2-singleresource",
		Q:         1,
		Templates: mustTemplates("w:0 r:0 r:0 w:0 r:0"),
	}
	if len(activeOracles(sc)) != 1 {
		t.Fatal("phase-fair oracle not active on a single-resource scenario")
	}
	schedule := []Action{
		{Tmpl: 0, Kind: ActIssue},    // t=1: W1 satisfied immediately
		{Tmpl: 1, Kind: ActIssue},    // t=2: Ra blocked on W1's phase
		{Tmpl: 2, Kind: ActIssue},    // t=3: Rb blocked on W1's phase
		{Tmpl: 3, Kind: ActIssue},    // t=4: W2 queues behind W1
		{Tmpl: 0, Kind: ActComplete}, // t=5: read phase {Ra,Rb} admitted before W2
		{Tmpl: 4, Kind: ActIssue},    // t=6: Rc blocked — W2 is present (entitled)
		{Tmpl: 1, Kind: ActComplete}, // t=7: Ra done
		{Tmpl: 2, Kind: ActComplete}, // t=8: Rb done → readers drained → W2 acquires
		{Tmpl: 3, Kind: ActComplete}, // t=9: W2 done → Rc admitted
		{Tmpl: 4, Kind: ActComplete}, // t=10
	}
	got := applySchedule(t, sc, schedule)
	assertLog(t, got, []satEv{
		{step: 1, tmpl: 0},
		{step: 5, tmpl: 1},
		{step: 5, tmpl: 2},
		{step: 8, tmpl: 3},
		{step: 9, tmpl: 4},
	})
}

// Randomized differential sweep: many seeded episodes over random write-only
// and single-resource scopes, applying random legal actions and letting the
// per-step oracle comparison run. No exploration machinery — just the
// harness — so a divergence points directly at a semantic mismatch.
func TestDifferentialRandomizedEpisodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dsls := []struct {
		name string
		q    int
		dsl  string
	}{
		{"writeonly", 3, "w:0 w:0+1 w:1+2 w:0+2 w:2"},
		{"singleres", 1, "w:0 r:0 r:0 w:0 r:0 w:0"},
	}
	for _, d := range dsls {
		sc := &Scenario{Name: d.name, Q: d.q, Templates: mustTemplates(d.dsl)}
		if len(activeOracles(sc)) == 0 {
			t.Fatalf("%s: no oracle active", d.name)
		}
		for ep := 0; ep < 50; ep++ {
			r, err := newRunner(sc)
			if err != nil {
				t.Fatal(err)
			}
			var path []Action
			for {
				enab, _ := r.enabled()
				if len(enab) == 0 {
					if !r.terminal() {
						t.Fatalf("%s ep %d: stuck after %v", d.name, ep, path)
					}
					break
				}
				a := enab[rng.Intn(len(enab))]
				if err := r.apply(a); err != nil {
					t.Fatalf("%s ep %d: %s: %v", d.name, ep, a, err)
				}
				path = append(path, a)
				if v := r.checkStep(); v != nil {
					v.attach(sc, path)
					t.Fatalf("%s ep %d:\n%s", d.name, ep, v)
				}
			}
		}
	}
}

// Two disjoint components driven through an interleaved schedule: the
// sharded deployment (one RSM per component) must reproduce the global
// RSM's satisfaction log step for step. The expected log is hand-computed:
// within each component phase-fair admission applies independently, and
// actions in the other component never shift a satisfaction.
func TestDifferentialShardedComponents(t *testing.T) {
	sc := Preset("shards4x2")
	names := func() []string {
		var ns []string
		for _, o := range activeOracles(sc) {
			ns = append(ns, o.name())
		}
		return ns
	}()
	if len(names) != 1 || names[0] != "sharded-rsm" {
		t.Fatalf("oracles on shards4x2 = %v, want [sharded-rsm]", names)
	}
	// Templates: 0=r{0,1} 1=w{0,1} 2=r{2,3} 3=w{2,3}.
	schedule := []Action{
		{Tmpl: 1, Kind: ActIssue},    // t=1: w{0,1} satisfied immediately
		{Tmpl: 3, Kind: ActIssue},    // t=2: w{2,3} satisfied immediately (other component)
		{Tmpl: 0, Kind: ActIssue},    // t=3: r{0,1} blocked behind writer
		{Tmpl: 2, Kind: ActIssue},    // t=4: r{2,3} blocked behind writer
		{Tmpl: 3, Kind: ActComplete}, // t=5: r{2,3} admitted — component {0,1} unaffected
		{Tmpl: 1, Kind: ActComplete}, // t=6: r{0,1} admitted
		{Tmpl: 2, Kind: ActComplete}, // t=7
		{Tmpl: 0, Kind: ActComplete}, // t=8
	}
	got := applySchedule(t, sc, schedule)
	assertLog(t, got, []satEv{
		{step: 1, tmpl: 1},
		{step: 2, tmpl: 3},
		{step: 5, tmpl: 2},
		{step: 6, tmpl: 0},
	})
}

// Cancellation routed to the owning component instance: withdrawing a queued
// writer admits the reader blocked behind it in that component only.
func TestDifferentialShardedCancel(t *testing.T) {
	sc := Preset("shards4x2")
	schedule := []Action{
		{Tmpl: 1, Kind: ActIssue},    // t=1: w{0,1} satisfied
		{Tmpl: 3, Kind: ActIssue},    // t=2: w{2,3} satisfied
		{Tmpl: 0, Kind: ActIssue},    // t=3: r{0,1} blocked
		{Tmpl: 2, Kind: ActIssue},    // t=4: r{2,3} blocked
		{Tmpl: 2, Kind: ActCancel},   // t=5: r{2,3} withdraws while queued
		{Tmpl: 1, Kind: ActComplete}, // t=6: r{0,1} admitted
		{Tmpl: 0, Kind: ActComplete}, // t=7
		{Tmpl: 3, Kind: ActComplete}, // t=8
	}
	got := applySchedule(t, sc, schedule)
	assertLog(t, got, []satEv{
		{step: 1, tmpl: 1},
		{step: 2, tmpl: 3},
		{step: 6, tmpl: 0},
	})
}
