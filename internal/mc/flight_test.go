package mc

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/rtsync/rwrnlp/internal/obs"
)

// Tentpole integration: a model-checker violation replayed into the flight
// recorder yields a dump that round-trips encode → decode → encode and
// renders as a Perfetto trace — so a counterexample found offline can be
// inspected with exactly the tooling (cmd/flightdump, the /debug/rnlp/flight
// endpoint format) used for a production stall.
func TestReplayViolationIntoFlightRecorder(t *testing.T) {
	sc := &Scenario{
		Name:                 "inject-overtake",
		Q:                    2,
		Templates:            mustTemplates("w:0 w:0+1 w:1"),
		ChaosSkipWQHeadCheck: true,
	}
	res, err := Explore(sc, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v := res.Violation
	if v == nil {
		t.Fatal("injected overtaking bug not caught")
	}

	fl := obs.NewFlightRecorder(1, 256)
	rv, err := ReplayObserved(v.Scenario, v.Path, fl.ShardObserver(0))
	if err != nil {
		t.Fatal(err)
	}
	if rv == nil || rv.Kind != v.Kind {
		t.Fatalf("observed replay did not reproduce the %s violation: %v", v.Kind, rv)
	}

	d := fl.Dump()
	if len(d.Records) == 0 {
		t.Fatal("replay produced no flight records")
	}
	// Every step of the violating schedule at least issues a request, so the
	// ring must hold issuance events with the replay's logical step times.
	issues := 0
	for _, rec := range d.Records {
		if rec.Type == "issued" {
			issues++
		}
	}
	if issues == 0 {
		t.Fatalf("no issuance events in the dump: %+v", d.Records)
	}

	var first bytes.Buffer
	if err := d.WriteJSON(&first); err != nil {
		t.Fatal(err)
	}
	d2, err := obs.ParseFlightDump(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("decoding own dump: %v\n%s", err, first.String())
	}
	var second bytes.Buffer
	if err := d2.WriteJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("dump did not round-trip:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}

	var trace bytes.Buffer
	if err := d2.WritePerfetto(&trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto render of replay dump is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("perfetto render of replay dump has no events")
	}
}
