package mc

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/obs"
)

// VKind classifies a violation.
type VKind uint8

const (
	// VInvariant: core.CheckInvariants reported a broken structural
	// invariant (I1–I9).
	VInvariant VKind = iota
	// VOracle: a differential oracle's satisfaction log diverged from the
	// RSM's.
	VOracle
	// VDeadlock: a non-terminal state with no enabled action.
	VDeadlock
	// VBound: a Theorem 1/2 acquisition-delay envelope was exceeded.
	VBound
	// VFastPath: the runtime reader fast path's admission implication
	// failed — a fresh all-read request issued into a writer-free component
	// (core.WriterFree) was not satisfied immediately by the RSM.
	VFastPath
)

func (k VKind) String() string {
	switch k {
	case VInvariant:
		return "invariant"
	case VOracle:
		return "oracle-divergence"
	case VDeadlock:
		return "deadlock"
	case VBound:
		return "bound"
	case VFastPath:
		return "fastpath-admission"
	default:
		return fmt.Sprintf("vkind(%d)", uint8(k))
	}
}

// Violation is a checked property failing on a concrete schedule. Path is
// the full schedule up to (and including) the detecting step, sufficient to
// reproduce the failure deterministically via Replay.
type Violation struct {
	Kind     VKind
	Step     int      // 1-based logical step at which the violation surfaced
	Details  []string // property-specific diagnostics
	Path     []Action
	Scenario *Scenario
}

// attach records the scenario and a private copy of the schedule.
func (v *Violation) attach(sc *Scenario, path []Action) {
	v.Scenario = sc
	v.Path = append([]Action(nil), path...)
}

func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s violation at step %d (schedule length %d)\n", v.Kind, v.Step, len(v.Path))
	for _, d := range v.Details {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	b.WriteString(v.Script())
	return b.String()
}

// Script renders the violation as a deterministic replay script:
//
//	mccheck-replay v1
//	scenario <name>
//	q <n>
//	placeholders|cancels|chaos-skip-wq-head-check   (flags, if set)
//	tmpl <dsl>                                      (one per template)
//	-- schedule
//	<step>. <action>
//
// The script is self-contained: ParseReplay rebuilds the scenario and the
// schedule, and Replay re-executes it against a fresh RSM.
func (v *Violation) Script() string {
	var b strings.Builder
	b.WriteString("mccheck-replay v1\n")
	sc := v.Scenario
	name := sc.Name
	if name == "" {
		name = "unnamed"
	}
	fmt.Fprintf(&b, "scenario %s\n", name)
	fmt.Fprintf(&b, "q %d\n", sc.Q)
	if sc.Placeholders {
		b.WriteString("placeholders\n")
	}
	if sc.Cancels {
		b.WriteString("cancels\n")
	}
	if sc.ChaosSkipWQHeadCheck {
		b.WriteString("chaos-skip-wq-head-check\n")
	}
	if sc.ChaosDeafFreshReads {
		b.WriteString("chaos-deaf-fresh-reads\n")
	}
	if sc.ChaosDeafFreshWrites {
		b.WriteString("chaos-deaf-fresh-writes\n")
	}
	for _, tp := range sc.Templates {
		fmt.Fprintf(&b, "tmpl %s\n", tp.Signature())
	}
	b.WriteString("-- schedule\n")
	for i, a := range v.Path {
		fmt.Fprintf(&b, "%d. %s\n", i+1, a)
	}
	return b.String()
}

// ParseReplay parses a replay script produced by Violation.Script.
func ParseReplay(r io.Reader) (*Scenario, []Action, error) {
	sc := &Scenario{}
	var path []Action
	inSchedule := false
	scan := bufio.NewScanner(r)
	first := true
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := strings.TrimSpace(scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if first {
			if line != "mccheck-replay v1" {
				return nil, nil, fmt.Errorf("mc: line %d: not a replay script (want 'mccheck-replay v1' header)", lineNo)
			}
			first = false
			continue
		}
		if line == "-- schedule" {
			inSchedule = true
			continue
		}
		if inSchedule {
			// "<step>. <action>" — the step number is cosmetic.
			if _, rest, ok := strings.Cut(line, ". "); ok {
				line = rest
			}
			a, err := parseAction(line)
			if err != nil {
				return nil, nil, fmt.Errorf("mc: line %d: %w", lineNo, err)
			}
			path = append(path, a)
			continue
		}
		key, rest, _ := strings.Cut(line, " ")
		switch key {
		case "scenario":
			sc.Name = rest
		case "q":
			if _, err := fmt.Sscanf(rest, "%d", &sc.Q); err != nil {
				return nil, nil, fmt.Errorf("mc: line %d: bad q %q", lineNo, rest)
			}
		case "placeholders":
			sc.Placeholders = true
		case "cancels":
			sc.Cancels = true
		case "chaos-skip-wq-head-check":
			sc.ChaosSkipWQHeadCheck = true
		case "chaos-deaf-fresh-reads":
			sc.ChaosDeafFreshReads = true
		case "chaos-deaf-fresh-writes":
			sc.ChaosDeafFreshWrites = true
		case "tmpl":
			tpl, err := ParseTemplates(rest)
			if err != nil {
				return nil, nil, fmt.Errorf("mc: line %d: %w", lineNo, err)
			}
			sc.Templates = append(sc.Templates, tpl...)
		default:
			return nil, nil, fmt.Errorf("mc: line %d: unknown directive %q", lineNo, key)
		}
	}
	if err := scan.Err(); err != nil {
		return nil, nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}
	return sc, path, nil
}

// Replay deterministically re-executes a schedule against a fresh RSM,
// running the full per-step checks, and returns the violation it reproduces
// (nil if the schedule is clean — e.g. after the underlying bug is fixed).
// When traceOut is non-nil a Perfetto/Chrome trace of the replay is written
// to it, one logical step per time unit, so the violating interleaving can
// be read on a timeline.
func Replay(sc *Scenario, path []Action, traceOut io.Writer) (*Violation, error) {
	if traceOut == nil {
		return ReplayObserved(sc, path)
	}
	tb := obs.NewTraceBuilder()
	tb.TimeDiv = 1 // logical steps render 1:1 as microseconds
	v, err := ReplayObserved(sc, path, tb)
	if err != nil {
		return v, err
	}
	if _, werr := tb.WriteTo(traceOut); werr != nil {
		return v, fmt.Errorf("mc: writing trace: %w", werr)
	}
	return v, nil
}

// ReplayObserved is Replay with arbitrary protocol observers attached to the
// fresh RSM — e.g. an obs.FlightRecorder shard observer, so a model-checker
// violation is captured as a flight dump and can be inspected offline with
// the same tooling (cmd/flightdump, FlightDump.Attribution) as a production
// stall. Event times are logical model-checker steps, not ticks.
func ReplayObserved(sc *Scenario, path []Action, observers ...core.Observer) (*Violation, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	r, err := newRunner(sc, observers...)
	if err != nil {
		return nil, err
	}
	var v *Violation
	for i, a := range path {
		if err := r.apply(a); err != nil {
			return nil, fmt.Errorf("mc: replay step %d (%s): %w", i+1, a, err)
		}
		if v = r.checkStep(); v != nil {
			v.attach(sc, path[:i+1])
			break
		}
	}
	if v == nil {
		// The schedule ran clean step-wise; check end-of-path properties.
		if enab, sym := r.enabled(); len(enab) == 0 && sym == 0 && !r.terminal() {
			v = &Violation{Kind: VDeadlock, Step: len(path),
				Details: []string{"no action enabled but templates remain unfinished"}}
			v.attach(sc, path)
		} else if r.terminal() {
			if bv := checkBounds(r, len(sc.Templates)); bv != nil {
				v = bv
				v.attach(sc, path)
			}
		}
	}
	return v, nil
}
