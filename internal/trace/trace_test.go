package trace

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"github.com/rtsync/rwrnlp"
	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/workload"
)

var bg = context.Background()

// A hand-driven RSM execution (the Fig. 2 running example) passes all
// checks.
func TestCheckFig2(t *testing.T) {
	b := core.NewSpecBuilder(3)
	if err := b.DeclareReadGroup(0, 1); err != nil {
		t.Fatal(err)
	}
	m := core.NewRSM(b.Build(), core.Options{})
	rec := &Recorder{}
	m.SetObserver(rec)

	issue := func(at core.Time, read, write []core.ResourceID) core.ReqID {
		id, err := m.Issue(at, read, write, nil)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	w11 := issue(1, nil, []core.ResourceID{0, 1})
	w21 := issue(2, nil, []core.ResourceID{0, 1, 2})
	r31 := issue(3, []core.ResourceID{2}, nil)
	r41 := issue(4, []core.ResourceID{2}, nil)
	_ = m.Complete(5, w11)
	_ = m.Complete(6, r41)
	r51 := issue(7, []core.ResourceID{0, 1}, nil)
	_ = m.Complete(8, r31)
	_ = m.Complete(10, w21)
	_ = m.Complete(12, r51)

	res := Check(rec.Events())
	if !res.Ok() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Events == 0 {
		t.Fatal("no events captured")
	}
}

// A corrupted stream is flagged: double satisfaction, unknown requests,
// overlapping write locks.
func TestCheckDetectsCorruption(t *testing.T) {
	mk := func(events ...core.Event) Result { return Check(events) }

	issued := func(id core.ReqID, w ...core.ResourceID) core.Event {
		return core.Event{Type: core.EvIssued, Req: id, Kind: core.KindWrite, Write: core.NewResourceSet(w...)}
	}
	sat := func(id core.ReqID, w ...core.ResourceID) core.Event {
		return core.Event{Type: core.EvSatisfied, Req: id, Resources: core.NewResourceSet(w...), Write: core.NewResourceSet(w...)}
	}

	if r := mk(sat(1, 0)); r.Ok() {
		t.Error("satisfaction of unknown request not flagged")
	}
	if r := mk(issued(1, 0), sat(1, 0), sat(1, 0)); r.Ok() {
		t.Error("double satisfaction not flagged")
	}
	// Two overlapping write locks.
	ev := []core.Event{issued(1, 0), issued(2, 0), sat(1, 0), sat(2, 0)}
	ev[1].Write = core.NewResourceSet(0)
	if r := mk(ev...); r.Ok() {
		t.Error("overlapping write locks not flagged")
	}
	// Satisfied but never completed.
	if r := mk(issued(1, 0), sat(1, 0)); r.Ok() {
		t.Error("unbalanced lifecycle not flagged")
	}
	// FIFO violation: later conflicting write satisfied first.
	ev2 := []core.Event{issued(1, 0), issued(2, 0), sat(2, 0)}
	if r := mk(ev2...); r.Ok() {
		t.Error("writer FIFO violation not flagged")
	}
}

// The runtime protocol under concurrent load produces a stream that passes
// every check, in all option combinations and with all request forms.
func TestCheckRuntimeExecution(t *testing.T) {
	for _, opt := range []rwrnlp.Options{{}, {Placeholders: true}} {
		b := rwrnlp.NewSpecBuilder(4)
		if err := b.DeclareRequest([]rwrnlp.ResourceID{0, 1}, nil); err != nil {
			t.Fatal(err)
		}
		if err := b.DeclareRequest([]rwrnlp.ResourceID{2, 3}, nil); err != nil {
			t.Fatal(err)
		}
		p := rwrnlp.New(b.Build(), opt)
		rec := &Recorder{}
		p.SetTracer(rec)

		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)))
				r0 := rwrnlp.ResourceID(g % 4)
				r1 := rwrnlp.ResourceID((g + 1) % 4)
				// Incremental form needs a same-component partner (components
				// are {0,1} and {2,3}); r1 may cross components, which the
				// plain write path serves via the ordered slow path.
				rInc := r0 ^ 1
				for i := 0; i < 150; i++ {
					switch rng.Intn(4) {
					case 0:
						tok, err := p.Read(bg, r0)
						if err != nil {
							t.Error(err)
							return
						}
						p.Release(tok)
					case 1:
						tok, err := p.Write(bg, r0, r1)
						if err != nil {
							t.Error(err)
							return
						}
						p.Release(tok)
					case 2:
						u, err := p.AcquireUpgradeable(bg, r0)
						if err != nil {
							t.Error(err)
							return
						}
						if u.Reading() {
							if rng.Intn(2) == 0 {
								if err := u.Upgrade(bg); err != nil {
									t.Error(err)
									return
								}
								u.Release()
							} else {
								u.ReleaseRead()
							}
						} else {
							u.Release()
						}
					case 3:
						inc, err := p.AcquireIncremental(bg, nil, []rwrnlp.ResourceID{r0, rInc}, nil, []rwrnlp.ResourceID{r0})
						if err != nil {
							t.Error(err)
							return
						}
						if err := inc.Acquire(bg, rInc); err != nil {
							t.Error(err)
							return
						}
						inc.Release()
					}
				}
			}(g)
		}
		wg.Wait()

		res := Check(rec.Events())
		if !res.Ok() {
			t.Fatalf("opts %+v: %d events, violations: %v", opt, res.Events, res.Violations[:min(3, len(res.Violations))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Cross-validation: full simulator runs — every protocol variant, both
// progress mechanisms — produce event streams that pass the independent
// trace checker.
func TestCheckSimulatorExecutions(t *testing.T) {
	params := workload.Params{
		M: 4, NumTasks: 12, Util: workload.UtilUniformLight,
		NumResources: 6, AccessProb: 1, ReqPerJob: 3,
		NestedProb: 0.5, ReadRatio: 0.6, MixedProb: 0.2,
		UpgradeProb: 0.3, IncrementalProb: 0.3,
		CSMin: 50_000, CSMax: 500_000,
	}
	for seed := int64(1); seed <= 5; seed++ {
		for _, prog := range []sim.Progress{sim.SpinNP, sim.Donation} {
			rec := &Recorder{}
			rng := rand.New(rand.NewSource(seed))
			sys := workload.Generate(rng, params)
			s, err := sim.New(sim.Config{
				System: sys, Policy: sched.EDF, Progress: prog,
				Protocol: sim.ProtoRWRNLP, RSM: core.Options{Placeholders: seed%2 == 0},
				Horizon: 300_000_000, Seed: seed, Trace: rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.Run()
			// The horizon cuts executions mid-flight: use the truncated check.
			res := CheckTruncated(rec.Events())
			if !res.Ok() {
				t.Fatalf("seed %d %v: %d events, violations: %v", seed, prog, res.Events, res.Violations[:min(3, len(res.Violations))])
			}
			if res.Events == 0 {
				t.Fatalf("seed %d: no events traced", seed)
			}
		}
	}
}

// Branch coverage for the checker's lifecycle rules.
func TestCheckLifecycleBranches(t *testing.T) {
	issuedR := func(id core.ReqID, r ...core.ResourceID) core.Event {
		return core.Event{Type: core.EvIssued, Req: id, Kind: core.KindRead, Read: core.NewResourceSet(r...)}
	}
	satR := func(id core.ReqID, r ...core.ResourceID) core.Event {
		return core.Event{Type: core.EvSatisfied, Req: id, Resources: core.NewResourceSet(r...), Read: core.NewResourceSet(r...)}
	}
	done := func(id core.ReqID) core.Event { return core.Event{Type: core.EvCompleted, Req: id} }

	// Double issue.
	if Check([]core.Event{issuedR(1, 0), issuedR(1, 0)}).Ok() {
		t.Error("double issue accepted")
	}
	// Entitlement of a satisfied request.
	bad := []core.Event{issuedR(1, 0), satR(1, 0), {Type: core.EvEntitled, Req: 1}, done(1)}
	if Check(bad).Ok() {
		t.Error("entitlement after satisfaction accepted")
	}
	// Completion of an unknown request.
	if Check([]core.Event{done(9)}).Ok() {
		t.Error("unknown completion accepted")
	}
	// Double completion.
	if Check([]core.Event{issuedR(1, 0), satR(1, 0), done(1), done(1)}).Ok() {
		t.Error("double completion accepted")
	}
	// Grant to unknown request.
	if Check([]core.Event{{Type: core.EvGranted, Req: 3, Resources: core.NewResourceSet(0)}}).Ok() {
		t.Error("grant to unknown request accepted")
	}
	// Cancellation while holding resources.
	holdCancel := []core.Event{
		issuedR(1, 0), satR(1, 0),
		{Type: core.EvCanceled, Req: 1},
	}
	if Check(holdCancel).Ok() {
		t.Error("cancellation of a holder accepted")
	}
	// Read locks coexist (no false T1 alarms).
	good := []core.Event{
		issuedR(1, 0), satR(1, 0),
		issuedR(2, 0), satR(2, 0),
		done(1), done(2),
	}
	if res := Check(good); !res.Ok() {
		t.Errorf("concurrent readers flagged: %v", res.Violations)
	}
	// Truncated stream passes CheckTruncated but not Check.
	trunc := []core.Event{issuedR(1, 0), satR(1, 0)}
	if Check(trunc).Ok() {
		t.Error("Check accepted a truncated stream")
	}
	if !CheckTruncated(trunc).Ok() {
		t.Error("CheckTruncated rejected a legitimate truncation")
	}
	// T4: satisfaction while a conflicting entitled request waits.
	t4 := []core.Event{
		{Type: core.EvIssued, Req: 1, Kind: core.KindWrite, Write: core.NewResourceSet(0)},
		{Type: core.EvEntitled, Req: 1},
		issuedR(2, 0), satR(2, 0), done(2),
	}
	if Check(t4).Ok() {
		t.Error("overtaking an entitled conflicting request accepted")
	}
	// Recorder length.
	rec := &Recorder{}
	rec.Observe(core.Event{Type: core.EvIssued, Req: 1})
	if rec.Len() != 1 || len(rec.Events()) != 1 {
		t.Error("recorder bookkeeping wrong")
	}
}
