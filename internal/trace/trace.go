// Package trace records protocol event streams and machine-checks them
// against the paper's correctness properties. It operates purely on
// core.Event values, so any integration of the RSM — the simulator, the
// runtime locks, or user code — can be validated by attaching a Recorder as
// the RSM's observer and running Check over the captured stream.
//
// Checked properties:
//
//	T1 Mutual exclusion: a write-mode lock excludes every other holder of
//	   the resource; read-mode locks coexist.
//	T2 Balanced lifecycle: satisfactions/grants only for issued, pending
//	   requests; completions only for holders; no double transitions.
//	T3 Writer FIFO: conflicting write requests are satisfied in issuance
//	   (timestamp) order — the consequence of Rule W1 and Lemma 6.
//	T4 Corollaries 1–2: once a request is entitled, no conflicting request
//	   is satisfied before it.
package trace

import (
	"fmt"
	"sync"

	"github.com/rtsync/rwrnlp/internal/core"
)

// Recorder captures an event stream. It implements core.Observer and is
// safe for concurrent use (runtime-plane RSMs invoke it under their own
// lock, but defensive locking keeps it safe anywhere).
type Recorder struct {
	mu     sync.Mutex
	events []core.Event
}

// Observe implements core.Observer.
func (r *Recorder) Observe(e core.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the captured stream.
func (r *Recorder) Events() []core.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of captured events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Result of a Check run.
type Result struct {
	Events     int
	Violations []string
}

// Ok reports whether no property was violated.
func (r Result) Ok() bool { return len(r.Violations) == 0 }

// reqShadow is the checker's model of one request.
type reqShadow struct {
	id        core.ReqID
	kind      core.Kind
	read      core.ResourceSet // read-mode lock set
	write     core.ResourceSet // write-mode lock set
	entitled  bool
	satisfied bool
	complete  bool
	held      core.ResourceSet // currently granted (incremental-aware)
}

func (s *reqShadow) conflictsWith(o *reqShadow) bool {
	all := core.Union(s.read, s.write)
	oAll := core.Union(o.read, o.write)
	return s.write.Intersects(oAll) || o.write.Intersects(all)
}

// Check replays the event stream through a shadow lock model and verifies
// properties T1–T4, including the lifecycle epilogue (every satisfaction
// eventually completed). For a stream truncated mid-execution — e.g. a
// simulation cut at its horizon — use CheckTruncated. It does not need the
// RSM or the Spec: events carry the mode sets.
func Check(events []core.Event) Result {
	return check(events, true)
}

// CheckTruncated is Check without the end-of-stream lifecycle epilogue, for
// executions that were cut off with requests legitimately still in flight.
func CheckTruncated(events []core.Event) Result {
	return check(events, false)
}

func check(events []core.Event, epilogue bool) Result {
	res := Result{Events: len(events)}
	fail := func(format string, args ...any) {
		if len(res.Violations) < 50 {
			res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		}
	}
	reqs := map[core.ReqID]*reqShadow{}
	// writeHolder/readHolders per resource, reconstructed from grants.
	type holders struct {
		write core.ReqID
		reads map[core.ReqID]bool
	}
	hold := map[core.ResourceID]*holders{}
	h := func(a core.ResourceID) *holders {
		if hold[a] == nil {
			hold[a] = &holders{reads: map[core.ReqID]bool{}}
		}
		return hold[a]
	}

	lock := func(e core.Event, s *reqShadow, set core.ResourceSet) {
		set.ForEach(func(a core.ResourceID) bool {
			hh := h(a)
			writeMode := s.write.Has(a)
			if writeMode {
				if hh.write != 0 {
					fail("t=%d: T1: double write lock on %d (%d and %d)", e.T, a, hh.write, s.id)
				}
				if len(hh.reads) > 0 {
					fail("t=%d: T1: write lock on %d with readers present", e.T, a)
				}
				hh.write = s.id
			} else {
				if hh.write != 0 {
					fail("t=%d: T1: read lock on %d while write locked by %d", e.T, a, hh.write)
				}
				hh.reads[s.id] = true
			}
			s.held.Add(a)
			return true
		})
	}

	var order []core.ReqID // issuance order for T3
	for _, e := range events {
		s := reqs[e.Req]
		switch e.Type {
		case core.EvIssued:
			if s != nil {
				fail("t=%d: T2: request %d issued twice", e.T, e.Req)
				continue
			}
			reqs[e.Req] = &reqShadow{
				id: e.Req, kind: e.Kind,
				read: e.Read.Clone(), write: e.Write.Clone(),
			}
			order = append(order, e.Req)

		case core.EvEntitled:
			if s == nil || s.satisfied || s.complete {
				fail("t=%d: T2: entitlement of %d in invalid state", e.T, e.Req)
				continue
			}
			s.entitled = true

		case core.EvSatisfied:
			if s == nil {
				fail("t=%d: T2: satisfaction of unknown request %d", e.T, e.Req)
				continue
			}
			if s.satisfied || s.complete {
				fail("t=%d: T2: double satisfaction of %d", e.T, e.Req)
				continue
			}
			// T4 (Cors. 1–2): no conflicting ENTITLED request may be
			// overtaken.
			for _, o := range reqs {
				if o.entitled && !o.satisfied && !o.complete && o.id != s.id && s.conflictsWith(o) {
					fail("t=%d: T4: %d satisfied while conflicting entitled %d waits", e.T, s.id, o.id)
				}
			}
			// T3: conflicting writes satisfy in issuance order.
			if s.kind == core.KindWrite {
				for _, o := range reqs {
					if o.kind == core.KindWrite && o.id < s.id && !o.satisfied && !o.complete && s.conflictsWith(o) {
						fail("t=%d: T3: write %d satisfied before earlier conflicting write %d", e.T, s.id, o.id)
					}
				}
			}
			s.satisfied = true
			// Lock exactly what the event reports granted (handles
			// incremental partial holders that became satisfied).
			grant := e.Resources.Clone()
			grant.SubtractWith(s.held)
			lock(e, s, grant)

		case core.EvGranted:
			if s == nil || s.complete {
				fail("t=%d: T2: grant to invalid request %d", e.T, e.Req)
				continue
			}
			grant := e.Resources.Clone()
			grant.SubtractWith(s.held)
			lock(e, s, grant)

		case core.EvCompleted, core.EvReadSegmentDone:
			if s == nil {
				fail("t=%d: T2: completion of unknown request %d", e.T, e.Req)
				continue
			}
			if s.complete {
				fail("t=%d: T2: double completion of %d", e.T, e.Req)
				continue
			}
			s.held.ForEach(func(a core.ResourceID) bool {
				hh := h(a)
				if hh.write == s.id {
					hh.write = 0
				}
				delete(hh.reads, s.id)
				return true
			})
			s.held = core.ResourceSet{}
			s.complete = true

		case core.EvCanceled:
			if s == nil {
				fail("t=%d: T2: cancellation of unknown request %d", e.T, e.Req)
				continue
			}
			if !s.held.Empty() {
				fail("t=%d: T2: canceled request %d still held resources", e.T, e.Req)
			}
			s.complete = true

		case core.EvPlaceholdersRemoved:
			// Bookkeeping only.
		}
	}
	// T2 epilogue: every satisfied request must have completed.
	if epilogue {
		for _, s := range reqs {
			if s.satisfied && !s.complete {
				fail("end: T2: request %d satisfied but never completed", s.id)
			}
		}
	}
	_ = order
	return res
}
