package taskmodel

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/simtime"
)

// JSON (de)serialization of task systems, so scenarios can be stored in
// files and replayed with cmd/rnlpsim -system file.json. The wire schema is
// a flattened view: the resource spec is represented by its declared read
// groups (pairs of read/write shape declarations).

type jsonSystem struct {
	M           int         `json:"m"`
	ClusterSize int         `json:"cluster_size"`
	Resources   int         `json:"resources"`
	Shapes      []jsonShape `json:"shapes,omitempty"`
	Tasks       []jsonTask  `json:"tasks"`
}

type jsonShape struct {
	Read  []core.ResourceID `json:"read,omitempty"`
	Write []core.ResourceID `json:"write,omitempty"`
}

type jsonTask struct {
	ID       int           `json:"id"`
	Name     string        `json:"name,omitempty"`
	Cluster  int           `json:"cluster"`
	Period   int64         `json:"period"`
	Deadline int64         `json:"deadline"`
	Offset   int64         `json:"offset,omitempty"`
	Jitter   int64         `json:"jitter,omitempty"`
	ExecVar  float64       `json:"exec_var,omitempty"`
	Priority int           `json:"priority,omitempty"`
	Segments []jsonSegment `json:"segments"`
}

type jsonSegment struct {
	Kind        string            `json:"kind"` // compute|request|upgrade|incremental
	Duration    int64             `json:"duration,omitempty"`
	Read        []core.ResourceID `json:"read,omitempty"`
	Write       []core.ResourceID `json:"write,omitempty"`
	ReadCS      int64             `json:"read_cs,omitempty"`
	WriteCS     int64             `json:"write_cs,omitempty"`
	UpgradeProb float64           `json:"upgrade_prob,omitempty"`
	Steps       []jsonStep        `json:"steps,omitempty"`
}

type jsonStep struct {
	Acquire []core.ResourceID `json:"acquire,omitempty"`
	Hold    int64             `json:"hold"`
}

var kindNames = map[SegKind]string{
	SegCompute:     "compute",
	SegRequest:     "request",
	SegUpgrade:     "upgrade",
	SegIncremental: "incremental",
}

// WriteJSON serializes the system. The spec's full sharing relation cannot
// be reconstructed from the Spec type (it stores the closure), so callers
// should provide the declared shapes; WriteJSON derives a safe equivalent by
// declaring every read-mode segment set plus every resource's closed read
// set, which round-trips to a spec with the same closure.
func (s *System) WriteJSON(w io.Writer) error {
	js := jsonSystem{
		M:           s.M,
		ClusterSize: s.ClusterSize,
		Resources:   s.Spec.NumResources(),
	}
	for a := 0; a < s.Spec.NumResources(); a++ {
		rs := s.Spec.ReadSet(core.ResourceID(a))
		if rs.Len() > 1 {
			js.Shapes = append(js.Shapes, jsonShape{Read: rs.IDs()})
		}
	}
	for _, t := range s.Tasks {
		jt := jsonTask{
			ID: t.ID, Name: t.Name, Cluster: t.Cluster,
			Period: int64(t.Period), Deadline: int64(t.Deadline),
			Offset: int64(t.Offset), Jitter: int64(t.Jitter),
			ExecVar: t.ExecVar, Priority: t.Priority,
		}
		for _, seg := range t.Segments {
			jseg := jsonSegment{
				Kind:        kindNames[seg.Kind],
				Duration:    int64(seg.Duration),
				Read:        seg.Read,
				Write:       seg.Write,
				ReadCS:      int64(seg.ReadCS),
				WriteCS:     int64(seg.WriteCS),
				UpgradeProb: seg.UpgradeProb,
			}
			for _, st := range seg.Steps {
				jseg.Steps = append(jseg.Steps, jsonStep{Acquire: st.Acquire, Hold: int64(st.Hold)})
			}
			jt.Segments = append(jt.Segments, jseg)
		}
		js.Tasks = append(js.Tasks, jt)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ReadJSON deserializes a system and validates it.
func ReadJSON(r io.Reader) (*System, error) {
	var js jsonSystem
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("taskmodel: decoding system: %w", err)
	}
	sb := core.NewSpecBuilder(js.Resources)
	for _, sh := range js.Shapes {
		if err := sb.DeclareRequest(sh.Read, sh.Write); err != nil {
			return nil, fmt.Errorf("taskmodel: shape: %w", err)
		}
	}
	sys := &System{M: js.M, ClusterSize: js.ClusterSize}
	kinds := map[string]SegKind{}
	for k, v := range kindNames {
		kinds[v] = k
	}
	for _, jt := range js.Tasks {
		t := &Task{
			ID: jt.ID, Name: jt.Name, Cluster: jt.Cluster,
			Period: simTime(jt.Period), Deadline: simTime(jt.Deadline),
			Offset: simTime(jt.Offset), Jitter: simTime(jt.Jitter),
			ExecVar: jt.ExecVar, Priority: jt.Priority,
		}
		for si, jseg := range jt.Segments {
			kind, ok := kinds[jseg.Kind]
			if !ok {
				return nil, fmt.Errorf("taskmodel: task %d segment %d: unknown kind %q", jt.ID, si, jseg.Kind)
			}
			seg := Segment{
				Kind: kind, Duration: simTime(jseg.Duration),
				Read: jseg.Read, Write: jseg.Write,
				ReadCS: simTime(jseg.ReadCS), WriteCS: simTime(jseg.WriteCS),
				UpgradeProb: jseg.UpgradeProb,
			}
			for _, st := range jseg.Steps {
				seg.Steps = append(seg.Steps, IncStep{Acquire: st.Acquire, Hold: simTime(st.Hold)})
			}
			// Requests must be declared so expansion covers them.
			if kind != SegCompute {
				if err := sb.DeclareRequest(seg.Read, seg.Write); err != nil {
					return nil, fmt.Errorf("taskmodel: task %d segment %d: %w", jt.ID, si, err)
				}
			}
			t.Segments = append(t.Segments, seg)
		}
		sys.Tasks = append(sys.Tasks, t)
	}
	sys.Spec = sb.Build()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

func simTime(v int64) simtime.Time { return simtime.Time(v) }
