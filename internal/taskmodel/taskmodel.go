// Package taskmodel describes sporadic task systems (Sec. 2 of the paper):
// m processors grouped into clusters of size c, and n sporadic tasks, each
// releasing a sequence of jobs with a minimum separation (period), a relative
// deadline, and a program of execution segments that may issue resource
// requests to a locking protocol.
package taskmodel

import (
	"fmt"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/simtime"
)

// SegKind classifies a program segment of a job.
type SegKind int

const (
	// SegCompute executes for Duration ticks without holding resources.
	SegCompute SegKind = iota
	// SegRequest issues one resource request (read, write, or mixed —
	// Sec. 3.5) and executes a critical section of Duration ticks once
	// satisfied.
	SegRequest
	// SegUpgrade issues an upgradeable request (Sec. 3.6): an optimistic
	// read segment of ReadCS ticks, then — with probability UpgradeProb,
	// decided per job — a write segment of WriteCS ticks.
	SegUpgrade
	// SegIncremental issues an incremental request (Sec. 3.7) over the full
	// Read/Write sets and then walks Steps: each step acquires an additional
	// subset and computes inside the critical section for Hold ticks. All
	// resources are released when the last step finishes.
	SegIncremental
)

func (k SegKind) String() string {
	switch k {
	case SegCompute:
		return "compute"
	case SegRequest:
		return "request"
	case SegUpgrade:
		return "upgrade"
	case SegIncremental:
		return "incremental"
	default:
		return fmt.Sprintf("SegKind(%d)", int(k))
	}
}

// IncStep is one step of an incremental critical section.
type IncStep struct {
	Acquire []core.ResourceID // additional resources to acquire (may be empty)
	Hold    simtime.Time      // in-CS computation after the grant
}

// Segment is one step of a job's program.
type Segment struct {
	Kind     SegKind
	Duration simtime.Time // compute time (SegCompute) or CS length (SegRequest)

	Read  []core.ResourceID // resources read (SegRequest/SegIncremental)
	Write []core.ResourceID // resources written (SegRequest/SegIncremental)

	// SegUpgrade fields.
	ReadCS      simtime.Time
	WriteCS     simtime.Time
	UpgradeProb float64

	// SegIncremental fields.
	Steps []IncStep
}

// CSLength returns the total critical-section time of the segment (0 for
// compute segments). For upgrade segments it is the worst case: read segment
// plus write segment.
func (s Segment) CSLength() simtime.Time {
	switch s.Kind {
	case SegRequest:
		return s.Duration
	case SegUpgrade:
		return s.ReadCS + s.WriteCS
	case SegIncremental:
		var sum simtime.Time
		for _, st := range s.Steps {
			sum += st.Hold
		}
		return sum
	default:
		return 0
	}
}

// IsWrite reports whether the segment's request is a write request (any
// write access, including mixed; upgrades count as writes — their blocking
// bound is a writer's).
func (s Segment) IsWrite() bool {
	switch s.Kind {
	case SegUpgrade:
		return true
	case SegRequest, SegIncremental:
		return len(s.Write) > 0
	default:
		return false
	}
}

// Task is one sporadic task T_i.
type Task struct {
	ID      int
	Name    string
	Cluster int

	Period   simtime.Time // minimum job separation p_i
	Deadline simtime.Time // relative deadline d_i
	Offset   simtime.Time // release of the first job

	// Jitter is the maximum extra sporadic delay added to each release
	// separation; the simulator draws it uniformly from [0, Jitter].
	Jitter simtime.Time

	// ExecVar is the per-job execution-time variation fraction in [0, 1):
	// each job's compute and critical-section durations are scaled by a
	// factor drawn uniformly from [1-ExecVar, 1]. Segment durations remain
	// the WORST case, so all blocking bounds and schedulability analyses
	// stay valid; the simulator merely exercises earlier completions and
	// different interleavings (as real systems do).
	ExecVar float64

	// Priority is the task's fixed priority for FP scheduling (lower value =
	// higher priority). Ignored under EDF.
	Priority int

	Segments []Segment
}

// WCET returns e_i: the sum of all segment durations, with upgrade segments
// contributing their worst case (read + write CS).
func (t *Task) WCET() simtime.Time {
	var sum simtime.Time
	for _, s := range t.Segments {
		if s.Kind == SegCompute {
			sum += s.Duration
		} else {
			sum += s.CSLength()
		}
	}
	return sum
}

// Utilization returns e_i / p_i.
func (t *Task) Utilization() float64 {
	if t.Period == 0 {
		return 0
	}
	return float64(t.WCET()) / float64(t.Period)
}

// NumRequests returns the number of resource requests per job.
func (t *Task) NumRequests() int {
	n := 0
	for _, s := range t.Segments {
		if s.Kind != SegCompute {
			n++
		}
	}
	return n
}

// System is a complete simulated platform: the resource spec, the tasks, and
// the processor/cluster configuration. ClusterSize c divides M; c = 1 is
// partitioned and c = M is global scheduling (Sec. 2).
type System struct {
	Spec        *core.Spec
	Tasks       []*Task
	M           int // processors
	ClusterSize int // c
}

// Clusters returns m/c.
func (s *System) Clusters() int { return s.M / s.ClusterSize }

// Validate checks structural consistency of the system.
func (s *System) Validate() error {
	if s.M <= 0 {
		return fmt.Errorf("taskmodel: M = %d", s.M)
	}
	if s.ClusterSize <= 0 || s.M%s.ClusterSize != 0 {
		return fmt.Errorf("taskmodel: cluster size %d does not divide M = %d", s.ClusterSize, s.M)
	}
	if s.Spec == nil {
		return fmt.Errorf("taskmodel: nil resource spec")
	}
	q := s.Spec.NumResources()
	for _, t := range s.Tasks {
		if t.Period <= 0 {
			return fmt.Errorf("taskmodel: task %d period %d", t.ID, t.Period)
		}
		if t.Deadline <= 0 {
			return fmt.Errorf("taskmodel: task %d deadline %d", t.ID, t.Deadline)
		}
		if t.Cluster < 0 || t.Cluster >= s.Clusters() {
			return fmt.Errorf("taskmodel: task %d cluster %d out of range [0,%d)", t.ID, t.Cluster, s.Clusters())
		}
		if t.ExecVar < 0 || t.ExecVar >= 1 {
			return fmt.Errorf("taskmodel: task %d exec variation %f outside [0,1)", t.ID, t.ExecVar)
		}
		for si, seg := range t.Segments {
			for _, id := range append(append([]core.ResourceID{}, seg.Read...), seg.Write...) {
				if id < 0 || int(id) >= q {
					return fmt.Errorf("taskmodel: task %d segment %d resource %d out of range", t.ID, si, id)
				}
			}
			switch seg.Kind {
			case SegCompute:
				if seg.Duration < 0 {
					return fmt.Errorf("taskmodel: task %d segment %d negative duration", t.ID, si)
				}
			case SegRequest:
				if len(seg.Read)+len(seg.Write) == 0 {
					return fmt.Errorf("taskmodel: task %d segment %d requests no resources", t.ID, si)
				}
			case SegUpgrade:
				if len(seg.Read) == 0 {
					return fmt.Errorf("taskmodel: task %d segment %d upgrade with no resources", t.ID, si)
				}
				if seg.UpgradeProb < 0 || seg.UpgradeProb > 1 {
					return fmt.Errorf("taskmodel: task %d segment %d upgrade probability %f", t.ID, si, seg.UpgradeProb)
				}
			case SegIncremental:
				if len(seg.Read)+len(seg.Write) == 0 {
					return fmt.Errorf("taskmodel: task %d segment %d incremental with no resources", t.ID, si)
				}
				if len(seg.Steps) == 0 {
					return fmt.Errorf("taskmodel: task %d segment %d incremental with no steps", t.ID, si)
				}
			}
		}
	}
	return nil
}

// Utilization returns the total system utilization Σ e_i/p_i.
func (s *System) Utilization() float64 {
	u := 0.0
	for _, t := range s.Tasks {
		u += t.Utilization()
	}
	return u
}

// CSBounds returns the longest read and write critical-section lengths
// (L^r_max, L^w_max) over all tasks, the quantities the paper's blocking
// bounds are stated in. Upgrade segments contribute ReadCS to L^r_max and
// WriteCS to L^w_max (footnote 3: the read-only segment of an upgradeable
// request is assumed to finish within L^r_max).
func (s *System) CSBounds() (lr, lw simtime.Time) {
	for _, t := range s.Tasks {
		for _, seg := range t.Segments {
			switch seg.Kind {
			case SegRequest, SegIncremental:
				if seg.IsWrite() {
					if l := seg.CSLength(); l > lw {
						lw = l
					}
				} else {
					if l := seg.CSLength(); l > lr {
						lr = l
					}
				}
			case SegUpgrade:
				if seg.ReadCS > lr {
					lr = seg.ReadCS
				}
				if seg.WriteCS > lw {
					lw = seg.WriteCS
				}
			}
		}
	}
	return lr, lw
}
