package taskmodel

import (
	"bytes"
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
)

func validSystem() *System {
	return &System{
		Spec:        core.NewSpecBuilder(3).Build(),
		M:           4,
		ClusterSize: 2,
		Tasks: []*Task{{
			ID: 0, Period: 100, Deadline: 100, Cluster: 1,
			Segments: []Segment{
				{Kind: SegCompute, Duration: 10},
				{Kind: SegRequest, Read: []core.ResourceID{0}, Duration: 5},
				{Kind: SegCompute, Duration: 5},
			},
		}},
	}
}

func TestValidateOK(t *testing.T) {
	s := validSystem()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Clusters() != 2 {
		t.Errorf("clusters = %d", s.Clusters())
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*System)
	}{
		{"zero M", func(s *System) { s.M = 0 }},
		{"bad cluster size", func(s *System) { s.ClusterSize = 3 }},
		{"nil spec", func(s *System) { s.Spec = nil }},
		{"zero period", func(s *System) { s.Tasks[0].Period = 0 }},
		{"zero deadline", func(s *System) { s.Tasks[0].Deadline = 0 }},
		{"bad cluster", func(s *System) { s.Tasks[0].Cluster = 7 }},
		{"bad resource", func(s *System) { s.Tasks[0].Segments[1].Read = []core.ResourceID{9} }},
		{"empty request", func(s *System) {
			s.Tasks[0].Segments[1].Read = nil
		}},
		{"negative compute", func(s *System) { s.Tasks[0].Segments[0].Duration = -1 }},
		{"upgrade no resources", func(s *System) {
			s.Tasks[0].Segments[1] = Segment{Kind: SegUpgrade}
		}},
		{"upgrade bad prob", func(s *System) {
			s.Tasks[0].Segments[1] = Segment{Kind: SegUpgrade, Read: []core.ResourceID{0}, UpgradeProb: 2}
		}},
		{"incremental no steps", func(s *System) {
			s.Tasks[0].Segments[1] = Segment{Kind: SegIncremental, Write: []core.ResourceID{0}}
		}},
	}
	for _, c := range cases {
		s := validSystem()
		c.mod(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestWCETAndUtilization(t *testing.T) {
	s := validSystem()
	tk := s.Tasks[0]
	if got := tk.WCET(); got != 20 {
		t.Errorf("WCET = %d, want 20", got)
	}
	if got := tk.Utilization(); got != 0.2 {
		t.Errorf("U = %f, want 0.2", got)
	}
	if got := tk.NumRequests(); got != 1 {
		t.Errorf("requests = %d", got)
	}
	if got := s.Utilization(); got != 0.2 {
		t.Errorf("system U = %f", got)
	}
}

func TestCSBounds(t *testing.T) {
	s := validSystem()
	s.Tasks[0].Segments = append(s.Tasks[0].Segments,
		Segment{Kind: SegRequest, Write: []core.ResourceID{1}, Duration: 9},
		Segment{Kind: SegUpgrade, Read: []core.ResourceID{2}, ReadCS: 7, WriteCS: 3, UpgradeProb: 0.5},
		Segment{Kind: SegIncremental, Write: []core.ResourceID{1, 2},
			Steps: []IncStep{{Acquire: []core.ResourceID{1}, Hold: 4}, {Acquire: []core.ResourceID{2}, Hold: 8}}},
	)
	lr, lw := s.CSBounds()
	if lr != 7 { // max(read request 5, upgrade read 7)
		t.Errorf("Lr = %d, want 7", lr)
	}
	if lw != 12 { // max(write 9, upgrade write 3, incremental 4+8)
		t.Errorf("Lw = %d, want 12", lw)
	}
}

func TestSegmentHelpers(t *testing.T) {
	up := Segment{Kind: SegUpgrade, Read: []core.ResourceID{0}, ReadCS: 3, WriteCS: 2}
	if up.CSLength() != 5 || !up.IsWrite() {
		t.Errorf("upgrade: cs=%d write=%v", up.CSLength(), up.IsWrite())
	}
	rd := Segment{Kind: SegRequest, Read: []core.ResourceID{0}, Duration: 4}
	if rd.CSLength() != 4 || rd.IsWrite() {
		t.Errorf("read: cs=%d write=%v", rd.CSLength(), rd.IsWrite())
	}
	cp := Segment{Kind: SegCompute, Duration: 4}
	if cp.CSLength() != 0 || cp.IsWrite() {
		t.Errorf("compute: cs=%d write=%v", cp.CSLength(), cp.IsWrite())
	}
	if SegCompute.String() != "compute" || SegUpgrade.String() != "upgrade" {
		t.Error("SegKind strings")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sb := core.NewSpecBuilder(4)
	if err := sb.DeclareReadGroup(0, 1); err != nil {
		t.Fatal(err)
	}
	orig := &System{
		Spec: sb.Build(), M: 4, ClusterSize: 2,
		Tasks: []*Task{{
			ID: 3, Name: "demo", Cluster: 1, Period: 1000, Deadline: 900,
			Offset: 5, Jitter: 10, Priority: 2,
			Segments: []Segment{
				{Kind: SegCompute, Duration: 50},
				{Kind: SegRequest, Read: []core.ResourceID{0, 1}, Duration: 10},
				{Kind: SegRequest, Read: []core.ResourceID{2}, Write: []core.ResourceID{3}, Duration: 7},
				{Kind: SegUpgrade, Read: []core.ResourceID{2}, ReadCS: 4, WriteCS: 2, UpgradeProb: 0.5},
				{Kind: SegIncremental, Write: []core.ResourceID{2, 3},
					Steps: []IncStep{{Acquire: []core.ResourceID{2}, Hold: 3}, {Acquire: []core.ResourceID{3}, Hold: 3}}},
			},
		}},
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != 4 || back.ClusterSize != 2 || len(back.Tasks) != 1 {
		t.Fatalf("structure lost: %+v", back)
	}
	bt := back.Tasks[0]
	ot := orig.Tasks[0]
	if bt.ID != ot.ID || bt.Name != ot.Name || bt.Period != ot.Period ||
		bt.Deadline != ot.Deadline || bt.Offset != ot.Offset ||
		bt.Jitter != ot.Jitter || bt.Priority != ot.Priority {
		t.Fatalf("task fields lost: %+v", bt)
	}
	if len(bt.Segments) != len(ot.Segments) {
		t.Fatalf("segments lost: %d", len(bt.Segments))
	}
	for i := range ot.Segments {
		if bt.Segments[i].Kind != ot.Segments[i].Kind ||
			bt.Segments[i].CSLength() != ot.Segments[i].CSLength() {
			t.Errorf("segment %d mismatch", i)
		}
	}
	// The sharing closure must survive: 0 ~ 1 declared.
	if !back.Spec.ReadSet(0).Has(1) {
		t.Error("read-sharing relation lost in round trip")
	}
	if lr, lw := back.CSBounds(); lr != 10 || lw != 7 {
		t.Errorf("CS bounds after round trip: lr=%d lw=%d", lr, lw)
	}
}

func TestReadJSONRejectsBad(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"m":2,"cluster_size":2,"resources":1,
		"tasks":[{"id":0,"cluster":0,"period":10,"deadline":10,
		"segments":[{"kind":"warp","duration":1}]}]}`)); err == nil {
		t.Error("unknown segment kind accepted")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`{"m":2,"cluster_size":3,"resources":1,"tasks":[]}`)); err == nil {
		t.Error("invalid cluster size accepted")
	}
}
