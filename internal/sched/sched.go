// Package sched defines the job-level fixed-priority (JLFP) scheduling
// policies of the paper's system model (Sec. 2): each job has a constant
// base priority (EDF: its absolute deadline; FP: its task's fixed priority),
// and locking protocols may elevate a job's effective priority through a
// progress mechanism. The cluster dispatching machinery lives in
// internal/sim; this package provides the pure priority algebra it is built
// on.
package sched

import "github.com/rtsync/rwrnlp/internal/simtime"

// Policy selects how job base priorities are derived.
type Policy int

const (
	// EDF: earlier absolute deadline = higher priority (job-level fixed).
	EDF Policy = iota
	// FP: fixed task priority (rate-monotonic if priorities are assigned by
	// period); all jobs of a task share it.
	FP
)

func (p Policy) String() string {
	switch p {
	case EDF:
		return "EDF"
	case FP:
		return "FP"
	default:
		return "Policy(?)"
	}
}

// Prio is a total priority order: lower Val = higher priority, with Tie
// breaking equal values deterministically (release order / task ID). The
// zero value is the highest possible priority.
type Prio struct {
	Val int64
	Tie int64
}

// Less reports whether a is strictly higher priority than b.
func (a Prio) Less(b Prio) bool {
	if a.Val != b.Val {
		return a.Val < b.Val
	}
	return a.Tie < b.Tie
}

// JobPrio computes a job's base priority under the policy.
//
//   - EDF: Val is the absolute deadline, Tie the task ID (so simultaneous
//     deadlines resolve deterministically by task).
//   - FP: Val is the task's fixed priority, Tie the task ID.
func JobPrio(p Policy, taskID int, taskPrio int, absDeadline simtime.Time) Prio {
	switch p {
	case FP:
		return Prio{Val: int64(taskPrio), Tie: int64(taskID)}
	default:
		return Prio{Val: int64(absDeadline), Tie: int64(taskID)}
	}
}
