package sched

import "testing"

func TestPrioLess(t *testing.T) {
	a := Prio{Val: 1, Tie: 5}
	b := Prio{Val: 2, Tie: 0}
	if !a.Less(b) || b.Less(a) {
		t.Error("Val ordering wrong")
	}
	c := Prio{Val: 1, Tie: 6}
	if !a.Less(c) || c.Less(a) {
		t.Error("Tie ordering wrong")
	}
	if a.Less(a) {
		t.Error("irreflexive violated")
	}
}

func TestJobPrio(t *testing.T) {
	edf := JobPrio(EDF, 3, 7, 1000)
	if edf.Val != 1000 || edf.Tie != 3 {
		t.Errorf("EDF prio = %+v", edf)
	}
	fp := JobPrio(FP, 3, 7, 1000)
	if fp.Val != 7 || fp.Tie != 3 {
		t.Errorf("FP prio = %+v", fp)
	}
	// Earlier deadline = higher priority under EDF.
	if !JobPrio(EDF, 0, 0, 10).Less(JobPrio(EDF, 1, 0, 20)) {
		t.Error("EDF deadline ordering wrong")
	}
}

func TestPolicyString(t *testing.T) {
	if EDF.String() != "EDF" || FP.String() != "FP" {
		t.Error("policy strings")
	}
}
