package workload

import (
	"math/rand"
	"testing"

	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

func TestGenerateValidAndDeterministic(t *testing.T) {
	p := Params{
		M: 4, NumTasks: 10, Util: UtilUniformMedium,
		NumResources: 6, AccessProb: 0.9, NestedProb: 0.5,
		ReadRatio: 0.5, MixedProb: 0.3, UpgradeProb: 0.3, IncrementalProb: 0.3,
	}
	sys1 := Generate(rand.New(rand.NewSource(42)), p)
	if err := sys1.Validate(); err != nil {
		t.Fatalf("generated system invalid: %v", err)
	}
	if len(sys1.Tasks) != 10 {
		t.Fatalf("tasks = %d", len(sys1.Tasks))
	}
	sys2 := Generate(rand.New(rand.NewSource(42)), p)
	if len(sys2.Tasks) != len(sys1.Tasks) {
		t.Fatal("nondeterministic task count")
	}
	for i := range sys1.Tasks {
		a, b := sys1.Tasks[i], sys2.Tasks[i]
		if a.Period != b.Period || a.WCET() != b.WCET() || len(a.Segments) != len(b.Segments) {
			t.Fatalf("task %d differs across same-seed generations", i)
		}
	}
}

func TestGenerateByUtilization(t *testing.T) {
	p := Params{M: 8, TotalUtil: 3.0, Util: UtilUniformLight, NumResources: 4}
	sys := Generate(rand.New(rand.NewSource(1)), p)
	if u := sys.Utilization(); u < 3.0 || u > 3.2 {
		t.Errorf("utilization %f, want ≈3.0", u)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []UtilDist{UtilUniformLight, UtilUniformMedium, UtilUniformHeavy, UtilBimodal} {
		for i := 0; i < 200; i++ {
			u := d.draw(rng)
			if u <= 0 || u > 0.9 {
				t.Fatalf("%v drew %f", d, u)
			}
		}
		if d.String() == "" {
			t.Error("empty dist name")
		}
	}
}

func TestPeriodsWithinRange(t *testing.T) {
	p := Params{M: 2, NumTasks: 50, Util: UtilUniformLight, NumResources: 2}
	sys := Generate(rand.New(rand.NewSource(3)), p)
	pp := p.Defaults()
	for _, tk := range sys.Tasks {
		if tk.Period < pp.PeriodMin || tk.Period > pp.PeriodMax {
			t.Errorf("period %d outside [%d, %d]", tk.Period, pp.PeriodMin, pp.PeriodMax)
		}
		if tk.Deadline != tk.Period {
			t.Error("deadlines not implicit")
		}
	}
}

func TestCSLengthsWithinRange(t *testing.T) {
	p := Params{
		M: 4, NumTasks: 40, Util: UtilUniformMedium, NumResources: 4,
		AccessProb: 1, CSMin: 100, CSMax: 200, NestedProb: 0.5, ReadRatio: 0.5,
	}
	sys := Generate(rand.New(rand.NewSource(9)), p)
	nreq := 0
	for _, tk := range sys.Tasks {
		for _, seg := range tk.Segments {
			if seg.Kind == taskmodel.SegRequest {
				nreq++
				if seg.Duration < 100 || seg.Duration > 200 {
					t.Errorf("CS length %d outside [100, 200]", seg.Duration)
				}
			}
		}
	}
	if nreq == 0 {
		t.Fatal("no requests generated with AccessProb=1")
	}
}

func TestBalancedClusters(t *testing.T) {
	p := Params{
		M: 8, ClusterSize: 2, NumTasks: 40, Util: UtilUniformMedium,
		NumResources: 4, BalancedClusters: true,
	}
	sys := Generate(rand.New(rand.NewSource(5)), p)
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	load := make([]float64, sys.Clusters())
	for _, tk := range sys.Tasks {
		load[tk.Cluster] += tk.Utilization()
	}
	min, max := load[0], load[0]
	for _, l := range load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// WFD keeps the spread within one heaviest-task utilization (0.4).
	if max-min > 0.4 {
		t.Errorf("cluster load spread %.3f too wide: %v", max-min, load)
	}

	// Random assignment (control) is typically worse; just ensure the flag
	// changes assignments at all.
	sys2 := Generate(rand.New(rand.NewSource(5)), Params{
		M: 8, ClusterSize: 2, NumTasks: 40, Util: UtilUniformMedium,
		NumResources: 4,
	})
	same := true
	for i := range sys.Tasks {
		if sys.Tasks[i].Cluster != sys2.Tasks[i].Cluster {
			same = false
			break
		}
	}
	if same {
		t.Error("balanced assignment identical to random")
	}
}
