package workload

import (
	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// Fig2System reconstructs the paper's running example (Fig. 2): five tasks
// on five processors (every pending job scheduled), three resources
// ℓa=0, ℓb=1, ℓc=2 with {ℓa, ℓb} declared read shared, and one request per
// task:
//
//	R1,1^w  write {ℓa, ℓb}      issued t=1, CS length 4  → CS [1,5)
//	R2,1^w  write {ℓa, ℓb, ℓc}  issued t=2, CS length 2  → CS [8,10)
//	R3,1^r  read  {ℓc}          issued t=3, CS length 5  → CS [3,8)
//	R4,1^r  read  {ℓc}          issued t=4, CS length 2  → CS [4,6)
//	R5,1^r  read  {ℓa, ℓb}      issued t=7, CS length 2  → CS [10,12)
//
// The paper's prose is internally inconsistent about two details, which this
// reconstruction resolves from the majority of the text (see EXPERIMENTS.md
// E1/E2): R4,1 reads ℓc (not ℓb, which is write locked until t=5), and
// N5,1 = {ℓa, ℓb} (the Sec. 3.2 read-set example and the Sec. 3.5 mixing
// example both say so; the "full example" paragraph's "ℓb and ℓc" and the
// Fig. 2(b) omission of R5,1 from RQ(ℓa) are the typos).
func Fig2System() *taskmodel.System {
	sb := core.NewSpecBuilder(3)
	if err := sb.DeclareReadGroup(0, 1); err != nil {
		panic(err)
	}
	mk := func(id int, offset simtime.Time, read, write []core.ResourceID, cs simtime.Time) *taskmodel.Task {
		return &taskmodel.Task{
			ID: id, Cluster: 0,
			Period: 1000, Deadline: 1000, Offset: offset,
			Segments: []taskmodel.Segment{
				{Kind: taskmodel.SegRequest, Read: read, Write: write, Duration: cs},
			},
		}
	}
	return &taskmodel.System{
		Spec:        sb.Build(),
		M:           5,
		ClusterSize: 5,
		Tasks: []*taskmodel.Task{
			mk(1, 1, nil, []core.ResourceID{0, 1}, 4),
			mk(2, 2, nil, []core.ResourceID{0, 1, 2}, 2),
			mk(3, 3, []core.ResourceID{2}, nil, 5),
			mk(4, 4, []core.ResourceID{2}, nil, 2),
			mk(5, 7, []core.ResourceID{0, 1}, nil, 2),
		},
	}
}

// Fig3System reconstructs Fig. 3's s-oblivious vs. s-aware illustration:
// three EDF jobs sharing one resource on two processors. J2 (tightest
// deadline) holds the lock during [1,4); J1 suspends waiting during [2,4);
// J3, reaching its request at t=3, waits during [3,5) — s-aware pi-blocked
// for the whole wait but s-obliviously pi-blocked only during [4,5), when
// fewer than two higher-priority jobs remain pending.
func Fig3System() *taskmodel.System {
	sb := core.NewSpecBuilder(1)
	return &taskmodel.System{
		Spec:        sb.Build(),
		M:           2,
		ClusterSize: 2,
		Tasks: []*taskmodel.Task{
			{ID: 0, Cluster: 0, Period: 1000, Deadline: 10, Offset: 0,
				Segments: []taskmodel.Segment{
					{Kind: taskmodel.SegCompute, Duration: 1},
					{Kind: taskmodel.SegRequest, Write: []core.ResourceID{0}, Duration: 3},
				}},
			{ID: 1, Cluster: 0, Period: 1000, Deadline: 15, Offset: 0,
				Segments: []taskmodel.Segment{
					{Kind: taskmodel.SegCompute, Duration: 2},
					{Kind: taskmodel.SegRequest, Write: []core.ResourceID{0}, Duration: 1},
				}},
			{ID: 2, Cluster: 0, Period: 1000, Deadline: 20, Offset: 0,
				Segments: []taskmodel.Segment{
					{Kind: taskmodel.SegCompute, Duration: 1},
					{Kind: taskmodel.SegRequest, Write: []core.ResourceID{0}, Duration: 1},
				}},
		},
	}
}
