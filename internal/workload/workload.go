// Package workload generates random sporadic task systems in the style of
// the schedulability studies published by the paper's research group
// (Brandenburg & Anderson, RTAS'08/EMSOFT'11; Brandenburg's dissertation
// ch. 7): task utilizations drawn from named distributions, log-uniform
// periods, and resource-access patterns controlled by an access probability,
// a read ratio, and a nesting (request-size) distribution.
//
// All generation is deterministic given the seed; experiments are
// reproducible byte for byte.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// UtilDist names a per-task utilization distribution (Brandenburg's
// nomenclature).
type UtilDist int

const (
	// UtilUniformLight: uniform over [0.001, 0.1].
	UtilUniformLight UtilDist = iota
	// UtilUniformMedium: uniform over [0.1, 0.4].
	UtilUniformMedium
	// UtilUniformHeavy: uniform over [0.5, 0.9].
	UtilUniformHeavy
	// UtilBimodal: 8/9 light (uniform [0.001,0.5]), 1/9 heavy (uniform
	// [0.5,0.9]).
	UtilBimodal
)

func (u UtilDist) String() string {
	switch u {
	case UtilUniformLight:
		return "uniform-light"
	case UtilUniformMedium:
		return "uniform-medium"
	case UtilUniformHeavy:
		return "uniform-heavy"
	case UtilBimodal:
		return "bimodal"
	default:
		return fmt.Sprintf("UtilDist(%d)", int(u))
	}
}

func (u UtilDist) draw(rng *rand.Rand) float64 {
	switch u {
	case UtilUniformLight:
		return 0.001 + rng.Float64()*0.099
	case UtilUniformMedium:
		return 0.1 + rng.Float64()*0.3
	case UtilUniformHeavy:
		return 0.5 + rng.Float64()*0.4
	default: // bimodal
		if rng.Intn(9) == 0 {
			return 0.5 + rng.Float64()*0.4
		}
		return 0.001 + rng.Float64()*0.499
	}
}

// Params controls task-system generation.
type Params struct {
	M           int // processors
	ClusterSize int // c (must divide M)

	NumTasks  int     // n; if 0, tasks are added until TotalUtil is reached
	TotalUtil float64 // target Σu_i (used when NumTasks == 0)

	Util UtilDist

	// Periods are drawn log-uniformly from [PeriodMin, PeriodMax]
	// (defaults 10ms, 100ms in nanoseconds). Implicit deadlines.
	PeriodMin, PeriodMax simtime.Time

	// Resources & sharing.
	NumResources int
	// AccessProb is the probability that a task accesses resources at all.
	AccessProb float64
	// ReqPerJob is the maximum number of requests per job (≥1 drawn
	// uniformly) for resource-using tasks.
	ReqPerJob int
	// NestedProb is the probability that a request needs a second (and with
	// NestedProb², a third) resource — fine-grained nesting.
	NestedProb float64
	// ReadRatio is the fraction of requests that are read-only.
	ReadRatio float64
	// MixedProb is the probability that a write request also reads an extra
	// resource (Sec. 3.5 mixing). Zero keeps Assumption 1.
	MixedProb float64
	// CSMin/CSMax bound critical-section lengths (uniform).
	CSMin, CSMax simtime.Time
	// WriteCSScale scales write critical sections relative to reads
	// (default 1.0). Reader/writer locking's canonical motivation is long,
	// frequent reads with short, rare writes; set e.g. 0.25 to model it.
	WriteCSScale float64
	// ExecVar is the per-job execution-time variation fraction in [0, 1)
	// applied to every generated task (see taskmodel.Task.ExecVar).
	ExecVar float64
	// BalancedClusters assigns tasks to clusters worst-fit-decreasing by
	// utilization instead of randomly — the sensible choice for partitioned
	// and clustered configurations (random assignment overloads clusters
	// long before the analysis-level capacity is reached).
	BalancedClusters bool
	// UpgradeProb: probability that a read request is issued as an
	// upgradeable request instead (Sec. 3.6).
	UpgradeProb float64
	// IncrementalProb: probability that a multi-resource request is issued
	// incrementally (Sec. 3.7).
	IncrementalProb float64
}

// Defaults fills zero fields with the study defaults.
func (p Params) Defaults() Params {
	if p.M == 0 {
		p.M = 4
	}
	if p.ClusterSize == 0 {
		p.ClusterSize = p.M
	}
	if p.PeriodMin == 0 {
		p.PeriodMin = 10_000_000 // 10ms
	}
	if p.PeriodMax == 0 {
		p.PeriodMax = 100_000_000 // 100ms
	}
	if p.NumResources == 0 {
		p.NumResources = 8
	}
	if p.AccessProb == 0 {
		p.AccessProb = 0.8
	}
	if p.ReqPerJob == 0 {
		p.ReqPerJob = 2
	}
	if p.CSMin == 0 {
		p.CSMin = 10_000 // 10µs
	}
	if p.CSMax == 0 {
		p.CSMax = 100_000 // 100µs
	}
	if p.WriteCSScale == 0 {
		p.WriteCSScale = 1.0
	}
	return p
}

// Generate builds a random task system. The returned system's Spec declares
// every generated request shape, as the protocol requires (a-priori
// knowledge of potential requests, Sec. 3.7).
func Generate(rng *rand.Rand, p Params) *taskmodel.System {
	p = p.Defaults()
	sys := &taskmodel.System{M: p.M, ClusterSize: p.ClusterSize}
	sb := core.NewSpecBuilder(p.NumResources)

	addTask := func(i int) {
		u := p.Util.draw(rng)
		period := logUniform(rng, p.PeriodMin, p.PeriodMax)
		wcet := simtime.Time(float64(period) * u)
		if wcet < 1 {
			wcet = 1
		}
		t := &taskmodel.Task{
			ID:       i,
			Name:     fmt.Sprintf("T%d", i),
			Cluster:  rng.Intn(p.M / p.ClusterSize),
			Period:   period,
			Deadline: period,
			Offset:   simtime.Time(rng.Int63n(int64(period))),
			Jitter:   period / 10,
			ExecVar:  p.ExecVar,
			Priority: i,
		}
		var segs []taskmodel.Segment
		budget := wcet
		if rng.Float64() < p.AccessProb && p.NumResources > 0 {
			nreq := rng.Intn(p.ReqPerJob) + 1
			for k := 0; k < nreq && budget > 0; k++ {
				seg := genRequest(rng, p, sb)
				cs := seg.CSLength()
				if cs > budget {
					break
				}
				budget -= cs
				// Interleave compute.
				if budget > 0 {
					pre := simtime.Time(rng.Int63n(int64(budget) + 1))
					if pre > 0 {
						segs = append(segs, taskmodel.Segment{Kind: taskmodel.SegCompute, Duration: pre})
						budget -= pre
					}
				}
				segs = append(segs, seg)
			}
		}
		if budget > 0 {
			segs = append(segs, taskmodel.Segment{Kind: taskmodel.SegCompute, Duration: budget})
		}
		t.Segments = segs
		sys.Tasks = append(sys.Tasks, t)
	}

	if p.NumTasks > 0 {
		for i := 0; i < p.NumTasks; i++ {
			addTask(i)
		}
	} else {
		i := 0
		for sys.Utilization() < p.TotalUtil && i < 10_000 {
			addTask(i)
			i++
		}
	}
	if p.BalancedClusters && p.ClusterSize < p.M {
		assignBalanced(sys, p)
	}
	sys.Spec = sb.Build()
	return sys
}

// assignBalanced re-assigns tasks to clusters worst-fit-decreasing by
// utilization: heaviest task first, each into the currently least-loaded
// cluster.
func assignBalanced(sys *taskmodel.System, p Params) {
	nclust := p.M / p.ClusterSize
	order := make([]*taskmodel.Task, len(sys.Tasks))
	copy(order, sys.Tasks)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].Utilization() > order[j-1].Utilization(); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	load := make([]float64, nclust)
	for _, t := range order {
		best := 0
		for c := 1; c < nclust; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		t.Cluster = best
		load[best] += t.Utilization()
	}
}

// genRequest draws one request segment and declares its shape in the spec.
func genRequest(rng *rand.Rand, p Params, sb *core.SpecBuilder) taskmodel.Segment {
	q := p.NumResources
	n := 1
	if rng.Float64() < p.NestedProb {
		n++
		if rng.Float64() < p.NestedProb {
			n++
		}
	}
	if n > q {
		n = q
	}
	res := pickDistinct(rng, q, n)
	cs := p.CSMin
	if p.CSMax > p.CSMin {
		cs += simtime.Time(rng.Int63n(int64(p.CSMax - p.CSMin + 1)))
	}

	wcs := simtime.Time(float64(cs) * p.WriteCSScale)
	if wcs < 1 {
		wcs = 1
	}
	isRead := rng.Float64() < p.ReadRatio
	switch {
	case isRead && rng.Float64() < p.UpgradeProb:
		must(sb.DeclareRequest(res, nil))
		must(sb.DeclareRequest(nil, res)) // the write half
		return taskmodel.Segment{
			Kind:        taskmodel.SegUpgrade,
			Read:        res,
			ReadCS:      cs,
			WriteCS:     wcs / 2,
			UpgradeProb: 0.5,
		}
	case isRead:
		must(sb.DeclareRequest(res, nil))
		return taskmodel.Segment{Kind: taskmodel.SegRequest, Read: res, Duration: cs}
	default:
		var read []core.ResourceID
		write := res
		if p.MixedProb > 0 && rng.Float64() < p.MixedProb && len(res) > 1 {
			read = res[:1]
			write = res[1:]
		}
		must(sb.DeclareRequest(read, write))
		if len(write) > 1 && rng.Float64() < p.IncrementalProb {
			// Split acquisition into two steps.
			k := len(write) / 2
			if k == 0 {
				k = 1
			}
			first := append(append([]core.ResourceID{}, read...), write[:k]...)
			return taskmodel.Segment{
				Kind:  taskmodel.SegIncremental,
				Read:  read,
				Write: write,
				Steps: []taskmodel.IncStep{
					{Acquire: first, Hold: wcs / 2},
					{Acquire: write[k:], Hold: wcs - wcs/2},
				},
			}
		}
		return taskmodel.Segment{Kind: taskmodel.SegRequest, Read: read, Write: write, Duration: wcs}
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func pickDistinct(rng *rand.Rand, q, n int) []core.ResourceID {
	perm := rng.Perm(q)
	out := make([]core.ResourceID, n)
	for i := 0; i < n; i++ {
		out[i] = core.ResourceID(perm[i])
	}
	return out
}

func logUniform(rng *rand.Rand, lo, hi simtime.Time) simtime.Time {
	if hi <= lo {
		return lo
	}
	l, h := math.Log(float64(lo)), math.Log(float64(hi))
	return simtime.Time(math.Exp(l + rng.Float64()*(h-l)))
}
