package stm

import (
	"fmt"
	"hash/maphash"
)

// Map is a transactional hash map with a FIXED bucket universe, built
// entirely on declared STM shapes: point operations lock one bucket,
// snapshots read-lock all buckets (running concurrently with each other and
// with point reads), and conditional updates use upgradeable transactions.
//
// The fixed bucket count is not an implementation shortcut — it is the
// protocol's a-priori-knowledge requirement surfacing in a data structure:
// the resource universe (buckets) and the transaction shapes (per-bucket
// ops, whole-map snapshots) must be known when the system is built, in
// exchange for which every operation has a worst-case blocking bound
// (O(1) for reads/snapshots, O(m) for updates) and can never deadlock or
// abort. A resizable map would need a different resource design (e.g. a
// version resource guarding the directory).
type Map[K comparable, V any] struct {
	stm     *STM
	buckets []*Var[map[K]V]
	all     []VarBase
	seed    maphash.Seed
}

// MapConfig configures NewMap.
type MapConfig struct {
	Buckets int // number of bucket resources (default 16)
	Options Options
}

// NewMap builds a self-contained transactional map with its own STM system.
// For maps embedded in a larger system (sharing a transaction universe with
// other variables), build the buckets by hand with NewVar and DeclareTx.
func NewMap[K comparable, V any](cfg MapConfig) *Map[K, V] {
	if cfg.Buckets <= 0 {
		cfg.Buckets = 16
	}
	sys := NewSystem()
	m := &Map[K, V]{seed: maphash.MakeSeed()}
	for i := 0; i < cfg.Buckets; i++ {
		v := NewVar(sys, map[K]V{})
		m.buckets = append(m.buckets, v)
		m.all = append(m.all, v)
	}
	sys.DeclareTx(m.all, nil) // snapshot shape
	sys.DeclareTx(nil, m.all) // clear shape
	m.stm = sys.Build(cfg.Options)
	return m
}

func (m *Map[K, V]) bucket(k K) *Var[map[K]V] {
	var h maphash.Hash
	h.SetSeed(m.seed)
	fmt.Fprintf(&h, "%v", k)
	return m.buckets[h.Sum64()%uint64(len(m.buckets))]
}

// Get returns the value for k, if present. Lock-wise this is a
// single-bucket read: O(1) worst-case blocking, concurrent with all other
// reads and with writes to other buckets.
func (m *Map[K, V]) Get(k K) (V, bool) {
	b := m.bucket(k)
	var v V
	var ok bool
	_ = m.stm.Atomically(Reads(b), nil, func(tx *Tx) error {
		v, ok = Get(tx, b)[k]
		return nil
	})
	return v, ok
}

// Put stores v under k (single-bucket write).
func (m *Map[K, V]) Put(k K, v V) {
	b := m.bucket(k)
	_ = m.stm.Atomically(nil, Writes(b), func(tx *Tx) error {
		nb := copyBucket(Get(tx, b))
		nb[k] = v
		Set(tx, b, nb)
		return nil
	})
}

// Delete removes k; it reports whether the key was present.
func (m *Map[K, V]) Delete(k K) bool {
	b := m.bucket(k)
	present := false
	_ = m.stm.Atomically(nil, Writes(b), func(tx *Tx) error {
		old := Get(tx, b)
		if _, present = old[k]; !present {
			return nil
		}
		nb := copyBucket(old)
		delete(nb, k)
		Set(tx, b, nb)
		return nil
	})
	return present
}

// Update applies f to the value under k if present — or inserts f's result
// applied to the zero value if insertIfMissing — using an UPGRADEABLE
// transaction: the bucket is first read-locked (sharing with concurrent
// readers); the write lock is taken only when a change is actually needed.
func (m *Map[K, V]) Update(k K, insertIfMissing bool, f func(V) (V, bool)) bool {
	b := m.bucket(k)
	changed := false
	_ = m.stm.AtomicallyUpgradeable(Reads(b),
		func(tx *Tx) (UpgradeableResult, error) {
			old, ok := Get(tx, b)[k]
			if !ok && !insertIfMissing {
				return Commit, nil
			}
			if _, need := f(old); !need {
				return Commit, nil
			}
			return Upgrade, nil
		},
		func(tx *Tx) error {
			// Re-read after the upgrade (Sec. 3.6): the bucket may have
			// changed between the phases.
			old, ok := Get(tx, b)[k]
			if !ok && !insertIfMissing {
				return nil
			}
			nv, need := f(old)
			if !need {
				return nil
			}
			nb := copyBucket(Get(tx, b))
			nb[k] = nv
			Set(tx, b, nb)
			changed = true
			return nil
		})
	return changed
}

// Snapshot returns a consistent copy of the whole map: all buckets are
// read-locked atomically, so no concurrent writer can be half-visible.
// Snapshots run concurrently with each other and with point reads.
func (m *Map[K, V]) Snapshot() map[K]V {
	out := map[K]V{}
	_ = m.stm.Atomically(m.all, nil, func(tx *Tx) error {
		for _, b := range m.buckets {
			for k, v := range Get(tx, b) {
				out[k] = v
			}
		}
		return nil
	})
	return out
}

// Len returns the number of entries in a consistent snapshot.
func (m *Map[K, V]) Len() int {
	n := 0
	_ = m.stm.Atomically(m.all, nil, func(tx *Tx) error {
		for _, b := range m.buckets {
			n += len(Get(tx, b))
		}
		return nil
	})
	return n
}

// Clear empties the map atomically (write-locks every bucket).
func (m *Map[K, V]) Clear() {
	_ = m.stm.Atomically(nil, m.all, func(tx *Tx) error {
		for _, b := range m.buckets {
			Set(tx, b, map[K]V{})
		}
		return nil
	})
}

func copyBucket[K comparable, V any](src map[K]V) map[K]V {
	dst := make(map[K]V, len(src)+1)
	for k, v := range src {
		dst[k] = v
	}
	return dst
}
