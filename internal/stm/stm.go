// Package stm is a lock-based software transactional memory built on the
// R/W RNLP — the application the paper presents as its motivation (Sec. 1):
// a transaction manager that coordinates concurrent read and write accesses
// to memory-resident shared objects *predictably*, with the worst-case
// blocking bounds of the underlying protocol (O(1) for read-only
// transactions, O(m) for writers) instead of the unbounded retries of
// non-blocking STMs.
//
// Transactions declare their read and write sets up front (the protocol's
// a-priori-knowledge requirement); all locks of a transaction are acquired
// atomically, so transactions never deadlock and never abort. Read-only
// transactions on disjoint or overlapping data run fully in parallel.
// Upgradeable transactions (Sec. 3.6) optimistically read and escalate to
// write access only when needed — without re-queueing from the back.
//
// Example:
//
//	sys := stm.NewSystem()
//	a := stm.NewVar(sys, 100)
//	b := stm.NewVar(sys, 200)
//	sys.DeclareTx(stm.Reads(a, b), nil)           // audit transaction shape
//	sys.DeclareTx(stm.Reads(), stm.Writes(a, b))  // transfer shape
//	s := sys.Build(stm.Options{Placeholders: true})
//
//	_ = s.Atomically(nil, stm.Writes(a, b), func(tx *stm.Tx) error {
//	    stm.Set(tx, a, stm.Get(tx, a)-10)
//	    stm.Set(tx, b, stm.Get(tx, b)+10)
//	    return nil
//	})
package stm

import (
	"context"
	"errors"
	"fmt"

	"github.com/rtsync/rwrnlp"
)

// Options configure the transaction manager.
type Options struct {
	// Placeholders enables the Sec. 3.4 optimization in the underlying
	// protocol (recommended).
	Placeholders bool
	// Spin selects busy-wait waiting in the underlying protocol.
	Spin bool
}

// System is the registration phase: variables and transaction shapes are
// declared here, then frozen into an STM with Build.
type System struct {
	built  bool
	nvars  int
	shapes []shape
}

type shape struct {
	read, write []rwrnlp.ResourceID
}

// NewSystem starts a registration phase.
func NewSystem() *System { return &System{} }

// VarBase is the untyped view of a transactional variable.
type VarBase interface {
	base() *varCore
}

type varCore struct {
	sys *System
	id  rwrnlp.ResourceID
	val any
}

func (v *varCore) base() *varCore { return v }

// Var is a typed transactional variable.
type Var[T any] struct {
	core varCore
}

func (v *Var[T]) base() *varCore { return &v.core }

// NewVar registers a new variable with an initial value. It panics after
// Build — the resource universe is fixed at build time, exactly like the
// protocol's resource set.
func NewVar[T any](sys *System, initial T) *Var[T] {
	if sys.built {
		panic("stm: NewVar after Build")
	}
	v := &Var[T]{core: varCore{sys: sys, id: rwrnlp.ResourceID(sys.nvars), val: initial}}
	sys.nvars++
	return v
}

// Reads is a convenience constructor for a read set.
func Reads(vs ...VarBase) []VarBase { return vs }

// Writes is a convenience constructor for a write set.
func Writes(vs ...VarBase) []VarBase { return vs }

// DeclareTx registers a potential transaction shape: a transaction reading
// the variables in read and writing those in write. Every multi-variable
// transaction the program will run must be covered by a declared shape
// (subsets of a shape are covered).
func (s *System) DeclareTx(read, write []VarBase) {
	if s.built {
		panic("stm: DeclareTx after Build")
	}
	s.shapes = append(s.shapes, shape{read: ids(read), write: ids(write)})
}

func ids(vs []VarBase) []rwrnlp.ResourceID {
	out := make([]rwrnlp.ResourceID, len(vs))
	for i, v := range vs {
		out[i] = v.base().id
	}
	return out
}

// STM is the frozen transaction manager.
type STM struct {
	sys  *System
	p    *rwrnlp.Protocol
	spec *rwrnlp.Spec
}

// Build freezes the system into a transaction manager.
func (s *System) Build(opt Options) *STM {
	if s.built {
		panic("stm: Build called twice")
	}
	s.built = true
	b := rwrnlp.NewSpecBuilder(s.nvars)
	for _, sh := range s.shapes {
		if err := b.DeclareRequest(sh.read, sh.write); err != nil {
			panic(fmt.Sprintf("stm: invalid declared shape: %v", err))
		}
	}
	spec := b.Build()
	return &STM{
		sys:  s,
		spec: spec,
		p:    rwrnlp.New(spec, rwrnlp.Options{Placeholders: opt.Placeholders, Spin: opt.Spin}),
	}
}

// Errors.
var (
	ErrUndeclared  = errors.New("stm: transaction shape not covered by any declared shape")
	ErrAccess      = errors.New("stm: variable not in the transaction's declared access set")
	ErrWrongSystem = errors.New("stm: variable belongs to a different system")
	ErrNotUpgraded = errors.New("stm: write access before Upgrade")
)

// Tx is an executing transaction. It is valid only inside the function it
// was handed to.
type Tx struct {
	stm      *STM
	read     map[rwrnlp.ResourceID]bool
	write    map[rwrnlp.ResourceID]bool
	writable bool // false during the optimistic phase of an upgradeable tx
}

func (tx *Tx) canRead(id rwrnlp.ResourceID) bool  { return tx.read[id] || tx.write[id] }
func (tx *Tx) canWrite(id rwrnlp.ResourceID) bool { return tx.write[id] && tx.writable }

// Get reads a variable inside a transaction. It panics on undeclared access
// — an STM access-set violation is a program bug, not a runtime condition.
func Get[T any](tx *Tx, v *Var[T]) T {
	if v.core.sys != tx.stm.sys {
		panic(ErrWrongSystem)
	}
	if !tx.canRead(v.core.id) {
		panic(ErrAccess)
	}
	return v.core.val.(T)
}

// Set writes a variable inside a transaction. It panics on undeclared or
// read-only access.
func Set[T any](tx *Tx, v *Var[T], val T) {
	if v.core.sys != tx.stm.sys {
		panic(ErrWrongSystem)
	}
	if !tx.write[v.core.id] {
		panic(ErrAccess)
	}
	if !tx.writable {
		panic(ErrNotUpgraded)
	}
	v.core.val = val
}

// checkDeclared verifies the (read, write) shape is covered by the declared
// read-sharing relation: for every accessed variable a and every READ
// variable b of the same transaction, b must be read shared with a. This is
// precisely the condition the protocol's expansion machinery needs
// (Sec. 3.2) — issuing an uncovered shape would silently weaken the
// writer-FIFO guarantees, so it is rejected instead.
func (s *STM) checkDeclared(read, write []rwrnlp.ResourceID) error {
	for _, b := range read {
		for _, a := range append(append([]rwrnlp.ResourceID{}, read...), write...) {
			if !s.spec.ReadSet(a).Has(b) {
				return fmt.Errorf("%w: read of %d alongside %d", ErrUndeclared, b, a)
			}
		}
	}
	return nil
}

// Atomically runs fn as a transaction reading the variables in read and
// writing those in write. The transaction's locks are acquired atomically
// before fn runs and released afterwards; fn's error is returned verbatim.
// Read-only transactions (empty write set) run concurrently with each
// other; mixed transactions hold read locks on their read set and write
// locks on their write set (Sec. 3.5).
func (s *STM) Atomically(read, write []VarBase, fn func(tx *Tx) error) error {
	r, w := ids(read), ids(write)
	if err := s.checkDeclared(r, w); err != nil {
		return err
	}
	tok, err := s.p.Acquire(context.Background(), r, w)
	if err != nil {
		return err
	}
	defer s.p.Release(tok)
	tx := &Tx{stm: s, read: toSet(r), write: toSet(w), writable: true}
	return fn(tx)
}

// UpgradeableResult tells AtomicallyUpgradeable what to do after the
// optimistic read phase.
type UpgradeableResult int

const (
	// Commit: no write access needed; the transaction is done.
	Commit UpgradeableResult = iota
	// Upgrade: escalate to write access and run the write phase.
	Upgrade
)

// AtomicallyUpgradeable runs an upgradeable transaction over vars
// (Sec. 3.6): readFn executes with read access and decides whether write
// access is needed; if it returns Upgrade, writeFn runs with write access
// to the same variables. Because other writers may commit between the two
// phases, writeFn must re-read anything it depends on. If the underlying
// write half wins the acquisition race, readFn is skipped and writeFn runs
// directly.
func (s *STM) AtomicallyUpgradeable(vars []VarBase, readFn func(tx *Tx) (UpgradeableResult, error), writeFn func(tx *Tx) error) error {
	vs := ids(vars)
	if err := s.checkDeclared(vs, nil); err != nil {
		return err
	}
	u, err := s.p.AcquireUpgradeable(context.Background(), vs...)
	if err != nil {
		return err
	}
	set := toSet(vs)
	if u.Reading() {
		tx := &Tx{stm: s, read: set, write: set, writable: false}
		res, err := readFn(tx)
		if err != nil || res == Commit {
			if rerr := u.ReleaseRead(); rerr != nil && err == nil {
				err = rerr
			}
			return err
		}
		if err := u.Upgrade(context.Background()); err != nil {
			return err
		}
	}
	defer u.Release()
	tx := &Tx{stm: s, read: set, write: set, writable: true}
	return writeFn(tx)
}

func toSet(ids []rwrnlp.ResourceID) map[rwrnlp.ResourceID]bool {
	m := make(map[rwrnlp.ResourceID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// Peek reads a variable outside any transaction, unsynchronized. For tests
// and initialization only.
func Peek[T any](v *Var[T]) T { return v.core.val.(T) }
