package stm_test

import (
	"fmt"

	"github.com/rtsync/rwrnlp/internal/stm"
)

// A transfer between two accounts: declared shape, atomic, never deadlocks
// or aborts.
func Example() {
	sys := stm.NewSystem()
	a := stm.NewVar(sys, 100)
	b := stm.NewVar(sys, 50)
	sys.DeclareTx(nil, stm.Writes(a, b))
	s := sys.Build(stm.Options{Placeholders: true})

	err := s.Atomically(nil, stm.Writes(a, b), func(tx *stm.Tx) error {
		stm.Set(tx, a, stm.Get(tx, a)-30)
		stm.Set(tx, b, stm.Get(tx, b)+30)
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(stm.Peek(a), stm.Peek(b))
	// Output: 70 80
}

// An upgradeable transaction reads optimistically and escalates only when a
// write turns out to be necessary (Sec. 3.6 of the paper).
func ExampleSTM_AtomicallyUpgradeable() {
	sys := stm.NewSystem()
	counter := stm.NewVar(sys, 41)
	s := sys.Build(stm.Options{})

	err := s.AtomicallyUpgradeable(stm.Reads(counter),
		func(tx *stm.Tx) (stm.UpgradeableResult, error) {
			if stm.Get(tx, counter) >= 42 {
				return stm.Commit, nil // already done: stayed read-only
			}
			return stm.Upgrade, nil
		},
		func(tx *stm.Tx) error {
			// Re-read after the upgrade: the value may have changed.
			if v := stm.Get(tx, counter); v < 42 {
				stm.Set(tx, counter, 42)
			}
			return nil
		})
	if err != nil {
		panic(err)
	}
	fmt.Println(stm.Peek(counter))
	// Output: 42
}

// The transactional map: point operations lock one bucket; snapshots are
// consistent across all buckets.
func ExampleMap() {
	m := stm.NewMap[string, int](stm.MapConfig{Buckets: 8})
	m.Put("x", 1)
	m.Put("y", 2)
	m.Update("x", false, func(v int) (int, bool) { return v + 10, true })
	snap := m.Snapshot()
	fmt.Println(snap["x"], snap["y"], m.Len())
	// Output: 11 2 2
}
