package stm

import (
	"fmt"
	"sync"
	"testing"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[string, int](MapConfig{Buckets: 4})
	if _, ok := m.Get("a"); ok {
		t.Fatal("empty map reports a key")
	}
	m.Put("a", 1)
	m.Put("b", 2)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	m.Put("a", 10)
	if v, _ := m.Get("a"); v != 10 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if !m.Delete("a") || m.Delete("a") {
		t.Fatal("Delete semantics wrong")
	}
	snap := m.Snapshot()
	if len(snap) != 1 || snap["b"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatal("Clear left entries")
	}
}

func TestMapUpdateUpgradeable(t *testing.T) {
	m := NewMap[string, int](MapConfig{Buckets: 2})
	m.Put("k", 5)

	// No change needed: read-only path, no write.
	if m.Update("k", false, func(v int) (int, bool) { return v, false }) {
		t.Fatal("no-op update reported a change")
	}
	// Change.
	if !m.Update("k", false, func(v int) (int, bool) { return v + 1, true }) {
		t.Fatal("update did not report the change")
	}
	if v, _ := m.Get("k"); v != 6 {
		t.Fatalf("k = %d, want 6", v)
	}
	// Missing key, no insert.
	if m.Update("missing", false, func(v int) (int, bool) { return 1, true }) {
		t.Fatal("updated a missing key without insertIfMissing")
	}
	// Missing key, insert.
	if !m.Update("missing", true, func(v int) (int, bool) { return v + 7, true }) {
		t.Fatal("insertIfMissing did not insert")
	}
	if v, _ := m.Get("missing"); v != 7 {
		t.Fatalf("inserted = %d, want 7", v)
	}
}

// Concurrent counters via Update must not lose increments (the upgradeable
// read-then-write path is atomic per bucket).
func TestMapConcurrentCounters(t *testing.T) {
	m := NewMap[int, int](MapConfig{Buckets: 8, Options: Options{Placeholders: true}})
	const keys = 16
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				k := (g + i) % keys
				m.Update(k, true, func(v int) (int, bool) { return v + 1, true })
			}
		}()
	}
	// Concurrent snapshots must always see a consistent total ≤ expected.
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for i := 0; i < 100; i++ {
			total := 0
			for _, v := range m.Snapshot() {
				total += v
			}
			if total > 6*perG {
				t.Errorf("snapshot total %d exceeds increments issued", total)
			}
		}
	}()
	wg.Wait()
	<-snapDone
	total := 0
	for _, v := range m.Snapshot() {
		total += v
	}
	if total != 6*perG {
		t.Fatalf("lost updates: total = %d, want %d", total, 6*perG)
	}
}

// Point operations on different buckets proceed while a snapshot is NOT in
// progress; and a snapshot is consistent under concurrent churn (never sees
// a torn multi-bucket state — validated by storing matched pairs).
func TestMapSnapshotConsistency(t *testing.T) {
	m := NewMap[string, int](MapConfig{Buckets: 8})
	// Invariant: pairKeys i and i' always hold equal values (updated in one
	// tx each... they may hash to different buckets, so update them via two
	// single-bucket writes is NOT atomic — instead keep the invariant
	// per-key: value always even (written in one Put).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.Put(fmt.Sprintf("k%d", g), 2*i) // always even
				i++
			}
		}()
	}
	for i := 0; i < 200; i++ {
		for k, v := range m.Snapshot() {
			if v%2 != 0 {
				t.Fatalf("torn value %d under %s", v, k)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func BenchmarkMapMixed(b *testing.B) {
	m := NewMap[int, int](MapConfig{Buckets: 16, Options: Options{Placeholders: true}})
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			switch i % 10 {
			case 0:
				m.Put(i%64, i)
			case 1:
				m.Update(i%64, true, func(v int) (int, bool) { return v + 1, true })
			case 2:
				_ = m.Snapshot()
			default:
				m.Get(i % 64)
			}
			i++
		}
	})
}
