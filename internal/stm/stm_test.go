package stm

import (
	"errors"
	"sync"
	"testing"
)

func bankSystem(t testing.TB, n int) (*STM, []*Var[int]) {
	t.Helper()
	sys := NewSystem()
	accounts := make([]*Var[int], n)
	var all []VarBase
	for i := range accounts {
		accounts[i] = NewVar(sys, 100)
		all = append(all, accounts[i])
	}
	// Shapes: any-pair transfer (write 2), full audit (read all), and
	// upgradeable single-account maintenance.
	sys.DeclareTx(all, nil)
	for i := range accounts {
		for j := range accounts {
			if i != j {
				sys.DeclareTx(nil, Writes(accounts[i], accounts[j]))
			}
		}
	}
	return sys.Build(Options{Placeholders: true}), accounts
}

func TestTransferPreservesTotal(t *testing.T) {
	s, acc := bankSystem(t, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			from, to := acc[g%4], acc[(g+1)%4]
			for i := 0; i < 300; i++ {
				err := s.Atomically(nil, Writes(from, to), func(tx *Tx) error {
					f := Get(tx, from)
					Set(tx, from, f-1)
					Set(tx, to, Get(tx, to)+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Concurrent audits must always observe a consistent total.
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		for i := 0; i < 200; i++ {
			err := s.Atomically(Reads(acc[0], acc[1], acc[2], acc[3]), nil, func(tx *Tx) error {
				total := 0
				for _, a := range acc {
					total += Get(tx, a)
				}
				if total != 400 {
					t.Errorf("audit saw total %d, want 400", total)
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-auditDone

	total := 0
	for _, a := range acc {
		total += Peek(a)
	}
	if total != 400 {
		t.Errorf("final total %d, want 400", total)
	}
}

func TestUndeclaredShapeRejected(t *testing.T) {
	sys := NewSystem()
	a := NewVar(sys, 1)
	b := NewVar(sys, 2)
	c := NewVar(sys, 3)
	sys.DeclareTx(Reads(a, b), nil)
	s := sys.Build(Options{})

	// Declared shape and its subsets pass.
	if err := s.Atomically(Reads(a, b), nil, func(*Tx) error { return nil }); err != nil {
		t.Errorf("declared shape rejected: %v", err)
	}
	if err := s.Atomically(Reads(a), nil, func(*Tx) error { return nil }); err != nil {
		t.Errorf("subset shape rejected: %v", err)
	}
	// Undeclared multi-variable read is rejected.
	err := s.Atomically(Reads(a, c), nil, func(*Tx) error { return nil })
	if !errors.Is(err, ErrUndeclared) {
		t.Errorf("undeclared shape: err = %v", err)
	}
	// Single-variable transactions never need declaration.
	if err := s.Atomically(Reads(c), nil, func(*Tx) error { return nil }); err != nil {
		t.Errorf("singleton read rejected: %v", err)
	}
	if err := s.Atomically(nil, Writes(c), func(tx *Tx) error { Set(tx, c, 9); return nil }); err != nil {
		t.Errorf("singleton write rejected: %v", err)
	}
	if Peek(c) != 9 {
		t.Errorf("write lost: c = %d", Peek(c))
	}
}

func TestAccessControl(t *testing.T) {
	sys := NewSystem()
	a := NewVar(sys, 1)
	b := NewVar(sys, 2)
	sys.DeclareTx(Reads(a), Writes(b))
	s := sys.Build(Options{})

	err := s.Atomically(Reads(a), Writes(b), func(tx *Tx) error {
		_ = Get(tx, a) // declared read: fine
		_ = Get(tx, b) // reading a write-set var: fine
		Set(tx, b, 5)  // declared write: fine

		func() {
			defer func() {
				if recover() == nil {
					t.Error("write to read-only var did not panic")
				}
			}()
			Set(tx, a, 99)
		}()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if Peek(a) != 1 || Peek(b) != 5 {
		t.Errorf("a=%d b=%d", Peek(a), Peek(b))
	}

	// Access outside the declared set panics.
	sys2 := NewSystem()
	x := NewVar(sys2, 0)
	y := NewVar(sys2, 0)
	s2 := sys2.Build(Options{})
	_ = s2.Atomically(Reads(x), nil, func(tx *Tx) error {
		defer func() {
			if recover() == nil {
				t.Error("undeclared access did not panic")
			}
		}()
		_ = Get(tx, y)
		return nil
	})
}

func TestUpgradeableTransaction(t *testing.T) {
	sys := NewSystem()
	counter := NewVar(sys, 0)
	s := sys.Build(Options{})

	// Optimistic read that commits without writing.
	readOnly := 0
	err := s.AtomicallyUpgradeable(Reads(counter),
		func(tx *Tx) (UpgradeableResult, error) {
			readOnly = Get(tx, counter)
			return Commit, nil
		},
		func(tx *Tx) error {
			t.Error("write phase ran although Commit was returned")
			return nil
		})
	if err != nil || readOnly != 0 {
		t.Fatalf("err=%v readOnly=%d", err, readOnly)
	}

	// Conditional upgrade: increment only if below threshold.
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				err := s.AtomicallyUpgradeable(Reads(counter),
					func(tx *Tx) (UpgradeableResult, error) {
						if Get(tx, counter) >= 300 {
							return Commit, nil
						}
						return Upgrade, nil
					},
					func(tx *Tx) error {
						// Must re-read: the value may have changed between
						// the phases.
						if v := Get(tx, counter); v < 300 {
							Set(tx, counter, v+1)
						}
						return nil
					})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v := Peek(counter); v != 300 {
		t.Errorf("counter = %d, want 300 (upgrade races lost updates)", v)
	}
}

func TestWritePhaseGuardsDuringRead(t *testing.T) {
	sys := NewSystem()
	v := NewVar(sys, 0)
	s := sys.Build(Options{})
	_ = s.AtomicallyUpgradeable(Reads(v),
		func(tx *Tx) (UpgradeableResult, error) {
			defer func() {
				if recover() == nil {
					t.Error("Set during optimistic read phase did not panic")
				}
			}()
			Set(tx, v, 1)
			return Commit, nil
		},
		func(tx *Tx) error { return nil })
}

func TestBuildGuards(t *testing.T) {
	sys := NewSystem()
	NewVar(sys, 0)
	_ = sys.Build(Options{})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after Build did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewVar", func() { NewVar(sys, 1) })
	mustPanic("DeclareTx", func() { sys.DeclareTx(nil, nil) })
	mustPanic("Build", func() { sys.Build(Options{}) })
}

func TestTxError(t *testing.T) {
	sys := NewSystem()
	v := NewVar(sys, 7)
	s := sys.Build(Options{})
	sentinel := errors.New("boom")
	if err := s.Atomically(nil, Writes(v), func(tx *Tx) error {
		Set(tx, v, 8)
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	// The lock was released despite the error; another tx proceeds.
	if err := s.Atomically(Reads(v), nil, func(tx *Tx) error {
		if Get(tx, v) != 8 {
			t.Error("STM is not a database: writes are not rolled back")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
