package simtime

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []Time
	e.At(5, func(t Time) { got = append(got, t) })
	e.At(1, func(t Time) { got = append(got, t) })
	e.At(3, func(t Time) { got = append(got, t) })
	e.Run(Forever)
	want := []Time{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired order %v, want %v", got, want)
		}
	}
	if e.Now() != 5 {
		t.Errorf("Now() = %d, want 5", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func(Time) { got = append(got, i) })
	}
	e.Run(Forever)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.At(2, func(Time) { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	e.Run(Forever)
	if fired {
		t.Error("canceled event fired")
	}
	ev.Cancel() // double cancel is a no-op
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	var got []Time
	e.At(1, func(t Time) {
		got = append(got, t)
		e.After(2, func(t Time) { got = append(got, t) })
		e.At(t, func(t Time) { got = append(got, t) }) // same-time, fires after current
	})
	e.Run(Forever)
	want := []Time{1, 1, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEnginePastPanics(t *testing.T) {
	var e Engine
	e.At(5, func(Time) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(1, func(Time) {})
}

func TestEngineHorizon(t *testing.T) {
	var e Engine
	fired := 0
	e.At(3, func(Time) { fired++ })
	e.At(10, func(Time) { fired++ })
	end := e.Run(5)
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
	if end != 5 {
		t.Errorf("end = %d, want 5 (clock advanced to horizon)", end)
	}
	// Event at exactly the horizon fires.
	var e2 Engine
	e2.At(5, func(Time) { fired++ })
	e2.Run(5)
	if fired != 2 {
		t.Errorf("horizon-edge event did not fire")
	}
}

func TestEnginePending(t *testing.T) {
	var e Engine
	a := e.At(1, func(Time) {})
	e.At(2, func(Time) {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
	a.Cancel()
	if e.Pending() != 1 {
		t.Errorf("Pending = %d after cancel, want 1", e.Pending())
	}
}

// Randomized: the engine fires events in nondecreasing time order matching a
// sorted reference, under interleaved scheduling and cancellation.
func TestEngineRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var e Engine
		var fired []Time
		var want []Time
		n := rng.Intn(200) + 1
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(1000))
			ev := e.At(at, func(t Time) { fired = append(fired, t) })
			if rng.Intn(5) == 0 {
				ev.Cancel()
			} else {
				want = append(want, at)
			}
		}
		e.Run(Forever)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(fired) != len(want) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: order mismatch at %d", trial, i)
			}
		}
	}
}
