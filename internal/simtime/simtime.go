// Package simtime provides the discrete-event engine underlying the
// multiprocessor simulator: a logical clock and a time-ordered event queue
// with stable FIFO tie-breaking and O(log n) operations.
//
// The paper's analysis assumes continuous time with zero-overhead protocol
// invocations (Sec. 2, "Analysis assumptions"); the simulator realizes this
// with integer nanosecond ticks and instantaneous event processing, so the
// analytical bounds must hold exactly rather than approximately.
package simtime

import "container/heap"

// Time is a logical instant in nanosecond ticks.
type Time int64

// Forever is a horizon value later than any event a simulation schedules.
const Forever = Time(1<<63 - 1)

// Event is a scheduled callback. Events at equal times fire in scheduling
// order (FIFO), giving deterministic replays.
type Event struct {
	At Time
	Fn func(Time)

	seq   int64
	index int
	dead  bool
}

// Cancel marks the event so it will not fire. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.dead }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event executor. The zero value is ready to use.
type Engine struct {
	now     Time
	nextSeq int64
	events  eventHeap
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at time t. Scheduling in the past panics — it
// indicates a simulator bug, not a recoverable condition. The returned Event
// may be canceled.
func (e *Engine) At(t Time, fn func(Time)) *Event {
	if t < e.now {
		panic("simtime: event scheduled in the past")
	}
	e.nextSeq++
	ev := &Event{At: t, Fn: fn, seq: e.nextSeq}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d ticks from now.
func (e *Engine) After(d Time, fn func(Time)) *Event {
	return e.At(e.now+d, fn)
}

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.At
		ev.Fn(ev.At)
		return true
	}
	return false
}

// Run fires events in order until the queue is empty or the next event lies
// beyond horizon. It returns the final simulation time. Events exactly at
// horizon still fire.
func (e *Engine) Run(horizon Time) Time {
	for len(e.events) > 0 {
		// Peek; skip dead events without advancing time.
		ev := e.events[0]
		if ev.dead {
			heap.Pop(&e.events)
			continue
		}
		if ev.At > horizon {
			break
		}
		e.Step()
	}
	if e.now < horizon && horizon != Forever {
		e.now = horizon
	}
	return e.now
}

// Pending returns the number of live scheduled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}
