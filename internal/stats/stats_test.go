package stats

import (
	"strings"
	"testing"

	"github.com/rtsync/rwrnlp/internal/simtime"
)

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary: %+v", s)
	}
	xs := make([]simtime.Time, 100)
	for i := range xs {
		xs[i] = simtime.Time(100 - i) // 1..100 reversed: Summarize must sort
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary: %+v", s)
	}
	if s.Mean != 50.5 {
		t.Errorf("mean = %f", s.Mean)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Errorf("p50 = %d", s.P50)
	}
	if s.P99 < 95 {
		t.Errorf("p99 = %d", s.P99)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Errorf("String: %s", s)
	}
	// Input unmodified.
	if xs[0] != 100 {
		t.Error("Summarize mutated its input")
	}
}

func TestHistogram(t *testing.T) {
	if h := Histogram(nil, 4); h != "(empty)" {
		t.Errorf("empty hist: %q", h)
	}
	xs := []simtime.Time{1, 1, 2, 10, 10, 10}
	h := Histogram(xs, 2)
	if !strings.Contains(h, "#") {
		t.Errorf("no bars: %q", h)
	}
	if n := strings.Count(h, "\n"); n != 2 {
		t.Errorf("bucket lines = %d", n)
	}
	// Identical values do not divide by zero.
	_ = Histogram([]simtime.Time{5, 5, 5}, 3)
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != "∞" {
		t.Error("division by zero")
	}
	if Ratio(3, 2) != "1.50" {
		t.Errorf("ratio = %s", Ratio(3, 2))
	}
}
