// Package stats provides the small statistical helpers the experiment
// drivers report with: maxima, means, percentiles, and fixed-width
// histograms over simtime durations.
package stats

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rtsync/rwrnlp/internal/simtime"
)

// Summary aggregates a sample of durations.
type Summary struct {
	N    int
	Min  simtime.Time
	Max  simtime.Time
	Mean float64
	P50  simtime.Time
	P95  simtime.Time
	P99  simtime.Time
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []simtime.Time) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]simtime.Time, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	var sum float64
	for _, x := range s {
		sum += float64(x)
	}
	return Summary{
		N:    len(s),
		Min:  s[0],
		Max:  s[len(s)-1],
		Mean: sum / float64(len(s)),
		P50:  percentile(s, 0.50),
		P95:  percentile(s, 0.95),
		P99:  percentile(s, 0.99),
	}
}

func percentile(sorted []simtime.Time, p float64) simtime.Time {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d mean=%.1f p50=%d p95=%d p99=%d max=%d",
		s.N, s.Min, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Histogram renders a fixed-width ASCII histogram of the sample with the
// given number of buckets, for quick terminal inspection.
func Histogram(xs []simtime.Time, buckets int) string {
	if len(xs) == 0 || buckets <= 0 {
		return "(empty)"
	}
	var lo, hi simtime.Time
	lo, hi = xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, buckets)
	for _, x := range xs {
		b := int(int64(x-lo) * int64(buckets) / int64(hi-lo+1))
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	width := simtime.Time(int64(hi-lo)) / simtime.Time(buckets)
	for i, c := range counts {
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", c*40/maxC)
		}
		fmt.Fprintf(&b, "%12d ┤%-40s %d\n", lo+simtime.Time(i)*width, bar, c)
	}
	return b.String()
}

// Ratio formats a/b with a guard for b == 0.
func Ratio(a, b float64) string {
	if b == 0 {
		return "∞"
	}
	return fmt.Sprintf("%.2f", a/b)
}
