package obs

import (
	"bytes"
	"fmt"
	"runtime/pprof"
	"strings"
	"sync"

	"github.com/rtsync/rwrnlp/internal/core"
)

// Watchdog fires when a request has been waiting longer than its Theorem 1/2
// envelope times a configurable slack — a liveness alarm, complementing the
// BoundMonitor (which verdicts only requests that DO get satisfied; a
// stranded request never reaches it). On firing it captures a StallReport:
// the stalled request, how long it waited versus its bound, and optionally a
// flight-recorder dump plus a goroutine profile, so the stall can be
// diagnosed post hoc.
//
// Envelope: like the BoundMonitor, the watchdog runs in observed-envelope
// mode by default (L^r_max/L^w_max are the largest critical sections seen so
// far; no checks fire until at least one CS completed) or in analytic mode
// via SetAnalytic. A read's envelope is L^r+L^w (Theorem 1), a write's
// (m−1)(L^r+L^w) (Theorem 2); m is the configured processor count, or — when
// zero — the maximum number of concurrently incomplete requests observed,
// which upper-bounds the paper's m for a system of pinned jobs.
//
// Checks run on every observed event against that event's time, and via
// Poll(now) for callers with their own clock (the runtime lock's tick plane,
// wall-clock timers). Each request fires at most once. Incremental requests
// are exempt (their span includes hold phases, Sec. 3.7); the write half of
// an upgradeable pair restarts its clock at EvReadSegmentDone (Sec. 3.6).
//
// The watchdog implements core.Observer; the OnStall callback is invoked
// without internal locks held, so it may call back into the watchdog (but
// must not call into the RSM, per the Observer contract).
type Watchdog struct {
	mu sync.Mutex

	m        int
	dynM     bool // m tracks max observed concurrency
	slack    float64
	analytic bool
	lr, lw   int64 // analytic envelope

	obsLr, obsLw int64 // observed per-kind max CS length

	flight    *FlightRecorder
	goroutine bool
	onStall   func(StallReport)
	keep      int

	pending  map[core.ReqID]*wdPending
	inflight int
	now      core.Time // high-water mark of observed event times

	fired   int64
	reports []StallReport
}

type wdPending struct {
	kind        core.Kind
	incremental bool
	tag         any
	waitStart   core.Time
	satisfied   bool
	fired       bool
}

// WatchdogConfig configures a Watchdog. The zero value is usable: observed
// envelope, dynamic m, slack 4, no capture sinks.
type WatchdogConfig struct {
	// M is the processor count for Theorem 2's (m−1) factor; 0 tracks the
	// maximum observed concurrency instead.
	M int
	// Slack multiplies the envelope before comparison (values <= 0 mean 4).
	// Slack absorbs charged overheads (queue maintenance, wakeup latency)
	// that the pure-protocol bounds do not model.
	Slack float64
	// Flight, when set, is dumped into each StallReport.
	Flight *FlightRecorder
	// GoroutineProfile attaches a text goroutine profile to each report.
	GoroutineProfile bool
	// OnStall is called for each firing (after internal state is updated,
	// no locks held). May be nil; reports are retained either way.
	OnStall func(StallReport)
	// Keep bounds the retained report list (<= 0 means 8).
	Keep int
}

// DefaultWatchdogSlack is the envelope multiplier used when none is given.
const DefaultWatchdogSlack = 4.0

// NewWatchdog creates a watchdog; attach it to the event stream with
// core.MultiObserver alongside other observers.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	w := &Watchdog{
		m:         cfg.M,
		dynM:      cfg.M <= 0,
		slack:     cfg.Slack,
		flight:    cfg.Flight,
		goroutine: cfg.GoroutineProfile,
		onStall:   cfg.OnStall,
		keep:      cfg.Keep,
		pending:   map[core.ReqID]*wdPending{},
	}
	if w.slack <= 0 {
		w.slack = DefaultWatchdogSlack
	}
	if w.keep <= 0 {
		w.keep = 8
	}
	return w
}

// SetAnalytic switches to a fixed a-priori envelope (see BoundMonitor).
// Call before any events are observed.
func (w *Watchdog) SetAnalytic(lr, lw int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.analytic, w.lr, w.lw = true, lr, lw
}

// StallReport describes one watchdog firing.
type StallReport struct {
	Req       core.ReqID `json:"req"`
	Kind      core.Kind  `json:"kind"`
	Tag       string     `json:"tag,omitempty"`
	WaitStart core.Time  `json:"wait_start"`
	Now       core.Time  `json:"now"`
	Waited    int64      `json:"waited"`
	Bound     int64      `json:"bound"` // envelope × slack at firing time
	Analytic  bool       `json:"analytic"`
	Lr        int64      `json:"lr"`
	Lw        int64      `json:"lw"`
	M         int        `json:"m"`
	Slack     float64    `json:"slack"`
	// Dump is the flight-recorder snapshot taken at firing, if a recorder
	// was configured.
	Dump *FlightDump `json:"dump,omitempty"`
	// GoroutineProfile is the debug=1 text profile, if enabled.
	GoroutineProfile []byte `json:"goroutine_profile,omitempty"`
}

func (r StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "STALL req=%d (%s)", r.Req, r.Kind)
	if r.Tag != "" {
		fmt.Fprintf(&b, " tag=%s", r.Tag)
	}
	mode := "observed"
	if r.Analytic {
		mode = "analytic"
	}
	fmt.Fprintf(&b, ": waited %d since t=%d (now %d) > bound %d (%s Lr=%d Lw=%d m=%d slack=%.1f)",
		r.Waited, r.WaitStart, r.Now, r.Bound, mode, r.Lr, r.Lw, r.M, r.Slack)
	return b.String()
}

// Observe implements core.Observer.
func (w *Watchdog) Observe(e core.Event) {
	w.mu.Lock()
	switch e.Type {
	case core.EvIssued:
		w.pending[e.Req] = &wdPending{
			kind:        e.Kind,
			incremental: e.Incremental,
			tag:         e.Tag,
			waitStart:   e.T,
		}
		w.inflight++
		if w.dynM && w.inflight > w.m {
			w.m = w.inflight
		}

	case core.EvSatisfied:
		if p := w.pending[e.Req]; p != nil {
			p.satisfied = true
			p.waitStart = e.T // now holding: reuse as CS start
		}

	case core.EvCompleted, core.EvReadSegmentDone:
		if p := w.pending[e.Req]; p != nil {
			if p.satisfied && !p.incremental {
				cs := int64(e.T - p.waitStart)
				if p.kind == core.KindRead {
					if cs > w.obsLr {
						w.obsLr = cs
					}
				} else if cs > w.obsLw {
					w.obsLw = cs
				}
			}
			delete(w.pending, e.Req)
			w.inflight--
		}
		if e.Type == core.EvReadSegmentDone {
			if peer := w.pending[e.Pair]; peer != nil && !peer.satisfied {
				peer.waitStart = e.T
			}
		}

	case core.EvCanceled:
		if _, ok := w.pending[e.Req]; ok {
			delete(w.pending, e.Req)
			w.inflight--
		}
	}
	if e.T > w.now {
		w.now = e.T
	}
	fired := w.check(w.now)
	w.mu.Unlock()
	w.deliver(fired)
}

// Poll checks all pending requests against an external clock (shard ticks or
// wall time, same units as the observed events) and returns the number of
// new firings. now values behind the event high-water mark are ignored.
func (w *Watchdog) Poll(now core.Time) int {
	w.mu.Lock()
	if now > w.now {
		w.now = now
	}
	fired := w.check(w.now)
	w.mu.Unlock()
	w.deliver(fired)
	return len(fired)
}

// check scans pending requests against now. Caller holds w.mu; returns the
// reports to deliver after unlock.
func (w *Watchdog) check(now core.Time) []StallReport {
	lr, lw := w.lr, w.lw
	if !w.analytic {
		lr, lw = w.obsLr, w.obsLw
		if lr+lw == 0 {
			return nil // envelope not warmed up yet
		}
	}
	var out []StallReport
	for id, p := range w.pending {
		if p.satisfied || p.fired || p.incremental {
			continue
		}
		m := w.m
		if m < 2 {
			m = 2 // (m−1) ≥ 1: a solo writer still gets a finite envelope
		}
		env := lr + lw
		if p.kind == core.KindWrite {
			env = int64(m-1) * (lr + lw)
		}
		bound := int64(float64(env) * w.slack)
		waited := int64(now - p.waitStart)
		if waited <= bound {
			continue
		}
		p.fired = true
		w.fired++
		r := StallReport{
			Req:       id,
			Kind:      p.kind,
			WaitStart: p.waitStart,
			Now:       now,
			Waited:    waited,
			Bound:     bound,
			Analytic:  w.analytic,
			Lr:        lr,
			Lw:        lw,
			M:         m,
			Slack:     w.slack,
		}
		if p.tag != nil {
			r.Tag = fmt.Sprint(p.tag)
		}
		if w.flight != nil {
			d := w.flight.Dump()
			r.Dump = &d
		}
		if w.goroutine {
			var buf bytes.Buffer
			if prof := pprof.Lookup("goroutine"); prof != nil {
				_ = prof.WriteTo(&buf, 1)
			}
			r.GoroutineProfile = buf.Bytes()
		}
		w.reports = append(w.reports, r)
		if len(w.reports) > w.keep {
			w.reports = w.reports[len(w.reports)-w.keep:]
		}
		out = append(out, r)
	}
	return out
}

// deliver invokes the callback outside the lock.
func (w *Watchdog) deliver(reports []StallReport) {
	if w.onStall == nil {
		return
	}
	for _, r := range reports {
		w.onStall(r)
	}
}

// Firings reports how many stalls have fired so far.
func (w *Watchdog) Firings() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}

// Reports returns the retained stall reports, oldest first.
func (w *Watchdog) Reports() []StallReport {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]StallReport(nil), w.reports...)
}
