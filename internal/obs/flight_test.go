package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
)

// driveFig2 replays the Fig. 2 scenario into an observer and returns the
// request IDs (read A, write B, read C).
func driveFig2(t *testing.T, o core.Observer) (a, b, c core.ReqID) {
	t.Helper()
	rsm := core.NewRSM(core.NewSpecBuilder(2).Build(), core.Options{})
	rsm.SetObserver(o)
	var err error
	if a, err = rsm.Issue(1, []core.ResourceID{0}, nil, "A"); err != nil {
		t.Fatal(err)
	}
	if b, err = rsm.Issue(2, nil, []core.ResourceID{0}, "B"); err != nil {
		t.Fatal(err)
	}
	if c, err = rsm.Issue(3, []core.ResourceID{0}, nil, "C"); err != nil {
		t.Fatal(err)
	}
	for i, id := range []core.ReqID{a, b, c} {
		if err := rsm.Complete(core.Time(6+3*i), id); err != nil {
			t.Fatal(err)
		}
	}
	return a, b, c
}

// TestFlightDumpRoundTrip: encode → decode → encode must be byte-identical,
// and the decoded records must reconstruct the original wait edges.
func TestFlightDumpRoundTrip(t *testing.T) {
	fl := NewFlightRecorder(1, 64)
	_, wb, rc := driveFig2(t, fl.ShardObserver(0))

	d := fl.Dump()
	if len(d.Records) == 0 {
		t.Fatal("dump is empty")
	}

	var buf1 bytes.Buffer
	if err := d.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	d2, err := ParseFlightDump(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := d2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Errorf("round trip not stable:\nfirst:  %s\nsecond: %s", buf1.Bytes(), buf2.Bytes())
	}

	// The reconstructed events still carry C's wait edge behind B.
	var issuedC core.Event
	for _, e := range d2.Events() {
		if e.Type == core.EvIssued && e.Req == rc {
			issuedC = e
		}
	}
	if !reflect.DeepEqual(issuedC.Blockers, []core.ReqID{wb}) {
		t.Errorf("decoded C issue blockers = %v, want [%d]", issuedC.Blockers, wb)
	}
	if issuedC.Tag != "C" {
		t.Errorf("decoded C tag = %v, want \"C\"", issuedC.Tag)
	}
}

// TestFlightRingBounded: the ring keeps only the most recent perShard
// records and Dump returns them in capture order.
func TestFlightRingBounded(t *testing.T) {
	fl := NewFlightRecorder(2, 4)
	for i := 0; i < 10; i++ {
		fl.Record(i%2, core.Event{T: core.Time(i), Type: core.EvIssued, Req: core.ReqID(i)})
	}
	d := fl.Dump()
	if len(d.Records) != 8 {
		t.Fatalf("dump has %d records, want 8 (2 shards × 4 slots)", len(d.Records))
	}
	for i := 1; i < len(d.Records); i++ {
		if d.Records[i].Seq <= d.Records[i-1].Seq {
			t.Fatalf("records not in capture order: %+v", d.Records)
		}
	}
	// The two oldest records (req 0 and 1) were overwritten.
	for _, rec := range d.Records {
		if rec.Req < 2 {
			t.Errorf("record req=%d should have been evicted", rec.Req)
		}
	}
}

// TestFlightDumpPerfetto: the dump renders as a structurally valid
// Perfetto/Chrome trace (JSON with a traceEvents array, complete slices for
// each satisfied request).
func TestFlightDumpPerfetto(t *testing.T) {
	fl := NewFlightRecorder(1, 64)
	driveFig2(t, fl.ShardObserver(0))

	var buf bytes.Buffer
	if err := fl.Dump().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, buf.String())
	}
	var slices int
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			slices++
		}
	}
	if slices == 0 {
		t.Errorf("perfetto trace has no complete slices:\n%s", buf.String())
	}
}

// TestFlightDumpAttribution: replaying a dump offline reproduces the causal
// attribution (the cmd/flightdump path).
func TestFlightDumpAttribution(t *testing.T) {
	fl := NewFlightRecorder(1, 64)
	_, _, rc := driveFig2(t, fl.ShardObserver(0))

	rep := fl.Dump().Attribution(5)
	if len(rep.Top) == 0 || rep.Top[0].Req != rc {
		t.Fatalf("offline attribution top = %+v, want req %d first", rep.Top, rc)
	}
	var sum int64
	for _, p := range rep.Top[0].Parts {
		sum += p.Span
	}
	if sum != rep.Top[0].Delay {
		t.Errorf("offline decomposition sums to %d, want %d", sum, rep.Top[0].Delay)
	}
}

// TestFlightConcurrentDump: dumping while recording is race-free (run under
// -race) and always yields well-formed records.
func TestFlightConcurrentDump(t *testing.T) {
	fl := NewFlightRecorder(4, 32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for shard := 0; shard < 4; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fl.Record(shard, core.Event{
					T: core.Time(i), Type: core.EvIssued, Req: core.ReqID(i*4 + shard),
				})
			}
		}(shard)
	}
	for i := 0; i < 50; i++ {
		d := fl.Dump()
		for _, rec := range d.Records {
			if rec.Type != "issued" {
				t.Errorf("torn record: %+v", rec)
			}
		}
	}
	close(stop)
	wg.Wait()
}
