// Package obs is the repository's observability layer: low-overhead protocol
// metrics (sharded atomic counters, gauges, and HDR-style log-linear
// histograms with exemplars), an event-driven metrics observer for the RSM's
// protocol event stream, an online Theorem 1/2 bound monitor, a bounded
// time-series ring for windowed rates and quantiles, a Perfetto/Chrome
// trace-event exporter, and an HTTP debug endpoint.
//
// The metrics primitives are lock-free on the hot path: counters stripe
// increments across cache-line-padded shards keyed by goroutine stack
// address, histograms index a log-linear bucket array with one atomic add per
// observation (sum striped like a Counter), and no instrument ever blocks.
// Registration (name lookup) is mutex-guarded but off the hot path —
// observers cache instrument pointers.
//
// Time units are whatever the producing plane uses: the simulator reports
// nanoseconds of simulated time, the runtime lock reports wall-clock
// nanoseconds for its wall_* histograms and logical protocol ticks for the
// event-derived ones (one tick per protocol invocation, so tick-valued
// "delays" count invocations overlapping the wait, not seconds).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// numShards stripes counter increments to keep heavily contended counters off
// a single cache line. Must be a power of two.
const numShards = 16

// padded keeps each shard on its own cache line (64 bytes on every platform
// this repo targets).
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// shardIndex derives a goroutine-stable stripe index from the address of a
// stack variable: distinct goroutines run on distinct stacks, so concurrent
// writers spread across shards, while a single goroutine keeps hitting the
// same hot line. The uintptr conversion never escapes b.
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>9) & (numShards - 1)
}

// Counter is a monotonically increasing, sharded atomic counter.
type Counter struct {
	shards [numShards]padded
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	c.shards[shardIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. It is linearizable only in quiescence; concurrent
// readers see a value between the counts before and after in-flight adds.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous value (queue depth, in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Log-linear ("HDR-style") bucket layout. Values below 2^histSubBits get one
// bucket each (exact); every higher power-of-two octave [2^e, 2^(e+1)) is
// split into histSubBuckets equal-width sub-buckets. A bucket's width is then
// at most 2^-histSubBits of its lower bound, so reporting any point inside
// the bucket — this package reports the upper bound, clamped to the observed
// min/max — over-estimates the true sample by at most HistMaxRelError.
const (
	histSubBits    = 4
	histSubBuckets = 1 << histSubBits // 16 sub-buckets per octave
	// Octaves cover exponents histSubBits..62 (bits.Len64 of a positive
	// int64 is at most 63), after the exact region [0, histSubBuckets).
	histBuckets = histSubBuckets + (63-histSubBits)*histSubBuckets // 960
)

// HistMaxRelError is the documented worst-case relative quantile error: the
// reported value is never below the true sample and exceeds it by at most
// this fraction (6.25%). Samples below 2^histSubBits are exact.
const HistMaxRelError = 1.0 / float64(histSubBuckets)

// bucketIndex maps a non-negative sample to its log-linear bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubBuckets {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1
	sub := int((u >> (e - histSubBits)) & (histSubBuckets - 1))
	return histSubBuckets + (int(e)-histSubBits)*histSubBuckets + sub
}

// bucketBounds returns the inclusive [lo, hi] value range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i < histSubBuckets {
		return int64(i), int64(i)
	}
	j := i - histSubBuckets
	e := uint(histSubBits + j/histSubBuckets)
	sub := int64(j % histSubBuckets)
	width := int64(1) << (e - histSubBits)
	lo = int64(1)<<e + sub*width
	return lo, lo + width - 1
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) int64 {
	_, hi := bucketBounds(i)
	return hi
}

// Histogram is a fixed-size log-linear (HDR-style) histogram of non-negative
// int64 samples (durations, depths). Recording is one atomic add into the
// bucket array plus a sharded sum add (Counter-style striping keeps hot sums
// off a single cache line) and max/min maintenance; quantiles are extracted
// from the bucket counts at snapshot time with ≤ HistMaxRelError one-sided
// relative error, with the true max and min tracked exactly.
//
// Each octave additionally retains one exemplar slot — the most recent tagged
// sample (request ID + flight-recorder sequence) that landed there via
// ObserveTagged — so a tail bucket in a scrape can be traced back to the
// exact flight-recorder window that produced it.
type Histogram struct {
	buckets   [histBuckets]atomic.Int64
	sum       Counter
	max       atomic.Int64
	min       atomic.Int64 // stores minSentinel when empty
	exemplars [64]atomic.Pointer[Exemplar]
}

// Exemplar tags one recorded sample with its origin: the protocol request ID
// and the flight-recorder sequence number current when it was recorded (0
// when no flight recorder was attached). Resolve Seq with
// FlightDump.ResolveSeq or `flightdump -seq`. Trace, when non-empty, is the
// distributed trace ID the sampled request carried (see rwrnlp.ContextWithTag)
// — the join key from a scraped tail bucket to a cluster-wide stitched trace.
type Exemplar struct {
	Value int64  `json:"value"`
	Req   int64  `json:"req"`
	Seq   uint64 `json:"flight_seq,omitempty"`
	Trace string `json:"trace_id,omitempty"`
}

const minSentinel = int64(^uint64(0) >> 1) // math.MaxInt64

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(minSentinel)
	return h
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveTagged records one sample and stores an exemplar for its octave:
// the request ID and flight-recorder sequence that produced it.
func (h *Histogram) ObserveTagged(v int64, req int64, seq uint64) {
	h.ObserveTraced(v, req, seq, "")
}

// ObserveTraced is ObserveTagged plus a distributed trace ID: the exemplar
// carries the trace the sampled request belonged to, so a scraped tail bucket
// resolves not just to a flight-recorder window but to the cluster-wide
// stitched trace that produced it.
func (h *Histogram) ObserveTraced(v int64, req int64, seq uint64, trace string) {
	h.Observe(v)
	if v < 0 {
		v = 0
	}
	h.exemplars[bits.Len64(uint64(v))].Store(&Exemplar{Value: v, Req: req, Seq: seq, Trace: trace})
}

// HistStats is a point-in-time summary of a histogram. Quantiles are bucket
// upper bounds clamped to [Min, Max]: never below the true sample, above it
// by at most HistMaxRelError.
type HistStats struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	Mean  float64
	P50   int64
	P90   int64
	P95   int64
	P99   int64
	P999  int64
	// Buckets lists the non-empty buckets as (upper bound, count) pairs.
	Buckets []Bucket
	// Exemplars lists the retained per-octave exemplars in increasing value
	// order (at most one per octave; empty unless ObserveTagged was used).
	Exemplars []Exemplar `json:",omitempty"`
}

// Bucket is one non-empty log-linear bucket: N samples in (prev bucket, Le].
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// Quantile estimates the p-quantile (p in [0, 1]) from the recorded bucket
// counts: the upper bound of the bucket holding the rank-p sample, clamped
// to [Min, Max]. One-sided error ≤ HistMaxRelError. See HistStats for a
// full summary; this exists for callers that need a single extra quantile.
func (s HistStats) Quantile(p float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(p * float64(s.Count-1))
	var cum int64
	for _, b := range s.Buckets {
		cum += b.N
		if cum > rank {
			v := b.Le
			if v > s.Max {
				v = s.Max
			}
			if v < s.Min {
				v = s.Min
			}
			return v
		}
	}
	return s.Max
}

// Stats summarizes the histogram.
func (h *Histogram) Stats() HistStats {
	var s HistStats
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			s.Count += c
			s.Buckets = append(s.Buckets, Bucket{Le: bucketUpper(i), N: c})
		}
	}
	if s.Count == 0 {
		return s
	}
	s.Sum = h.sum.Value()
	s.Max = h.max.Load()
	s.Min = h.min.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			s.Exemplars = append(s.Exemplars, *ex)
		}
	}
	sort.Slice(s.Exemplars, func(i, j int) bool { return s.Exemplars[i].Value < s.Exemplars[j].Value })
	return s
}

// Metrics is a named registry of counters, gauges, and histograms.
// Instrument lookup is get-or-create and safe for concurrent use; hot paths
// should look up once and cache the returned pointer. The registry records
// each instrument's creation time for OpenMetrics _created semantics.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	created  map[string]int64 // instrument name -> creation time, unix nanos
	nowNS    func() int64     // swappable for deterministic tests
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		created:  map[string]int64{},
		nowNS:    func() int64 { return time.Now().UnixNano() },
	}
}

// SetClock replaces the registry's creation-time source (unix nanos). It only
// affects instruments created afterwards; use it before registering anything
// when deterministic _created values are needed (golden tests).
func (m *Metrics) SetClock(nowNS func() int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nowNS = nowNS
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
		m.created[name] = m.nowNS()
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
		m.created[name] = m.nowNS()
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		h = newHistogram()
		m.hists[name] = h
		m.created[name] = m.nowNS()
	}
	return h
}

// Snapshot is a consistent-enough point-in-time copy of every instrument
// (individual instruments are read atomically; the set is read under the
// registration lock).
type Snapshot struct {
	Counters map[string]int64     `json:"counters"`
	Gauges   map[string]int64     `json:"gauges"`
	Hists    map[string]HistStats `json:"histograms"`
	// Created maps instrument names to their registration time (unix nanos),
	// for OpenMetrics _created series.
	Created map[string]int64 `json:"created,omitempty"`
	// TakenNS is the time the snapshot was captured (unix nanos per the
	// registry clock), used by TimeSeries for rate denominators.
	TakenNS int64 `json:"taken_ns,omitempty"`
}

// Snapshot captures all registered instruments.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(m.counters)),
		Gauges:   make(map[string]int64, len(m.gauges)),
		Hists:    make(map[string]HistStats, len(m.hists)),
		Created:  make(map[string]int64, len(m.created)),
		TakenNS:  m.nowNS(),
	}
	for n, c := range m.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range m.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range m.hists {
		s.Hists[n] = h.Stats()
	}
	for n, t := range m.created {
		s.Created[n] = t
	}
	return s
}

// String renders the snapshot as an expvar-style text dump with sorted names.
func (s Snapshot) String() string {
	var b strings.Builder
	names := func(n int) []string { return make([]string, 0, n) }
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		ns := names(len(s.Counters))
		for n := range s.Counters {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		for _, n := range ns {
			fmt.Fprintf(&b, "  %-32s %d\n", n, s.Counters[n])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		ns := names(len(s.Gauges))
		for n := range s.Gauges {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		for _, n := range ns {
			fmt.Fprintf(&b, "  %-32s %d\n", n, s.Gauges[n])
		}
	}
	if len(s.Hists) > 0 {
		b.WriteString("histograms:\n")
		ns := names(len(s.Hists))
		for n := range s.Hists {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		for _, n := range ns {
			h := s.Hists[n]
			fmt.Fprintf(&b, "  %-32s n=%d mean=%.1f p50=%d p95=%d p99=%d p999=%d max=%d\n",
				n, h.Count, h.Mean, h.P50, h.P95, h.P99, h.P999, h.Max)
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}
