// Package obs is the repository's observability layer: low-overhead protocol
// metrics (sharded atomic counters, gauges, and fixed-bucket log2
// histograms), an event-driven metrics observer for the RSM's protocol event
// stream, an online Theorem 1/2 bound monitor, a Perfetto/Chrome trace-event
// exporter, and an HTTP debug endpoint.
//
// The metrics primitives are lock-free on the hot path: counters stripe
// increments across cache-line-padded shards keyed by goroutine stack
// address, histograms bucket by bit length with one atomic add per
// observation, and no instrument ever blocks. Registration (name lookup) is
// mutex-guarded but off the hot path — observers cache instrument pointers.
//
// Time units are whatever the producing plane uses: the simulator reports
// nanoseconds of simulated time, the runtime lock reports wall-clock
// nanoseconds for its wall_* histograms and logical protocol ticks for the
// event-derived ones (one tick per protocol invocation, so tick-valued
// "delays" count invocations overlapping the wait, not seconds).
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numShards stripes counter increments to keep heavily contended counters off
// a single cache line. Must be a power of two.
const numShards = 16

// padded keeps each shard on its own cache line (64 bytes on every platform
// this repo targets).
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// shardIndex derives a goroutine-stable stripe index from the address of a
// stack variable: distinct goroutines run on distinct stacks, so concurrent
// writers spread across shards, while a single goroutine keeps hitting the
// same hot line. The uintptr conversion never escapes b.
func shardIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>9) & (numShards - 1)
}

// Counter is a monotonically increasing, sharded atomic counter.
type Counter struct {
	shards [numShards]padded
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	c.shards[shardIndex()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the shards. It is linearizable only in quiescence; concurrent
// readers see a value between the counts before and after in-flight adds.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// Gauge is an instantaneous value (queue depth, in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is one bucket per possible bit length of a non-negative int64
// (bucket i holds values v with bits.Len64(v) == i; bucket 0 holds v == 0),
// so Observe never range-checks and the whole histogram is a fixed ~1 KiB.
const histBuckets = 64

// Histogram is a fixed-bucket log2 histogram of non-negative int64 samples
// (durations, depths). Recording is one atomic add per observation plus
// max/min maintenance; quantiles are extracted from the bucket counts at
// snapshot time with bucket-upper-bound resolution (≤ 2× relative error),
// with the true max tracked exactly.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // stores minSentinel when empty
}

const minSentinel = int64(^uint64(0) >> 1) // math.MaxInt64

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(minSentinel)
	return h
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))&(histBuckets-1)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistStats is a point-in-time summary of a histogram.
type HistStats struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	Mean  float64
	P50   int64
	P95   int64
	P99   int64
	// Buckets lists the non-empty buckets as (upper bound, count) pairs.
	Buckets []Bucket
}

// Bucket is one non-empty log2 bucket: Count samples ≤ Le.
type Bucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// bucketUpper is the largest value bucket i can hold.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1)<<i - 1
}

// Stats summarizes the histogram.
func (h *Histogram) Stats() HistStats {
	var s HistStats
	counts := make([]int64, histBuckets)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
		if counts[i] > 0 {
			s.Buckets = append(s.Buckets, Bucket{Le: bucketUpper(i), N: counts[i]})
		}
	}
	if s.Count == 0 {
		return s
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	s.Min = h.min.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	q := func(p float64) int64 {
		rank := int64(p * float64(s.Count-1))
		var cum int64
		for i, c := range counts {
			cum += c
			if c > 0 && cum > rank {
				v := bucketUpper(i)
				if v > s.Max {
					v = s.Max
				}
				if v < s.Min {
					v = s.Min
				}
				return v
			}
		}
		return s.Max
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// Metrics is a named registry of counters, gauges, and histograms.
// Instrument lookup is get-or-create and safe for concurrent use; hot paths
// should look up once and cache the returned pointer.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[name]
	if c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[name]
	if g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.hists[name]
	if h == nil {
		h = newHistogram()
		m.hists[name] = h
	}
	return h
}

// Snapshot is a consistent-enough point-in-time copy of every instrument
// (individual instruments are read atomically; the set is read under the
// registration lock).
type Snapshot struct {
	Counters map[string]int64     `json:"counters"`
	Gauges   map[string]int64     `json:"gauges"`
	Hists    map[string]HistStats `json:"histograms"`
}

// Snapshot captures all registered instruments.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(m.counters)),
		Gauges:   make(map[string]int64, len(m.gauges)),
		Hists:    make(map[string]HistStats, len(m.hists)),
	}
	for n, c := range m.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range m.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range m.hists {
		s.Hists[n] = h.Stats()
	}
	return s
}

// String renders the snapshot as an expvar-style text dump with sorted names.
func (s Snapshot) String() string {
	var b strings.Builder
	names := func(n int) []string { return make([]string, 0, n) }
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		ns := names(len(s.Counters))
		for n := range s.Counters {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		for _, n := range ns {
			fmt.Fprintf(&b, "  %-32s %d\n", n, s.Counters[n])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		ns := names(len(s.Gauges))
		for n := range s.Gauges {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		for _, n := range ns {
			fmt.Fprintf(&b, "  %-32s %d\n", n, s.Gauges[n])
		}
	}
	if len(s.Hists) > 0 {
		b.WriteString("histograms:\n")
		ns := names(len(s.Hists))
		for n := range s.Hists {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		for _, n := range ns {
			h := s.Hists[n]
			fmt.Fprintf(&b, "  %-32s n=%d mean=%.1f p50=%d p95=%d p99=%d max=%d\n",
				n, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}
