package obs

import (
	"reflect"
	"strings"
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
)

// TestAttributorFig2 drives the acceptance scenario: a reader issued behind
// an entitled writer that is itself blocked by a read phase (the paper's
// Fig. 2). The attribution report must name the exact blocking request IDs,
// and every chain's delay decomposition must sum to the measured wait.
func TestAttributorFig2(t *testing.T) {
	m := NewMetrics()
	a := NewAttributor(m, 10)
	rsm := core.NewRSM(core.NewSpecBuilder(2).Build(), core.Options{})
	rsm.SetObserver(a)

	// t=1: read A holds {0} — the read phase.
	ra, err := rsm.Issue(1, []core.ResourceID{0}, nil, "A")
	if err != nil {
		t.Fatal(err)
	}
	// t=2: write B wants {0} — entitled behind A's read phase (Rule W2).
	wb, err := rsm.Issue(2, nil, []core.ResourceID{0}, "B")
	if err != nil {
		t.Fatal(err)
	}
	// t=3: read C wants {0} — concedes to the entitled writer B (Def. 3).
	rc, err := rsm.Issue(3, []core.ResourceID{0}, nil, "C")
	if err != nil {
		t.Fatal(err)
	}

	// t=6: A completes; B is satisfied after 4 ticks blocked by the read
	// phase. t=9: B completes; C is satisfied after 6 ticks.
	if err := rsm.Complete(6, ra); err != nil {
		t.Fatal(err)
	}
	if err := rsm.Complete(9, wb); err != nil {
		t.Fatal(err)
	}
	if err := rsm.Complete(10, rc); err != nil {
		t.Fatal(err)
	}

	// A was satisfied at issuance.
	if got := m.Counter(AttrImmediate).Value(); got != 1 {
		t.Errorf("immediate count = %d, want 1 (request A)", got)
	}

	// Writer B: entitled at issue (t=2), satisfied t=6. The entire 4-tick
	// delay is read-phase blocking (Lemmas 6–7), attributed to A exactly.
	cb, ok := a.Chain(wb)
	if !ok {
		t.Fatalf("no chain recorded for B (req %d)", wb)
	}
	wantB := []DelayPart{{AttrWriterReadPhase, 4}}
	if !reflect.DeepEqual(cb.Parts, wantB) {
		t.Errorf("B parts = %v, want %v", cb.Parts, wantB)
	}
	if !reflect.DeepEqual(cb.IssueBlockers, []core.ReqID{ra}) {
		t.Errorf("B issue blockers = %v, want [%d]", cb.IssueBlockers, ra)
	}
	if !reflect.DeepEqual(cb.EntitleBlockers, []core.ReqID{ra}) {
		t.Errorf("B entitle blockers = %v, want [%d]", cb.EntitleBlockers, ra)
	}

	// Reader C: issued t=3, entitled t=6 (when B was satisfied), satisfied
	// t=9. 3 ticks conceded to the entitled writer (Def. 3/Lemma 3) plus 3
	// ticks of entitled wait (Lemma 2) — summing to the measured 6.
	cc, ok := a.Chain(rc)
	if !ok {
		t.Fatalf("no chain recorded for C (req %d)", rc)
	}
	wantC := []DelayPart{{AttrReaderBehindWriter, 3}, {AttrReaderEntitledWait, 3}}
	if !reflect.DeepEqual(cc.Parts, wantC) {
		t.Errorf("C parts = %v, want %v", cc.Parts, wantC)
	}
	if cc.Delay != 6 {
		t.Errorf("C delay = %d, want 6", cc.Delay)
	}
	var sum int64
	for _, p := range cc.Parts {
		sum += p.Span
	}
	if sum != cc.Delay {
		t.Errorf("C decomposition sums to %d, want measured wait %d", sum, cc.Delay)
	}
	if !reflect.DeepEqual(cc.IssueBlockers, []core.ReqID{wb}) {
		t.Errorf("C issue blockers = %v, want [%d]", cc.IssueBlockers, wb)
	}
	if !reflect.DeepEqual(cc.EntitleBlockers, []core.ReqID{wb}) {
		t.Errorf("C entitle blockers = %v, want [%d]", cc.EntitleBlockers, wb)
	}

	// The report ranks C's 6-tick wait worst and renders the full causal
	// chain C ← B ← A with the exact request IDs.
	rep := a.Report()
	if rep.Checked != 3 {
		t.Errorf("checked = %d, want 3 (A immediate, B, C)", rep.Checked)
	}
	if len(rep.Top) == 0 || rep.Top[0].Req != rc {
		t.Fatalf("top chain = %+v, want req %d first", rep.Top, rc)
	}
	s := rep.String()
	for _, want := range []string{
		"tag=C", "delay=6",
		"reader_behind_entitled_writer:3", "reader_entitled_wait:3",
		"writer_blocked_by_read_phase:4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
	// The chain expansion must name B as C's blocker and A as B's.
	ci := strings.Index(s, "tag=C")
	bi := strings.Index(s[ci:], "tag=B")
	if bi < 0 {
		t.Errorf("report does not expand C's chain through B:\n%s", s)
	}

	// Component histograms landed in the shared registry.
	if st := m.Histogram(AttrWriterReadPhase).Stats(); st.Count != 1 || st.Sum != 4 {
		t.Errorf("writer read-phase hist = %+v, want count=1 sum=4", st)
	}
	if st := m.Histogram(AttrReaderBehindWriter).Stats(); st.Count != 1 || st.Sum != 3 {
		t.Errorf("reader behind-writer hist = %+v, want count=1 sum=3", st)
	}
}

// TestAttributorTopK keeps only the K worst chains, in descending delay
// order.
func TestAttributorTopK(t *testing.T) {
	m := NewMetrics()
	a := NewAttributor(m, 3)
	rsm := core.NewRSM(core.NewSpecBuilder(1).Build(), core.Options{})
	rsm.SetObserver(a)

	// Six writers contend for resource 0 in sequence: later ones wait longer.
	var ids []core.ReqID
	for i := 0; i < 6; i++ {
		id, err := rsm.Issue(core.Time(i+1), nil, []core.ResourceID{0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		if err := rsm.Complete(core.Time(10*(i+1)), id); err != nil {
			t.Fatal(err)
		}
	}

	rep := a.Report()
	if len(rep.Top) != 3 {
		t.Fatalf("top size = %d, want 3", len(rep.Top))
	}
	for i := 1; i < len(rep.Top); i++ {
		if rep.Top[i].Delay > rep.Top[i-1].Delay {
			t.Errorf("top not in descending delay order: %+v", rep.Top)
		}
	}
	// The worst chain is the last writer.
	if rep.Top[0].Req != ids[5] {
		t.Errorf("worst chain req = %d, want %d", rep.Top[0].Req, ids[5])
	}
}

// TestAttributorUpgradeRestart: the write half of an upgradeable pair
// restarts its wait clock when the read segment finishes, so its chain's
// delay covers only the post-upgrade wait.
func TestAttributorUpgradeRestart(t *testing.T) {
	m := NewMetrics()
	a := NewAttributor(m, 4)
	rsm := core.NewRSM(core.NewSpecBuilder(1).Build(), core.Options{})
	rsm.SetObserver(a)

	// A plain reader holds the read phase first, so the write half cannot be
	// satisfied as soon as the read segment finishes.
	other, err := rsm.Issue(1, []core.ResourceID{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := rsm.IssueUpgradeable(2, []core.ResourceID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// t=5: the read segment ends; the write half starts waiting for real.
	if err := rsm.FinishRead(5, h, true); err != nil {
		t.Fatal(err)
	}
	// t=8: the other reader leaves; the write half is satisfied.
	if err := rsm.Complete(8, other); err != nil {
		t.Fatal(err)
	}
	if err := rsm.Complete(9, h.WriteID); err != nil {
		t.Fatal(err)
	}

	c, ok := a.Chain(h.WriteID)
	if !ok {
		t.Fatalf("no chain for write half %d", h.WriteID)
	}
	if c.Delay != 3 {
		t.Errorf("write half delay = %d, want 3 (wait restarts at upgrade)", c.Delay)
	}
	var sum int64
	for _, p := range c.Parts {
		sum += p.Span
	}
	if sum != c.Delay {
		t.Errorf("parts sum %d != delay %d", sum, c.Delay)
	}
}
