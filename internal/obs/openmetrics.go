package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// OpenMetrics text exposition (version 1.0.0) for the metrics registry: the
// same series as WritePrometheus plus the OpenMetrics-only semantics —
// counters carry the _total suffix and a _created series, histograms carry
// _created, tail buckets carry exemplars in `# {labels} value` syntax, and
// the body ends with `# EOF`. Scrape via the metrics endpoint with
// ?format=openmetrics.
//
// Exemplars come from Histogram.ObserveTagged: each carries the request ID
// and the flight-recorder sequence current when the sample was recorded, so
// `flightdump -seq N` resolves a scraped tail sample into its blocking chain.

// OpenMetricsContentType is the Content-Type of the OpenMetrics text format.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// omCreated renders a _created value: unix seconds with millisecond precision.
func omCreated(ns int64) string {
	return fmt.Sprintf("%d.%03d", ns/1e9, (ns%1e9)/1e6)
}

// omExemplar renders the OpenMetrics exemplar suffix for a bucket line.
func omExemplar(ex Exemplar) string {
	var lb strings.Builder
	fmt.Fprintf(&lb, "req=\"%d\"", ex.Req)
	if ex.Seq != 0 {
		fmt.Fprintf(&lb, ",flight_seq=\"%d\"", ex.Seq)
	}
	if ex.Trace != "" {
		fmt.Fprintf(&lb, ",trace_id=%q", ex.Trace)
	}
	return fmt.Sprintf(" # {%s} %d", lb.String(), ex.Value)
}

// WriteOpenMetrics renders the snapshot in OpenMetrics text format 1.0.0.
// Output is deterministic: metrics and their labeled series are sorted, and
// _created values come from the registry clock (swappable via SetClock).
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	byMetric := map[string]*promSeries{}
	add := func(metric, kind, line string) {
		ps := byMetric[metric]
		if ps == nil {
			ps = &promSeries{metric: metric, kind: kind}
			byMetric[metric] = ps
		}
		ps.lines = append(ps.lines, line)
	}
	var counterNames, gaugeNames, histNames []string
	for n := range s.Counters {
		counterNames = append(counterNames, n)
	}
	for n := range s.Gauges {
		gaugeNames = append(gaugeNames, n)
	}
	for n := range s.Hists {
		histNames = append(histNames, n)
	}
	sort.Strings(counterNames)
	sort.Strings(gaugeNames)
	sort.Strings(histNames)

	for _, name := range counterNames {
		metric, labels := promName(name)
		add(metric, "counter", fmt.Sprintf("%s_total%s %d", metric, labels, s.Counters[name]))
		if t, ok := s.Created[name]; ok {
			add(metric, "counter", fmt.Sprintf("%s_created%s %s", metric, labels, omCreated(t)))
		}
	}
	for _, name := range gaugeNames {
		metric, labels := promName(name)
		add(metric, "gauge", fmt.Sprintf("%s%s %d", metric, labels, s.Gauges[name]))
	}
	for _, name := range histNames {
		h := s.Hists[name]
		metric, labels := promName(name)
		le := func(bound string) string {
			if labels == "" {
				return fmt.Sprintf("{le=%q}", bound)
			}
			return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", bound)
		}
		// An exemplar attaches to the first bucket line whose range covers
		// its value; each exemplar is emitted at most once.
		exemplars := append([]Exemplar(nil), h.Exemplars...)
		exFor := func(prevLe, curLe int64) string {
			for i, ex := range exemplars {
				if ex.Value > prevLe && ex.Value <= curLe {
					exemplars = append(exemplars[:i], exemplars[i+1:]...)
					return omExemplar(ex)
				}
			}
			return ""
		}
		var cum int64
		prevLe := int64(-1)
		for _, b := range h.Buckets {
			cum += b.N
			add(metric, "histogram", fmt.Sprintf("%s_bucket%s %d%s",
				metric, le(fmt.Sprint(b.Le)), cum, exFor(prevLe, b.Le)))
			prevLe = b.Le
		}
		add(metric, "histogram", fmt.Sprintf("%s_bucket%s %d%s",
			metric, le("+Inf"), h.Count, exFor(prevLe, minSentinel)))
		add(metric, "histogram", fmt.Sprintf("%s_sum%s %d", metric, labels, h.Sum))
		add(metric, "histogram", fmt.Sprintf("%s_count%s %d", metric, labels, h.Count))
		if t, ok := s.Created[name]; ok {
			add(metric, "histogram", fmt.Sprintf("%s_created%s %s", metric, labels, omCreated(t)))
		}
	}

	metrics := make([]string, 0, len(byMetric))
	for m := range byMetric {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	for _, m := range metrics {
		ps := byMetric[m]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ps.metric, ps.kind); err != nil {
			return err
		}
		for _, line := range ps.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
