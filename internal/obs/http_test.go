package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerJSONAndText(t *testing.T) {
	m := NewMetrics()
	m.Counter("reqs").Add(7)
	m.Histogram("delay").Observe(42)
	h := Handler(m)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &s); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if s.Counters["reqs"] != 7 || s.Hists["delay"].Max != 42 {
		t.Errorf("snapshot = %+v", s)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=text", nil))
	if !strings.Contains(rr.Body.String(), "reqs") {
		t.Errorf("text dump missing counter:\n%s", rr.Body.String())
	}
}

func TestHandlerNilMetrics(t *testing.T) {
	rr := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Errorf("status = %d", rr.Code)
	}
	if !json.Valid(rr.Body.Bytes()) {
		t.Error("nil-metrics response not valid JSON")
	}
}

func TestDebugMux(t *testing.T) {
	m := NewMetrics()
	m.Counter("reqs").Add(1)
	bm := NewBoundMonitor(4)
	fl := NewFlightRecorder(1, 16)
	wd := NewWatchdog(WatchdogConfig{})
	mux := DebugMux(m, bm, fl, wd)

	for path, want := range map[string]string{
		"/metrics":                       "{",
		"/metrics?format=prom":           "# TYPE rwrnlp_reqs counter",
		"/bounds":                        "bound monitor",
		"/debug/rnlp/flight":             `"version"`,
		"/debug/rnlp/watchdog":           `"firings"`,
		"/debug/pprof/":                  "profiles",
		"/debug/pprof/goroutine?debug=1": "goroutine",
		"/healthz":                       "ok",
	} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 {
			t.Errorf("%s: status %d", path, rr.Code)
		}
		if !strings.Contains(rr.Body.String(), want) {
			t.Errorf("%s: body %q lacks %q", path, rr.Body.String(), want)
		}
	}

	rr := httptest.NewRecorder()
	DebugMux(nil, nil, nil).ServeHTTP(rr, httptest.NewRequest("GET", "/bounds", nil))
	if !strings.Contains(rr.Body.String(), "no bound monitor") {
		t.Errorf("nil bounds body = %q", rr.Body.String())
	}
	rr = httptest.NewRecorder()
	DebugMux(nil, nil, nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/rnlp/flight", nil))
	if rr.Code != 200 || !json.Valid(rr.Body.Bytes()) {
		t.Errorf("nil flight route: status %d body %q", rr.Code, rr.Body.String())
	}
}

// TestFlightHandlerPerfetto: the flight route renders a Perfetto trace with
// ?format=perfetto.
func TestFlightHandlerPerfetto(t *testing.T) {
	fl := NewFlightRecorder(1, 64)
	driveFig2(t, fl.ShardObserver(0))
	rr := httptest.NewRecorder()
	FlightHandler(fl).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/rnlp/flight?format=perfetto", nil))
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &tr); err != nil || len(tr.TraceEvents) == 0 {
		t.Errorf("perfetto route invalid (err=%v, events=%d):\n%s", err, len(tr.TraceEvents), rr.Body.String())
	}
}
