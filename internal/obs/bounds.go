package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/rtsync/rwrnlp/internal/core"
)

// BoundMonitor checks every observed acquisition delay against the paper's
// analytical envelopes — Theorem 1 (read: ≤ L^r_max + L^w_max) and Theorem 2
// (write: ≤ (m−1)(L^r_max + L^w_max)) — turning each run into an empirical
// falsification attempt.
//
// Two modes:
//
//   - Analytic: SetAnalytic supplies a-priori L^r_max/L^w_max (typically
//     analysis.BoundsOf(sys), inflated for charged overheads). Every
//     satisfaction is checked online against the fixed envelope.
//
//   - Observed-envelope (default): L^r_max/L^w_max are the maxima of the
//     critical-section lengths seen so far. Because the envelope only grows,
//     a delay within the *current* envelope can never exceed the final one,
//     so the monitor stores only candidate violations (delay above the
//     envelope at satisfaction time) and Report re-filters them against the
//     final envelope. This makes the monitor sound with zero prior knowledge
//     of the workload.
//
// Incremental requests (Sec. 3.7) are excluded: their issue-to-satisfaction
// span includes hold phases between grants, and Theorems 1–2 bound each
// *ask*, which the event stream does not delimit; they are tallied in
// SkippedIncremental. The write half of an upgradeable pair (Sec. 3.6) is
// checked per wait: its clock restarts when the read segment finishes,
// because the optimistic read segment is not blocking.
//
// The monitor implements core.Observer and must see full request lifecycles.
type BoundMonitor struct {
	mu sync.Mutex

	m        int // processor count for Theorem 2's (m−1) factor
	analytic bool
	lr, lw   int64 // analytic envelope (valid if analytic)

	obsLr, obsLw int64 // observed per-kind max CS length

	pending map[core.ReqID]*pendingReq

	checked    int64
	skippedInc int64
	candidates []BoundViolation
}

// BoundViolation is one request whose measured acquisition delay exceeded
// its analytical bound.
type BoundViolation struct {
	Req   core.ReqID
	Kind  core.Kind
	T     core.Time // satisfaction time
	Delay int64
	Bound int64 // envelope at check time (analytic) or final (observed mode)
}

func (v BoundViolation) String() string {
	return fmt.Sprintf("req=%d (%s) satisfied t=%d: delay %d > bound %d",
		v.Req, v.Kind, v.T, v.Delay, v.Bound)
}

// NewBoundMonitor creates a monitor in observed-envelope mode for an
// m-processor system.
func NewBoundMonitor(m int) *BoundMonitor {
	return &BoundMonitor{m: m, pending: map[core.ReqID]*pendingReq{}}
}

// SetAnalytic switches to analytic mode with the given L^r_max/L^w_max
// (inflate for charged overheads before calling — see analysis.Bounds).
// Call before any events are observed.
func (b *BoundMonitor) SetAnalytic(lr, lw int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.analytic, b.lr, b.lw = true, lr, lw
}

func (b *BoundMonitor) readBound(lr, lw int64) int64 { return lr + lw }

func (b *BoundMonitor) writeBound(lr, lw int64) int64 {
	return int64(b.m-1) * (lr + lw)
}

// Observe implements core.Observer.
func (b *BoundMonitor) Observe(e core.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch e.Type {
	case core.EvIssued:
		b.pending[e.Req] = &pendingReq{
			kind:        e.Kind,
			incremental: e.Incremental,
			waitStart:   e.T,
			satisfyT:    -1,
		}

	case core.EvSatisfied:
		p := b.pending[e.Req]
		if p == nil {
			return
		}
		p.satisfied = true
		p.satisfyT = e.T
		if p.incremental {
			b.skippedInc++
			return
		}
		b.checked++
		delay := int64(e.T - p.waitStart)
		lr, lw := b.lr, b.lw
		if !b.analytic {
			lr, lw = b.obsLr, b.obsLw
		}
		bound := b.readBound(lr, lw)
		if p.kind == core.KindWrite {
			bound = b.writeBound(lr, lw)
		}
		if delay > bound {
			b.candidates = append(b.candidates, BoundViolation{
				Req: e.Req, Kind: p.kind, T: e.T, Delay: delay, Bound: bound,
			})
		}

	case core.EvCompleted, core.EvReadSegmentDone:
		p := b.pending[e.Req]
		if p != nil && p.satisfied && !p.incremental {
			cs := int64(e.T - p.satisfyT)
			if p.kind == core.KindRead {
				if cs > b.obsLr {
					b.obsLr = cs
				}
			} else if cs > b.obsLw {
				b.obsLw = cs
			}
		}
		delete(b.pending, e.Req)
		if e.Type == core.EvReadSegmentDone {
			if peer := b.pending[e.Pair]; peer != nil && !peer.satisfied {
				peer.waitStart = e.T
			}
		}

	case core.EvCanceled:
		delete(b.pending, e.Req)
	}
}

// BoundReport is the monitor's verdict over everything observed so far.
type BoundReport struct {
	M                  int
	Analytic           bool
	Lr, Lw             int64 // envelope used: analytic inputs or observed maxima
	Checked            int64
	SkippedIncremental int64
	Violations         []BoundViolation
}

// Ok reports whether no violation survived.
func (r BoundReport) Ok() bool { return len(r.Violations) == 0 }

func (r BoundReport) String() string {
	mode := "observed-envelope"
	if r.Analytic {
		mode = "analytic"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb,
		"bound monitor (%s, m=%d): Lr=%d Lw=%d read-bound=%d write-bound=%d; checked=%d skipped-incremental=%d violations=%d\n",
		mode, r.M, r.Lr, r.Lw, r.Lr+r.Lw, int64(r.M-1)*(r.Lr+r.Lw),
		r.Checked, r.SkippedIncremental, len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "  VIOLATION %s\n", v)
	}
	return sb.String()
}

// Report finalizes the verdict. In observed-envelope mode the stored
// candidates are re-filtered against the final observed envelope (sound
// because the envelope is monotone); in analytic mode they are returned
// as-is. The monitor may keep observing after Report.
func (b *BoundMonitor) Report() BoundReport {
	b.mu.Lock()
	defer b.mu.Unlock()
	r := BoundReport{
		M:                  b.m,
		Analytic:           b.analytic,
		Lr:                 b.lr,
		Lw:                 b.lw,
		Checked:            b.checked,
		SkippedIncremental: b.skippedInc,
	}
	if !b.analytic {
		r.Lr, r.Lw = b.obsLr, b.obsLw
	}
	for _, v := range b.candidates {
		bound := b.readBound(r.Lr, r.Lw)
		if v.Kind == core.KindWrite {
			bound = b.writeBound(r.Lr, r.Lw)
		}
		if v.Delay > bound {
			v.Bound = bound
			r.Violations = append(r.Violations, v)
		}
	}
	sort.Slice(r.Violations, func(i, j int) bool {
		if r.Violations[i].T != r.Violations[j].T {
			return r.Violations[i].T < r.Violations[j].T
		}
		return r.Violations[i].Req < r.Violations[j].Req
	})
	return r
}
