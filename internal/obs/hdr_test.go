package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// The log-linear layout must tile [0, 2^63) exactly: every value lands in a
// bucket whose bounds contain it, indexes are monotone in the value, and no
// bucket is wider than 2^-histSubBits of its lower bound.
func TestBucketLayout(t *testing.T) {
	vals := []int64{}
	for v := int64(0); v < 1<<12; v++ {
		vals = append(vals, v)
	}
	for e := 12; e < 63; e++ {
		p := int64(1) << e
		vals = append(vals, p-1, p, p+1, p+p/3, 2*p-1)
	}
	vals = append(vals, minSentinel) // math.MaxInt64
	prevIdx := -1
	for _, v := range vals {
		if v < 0 {
			continue
		}
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, histBuckets)
		}
		lo, hi := bucketBounds(i)
		if v < lo || v > hi {
			t.Fatalf("value %d mapped to bucket %d = [%d,%d]", v, i, lo, hi)
		}
		if lo >= int64(histSubBuckets) && (hi-lo)*histSubBuckets > lo {
			t.Fatalf("bucket %d = [%d,%d] wider than lo/%d", i, lo, hi, histSubBuckets)
		}
		if i < prevIdx {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prevIdx)
		}
		prevIdx = i
	}
	// Adjacent buckets must tile with no gaps or overlaps.
	for i := 0; i < histBuckets-1; i++ {
		_, hi := bucketBounds(i)
		lo, _ := bucketBounds(i + 1)
		if lo != hi+1 {
			t.Fatalf("gap between bucket %d (hi=%d) and %d (lo=%d)", i, hi, i+1, lo)
		}
	}
}

// checkQuantiles asserts the histogram's quantile estimates against the exact
// sorted-sample quantiles: the estimate is never below the true sample and
// exceeds it by at most HistMaxRelError (samples < 2^histSubBits are exact).
func checkQuantiles(t *testing.T, name string, samples []int64) {
	t.Helper()
	h := newHistogram()
	for _, v := range samples {
		h.Observe(v)
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := h.Stats()
	if s.Count != int64(len(samples)) {
		t.Fatalf("%s: count = %d, want %d", name, s.Count, len(samples))
	}
	for _, tc := range []struct {
		p   float64
		est int64
	}{
		{0.50, s.P50}, {0.90, s.P90}, {0.95, s.P95}, {0.99, s.P99}, {0.999, s.P999},
	} {
		exact := sorted[int64(tc.p*float64(len(sorted)-1))]
		if tc.est < exact {
			t.Errorf("%s: p%g = %d under-reports exact %d", name, tc.p*100, tc.est, exact)
		}
		// One-sided relative error bound: (est-exact) ≤ exact/histSubBuckets.
		if (tc.est-exact)*histSubBuckets > exact {
			t.Errorf("%s: p%g = %d vs exact %d exceeds %.2f%% relative error",
				name, tc.p*100, tc.est, exact, 100*HistMaxRelError)
		}
		if exact < histSubBuckets && tc.est != exact {
			t.Errorf("%s: p%g = %d, want exact %d (sub-%d region is exact)",
				name, tc.p*100, tc.est, exact, histSubBuckets)
		}
	}
}

// Property test over known distributions (satellite: HDR quantile accuracy).
func TestHistogramQuantileProperty(t *testing.T) {
	const n = 20000
	rng := rand.New(rand.NewSource(42))

	uniform := make([]int64, n)
	for i := range uniform {
		uniform[i] = rng.Int63n(1_000_000)
	}
	checkQuantiles(t, "uniform", uniform)

	exponential := make([]int64, n)
	for i := range exponential {
		exponential[i] = int64(rng.ExpFloat64() * 50_000)
	}
	checkQuantiles(t, "exponential", exponential)

	bimodal := make([]int64, n)
	for i := range bimodal {
		if rng.Float64() < 0.9 {
			bimodal[i] = 500 + rng.Int63n(1000) // fast mode
		} else {
			bimodal[i] = 1_000_000 + rng.Int63n(200_000) // stalled mode
		}
	}
	checkQuantiles(t, "bimodal", bimodal)
}

// Concurrent recording must lose nothing: bucket adds and the sharded sum are
// atomic, so count and sum are exact after quiescence. Run with -race.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram()
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveTagged(int64(w*per+i), int64(i), uint64(i))
			}
		}()
	}
	wg.Wait()
	s := h.Stats()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	want := int64(workers*per) * int64(workers*per-1) / 2
	if s.Sum != want {
		t.Errorf("sum = %d, want %d", s.Sum, want)
	}
	if s.Min != 0 || s.Max != workers*per-1 {
		t.Errorf("min/max = %d/%d, want 0/%d", s.Min, s.Max, workers*per-1)
	}
}

// Exemplars: one slot per octave, latest tagged sample wins, sorted by value
// in Stats, and untagged histograms report none.
func TestHistogramExemplars(t *testing.T) {
	h := newHistogram()
	h.Observe(100)
	if got := h.Stats().Exemplars; len(got) != 0 {
		t.Fatalf("untagged histogram has exemplars: %+v", got)
	}
	h.ObserveTagged(70, 1, 10)
	h.ObserveTagged(100, 2, 20) // same octave [64,128): replaces req 1
	h.ObserveTagged(5000, 3, 30)
	ex := h.Stats().Exemplars
	if len(ex) != 2 {
		t.Fatalf("exemplars = %+v, want 2 (one per octave)", ex)
	}
	if ex[0].Value != 100 || ex[0].Req != 2 || ex[0].Seq != 20 {
		t.Errorf("octave exemplar = %+v, want latest (value 100, req 2, seq 20)", ex[0])
	}
	if ex[1].Value != 5000 || ex[1].Req != 3 || ex[1].Seq != 30 {
		t.Errorf("tail exemplar = %+v", ex[1])
	}
}

// Regression for pre-HDR callers: the HistStats surface the log2 histogram
// exposed (Count/Sum/Min/Max/Mean/P50/P95/P99/Buckets) must keep compiling
// and keep its semantics — cumulative Buckets in increasing le order with the
// total matching Count.
func TestHistStatsBackCompat(t *testing.T) {
	h := newHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Stats()
	var total int64
	prevLe := int64(-1)
	for _, b := range s.Buckets {
		if b.Le <= prevLe {
			t.Fatalf("bucket les not increasing: %d after %d", b.Le, prevLe)
		}
		prevLe = b.Le
		total += b.N
	}
	if total != s.Count {
		t.Errorf("bucket total %d != count %d", total, s.Count)
	}
	_ = []int64{s.Count, s.Sum, s.Min, s.Max, s.P50, s.P90, s.P95, s.P99, s.P999}
	_ = s.Mean
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Errorf("quantiles not monotone: %+v", s)
	}
}
