package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
)

// TestWatchdogFiresOnChaosStall is the acceptance scenario: the
// ChaosDeafFreshReads hook strands a fresh read in a writer-free component —
// an artificial Theorem 1 violation — and the watchdog must fire, naming the
// stranded request and capturing a valid Perfetto-renderable flight dump
// plus a goroutine profile.
func TestWatchdogFiresOnChaosStall(t *testing.T) {
	fl := NewFlightRecorder(1, 64)
	var fired []StallReport
	wd := NewWatchdog(WatchdogConfig{
		M:                2,
		Slack:            2,
		Flight:           fl,
		GoroutineProfile: true,
		OnStall:          func(r StallReport) { fired = append(fired, r) },
	})
	rsm := core.NewRSM(core.NewSpecBuilder(2).Build(), core.Options{ChaosDeafFreshReads: true})
	rsm.SetObserver(core.MultiObserver(fl.ShardObserver(0), wd))

	// Warm the observed envelope: a write CS of length 4 on resource 1.
	w1, err := rsm.Issue(1, nil, []core.ResourceID{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rsm.Complete(5, w1); err != nil {
		t.Fatal(err)
	}

	// t=10: a fresh read into the writer-free component — chaos strands it.
	rd, err := rsm.Issue(10, []core.ResourceID{0}, nil, "victim")
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := rsm.State(rd); st != core.StateWaiting {
		t.Fatalf("read state = %v, want stranded waiting", st)
	}

	// Envelope: read bound = (Lr+Lw)×slack = (0+4)×2 = 8. At t=25 the read
	// has waited 15 — the watchdog must fire exactly once.
	if n := wd.Poll(25); n != 1 {
		t.Fatalf("Poll fired %d stalls, want 1", n)
	}
	if wd.Poll(40) != 0 {
		t.Error("watchdog fired twice for the same request")
	}
	if wd.Firings() != 1 || len(fired) != 1 {
		t.Fatalf("firings = %d, callbacks = %d, want 1/1", wd.Firings(), len(fired))
	}

	r := fired[0]
	if r.Req != rd || r.Tag != "victim" {
		t.Errorf("report names req=%d tag=%q, want %d/victim", r.Req, r.Tag, rd)
	}
	if r.Waited != 15 || r.Bound != 8 {
		t.Errorf("report waited=%d bound=%d, want 15/8", r.Waited, r.Bound)
	}
	if r.Dump == nil || len(r.Dump.Records) == 0 {
		t.Fatal("report has no flight dump")
	}
	var buf bytes.Buffer
	if err := r.Dump.WritePerfetto(&buf); err != nil {
		t.Fatalf("flight dump does not render as Perfetto: %v", err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil || len(tr.TraceEvents) == 0 {
		t.Errorf("dump's Perfetto trace invalid (err=%v, events=%d)", err, len(tr.TraceEvents))
	}
	if !bytes.Contains(r.GoroutineProfile, []byte("goroutine")) {
		t.Errorf("goroutine profile missing or empty: %q", r.GoroutineProfile)
	}
	if len(wd.Reports()) != 1 {
		t.Errorf("retained reports = %d, want 1", len(wd.Reports()))
	}
}

// TestWatchdogNoFalsePositive: a healthy workload with delays inside the
// envelope never fires, even with slack 1.
func TestWatchdogNoFalsePositive(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{M: 2, Slack: 1})
	rsm := core.NewRSM(core.NewSpecBuilder(1).Build(), core.Options{})
	rsm.SetObserver(wd)

	// Alternating writers with CS length 10: each waits at most 10, and the
	// write envelope is (m−1)(Lr+Lw) = 10.
	var prev core.ReqID
	for i := 0; i < 8; i++ {
		t0 := core.Time(1 + 10*i)
		id, err := rsm.Issue(t0, nil, []core.ResourceID{0}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev != 0 {
			if err := rsm.Complete(t0+1, prev); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	if err := rsm.Complete(90, prev); err != nil {
		t.Fatal(err)
	}
	if n := wd.Firings(); n != 0 {
		t.Errorf("watchdog fired %d times on a healthy workload: %+v", n, wd.Reports())
	}
}

// TestWatchdogObservedEnvelopeWarmup: before any critical section completes,
// the observed envelope is unknown and the watchdog must stay silent rather
// than fire on a zero bound.
func TestWatchdogObservedEnvelopeWarmup(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{M: 2, Slack: 1})
	rsm := core.NewRSM(core.NewSpecBuilder(1).Build(), core.Options{ChaosDeafFreshReads: true})
	rsm.SetObserver(wd)
	if _, err := rsm.Issue(1, []core.ResourceID{0}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if n := wd.Poll(1_000_000); n != 0 {
		t.Errorf("watchdog fired %d times with a cold envelope", n)
	}
}

// TestWatchdogAnalytic: an analytic envelope checks from the first event,
// without warmup.
func TestWatchdogAnalytic(t *testing.T) {
	wd := NewWatchdog(WatchdogConfig{M: 2, Slack: 1})
	wd.SetAnalytic(3, 4) // read bound = 7
	rsm := core.NewRSM(core.NewSpecBuilder(1).Build(), core.Options{ChaosDeafFreshReads: true})
	rsm.SetObserver(wd)
	rd, err := rsm.Issue(1, []core.ResourceID{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := wd.Poll(9); n != 1 {
		t.Fatalf("Poll fired %d, want 1 (waited 8 > bound 7)", n)
	}
	if got := wd.Reports()[0].Req; got != rd {
		t.Errorf("stalled req = %d, want %d", got, rd)
	}
}
