package obs

import (
	"fmt"
	"sync"

	"github.com/rtsync/rwrnlp/internal/core"
)

// Metric names recorded by ProtocolObserver. Counter units are events;
// histogram units are the producing plane's time unit (simulated nanoseconds
// in the simulator, logical protocol ticks in the runtime lock), except
// queue_depth which counts requests.
const (
	MIssued              = "protocol_issued"
	MEntitled            = "protocol_entitled"
	MSatisfied           = "protocol_satisfied"
	MCompleted           = "protocol_completed"
	MCanceled            = "protocol_canceled"
	MImmediate           = "protocol_immediate_satisfactions"
	MIncGrants           = "protocol_incremental_grants"
	MPlaceholdersRemoved = "protocol_placeholders_removed"
	MReadSegmentsDone    = "protocol_read_segments_done"
	MInflight            = "protocol_inflight"
	MHolders             = "protocol_holders"
	MAcqDelayRead        = "acq_delay_read"
	MAcqDelayWrite       = "acq_delay_write"
	MAcqDelayIncremental = "acq_delay_incremental"
	MEntitlementWait     = "entitlement_wait"
	MCSLengthRead        = "cs_length_read"
	MCSLengthWrite       = "cs_length_write"
	MQueueDepth          = "queue_depth"

	// Wall-clock histograms recorded by the runtime lock (rwrnlp) directly
	// on its acquisition path, in nanoseconds — the protocol event stream
	// there carries only logical ticks.
	MWallAcqReadNS  = "wall_acquire_read_ns"
	MWallAcqWriteNS = "wall_acquire_write_ns"
	MWallBlockNS    = "wall_block_ns"
	MWallCSNS       = "wall_cs_ns"

	// Per-shard instruments recorded by the runtime lock's component shards;
	// instance names carry a {shard=i} label via ShardMetric. The counters
	// count acquisition/release attempts routed to the shard, mutex-
	// contended acquisitions, and acquisitions executed by another holder
	// via the combining stack; shard_combine_wait_ns is the wall-clock
	// publish-to-execute latency of contended acquisitions.
	MShardAcquires      = "shard_acquires"
	MShardReleases      = "shard_releases"
	MShardContended     = "shard_contended"
	MShardCombined      = "shard_combined"
	MShardCombineWaitNS = "shard_combine_wait_ns"

	// MSlowPath counts multi-component acquisitions served by the runtime
	// lock's ordered slow path (undeclared footprints only).
	MSlowPath = "protocol_slow_path"

	// Reader fast-path counters (shard-labeled via ShardMetric): hits are
	// all-read acquisitions satisfied with atomic stores only, bypassing the
	// shard mutex and RSM; misses are fast-eligible acquisitions that fell
	// back to the RSM (writer present, slots full, or path revoked);
	// revocations count transitions into the revoked state after a streak
	// of gate-closed misses; migrations count in-flight fast readers
	// materialized into the RSM as surrogate read requests by an entering
	// writer. A fast-path acquisition appears in the protocol_* series only
	// if it was migrated — otherwise the RSM never sees it.
	MFastPathHit      = "fastpath_hit"
	MFastPathMiss     = "fastpath_miss"
	MFastPathRevoked  = "fastpath_revoked"
	MFastPathMigrated = "fastpath_migrated"

	// Writer fast-path counters (shard-labeled via ShardMetric): hits are
	// write-capable acquisitions that claimed their whole component with one
	// CAS on the shard's writer word, bypassing the shard mutex and RSM;
	// misses fell back to the RSM (component busy, word held, or plane
	// revoked); revocations count transitions into the revoked state after a
	// streak of busy misses; migrations count fast writers materialized into
	// the RSM as surrogate write requests by a contending request; storms
	// count revocations that followed a re-enable within twice the revocation
	// budget — sustained revoke/re-enable cycling, the signature of the
	// tail-latency cliffs the rnlptop panel watches for.
	MFastWriteHit      = "fastpath_write_hit"
	MFastWriteMiss     = "fastpath_write_miss"
	MFastWriteRevoked  = "fastpath_write_revoked"
	MFastWriteMigrated = "fastpath_write_migrated"
	MFastWriteStorm    = "fastpath_write_storm"

	// Parking counters (shard-labeled via ShardMetric), classifying every
	// signal the shard delivers to a waiter: wakeups woke a parked
	// goroutine with one token (exactly one runtime wakeup per entitled
	// grant); direct signals landed during the waiter's pre-park spin
	// burst, so the owner never blocked at all; spurious signals found the
	// waiter already cancelled and were dropped. For a workload with no
	// cancellations, park_wakeups + park_direct equals the number of
	// requests that blocked (satisfied − immediately-satisfied).
	MParkWakeups  = "park_wakeups"
	MParkDirect   = "park_direct"
	MParkSpurious = "park_spurious"
)

// ShardMetric derives the shard-labeled instance name of a per-shard metric,
// e.g. ShardMetric(MShardAcquires, 2) = "shard_acquires{shard=2}".
func ShardMetric(name string, shard int) string {
	return fmt.Sprintf("%s{shard=%d}", name, shard)
}

// pendingReq is the per-request state ProtocolObserver keeps between issue
// and completion.
type pendingReq struct {
	kind        core.Kind
	incremental bool
	// waitStart is where the current wait began: issue time, or — for the
	// write half of an upgradeable pair — the read segment's finish time
	// (Sec. 3.6: the write half's acquisition bound applies to each wait
	// separately, and the optimistic read segment is not blocking).
	waitStart core.Time
	entitleT  core.Time
	satisfyT  core.Time
	entitled  bool
	satisfied bool
}

// ProtocolObserver converts the RSM's protocol event stream into metrics:
// lifecycle counters, in-flight/holder gauges, and delay/length histograms.
// It implements core.Observer and must see a request's full lifecycle
// (attach it before issuing requests).
//
// The observer is safe for concurrent use, though both planes deliver events
// serially (the simulator is single-threaded; the runtime lock observes
// under its protocol mutex).
type ProtocolObserver struct {
	// Instruments are resolved once at construction so the event path never
	// takes the registry lock.
	issued, entitledC, satisfiedC, completedC, canceledC *Counter
	immediate, incGrants, phRemoved, segsDone            *Counter
	inflight, holders                                    *Gauge
	acqRead, acqWrite, acqInc, entWait                   *Histogram
	csRead, csWrite, queueDepth                          *Histogram

	// Exemplar source (see SetExemplarSource): when set, acquisition-delay
	// samples are tagged with the request ID and the flight recorder's most
	// recent sequence for exShard, linking scraped tail buckets to the flight
	// window that produced them.
	exFlight *FlightRecorder
	exShard  int

	mu      sync.Mutex
	pending map[core.ReqID]*pendingReq
}

// SetExemplarSource tags future acquisition-delay samples with exemplars
// resolving into fl's ring for the given shard. For the flight sequence to
// name the satisfaction event itself, the flight recorder must receive each
// event before this observer does (the runtime lock's shards and the
// simulator both order their observer lists that way). Call before events
// flow.
func (po *ProtocolObserver) SetExemplarSource(fl *FlightRecorder, shard int) {
	po.exFlight, po.exShard = fl, shard
}

// NewProtocolObserver creates an observer recording into m.
func NewProtocolObserver(m *Metrics) *ProtocolObserver {
	return &ProtocolObserver{
		issued:     m.Counter(MIssued),
		entitledC:  m.Counter(MEntitled),
		satisfiedC: m.Counter(MSatisfied),
		completedC: m.Counter(MCompleted),
		canceledC:  m.Counter(MCanceled),
		immediate:  m.Counter(MImmediate),
		incGrants:  m.Counter(MIncGrants),
		phRemoved:  m.Counter(MPlaceholdersRemoved),
		segsDone:   m.Counter(MReadSegmentsDone),
		inflight:   m.Gauge(MInflight),
		holders:    m.Gauge(MHolders),
		acqRead:    m.Histogram(MAcqDelayRead),
		acqWrite:   m.Histogram(MAcqDelayWrite),
		acqInc:     m.Histogram(MAcqDelayIncremental),
		entWait:    m.Histogram(MEntitlementWait),
		csRead:     m.Histogram(MCSLengthRead),
		csWrite:    m.Histogram(MCSLengthWrite),
		queueDepth: m.Histogram(MQueueDepth),
		pending:    map[core.ReqID]*pendingReq{},
	}
}

// Observe implements core.Observer.
func (po *ProtocolObserver) Observe(e core.Event) {
	po.mu.Lock()
	defer po.mu.Unlock()
	switch e.Type {
	case core.EvIssued:
		po.issued.Inc()
		po.pending[e.Req] = &pendingReq{
			kind:        e.Kind,
			incremental: e.Incremental,
			waitStart:   e.T,
			entitleT:    -1,
			satisfyT:    -1,
		}
		po.inflight.Add(1)
		// Depth of the waiting pool at each arrival, satisfied holders
		// included: "how crowded was the system when I showed up".
		po.queueDepth.Observe(int64(len(po.pending)))

	case core.EvEntitled:
		po.entitledC.Inc()
		if p := po.pending[e.Req]; p != nil {
			p.entitled = true
			p.entitleT = e.T
		}

	case core.EvSatisfied:
		po.satisfiedC.Inc()
		p := po.pending[e.Req]
		if p == nil {
			return
		}
		p.satisfied = true
		p.satisfyT = e.T
		delay := int64(e.T - p.waitStart)
		if delay == 0 {
			po.immediate.Inc()
		}
		var seq uint64
		if po.exFlight != nil {
			seq = po.exFlight.LastSeqOf(po.exShard)
		}
		var trace string
		if e.Tag != nil {
			trace = tagString(e.Tag)
		}
		switch {
		case p.incremental:
			// Issue-to-full-satisfaction of an incremental request spans
			// hold phases between grants; it is not an acquisition delay in
			// the Theorem 1/2 sense, so it gets its own histogram.
			po.acqInc.ObserveTraced(delay, int64(e.Req), seq, trace)
		case p.kind == core.KindRead:
			po.acqRead.ObserveTraced(delay, int64(e.Req), seq, trace)
		default:
			po.acqWrite.ObserveTraced(delay, int64(e.Req), seq, trace)
		}
		if p.entitled {
			po.entWait.Observe(int64(e.T - p.entitleT))
		}
		po.holders.Add(1)

	case core.EvGranted:
		po.incGrants.Inc()

	case core.EvCompleted:
		po.completedC.Inc()
		po.finishCS(e)
		po.inflight.Add(-1)
		delete(po.pending, e.Req)

	case core.EvCanceled:
		po.canceledC.Inc()
		po.inflight.Add(-1)
		delete(po.pending, e.Req)

	case core.EvPlaceholdersRemoved:
		po.phRemoved.Inc()

	case core.EvReadSegmentDone:
		// The optimistic read half of an upgradeable pair finished: it is a
		// completed read critical section, and its write-half peer — if it
		// now upgrades — starts a fresh wait at this instant (its bound
		// applies per wait, not from the pair's issue time).
		po.segsDone.Inc()
		po.finishCS(e)
		po.inflight.Add(-1)
		delete(po.pending, e.Req)
		if peer := po.pending[e.Pair]; peer != nil && !peer.satisfied {
			peer.waitStart = e.T
		}
	}
}

// finishCS records the critical-section length for a request that just
// released its locks (EvCompleted or EvReadSegmentDone).
func (po *ProtocolObserver) finishCS(e core.Event) {
	p := po.pending[e.Req]
	if p == nil || !p.satisfied {
		return
	}
	cs := int64(e.T - p.satisfyT)
	if p.kind == core.KindRead {
		po.csRead.Observe(cs)
	} else {
		po.csWrite.Observe(cs)
	}
	po.holders.Add(-1)
}
