package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"github.com/rtsync/rwrnlp/internal/core"
)

// The flight recorder is the black box of the runtime lock: a bounded,
// lock-free ring of the most recent protocol events per shard, kept flat and
// JSON-serializable so a dump taken at an anomaly (stall-watchdog firing,
// bound violation, operator request via /debug/rnlp/flight) can be stored,
// round-tripped, and rendered offline — as a Perfetto trace or as a
// top-blocking-chains report via cmd/flightdump.
//
// Concurrency contract: each shard ring has a single logical writer (the
// shard delivers events under its mutex; the simulator is single-threaded),
// while Dump may run concurrently from any goroutine. Records are therefore
// published whole through atomic pointers — a reader sees either a complete
// record or an older complete record, never a torn one. When the recorder is
// disabled (nil), the hook on the event path is one pointer test.

// FlightRecord is one recorded protocol event, flattened for JSON. Times are
// in the emitting plane's units (shard ticks for the runtime lock, simulated
// nanoseconds for the simulator). Tag is stringified so arbitrary caller
// tags survive serialization.
type FlightRecord struct {
	Seq   uint64 `json:"seq"`
	Shard int    `json:"shard"`
	// Node names the recording node in merged multi-node dumps (see
	// MergeFlightDumps); live recorders leave it empty.
	Node        string  `json:"node,omitempty"`
	T           int64   `json:"t"`
	Type        string  `json:"type"`
	Req         int64   `json:"req"`
	Kind        string  `json:"kind"`
	Resources   []int   `json:"resources,omitempty"`
	Read        []int   `json:"read,omitempty"`
	Write       []int   `json:"write,omitempty"`
	Pair        int64   `json:"pair,omitempty"`
	Incremental bool    `json:"incremental,omitempty"`
	Tag         string  `json:"tag,omitempty"`
	Blockers    []int64 `json:"blockers,omitempty"`
}

// flightEventTypes maps the stable EventType strings back to their values
// for dump replay.
var flightEventTypes = map[string]core.EventType{}

func init() {
	for t := core.EvIssued; t <= core.EvReadSegmentDone; t++ {
		flightEventTypes[t.String()] = t
	}
}

func setToInts(s core.ResourceSet) []int {
	ids := s.IDs()
	if len(ids) == 0 {
		return nil
	}
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id)
	}
	return out
}

func intsToSet(ids []int) core.ResourceSet {
	rs := make([]core.ResourceID, len(ids))
	for i, id := range ids {
		rs[i] = core.ResourceID(id)
	}
	return core.NewResourceSet(rs...)
}

// Event reconstructs the core event this record captured. The Tag comes back
// as its string rendering (or nil if the original had none).
func (r FlightRecord) Event() core.Event {
	e := core.Event{
		T:           core.Time(r.T),
		Type:        flightEventTypes[r.Type],
		Req:         core.ReqID(r.Req),
		Resources:   intsToSet(r.Resources),
		Read:        intsToSet(r.Read),
		Write:       intsToSet(r.Write),
		Pair:        core.ReqID(r.Pair),
		Incremental: r.Incremental,
	}
	if r.Kind == core.KindWrite.String() {
		e.Kind = core.KindWrite
	}
	if r.Tag != "" {
		e.Tag = r.Tag
	}
	if len(r.Blockers) > 0 {
		e.Blockers = make([]core.ReqID, len(r.Blockers))
		for i, b := range r.Blockers {
			e.Blockers[i] = core.ReqID(b)
		}
	}
	return e
}

// flightRing is one shard's bounded record ring.
type flightRing struct {
	slots []atomic.Pointer[FlightRecord]
	next  atomic.Uint64 // next slot index to write (monotonic, mod len)
	last  atomic.Uint64 // global Seq of the most recent record in this ring
}

// DefaultFlightDepth is the per-shard ring capacity when none is given.
const DefaultFlightDepth = 1024

// FlightRecorder keeps the last perShard events of each shard. It is safe to
// dump concurrently with recording; record delivery itself must be
// serialized per shard (the shard's own lock already does this).
type FlightRecorder struct {
	rings []flightRing
	gseq  atomic.Uint64
	drops atomic.Uint64 // malformed deliveries (out-of-range shard)
}

// NewFlightRecorder creates a recorder for nshards shards with perShard ring
// slots each (<= 0 selects DefaultFlightDepth).
// tagString renders a caller-supplied event tag. Trace IDs — the common case
// and the only one on the contended hot path — are plain strings and take the
// allocation-free type assertion; anything else falls back to fmt.Sprint.
func tagString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprint(v)
}

func NewFlightRecorder(nshards, perShard int) *FlightRecorder {
	if nshards < 1 {
		nshards = 1
	}
	if perShard <= 0 {
		perShard = DefaultFlightDepth
	}
	f := &FlightRecorder{rings: make([]flightRing, nshards)}
	for i := range f.rings {
		f.rings[i].slots = make([]atomic.Pointer[FlightRecord], perShard)
	}
	return f
}

// Shards reports the number of shard rings.
func (f *FlightRecorder) Shards() int { return len(f.rings) }

// Record stores one event into the given shard's ring. Must be serialized
// per shard by the caller.
func (f *FlightRecorder) Record(shard int, e core.Event) {
	if shard < 0 || shard >= len(f.rings) {
		f.drops.Add(1)
		return
	}
	rec := &FlightRecord{
		Seq:         f.gseq.Add(1),
		Shard:       shard,
		T:           int64(e.T),
		Type:        e.Type.String(),
		Req:         int64(e.Req),
		Kind:        e.Kind.String(),
		Resources:   setToInts(e.Resources),
		Read:        setToInts(e.Read),
		Write:       setToInts(e.Write),
		Pair:        int64(e.Pair),
		Incremental: e.Incremental,
	}
	if e.Tag != nil {
		rec.Tag = tagString(e.Tag)
	}
	if len(e.Blockers) > 0 {
		rec.Blockers = make([]int64, len(e.Blockers))
		for i, b := range e.Blockers {
			rec.Blockers[i] = int64(b)
		}
	}
	ring := &f.rings[shard]
	idx := ring.next.Add(1) - 1
	ring.slots[idx%uint64(len(ring.slots))].Store(rec)
	ring.last.Store(rec.Seq)
}

// LastSeqOf returns the global sequence number of the most recent record in
// the given shard's ring (0 if none). Under the per-shard serialization
// contract, an observer running after Record in the same delivery sees the
// sequence of exactly that event — the hook metric exemplars use to link a
// tail sample to its flight-recorder window.
func (f *FlightRecorder) LastSeqOf(shard int) uint64 {
	if shard < 0 || shard >= len(f.rings) {
		return 0
	}
	return f.rings[shard].last.Load()
}

// ShardObserver adapts one shard's ring to core.Observer, for planes that
// attach observers directly (simulator, model checker).
func (f *FlightRecorder) ShardObserver(shard int) core.Observer {
	return core.ObserverFunc(func(e core.Event) { f.Record(shard, e) })
}

// FlightDump is a stable snapshot of the recorder: all retained records in
// global capture order.
type FlightDump struct {
	Version int            `json:"version"`
	Shards  int            `json:"shards"`
	Records []FlightRecord `json:"records"`
}

// flightDumpVersion identifies the dump schema.
const flightDumpVersion = 1

// Dump snapshots every retained record, ordered by capture sequence. Safe to
// call concurrently with Record.
func (f *FlightRecorder) Dump() FlightDump {
	d := FlightDump{Version: flightDumpVersion, Shards: len(f.rings)}
	for i := range f.rings {
		for j := range f.rings[i].slots {
			if rec := f.rings[i].slots[j].Load(); rec != nil {
				d.Records = append(d.Records, *rec)
			}
		}
	}
	sort.Slice(d.Records, func(a, b int) bool { return d.Records[a].Seq < d.Records[b].Seq })
	return d
}

// WriteJSON serializes the dump (one indented JSON document).
func (d FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ParseFlightDump reads a dump produced by WriteJSON.
func ParseFlightDump(r io.Reader) (FlightDump, error) {
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return FlightDump{}, fmt.Errorf("flight dump: %w", err)
	}
	if d.Version != flightDumpVersion {
		return FlightDump{}, fmt.Errorf("flight dump: unsupported version %d", d.Version)
	}
	for i, rec := range d.Records {
		if _, ok := flightEventTypes[rec.Type]; !ok {
			return FlightDump{}, fmt.Errorf("flight dump: record %d has unknown event type %q", i, rec.Type)
		}
	}
	return d, nil
}

// Events reconstructs the recorded core events in capture order.
func (d FlightDump) Events() []core.Event {
	evs := make([]core.Event, len(d.Records))
	for i, rec := range d.Records {
		evs[i] = rec.Event()
	}
	return evs
}

// WritePerfetto renders the dump as a Perfetto/Chrome trace. Record times
// are used verbatim as microsecond timestamps (TimeDiv 1): for the runtime
// plane these are shard ticks, which preserves ordering and relative spans.
// A ring dump usually starts mid-lifecycle; slices whose begin fell off the
// ring are dropped, and still-open slices are closed at the last record's
// time (marked by the builder).
func (d FlightDump) WritePerfetto(w io.Writer) error {
	tb := NewTraceBuilder()
	tb.TimeDiv = 1
	for _, e := range d.Events() {
		tb.Observe(e)
	}
	_, err := tb.WriteTo(w)
	return err
}

// Attribution replays the dump through a fresh Attributor and returns its
// report — the offline path used by cmd/flightdump. Requests whose issuance
// fell off the ring are invisible to the attributor and are skipped.
func (d FlightDump) Attribution(topK int) AttributionReport {
	a := NewAttributor(NewMetrics(), topK)
	for _, e := range d.Events() {
		a.Observe(e)
	}
	return a.Report()
}

// MergeFlightDumps merges per-node flight dumps into one cluster dump, the
// offline join behind `flightdump node1.json node2.json ...`. Each dump's
// shards are offset into a disjoint range, its request IDs (Req, Pair,
// Blockers) are remapped to req*len(dumps)+nodeIdx so IDs never collide
// across nodes, and every record is labeled with its node's name (names[i]
// pairs with dumps[i]; missing names stay empty). Records are ordered by
// (T, node, original seq) and renumbered — per-node T is logical shard ticks
// on independent clocks, so cross-node ordering at equal T is arbitrary but
// deterministic; requests join across nodes by Tag (the distributed trace
// ID), not by time. Seq-based joins (exemplar flight_seq) are only meaningful
// against the single-node dump they were minted in.
func MergeFlightDumps(dumps []FlightDump, names []string) FlightDump {
	n := len(dumps)
	merged := FlightDump{Version: flightDumpVersion}
	type annotated struct {
		rec  FlightRecord
		node int
		seq  uint64
	}
	var all []annotated
	shardBase := 0
	for i, d := range dumps {
		var name string
		if i < len(names) {
			name = names[i]
		}
		for _, r := range d.Records {
			orig := r.Seq
			r.Node = name
			r.Shard += shardBase
			r.Req = r.Req*int64(n) + int64(i)
			if r.Pair != 0 {
				r.Pair = r.Pair*int64(n) + int64(i)
			}
			if len(r.Blockers) > 0 {
				bs := make([]int64, len(r.Blockers))
				for j, b := range r.Blockers {
					bs[j] = b*int64(n) + int64(i)
				}
				r.Blockers = bs
			}
			all = append(all, annotated{rec: r, node: i, seq: orig})
		}
		shards := d.Shards
		if shards < 1 {
			shards = 1
		}
		shardBase += shards
	}
	merged.Shards = shardBase
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].rec.T != all[b].rec.T {
			return all[a].rec.T < all[b].rec.T
		}
		if all[a].node != all[b].node {
			return all[a].node < all[b].node
		}
		return all[a].seq < all[b].seq
	})
	merged.Records = make([]FlightRecord, len(all))
	for i := range all {
		all[i].rec.Seq = uint64(i + 1)
		merged.Records[i] = all[i].rec
	}
	return merged
}

// FilterTag returns the subset of the dump whose records carry the given tag
// — every event of a tagged request is stamped, so this is the request's full
// retained lifecycle on each node (one per hop for a distributed trace ID).
func (d FlightDump) FilterTag(tag string) FlightDump {
	out := FlightDump{Version: d.Version, Shards: d.Shards}
	for _, r := range d.Records {
		if r.Tag == tag {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// ResolveSeq resolves a flight sequence number — as carried by a metric
// exemplar — into the record it names and the blocking chain of that
// record's request, reconstructed by replaying the dump through a fresh
// Attributor. This is the exemplar → attribution leg of the telemetry loop:
// scrape OpenMetrics, take a tail bucket's flight_seq, resolve it here (or
// via `flightdump -seq`).
//
// It fails if the sequence is no longer retained (the ring wrapped) or if
// the request's lifecycle is too truncated in the dump to attribute.
func (d FlightDump) ResolveSeq(seq uint64) (FlightRecord, BlockChain, error) {
	var rec *FlightRecord
	for i := range d.Records {
		if d.Records[i].Seq == seq {
			rec = &d.Records[i]
			break
		}
	}
	if rec == nil {
		return FlightRecord{}, BlockChain{}, fmt.Errorf("flight seq %d not retained (ring wrapped or recorder restarted)", seq)
	}
	a := NewAttributor(NewMetrics(), 1)
	for _, e := range d.Events() {
		a.Observe(e)
	}
	chain, ok := a.Chain(core.ReqID(rec.Req))
	if !ok {
		return *rec, BlockChain{}, fmt.Errorf("flight seq %d: request %d has no attributable chain in the dump (lifecycle truncated by the ring)", seq, rec.Req)
	}
	return *rec, chain, nil
}
