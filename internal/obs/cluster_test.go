package obs

import (
	"context"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// newScrapeTarget serves a DebugMux over a registry with some traffic and an
// attributor, returning the test server.
func newScrapeTarget(t *testing.T) *httptest.Server {
	t.Helper()
	m := NewMetrics()
	m.Counter(MIssued).Add(10)
	m.Counter(MSatisfied).Add(9)
	ts := NewTimeSeries(m, time.Millisecond, 16)
	ts.Capture()
	m.Counter(MSatisfied).Add(3)
	m.Histogram(MAcqDelayRead).Observe(7)
	time.Sleep(2 * time.Millisecond)
	ts.Capture()
	attr := NewAttributor(m, 5)
	driveFig2(t, attr)
	srv := httptest.NewServer(NewDebugMux(DebugMuxConfig{
		Metrics:     m,
		Series:      ts,
		Attribution: attr.Report,
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestScrapeCluster: two healthy nodes plus one dead one merge into a report
// with summed counts, per-node health, node-tagged top chains — and the
// fan-out leaves no goroutines behind.
func TestScrapeCluster(t *testing.T) {
	a, b := newScrapeTarget(t), newScrapeTarget(t)
	dead := httptest.NewServer(nil)
	dead.Close() // connection-refused node

	nodes := []ClusterNode{
		{Name: "a", URL: a.URL},
		{Name: "b", URL: b.URL},
		{Name: "dead", URL: dead.URL},
	}
	before := goroutinesWith("obs.FetchNodeStatus")
	rep := ScrapeCluster(context.Background(), nil, nodes, time.Minute)
	if after := goroutinesWith("obs.FetchNodeStatus"); after > before {
		t.Fatalf("ScrapeCluster leaked %d scrape goroutine(s)", after-before)
	}

	if len(rep.Nodes) != 3 || rep.Healthy != 2 {
		t.Fatalf("healthy=%d nodes=%d, want 2 of 3", rep.Healthy, len(rep.Nodes))
	}
	for _, st := range rep.Nodes {
		if st.Name == "dead" {
			if st.Healthy || st.Err == "" {
				t.Fatalf("dead node status = %+v, want unhealthy with error", st)
			}
		} else if !st.Healthy {
			t.Fatalf("node %s unhealthy: %s", st.Name, st.Err)
		}
	}
	// Each node saw 3 satisfieds inside its window; the cluster sums them.
	var perNode float64
	for _, st := range rep.Nodes {
		if st.Name == "a" {
			perNode = st.Series.Rates[MSatisfied]
		}
	}
	if perNode <= 0 {
		t.Fatal("node a has no satisfied rate in window")
	}
	if got := rep.Rates[MSatisfied]; got < 1.5*perNode {
		t.Fatalf("cluster satisfied rate %f does not sum both nodes (per-node %f)", got, perNode)
	}
	// Windowed tails merge conservatively (max), so the cluster tail is at
	// least one node's.
	if rep.Hists[MAcqDelayRead].Count != 2 || rep.Hists[MAcqDelayRead].Max == 0 {
		t.Fatalf("merged %s = %+v, want count 2 with nonzero max", MAcqDelayRead, rep.Hists[MAcqDelayRead])
	}
	// Top chains are node-tagged and delay-sorted.
	if len(rep.Top) == 0 {
		t.Fatal("no merged top chains")
	}
	for i, c := range rep.Top {
		if c.Node != "a" && c.Node != "b" {
			t.Fatalf("chain %d tagged %q", i, c.Node)
		}
		if i > 0 && c.Chain.Delay > rep.Top[i-1].Chain.Delay {
			t.Fatalf("top chains not delay-sorted: %+v", rep.Top)
		}
	}
	if rep.BoundNode == "" {
		t.Fatal("no worst-bound node named")
	}
}

// TestMergeClusterEmpty: merging nothing (or only dead nodes) must not panic
// and reports zero healthy.
func TestMergeClusterEmpty(t *testing.T) {
	rep := MergeCluster(nil)
	if rep.Healthy != 0 || len(rep.Top) != 0 {
		t.Fatalf("empty merge = %+v", rep)
	}
	rep = MergeCluster([]NodeStatus{{Name: "x", Err: "down"}})
	if rep.Healthy != 0 {
		t.Fatalf("dead-only merge healthy=%d", rep.Healthy)
	}
}

// goroutinesWith counts live goroutines whose stack contains sub.
func goroutinesWith(sub string) int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, sub) {
			count++
		}
	}
	return count
}

// TestMergeFlightDumps: per-node dumps merge with disjoint shard ranges,
// collision-free request IDs, node labels, and tag filtering.
func TestMergeFlightDumps(t *testing.T) {
	fl1 := NewFlightRecorder(2, 64)
	fl2 := NewFlightRecorder(1, 64)
	driveFig2(t, fl1.ShardObserver(0))
	driveFig2(t, fl2.ShardObserver(0))

	d1, d2 := fl1.Dump(), fl2.Dump()
	m := MergeFlightDumps([]FlightDump{d1, d2}, []string{"n1", "n2"})

	if m.Shards != 3 {
		t.Fatalf("merged shards = %d, want 2+1", m.Shards)
	}
	if len(m.Records) != len(d1.Records)+len(d2.Records) {
		t.Fatalf("merged %d records, want %d", len(m.Records), len(d1.Records)+len(d2.Records))
	}
	seenNodes := map[string]bool{}
	reqNodes := map[int64]string{}
	var lastSeq uint64
	for _, r := range m.Records {
		seenNodes[r.Node] = true
		if r.Seq != lastSeq+1 {
			t.Fatalf("seq not renumbered densely: %d after %d", r.Seq, lastSeq)
		}
		lastSeq = r.Seq
		if r.Node == "n2" && r.Shard != 2 {
			t.Fatalf("n2 record on shard %d, want offset to 2", r.Shard)
		}
		if prev, ok := reqNodes[r.Req]; ok && prev != r.Node {
			t.Fatalf("request ID %d appears on both %s and %s", r.Req, prev, r.Node)
		}
		reqNodes[r.Req] = r.Node
	}
	if !seenNodes["n1"] || !seenNodes["n2"] {
		t.Fatalf("node labels missing: %v", seenNodes)
	}

	// Both nodes ran a request tagged "B"; the tag filter keeps exactly those
	// two lifecycles and nothing else.
	f := m.FilterTag("B")
	if len(f.Records) == 0 {
		t.Fatal("FilterTag(B) empty")
	}
	reqs := map[int64]string{}
	for _, r := range f.Records {
		if r.Tag != "B" {
			t.Fatalf("filtered record has tag %q", r.Tag)
		}
		reqs[r.Req] = r.Node
	}
	if len(reqs) != 2 {
		t.Fatalf("FilterTag(B) covers %d requests, want one per node: %v", len(reqs), reqs)
	}

	// The merged dump still renders as a Perfetto trace.
	var sb strings.Builder
	if err := m.WritePerfetto(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Fatal("merged perfetto output malformed")
	}
}
