package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/trace"
	"github.com/rtsync/rwrnlp/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fig2Trace renders the Fig. 2(a) running example — events and schedule —
// with tick-resolution timestamps.
func fig2Trace(t *testing.T) *bytes.Buffer {
	t.Helper()
	tb := NewTraceBuilder()
	tb.TimeDiv = 1 // the running example is in logical ticks
	rec := &trace.Recorder{}
	s, err := sim.New(sim.Config{
		System: workload.Fig2System(), Policy: sched.EDF, Progress: sim.SpinNP,
		Protocol: sim.ProtoRWRNLP, Horizon: 12, JobsPerTask: 1,
		CheckInvariants: true, RecordSchedule: true,
		Trace:     rec,
		Observers: []core.Observer{tb},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if rec.Len() == 0 {
		t.Fatal("recorder saw no events")
	}
	tb.AddSchedule(res.Schedule)
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestPerfettoFig2Golden locks the exporter's output for the paper's running
// example: stable byte-for-byte rendering and valid JSON with the expected
// track structure. Regenerate with go test ./internal/obs -run Golden -update.
func TestPerfettoFig2Golden(t *testing.T) {
	buf := fig2Trace(t)
	golden := filepath.Join("testdata", "fig2.json")

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exporter output differs from %s (run with -update after intentional changes)\n got %d bytes, want %d",
			golden, buf.Len(), len(want))
	}

	if !json.Valid(want) {
		t.Fatal("golden file is not valid JSON")
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(want, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	byPh := map[string]int{}
	byPid := map[int]int{}
	for _, e := range doc.TraceEvents {
		byPh[e.Ph]++
		byPid[e.Pid]++
	}
	// Fig. 2 has 5 requests (2 writers, 3 readers), 3 resources, 5 CPUs:
	// expect metadata, wait/CS slices, flows, counters, and sched slices.
	for _, ph := range []string{"M", "X", "s", "t", "f", "C"} {
		if byPh[ph] == 0 {
			t.Errorf("no %q-phase events in Fig. 2 trace", ph)
		}
	}
	for _, pid := range []int{pidResources, pidRequests, pidCPUs} {
		if byPid[pid] == 0 {
			t.Errorf("no events for pid %d", pid)
		}
	}
}

func TestPerfettoDeterministic(t *testing.T) {
	a, b := fig2Trace(t), fig2Trace(t)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same run differ")
	}
}

// TestPerfettoRequestTrackCap: requests beyond MaxRequestTracks lose their
// lifecycle tracks but are counted, never silently dropped.
func TestPerfettoRequestTrackCap(t *testing.T) {
	tb := NewTraceBuilder()
	tb.TimeDiv = 1
	tb.MaxRequestTracks = 2
	for i := 1; i <= 5; i++ {
		id := core.ReqID(i)
		tb.Observe(ev(core.Time(i), core.EvIssued, id, core.KindWrite))
		tb.Observe(ev(core.Time(i+10), core.EvSatisfied, id, core.KindWrite))
		tb.Observe(ev(core.Time(i+20), core.EvCompleted, id, core.KindWrite))
	}
	if got := tb.DroppedRequests(); got != 3 {
		t.Errorf("DroppedRequests = %d, want 3", got)
	}
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Error("capped trace is not valid JSON")
	}
}

// TestPerfettoOpenSlices: unfinished requests are closed at the trace end
// and marked open rather than vanishing.
func TestPerfettoOpenSlices(t *testing.T) {
	tb := NewTraceBuilder()
	tb.TimeDiv = 1
	tb.Observe(ev(0, core.EvIssued, 1, core.KindWrite))
	tb.Observe(ev(0, core.EvSatisfied, 1, core.KindWrite))
	tb.Observe(ev(2, core.EvIssued, 2, core.KindRead)) // still waiting
	var buf bytes.Buffer
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"cs (open)", "wait (open)"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("trace lacks %q:\n%s", want, s)
		}
	}
}
