package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/rtsync/rwrnlp/internal/core"
)

// Delay components of the causal attribution (see IMPLEMENTATION.md,
// "Observability: attribution, flight recording, watchdog"). Each satisfied
// request's acquisition delay is decomposed exactly — the parts sum to the
// measured wait — into the paper's blocking causes:
//
//   - a reader's pre-entitlement span is time conceded to entitled writers
//     (Def. 3; Lemma 3 bounds it by L^w_max via the writer it waits behind);
//   - a reader's entitled span is time waiting out the conflicting write
//     holder (Rule R2; Lemma 2: at most one writer per resource);
//   - a writer's pre-entitlement span is queue wait — earlier-timestamped
//     writers ahead of it in some write queue, or entitled readers it must
//     let pass (Def. 4; Lemmas 4–5);
//   - a writer's entitled span is the current read phase it must outwait
//     (Rule W2; Lemmas 6–7 bound the satisfied holders that may block it).
//
// Two further components exist only in the runtime plane and are recorded by
// the Protocol's acquisition path in wall-clock nanoseconds: the
// cross-component slow path (undeclared multi-component footprints acquired
// piecewise, outside any per-component bound) and fast-path revocation
// (fast-eligible reads forced through the RSM while the BRAVO path is
// revoked).
const (
	AttrReaderBehindWriter = "attr_reader_behind_entitled_writer"
	AttrReaderEntitledWait = "attr_reader_entitled_wait"
	AttrWriterQueueWait    = "attr_writer_queue_wait"
	AttrWriterReadPhase    = "attr_writer_blocked_by_read_phase"
	AttrImmediate          = "attr_immediate" // counter: zero-delay satisfactions
	AttrSlowPathNS         = "attr_slow_path_ns"
	AttrFastRevocationNS   = "attr_fastpath_revocation_ns"
)

// DelayPart is one component of a request's acquisition-delay decomposition.
type DelayPart struct {
	Component string `json:"component"`
	Span      int64  `json:"span"`
}

// BlockChain is the causal record of one satisfied request: its delay
// decomposition plus the wait edges (blocker IDs) captured at issuance and at
// entitlement. The parts always sum to Delay.
type BlockChain struct {
	Req             core.ReqID   `json:"req"`
	Kind            core.Kind    `json:"kind"`
	Tag             string       `json:"tag,omitempty"`
	IssueT          core.Time    `json:"issue_t"`
	SatisfyT        core.Time    `json:"satisfy_t"`
	Delay           int64        `json:"delay"`
	Parts           []DelayPart  `json:"parts"`
	IssueBlockers   []core.ReqID `json:"issue_blockers,omitempty"`
	EntitleBlockers []core.ReqID `json:"entitle_blockers,omitempty"`
}

func (c BlockChain) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "req=%d (%s)", c.Req, c.Kind)
	if c.Tag != "" {
		fmt.Fprintf(&b, " tag=%s", c.Tag)
	}
	fmt.Fprintf(&b, " delay=%d", c.Delay)
	if len(c.Parts) > 0 {
		b.WriteString(" =")
		for i, p := range c.Parts {
			if i > 0 {
				b.WriteString(" +")
			}
			fmt.Fprintf(&b, " %s:%d", strings.TrimPrefix(p.Component, "attr_"), p.Span)
		}
	}
	return b.String()
}

// attrPending is the per-request state between issue and satisfaction.
type attrPending struct {
	kind            core.Kind
	incremental     bool
	tag             any
	waitStart       core.Time
	entitleT        core.Time
	entitled        bool
	satisfied       bool
	issueBlockers   []core.ReqID
	entitleBlockers []core.ReqID
}

// attrRecentCap bounds how many completed chains the attributor retains for
// transitive chain expansion in reports (FIFO eviction).
const attrRecentCap = 4096

// Attributor converts the RSM's event stream — including the Blockers wait
// edges on EvIssued/EvEntitled — into a causal blocking attribution: per-
// component delay histograms (recorded into a Metrics registry) and a top-K
// list of the worst blocking chains, each naming the exact requests waited
// behind. It implements core.Observer and must see full request lifecycles;
// attach it before issuing requests.
//
// The write half of an upgradeable pair restarts its wait when the read
// segment finishes (its Theorem 2 bound applies per wait); incremental
// requests are tallied but not decomposed, since their issue-to-satisfaction
// span includes hold phases between grants (Sec. 3.7).
type Attributor struct {
	mu sync.Mutex

	readBehind, readEnt, wQueue, wPhase *Histogram
	immediate                           *Counter

	pending map[core.ReqID]*attrPending

	recent      map[core.ReqID]*BlockChain
	recentOrder []core.ReqID

	top []*BlockChain
	k   int

	checked    int64
	skippedInc int64
}

// NewAttributor creates an attributor recording component histograms into m
// and keeping the topK worst blocking chains (topK <= 0 means 10).
func NewAttributor(m *Metrics, topK int) *Attributor {
	if topK <= 0 {
		topK = 10
	}
	return &Attributor{
		readBehind: m.Histogram(AttrReaderBehindWriter),
		readEnt:    m.Histogram(AttrReaderEntitledWait),
		wQueue:     m.Histogram(AttrWriterQueueWait),
		wPhase:     m.Histogram(AttrWriterReadPhase),
		immediate:  m.Counter(AttrImmediate),
		pending:    map[core.ReqID]*attrPending{},
		recent:     map[core.ReqID]*BlockChain{},
		k:          topK,
	}
}

// Observe implements core.Observer.
func (a *Attributor) Observe(e core.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch e.Type {
	case core.EvIssued:
		a.pending[e.Req] = &attrPending{
			kind:          e.Kind,
			incremental:   e.Incremental,
			tag:           e.Tag,
			waitStart:     e.T,
			issueBlockers: append([]core.ReqID(nil), e.Blockers...),
		}

	case core.EvEntitled:
		if p := a.pending[e.Req]; p != nil {
			p.entitled = true
			p.entitleT = e.T
			p.entitleBlockers = append([]core.ReqID(nil), e.Blockers...)
		}

	case core.EvSatisfied:
		p := a.pending[e.Req]
		if p == nil || p.satisfied {
			return
		}
		p.satisfied = true
		if p.incremental {
			a.skippedInc++
			return
		}
		a.checked++
		a.attribute(e, p)

	case core.EvCompleted, core.EvCanceled:
		delete(a.pending, e.Req)

	case core.EvReadSegmentDone:
		delete(a.pending, e.Req)
		// The write half's bound applies per wait: restart its clock, and
		// drop stale wait edges from the pair's issuance.
		if peer := a.pending[e.Pair]; peer != nil && !peer.satisfied {
			peer.waitStart = e.T
			if peer.entitled {
				peer.entitleT = e.T
			}
			peer.issueBlockers = nil
			peer.entitleBlockers = nil
		}
	}
}

// attribute decomposes one satisfied request's delay and records the chain.
// Caller holds a.mu.
func (a *Attributor) attribute(e core.Event, p *attrPending) {
	delay := int64(e.T - p.waitStart)
	if delay < 0 {
		delay = 0
	}
	c := &BlockChain{
		Req:             e.Req,
		Kind:            p.kind,
		IssueT:          p.waitStart,
		SatisfyT:        e.T,
		Delay:           delay,
		IssueBlockers:   p.issueBlockers,
		EntitleBlockers: p.entitleBlockers,
	}
	if p.tag != nil {
		c.Tag = fmt.Sprint(p.tag)
	}

	if delay == 0 {
		a.immediate.Inc()
	} else {
		// Split the wait at the entitlement instant, clamped into the wait
		// window so the parts sum to delay exactly even when the clock was
		// restarted mid-wait (upgradeable write halves).
		eT := e.T
		if p.entitled {
			eT = p.entitleT
			if eT < p.waitStart {
				eT = p.waitStart
			}
			if eT > e.T {
				eT = e.T
			}
		} else if p.kind == core.KindWrite {
			// A write satisfied from Waiting skipped entitlement only on the
			// immediate path; a delayed one always passed through Def. 4
			// (Props. E7/E9). Defensive: charge the whole span as queue wait.
			eT = e.T
		}
		pre, ent := int64(eT-p.waitStart), int64(e.T-eT)
		if p.kind == core.KindRead {
			if pre > 0 {
				c.Parts = append(c.Parts, DelayPart{AttrReaderBehindWriter, pre})
				a.readBehind.Observe(pre)
			}
			if ent > 0 {
				c.Parts = append(c.Parts, DelayPart{AttrReaderEntitledWait, ent})
				a.readEnt.Observe(ent)
			}
		} else {
			if pre > 0 {
				c.Parts = append(c.Parts, DelayPart{AttrWriterQueueWait, pre})
				a.wQueue.Observe(pre)
			}
			if ent > 0 {
				c.Parts = append(c.Parts, DelayPart{AttrWriterReadPhase, ent})
				a.wPhase.Observe(ent)
			}
		}
	}

	a.remember(c)
	a.rank(c)
}

// remember stores the chain for transitive expansion, evicting FIFO past the
// cap. Caller holds a.mu.
func (a *Attributor) remember(c *BlockChain) {
	if _, ok := a.recent[c.Req]; !ok {
		a.recentOrder = append(a.recentOrder, c.Req)
	}
	a.recent[c.Req] = c
	for len(a.recentOrder) > attrRecentCap {
		old := a.recentOrder[0]
		a.recentOrder = a.recentOrder[1:]
		delete(a.recent, old)
	}
}

// rank inserts the chain into the top-K list (descending delay). Caller
// holds a.mu.
func (a *Attributor) rank(c *BlockChain) {
	if len(a.top) == a.k && c.Delay <= a.top[len(a.top)-1].Delay {
		return
	}
	a.top = append(a.top, c)
	sort.SliceStable(a.top, func(i, j int) bool { return a.top[i].Delay > a.top[j].Delay })
	if len(a.top) > a.k {
		a.top = a.top[:a.k]
	}
}

// Chain returns the recorded blocking chain of a satisfied request, if still
// retained.
func (a *Attributor) Chain(id core.ReqID) (BlockChain, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	c, ok := a.recent[id]
	if !ok {
		return BlockChain{}, false
	}
	return *c, true
}

// ChainByTag returns the most recently satisfied retained chain whose Tag
// matches, scanning newest-first. This is the server tier's join from a
// distributed trace ID to the shard-level delay decomposition of the request
// that carried it.
func (a *Attributor) ChainByTag(tag string) (BlockChain, bool) {
	if tag == "" {
		return BlockChain{}, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := len(a.recentOrder) - 1; i >= 0; i-- {
		if c := a.recent[a.recentOrder[i]]; c != nil && c.Tag == tag {
			return *c, true
		}
	}
	return BlockChain{}, false
}

// AttributionReport is the attributor's summary: totals per delay component
// and the worst blocking chains observed.
type AttributionReport struct {
	Checked            int64                `json:"checked"`
	SkippedIncremental int64                `json:"skipped_incremental"`
	Immediate          int64                `json:"immediate"`
	Components         map[string]HistStats `json:"components"`
	Top                []BlockChain         `json:"top"`

	// chains resolves blocker IDs for the rendered expansion.
	chains map[core.ReqID]*BlockChain
}

// Report snapshots the attribution state. The attributor may keep observing
// afterwards.
func (a *Attributor) Report() AttributionReport {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := AttributionReport{
		Checked:            a.checked,
		SkippedIncremental: a.skippedInc,
		Immediate:          a.immediate.Value(),
		Components: map[string]HistStats{
			AttrReaderBehindWriter: a.readBehind.Stats(),
			AttrReaderEntitledWait: a.readEnt.Stats(),
			AttrWriterQueueWait:    a.wQueue.Stats(),
			AttrWriterReadPhase:    a.wPhase.Stats(),
		},
		chains: make(map[core.ReqID]*BlockChain, len(a.recent)),
	}
	for _, c := range a.top {
		r.Top = append(r.Top, *c)
	}
	for id, c := range a.recent {
		r.chains[id] = c
	}
	return r
}

// maxChainDepth caps the transitive expansion of a blocking chain in the
// rendered report.
const maxChainDepth = 4

func (r AttributionReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "attribution: checked=%d immediate=%d skipped-incremental=%d\n",
		r.Checked, r.Immediate, r.SkippedIncremental)
	names := make([]string, 0, len(r.Components))
	for n := range r.Components {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.Components[n]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-36s n=%-6d mean=%.1f p95=%d max=%d\n", n, h.Count, h.Mean, h.P95, h.Max)
	}
	if len(r.Top) > 0 {
		fmt.Fprintf(&b, "top blocking chains (worst %d by delay):\n", len(r.Top))
		for i, c := range r.Top {
			fmt.Fprintf(&b, "  #%d %s\n", i+1, c)
			r.expand(&b, c, "     ", map[core.ReqID]bool{c.Req: true}, maxChainDepth)
		}
	}
	return b.String()
}

// expand renders the wait edges of one chain, following blockers through the
// retained chains up to depth levels (cycle-guarded: IDs are never revisited).
func (r AttributionReport) expand(b *strings.Builder, c BlockChain, indent string, seen map[core.ReqID]bool, depth int) {
	if depth == 0 {
		return
	}
	edges := []struct {
		label string
		ids   []core.ReqID
	}{
		{"issued behind", c.IssueBlockers},
		{"entitled behind", c.EntitleBlockers},
	}
	for _, e := range edges {
		if len(e.ids) == 0 {
			continue
		}
		fmt.Fprintf(b, "%s%s:", indent, e.label)
		for _, id := range e.ids {
			fmt.Fprintf(b, " %d", id)
		}
		b.WriteString("\n")
		for _, id := range e.ids {
			if seen[id] {
				continue
			}
			seen[id] = true
			if bc, ok := r.chains[id]; ok {
				fmt.Fprintf(b, "%s└─ %s\n", indent, *bc)
				r.expand(b, *bc, indent+"   ", seen, depth-1)
			}
		}
	}
}
