package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// promTestMetrics builds a registry with a fixed, deterministic population:
// aggregate and shard-labeled counters, a gauge, and histograms with and
// without a shard label.
func promTestMetrics() *Metrics {
	m := NewMetrics()
	m.Counter(MIssued).Add(7)
	m.Counter(ShardMetric(MShardAcquires, 0)).Add(3)
	m.Counter(ShardMetric(MShardAcquires, 1)).Add(4)
	m.Gauge(MInflight).Set(2)
	h := m.Histogram(MAcqDelayRead)
	for _, v := range []int64{1, 3, 17, 900} {
		h.Observe(v)
	}
	sh := m.Histogram(ShardMetric(MShardCombineWaitNS, 1))
	sh.Observe(64)
	return m
}

// Golden test for the 0.0.4 text exposition: byte-exact output for a fixed
// registry. Regenerate with go test ./internal/obs -run Prometheus -update.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promTestMetrics().Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from %s (run with -update after intentional changes):\n--- got\n%s--- want\n%s", golden, got, want)
	}
}

// Structural properties that must hold regardless of the golden bytes:
// deterministic repeat output, monotone cumulative buckets ending in the
// exact count, and well-formed shard labels.
func TestWritePrometheusStructure(t *testing.T) {
	s := promTestMetrics().Snapshot()
	var a, b strings.Builder
	if err := WritePrometheus(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition is not deterministic across calls")
	}
	out := a.String()

	for _, want := range []string{
		"# TYPE rwrnlp_protocol_issued counter\n",
		"rwrnlp_protocol_issued 7\n",
		`rwrnlp_shard_acquires{shard="0"} 3` + "\n",
		`rwrnlp_shard_acquires{shard="1"} 4` + "\n",
		"# TYPE rwrnlp_protocol_inflight gauge\n",
		"# TYPE rwrnlp_acq_delay_read histogram\n",
		`rwrnlp_acq_delay_read_bucket{le="+Inf"} 4` + "\n",
		"rwrnlp_acq_delay_read_sum 921\n",
		"rwrnlp_acq_delay_read_count 4\n",
		`rwrnlp_shard_combine_wait_ns_bucket{shard="1",le="+Inf"} 1` + "\n",
		`rwrnlp_shard_combine_wait_ns_count{shard="1"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}

	// Cumulative bucket counts must be non-decreasing within each series
	// and each series must end at its _count.
	var prev int64
	var inBuckets bool
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, "_bucket"):
			var v int64
			if _, err := fmtSscanLast(line, &v); err != nil {
				t.Fatalf("unparsable bucket line %q: %v", line, err)
			}
			if inBuckets && v < prev {
				t.Errorf("cumulative bucket decreased: %q after %d", line, prev)
			}
			prev, inBuckets = v, true
		default:
			inBuckets, prev = false, 0
		}
	}
}

// fmtSscanLast parses the final whitespace-separated field of a line.
func fmtSscanLast(line string, v *int64) (int, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return 0, os.ErrInvalid
	}
	var n int64
	for _, c := range fields[len(fields)-1] {
		if c < '0' || c > '9' {
			return 0, os.ErrInvalid
		}
		n = n*10 + int64(c-'0')
	}
	*v = n
	return 1, nil
}
