package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Cluster cockpit: fan-out scraping of several nodes' debug surfaces
// (/debug/rnlp/timeseries, /debug/rnlp/attr) merged into one live view. Every
// rnlpd node serves the merged view at /debug/rnlp/cluster, and rnlptop
// -cluster renders it; the scrape itself is plain HTTP against the same
// endpoints rnlptop already uses per node, so any process embedding
// NewDebugMux is scrapeable as a cluster member.

// ClusterNode identifies one node to scrape: Name is its identity in the
// cluster map, URL the base of its debug mux (usually the same string for
// rnlpd, whose node identities are URLs).
type ClusterNode struct {
	Name string
	URL  string
}

// NodeStatus is one node's slice of a cluster report. Unhealthy nodes (scrape
// failed) carry Err and zero data — a cluster report never fails as a whole
// because one node is down; that asymmetry is the point of the view.
type NodeStatus struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Err     string `json:"err,omitempty"`
	// Series is the node's windowed time-series report.
	Series TimeSeriesReport `json:"series"`
	// Top is the node's worst blocking chains (empty when attribution is
	// off or the attr scrape failed — health tracks the timeseries scrape).
	Top []BlockChain `json:"top,omitempty"`
}

// ClusterChain is one blocking chain in the merged cluster top list, tagged
// with the node that recorded it. Chains join across nodes by Chain.Tag: a
// cross-node acquisition carries one trace ID, so its per-node chains share it.
type ClusterChain struct {
	Node  string     `json:"node"`
	Chain BlockChain `json:"chain"`
}

// clusterTopK bounds the merged top-chain list.
const clusterTopK = 10

// ClusterReport is the merged multi-node view. Merge semantics, chosen to
// stay honest without raw per-node samples:
//
//   - Rates and histogram counts/rates sum across healthy nodes (each node's
//     traffic is disjoint — components are placed on exactly one node);
//   - windowed quantiles take the per-node maximum: the cluster's p99 cannot
//     exceed the worst node's p99 by more than the mix effect, so the max is
//     the conservative (pessimistic) cluster tail;
//   - Bound is the worst node's bound utilization (by max of read/write
//     util), named in BoundNode — per-component Theorem 1/2 envelopes do not
//     aggregate across nodes, so the cockpit shows the closest-to-violation
//     node;
//   - Top is the delay-sorted merge of every node's worst blocking chains.
type ClusterReport struct {
	TakenNS  int64        `json:"taken_ns"`
	WindowNS int64        `json:"window_ns"`
	Healthy  int          `json:"healthy"`
	Nodes    []NodeStatus `json:"nodes"`

	Rates     map[string]float64     `json:"rates"`
	Hists     map[string]WindowStats `json:"hists"`
	Bound     BoundUtilization       `json:"bound"`
	BoundNode string                 `json:"bound_node,omitempty"`
	Top       []ClusterChain         `json:"top,omitempty"`
}

// clusterGetJSON fetches one JSON document.
func clusterGetJSON(ctx context.Context, hc *http.Client, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.Unmarshal(body, v)
}

// FetchNodeStatus scrapes one node's timeseries and attribution endpoints.
// Health tracks the timeseries scrape; a failed attr scrape only loses the
// node's top chains. A nil hc uses http.DefaultClient — pass a client with a
// timeout for production scrapes.
func FetchNodeStatus(ctx context.Context, hc *http.Client, node ClusterNode, window time.Duration) NodeStatus {
	if hc == nil {
		hc = http.DefaultClient
	}
	st := NodeStatus{Name: node.Name}
	if err := clusterGetJSON(ctx, hc, node.URL+"/debug/rnlp/timeseries?window="+window.String(), &st.Series); err != nil {
		st.Err = err.Error()
		return st
	}
	st.Healthy = true
	var attr AttributionReport
	if err := clusterGetJSON(ctx, hc, node.URL+"/debug/rnlp/attr", &attr); err == nil {
		st.Top = attr.Top
	}
	return st
}

// ScrapeCluster fan-out-scrapes every node in parallel and merges the
// results. It blocks until every scrape returns or ctx ends (bound the wait
// with a context deadline or an hc timeout); no goroutines outlive the call.
func ScrapeCluster(ctx context.Context, hc *http.Client, nodes []ClusterNode, window time.Duration) ClusterReport {
	statuses := make([]NodeStatus, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n ClusterNode) {
			defer wg.Done()
			statuses[i] = FetchNodeStatus(ctx, hc, n, window)
		}(i, n)
	}
	wg.Wait()
	return MergeCluster(statuses)
}

// MergeCluster merges per-node statuses into one report (see ClusterReport
// for the semantics). Callers with an in-process node — rnlpd merging itself
// with scraped peers — build that NodeStatus locally and pass it here.
func MergeCluster(statuses []NodeStatus) ClusterReport {
	rep := ClusterReport{
		Nodes: statuses,
		Rates: map[string]float64{},
		Hists: map[string]WindowStats{},
	}
	worst := -1.0
	for _, st := range statuses {
		if !st.Healthy {
			continue
		}
		rep.Healthy++
		if st.Series.NowNS > rep.TakenNS {
			rep.TakenNS = st.Series.NowNS
		}
		if st.Series.WindowNS > rep.WindowNS {
			rep.WindowNS = st.Series.WindowNS
		}
		for k, v := range st.Series.Rates {
			rep.Rates[k] += v
		}
		for k, ws := range st.Series.Hists {
			m := rep.Hists[k]
			m.Count += ws.Count
			m.Rate += ws.Rate
			m.P50 = maxI64(m.P50, ws.P50)
			m.P90 = maxI64(m.P90, ws.P90)
			m.P99 = maxI64(m.P99, ws.P99)
			m.P999 = maxI64(m.P999, ws.P999)
			m.Max = maxI64(m.Max, ws.Max)
			rep.Hists[k] = m
		}
		u := st.Series.Bound.ReadUtil
		if st.Series.Bound.WriteUtil > u {
			u = st.Series.Bound.WriteUtil
		}
		if u > worst {
			worst = u
			rep.Bound = st.Series.Bound
			rep.BoundNode = st.Name
		}
		for _, c := range st.Top {
			rep.Top = append(rep.Top, ClusterChain{Node: st.Name, Chain: c})
		}
	}
	sort.SliceStable(rep.Top, func(i, j int) bool { return rep.Top[i].Chain.Delay > rep.Top[j].Chain.Delay })
	if len(rep.Top) > clusterTopK {
		rep.Top = rep.Top[:clusterTopK]
	}
	return rep
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
