package obs

import (
	"strings"
	"testing"

	"github.com/rtsync/rwrnlp/internal/analysis"
	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/sim"
	"github.com/rtsync/rwrnlp/internal/workload"
)

func TestBoundMonitorAnalyticViolation(t *testing.T) {
	bm := NewBoundMonitor(4)
	bm.SetAnalytic(10, 10) // read bound 20, write bound 60

	// Read satisfied within bound.
	bm.Observe(ev(0, core.EvIssued, 1, core.KindRead))
	bm.Observe(ev(20, core.EvSatisfied, 1, core.KindRead))
	// Read satisfied beyond bound: delay 21 > 20.
	bm.Observe(ev(0, core.EvIssued, 2, core.KindRead))
	bm.Observe(ev(21, core.EvSatisfied, 2, core.KindRead))
	// Write within bound: delay 60.
	bm.Observe(ev(0, core.EvIssued, 3, core.KindWrite))
	bm.Observe(ev(60, core.EvSatisfied, 3, core.KindWrite))

	rep := bm.Report()
	if rep.Checked != 3 {
		t.Errorf("Checked = %d, want 3", rep.Checked)
	}
	if len(rep.Violations) != 1 || rep.Violations[0].Req != 2 {
		t.Fatalf("Violations = %v, want exactly req 2", rep.Violations)
	}
	if rep.Ok() {
		t.Error("Ok() = true with a violation present")
	}
	if !strings.Contains(rep.String(), "VIOLATION") {
		t.Errorf("report text lacks VIOLATION:\n%s", rep.String())
	}
}

// TestBoundMonitorObservedEnvelope verifies the candidate/re-filter logic:
// a delay that exceeds the envelope known at satisfaction time but not the
// final envelope must not be reported.
func TestBoundMonitorObservedEnvelope(t *testing.T) {
	bm := NewBoundMonitor(2)

	// Req 1 (write): satisfied immediately, CS of 50 → obsLw=50 afterwards.
	bm.Observe(ev(0, core.EvIssued, 1, core.KindWrite))
	bm.Observe(ev(0, core.EvSatisfied, 1, core.KindWrite))
	// Req 2 (read): issued t=10, satisfied t=40 — delay 30 exceeds the
	// current envelope (obsLr=obsLw=0 → bound 0) and becomes a candidate.
	bm.Observe(ev(10, core.EvIssued, 2, core.KindRead))
	bm.Observe(ev(40, core.EvSatisfied, 2, core.KindRead))
	// Req 1 completes at t=50: CS length 50, envelope grows to cover req 2.
	bm.Observe(ev(50, core.EvCompleted, 1, core.KindWrite))
	bm.Observe(ev(60, core.EvCompleted, 2, core.KindRead))

	rep := bm.Report()
	if rep.Checked != 2 {
		t.Errorf("Checked = %d, want 2", rep.Checked)
	}
	if rep.Lw != 50 {
		t.Errorf("observed Lw = %d, want 50", rep.Lw)
	}
	if !rep.Ok() {
		t.Errorf("delay 30 within final envelope (bound %d) still reported: %v",
			rep.Lr+rep.Lw, rep.Violations)
	}
}

func TestBoundMonitorObservedEnvelopeRealViolation(t *testing.T) {
	bm := NewBoundMonitor(2)
	// One short write CS (10), then a read that waits 100 — far beyond any
	// envelope the stream can justify.
	bm.Observe(ev(0, core.EvIssued, 1, core.KindWrite))
	bm.Observe(ev(0, core.EvSatisfied, 1, core.KindWrite))
	bm.Observe(ev(10, core.EvCompleted, 1, core.KindWrite))
	bm.Observe(ev(10, core.EvIssued, 2, core.KindRead))
	bm.Observe(ev(110, core.EvSatisfied, 2, core.KindRead))
	bm.Observe(ev(111, core.EvCompleted, 2, core.KindRead))

	rep := bm.Report()
	if len(rep.Violations) != 1 || rep.Violations[0].Req != 2 {
		t.Fatalf("Violations = %v, want exactly req 2", rep.Violations)
	}
	if rep.Violations[0].Bound != rep.Lr+rep.Lw {
		t.Errorf("violation bound = %d, want final read bound %d",
			rep.Violations[0].Bound, rep.Lr+rep.Lw)
	}
}

// TestBoundMonitorUpgradePair: the write half's wait restarts at
// EvReadSegmentDone, so only the post-restart delay is checked.
func TestBoundMonitorUpgradePair(t *testing.T) {
	bm := NewBoundMonitor(2)
	bm.SetAnalytic(10, 10) // write bound (2−1)·20 = 20

	rd := ev(0, core.EvIssued, 1, core.KindRead)
	rd.Pair = 2
	wr := ev(0, core.EvIssued, 2, core.KindWrite)
	wr.Pair = 1
	bm.Observe(rd)
	bm.Observe(wr)
	sat := ev(0, core.EvSatisfied, 1, core.KindRead)
	sat.Pair = 2
	bm.Observe(sat)
	done := ev(50, core.EvReadSegmentDone, 1, core.KindRead)
	done.Pair = 2
	bm.Observe(done)
	// Write half satisfied at t=65: per-wait delay 15 ≤ 20 even though the
	// pair has been in the system for 65.
	wsat := ev(65, core.EvSatisfied, 2, core.KindWrite)
	wsat.Pair = 1
	bm.Observe(wsat)

	if rep := bm.Report(); !rep.Ok() {
		t.Errorf("write half flagged despite per-wait delay within bound: %v", rep.Violations)
	}
}

func TestBoundMonitorSkipsIncremental(t *testing.T) {
	bm := NewBoundMonitor(2)
	bm.SetAnalytic(1, 1)
	e := ev(0, core.EvIssued, 1, core.KindWrite)
	e.Incremental = true
	bm.Observe(e)
	sat := ev(1000, core.EvSatisfied, 1, core.KindWrite)
	sat.Incremental = true
	bm.Observe(sat)

	rep := bm.Report()
	if rep.Checked != 0 || rep.SkippedIncremental != 1 {
		t.Errorf("checked/skipped = %d/%d, want 0/1", rep.Checked, rep.SkippedIncremental)
	}
	if !rep.Ok() {
		t.Errorf("incremental request flagged: %v", rep.Violations)
	}
}

// TestBoundMonitorFig2 runs the paper's running example through the
// simulator with both monitor modes attached: Theorems 1–2 must hold.
func TestBoundMonitorFig2(t *testing.T) {
	sys := workload.Fig2System()
	analytic := NewBoundMonitor(sys.M)
	b := analysis.BoundsOf(sys)
	analytic.SetAnalytic(int64(b.Lr), int64(b.Lw))
	observed := NewBoundMonitor(sys.M)

	s, err := sim.New(sim.Config{
		System: sys, Policy: sched.EDF, Progress: sim.SpinNP,
		Protocol: sim.ProtoRWRNLP, Horizon: 12, JobsPerTask: 1,
		CheckInvariants: true,
		Observers:       []core.Observer{analytic, observed},
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	arep := analytic.Report()
	if arep.Checked == 0 {
		t.Fatal("analytic monitor checked nothing")
	}
	if !arep.Ok() {
		t.Errorf("Fig. 2 violates the analytic bounds:\n%s", arep)
	}
	orep := observed.Report()
	if !orep.Ok() {
		t.Errorf("Fig. 2 violates the observed-envelope bounds:\n%s", orep)
	}
	if orep.Lr == 0 && orep.Lw == 0 {
		t.Error("observed envelope stayed empty")
	}
}
