package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// omTestMetrics is promTestMetrics with a deterministic registry clock (so
// _created values are stable) and exemplar-tagged tail samples.
func omTestMetrics() *Metrics {
	m := NewMetrics()
	var tick int64 = 1700000000_000000000
	m.SetClock(func() int64 { tick += 250_000_000; return tick })
	m.Counter(MIssued).Add(7)
	m.Counter(ShardMetric(MShardAcquires, 0)).Add(3)
	m.Counter(ShardMetric(MShardAcquires, 1)).Add(4)
	m.Gauge(MInflight).Set(2)
	h := m.Histogram(MAcqDelayRead)
	for _, v := range []int64{1, 3, 17} {
		h.Observe(v)
	}
	h.ObserveTagged(900, 41, 1337) // tail sample with a flight-seq exemplar
	sh := m.Histogram(ShardMetric(MShardCombineWaitNS, 1))
	sh.Observe(64)
	return m
}

// Golden test for the OpenMetrics 1.0.0 exposition. Regenerate with
// go test ./internal/obs -run OpenMetricsGolden -update.
func TestWriteOpenMetricsGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteOpenMetrics(&b, omTestMetrics().Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	golden := filepath.Join("testdata", "openmetrics.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from %s (run with -update after intentional changes):\n--- got\n%s--- want\n%s", golden, got, want)
	}
}

// OpenMetrics structural requirements: _total counters, _created series for
// counters and histograms, exemplar syntax on the tail bucket, exactly one
// trailing # EOF, and determinism across calls.
func TestWriteOpenMetricsStructure(t *testing.T) {
	s := omTestMetrics().Snapshot()
	var a, b strings.Builder
	if err := WriteOpenMetrics(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteOpenMetrics(&b, s); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition is not deterministic across calls")
	}
	out := a.String()

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF:\n%s", out)
	}
	if n := strings.Count(out, "# EOF"); n != 1 {
		t.Errorf("# EOF appears %d times, want 1", n)
	}
	for _, want := range []string{
		"# TYPE rwrnlp_protocol_issued counter\n",
		"rwrnlp_protocol_issued_total 7\n",
		"rwrnlp_protocol_issued_created ",
		`rwrnlp_shard_acquires_total{shard="0"} 3` + "\n",
		"# TYPE rwrnlp_protocol_inflight gauge\n",
		"rwrnlp_protocol_inflight 2\n",
		"# TYPE rwrnlp_acq_delay_read histogram\n",
		"rwrnlp_acq_delay_read_created ",
		"rwrnlp_acq_delay_read_sum 921\n",
		"rwrnlp_acq_delay_read_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Gauges must NOT get _total/_created.
	for _, bad := range []string{"rwrnlp_protocol_inflight_total", "rwrnlp_protocol_inflight_created"} {
		if strings.Contains(out, bad) {
			t.Errorf("exposition wrongly contains %q", bad)
		}
	}
	// The 900-valued tail sample must carry its exemplar on the bucket that
	// covers it, in OpenMetrics syntax.
	exRe := regexp.MustCompile(`rwrnlp_acq_delay_read_bucket\{le="\d+"\} \d+ # \{req="41",flight_seq="1337"\} 900\n`)
	if !exRe.MatchString(out) {
		t.Errorf("tail bucket exemplar missing or malformed:\n%s", out)
	}
	if n := strings.Count(out, `req="41"`); n != 1 {
		t.Errorf("exemplar emitted %d times, want exactly once", n)
	}
}
