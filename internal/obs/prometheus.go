package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (format 0.0.4) for the metrics registry, so the
// runtime lock can be scraped by a stock Prometheus/VictoriaMetrics agent
// without adding a client-library dependency.
//
// Mapping:
//
//   - every metric is prefixed "rwrnlp_" and sanitized to the Prometheus
//     name charset;
//   - the registry's shard-labeled names ("shard_acquires{shard=3}") become
//     proper labels: rwrnlp_shard_acquires{shard="3"};
//   - counters and gauges map 1:1;
//   - histograms expose cumulative _bucket series over the registry's log2
//     bucket bounds (only non-empty buckets are materialized, plus +Inf),
//     with _sum and _count.

// PrometheusContentType is the Content-Type of the 0.0.4 text format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName splits a registry name into a sanitized Prometheus metric name
// and a label string ("" or `{shard="3"}`).
func promName(name string) (metric, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		raw := strings.TrimSuffix(name[i+1:], "}")
		name = name[:i]
		if k, v, ok := strings.Cut(raw, "="); ok {
			labels = fmt.Sprintf("{%s=%q}", sanitizePromName(k), v)
		}
	}
	return "rwrnlp_" + sanitizePromName(name), labels
}

func sanitizePromName(s string) string {
	var b strings.Builder
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promSeries groups all labeled series of one Prometheus metric so the
// # TYPE header is emitted once per metric.
type promSeries struct {
	metric string
	kind   string // "counter" | "gauge" | "histogram"
	lines  []string
}

// WritePrometheus renders the snapshot in Prometheus text format 0.0.4.
// Output is deterministic: metrics and their labeled series are sorted.
func WritePrometheus(w io.Writer, s Snapshot) error {
	byMetric := map[string]*promSeries{}
	add := func(metric, kind, line string) {
		ps := byMetric[metric]
		if ps == nil {
			ps = &promSeries{metric: metric, kind: kind}
			byMetric[metric] = ps
		}
		ps.lines = append(ps.lines, line)
	}
	var counterNames, gaugeNames, histNames []string
	for n := range s.Counters {
		counterNames = append(counterNames, n)
	}
	for n := range s.Gauges {
		gaugeNames = append(gaugeNames, n)
	}
	for n := range s.Hists {
		histNames = append(histNames, n)
	}
	sort.Strings(counterNames)
	sort.Strings(gaugeNames)
	sort.Strings(histNames)

	for _, name := range counterNames {
		metric, labels := promName(name)
		add(metric, "counter", fmt.Sprintf("%s%s %d", metric, labels, s.Counters[name]))
	}
	for _, name := range gaugeNames {
		metric, labels := promName(name)
		add(metric, "gauge", fmt.Sprintf("%s%s %d", metric, labels, s.Gauges[name]))
	}
	for _, name := range histNames {
		h := s.Hists[name]
		metric, labels := promName(name)
		// Merge the shard label (if any) with the le label.
		le := func(bound string) string {
			if labels == "" {
				return fmt.Sprintf("{le=%q}", bound)
			}
			return strings.TrimSuffix(labels, "}") + fmt.Sprintf(",le=%q}", bound)
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.N
			add(metric, "histogram",
				fmt.Sprintf("%s_bucket%s %d", metric, le(fmt.Sprint(b.Le)), cum))
		}
		add(metric, "histogram", fmt.Sprintf("%s_bucket%s %d", metric, le("+Inf"), h.Count))
		add(metric, "histogram", fmt.Sprintf("%s_sum%s %d", metric, labels, h.Sum))
		add(metric, "histogram", fmt.Sprintf("%s_count%s %d", metric, labels, h.Count))
	}

	metrics := make([]string, 0, len(byMetric))
	for m := range byMetric {
		metrics = append(metrics, m)
	}
	sort.Strings(metrics)
	for _, m := range metrics {
		ps := byMetric[m]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", ps.metric, ps.kind); err != nil {
			return err
		}
		// Lines keep insertion order: sorted registry names, and within one
		// histogram series the cumulative buckets in increasing le order.
		for _, line := range ps.lines {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
