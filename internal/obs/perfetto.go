package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sim"
)

// TraceBuilder renders protocol event streams (core.Event) and simulator
// schedules (sim.SchedSlice) as Chrome trace-event JSON, loadable in
// ui.perfetto.dev or chrome://tracing.
//
// Track layout:
//
//   - pid 1 "resources": per-resource writer occupancy as complete ("X")
//     slices — sound nesting because write locks are mutually exclusive —
//     plus a per-resource reader-count counter ("C") track, since readers
//     overlap and cannot be drawn as slices.
//   - pid 2 "requests": one thread per request showing its wait slice
//     (issue→satisfy) and critical-section slice (satisfy→release), with
//     flow arrows ("s"/"t"/"f") threading issue→satisfy→release. Instants
//     mark entitlement, incremental grants, and placeholder removal.
//   - pid 3 "cpus": one thread per (cluster, CPU) with compute/cs/spin
//     slices from the recorded schedule.
//
// Output is deterministic for a deterministic input stream: events are
// appended in input order, metadata is sorted, and JSON map keys are
// marshaled sorted.
type TraceBuilder struct {
	// TimeDiv converts input time units to microseconds (the trace-event
	// "ts" unit). The default 1000 treats inputs as nanoseconds; use 1 to
	// render logical ticks 1:1 as microseconds.
	TimeDiv int64
	// MaxRequestTracks caps the number of per-request threads on the
	// requests process; requests beyond the cap keep their resource-track
	// contributions but get no lifecycle track. DroppedRequests reports how
	// many were capped — the cap is never silent.
	MaxRequestTracks int

	events  []traceEvent
	reqMeta map[int64]string // tid → thread name (pid 2)
	resSeen map[int64]bool   // tid ← resource (pid 1)
	cpuMeta map[int64]string // tid → thread name (pid 3)

	open    map[core.ReqID]*openReq
	readers map[core.ResourceID]int
	tracked map[core.ReqID]bool
	dropped int
	maxT    core.Time
}

// openReq is a request with an unclosed wait or CS slice.
type openReq struct {
	kind        core.Kind
	incremental bool
	issueT      core.Time
	satisfyT    core.Time
	satisfied   bool
	write       core.ResourceSet
	read        core.ResourceSet
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	ID   int64          `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	pidResources = 1
	pidRequests  = 2
	pidCPUs      = 3
)

// NewTraceBuilder creates a builder with nanosecond inputs and a 256-request
// track cap.
func NewTraceBuilder() *TraceBuilder {
	return &TraceBuilder{
		TimeDiv:          1000,
		MaxRequestTracks: 256,
		reqMeta:          map[int64]string{},
		resSeen:          map[int64]bool{},
		cpuMeta:          map[int64]string{},
		open:             map[core.ReqID]*openReq{},
		readers:          map[core.ResourceID]int{},
		tracked:          map[core.ReqID]bool{},
	}
}

// DroppedRequests reports how many requests exceeded MaxRequestTracks and
// were rendered without a lifecycle track.
func (tb *TraceBuilder) DroppedRequests() int { return tb.dropped }

func (tb *TraceBuilder) ts(t core.Time) float64 {
	div := tb.TimeDiv
	if div <= 0 {
		div = 1
	}
	return float64(t) / float64(div)
}

func (tb *TraceBuilder) dur(from, to core.Time) *float64 {
	d := tb.ts(to) - tb.ts(from)
	return &d
}

func (tb *TraceBuilder) track(r core.ReqID) bool {
	if tb.tracked[r] {
		return true
	}
	if len(tb.tracked) >= tb.MaxRequestTracks {
		return false
	}
	tb.tracked[r] = true
	return true
}

// flow emits one leg of the issue→satisfy→release flow arrow for request r.
func (tb *TraceBuilder) flow(t core.Time, r core.ReqID, ph string) {
	ev := traceEvent{
		Name: "req-flow", Ph: ph, Ts: tb.ts(t),
		Pid: pidRequests, Tid: int64(r), Cat: "protocol", ID: int64(r),
	}
	if ph != "s" {
		ev.BP = "e"
	}
	tb.events = append(tb.events, ev)
}

func (tb *TraceBuilder) instant(t core.Time, r core.ReqID, name string, args map[string]any) {
	tb.events = append(tb.events, traceEvent{
		Name: name, Ph: "i", Ts: tb.ts(t),
		Pid: pidRequests, Tid: int64(r), Cat: "protocol", S: "t", Args: args,
	})
}

// readerCount emits the per-resource reader-count counter sample.
func (tb *TraceBuilder) readerCount(t core.Time, res core.ResourceID) {
	tb.events = append(tb.events, traceEvent{
		Name: fmt.Sprintf("readers r%d", res), Ph: "C", Ts: tb.ts(t),
		Pid: pidResources, Tid: 0, Cat: "resource",
		Args: map[string]any{"count": tb.readers[res]},
	})
}

// AddEvents renders a protocol event stream. Events must be in
// non-decreasing time order (as emitted by the RSM) and may be added in
// several batches.
func (tb *TraceBuilder) AddEvents(events []core.Event) {
	for _, e := range events {
		tb.addEvent(e)
	}
}

// Observe implements core.Observer, so a builder can be attached as a live
// event sink (it is not safe for concurrent use; both planes deliver events
// serially).
func (tb *TraceBuilder) Observe(e core.Event) { tb.addEvent(e) }

func (tb *TraceBuilder) addEvent(e core.Event) {
	if e.T > tb.maxT {
		tb.maxT = e.T
	}
	switch e.Type {
	case core.EvIssued:
		o := &openReq{
			kind:        e.Kind,
			incremental: e.Incremental,
			issueT:      e.T,
			write:       e.Write,
			read:        e.Read,
		}
		tb.open[e.Req] = o
		if tb.track(e.Req) {
			tb.reqMeta[int64(e.Req)] = reqThreadName(e)
			tb.flow(e.T, e.Req, "s")
		} else {
			tb.dropped++
		}

	case core.EvEntitled:
		if tb.tracked[e.Req] {
			tb.instant(e.T, e.Req, "entitled", nil)
		}

	case core.EvSatisfied:
		o := tb.open[e.Req]
		if o == nil {
			return
		}
		if tb.tracked[e.Req] {
			tb.closeWait(e.Req, o, e.T, "wait")
			tb.flow(e.T, e.Req, "t")
		}
		o.satisfied = true
		o.satisfyT = e.T
		o.read.ForEach(func(res core.ResourceID) bool {
			tb.resSeen[int64(res)] = true
			tb.readers[res]++
			tb.readerCount(e.T, res)
			return true
		})

	case core.EvGranted:
		if tb.tracked[e.Req] {
			tb.instant(e.T, e.Req, "granted", map[string]any{"resources": e.Resources.String()})
		}

	case core.EvCompleted, core.EvReadSegmentDone:
		o := tb.open[e.Req]
		if o == nil {
			return
		}
		delete(tb.open, e.Req)
		if !o.satisfied {
			return
		}
		name := "cs"
		if e.Type == core.EvReadSegmentDone {
			name = "cs (read segment)"
		}
		if tb.tracked[e.Req] {
			tb.events = append(tb.events, traceEvent{
				Name: name, Ph: "X", Ts: tb.ts(o.satisfyT), Dur: tb.dur(o.satisfyT, e.T),
				Pid: pidRequests, Tid: int64(e.Req), Cat: "protocol",
			})
			tb.flow(e.T, e.Req, "f")
		}
		o.write.ForEach(func(res core.ResourceID) bool {
			tb.resSeen[int64(res)] = true
			tb.events = append(tb.events, traceEvent{
				Name: fmt.Sprintf("W req %d", e.Req), Ph: "X",
				Ts: tb.ts(o.satisfyT), Dur: tb.dur(o.satisfyT, e.T),
				Pid: pidResources, Tid: int64(res), Cat: "resource",
			})
			return true
		})
		o.read.ForEach(func(res core.ResourceID) bool {
			tb.readers[res]--
			tb.readerCount(e.T, res)
			return true
		})

	case core.EvCanceled:
		o := tb.open[e.Req]
		delete(tb.open, e.Req)
		if o != nil && !o.satisfied && tb.tracked[e.Req] {
			tb.closeWait(e.Req, o, e.T, "wait (canceled)")
		}

	case core.EvPlaceholdersRemoved:
		if tb.tracked[e.Req] {
			tb.instant(e.T, e.Req, "placeholders-removed",
				map[string]any{"resources": e.Resources.String()})
		}
	}
}

func (tb *TraceBuilder) closeWait(r core.ReqID, o *openReq, t core.Time, name string) {
	if o.incremental {
		name += " (incremental)"
	}
	tb.events = append(tb.events, traceEvent{
		Name: name, Ph: "X", Ts: tb.ts(o.issueT), Dur: tb.dur(o.issueT, t),
		Pid: pidRequests, Tid: int64(r), Cat: "protocol",
	})
}

func reqThreadName(e core.Event) string {
	name := fmt.Sprintf("req %d (%s)", e.Req, e.Kind)
	if e.Pair != 0 {
		name += " [upgrade]"
	}
	if e.Tag != nil {
		name += fmt.Sprintf(" %v", e.Tag)
	}
	return name
}

// AddSchedule renders simulator Gantt slices as CPU occupancy tracks.
func (tb *TraceBuilder) AddSchedule(slices []sim.SchedSlice) {
	for _, sl := range slices {
		tid := int64(sl.Cluster)*256 + int64(sl.CPU)
		tb.cpuMeta[tid] = fmt.Sprintf("c%d/cpu%d", sl.Cluster, sl.CPU)
		from, to := core.Time(sl.From), core.Time(sl.To)
		if to > tb.maxT {
			tb.maxT = to
		}
		tb.events = append(tb.events, traceEvent{
			Name: fmt.Sprintf("T%d/J%d %s", sl.Task, sl.Job, sl.State),
			Ph:   "X", Ts: tb.ts(from), Dur: tb.dur(from, to),
			Pid: pidCPUs, Tid: tid, Cat: "sched",
			Args: map[string]any{"task": sl.Task, "job": sl.Job, "state": sl.State.String()},
		})
	}
}

// WriteTo finalizes the trace — closing still-open wait/CS slices at the
// latest observed time, marked "(open)" — and writes the JSON document.
// The builder should not be reused afterwards.
func (tb *TraceBuilder) WriteTo(w io.Writer) (int64, error) {
	ids := make([]int64, 0, len(tb.open))
	for id := range tb.open {
		ids = append(ids, int64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := core.ReqID(id)
		o := tb.open[r]
		if !tb.tracked[r] {
			continue
		}
		if o.satisfied {
			tb.events = append(tb.events, traceEvent{
				Name: "cs (open)", Ph: "X", Ts: tb.ts(o.satisfyT), Dur: tb.dur(o.satisfyT, tb.maxT),
				Pid: pidRequests, Tid: id, Cat: "protocol",
			})
		} else {
			tb.closeWait(r, o, tb.maxT, "wait (open)")
		}
	}

	all := tb.metadata()
	all = append(all, tb.events...)
	doc := struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []traceEvent `json:"traceEvents"`
	}{"ns", all}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return 0, err
	}
	buf = append(buf, '\n')
	n, err := w.Write(buf)
	return int64(n), err
}

// metadata emits process/thread naming events, sorted for determinism.
func (tb *TraceBuilder) metadata() []traceEvent {
	var md []traceEvent
	proc := func(pid int, name string) {
		md = append(md, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	thread := func(pid int, tid int64, name string) {
		md = append(md, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	if len(tb.resSeen) > 0 || len(tb.reqMeta) > 0 {
		proc(pidResources, "resources")
	}
	resIDs := make([]int64, 0, len(tb.resSeen))
	for id := range tb.resSeen {
		resIDs = append(resIDs, id)
	}
	sort.Slice(resIDs, func(i, j int) bool { return resIDs[i] < resIDs[j] })
	for _, id := range resIDs {
		thread(pidResources, id, fmt.Sprintf("resource %d (writers)", id))
	}
	if len(tb.reqMeta) > 0 {
		proc(pidRequests, "requests")
	}
	reqIDs := make([]int64, 0, len(tb.reqMeta))
	for id := range tb.reqMeta {
		reqIDs = append(reqIDs, id)
	}
	sort.Slice(reqIDs, func(i, j int) bool { return reqIDs[i] < reqIDs[j] })
	for _, id := range reqIDs {
		thread(pidRequests, id, tb.reqMeta[id])
	}
	if len(tb.cpuMeta) > 0 {
		proc(pidCPUs, "cpus")
	}
	cpuIDs := make([]int64, 0, len(tb.cpuMeta))
	for id := range tb.cpuMeta {
		cpuIDs = append(cpuIDs, id)
	}
	sort.Slice(cpuIDs, func(i, j int) bool { return cpuIDs[i] < cpuIDs[j] })
	for _, id := range cpuIDs {
		thread(pidCPUs, id, tb.cpuMeta[id])
	}
	return md
}
