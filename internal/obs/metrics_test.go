package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("Counter.Value() = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("Gauge.Value() = %d, want 3", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := newHistogram()
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Stats()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("count/min/max = %d/%d/%d, want 100/1/100", s.Count, s.Min, s.Max)
	}
	if s.Sum != 5050 || s.Mean != 50.5 {
		t.Errorf("sum/mean = %d/%.1f, want 5050/50.5", s.Sum, s.Mean)
	}
	// Quantiles resolve to log-linear bucket upper bounds (≤6.25% error).
	if s.P50 < 50 || s.P50 > 127 {
		t.Errorf("P50 = %d, want within [50, 127]", s.P50)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Errorf("P99 = %d, want within [99, 100] (clamped to max)", s.P99)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := newHistogram()
	h.Observe(0)
	h.Observe(-7) // clamps to 0
	s := h.Stats()
	if s.Count != 2 || s.Min != 0 || s.Max != 0 || s.Sum != 0 {
		t.Errorf("stats = %+v, want two zero samples", s)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := newHistogram()
	s := h.Stats()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 {
		t.Errorf("empty histogram stats = %+v", s)
	}
}

func TestMetricsRegistryAndSnapshot(t *testing.T) {
	m := NewMetrics()
	m.Counter("a").Add(3)
	if m.Counter("a") != m.Counter("a") {
		t.Error("Counter not get-or-create")
	}
	m.Gauge("g").Set(7)
	m.Histogram("h").Observe(42)

	s := m.Snapshot()
	if s.Counters["a"] != 3 || s.Gauges["g"] != 7 || s.Hists["h"].Count != 1 {
		t.Errorf("snapshot = %+v", s)
	}

	text := s.String()
	for _, want := range []string{"a", "g", "h", "max=42"} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot text missing %q:\n%s", want, text)
		}
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestEmptySnapshotString(t *testing.T) {
	if got := NewMetrics().Snapshot().String(); !strings.Contains(got, "no metrics") {
		t.Errorf("empty snapshot = %q", got)
	}
}
