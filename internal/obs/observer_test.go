package obs

import (
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
)

// ev builds a minimal protocol event for observer tests.
func ev(t core.Time, typ core.EventType, req core.ReqID, kind core.Kind) core.Event {
	return core.Event{T: t, Type: typ, Req: req, Kind: kind}
}

func TestProtocolObserverLifecycle(t *testing.T) {
	m := NewMetrics()
	po := NewProtocolObserver(m)

	// Read req 1: issued t=0, entitled t=2, satisfied t=5, completed t=9.
	po.Observe(ev(0, core.EvIssued, 1, core.KindRead))
	po.Observe(ev(2, core.EvEntitled, 1, core.KindRead))
	po.Observe(ev(5, core.EvSatisfied, 1, core.KindRead))
	// Write req 2: issued and satisfied at t=6 (immediate), completed t=8.
	po.Observe(ev(6, core.EvIssued, 2, core.KindWrite))
	po.Observe(ev(6, core.EvSatisfied, 2, core.KindWrite))
	po.Observe(ev(8, core.EvCompleted, 2, core.KindWrite))
	po.Observe(ev(9, core.EvCompleted, 1, core.KindRead))

	s := m.Snapshot()
	if got := s.Counters[MIssued]; got != 2 {
		t.Errorf("%s = %d, want 2", MIssued, got)
	}
	if got := s.Counters[MImmediate]; got != 1 {
		t.Errorf("%s = %d, want 1", MImmediate, got)
	}
	if h := s.Hists[MAcqDelayRead]; h.Count != 1 || h.Max != 5 {
		t.Errorf("%s = %+v, want one sample of 5", MAcqDelayRead, h)
	}
	if h := s.Hists[MAcqDelayWrite]; h.Count != 1 || h.Max != 0 {
		t.Errorf("%s = %+v, want one sample of 0", MAcqDelayWrite, h)
	}
	if h := s.Hists[MEntitlementWait]; h.Count != 1 || h.Max != 3 {
		t.Errorf("%s = %+v, want one sample of 3", MEntitlementWait, h)
	}
	if h := s.Hists[MCSLengthRead]; h.Count != 1 || h.Max != 4 {
		t.Errorf("%s = %+v, want one sample of 4", MCSLengthRead, h)
	}
	if h := s.Hists[MCSLengthWrite]; h.Count != 1 || h.Max != 2 {
		t.Errorf("%s = %+v, want one sample of 2", MCSLengthWrite, h)
	}
	if got := s.Gauges[MInflight]; got != 0 {
		t.Errorf("%s = %d, want 0 after all completions", MInflight, got)
	}
	if got := s.Gauges[MHolders]; got != 0 {
		t.Errorf("%s = %d, want 0 after all completions", MHolders, got)
	}
	if h := s.Hists[MQueueDepth]; h.Count != 2 || h.Max != 2 {
		t.Errorf("%s = %+v, want two samples, max 2", MQueueDepth, h)
	}
}

// TestProtocolObserverUpgradePairReset verifies the Sec. 3.6 accounting: the
// write half's wait restarts when the read segment finishes, so its
// acquisition delay is measured per wait, not from the pair's issue time.
func TestProtocolObserverUpgradePairReset(t *testing.T) {
	m := NewMetrics()
	po := NewProtocolObserver(m)

	pair := func(t_ core.Time, typ core.EventType, req, peer core.ReqID, kind core.Kind) core.Event {
		e := ev(t_, typ, req, kind)
		e.Pair = peer
		return e
	}
	// Pair issued at t=0: read half 10, write half 11.
	po.Observe(pair(0, core.EvIssued, 10, 11, core.KindRead))
	po.Observe(pair(0, core.EvIssued, 11, 10, core.KindWrite))
	// Read half satisfied immediately; read segment runs until t=20.
	po.Observe(pair(0, core.EvSatisfied, 10, 11, core.KindRead))
	po.Observe(pair(20, core.EvReadSegmentDone, 10, 11, core.KindRead))
	// Write half satisfied at t=23: delay must be 3 (from t=20), not 23.
	po.Observe(pair(23, core.EvSatisfied, 11, 10, core.KindWrite))
	po.Observe(pair(29, core.EvCompleted, 11, 10, core.KindWrite))

	s := m.Snapshot()
	if h := s.Hists[MAcqDelayWrite]; h.Count != 1 || h.Max != 3 {
		t.Errorf("%s = %+v, want one sample of 3 (wait restarts at read-segment end)", MAcqDelayWrite, h)
	}
	if h := s.Hists[MCSLengthRead]; h.Count != 1 || h.Max != 20 {
		t.Errorf("%s = %+v, want read segment of 20", MCSLengthRead, h)
	}
	if got := s.Counters[MReadSegmentsDone]; got != 1 {
		t.Errorf("%s = %d, want 1", MReadSegmentsDone, got)
	}
	if got := s.Gauges[MInflight]; got != 0 {
		t.Errorf("%s = %d, want 0", MInflight, got)
	}
}

// TestProtocolObserverIncremental verifies incremental requests land in
// their own delay histogram (their span includes hold phases).
func TestProtocolObserverIncremental(t *testing.T) {
	m := NewMetrics()
	po := NewProtocolObserver(m)

	e := ev(0, core.EvIssued, 5, core.KindWrite)
	e.Incremental = true
	po.Observe(e)
	po.Observe(ev(4, core.EvGranted, 5, core.KindWrite))
	sat := ev(30, core.EvSatisfied, 5, core.KindWrite)
	sat.Incremental = true
	po.Observe(sat)

	s := m.Snapshot()
	if h := s.Hists[MAcqDelayIncremental]; h.Count != 1 || h.Max != 30 {
		t.Errorf("%s = %+v, want one sample of 30", MAcqDelayIncremental, h)
	}
	if h := s.Hists[MAcqDelayWrite]; h.Count != 0 {
		t.Errorf("%s = %+v, want incremental delay excluded", MAcqDelayWrite, h)
	}
	if got := s.Counters[MIncGrants]; got != 1 {
		t.Errorf("%s = %d, want 1", MIncGrants, got)
	}
}

// TestProtocolObserverLiveRSM runs a real RSM sequence through the observer
// and cross-checks the counters against the RSM's own statistics.
func TestProtocolObserverLiveRSM(t *testing.T) {
	m := NewMetrics()
	po := NewProtocolObserver(m)
	rsm := core.NewRSM(core.NewSpecBuilder(3).Build(), core.Options{})
	rsm.SetObserver(po)

	w, err := rsm.Issue(1, nil, []core.ResourceID{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rsm.Issue(2, []core.ResourceID{0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rsm.Complete(5, w); err != nil {
		t.Fatal(err)
	}
	if err := rsm.Complete(9, r); err != nil {
		t.Fatal(err)
	}

	s := m.Snapshot()
	st := rsm.Stats()
	if got := s.Counters[MIssued]; got != int64(st.Issued) {
		t.Errorf("%s = %d, want %d", MIssued, got, st.Issued)
	}
	if got := s.Counters[MSatisfied]; got != int64(st.Satisfied) {
		t.Errorf("%s = %d, want %d", MSatisfied, got, st.Satisfied)
	}
	if got := s.Counters[MCompleted]; got != int64(st.Completed) {
		t.Errorf("%s = %d, want %d", MCompleted, got, st.Completed)
	}
	// The reader waited behind the writer: 5−2 = 3 ticks.
	if h := s.Hists[MAcqDelayRead]; h.Count != 1 || h.Max != 3 {
		t.Errorf("%s = %+v, want one sample of 3", MAcqDelayRead, h)
	}
}
