package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// tsTestMetrics returns a registry whose snapshot clock advances one second
// per capture, so windows and rates are deterministic.
func tsTestMetrics() *Metrics {
	m := NewMetrics()
	var now int64 = 1700000000_000000000
	m.SetClock(func() int64 { now += int64(time.Second); return now })
	return m
}

func TestTimeSeriesRatesAndWindowedQuantiles(t *testing.T) {
	m := tsTestMetrics()
	ts := NewTimeSeries(m, time.Second, 16)
	c := m.Counter(MIssued)
	h := m.Histogram(MAcqDelayRead)

	// t0: quiet baseline. t1: +10 counts, fast samples. t2: +20 counts, a
	// handful of tail samples (enough to pull rank-p999 past the fast mode).
	ts.Capture()
	c.Add(10)
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	ts.Capture()
	c.Add(20)
	for i := 0; i < 5; i++ {
		h.Observe(100_000)
	}
	ts.Capture()

	// Whole history (2s window): 30 counts over 2s.
	rep := ts.Query(10 * time.Second)
	if rep.Samples != 3 || rep.WindowNS != 2*int64(time.Second) {
		t.Fatalf("samples/window = %d/%d, want 3/2s", rep.Samples, rep.WindowNS)
	}
	if got := rep.Rates[MIssued]; got != 15 {
		t.Errorf("issued rate = %v, want 15/s over the full window", got)
	}
	ws := rep.Hists[MAcqDelayRead]
	if ws.Count != 105 {
		t.Fatalf("windowed count = %d, want 105", ws.Count)
	}
	if ws.P50 != 10 {
		t.Errorf("windowed p50 = %d, want 10 (exact sub-16 bucket)", ws.P50)
	}
	if ws.P999 < 100_000 || float64(ws.P999) > 100_000*(1+HistMaxRelError)+1 {
		t.Errorf("windowed p999 = %d, want ~100000 within %.2f%%", ws.P999, 100*HistMaxRelError)
	}

	// 1s window: only the last capture's movement (20 counts, 1 observation).
	rep = ts.Query(time.Second)
	if got := rep.Rates[MIssued]; got != 20 {
		t.Errorf("issued rate over 1s window = %v, want 20/s", got)
	}
	ws = rep.Hists[MAcqDelayRead]
	if ws.Count != 5 || ws.P50 < 100_000 {
		t.Errorf("1s window stats = %+v, want only the tail samples", ws)
	}
	// The fast samples fell out of the window, so p50 must be the tail value,
	// not 10 — the whole point of windowed quantiles.
	if ws.P50 == 10 {
		t.Error("windowed p50 leaked cumulative history")
	}
}

func TestTimeSeriesEviction(t *testing.T) {
	m := tsTestMetrics()
	ts := NewTimeSeries(m, time.Second, 3)
	for i := 0; i < 5; i++ {
		ts.Capture()
	}
	got := ts.Samples()
	if len(got) != 3 {
		t.Fatalf("retained %d samples, want capacity 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].TakenNS <= got[i-1].TakenNS {
			t.Fatalf("samples out of order after eviction: %d then %d", got[i-1].TakenNS, got[i].TakenNS)
		}
	}
}

func TestTimeSeriesBoundUtilization(t *testing.T) {
	m := tsTestMetrics()
	ts := NewTimeSeries(m, time.Second, 8)
	m.Histogram(MCSLengthRead).Observe(3)  // observed Lr
	m.Histogram(MCSLengthWrite).Observe(5) // observed Lw
	m.Gauge(MInflight).Set(4)              // dynamic m
	ts.Capture()
	m.Histogram(MAcqDelayRead).Observe(6)
	m.Histogram(MAcqDelayWrite).Observe(15)
	ts.Capture()

	b := ts.Query(10 * time.Second).Bound
	if b.Analytic {
		t.Error("bound mode = analytic, want observed")
	}
	if b.Lr != 3 || b.Lw != 5 || b.M != 4 {
		t.Fatalf("Lr/Lw/M = %d/%d/%d, want 3/5/4", b.Lr, b.Lw, b.M)
	}
	if b.ReadBound != 8 || b.WriteBound != 24 {
		t.Fatalf("bounds = %d/%d, want 8 (Lr+Lw) and 24 ((m-1)(Lr+Lw))", b.ReadBound, b.WriteBound)
	}
	if b.ReadP999 != 6 || b.ReadUtil != 6.0/8 {
		t.Errorf("read p999/util = %d/%v, want 6 and 0.75", b.ReadP999, b.ReadUtil)
	}
	if b.WriteP999 != 15 || b.WriteUtil != 15.0/24 {
		t.Errorf("write p999/util = %d/%v, want 15 and 0.625", b.WriteP999, b.WriteUtil)
	}

	// Analytic override: fixed envelope regardless of observed CS lengths.
	ts.SetAnalytic(10, 10, 3)
	b = ts.Query(10 * time.Second).Bound
	if !b.Analytic || b.ReadBound != 20 || b.WriteBound != 40 {
		t.Errorf("analytic bounds = %+v, want Lr+Lw=20, (3-1)*20=40", b)
	}
}

func TestTimeSeriesEmptyAndSingleSample(t *testing.T) {
	m := tsTestMetrics()
	ts := NewTimeSeries(m, time.Second, 4)
	rep := ts.Query(time.Minute)
	if rep.Samples != 0 || len(rep.Rates) != 0 || len(rep.Hists) != 0 {
		t.Errorf("empty ring report = %+v", rep)
	}
	m.Counter(MIssued).Add(5)
	ts.Capture()
	rep = ts.Query(time.Minute)
	if rep.Samples != 1 || rep.WindowNS != 0 {
		t.Fatalf("single-sample report = %+v", rep)
	}
	if got := rep.Rates[MIssued]; got != 0 {
		t.Errorf("rate with zero-width window = %v, want 0", got)
	}
}

func TestTimeSeriesStartStop(t *testing.T) {
	m := NewMetrics()
	m.Counter(MIssued).Inc()
	ts := NewTimeSeries(m, 5*time.Millisecond, 64)
	ts.Start()
	ts.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(ts.Samples()) < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ts.Stop()
	ts.Stop() // idempotent
	n := len(ts.Samples())
	if n < 2 {
		t.Fatalf("capture goroutine produced %d samples, want >= 2", n)
	}
	time.Sleep(20 * time.Millisecond)
	if got := len(ts.Samples()); got != n {
		t.Errorf("samples kept arriving after Stop: %d -> %d", n, got)
	}
}

func TestTimeSeriesHandler(t *testing.T) {
	m := tsTestMetrics()
	ts := NewTimeSeries(m, time.Second, 8)
	m.Counter(MIssued).Add(3)
	m.Histogram(MAcqDelayRead).Observe(42)
	ts.Capture()
	m.Counter(MIssued).Add(3)
	ts.Capture()
	h := TimeSeriesHandler(ts)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/rnlp/timeseries?window=30s", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d", rr.Code)
	}
	var rep TimeSeriesReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatalf("response is not a TimeSeriesReport: %v\n%s", err, rr.Body.String())
	}
	if rep.Samples < 2 || rep.Rates[MIssued] <= 0 {
		t.Errorf("report = %+v, want >=2 samples and a positive issued rate", rep)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/rnlp/timeseries?window=banana", nil))
	if rr.Code != 400 {
		t.Errorf("bad window: status = %d, want 400", rr.Code)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/rnlp/timeseries?raw=1", nil))
	var raw struct {
		Report  TimeSeriesReport `json:"report"`
		Samples []Snapshot       `json:"samples"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &raw); err != nil {
		t.Fatalf("raw response: %v", err)
	}
	if len(raw.Samples) < 2 {
		t.Errorf("raw samples = %d, want >= 2", len(raw.Samples))
	}

	rr = httptest.NewRecorder()
	TimeSeriesHandler(nil).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/rnlp/timeseries", nil))
	if rr.Code != 200 {
		t.Errorf("nil series: status = %d, want 200 with an error body", rr.Code)
	}
}
