package obs

import (
	"sync"
	"time"
)

// DefaultTimeSeriesCapacity bounds the sample ring when no capacity is given:
// at the default 1s interval it retains five minutes of history.
const DefaultTimeSeriesCapacity = 300

// TimeSeries is a bounded in-memory ring of metrics snapshots captured at a
// fixed interval, turning the registry's cumulative instruments into
// queryable history: rates, windowed tail quantiles, and bound utilization
// (observed wait ÷ Theorem 1/2 envelope) over "the last N seconds".
//
// Capture cost is one registry snapshot (off every hot path); memory is
// bounded by capacity × snapshot size. Start launches the capture goroutine;
// Capture may also be called directly for deterministic tests or
// scrape-driven freshness. Query is safe concurrently with capture.
type TimeSeries struct {
	m        *Metrics
	interval time.Duration

	mu       sync.Mutex
	samples  []Snapshot // ring, oldest first, len ≤ capacity
	capacity int
	maxInfl  int64 // max observed protocol_inflight (dynamic m)
	analytic bool
	lr, lw   int64 // analytic envelope; observed cs maxima otherwise
	mProcs   int   // fixed m; ≤ 0 = dynamic from maxInfl

	stop    chan struct{}
	started bool
	wg      sync.WaitGroup
}

// NewTimeSeries creates a time series over m. interval <= 0 defaults to one
// second; capacity <= 0 defaults to DefaultTimeSeriesCapacity samples.
func NewTimeSeries(m *Metrics, interval time.Duration, capacity int) *TimeSeries {
	if interval <= 0 {
		interval = time.Second
	}
	if capacity <= 0 {
		capacity = DefaultTimeSeriesCapacity
	}
	return &TimeSeries{m: m, interval: interval, capacity: capacity}
}

// Interval returns the configured capture interval.
func (ts *TimeSeries) Interval() time.Duration { return ts.interval }

// SetAnalytic switches bound utilization to a fixed a-priori envelope with
// per-kind worst-case CS lengths lr, lw and processor count m (see
// BoundMonitor and Watchdog.SetAnalytic). m <= 0 keeps dynamic m.
func (ts *TimeSeries) SetAnalytic(lr, lw int64, m int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.analytic, ts.lr, ts.lw, ts.mProcs = true, lr, lw, m
}

// Start launches the periodic capture goroutine. It is a no-op if already
// started. Stop it with Stop; an unstopped TimeSeries keeps a goroutine and
// its registry reference alive.
func (ts *TimeSeries) Start() {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.started {
		return
	}
	ts.started = true
	ts.stop = make(chan struct{})
	ts.wg.Add(1)
	go func() {
		defer ts.wg.Done()
		t := time.NewTicker(ts.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				ts.Capture()
			case <-ts.stop:
				return
			}
		}
	}()
}

// Stop terminates the capture goroutine and waits for it. Retained samples
// stay queryable. Safe to call multiple times or without Start.
func (ts *TimeSeries) Stop() {
	ts.mu.Lock()
	if !ts.started {
		ts.mu.Unlock()
		return
	}
	ts.started = false
	close(ts.stop)
	ts.mu.Unlock()
	ts.wg.Wait()
}

// Capture snapshots the registry into the ring now, evicting the oldest
// sample at capacity.
func (ts *TimeSeries) Capture() {
	s := ts.m.Snapshot()
	s.Created = nil // identical in every sample; keep the ring lean
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if infl := s.Gauges[MInflight]; infl > ts.maxInfl {
		ts.maxInfl = infl
	}
	if len(ts.samples) == ts.capacity {
		copy(ts.samples, ts.samples[1:])
		ts.samples[len(ts.samples)-1] = s
		return
	}
	ts.samples = append(ts.samples, s)
}

// ensureFresh captures a sample if the newest one is older than half the
// interval (or the ring is empty), so a scrape-driven query never reads a
// stale ring even when Start was never called.
func (ts *TimeSeries) ensureFresh() {
	ts.mu.Lock()
	n := len(ts.samples)
	var last int64
	if n > 0 {
		last = ts.samples[n-1].TakenNS
	}
	ts.mu.Unlock()
	if n == 0 || time.Duration(time.Now().UnixNano()-last) > ts.interval/2 {
		ts.Capture()
	}
}

// Refresh captures a sample iff the newest one is stale (older than half the
// interval) — the in-process equivalent of a scrape-driven query. Use before
// Query when Start was never called.
func (ts *TimeSeries) Refresh() { ts.ensureFresh() }

// WindowStats summarizes one histogram's movement inside a query window,
// derived from cumulative bucket deltas between the window's edge samples.
// Quantiles carry the histogram's ≤ HistMaxRelError one-sided error.
type WindowStats struct {
	Count int64   `json:"count"`
	Rate  float64 `json:"rate"` // observations per second
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Max   int64   `json:"max"` // upper bound of the highest moved bucket
}

// BoundUtilization relates windowed tail waits to the paper's blocking
// bounds: a reader's acquisition delay is bounded by Lr+Lw (Theorem 1), a
// writer's by (m−1)(Lr+Lw) (Theorem 2). Utilization is the windowed p999
// acquisition delay divided by that envelope — persistently near (or past)
// 1.0 means the deployment is consuming its analytical slack. Units are the
// producing plane's (ticks for the runtime lock, simulated ns in the sim).
type BoundUtilization struct {
	Analytic   bool    `json:"analytic"` // false: Lr/Lw are observed CS maxima
	Lr         int64   `json:"lr"`
	Lw         int64   `json:"lw"`
	M          int     `json:"m"`
	ReadBound  int64   `json:"read_bound"`  // Lr+Lw
	WriteBound int64   `json:"write_bound"` // (m−1)(Lr+Lw)
	ReadP999   int64   `json:"read_p999"`   // windowed acq_delay_read p999
	WriteP999  int64   `json:"write_p999"`  // windowed acq_delay_write p999
	ReadUtil   float64 `json:"read_util"`
	WriteUtil  float64 `json:"write_util"`
}

// TimeSeriesReport is the answer to "what happened over the last N seconds".
type TimeSeriesReport struct {
	NowNS      int64 `json:"now_ns"`
	WindowNS   int64 `json:"window_ns"` // actual span between edge samples
	IntervalNS int64 `json:"interval_ns"`
	Samples    int   `json:"samples"` // samples inside the window
	// Rates maps every counter (shard-labeled names included) to its
	// per-second rate over the window.
	Rates  map[string]float64 `json:"rates"`
	Gauges map[string]int64   `json:"gauges"` // latest values
	// Hists maps every histogram that moved in the window to its windowed
	// delta stats; quiescent histograms are omitted.
	Hists map[string]WindowStats `json:"hists"`
	Bound BoundUtilization       `json:"bound"`
}

// deltaHist reconstructs a HistStats for the samples recorded between old and
// cur from their cumulative bucket counts. Min/Max degrade to the moved
// buckets' bounds (the exact extrema are only tracked cumulatively).
func deltaHist(cur, old HistStats) HistStats {
	prev := make(map[int64]int64, len(old.Buckets))
	for _, b := range old.Buckets {
		prev[b.Le] = b.N
	}
	var d HistStats
	for _, b := range cur.Buckets {
		n := b.N - prev[b.Le]
		if n <= 0 {
			continue
		}
		d.Count += n
		d.Buckets = append(d.Buckets, Bucket{Le: b.Le, N: n})
	}
	if d.Count == 0 {
		return d
	}
	lo, _ := bucketBounds(bucketIndex(d.Buckets[0].Le))
	d.Min = lo
	d.Max = d.Buckets[len(d.Buckets)-1].Le
	return d
}

// Query summarizes the window ending at the newest sample. The window's far
// edge is the newest sample at least `window` older than the head (falling
// back to the oldest retained sample); a ring with fewer than two samples
// yields zero rates. Call Capture (or serve via TimeSeriesHandler, which
// refreshes automatically) before querying if Start was never called.
func (ts *TimeSeries) Query(window time.Duration) TimeSeriesReport {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	rep := TimeSeriesReport{
		IntervalNS: int64(ts.interval),
		Rates:      map[string]float64{},
		Gauges:     map[string]int64{},
		Hists:      map[string]WindowStats{},
	}
	n := len(ts.samples)
	if n == 0 {
		return rep
	}
	head := ts.samples[n-1]
	rep.NowNS = head.TakenNS
	for g, v := range head.Gauges {
		rep.Gauges[g] = v
	}
	base := ts.samples[0]
	rep.Samples = n
	for i := n - 2; i >= 0; i-- {
		if head.TakenNS-ts.samples[i].TakenNS >= int64(window) {
			base = ts.samples[i]
			rep.Samples = n - i
			break
		}
	}
	rep.WindowNS = head.TakenNS - base.TakenNS
	secs := float64(rep.WindowNS) / 1e9
	for c, v := range head.Counters {
		if secs > 0 {
			rep.Rates[c] = float64(v-base.Counters[c]) / secs
		} else {
			rep.Rates[c] = 0
		}
	}
	for name, cur := range head.Hists {
		d := deltaHist(cur, base.Hists[name])
		if d.Count == 0 {
			continue
		}
		ws := WindowStats{
			Count: d.Count,
			P50:   d.Quantile(0.50),
			P90:   d.Quantile(0.90),
			P99:   d.Quantile(0.99),
			P999:  d.Quantile(0.999),
			Max:   d.Max,
		}
		if secs > 0 {
			ws.Rate = float64(d.Count) / secs
		}
		rep.Hists[name] = ws
	}
	rep.Bound = ts.boundLocked(head, rep.Hists)
	return rep
}

// boundLocked computes bound utilization from the head sample and the
// windowed histogram stats. Caller holds ts.mu.
func (ts *TimeSeries) boundLocked(head Snapshot, hists map[string]WindowStats) BoundUtilization {
	b := BoundUtilization{Analytic: ts.analytic, Lr: ts.lr, Lw: ts.lw, M: ts.mProcs}
	if !ts.analytic {
		b.Lr = head.Hists[MCSLengthRead].Max
		b.Lw = head.Hists[MCSLengthWrite].Max
	}
	if b.M <= 0 {
		b.M = int(ts.maxInfl)
	}
	if b.M < 2 {
		b.M = 2 // (m−1) ≥ 1: a solo writer still gets a finite envelope
	}
	b.ReadBound = b.Lr + b.Lw
	b.WriteBound = int64(b.M-1) * (b.Lr + b.Lw)
	b.ReadP999 = hists[MAcqDelayRead].P999
	b.WriteP999 = hists[MAcqDelayWrite].P999
	if b.ReadBound > 0 {
		b.ReadUtil = float64(b.ReadP999) / float64(b.ReadBound)
	}
	if b.WriteBound > 0 {
		b.WriteUtil = float64(b.WriteP999) / float64(b.WriteBound)
	}
	return b
}

// Samples returns a copy of the retained ring, oldest first.
func (ts *TimeSeries) Samples() []Snapshot {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]Snapshot(nil), ts.samples...)
}
