package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry's snapshot: JSON by default (expvar-style),
// plain text with ?format=text. A nil registry serves an empty snapshot.
func Handler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var s Snapshot
		if m != nil {
			s = m.Snapshot()
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(s.String()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
}

// DebugMux builds the debug endpoint for long-running users of the runtime
// lock:
//
//	/metrics        JSON metrics snapshot (?format=text for a plain dump)
//	/bounds         current bound-monitor report, plain text
//	/healthz        "ok"
//
// Either argument may be nil; the corresponding route serves empty data.
func DebugMux(m *Metrics, bm *BoundMonitor) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(m))
	mux.HandleFunc("/bounds", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if bm == nil {
			_, _ = w.Write([]byte("(no bound monitor attached)\n"))
			return
		}
		_, _ = w.Write([]byte(bm.Report().String()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
