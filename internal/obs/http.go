package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry's snapshot: JSON by default (expvar-style),
// plain text with ?format=text, Prometheus text exposition 0.0.4 with
// ?format=prom. A nil registry serves an empty snapshot.
func Handler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var s Snapshot
		if m != nil {
			s = m.Snapshot()
		}
		switch r.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(s.String()))
		case "prom":
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = WritePrometheus(w, s)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(s)
		}
	})
}

// FlightHandler serves the flight recorder's current dump: JSON by default,
// a Perfetto/Chrome trace with ?format=perfetto. A nil recorder serves an
// empty dump.
func FlightHandler(fl *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var d FlightDump
		if fl != nil {
			d = fl.Dump()
		} else {
			d.Version = flightDumpVersion
		}
		if r.URL.Query().Get("format") == "perfetto" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="rnlp-flight.trace.json"`)
			_ = d.WritePerfetto(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = d.WriteJSON(w)
	})
}

// WatchdogHandler serves the stall watchdogs' firing counts and retained
// reports as JSON (flight dumps are elided — fetch /debug/rnlp/flight for
// the live rings).
func WatchdogHandler(wds ...*Watchdog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var out struct {
			Firings int64         `json:"firings"`
			Reports []StallReport `json:"reports"`
		}
		for _, wd := range wds {
			if wd == nil {
				continue
			}
			out.Firings += wd.Firings()
			for _, rep := range wd.Reports() {
				rep.Dump = nil
				rep.GoroutineProfile = nil
				out.Reports = append(out.Reports, rep)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

// DebugMux builds the debug endpoint for long-running users of the runtime
// lock:
//
//	/metrics              metrics snapshot (JSON; ?format=text|prom)
//	/bounds               current bound-monitor report, plain text
//	/debug/rnlp/flight    flight-recorder dump (JSON; ?format=perfetto)
//	/debug/rnlp/watchdog  stall-watchdog firings and reports, JSON
//	/debug/pprof/...      the standard net/http/pprof handlers
//	/healthz              "ok"
//
// Any argument may be nil (or absent); the corresponding route serves empty
// data.
func DebugMux(m *Metrics, bm *BoundMonitor, fl *FlightRecorder, wds ...*Watchdog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(m))
	mux.HandleFunc("/bounds", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if bm == nil {
			_, _ = w.Write([]byte("(no bound monitor attached)\n"))
			return
		}
		_, _ = w.Write([]byte(bm.Report().String()))
	})
	mux.Handle("/debug/rnlp/flight", FlightHandler(fl))
	mux.Handle("/debug/rnlp/watchdog", WatchdogHandler(wds...))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintln(w, "ok")
	})
	return mux
}
