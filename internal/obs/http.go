package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry's snapshot: JSON by default (expvar-style),
// plain text with ?format=text, Prometheus text exposition 0.0.4 with
// ?format=prom, OpenMetrics 1.0.0 (with _created series and exemplars) with
// ?format=openmetrics. A nil registry serves an empty snapshot.
func Handler(m *Metrics) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var s Snapshot
		if m != nil {
			s = m.Snapshot()
		}
		switch r.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(s.String()))
		case "prom":
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = WritePrometheus(w, s)
		case "openmetrics":
			w.Header().Set("Content-Type", OpenMetricsContentType)
			_ = WriteOpenMetrics(w, s)
		default:
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(s)
		}
	})
}

// TimeSeriesHandler serves windowed time-series reports as JSON. The window
// defaults to 60s and is set with ?window=30s (Go duration syntax); ?raw=1
// additionally includes the retained samples. Each request refreshes the ring
// if its head sample is stale, so scrapes see current data even when the
// capture goroutine was never started. A nil series serves an empty report.
func TimeSeriesHandler(ts *TimeSeries) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if ts == nil {
			_ = enc.Encode(struct {
				Error string `json:"error"`
			}{"no time series attached"})
			return
		}
		window := 60 * time.Second
		if q := r.URL.Query().Get("window"); q != "" {
			if d, err := time.ParseDuration(q); err == nil && d > 0 {
				window = d
			} else {
				http.Error(w, "bad window (want a Go duration, e.g. 30s)", http.StatusBadRequest)
				return
			}
		}
		ts.ensureFresh()
		rep := ts.Query(window)
		if r.URL.Query().Get("raw") == "1" {
			_ = enc.Encode(struct {
				Report  TimeSeriesReport `json:"report"`
				Samples []Snapshot       `json:"samples"`
			}{rep, ts.Samples()})
			return
		}
		_ = enc.Encode(rep)
	})
}

// AttributionHandler serves the causal blocking-attribution report as JSON
// (?format=text for the human rendering). report is called per request; a
// nil func serves an empty report.
func AttributionHandler(report func() AttributionReport) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var rep AttributionReport
		if report != nil {
			rep = report()
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(rep.String()))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
}

// FlightHandler serves the flight recorder's current dump: JSON by default,
// a Perfetto/Chrome trace with ?format=perfetto. A nil recorder serves an
// empty dump.
func FlightHandler(fl *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var d FlightDump
		if fl != nil {
			d = fl.Dump()
		} else {
			d.Version = flightDumpVersion
		}
		if r.URL.Query().Get("format") == "perfetto" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="rnlp-flight.trace.json"`)
			_ = d.WritePerfetto(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = d.WriteJSON(w)
	})
}

// WatchdogHandler serves the stall watchdogs' firing counts and retained
// reports as JSON (flight dumps are elided — fetch /debug/rnlp/flight for
// the live rings).
func WatchdogHandler(wds ...*Watchdog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var out struct {
			Firings int64         `json:"firings"`
			Reports []StallReport `json:"reports"`
		}
		for _, wd := range wds {
			if wd == nil {
				continue
			}
			out.Firings += wd.Firings()
			for _, rep := range wd.Reports() {
				rep.Dump = nil
				rep.GoroutineProfile = nil
				out.Reports = append(out.Reports, rep)
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
}

// DebugMuxConfig selects what NewDebugMux serves. Any field may be nil; the
// corresponding route serves empty data.
type DebugMuxConfig struct {
	Metrics *Metrics
	Bounds  *BoundMonitor
	Flight  *FlightRecorder
	Series  *TimeSeries
	// Attribution is called per request to /debug/rnlp/attr.
	Attribution func() AttributionReport
	Watchdogs   []*Watchdog
}

// NewDebugMux builds the debug endpoint for long-running users of the
// runtime lock:
//
//	/metrics                 metrics snapshot (JSON; ?format=text|prom|openmetrics)
//	/bounds                  current bound-monitor report, plain text
//	/debug/rnlp/flight       flight-recorder dump (JSON; ?format=perfetto)
//	/debug/rnlp/watchdog     stall-watchdog firings and reports, JSON
//	/debug/rnlp/timeseries   windowed rates/quantiles/bound-utilization (JSON; ?window=30s&raw=1)
//	/debug/rnlp/attr         causal blocking attribution (JSON; ?format=text)
//	/debug/pprof/...         the standard net/http/pprof handlers
//	/healthz                 "ok"
func NewDebugMux(cfg DebugMuxConfig) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(cfg.Metrics))
	mux.HandleFunc("/bounds", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if cfg.Bounds == nil {
			_, _ = w.Write([]byte("(no bound monitor attached)\n"))
			return
		}
		_, _ = w.Write([]byte(cfg.Bounds.Report().String()))
	})
	mux.Handle("/debug/rnlp/flight", FlightHandler(cfg.Flight))
	mux.Handle("/debug/rnlp/watchdog", WatchdogHandler(cfg.Watchdogs...))
	mux.Handle("/debug/rnlp/timeseries", TimeSeriesHandler(cfg.Series))
	mux.Handle("/debug/rnlp/attr", AttributionHandler(cfg.Attribution))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = fmt.Fprintln(w, "ok")
	})
	return mux
}

// DebugMux is NewDebugMux for the pre-timeseries positional signature.
//
// Deprecated: use NewDebugMux, which also serves /debug/rnlp/timeseries and
// /debug/rnlp/attr. DebugMux will be removed in v3; see the README's
// migration table.
func DebugMux(m *Metrics, bm *BoundMonitor, fl *FlightRecorder, wds ...*Watchdog) *http.ServeMux {
	return NewDebugMux(DebugMuxConfig{Metrics: m, Bounds: bm, Flight: fl, Watchdogs: wds})
}
