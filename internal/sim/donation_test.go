package sim

import (
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// White-box tests of the priority-donation machinery (Sec. 3.8 /
// EMSOFT'11): donation on displacement, donor substitution, donor resume.

// donationScenario builds a 1-CPU (c=1) system where the donation paths are
// fully deterministic.
func donationTask(id int, dl, offset simtime.Time, segs ...taskmodel.Segment) *taskmodel.Task {
	return &taskmodel.Task{
		ID: id, Cluster: 0, Period: 100_000, Deadline: dl, Offset: offset,
		Segments: segs,
	}
}

func compute(d simtime.Time) taskmodel.Segment {
	return taskmodel.Segment{Kind: taskmodel.SegCompute, Duration: d}
}

func writeReq(cs simtime.Time, res ...core.ResourceID) taskmodel.Segment {
	return taskmodel.Segment{Kind: taskmodel.SegRequest, Write: res, Duration: cs}
}

// A low-priority lock holder is displaced by a high-priority release: the
// releasee donates (suspends) and the holder finishes its CS boosted —
// Property P1 in action on one CPU.
func TestDonationBoostsDisplacedHolder(t *testing.T) {
	sb := core.NewSpecBuilder(1)
	sys := &taskmodel.System{
		Spec: sb.Build(), M: 1, ClusterSize: 1,
		Tasks: []*taskmodel.Task{
			// Low priority (late deadline): takes the lock at t=1, CS 10.
			donationTask(0, 50, 0, compute(1), writeReq(10, 0), compute(1)),
			// High priority (tight deadline): released at t=2, pure compute.
			donationTask(1, 10, 2, compute(3)),
		},
	}
	s, err := New(Config{
		System: sys, Policy: sched.EDF, Progress: Donation,
		Protocol: ProtoRWRNLP, Horizon: 1_000, JobsPerTask: 1,
		CheckInvariants: true, RecordSchedule: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// Without donation, T1 (EDF-higher) would preempt T0 mid-CS, violating
	// P1. With donation, T1 suspends as donor until T0's request completes
	// at t=11, then runs [11,14): response 12.
	if got := res.Tasks[1].MaxResp; got != 12 {
		t.Errorf("donor response = %d, want 12 (donated during the CS)", got)
	}
	// T0 runs its CS uninterrupted (P1), but the donation ends WITH the
	// request: the resumed donor (EDF-higher) preempts T0's trailing
	// compute, so T0 finishes at 15 — compute [0,1), CS [1,11), preempted
	// [11,14), compute [14,15).
	if got := res.Tasks[0].MaxResp; got != 15 {
		t.Errorf("holder response = %d, want 15", got)
	}
	// The donor's suspension [2,11) is s-oblivious pi-blocking: 9.
	if got := res.Tasks[1].MaxPiSOb; got != 9 {
		t.Errorf("donor s-oblivious pi-blocking = %d, want 9", got)
	}
}

// Donor substitution: a second, even higher-priority release takes over the
// donation; the first donor resumes and runs.
func TestDonationDonorSubstitution(t *testing.T) {
	sb := core.NewSpecBuilder(1)
	sys := &taskmodel.System{
		Spec: sb.Build(), M: 1, ClusterSize: 1,
		Tasks: []*taskmodel.Task{
			donationTask(0, 90, 0, compute(1), writeReq(20, 0)), // holder, CS [1,21)
			donationTask(1, 40, 2, compute(5)),                  // first donor
			donationTask(2, 30, 4, compute(3)),                  // substitute donor (tighter deadline)
		},
	}
	s, err := New(Config{
		System: sys, Policy: sched.EDF, Progress: Donation,
		Protocol: ProtoRWRNLP, Horizon: 1_000, JobsPerTask: 1,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	// T2 (released t=4, tightest deadline) substitutes as donor for T1:
	// T1 resumes... but the CPU is occupied by the boosted holder T0, so T1
	// stays ready-but-unscheduled until T0's request ends at 21. Then EDF:
	// T2 (dl 34) runs [21,24), T1 (dl 42) runs [24,29).
	if got := res.Tasks[2].MaxResp; got != 20 { // released 4, done 24
		t.Errorf("substitute donor response = %d, want 20", got)
	}
	if got := res.Tasks[1].MaxResp; got != 27 { // released 2, done 29
		t.Errorf("first donor response = %d, want 27", got)
	}
	// All three meet their (generous) deadlines.
	if res.Misses != 0 {
		t.Errorf("misses = %d", res.Misses)
	}
}

// The issue gate: a job outside the top-c pending set must not issue; it
// issues once it rises into the top-c (P2 prerequisite).
func TestDonationIssueGate(t *testing.T) {
	sb := core.NewSpecBuilder(1)
	sys := &taskmodel.System{
		Spec: sb.Build(), M: 1, ClusterSize: 1,
		Tasks: []*taskmodel.Task{
			// Highest priority: computes [0,6) — no resources.
			donationTask(0, 20, 0, compute(6)),
			// Lowest priority: wants the lock at its very release (t=1) but
			// is NOT top-1 pending until T0 finishes at 6.
			donationTask(1, 80, 1, writeReq(2, 0), compute(1)),
		},
	}
	s, err := New(Config{
		System: sys, Policy: sched.EDF, Progress: Donation,
		Protocol: ProtoRWRNLP, Horizon: 1_000, JobsPerTask: 1,
		CheckInvariants: true, RecordRequests: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if len(res.Requests) != 1 {
		t.Fatalf("requests = %d", len(res.Requests))
	}
	// Gated until t=6; then issued and satisfied immediately (uncontended).
	if got := res.Requests[0].Issue; got != 6 {
		t.Errorf("gated request issued at %d, want 6", got)
	}
	if got := res.Requests[0].Acq; got != 0 {
		t.Errorf("acquisition delay = %d, want 0", got)
	}
	// T1: gate wait [1,6) + CS 2 + compute 1 → done at 9.
	if got := res.Tasks[1].MaxResp; got != 8 {
		t.Errorf("gated task response = %d, want 8", got)
	}
}
