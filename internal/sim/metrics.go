package sim

import (
	"github.com/rtsync/rwrnlp/internal/simtime"
)

// ReqRecord describes one completed resource acquisition, the unit of the
// paper's blocking analysis.
type ReqRecord struct {
	Task, Job int
	Write     bool // write or mixed or upgrade-half (writer bound applies)
	Upgrade   bool
	Incr      bool
	Issue     simtime.Time
	Acq       simtime.Time // acquisition delay (cumulative for incremental)
	CS        simtime.Time // critical-section length actually executed
}

// TaskStats aggregates per-task outcomes.
type TaskStats struct {
	Task      int
	Jobs      int
	Misses    int
	MaxResp   simtime.Time
	MaxPiSpin simtime.Time // Def. 1 pi-blocking (spin analysis)
	MaxPiSOb  simtime.Time // Def. 5 s-oblivious pi-blocking
	MaxPiSAw  simtime.Time // Def. 5 s-aware pi-blocking
	MaxSBlock simtime.Time // Def. 2 s-blocking (spin time)
}

// Result is the outcome of one simulation run.
type Result struct {
	Horizon     simtime.Time
	Jobs        int
	Finished    int
	Misses      int
	Tasks       []TaskStats
	Requests    []ReqRecord
	MaxReadAcq  simtime.Time
	MaxWriteAcq simtime.Time
	SumReadAcq  simtime.Time
	SumWriteAcq simtime.Time
	NumReadAcq  int
	NumWriteAcq int

	// CSParallelism is the average number of simultaneously held critical
	// sections while at least one is held — the concurrency the protocol
	// achieves (1.0 = full serialization; the quantity coarse-grained
	// locking destroys). CSUtilization is the fraction of the horizon with
	// at least one CS in progress.
	CSParallelism float64
	CSUtilization float64

	// Schedulability-style maxima across all jobs.
	MaxPiSpin simtime.Time
	MaxPiSOb  simtime.Time
	MaxPiSAw  simtime.Time
	MaxSBlock simtime.Time

	// Invariant violations (must be empty for a correct progress
	// mechanism; E6 asserts this).
	Violations []string

	// Schedule holds per-CPU occupancy slices when Config.RecordSchedule is
	// set; render with RenderGantt.
	Schedule []SchedSlice
}

// MeanReadAcq returns the mean read acquisition delay.
func (r *Result) MeanReadAcq() float64 {
	if r.NumReadAcq == 0 {
		return 0
	}
	return float64(r.SumReadAcq) / float64(r.NumReadAcq)
}

// MeanWriteAcq returns the mean write acquisition delay.
func (r *Result) MeanWriteAcq() float64 {
	if r.NumWriteAcq == 0 {
		return 0
	}
	return float64(r.SumWriteAcq) / float64(r.NumWriteAcq)
}

// recordAcqLight updates the aggregates without retaining a record.
func (r *Result) recordAcqLight(write bool, acq simtime.Time) {
	if write {
		r.NumWriteAcq++
		r.SumWriteAcq += acq
		if acq > r.MaxWriteAcq {
			r.MaxWriteAcq = acq
		}
	} else {
		r.NumReadAcq++
		r.SumReadAcq += acq
		if acq > r.MaxReadAcq {
			r.MaxReadAcq = acq
		}
	}
}

func (r *Result) recordAcq(rec ReqRecord) {
	r.Requests = append(r.Requests, rec)
	if rec.Write {
		r.NumWriteAcq++
		r.SumWriteAcq += rec.Acq
		if rec.Acq > r.MaxWriteAcq {
			r.MaxWriteAcq = rec.Acq
		}
	} else {
		r.NumReadAcq++
		r.SumReadAcq += rec.Acq
		if rec.Acq > r.MaxReadAcq {
			r.MaxReadAcq = rec.Acq
		}
	}
}
