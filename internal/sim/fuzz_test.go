package sim

import (
	"testing"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// FuzzSimEpisode drives the entire stack — task model, clustered scheduler,
// progress mechanism, RSM — from a byte-encoded system description, with
// invariant checks and bound assertions on every run. The seed corpus runs
// as an ordinary test; `go test -fuzz=FuzzSimEpisode ./internal/sim` fuzzes
// continuously.
func FuzzSimEpisode(f *testing.F) {
	f.Add([]byte{2, 1, 0, 10, 5, 1, 0, 20, 8, 2, 1, 30, 3, 0, 2})
	f.Add([]byte{4, 2, 3, 7, 7, 7, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 6 {
			return
		}
		m := int(raw[0])%4 + 1
		c := 1
		if raw[1]%2 == 0 {
			c = m
		}
		q := int(raw[2])%4 + 1
		prog := SpinNP
		if raw[3]%2 == 1 {
			prog = Donation
		}

		sb := core.NewSpecBuilder(q)
		// One declared read group over everything keeps any generated
		// multi-resource read legal.
		var all []core.ResourceID
		for i := 0; i < q; i++ {
			all = append(all, core.ResourceID(i))
		}
		if err := sb.DeclareReadGroup(all...); err != nil {
			t.Fatal(err)
		}

		var tasks []*taskmodel.Task
		i := 4
		id := 0
		for ; i+5 < len(raw) && id < 8; i += 6 {
			period := simtime.Time(int(raw[i])%90+10) * 1000
			cs := simtime.Time(int(raw[i+1])%20+1) * 100
			pre := simtime.Time(int(raw[i+2])%30) * 100
			r0 := core.ResourceID(int(raw[i+3]) % q)
			r1 := core.ResourceID(int(raw[i+4]) % q)
			isRead := raw[i+5]%2 == 0
			seg := taskmodel.Segment{Kind: taskmodel.SegRequest, Duration: cs}
			if isRead {
				seg.Read = []core.ResourceID{r0, r1}
			} else {
				seg.Write = []core.ResourceID{r0}
			}
			tasks = append(tasks, &taskmodel.Task{
				ID: id, Cluster: id % (m / c), Period: period, Deadline: period,
				Offset:   simtime.Time(int(raw[i+5])%50) * 100,
				Priority: id,
				Segments: []taskmodel.Segment{
					{Kind: taskmodel.SegCompute, Duration: pre},
					seg,
				},
			})
			id++
		}
		if len(tasks) == 0 {
			return
		}
		sys := &taskmodel.System{Spec: sb.Build(), M: m, ClusterSize: c, Tasks: tasks}
		if err := sys.Validate(); err != nil {
			return // structurally invalid inputs are not interesting
		}
		lr, lw := sys.CSBounds()
		s, err := New(Config{
			System: sys, Policy: sched.EDF, Progress: prog,
			Protocol: ProtoRWRNLP, RSM: core.Options{Placeholders: raw[0]%2 == 0},
			Horizon: 2_000_000, Seed: int64(raw[1]),
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run()
		if len(res.Violations) != 0 {
			t.Fatalf("violations: %v", res.Violations[0])
		}
		if res.MaxReadAcq > lr+lw {
			t.Fatalf("Theorem 1 violated: %d > %d", res.MaxReadAcq, lr+lw)
		}
		if res.MaxWriteAcq > simtime.Time(m-1)*(lr+lw) && m > 1 {
			t.Fatalf("Theorem 2 violated: %d > %d", res.MaxWriteAcq, simtime.Time(m-1)*(lr+lw))
		}
	})
}
