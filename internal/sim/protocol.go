package sim

import (
	"fmt"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// Protocol selects the locking protocol under simulation. Every protocol is
// realized by an instance of the core RSM over a (possibly transformed)
// resource space — the R/W RNLP restricted to a single resource IS a
// phase-fair reader/writer lock, and with all requests issued as writes its
// per-resource timestamp-ordered queues behave as the mutex RNLP's. This
// keeps the comparison apples-to-apples: all protocols share one satisfaction
// engine and differ only in how requests are mapped onto it.
type Protocol int

const (
	// ProtoRWRNLP is the paper's contribution: fine-grained reader/writer
	// locking with entitlement-based phase-fairness.
	ProtoRWRNLP Protocol = iota
	// ProtoMutexRNLP is the original RNLP baseline [19]: fine-grained, but
	// every request (including read-only ones) is a mutex (write) request.
	ProtoMutexRNLP
	// ProtoGroupPF is coarse-grained group locking with a phase-fair R/W
	// lock per resource group (the connected components of the
	// requested-together relation): readers of a group share, but unrelated
	// resources in a group serialize against writers.
	ProtoGroupPF
	// ProtoGroupMutex is coarse-grained group locking with a mutex per
	// group: the classical group-lock baseline of the introduction.
	ProtoGroupMutex
	// ProtoNone grants every request instantly (no locking); the
	// no-blocking reference for schedulability studies and sanity checks.
	ProtoNone
)

func (p Protocol) String() string {
	switch p {
	case ProtoRWRNLP:
		return "rw-rnlp"
	case ProtoMutexRNLP:
		return "mutex-rnlp"
	case ProtoGroupPF:
		return "group-pf"
	case ProtoGroupMutex:
		return "group-mutex"
	case ProtoNone:
		return "none"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// protoMap translates task-level requests into the RSM resource space of the
// chosen protocol.
type protoMap struct {
	kind   Protocol
	groups []int // resource -> group (group protocols)
	ngroup int
}

// buildProtoMap analyses the system and prepares the request translation.
// For group protocols, groups are the connected components of the
// "requested together by some segment" relation — resources that are never
// requested together need not share a lock even under coarse-grained
// locking (this is the most favorable grouping for the baseline).
func buildProtoMap(kind Protocol, sys *taskmodel.System) protoMap {
	pm := protoMap{kind: kind}
	if kind != ProtoGroupPF && kind != ProtoGroupMutex {
		return pm
	}
	q := sys.Spec.NumResources()
	parent := make([]int, q)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, t := range sys.Tasks {
		for _, seg := range t.Segments {
			var all []core.ResourceID
			all = append(all, seg.Read...)
			all = append(all, seg.Write...)
			for i := 1; i < len(all); i++ {
				union(int(all[0]), int(all[i]))
			}
		}
	}
	// Also union resources that are read shared: a single group lock must
	// cover everything a request could touch transitively.
	for a := 0; a < q; a++ {
		sys.Spec.ReadSet(core.ResourceID(a)).ForEach(func(b core.ResourceID) bool {
			union(a, int(b))
			return true
		})
	}
	pm.groups = make([]int, q)
	id := map[int]int{}
	for a := 0; a < q; a++ {
		root := find(a)
		g, ok := id[root]
		if !ok {
			g = len(id)
			id[root] = g
		}
		pm.groups[a] = g
	}
	pm.ngroup = len(id)
	return pm
}

// rsmSpec builds the RSM's resource spec for this protocol.
func (pm protoMap) rsmSpec(sys *taskmodel.System) *core.Spec {
	switch pm.kind {
	case ProtoRWRNLP:
		return sys.Spec
	case ProtoMutexRNLP, ProtoNone:
		// Identity resources, no read sharing needed: all requests are
		// writes (mutex) or instantly granted (none).
		return core.NewSpecBuilder(sys.Spec.NumResources()).Build()
	default: // group protocols: one RSM resource per group
		return core.NewSpecBuilder(pm.ngroup).Build()
	}
}

// mapRequest translates a request's read/write sets into the protocol's
// resource space.
func (pm protoMap) mapRequest(read, write []core.ResourceID) (r, w []core.ResourceID) {
	switch pm.kind {
	case ProtoRWRNLP, ProtoNone:
		return read, write
	case ProtoMutexRNLP:
		// Everything is a mutex request.
		w = append(append([]core.ResourceID{}, read...), write...)
		return nil, dedup(w)
	case ProtoGroupPF:
		return dedup(pm.toGroups(read)), dedup(pm.toGroups(write))
	default: // ProtoGroupMutex
		all := append(pm.toGroups(read), pm.toGroups(write)...)
		return nil, dedup(all)
	}
}

func (pm protoMap) toGroups(ids []core.ResourceID) []core.ResourceID {
	out := make([]core.ResourceID, 0, len(ids))
	for _, id := range ids {
		out = append(out, core.ResourceID(pm.groups[id]))
	}
	return out
}

func dedup(ids []core.ResourceID) []core.ResourceID {
	seen := map[core.ResourceID]bool{}
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// fineGrained reports whether the protocol supports the R/W RNLP's extended
// request forms natively (upgrades, incremental locking). Baselines fall
// back to a pessimistic single-shot write request, which is exactly the
// comparison the paper motivates.
func (pm protoMap) fineGrained() bool { return pm.kind == ProtoRWRNLP }

// readsShared reports whether the protocol satisfies read requests
// concurrently (reader/writer semantics) rather than serializing them.
func (pm protoMap) readsShared() bool {
	return pm.kind == ProtoRWRNLP || pm.kind == ProtoGroupPF || pm.kind == ProtoNone
}

// Groups exposes the protocol's resource grouping for analysis purposes:
// group[i] is the lock group of resource i, and ngroups the number of
// groups. Fine-grained protocols map every resource to its own group.
func Groups(kind Protocol, sys *taskmodel.System) (group []int, ngroups int) {
	pm := buildProtoMap(kind, sys)
	if pm.groups == nil {
		q := sys.Spec.NumResources()
		group = make([]int, q)
		for i := range group {
			group[i] = i
		}
		return group, q
	}
	return pm.groups, pm.ngroup
}
