package sim

import (
	"fmt"

	"github.com/rtsync/rwrnlp/internal/core"
	"github.com/rtsync/rwrnlp/internal/sched"
	"github.com/rtsync/rwrnlp/internal/simtime"
	"github.com/rtsync/rwrnlp/internal/taskmodel"
)

// jobState is the coarse lifecycle state of a job.
type jobState int

const (
	// jsReady: released and runnable (possibly running right now).
	jsReady jobState = iota
	// jsSuspended: released but not runnable — waiting for a lock
	// (suspension-based variant), serving as a priority donor, or gated
	// from issuing a request (donation rule).
	jsSuspended
	// jsFinished: all segments complete.
	jsFinished
)

// segPhase tracks where a job is inside its current segment.
type segPhase int

const (
	phNone      segPhase = iota
	phChunk              // executing a compute chunk or critical section
	phWaitSat            // waiting for the request to be satisfied
	phWaitGrant          // waiting for an incremental grant (Sec. 3.7)
	phWaitWrite          // waiting for the upgrade write half (Sec. 3.6)
	phWaitIssue          // donation gate: waiting to be eligible to issue
	phAtIssue            // parked at an issue point, issuing when scheduled
)

// chunkWhat identifies what the current chunk's completion means.
type chunkWhat int

const (
	chCompute chunkWhat = iota
	chCS                // critical section of a plain request
	chReadCS            // optimistic read segment of an upgrade
	chWriteCS           // write segment of an upgrade
	chIncHold           // in-CS hold of an incremental step
)

// job is one job J_i of a sporadic task.
type job struct {
	id      int // global job sequence number
	task    *taskmodel.Task
	jobIdx  int
	release simtime.Time
	absDL   simtime.Time
	prio    sched.Prio // base priority
	boosted bool       // effective priority is boost (priority donation)
	boost   sched.Prio
	cluster int

	state      jobState
	cpu        int // CPU index within the cluster, -1 if not scheduled
	nonpreempt bool
	spinning   bool // scheduled, burning cycles waiting for the RSM

	scale     float64 // per-job execution-time scale (ExecVar), 1.0 = WCET
	segIdx    int
	phase     segPhase
	what      chunkWhat
	remaining simtime.Time
	endEv     *simtime.Event
	runSince  simtime.Time

	// Request bookkeeping.
	reqID                   core.ReqID
	hasReq                  bool // an incomplete request exists (P2 accounting)
	holding                 bool // the job currently holds ≥1 resource (P1 accounting)
	upg                     core.UpgradeHandle
	upgTake                 bool
	inUpgrade               bool
	incStep                 int
	mappedRead, mappedWrite []core.ResourceID // protocol-space request sets
	issueT                  simtime.Time
	waitStart               simtime.Time // start of the current wait (metrics)
	curAcq                  simtime.Time // accumulated acquisition delay of this request
	reqIsWrite              bool

	// Priority donation links (suspension-based progress mechanism).
	donor *job // the job donating its priority to us
	donee *job // the job we are donating to (we are suspended while set)

	// Per-job metric accumulators.
	piSpin, piSOb, piSAware simtime.Time
	sBlock                  simtime.Time
	finish                  simtime.Time
}

// effPrio is the job's effective priority: the donated priority when boosted.
func (j *job) effPrio() sched.Prio {
	if j.boosted {
		return j.boost
	}
	return j.prio
}

// pending reports whether the job is released and incomplete.
func (j *job) pending() bool { return j.state != jsFinished }

// ready reports whether the job is runnable.
func (j *job) ready() bool { return j.state == jsReady }

// scheduled reports whether the job occupies a CPU.
func (j *job) scheduled() bool { return j.cpu >= 0 }

func (j *job) String() string {
	return fmt.Sprintf("T%d/J%d", j.task.ID, j.jobIdx)
}

// seg returns the current segment.
func (j *job) seg() *taskmodel.Segment { return &j.task.Segments[j.segIdx] }
