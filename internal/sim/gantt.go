package sim

import (
	"fmt"
	"sort"
	"strings"

	"github.com/rtsync/rwrnlp/internal/simtime"
)

// SchedSlice is one contiguous interval of a job occupying a CPU.
type SchedSlice struct {
	Task, Job int
	Cluster   int
	CPU       int
	From, To  simtime.Time
	State     SliceState
}

// SliceState classifies what the job was doing on the CPU.
type SliceState int

const (
	// SliceCompute: executing a compute segment.
	SliceCompute SliceState = iota
	// SliceCS: executing inside a critical section.
	SliceCS
	// SliceSpin: busy-waiting for the RSM (s-blocking).
	SliceSpin
)

func (s SliceState) String() string {
	switch s {
	case SliceCS:
		return "cs"
	case SliceSpin:
		return "spin"
	default:
		return "compute"
	}
}

// recordSchedule appends/merges the running jobs' occupancy over
// [lastAcct, t); called from account when Config.RecordSchedule is set.
func (s *Simulator) recordSchedule(from, to simtime.Time) {
	for _, cl := range s.clusters {
		for _, j := range cl.members {
			if !j.scheduled() {
				continue
			}
			state := SliceCompute
			switch {
			case j.spinning:
				state = SliceSpin
			case j.phase == phChunk && j.what != chCompute:
				state = SliceCS
			}
			key := [2]int{j.cluster, j.cpu}
			if idx, ok := s.lastSlice[key]; ok {
				last := &s.res.Schedule[idx]
				if last.Task == j.task.ID && last.Job == j.jobIdx &&
					last.State == state && last.To == from {
					last.To = to
					continue
				}
			}
			if s.lastSlice == nil {
				s.lastSlice = map[[2]int]int{}
			}
			s.lastSlice[key] = len(s.res.Schedule)
			s.res.Schedule = append(s.res.Schedule, SchedSlice{
				Task: j.task.ID, Job: j.jobIdx, Cluster: j.cluster, CPU: j.cpu,
				From: from, To: to, State: state,
			})
		}
	}
}

// RenderGantt renders the recorded schedule as an ASCII chart: one row per
// (cluster, CPU), time quantized into width columns. Symbols: task ID digit
// (last digit) while computing, '#'-prefixed while in a critical section,
// '~' while spinning, '.' idle.
func RenderGantt(res *Result, width int) string {
	if len(res.Schedule) == 0 {
		return "(no schedule recorded; set Config.RecordSchedule)\n"
	}
	if width <= 0 {
		width = 72
	}
	horizon := res.Horizon
	if horizon <= 0 {
		for _, sl := range res.Schedule {
			if sl.To > horizon {
				horizon = sl.To
			}
		}
	}
	type cpuKey struct{ cluster, cpu int }
	rows := map[cpuKey][]rune{}
	keys := []cpuKey{}
	cell := func(k cpuKey) []rune {
		if rows[k] == nil {
			r := make([]rune, width)
			for i := range r {
				r[i] = '.'
			}
			rows[k] = r
			keys = append(keys, k)
		}
		return rows[k]
	}
	for _, sl := range res.Schedule {
		row := cell(cpuKey{sl.Cluster, sl.CPU})
		lo := int(int64(sl.From) * int64(width) / int64(horizon))
		hi := int(int64(sl.To) * int64(width) / int64(horizon))
		if hi <= lo {
			hi = lo + 1
		}
		for i := lo; i < hi && i < width; i++ {
			switch sl.State {
			case SliceSpin:
				row[i] = '~'
			case SliceCS:
				row[i] = rune('A' + sl.Task%26) // CS: letters
			default:
				row[i] = rune('0' + sl.Task%10) // compute: digits
			}
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].cluster != keys[b].cluster {
			return keys[a].cluster < keys[b].cluster
		}
		return keys[a].cpu < keys[b].cpu
	})
	var b strings.Builder
	fmt.Fprintf(&b, "time 0 .. %d  (one column ≈ %.2g ticks; digits=compute, letters=CS, ~=spin, .=idle)\n",
		horizon, float64(horizon)/float64(width))
	for _, k := range keys {
		fmt.Fprintf(&b, "c%d/cpu%-2d |%s|\n", k.cluster, k.cpu, string(rows[k]))
	}
	return b.String()
}
